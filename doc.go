// Package ldphh is a from-scratch Go reproduction of "Heavy Hitters and the
// Structure of Local Privacy" (Bun, Nelson, Stemmer — PODS 2018,
// arXiv:1711.04740): locally differentially private heavy hitters with
// worst-case error optimal in every parameter, including the failure
// probability.
//
// The package re-exports the library's public surface:
//
//   - HeavyHitters / Params — PrivateExpanderSketch (Algorithm 1,
//     Theorem 3.13), the paper's primary contribution, together with its
//     client-side Report computation and server-side Identify.
//   - Frequency oracles — Hashtogram (Theorem 3.7) for arbitrary domains and
//     DirectHistogram (Theorem 3.8) for small explicit domains, plus
//     RAPPOR/OLH/KRR baselines.
//   - Baselines — Bitstogram (Bassily et al., NIPS 2017) and a
//     Bassily–Smith (STOC 2015) style succinct histogram, for the Table 1
//     comparisons.
//   - Section 4 — advanced grouposition and max-information calculators with
//     a Monte-Carlo privacy-loss simulator.
//   - Section 5 — the composition-of-randomized-response algorithm M̃.
//   - Section 6 — GenProt, the approximate-to-pure LDP purification.
//   - Section 7 — the anti-concentration lower bound and its empirical
//     tightness harness.
//   - Unified protocol surface — every protocol above satisfies one
//     Reporter/Aggregator interface pair over self-describing wire-codable
//     reports (internal/proto): ldphh.New(kind, ...Option) constructs any
//     of them — PrivateExpanderSketch, KindSmallDomain, KindHashtogram,
//     KindDirectHistogram, KindTreeHist, KindBitstogram, KindBassilySmith,
//     KindStreamHG, KindPEM, KindFedTrie — AsMergeable detects
//     snapshot/merge support,
//     AsInteractive detects multi-round discovery, and the estimates all
//     flow through the single ldphh.Estimate type.
//   - Open-domain discovery — KindPEM (prefix extension, Wang et al.
//     arXiv:1708.06674) and KindFedTrie (federated trie, Zhu et al.
//     arXiv:1902.08534) discover heavy strings with no candidate list:
//     the server grows a candidate-prefix set over interactive rounds
//     (RoundState/SetRoundState/AdvanceRound, with RequestRound and
//     AdvanceRound network clients over the same TCP preamble), users
//     partition into per-round groups so each reports exactly once at
//     full ε, and RoundRand gives every (round, user) pair its own
//     deterministic sub-stream. See DESIGN.md §10 and examples/opendomain.
//   - Transport — one generic TCP aggregation server any Aggregator plugs
//     into, negotiating the protocol ID at connection time, with sharded
//     concurrent ingestion: each connection absorbs through windowed
//     batches (for PrivateExpanderSketch, a private accumulator shard
//     merged once per window), so heavy fleets never serialize behind a
//     per-report lock. Servers also speak a snapshot/merge protocol
//     (RequestSnapshot/PushSnapshot) so Mergeable aggregators compose into
//     fan-in trees: leaves ingest, the root merges their serialized state
//     and identifies once. Every network client helper has a
//     context.Context variant with real deadline and cancellation
//     propagation.
//
// # Identify parallelism and determinism
//
// Both server-side halves run concurrently. Ingestion shards across
// accumulators (above); identification fans out over a bounded pool of
// Params.Workers goroutines (0 derives GOMAXPROCS, 1 forces the serial
// path) through every stage of Algorithm 1's reconstruction: the
// per-coordinate argmax/threshold scan of steps 2-3, the per-super-bucket
// list-recovery decode of step 4, and the step 5-6 confirmation estimates
// and final sort.
//
// The determinism contract: the same absorbed multiset of reports and the
// same Params.Seed produce the bit-identical heavy-hitter list — same
// items, same order, same float64 counts — at every worker count. This
// holds because each parallel unit is a pure function of the frozen
// counters and the seed, writing only its own output slot; in particular
// the step-4 decoder draws its cluster-refinement randomness from a PCG
// sub-stream labelled (Seed, bucket) rather than from any shared
// generator, and the output order is a strict total order (count
// descending, item bytes ascending) over deduplicated items. Workers is
// therefore a pure throughput knob — it never feeds public randomness, so
// clients and servers may disagree on it freely. The contract is enforced
// under the race detector by core.TestIdentifyWorkerDeterminism and the
// ingestion-side equivalence tests in internal/protocol.
//
// # Mergeable snapshots and the merge determinism contract
//
// The accumulated server state is a linear object: HeavyHitters.Snapshot
// serializes it into a versioned, parameter-fingerprinted blob, Restore
// rehydrates a checkpoint, and MergeSnapshot/MergeFrom fold another
// aggregator's state into a running one. Snapshots only load where the
// fingerprint matches — same Params.Seed, same ε, same sketch geometry
// (Workers excluded) — and validation is atomic: corrupt or mismatched
// bytes are rejected before any counter changes.
//
// The merge determinism contract extends the worker-count contract above:
// for any split of a report multiset across leaf aggregators and any
// merge order, the root's Identify output is bit-identical to a single
// aggregator that absorbed every report itself. Counters are exact small
// integers in float64, so merge addition is associative and commutative
// with no rounding; the cross-layer equivalence suite enforces the
// contract at the oracle, protocol, TCP and facade layers under the race
// detector.
//
// Quickstart (go build ./... && go test ./... both work from a clean
// checkout; the module has no dependencies outside the standard library):
//
//	params := ldphh.Params{Eps: 2, N: 100000, ItemBytes: 8, Seed: 1}
//	hh, err := ldphh.NewHeavyHitters(params)
//	// each user i computes one small message locally:
//	rep, err := hh.Report(item, i, rng)
//	// the untrusted server aggregates:
//	err = hh.Absorb(rep)
//	// ... and identifies the heavy hitters with frequency estimates:
//	est, err := hh.Identify()
//
// High-throughput ingestion replaces the Absorb loop with one batch call
// that fans out across shard accumulators and merges them back exactly:
//
//	err = hh.AbsorbBatch(reports, runtime.GOMAXPROCS(0))
//
// The same round through the unified surface works for every protocol of
// the paper's Table 1 comparison — only the Kind changes:
//
//	hh, err := ldphh.New(ldphh.PrivateExpanderSketch,
//		ldphh.WithEps(2), ldphh.WithN(100000), ldphh.WithItemBytes(8))
//	wr, err := hh.Report(item, i, rng)      // one self-describing WireReport
//	err = hh.Absorb(wr)
//	est, err := hh.Identify(ctx)
//
// See DESIGN.md for the system inventory: the layer diagram and wire codec
// registry (§2), the parameter derivations (§3), the determinism and merge
// contracts (§4) and the implementation substitutions S1-S5 (§5).
package ldphh
