package hadamard

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestEntryMatchesRecursiveDefinition(t *testing.T) {
	// H_{2n} = [[H_n, H_n], [H_n, -H_n]] starting from H_1 = [1].
	const k = 5
	n := 1 << k
	H := make([][]int, n)
	for i := range H {
		H[i] = make([]int, n)
	}
	H[0][0] = 1
	for size := 1; size < n; size <<= 1 {
		for i := 0; i < size; i++ {
			for j := 0; j < size; j++ {
				v := H[i][j]
				H[i][j+size] = v
				H[i+size][j] = v
				H[i+size][j+size] = -v
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if Entry(uint64(i), uint64(j)) != H[i][j] {
				t.Fatalf("Entry(%d,%d) = %d, want %d", i, j, Entry(uint64(i), uint64(j)), H[i][j])
			}
		}
	}
}

func TestTransformMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for _, n := range []int{1, 2, 4, 8, 64} {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.Float64()*2 - 1
		}
		want := make([]float64, n)
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				want[r] += float64(Entry(uint64(r), uint64(c))) * v[c]
			}
		}
		got := append([]float64(nil), v...)
		Transform(got)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("n=%d: FWHT[%d] = %f, want %f", n, i, got[i], want[i])
			}
		}
	}
}

func TestTransformInvolution(t *testing.T) {
	// Applying the transform twice scales by n. The error tolerance must be
	// relative to the largest magnitude in the vector: the transform sums
	// entries, so a tiny entry next to a huge one legitimately loses its
	// low-order bits (quick generates full-range float64s).
	involution := func(raw [8]float64) bool {
		v := append([]float64(nil), raw[:]...)
		orig := append([]float64(nil), raw[:]...)
		maxAbs := 0.0
		for _, x := range orig {
			if !(math.Abs(x) < math.MaxFloat64/64) { // also rejects NaN/Inf
				return true // outside the transform's sane numeric range
			}
			if math.Abs(x) > maxAbs {
				maxAbs = math.Abs(x)
			}
		}
		Transform(v)
		Transform(v)
		for i := range v {
			if math.Abs(v[i]-8*orig[i]) > 1e-9*(1+8*maxAbs) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(involution, nil); err != nil {
		t.Error(err)
	}
}

func TestTransformRejectsBadLength(t *testing.T) {
	for _, n := range []int{0, 3, 6, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Transform(len=%d) did not panic", n)
				}
			}()
			Transform(make([]float64, n))
		}()
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1000: 1024, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
	if NextPow2(0) != 1 || NextPow2(-5) != 1 {
		t.Error("NextPow2 of non-positive should be 1")
	}
}

func TestRowOrthogonality(t *testing.T) {
	const n = 64
	for r1 := uint64(0); r1 < n; r1++ {
		for r2 := uint64(0); r2 < n; r2++ {
			dot := 0
			for c := uint64(0); c < n; c++ {
				dot += Entry(r1, c) * Entry(r2, c)
			}
			want := 0
			if r1 == r2 {
				want = n
			}
			if dot != want {
				t.Fatalf("rows %d,%d dot = %d, want %d", r1, r2, dot, want)
			}
		}
	}
}

func BenchmarkTransform1M(b *testing.B) {
	v := make([]float64, 1<<20)
	for i := range v {
		v[i] = float64(i % 7)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Transform(v)
	}
}
