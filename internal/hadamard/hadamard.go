// Package hadamard provides the Walsh-Hadamard machinery behind the one-bit
// local randomizer of the Hashtogram frequency oracle: single entries of the
// (±1) Hadamard matrix in O(1), and the in-place fast transform in
// O(T log T), which is what lets the server reconstruct a length-T histogram
// from one-bit user reports in time independent of the domain size.
package hadamard

import "math/bits"

// Entry returns H[row, col] of the 2^k x 2^k Hadamard matrix (entries ±1):
// (-1)^{<row, col>} where <.,.> is the GF(2) inner product of the index bits.
func Entry(row, col uint64) int {
	if bits.OnesCount64(row&col)&1 == 0 {
		return 1
	}
	return -1
}

// Transform applies the (unnormalized) Walsh-Hadamard transform to v in
// place. len(v) must be a power of two. Applying it twice multiplies v by
// len(v).
func Transform(v []float64) {
	n := len(v)
	if n == 0 || n&(n-1) != 0 {
		panic("hadamard: length must be a positive power of two")
	}
	for h := 1; h < n; h <<= 1 {
		for i := 0; i < n; i += h << 1 {
			for j := i; j < i+h; j++ {
				x, y := v[j], v[j+h]
				v[j], v[j+h] = x+y, x-y
			}
		}
	}
}

// NextPow2 returns the smallest power of two >= n (n >= 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}
