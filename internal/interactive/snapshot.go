package interactive

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"

	"ldphh/internal/freqoracle"
	"ldphh/internal/proto"
)

// The engine serializes its full round position — open round, candidate
// set, the round oracle's accumulated state, and (once done) the final
// estimates — so the aggregation server can checkpoint mid-round and a
// restart resumes the identical round, and so per-round leaf aggregators
// can ship their tallies to a parent for merging.
//
// Format "LIRK" version 1 (big endian):
//
//	magic "LIRK" | version u8 | fingerprint u64 | round u32 | done u8 |
//	roundReports u64 | absorbed u64 |
//	candCount u32 | candCount × (u16 len | bytes) |
//	histLen u32 | LDSK blob (absent once done) |
//	estCount u32 | estCount × (u16 len | bytes | f64bits u64)
//
// Restore and MergeSnapshot are atomic: the blob is fully validated —
// fingerprint, round bounds, candidate canonicality, the embedded oracle
// snapshot, and the report-count cross-check — before any engine state
// changes, so a failed load leaves the open round exactly as it was.

// fnvWords digests a labeled word sequence with FNV-1a (the same shape as
// the oracle fingerprints, labeled per type so engines can never collide
// with oracle or core fingerprints).
func fnvWords(label string, words ...uint64) uint64 {
	f := fnv.New64a()
	f.Write([]byte(label))
	var buf [8]byte
	for _, w := range words {
		binary.BigEndian.PutUint64(buf[:], w)
		f.Write(buf[:])
	}
	return f.Sum64()
}

// Snapshot serializes the engine's round position (format above).
func (e *Engine) Snapshot() ([]byte, error) {
	var hist []byte
	if !e.done {
		var err error
		hist, err = e.hist.Snapshot()
		if err != nil {
			return nil, err
		}
	}
	size := 4 + 1 + 8 + 4 + 1 + 8 + 8 + 4 + 4 + len(hist) + 4
	for _, c := range e.cands {
		size += 2 + len(c)
	}
	for _, est := range e.estimates {
		size += 2 + len(est.Item) + 8
	}
	buf := make([]byte, 0, size)
	buf = append(buf, snapshotMagic...)
	buf = append(buf, snapshotVersion)
	buf = binary.BigEndian.AppendUint64(buf, e.fp)
	buf = binary.BigEndian.AppendUint32(buf, uint32(e.round))
	done := byte(0)
	if e.done {
		done = 1
	}
	buf = append(buf, done)
	buf = binary.BigEndian.AppendUint64(buf, uint64(e.roundReports))
	buf = binary.BigEndian.AppendUint64(buf, uint64(e.absorbed))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(e.cands)))
	for _, c := range e.cands {
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(c)))
		buf = append(buf, c...)
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(hist)))
	buf = append(buf, hist...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(e.estimates)))
	for _, est := range e.estimates {
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(est.Item)))
		buf = append(buf, est.Item...)
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(est.Count))
	}
	return buf, nil
}

// decodedSnapshot is a fully parsed and structurally validated LIRK blob,
// not yet checked against any particular engine.
type decodedSnapshot struct {
	fp           uint64
	round        int
	done         bool
	roundReports int
	absorbed     int
	cands        [][]byte
	hist         []byte
	estimates    []proto.Estimate
}

// parseSnapshot decodes and structurally validates an LIRK blob.
func parseSnapshot(buf []byte) (*decodedSnapshot, error) {
	const fixed = 4 + 1 + 8 + 4 + 1 + 8 + 8 + 4
	if len(buf) < fixed {
		return nil, fmt.Errorf("interactive: snapshot truncated: %d bytes", len(buf))
	}
	if string(buf[:4]) != snapshotMagic {
		return nil, errors.New("interactive: bad snapshot magic")
	}
	if buf[4] != snapshotVersion {
		return nil, fmt.Errorf("interactive: unsupported snapshot version %d", buf[4])
	}
	d := &decodedSnapshot{
		fp:    binary.BigEndian.Uint64(buf[5:]),
		round: int(binary.BigEndian.Uint32(buf[13:])),
	}
	switch buf[17] {
	case 0:
	case 1:
		d.done = true
	default:
		return nil, fmt.Errorf("interactive: snapshot done byte %d", buf[17])
	}
	rr := binary.BigEndian.Uint64(buf[18:])
	ab := binary.BigEndian.Uint64(buf[26:])
	const maxTally = uint64(1) << 53
	if rr > maxTally || ab > maxTally || rr > ab {
		return nil, fmt.Errorf("interactive: snapshot report counts implausible (round %d, total %d)", rr, ab)
	}
	d.roundReports, d.absorbed = int(rr), int(ab)
	candCount := binary.BigEndian.Uint32(buf[34:])
	if candCount > maxRoundDomain {
		return nil, fmt.Errorf("interactive: snapshot claims %d candidates (max %d)", candCount, maxRoundDomain)
	}
	off := fixed
	d.cands = make([][]byte, 0, candCount)
	for i := uint32(0); i < candCount; i++ {
		if len(buf)-off < 2 {
			return nil, fmt.Errorf("interactive: snapshot candidate %d truncated", i)
		}
		l := int(binary.BigEndian.Uint16(buf[off:]))
		off += 2
		if len(buf)-off < l {
			return nil, fmt.Errorf("interactive: snapshot candidate %d truncated", i)
		}
		d.cands = append(d.cands, append([]byte(nil), buf[off:off+l]...))
		off += l
	}
	if len(buf)-off < 4 {
		return nil, errors.New("interactive: snapshot oracle length truncated")
	}
	histLen := int(binary.BigEndian.Uint32(buf[off:]))
	off += 4
	if histLen > len(buf)-off {
		return nil, fmt.Errorf("interactive: snapshot oracle blob truncated: want %d bytes, have %d", histLen, len(buf)-off)
	}
	d.hist = buf[off : off+histLen]
	off += histLen
	if len(buf)-off < 4 {
		return nil, errors.New("interactive: snapshot estimate count truncated")
	}
	estCount := binary.BigEndian.Uint32(buf[off:])
	off += 4
	if estCount > maxRoundDomain {
		return nil, fmt.Errorf("interactive: snapshot claims %d estimates", estCount)
	}
	d.estimates = make([]proto.Estimate, 0, estCount)
	for i := uint32(0); i < estCount; i++ {
		if len(buf)-off < 2 {
			return nil, fmt.Errorf("interactive: snapshot estimate %d truncated", i)
		}
		l := int(binary.BigEndian.Uint16(buf[off:]))
		off += 2
		if len(buf)-off < l+8 {
			return nil, fmt.Errorf("interactive: snapshot estimate %d truncated", i)
		}
		item := append([]byte(nil), buf[off:off+l]...)
		off += l
		count := math.Float64frombits(binary.BigEndian.Uint64(buf[off:]))
		off += 8
		if math.IsNaN(count) || math.IsInf(count, 0) {
			return nil, fmt.Errorf("interactive: snapshot estimate %d count %v not finite", i, count)
		}
		d.estimates = append(d.estimates, proto.Estimate{Item: item, Count: count})
	}
	if off != len(buf) {
		return nil, fmt.Errorf("interactive: snapshot has %d trailing bytes", len(buf)-off)
	}
	return d, nil
}

// validate checks a parsed snapshot against this engine's parameters and
// builds (but does not install) the restored round oracle. The returned
// oracle is nil for a done snapshot.
func (e *Engine) validate(d *decodedSnapshot) (*freqoracle.DirectHistogram, error) {
	if d.fp != e.fp {
		return nil, fmt.Errorf("interactive: snapshot fingerprint %016x does not match engine %016x", d.fp, e.fp)
	}
	if d.done {
		if len(d.cands) != 0 || len(d.hist) != 0 {
			return nil, errors.New("interactive: done snapshot carries round state")
		}
		for _, est := range d.estimates {
			if len(est.Item) != e.p.ItemBytes {
				return nil, fmt.Errorf("interactive: done snapshot estimate is %d bytes, want %d", len(est.Item), e.p.ItemBytes)
			}
		}
		return nil, nil
	}
	if len(d.estimates) != 0 {
		return nil, errors.New("interactive: open-round snapshot carries final estimates")
	}
	if d.round < 0 || d.round >= e.p.Rounds {
		return nil, fmt.Errorf("interactive: snapshot round %d outside [0,%d)", d.round, e.p.Rounds)
	}
	if err := validateCandidates(d.cands, e.bitsAt(d.round)); err != nil {
		return nil, err
	}
	hist, err := freqoracle.NewDirectHistogram(e.p.Eps, len(d.cands)+1)
	if err != nil {
		return nil, err
	}
	if err := hist.Restore(d.hist); err != nil {
		return nil, err
	}
	if hist.TotalReports() != d.roundReports {
		return nil, fmt.Errorf("interactive: snapshot oracle holds %d reports, header says %d",
			hist.TotalReports(), d.roundReports)
	}
	return hist, nil
}

// Restore replaces the engine's round position with a snapshot produced by
// an engine with identical parameters. On error the state is unchanged.
func (e *Engine) Restore(buf []byte) error {
	d, err := parseSnapshot(buf)
	if err != nil {
		return err
	}
	hist, err := e.validate(d)
	if err != nil {
		return err
	}
	// Commit.
	e.round = d.round
	e.done = d.done
	e.roundReports = d.roundReports
	e.absorbed = d.absorbed
	e.cands = d.cands
	e.hist = hist
	e.estimates = d.estimates
	if e.done {
		e.cands, e.hist = nil, nil
	} else {
		e.estimates = nil
	}
	return nil
}

// MergeSnapshot folds a sibling engine's open-round tally into this one:
// same fingerprint, same round, identical candidate set, neither side done.
// The canonical tree deployment provisions fresh per-round leaves with
// SetRoundState, so a merged leaf's absorbed count equals its round count;
// both totals grow by the sibling's round reports.
func (e *Engine) MergeSnapshot(buf []byte) error {
	if e.done {
		return errors.New("interactive: MergeSnapshot after the final round committed")
	}
	d, err := parseSnapshot(buf)
	if err != nil {
		return err
	}
	if d.done {
		return errors.New("interactive: cannot merge a done snapshot into an open round")
	}
	hist, err := e.validate(d)
	if err != nil {
		return err
	}
	if d.round != e.round {
		return fmt.Errorf("interactive: merge snapshot is for round %d, round %d is open", d.round, e.round)
	}
	if len(d.cands) != len(e.cands) {
		return fmt.Errorf("interactive: merge snapshot has %d candidates, engine has %d", len(d.cands), len(e.cands))
	}
	for i := range d.cands {
		if !bytes.Equal(d.cands[i], e.cands[i]) {
			return fmt.Errorf("interactive: merge snapshot candidate %d differs", i)
		}
	}
	if err := e.hist.Merge(hist); err != nil {
		return err
	}
	e.roundReports += d.roundReports
	e.absorbed += d.roundReports
	return nil
}
