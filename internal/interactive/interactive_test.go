package interactive

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"ldphh/internal/proto"
)

// testParams is the suite's small-but-real configuration: 16-bit items
// discovered over 4 rounds of 4 bits.
func testParams(mode Mode) Params {
	return Params{Mode: mode, Eps: 4, N: 6000, ItemBytes: 2, BitsPerRound: 4, TopK: 8, Seed: 7}
}

// plantedItem returns user i's value in the planted workload: 40% of users
// hold item 0x1234, 30% hold 0xBEEF, the rest spread over a light tail.
func plantedItem(i int) []byte {
	switch {
	case i%10 < 4:
		return []byte{0x12, 0x34}
	case i%10 < 7:
		return []byte{0xBE, 0xEF}
	default:
		return []byte{0x40, byte(40 + i%97)}
	}
}

// drive runs the whole interactive protocol in process against eng: each
// round, the round's group reports with its deterministic per-round
// sub-stream, then the round advances. Returns the final estimates.
func drive(t *testing.T, eng *Engine, n int, item func(int) []byte) []proto.Estimate {
	t.Helper()
	p := eng.Params()
	for r := 0; r < p.Rounds; r++ {
		for u := 0; u < n; u++ {
			if eng.Group(u) != r {
				continue
			}
			rep, err := eng.Report(item(u), u, RoundRand(p.Seed, r, u))
			if err != nil {
				t.Fatalf("round %d user %d Report: %v", r, u, err)
			}
			if err := eng.Absorb(rep); err != nil {
				t.Fatalf("round %d user %d Absorb: %v", r, u, err)
			}
		}
		rs, err := eng.AdvanceRound()
		if err != nil {
			t.Fatalf("AdvanceRound after round %d: %v", r, err)
		}
		if rs.Done {
			break
		}
	}
	if !eng.Done() {
		t.Fatal("protocol not done after all rounds")
	}
	est, err := eng.Identify()
	if err != nil {
		t.Fatal(err)
	}
	return est
}

// TestDiscoveryBothModes proves both kinds recover the planted heavy items
// from an open 16-bit domain — no candidate list anywhere — with the
// heaviest item ranked first.
func TestDiscoveryBothModes(t *testing.T) {
	for _, mode := range []Mode{ModePEM, ModeFedTrie} {
		t.Run(mode.String(), func(t *testing.T) {
			eng, err := NewEngine(testParams(mode))
			if err != nil {
				t.Fatal(err)
			}
			p := eng.Params()
			est := drive(t, eng, p.N, plantedItem)
			if len(est) < 2 {
				t.Fatalf("identified %d items, want at least the two planted ones", len(est))
			}
			if !bytes.Equal(est[0].Item, []byte{0x12, 0x34}) {
				t.Errorf("top item = %x, want 1234", est[0].Item)
			}
			if !bytes.Equal(est[1].Item, []byte{0xBE, 0xEF}) {
				t.Errorf("second item = %x, want beef", est[1].Item)
			}
			// Population-scaled counts should land near the true 40% / 30%.
			if est[0].Count < 0.25*float64(p.N) || est[0].Count > 0.55*float64(p.N) {
				t.Errorf("top estimate %.0f far from true %d", est[0].Count, p.N*4/10)
			}
		})
	}
}

// TestWorkerDeterminism pins the determinism contract: the same report
// multiset produces bit-identical round transitions and final estimates at
// every worker count.
func TestWorkerDeterminism(t *testing.T) {
	digest := func(workers int) string {
		p := testParams(ModePEM)
		p.Workers = workers
		eng, err := NewEngine(p)
		if err != nil {
			t.Fatal(err)
		}
		var sb bytes.Buffer
		for _, est := range drive(t, eng, p.N, plantedItem) {
			fmt.Fprintf(&sb, "%x:%b;", est.Item, est.Count)
		}
		return sb.String()
	}
	want := digest(1)
	for _, w := range []int{2, 3, 8} {
		if got := digest(w); got != want {
			t.Errorf("workers=%d diverged:\n got %s\nwant %s", w, got, want)
		}
	}
}

// TestGroupPartition checks the public group assignment covers every round
// with a roughly balanced share of the population.
func TestGroupPartition(t *testing.T) {
	eng, err := NewEngine(testParams(ModePEM))
	if err != nil {
		t.Fatal(err)
	}
	p := eng.Params()
	counts := make([]int, p.Rounds)
	for u := 0; u < p.N; u++ {
		g := eng.Group(u)
		if g < 0 || g >= p.Rounds {
			t.Fatalf("user %d assigned to group %d of %d", u, g, p.Rounds)
		}
		counts[g]++
	}
	expect := p.N / p.Rounds
	for r, c := range counts {
		if c < expect/2 || c > expect*2 {
			t.Errorf("group %d holds %d users, expected near %d", r, c, expect)
		}
	}
}

// TestRoundGating pins the round state machine's rejections: reports for a
// round other than the open one, reports from the wrong group, absorption
// and advancing after done.
func TestRoundGating(t *testing.T) {
	eng, err := NewEngine(testParams(ModePEM))
	if err != nil {
		t.Fatal(err)
	}
	p := eng.Params()
	// A user in a later group must get ErrNotInRound in round 0.
	later := -1
	for u := 0; u < p.N; u++ {
		if eng.Group(u) != 0 {
			later = u
			break
		}
	}
	if _, err := eng.Report(plantedItem(later), later, RoundRand(p.Seed, 0, later)); !errors.Is(err, ErrNotInRound) {
		t.Errorf("Report from group %d in round 0: err = %v, want ErrNotInRound", eng.Group(later), err)
	}
	// A stale round stamp is rejected.
	if err := eng.Absorb(RoundReport{Round: 1, Col: 0, Bit: 1}); err == nil {
		t.Error("Absorb of a round-1 report into round 0 succeeded")
	}
	if eng.roundReports != 0 {
		t.Errorf("rejected reports counted: roundReports = %d", eng.roundReports)
	}
	// Identify before done is an error.
	if _, err := eng.Identify(); err == nil {
		t.Error("Identify before the final round succeeded")
	}
	drive(t, eng, p.N, plantedItem)
	if err := eng.Absorb(RoundReport{Round: p.Rounds - 1, Col: 0, Bit: 1}); err == nil {
		t.Error("Absorb after done succeeded")
	}
	if _, err := eng.AdvanceRound(); err == nil {
		t.Error("AdvanceRound after done succeeded")
	}
}

// TestSetRoundStateValidation pins the broadcast install checks: Done
// states, schedule mismatches and non-canonical candidate sets are all
// rejected without touching the open round.
func TestSetRoundStateValidation(t *testing.T) {
	eng, err := NewEngine(testParams(ModePEM))
	if err != nil {
		t.Fatal(err)
	}
	good := eng.RoundState()
	cases := map[string]func(rs *proto.RoundState){
		"done state":        func(rs *proto.RoundState) { rs.Done = true },
		"wrong rounds":      func(rs *proto.RoundState) { rs.Rounds++ },
		"round out of range": func(rs *proto.RoundState) { rs.Round = rs.Rounds },
		"wrong width":       func(rs *proto.RoundState) { rs.PrefixBits++ },
		"empty candidates":  func(rs *proto.RoundState) { rs.Candidates = nil },
		"unsorted": func(rs *proto.RoundState) {
			rs.Candidates[0], rs.Candidates[1] = rs.Candidates[1], rs.Candidates[0]
		},
		"duplicate": func(rs *proto.RoundState) { rs.Candidates[1] = rs.Candidates[0] },
		"trailing bits": func(rs *proto.RoundState) {
			rs.Candidates[0] = []byte{0x01} // width 4: low nibble must be zero
		},
	}
	for name, sabotage := range cases {
		rs := eng.RoundState() // fresh deep copy per case
		sabotage(&rs)
		if err := eng.SetRoundState(rs); err == nil {
			t.Errorf("%s: SetRoundState succeeded", name)
		}
	}
	if got := eng.RoundState(); got.Round != good.Round || len(got.Candidates) != len(good.Candidates) {
		t.Error("failed installs disturbed the open round")
	}
	if err := eng.SetRoundState(good); err != nil {
		t.Errorf("reinstalling the engine's own broadcast: %v", err)
	}
}

// TestRoundStateCodec round-trips the broadcast encoding and rejects
// truncated and trailing-garbage forms.
func TestRoundStateCodec(t *testing.T) {
	eng, err := NewEngine(testParams(ModeFedTrie))
	if err != nil {
		t.Fatal(err)
	}
	rs := eng.RoundState()
	rs.GroupReports = 42
	blob := proto.EncodeRoundState(rs)
	back, err := proto.DecodeRoundState(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back.Round != rs.Round || back.Rounds != rs.Rounds || back.PrefixBits != rs.PrefixBits ||
		back.Done != rs.Done || back.GroupReports != rs.GroupReports || len(back.Candidates) != len(rs.Candidates) {
		t.Fatalf("round state did not round-trip: %+v vs %+v", back, rs)
	}
	for i := range rs.Candidates {
		if !bytes.Equal(back.Candidates[i], rs.Candidates[i]) {
			t.Fatalf("candidate %d did not round-trip", i)
		}
	}
	if _, err := proto.DecodeRoundState(blob[:len(blob)-1]); err == nil {
		t.Error("truncated round state decoded")
	}
	if _, err := proto.DecodeRoundState(append(blob, 0)); err == nil {
		t.Error("round state with trailing garbage decoded")
	}
}

// TestSnapshotRoundTrip checkpoints mid-round and proves the restored
// engine finishes the protocol bit-identically to the uninterrupted one.
func TestSnapshotRoundTrip(t *testing.T) {
	p := testParams(ModePEM)
	mk := func() *Engine {
		eng, err := NewEngine(p)
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	ref, victim := mk(), mk()
	// Round 0 fully, round 1 half-way into both engines identically.
	feed := func(eng *Engine, r, from, to int) {
		for u := from; u < to; u++ {
			if eng.Group(u) != r {
				continue
			}
			rep, err := eng.Report(plantedItem(u), u, RoundRand(p.Seed, r, u))
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.Absorb(rep); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, eng := range []*Engine{ref, victim} {
		feed(eng, 0, 0, p.N)
		if _, err := eng.AdvanceRound(); err != nil {
			t.Fatal(err)
		}
		feed(eng, 1, 0, p.N/2)
	}
	snap, err := victim.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored := mk()
	if err := restored.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if restored.RoundState().Round != 1 || restored.TotalReports() != victim.TotalReports() {
		t.Fatalf("restore landed at round %d with %d reports, want round 1 with %d",
			restored.RoundState().Round, restored.TotalReports(), victim.TotalReports())
	}
	// Finish both from the same point and compare exactly.
	finish := func(eng *Engine) []proto.Estimate {
		feed(eng, 1, p.N/2, p.N)
		for r := 1; ; r++ {
			rs, err := eng.AdvanceRound()
			if err != nil {
				t.Fatal(err)
			}
			if rs.Done {
				break
			}
			feed(eng, r+1, 0, p.N)
		}
		est, err := eng.Identify()
		if err != nil {
			t.Fatal(err)
		}
		return est
	}
	want, got := finish(ref), finish(restored)
	assertSameEstimates(t, got, want)

	// A done snapshot also round-trips.
	snap2, err := ref.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	again := mk()
	if err := again.Restore(snap2); err != nil {
		t.Fatal(err)
	}
	est, err := again.Identify()
	if err != nil {
		t.Fatal(err)
	}
	assertSameEstimates(t, est, want)

	// Corruption and fingerprint mismatches are rejected atomically.
	bad := append([]byte(nil), snap...)
	bad[9] ^= 0xFF // fingerprint byte
	if err := mk().Restore(bad); err == nil {
		t.Error("fingerprint-mismatched snapshot restored")
	}
	if err := mk().Restore(snap[:len(snap)-3]); err == nil {
		t.Error("truncated snapshot restored")
	}
}

// TestMergeEquivalence proves split-ingest-merge is bit-identical to
// sequential ingest: two leaves provisioned with the root's broadcast each
// absorb half a round, the root merges both snapshots, and every round
// transition matches an engine that absorbed everything itself.
func TestMergeEquivalence(t *testing.T) {
	p := testParams(ModeFedTrie)
	mk := func() *Engine {
		eng, err := NewEngine(p)
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	ref, root := mk(), mk()
	for r := 0; ; r++ {
		rs := root.RoundState()
		leafA, leafB := mk(), mk()
		if err := leafA.SetRoundState(rs); err != nil {
			t.Fatal(err)
		}
		if err := leafB.SetRoundState(rs); err != nil {
			t.Fatal(err)
		}
		for u := 0; u < p.N; u++ {
			if ref.Group(u) != r {
				continue
			}
			rep, err := ref.Report(plantedItem(u), u, RoundRand(p.Seed, r, u))
			if err != nil {
				t.Fatal(err)
			}
			if err := ref.Absorb(rep); err != nil {
				t.Fatal(err)
			}
			leaf := leafA
			if u%2 == 1 {
				leaf = leafB
			}
			if err := leaf.Absorb(rep); err != nil {
				t.Fatal(err)
			}
		}
		for _, leaf := range []*Engine{leafA, leafB} {
			snap, err := leaf.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if err := root.MergeSnapshot(snap); err != nil {
				t.Fatal(err)
			}
		}
		if root.RoundState().GroupReports != ref.RoundState().GroupReports {
			t.Fatalf("round %d: root merged %d reports, ref absorbed %d",
				r, root.RoundState().GroupReports, ref.RoundState().GroupReports)
		}
		wantRS, err := ref.AdvanceRound()
		if err != nil {
			t.Fatal(err)
		}
		gotRS, err := root.AdvanceRound()
		if err != nil {
			t.Fatal(err)
		}
		if gotRS.Done != wantRS.Done || len(gotRS.Candidates) != len(wantRS.Candidates) {
			t.Fatalf("round %d transition diverged: %d candidates done=%t vs %d done=%t",
				r, len(gotRS.Candidates), gotRS.Done, len(wantRS.Candidates), wantRS.Done)
		}
		if wantRS.Done {
			break
		}
	}
	want, err := ref.Identify()
	if err != nil {
		t.Fatal(err)
	}
	got, err := root.Identify()
	if err != nil {
		t.Fatal(err)
	}
	assertSameEstimates(t, got, want)
}

// TestWireRoundTrip drives the full protocol through the wire adapter —
// encoded reports, batch absorption, the Interactive capability — and
// checks the codec registrations resolve both kinds.
func TestWireRoundTrip(t *testing.T) {
	for _, mode := range []Mode{ModePEM, ModeFedTrie} {
		t.Run(mode.String(), func(t *testing.T) {
			p := testParams(mode)
			device, err := NewWire(p)
			if err != nil {
				t.Fatal(err)
			}
			server, err := NewWire(p)
			if err != nil {
				t.Fatal(err)
			}
			it, ok := proto.AsInteractive(server)
			if !ok {
				t.Fatal("wire adapter does not expose the Interactive capability")
			}
			for r := 0; ; r++ {
				if err := device.SetRoundState(it.RoundState()); err != nil {
					t.Fatal(err)
				}
				var batch []proto.WireReport
				for u := 0; u < p.N; u++ {
					if device.Engine().Group(u) != r {
						continue
					}
					wr, err := device.Report(plantedItem(u), u, RoundRand(p.Seed, r, u))
					if err != nil {
						t.Fatal(err)
					}
					batch = append(batch, wr)
				}
				if err := server.AbsorbBatch(batch); err != nil {
					t.Fatal(err)
				}
				rs, err := it.AdvanceRound()
				if err != nil {
					t.Fatal(err)
				}
				if rs.Done {
					break
				}
			}
			est, err := server.Identify(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if len(est) < 2 || !bytes.Equal(est[0].Item, []byte{0x12, 0x34}) {
				t.Fatalf("wire discovery failed: %d items, top %x", len(est), firstItem(est))
			}
			if got := server.TotalReports(); got != p.N {
				t.Errorf("TotalReports = %d, want %d (groups partition the population)", got, p.N)
			}
		})
	}
}

// TestWireBatchValidPrefix pins the AbsorbBatch contract: the valid prefix
// before the first structurally invalid report is absorbed, and the decode
// error is returned.
func TestWireBatchValidPrefix(t *testing.T) {
	p := testParams(ModePEM)
	w, err := NewWire(p)
	if err != nil {
		t.Fatal(err)
	}
	var batch []proto.WireReport
	for u := 0; len(batch) < 3; u++ {
		if w.Engine().Group(u) != 0 {
			continue
		}
		wr, err := w.Report(plantedItem(u), u, RoundRand(p.Seed, 0, u))
		if err != nil {
			t.Fatal(err)
		}
		batch = append(batch, wr)
	}
	bad := append(proto.WireReport(nil), batch[2]...)
	bad[len(bad)-1] = 9 // bit byte outside {0,1}
	if err := w.AbsorbBatch([]proto.WireReport{batch[0], batch[1], bad}); err == nil {
		t.Fatal("batch with a corrupt report absorbed cleanly")
	}
	if got := w.TotalReports(); got != 2 {
		t.Errorf("valid prefix absorbed %d reports, want 2", got)
	}
}

func firstItem(est []proto.Estimate) []byte {
	if len(est) == 0 {
		return nil
	}
	return est[0].Item
}

func assertSameEstimates(t *testing.T, got, want []proto.Estimate) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("identified %d items, want %d", len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i].Item, want[i].Item) || got[i].Count != want[i].Count {
			t.Fatalf("estimate %d diverged: %x/%v vs %x/%v",
				i, got[i].Item, got[i].Count, want[i].Item, want[i].Count)
		}
	}
}
