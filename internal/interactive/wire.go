package interactive

import (
	"context"
	"encoding/binary"
	"fmt"
	"math/rand/v2"
	"sync"

	"ldphh/internal/proto"
)

// Wire payload: [round u8][Hadamard column u32 BE][bit u8 ∈ {0,1}]. The
// round stamp makes every report self-describing about which candidate set
// its column indexes — the aggregator rejects reports for any round but the
// open one instead of silently folding them into the wrong tally. Six bytes
// per report regardless of domain size or round count.
const PayloadBytes = 6

const wireVersion = 1

func init() {
	validate := func(p []byte) error {
		// Round and column ranges depend on the aggregator's live round
		// state, so they are rejected at absorption; structurally the bit
		// byte must be the 0/1 encoding of a ±1 Hadamard report.
		if len(p) != PayloadBytes {
			return fmt.Errorf("interactive: payload length %d, want %d", len(p), PayloadBytes)
		}
		if p[5] > 1 {
			return fmt.Errorf("interactive: report bit byte %d, want 0 or 1", p[5])
		}
		return nil
	}
	proto.Register(proto.Codec{
		ID: proto.IDPEM, Name: "pem", Version: wireVersion,
		PayloadBytes: PayloadBytes, Validate: validate,
	})
	proto.Register(proto.Codec{
		ID: proto.IDFedTrie, Name: "fedtrie", Version: wireVersion,
		PayloadBytes: PayloadBytes, Validate: validate,
	})
}

// Wire adapts the round engine to the unified proto.Reporter/Aggregator
// surface, so both interactive kinds inherit the generic TCP server,
// mega-batch ingest, snapshot/merge fan-in, durable checkpoints and the
// metrics sidecar unchanged — plus the Round/AdvanceRound wire commands
// through proto.Interactive. The adapter serializes access with its own
// mutex: the engine is not safe for concurrent use, and Report reads the
// live round state a concurrent AdvanceRound would swap.
type Wire struct {
	mu  sync.Mutex
	eng *Engine
	id  byte
}

// NewWire constructs the adapter around a fresh round engine; the protocol
// ID follows Params.Mode.
func NewWire(p Params) (*Wire, error) {
	eng, err := NewEngine(p)
	if err != nil {
		return nil, err
	}
	id := proto.IDPEM
	if p.Mode == ModeFedTrie {
		id = proto.IDFedTrie
	}
	return &Wire{eng: eng, id: id}, nil
}

// Engine exposes the wrapped engine (for in-process inspection; callers
// must not mutate it concurrently with the adapter).
func (w *Wire) Engine() *Engine { return w.eng }

// ProtocolID returns proto.IDPEM or proto.IDFedTrie.
func (w *Wire) ProtocolID() byte { return w.id }

// Report computes user userIdx's message for the open round. Users whose
// group is not assigned to the open round get ErrNotInRound (they report
// in their own round); install the server's broadcast with SetRoundState
// first so device and server agree on the candidate set.
func (w *Wire) Report(item []byte, userIdx int, rng *rand.Rand) (proto.WireReport, error) {
	w.mu.Lock()
	rep, err := w.eng.Report(item, userIdx, rng)
	w.mu.Unlock()
	if err != nil {
		return nil, err
	}
	dst := proto.AppendHeader(make([]byte, 0, 2+PayloadBytes), w.id, wireVersion)
	dst = append(dst, byte(rep.Round))
	dst = binary.BigEndian.AppendUint32(dst, rep.Col)
	bit := byte(0)
	if rep.Bit == 1 {
		bit = 1
	}
	return proto.WireReport(append(dst, bit)), nil
}

// decode structurally validates one wire report; round and column range
// checks happen at absorption against the live round state.
func (w *Wire) decode(wr proto.WireReport) (RoundReport, error) {
	if err := proto.CheckHeader(wr, w.id); err != nil {
		return RoundReport{}, err
	}
	p := wr.Payload()
	if p[5] > 1 {
		return RoundReport{}, fmt.Errorf("interactive: report bit byte %d, want 0 or 1", p[5])
	}
	bit := int8(-1)
	if p[5] == 1 {
		bit = 1
	}
	return RoundReport{Round: int(p[0]), Col: binary.BigEndian.Uint32(p[1:]), Bit: bit}, nil
}

// Absorb folds one wire report into the open round.
func (w *Wire) Absorb(wr proto.WireReport) error {
	rep, err := w.decode(wr)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.eng.Absorb(rep)
}

// AbsorbBatch folds a batch under one lock acquisition. Decoding and
// validation run before the lock; the valid prefix is absorbed and the
// first error returned.
func (w *Wire) AbsorbBatch(wrs []proto.WireReport) error {
	reps := make([]RoundReport, 0, len(wrs))
	var decodeErr error
	for _, wr := range wrs {
		rep, err := w.decode(wr)
		if err != nil {
			decodeErr = err
			break
		}
		reps = append(reps, rep)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, rep := range reps {
		if err := w.eng.Absorb(rep); err != nil {
			return err
		}
	}
	return decodeErr
}

// Identify returns the final population-scaled estimates; it errors until
// the final round has committed (drive rounds with AdvanceRound).
func (w *Wire) Identify(ctx context.Context) ([]proto.Estimate, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.eng.Identify()
}

// RoundState returns the open round's broadcast state (proto.Interactive).
func (w *Wire) RoundState() proto.RoundState {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.eng.RoundState()
}

// SetRoundState installs a server broadcast (proto.Interactive).
func (w *Wire) SetRoundState(rs proto.RoundState) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.eng.SetRoundState(rs)
}

// AdvanceRound finalizes the open round and opens the next one
// (proto.Interactive).
func (w *Wire) AdvanceRound() (proto.RoundState, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.eng.AdvanceRound()
}

// TotalReports returns the report count absorbed across all rounds.
func (w *Wire) TotalReports() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.eng.TotalReports()
}

// SketchBytes returns resident engine memory.
func (w *Wire) SketchBytes() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.eng.SketchBytes()
}

// BytesPerReport returns the payload size of one user message.
func (w *Wire) BytesPerReport() int { return PayloadBytes }

// MinRecoverableFrequency reports the recovery floor (proto.Calibrated).
func (w *Wire) MinRecoverableFrequency() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.eng.MinRecoverableFrequency()
}

// Fingerprint states the parameter digest snapshots and checkpoints are
// pinned to (proto.Fingerprinted).
func (w *Wire) Fingerprint() uint64 {
	return w.eng.Fingerprint()
}

// Snapshot serializes the engine's round position (proto.Mergeable).
func (w *Wire) Snapshot() ([]byte, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.eng.Snapshot()
}

// Restore rehydrates a checkpoint (proto.Mergeable).
func (w *Wire) Restore(buf []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.eng.Restore(buf)
}

// MergeSnapshot folds a sibling's open-round tally into this one
// (proto.Mergeable).
func (w *Wire) MergeSnapshot(buf []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.eng.MergeSnapshot(buf)
}
