// Package interactive implements the multi-round open-domain discovery
// engine behind KindPEM and KindFedTrie: server-driven candidate-prefix
// extension over interactive protocol rounds.
//
// Both kinds share one engine. The population is partitioned into g = Rounds
// groups by a public pairwise-independent hash of the user index; round r is
// answered exactly by group r, each user reporting the first PrefixBits bits
// of its value against the round's candidate set through the Theorem 3.8
// DirectHistogram randomizer (one Hadamard bit at full ε). Because the
// groups partition the users, every user reports exactly once across the
// whole protocol, so the per-round privacy composition over all rounds is
// the single-report guarantee: max ratio <= e^ε.
//
// After a round's group has reported, AdvanceRound finalizes the round's
// frequency oracle, scales the group estimates to population counts, prunes
// the candidates — PEM keeps the heaviest Cap prefixes (Wang et al., arXiv
// 1708.06674), the federated trie keeps every prefix whose vote clears the
// threshold θ (Zhu et al., arXiv 1902.08534) — and extends each survivor by
// the next BitsPerRound bits to form the next round's candidate set. The
// transition is validate-then-commit: the live accumulator is never
// finalized in place (finalization is irreversible), so a failed advance
// leaves the open round absorbing.
//
// Determinism contract: the same absorbed multiset of reports produces the
// bit-identical round transition and final estimate list at every worker
// count — every parallel unit writes only its own slot and every ordering
// is a strict total order. Device randomness for deterministic fleets comes
// from per-round PCG sub-streams via RoundRand.
package interactive

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"ldphh/internal/dist"
	"ldphh/internal/freqoracle"
	"ldphh/internal/hashing"
	"ldphh/internal/par"
	"ldphh/internal/proto"
)

// Mode selects the pruning rule of the shared round engine.
type Mode int

const (
	// ModePEM is prefix extension: keep the Cap heaviest surviving prefixes
	// each round, answer the final TopK.
	ModePEM Mode = iota
	// ModeFedTrie is federated trie discovery: keep every prefix whose
	// population-scaled vote clears the threshold θ, growing the trie one
	// level per round.
	ModeFedTrie
)

func (m Mode) String() string {
	if m == ModeFedTrie {
		return "fedtrie"
	}
	return "pem"
}

// Engine limits. BitsPerRound is capped so one extension step fans out at
// most 2^16 children per survivor; the candidate-set product bound keeps
// every per-round oracle domain far below the proto decode limit.
const (
	maxRounds        = 255 // the wire round byte
	maxBitsPerRound  = 16
	maxRoundDomain   = 1 << 22 // candidate count bound per round (matches proto.maxRoundCandidates)
	defaultBitsExt   = 4
	defaultTopK      = 16
	thresholdBeta    = 0.05 // failure probability of the derived FedTrie threshold envelope
	groupSeedLabel   = 0x726f756e6447727 // "roundGr" — group-hash sub-seed label
	roundRandLabel   = 0x726f756e64524e47 // "roundRNG" — per-round device sub-stream label
	snapshotMagic    = "LIRK"
	snapshotVersion  = 1
)

// ErrNotInRound is returned by Report when the user's group is not the one
// assigned to the currently open round: the user stays silent this round
// (their report would spend budget on a round that is not theirs).
var ErrNotInRound = errors.New("interactive: user's group is not assigned to the open round")

// Params configures the round engine.
type Params struct {
	Mode      Mode
	Eps       float64 // per-user privacy budget; each user reports once at full ε
	N         int     // population size (used to scale group estimates)
	ItemBytes int     // item width; total prefix bits = 8·ItemBytes
	// Rounds is the group count g; 0 derives ceil(bits/BitsPerRound). When
	// both Rounds and BitsPerRound are set they must agree on the schedule.
	Rounds int
	// BitsPerRound is the extension step γ in bits; 0 derives from Rounds
	// (or defaults to 4). Must be in [1, 16].
	BitsPerRound int
	// TopK is the final answer size for ModePEM (default 16) and the
	// default Cap.
	TopK int
	// Cap bounds the surviving candidate count per round; 0 defaults to
	// TopK (ModePEM) or 4·sqrt(N) (ModeFedTrie).
	Cap int
	// Theta is the ModeFedTrie vote threshold in population units; 0
	// derives the β = 0.05 error envelope of the round's oracle.
	Theta float64
	// Seed feeds all public randomness (the group hash).
	Seed uint64
	// Workers sizes the per-round estimate scan pool; 0 lets callers pass
	// GOMAXPROCS downstream. Pure throughput knob — never feeds randomness.
	Workers int
}

// RoundReport is one user's message in decoded form: the round it belongs
// to plus the Theorem 3.8 Hadamard report against that round's candidate
// domain.
type RoundReport struct {
	Round int
	Col   uint32
	Bit   int8 // ±1
}

// Engine is the shared round state machine. It is not safe for concurrent
// use — Wire wraps it with a mutex for the aggregation server.
type Engine struct {
	p        Params
	bits     int // total prefix bits = 8·ItemBytes
	group    hashing.KWise
	fp       uint64

	round        int
	cands        [][]byte // canonical: sorted ascending, strictly increasing
	hist         *freqoracle.DirectHistogram
	roundReports int
	absorbed     int

	done      bool
	estimates []proto.Estimate
}

// NewEngine validates Params, derives the round schedule and opens round 0
// with the 2^γ extensions of the empty prefix as candidates.
func NewEngine(p Params) (*Engine, error) {
	if p.Mode != ModePEM && p.Mode != ModeFedTrie {
		return nil, fmt.Errorf("interactive: unknown mode %d", p.Mode)
	}
	if p.Eps <= 0 {
		return nil, fmt.Errorf("interactive: Eps must be positive, got %v", p.Eps)
	}
	if p.N < 1 {
		return nil, fmt.Errorf("interactive: N must be positive, got %d", p.N)
	}
	if p.ItemBytes < 1 || p.ItemBytes > 64 {
		return nil, fmt.Errorf("interactive: ItemBytes must be in [1,64], got %d", p.ItemBytes)
	}
	if p.Theta < 0 || math.IsNaN(p.Theta) || math.IsInf(p.Theta, 0) {
		return nil, fmt.Errorf("interactive: Theta must be finite and non-negative, got %v", p.Theta)
	}
	bits := 8 * p.ItemBytes
	switch {
	case p.BitsPerRound == 0 && p.Rounds == 0:
		p.BitsPerRound = defaultBitsExt
	case p.BitsPerRound == 0:
		if p.Rounds < 1 || p.Rounds > maxRounds {
			return nil, fmt.Errorf("interactive: Rounds must be in [1,%d], got %d", maxRounds, p.Rounds)
		}
		p.BitsPerRound = (bits + p.Rounds - 1) / p.Rounds
	}
	if p.BitsPerRound < 1 || p.BitsPerRound > maxBitsPerRound {
		return nil, fmt.Errorf("interactive: BitsPerRound must be in [1,%d], got %d", maxBitsPerRound, p.BitsPerRound)
	}
	if p.BitsPerRound > bits {
		p.BitsPerRound = bits
	}
	rounds := (bits + p.BitsPerRound - 1) / p.BitsPerRound
	if p.Rounds == 0 {
		p.Rounds = rounds
	} else if p.Rounds != rounds {
		return nil, fmt.Errorf("interactive: Rounds %d disagrees with the schedule ceil(%d/%d) = %d",
			p.Rounds, bits, p.BitsPerRound, rounds)
	}
	if p.Rounds > maxRounds {
		return nil, fmt.Errorf("interactive: schedule needs %d rounds (max %d); raise BitsPerRound", p.Rounds, maxRounds)
	}
	if p.TopK == 0 {
		p.TopK = defaultTopK
	}
	if p.TopK < 1 {
		return nil, fmt.Errorf("interactive: TopK must be positive, got %d", p.TopK)
	}
	if p.Cap == 0 {
		if p.Mode == ModeFedTrie {
			p.Cap = 4 * int(math.Ceil(math.Sqrt(float64(p.N))))
		} else {
			p.Cap = p.TopK
		}
	}
	if p.Cap < 1 {
		return nil, fmt.Errorf("interactive: Cap must be positive, got %d", p.Cap)
	}
	if fanout := p.Cap << p.BitsPerRound; fanout > maxRoundDomain || fanout < p.Cap {
		return nil, fmt.Errorf("interactive: Cap %d x 2^%d candidates exceeds the per-round bound %d",
			p.Cap, p.BitsPerRound, maxRoundDomain)
	}
	e := &Engine{
		p:     p,
		bits:  bits,
		group: hashing.NewKWise(2, hashing.Seeded(p.Seed, groupSeedLabel)),
	}
	e.fp = e.fingerprint()
	if err := e.openRound(0, extendPrefixes(nil, 0, e.bitsAt(0))); err != nil {
		return nil, err
	}
	return e, nil
}

// Params returns the validated (default-filled) parameters.
func (e *Engine) Params() Params { return e.p }

// bitsAt returns the candidate prefix width of round r.
func (e *Engine) bitsAt(r int) int {
	w := (r + 1) * e.p.BitsPerRound
	if w > e.bits {
		w = e.bits
	}
	return w
}

// Group returns the round index user userIdx reports in. The assignment is
// public randomness: any device or server built from the same Seed computes
// the identical partition.
func (e *Engine) Group(userIdx int) int {
	return e.group.Range(uint64(userIdx), e.p.Rounds)
}

// RoundRand returns the deterministic per-(round, user) device generator:
// a PCG sub-stream labelled by seed, round and user via dist.Mix, so a
// fleet replayed at any concurrency produces bit-identical reports.
func RoundRand(seed uint64, round, userIdx int) *rand.Rand {
	return dist.SubStream(dist.Mix(seed, roundRandLabel, uint64(round)), uint64(userIdx))
}

// fingerprint digests every parameter that shapes accumulated state and
// public randomness (Workers excluded — pure throughput knob).
func (e *Engine) fingerprint() uint64 {
	return fnvWords("ldphh/interactive.Engine/v1",
		uint64(e.p.Mode), math.Float64bits(e.p.Eps), uint64(e.p.N), uint64(e.p.ItemBytes),
		uint64(e.p.Rounds), uint64(e.p.BitsPerRound), uint64(e.p.TopK), uint64(e.p.Cap),
		math.Float64bits(e.p.Theta), e.p.Seed)
}

// Fingerprint returns the engine's parameter digest (the checkpoint-file
// and snapshot compatibility key).
func (e *Engine) Fingerprint() uint64 { return e.fp }

// openRound installs cands as round r's candidate set with a fresh
// accumulator. cands must already be canonical.
func (e *Engine) openRound(r int, cands [][]byte) error {
	hist, err := freqoracle.NewDirectHistogram(e.p.Eps, len(cands)+1)
	if err != nil {
		return err
	}
	e.round = r
	e.cands = cands
	e.hist = hist
	e.roundReports = 0
	e.done = false
	e.estimates = nil
	return nil
}

// prefixOf returns the first bits bits of item as a canonical prefix:
// ceil(bits/8) bytes with trailing bits of the last byte zeroed.
func prefixOf(item []byte, bits int) []byte {
	nb := (bits + 7) / 8
	p := make([]byte, nb)
	copy(p, item[:nb])
	if rem := bits % 8; rem != 0 {
		p[nb-1] &= byte(0xFF << (8 - rem))
	}
	return p
}

// candidateIndex binary-searches the canonical candidate list for prefix,
// returning (index, true) or (len, false) — the "other" ordinal — on miss.
func (e *Engine) candidateIndex(prefix []byte) (int, bool) {
	i := sort.Search(len(e.cands), func(j int) bool {
		return bytes.Compare(e.cands[j], prefix) >= 0
	})
	if i < len(e.cands) && bytes.Equal(e.cands[i], prefix) {
		return i, true
	}
	return len(e.cands), false
}

// Report computes user userIdx's message for the open round. Users outside
// the round's group get ErrNotInRound and stay silent; users whose prefix
// misses the candidate set report the "other" ordinal — they still spend
// their (only) report, so participation never reveals candidate membership.
func (e *Engine) Report(item []byte, userIdx int, rng *rand.Rand) (RoundReport, error) {
	if e.done {
		return RoundReport{}, errors.New("interactive: Report after the final round committed")
	}
	if len(item) != e.p.ItemBytes {
		return RoundReport{}, fmt.Errorf("interactive: item is %d bytes, want %d", len(item), e.p.ItemBytes)
	}
	if g := e.Group(userIdx); g != e.round {
		return RoundReport{}, fmt.Errorf("%w: user %d is in group %d, round %d is open", ErrNotInRound, userIdx, g, e.round)
	}
	idx, _ := e.candidateIndex(prefixOf(item, e.bitsAt(e.round)))
	rep, err := e.hist.Report(uint64(idx), rng)
	if err != nil {
		return RoundReport{}, err
	}
	return RoundReport{Round: e.round, Col: rep.Col, Bit: rep.Bit}, nil
}

// Absorb folds one round report into the open round's accumulator. Reports
// for any round but the open one are rejected — late or early arrivals
// cannot silently poison a different round's tally.
func (e *Engine) Absorb(rep RoundReport) error {
	if e.done {
		return errors.New("interactive: Absorb after the final round committed")
	}
	if rep.Round != e.round {
		return fmt.Errorf("interactive: report for round %d, round %d is open", rep.Round, e.round)
	}
	if err := e.hist.Absorb(freqoracle.DirectReport{Col: rep.Col, Bit: rep.Bit}); err != nil {
		return err
	}
	e.roundReports++
	e.absorbed++
	return nil
}

// threshold returns the FedTrie vote threshold in population units for the
// just-closed round: the configured Theta, or the β = 0.05 error envelope
// of the round's oracle scaled to population counts.
func (e *Engine) threshold(scale float64) float64 {
	if e.p.Theta > 0 {
		return e.p.Theta
	}
	if e.roundReports == 0 {
		return math.Inf(1)
	}
	return scale * e.hist.ErrorBound(e.roundReports, thresholdBeta)
}

// AdvanceRound finalizes the open round and opens the next one (or commits
// the final answer), returning the new broadcast state. Validate-then-
// commit: the live accumulator is snapshot-copied into a scratch oracle and
// the scratch is finalized, so any failure leaves the open round absorbing
// exactly as before.
func (e *Engine) AdvanceRound() (proto.RoundState, error) {
	if e.done {
		return proto.RoundState{}, errors.New("interactive: AdvanceRound after the final round committed")
	}
	// Scratch finalization (Finalize is irreversible; never run it on the
	// live accumulator).
	scratch, err := freqoracle.NewDirectHistogram(e.p.Eps, len(e.cands)+1)
	if err != nil {
		return proto.RoundState{}, err
	}
	snap, err := e.hist.Snapshot()
	if err != nil {
		return proto.RoundState{}, err
	}
	if err := scratch.Restore(snap); err != nil {
		return proto.RoundState{}, err
	}
	scale := 1.0
	if e.roundReports > 0 {
		scale = float64(e.p.N) / float64(e.roundReports)
	}
	theta := e.threshold(scale) // reads the live hist's ErrorBound; compute before any commit
	scratch.Finalize()
	view := scratch.HistogramView() // len(cands)+1; the last cell is "other"

	// Population-scaled votes per candidate. Each slot is written exactly
	// once by a pure function of its index, so the scan is deterministic at
	// any worker count.
	votes := make([]float64, len(e.cands))
	workers := e.p.Workers
	if workers <= 0 {
		workers = 1
	}
	par.Range(len(e.cands), workers, func(i int) {
		votes[i] = scale * view[i]
	})

	// Prune. Survivor order is a strict total order in both modes, so the
	// transition is reproducible from the tally alone.
	type scored struct {
		prefix []byte
		vote   float64
	}
	var survivors []scored
	for i, v := range votes {
		keep := v > 0
		if e.p.Mode == ModeFedTrie {
			keep = v >= theta
		}
		if keep {
			survivors = append(survivors, scored{e.cands[i], v})
		}
	}
	sort.Slice(survivors, func(a, b int) bool {
		if survivors[a].vote != survivors[b].vote {
			return survivors[a].vote > survivors[b].vote
		}
		return bytes.Compare(survivors[a].prefix, survivors[b].prefix) < 0
	})
	if len(survivors) > e.p.Cap {
		survivors = survivors[:e.p.Cap]
	}

	last := e.round == e.p.Rounds-1
	if last || len(survivors) == 0 {
		// Commit the final answer: survivors carry full-width prefixes on
		// the last round (bitsAt(Rounds-1) == bits). An early empty round
		// ends discovery with an empty answer — nothing survived to extend.
		est := make([]proto.Estimate, 0, len(survivors))
		for _, s := range survivors {
			if !last {
				break // pruned-out mid-protocol: no full-width items exist
			}
			est = append(est, proto.Estimate{Item: s.prefix, Count: s.vote})
		}
		if e.p.Mode == ModePEM && len(est) > e.p.TopK {
			est = est[:e.p.TopK]
		}
		e.done = true
		e.estimates = est
		e.cands = nil
		e.hist = nil
		e.roundReports = 0
		return e.RoundState(), nil
	}

	// Extend each survivor by the next step's bits; survivors re-sorted to
	// canonical (ascending) order first so the extended list is canonical by
	// construction.
	sort.Slice(survivors, func(a, b int) bool {
		return bytes.Compare(survivors[a].prefix, survivors[b].prefix) < 0
	})
	prefixes := make([][]byte, len(survivors))
	for i, s := range survivors {
		prefixes[i] = s.prefix
	}
	next := make([][]byte, 0, len(prefixes)<<(e.bitsAt(e.round+1)-e.bitsAt(e.round)))
	for _, p := range prefixes {
		next = extendPrefixes(next, e.bitsAt(e.round), e.bitsAt(e.round+1), p)
	}
	if err := e.openRound(e.round+1, next); err != nil {
		return proto.RoundState{}, err
	}
	return e.RoundState(), nil
}

// extendPrefixes appends every (to−from)-bit extension of prefix (given at
// width from bits) to dst at width to bits, MSB-first so ascending extension
// values keep byte order ascending. A nil prefix at from = 0 extends the
// empty prefix (round 0 initialization).
func extendPrefixes(dst [][]byte, from, to int, prefix ...[]byte) [][]byte {
	var base []byte
	if len(prefix) > 0 {
		base = prefix[0]
	}
	nb := (to + 7) / 8
	d := to - from
	for val := 0; val < 1<<d; val++ {
		c := make([]byte, nb)
		copy(c, base)
		for j := 0; j < d; j++ {
			if val>>(d-1-j)&1 == 1 {
				pos := from + j
				c[pos/8] |= 0x80 >> (pos % 8)
			}
		}
		dst = append(dst, c)
	}
	return dst
}

// RoundState returns the open round's broadcast state (or the terminal Done
// state): candidates are deep-copied so callers can hold them across an
// advance.
func (e *Engine) RoundState() proto.RoundState {
	rs := proto.RoundState{
		Round:        e.round,
		Rounds:       e.p.Rounds,
		PrefixBits:   e.bitsAt(e.round),
		Done:         e.done,
		GroupReports: e.roundReports,
	}
	if !e.done {
		rs.Candidates = make([][]byte, len(e.cands))
		for i, c := range e.cands {
			rs.Candidates[i] = append([]byte(nil), c...)
		}
	}
	return rs
}

// validateCandidates checks a broadcast candidate set is canonical for the
// given width: non-empty, each entry ceil(bits/8) bytes with trailing bits
// zero, strictly increasing, and within the per-round domain bound.
func validateCandidates(cands [][]byte, bits int) error {
	if len(cands) == 0 {
		return errors.New("interactive: empty candidate set")
	}
	if len(cands) >= maxRoundDomain {
		return fmt.Errorf("interactive: %d candidates exceed the per-round bound %d", len(cands), maxRoundDomain)
	}
	nb := (bits + 7) / 8
	var mask byte
	if rem := bits % 8; rem != 0 {
		mask = byte(0xFF >> rem)
	}
	for i, c := range cands {
		if len(c) != nb {
			return fmt.Errorf("interactive: candidate %d is %d bytes, want %d for %d bits", i, len(c), nb, bits)
		}
		if mask != 0 && c[nb-1]&mask != 0 {
			return fmt.Errorf("interactive: candidate %d has nonzero bits beyond width %d", i, bits)
		}
		if i > 0 && bytes.Compare(cands[i-1], c) >= 0 {
			return fmt.Errorf("interactive: candidates not strictly increasing at %d", i)
		}
	}
	return nil
}

// SetRoundState installs a server broadcast: devices call it (directly or
// through the facade/wire client) before computing a round report, and tree
// deployments use it to provision fresh per-round leaf aggregators. The
// state must match this engine's schedule exactly; installing a Done state
// is rejected. Commit resets the round accumulator — a leaf provisioned
// this way starts the round empty.
func (e *Engine) SetRoundState(rs proto.RoundState) error {
	if rs.Done {
		return errors.New("interactive: cannot install a Done round state")
	}
	if rs.Rounds != e.p.Rounds {
		return fmt.Errorf("interactive: broadcast is for %d rounds, engine has %d", rs.Rounds, e.p.Rounds)
	}
	if rs.Round < 0 || rs.Round >= e.p.Rounds {
		return fmt.Errorf("interactive: broadcast round %d outside [0,%d)", rs.Round, e.p.Rounds)
	}
	if want := e.bitsAt(rs.Round); rs.PrefixBits != want {
		return fmt.Errorf("interactive: broadcast width %d bits, schedule says round %d is %d bits", rs.PrefixBits, rs.Round, want)
	}
	if err := validateCandidates(rs.Candidates, rs.PrefixBits); err != nil {
		return err
	}
	cands := make([][]byte, len(rs.Candidates))
	for i, c := range rs.Candidates {
		cands[i] = append([]byte(nil), c...)
	}
	return e.openRound(rs.Round, cands)
}

// Identify returns the final population-scaled estimates, sorted count
// descending (ties by ascending item bytes). It errors until the final
// round has committed — interactive protocols end by advancing, not by a
// server-side reconstruction.
func (e *Engine) Identify() ([]proto.Estimate, error) {
	if !e.done {
		return nil, fmt.Errorf("interactive: round %d of %d still open; advance rounds to completion before Identify",
			e.round, e.p.Rounds)
	}
	out := make([]proto.Estimate, len(e.estimates))
	for i, est := range e.estimates {
		out[i] = proto.Estimate{Item: append([]byte(nil), est.Item...), Count: est.Count}
	}
	return out, nil
}

// Done reports whether the final round has committed.
func (e *Engine) Done() bool { return e.done }

// TotalReports returns the report count absorbed across all rounds.
func (e *Engine) TotalReports() int { return e.absorbed }

// SketchBytes returns resident server memory: the open round's oracle plus
// the candidate list (or the final estimates once done).
func (e *Engine) SketchBytes() int {
	b := 0
	if e.hist != nil {
		b += e.hist.SketchBytes()
	}
	for _, c := range e.cands {
		b += len(c)
	}
	for _, est := range e.estimates {
		b += len(est.Item) + 8
	}
	return b
}

// MinRecoverableFrequency returns the population-scaled per-round error
// envelope at β = 0.05: the smallest count the protocol reliably carries
// through every pruning step, assuming balanced groups of N/Rounds users.
func (e *Engine) MinRecoverableFrequency() float64 {
	groupN := e.p.N / e.p.Rounds
	if groupN < 1 {
		groupN = 1
	}
	ceps := (math.Exp(e.p.Eps) + 1) / (math.Exp(e.p.Eps) - 1)
	envelope := ceps * math.Sqrt(2*float64(groupN)*math.Log(2/thresholdBeta))
	scaled := float64(e.p.N) / float64(groupN) * envelope
	if e.p.Mode == ModeFedTrie && e.p.Theta > scaled {
		return e.p.Theta
	}
	return scaled
}
