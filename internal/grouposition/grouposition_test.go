package grouposition

import (
	"math"
	"math/rand/v2"
	"testing"

	"ldphh/internal/dist"
	"ldphh/internal/ldp"
)

func TestBoundFormulas(t *testing.T) {
	// Theorem 4.2 at eps=0.1, k=100, delta=1e-6:
	// ε' = 100·0.01/2 + 0.1·sqrt(200·ln(1e6)) = 0.5 + 0.1·sqrt(2763.1...).
	got := AdvancedGroupEpsilon(0.1, 100, 1e-6)
	want := 0.5 + 0.1*math.Sqrt(200*math.Log(1e6))
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("AdvancedGroupEpsilon = %f, want %f", got, want)
	}
	if CentralGroupEpsilon(0.1, 100) != 10 {
		t.Error("CentralGroupEpsilon wrong")
	}
	// For large k and small eps, advanced ≪ central (the point of §4).
	if AdvancedGroupEpsilon(0.1, 10000, 1e-9) >= CentralGroupEpsilon(0.1, 10000) {
		t.Error("advanced grouposition not beating central at k=10000")
	}
	// For k=1 it is worse (the price of the δ slack) — sanity that the
	// crossover exists.
	if AdvancedGroupEpsilon(0.1, 1, 1e-9) <= CentralGroupEpsilon(0.1, 1) {
		t.Error("unexpected free lunch at k=1")
	}
}

func TestApproxGroup(t *testing.T) {
	epsPrime, deltaOut := ApproxGroup(0.2, 1e-8, 50, 1e-6)
	if epsPrime != AdvancedGroupEpsilon(0.2, 50, 1e-6) {
		t.Error("ApproxGroup eps mismatch")
	}
	if math.Abs(deltaOut-(1e-8+50e-6)) > 1e-15 {
		t.Errorf("ApproxGroup delta = %g", deltaOut)
	}
}

func TestMaxInformationMatchesTheorem45(t *testing.T) {
	if MaxInformation(0.1, 1000, 0.01) != AdvancedGroupEpsilon(0.1, 1000, 0.01) {
		t.Error("Theorem 4.5 is advanced grouposition at k=n")
	}
	if CentralMaxInformation(0.1, 1000) != 100 {
		t.Error("central max-information wrong")
	}
}

func TestExpectedLossBoundedByHalfEpsSquared(t *testing.T) {
	// [5] Proposition 3.3: KL(R(x)||R(x')) <= ε²/2 for ε-DP randomizers —
	// the engine of Theorem 4.2. Verify exactly for RR across epsilons.
	for _, eps := range []float64{0.05, 0.1, 0.5, 1.0} {
		r := ldp.NewBinaryRR(eps)
		kl := ExpectedLoss(r, 0, 1)
		if kl > eps*eps/2+1e-12 {
			t.Errorf("eps=%.2f: KL=%g exceeds eps²/2=%g", eps, kl, eps*eps/2)
		}
		if kl <= 0 {
			t.Errorf("eps=%.2f: KL=%g not positive", eps, kl)
		}
	}
}

// TestTheorem42Empirically is experiment E8's core assertion: the measured
// privacy-loss tail respects Pr[loss > ε'] <= δ, and the √k scaling beats
// the central model's kε for large k.
func TestTheorem42Empirically(t *testing.T) {
	const eps = 0.2
	const delta = 0.05
	const trials = 20000
	rng := rand.New(rand.NewPCG(1, 2))
	r := ldp.NewBinaryRR(eps)
	for _, k := range []int{10, 50, 200} {
		losses := SimulateWorstCaseLoss(r, k, trials, rng)
		bound := AdvancedGroupEpsilon(eps, k, delta)
		exceed := 0
		for _, l := range losses {
			if l > bound {
				exceed++
			}
		}
		measured := float64(exceed) / trials
		// Allow Monte-Carlo slack: 3 standard errors above delta.
		slack := 3 * math.Sqrt(delta*(1-delta)/trials)
		if measured > delta+slack {
			t.Errorf("k=%d: Pr[loss > ε'] = %.4f exceeds δ=%.2f", k, measured, delta)
		}
		// The loss should concentrate near kε²/2, far below kε for these k.
		mean := dist.Mean(losses)
		if math.Abs(mean-float64(k)*eps*eps/2) > float64(k)*eps*eps/2*0.5+0.1 {
			t.Errorf("k=%d: mean loss %.3f far from kε²/2 = %.3f", k, mean, float64(k)*eps*eps/2)
		}
		if bound >= CentralGroupEpsilon(eps, k) && k >= 200 {
			t.Errorf("k=%d: advanced bound %f not beating central %f", k, bound, CentralGroupEpsilon(eps, k))
		}
	}
}

func TestExperimentRows(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	rows, err := Experiment(0.1, []int{4, 16, 64}, 0.05, 4000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, row := range rows {
		if row.MeasuredQuant > row.AdvancedBound {
			t.Errorf("k=%d: measured quantile %.3f exceeds bound %.3f",
				row.K, row.MeasuredQuant, row.AdvancedBound)
		}
	}
	// Quantiles must grow with k.
	if !(rows[0].MeasuredQuant < rows[2].MeasuredQuant) {
		t.Error("loss quantile not increasing in k")
	}
	if _, err := Experiment(0, []int{2}, 0.1, 10, rng); err == nil {
		t.Error("eps 0 accepted")
	}
}

// TestLossConcentrationBeyondRR probes the paper's Section 5 remark that
// advanced composition behaviour under pure LDP "might hold for more
// general mechanisms": the privacy loss of k composed Hadamard-bit
// randomizers (the Hashtogram mechanism) concentrates near k·KL, far below
// the worst case k·ε, exactly like randomized response.
func TestLossConcentrationBeyondRR(t *testing.T) {
	const eps = 0.25
	const k = 400
	const trials = 20000
	r := ldp.NewHadamardBit(eps, 16)
	// Worst-case input pair for one coordinate: two bucket values whose
	// Hadamard rows differ in half the columns (any distinct pair does).
	xs := make([]uint64, k)
	xps := make([]uint64, k)
	for i := range xps {
		xps[i] = 1
	}
	rng := rand.New(rand.NewPCG(77, 78))
	losses := SimulateWorstCaseLoss(r, k, trials, rng)
	_ = xs
	bound := AdvancedGroupEpsilon(eps, k, 0.05)
	exceed := 0
	for _, l := range losses {
		if l > bound {
			exceed++
		}
	}
	if measured := float64(exceed) / trials; measured > 0.05+3*math.Sqrt(0.05/trials) {
		t.Errorf("HadamardBit composition: Pr[loss > ε'] = %.4f exceeds 0.05", measured)
	}
	mean := dist.Mean(losses)
	klPer := ExpectedLoss(r, 0, 1)
	if math.Abs(mean-float64(k)*klPer) > float64(k)*klPer*0.2+0.2 {
		t.Errorf("mean loss %.3f far from k·KL = %.3f", mean, float64(k)*klPer)
	}
	if bound >= CentralGroupEpsilon(eps, k) {
		t.Error("advanced bound should beat kε at k=400")
	}
}

// TestTheorem43ApproximateGroupPrivacy verifies the (ε,δ) extension: for a
// genuinely approximate randomizer (LeakyRR), the k-coordinate privacy loss
// exceeds ε' = AdvancedGroupEpsilon(eps, k, δ') with probability at most
// ~ k·δ + k·δ' (leaks are the infinite-loss events; Theorem 4.3's additive
// δ-term budget).
func TestTheorem43ApproximateGroupPrivacy(t *testing.T) {
	const eps = 0.2
	const delta = 0.001
	const deltaPrime = 0.01
	const trials = 30000
	r := ldp.NewLeakyRR(eps, delta)
	rng := rand.New(rand.NewPCG(43, 43))
	for _, k := range []int{5, 20, 80} {
		epsPrime, deltaOut := ApproxGroup(eps, 0, k, deltaPrime)
		// Protocol-level delta budget: each of the k coordinates leaks
		// independently with probability delta.
		budget := float64(k)*delta + deltaOut
		losses := SimulateWorstCaseLoss(r, k, trials, rng)
		exceed, leaks := 0, 0
		for _, l := range losses {
			if l > epsPrime {
				exceed++
			}
			if math.IsInf(l, 1) {
				leaks++
			}
		}
		measured := float64(exceed) / trials
		slack := 3 * math.Sqrt(budget/trials)
		if measured > budget+slack {
			t.Errorf("k=%d: Pr[loss > ε'] = %.4f exceeds budget %.4f", k, measured, budget)
		}
		// Leaks must actually occur at roughly rate 1-(1-δ)^k, proving the
		// test subject is genuinely approximate.
		wantLeaks := float64(trials) * (1 - math.Pow(1-delta, float64(k)))
		if k >= 20 && (float64(leaks) < wantLeaks/2 || float64(leaks) > wantLeaks*2) {
			t.Errorf("k=%d: %d infinite-loss events, want ~%.0f", k, leaks, wantLeaks)
		}
	}
}

func TestValidationPanics(t *testing.T) {
	cases := []func(){
		func() { AdvancedGroupEpsilon(0.1, -1, 0.01) },
		func() { AdvancedGroupEpsilon(0.1, 5, 0) },
		func() { AdvancedGroupEpsilon(0.1, 5, 1) },
		func() { SimulateWorstCaseLoss(ldp.NewBinaryRR(1), 0, 10, rand.New(rand.NewPCG(1, 1))) },
		func() { LossSample(ldp.NewBinaryRR(1), []uint64{0}, []uint64{0, 1}, rand.New(rand.NewPCG(1, 1))) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func BenchmarkLossSampleK1000(b *testing.B) {
	r := ldp.NewBinaryRR(0.1)
	rng := rand.New(rand.NewPCG(1, 1))
	xs := make([]uint64, 1000)
	xps := make([]uint64, 1000)
	for i := range xps {
		xps[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LossSample(r, xs, xps, rng)
	}
}
