// Package grouposition implements Section 4 of the paper: "advanced
// grouposition" — in the local model, group privacy for k users degrades as
// ≈ √k·ε rather than the central model's k·ε — and the resulting
// max-information bound (Theorem 4.5). It provides both the closed-form
// bound calculators and a Monte-Carlo privacy-loss simulator that
// experiments use to verify the bounds empirically.
package grouposition

import (
	"fmt"
	"math"
	"math/rand/v2"

	"ldphh/internal/dist"
	"ldphh/internal/ldp"
)

// CentralGroupEpsilon is the classic central-model group privacy bound:
// an ε-DP algorithm is kε-DP for groups of size k.
func CentralGroupEpsilon(eps float64, k int) float64 {
	return float64(k) * eps
}

// AdvancedGroupEpsilon is Theorem 4.2: an ε-LDP protocol satisfies
// (ε', δ)-indistinguishability for inputs differing in k entries with
//
//	ε' = k·ε²/2 + ε·sqrt(2·k·ln(1/δ)).
func AdvancedGroupEpsilon(eps float64, k int, delta float64) float64 {
	if k < 0 {
		panic("grouposition: k must be non-negative")
	}
	if delta <= 0 || delta >= 1 {
		panic("grouposition: delta must be in (0,1)")
	}
	fk := float64(k)
	return fk*eps*eps/2 + eps*math.Sqrt(2*fk*math.Log(1/delta))
}

// ApproxGroup is Theorem 4.3: for an (ε, δ)-LDP protocol and inputs
// differing in k entries, Pr[A(x) ∈ T] <= e^{ε'}·Pr[A(x') ∈ T] + δ + k·δ'
// with ε' = AdvancedGroupEpsilon(eps, k, deltaPrime).
func ApproxGroup(eps, delta float64, k int, deltaPrime float64) (epsPrime, deltaOut float64) {
	epsPrime = AdvancedGroupEpsilon(eps, k, deltaPrime)
	deltaOut = delta + float64(k)*deltaPrime
	return epsPrime, deltaOut
}

// MaxInformation is Theorem 4.5: an ε-LDP protocol on n users has
// β-approximate max-information at most n·ε²/2 + ε·sqrt(2·n·ln(1/β)) nats,
// for *arbitrary* (non-product!) input distributions — the improvement over
// the central model that powers adaptive-data-analysis guarantees.
func MaxInformation(eps float64, n int, beta float64) float64 {
	return AdvancedGroupEpsilon(eps, n, beta)
}

// CentralMaxInformation is the Dwork et al. central-model pure-DP bound
// I_∞(A, n) <= n·ε (nats, up to the log e factor conventions), valid without
// the product-distribution restriction only in the form εn.
func CentralMaxInformation(eps float64, n int) float64 {
	return float64(n) * eps
}

// LossSample draws one privacy-loss realization for a group of size k: the
// product protocol A = (R, ..., R) runs on x, and the loss is
// Σ_i ln(Pr[R(x_i)=y_i]/Pr[R(x'_i)=y_i]) for y ← A(x), where (x_i, x'_i)
// are the k differing coordinate pairs.
func LossSample(r ldp.Randomizer, xs, xps []uint64, rng *rand.Rand) float64 {
	if len(xs) != len(xps) {
		panic("grouposition: coordinate slices must align")
	}
	loss := 0.0
	for i := range xs {
		y := r.Sample(xs[i], rng)
		loss += math.Log(r.Prob(xs[i], y) / r.Prob(xps[i], y))
	}
	return loss
}

// SimulateWorstCaseLoss draws trials of the privacy loss for the worst-case
// group input (every coordinate flips a randomized-response bit, which
// maximizes per-coordinate loss for RR-style randomizers): x = 0^k vs
// x' = 1^k under the given randomizer.
func SimulateWorstCaseLoss(r ldp.Randomizer, k, trials int, rng *rand.Rand) []float64 {
	if k < 1 || trials < 1 {
		panic("grouposition: k and trials must be positive")
	}
	xs := make([]uint64, k)
	xps := make([]uint64, k)
	for i := range xps {
		xps[i] = 1
	}
	out := make([]float64, trials)
	for t := range out {
		out[t] = LossSample(r, xs, xps, rng)
	}
	return out
}

// ExpectedLoss returns the exact expected per-coordinate privacy loss
// KL(R(x) || R(x')) for the randomizer, which Theorem 4.2's proof bounds by
// ε²/2 ([5] Proposition 3.3).
func ExpectedLoss(r ldp.Randomizer, x, xp uint64) float64 {
	kl := 0.0
	for y := uint64(0); y < r.NumOutputs(); y++ {
		p := r.Prob(x, y)
		if p == 0 {
			continue
		}
		q := r.Prob(xp, y)
		if q == 0 {
			return math.Inf(1)
		}
		kl += p * math.Log(p/q)
	}
	return kl
}

// Row is one line of the experiment-E8 table: for group size K, the measured
// (1-Delta)-quantile of the privacy loss versus the advanced and central
// bounds.
type Row struct {
	K             int
	Delta         float64
	MeasuredQuant float64
	AdvancedBound float64
	CentralBound  float64
}

// Experiment runs the E8 Monte-Carlo across group sizes for binary
// randomized response at eps, with the given per-row trial count.
func Experiment(eps float64, ks []int, delta float64, trials int, rng *rand.Rand) ([]Row, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("grouposition: eps must be positive")
	}
	r := ldp.NewBinaryRR(eps)
	rows := make([]Row, 0, len(ks))
	for _, k := range ks {
		losses := SimulateWorstCaseLoss(r, k, trials, rng)
		rows = append(rows, Row{
			K:             k,
			Delta:         delta,
			MeasuredQuant: dist.Quantile(losses, 1-delta),
			AdvancedBound: AdvancedGroupEpsilon(eps, k, delta),
			CentralBound:  CentralGroupEpsilon(eps, k),
		})
	}
	return rows, nil
}
