package core

import (
	"bytes"
	"fmt"
	"math/rand/v2"
	"testing"
)

func snapTestParams(seed uint64) Params {
	return Params{Eps: 4, N: 20000, ItemBytes: 4, Y: 16, Seed: seed}
}

// snapTestReports builds a deterministic planted report stream: items 1 and
// 2 are heavy, the tail is spread thin, so Identify has real output to
// compare bit for bit.
func snapTestReports(t testing.TB, params Params, n int) []Report {
	t.Helper()
	proto, err := New(params)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(21, 22))
	reports := make([]Report, n)
	for i := range reports {
		var item [4]byte
		switch {
		case i%10 < 4:
			item[3] = 1
		case i%10 < 7:
			item[3] = 2
		default:
			item[2] = byte(i % 97)
			item[3] = byte(i % 251)
		}
		rep, err := proto.Report(item[:], i, rng)
		if err != nil {
			t.Fatal(err)
		}
		reports[i] = rep
	}
	return reports
}

func identifyAll(t testing.TB, pr *Protocol) []Estimate {
	t.Helper()
	est, err := pr.Identify()
	if err != nil {
		t.Fatal(err)
	}
	return est
}

func assertIdenticalEstimates(t *testing.T, got, want []Estimate) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("identified %d items, want %d", len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i].Item, want[i].Item) || got[i].Count != want[i].Count {
			t.Fatalf("rank %d diverged: %x/%v vs %x/%v",
				i, got[i].Item, got[i].Count, want[i].Item, want[i].Count)
		}
	}
}

// TestProtocolMergeEquivalence is the protocol-layer half of the tentpole
// property: for k ∈ {1, 2, 4} leaf aggregators each ingesting a share of
// the same report stream, root Identify after snapshot+merge is
// bit-identical — same items, same order, same float64 counts — to a
// single aggregator ingesting everything sequentially.
func TestProtocolMergeEquivalence(t *testing.T) {
	const n = 20000
	params := snapTestParams(2024)
	reports := snapTestReports(t, params, n)

	seq, err := New(params)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range reports {
		if err := seq.Absorb(rep); err != nil {
			t.Fatal(err)
		}
	}
	want := identifyAll(t, seq)
	if len(want) == 0 {
		t.Fatal("sequential round identified nothing; the equivalence check would be vacuous")
	}

	for _, k := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("leaves_%d", k), func(t *testing.T) {
			leaves := make([]*Protocol, k)
			for l := range leaves {
				var err error
				if leaves[l], err = New(params); err != nil {
					t.Fatal(err)
				}
			}
			for i, rep := range reports {
				if err := leaves[i%k].Absorb(rep); err != nil {
					t.Fatal(err)
				}
			}
			root, err := New(params)
			if err != nil {
				t.Fatal(err)
			}
			for _, leaf := range leaves {
				snap, err := leaf.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				if err := root.MergeSnapshot(snap); err != nil {
					t.Fatal(err)
				}
			}
			if root.TotalReports() != n {
				t.Fatalf("root holds %d reports, want %d", root.TotalReports(), n)
			}
			assertIdenticalEstimates(t, identifyAll(t, root), want)
		})
	}
}

// TestProtocolMergeFromEquivalence covers the in-process fold: leaves merge
// directly into the root without an explicit snapshot round trip.
func TestProtocolMergeFromEquivalence(t *testing.T) {
	const n = 12000
	params := snapTestParams(7)
	reports := snapTestReports(t, params, n)

	seq, err := New(params)
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.AbsorbBatch(reports, 1); err != nil {
		t.Fatal(err)
	}
	want := identifyAll(t, seq)

	root, err := New(params)
	if err != nil {
		t.Fatal(err)
	}
	const k = 3
	for l := 0; l < k; l++ {
		leaf, err := New(params)
		if err != nil {
			t.Fatal(err)
		}
		for i := l; i < n; i += k {
			if err := leaf.Absorb(reports[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := root.MergeFrom(leaf); err != nil {
			t.Fatal(err)
		}
	}
	assertIdenticalEstimates(t, identifyAll(t, root), want)
}

// TestProtocolSnapshotRestoreResume covers checkpoint/resume: absorb half,
// snapshot, restore into a fresh protocol, absorb the rest — identical
// Identify output to the uninterrupted run.
func TestProtocolSnapshotRestoreResume(t *testing.T) {
	const n = 12000
	params := snapTestParams(99)
	reports := snapTestReports(t, params, n)

	a, err := New(params)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n/2; i++ {
		if err := a.Absorb(reports[i]); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(params)
	if err != nil {
		t.Fatal(err)
	}
	// Restore replaces state: pre-pollute b to prove the replacement is
	// total, not additive.
	for i := 0; i < 100; i++ {
		if err := b.Absorb(reports[n-1-i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if b.TotalReports() != n/2 {
		t.Fatalf("restored protocol holds %d reports, want %d", b.TotalReports(), n/2)
	}
	for i := n / 2; i < n; i++ {
		if err := b.Absorb(reports[i]); err != nil {
			t.Fatal(err)
		}
	}
	c, err := New(params)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range reports {
		if err := c.Absorb(rep); err != nil {
			t.Fatal(err)
		}
	}
	assertIdenticalEstimates(t, identifyAll(t, b), identifyAll(t, c))
}

func TestProtocolSnapshotValidation(t *testing.T) {
	params := snapTestParams(5)
	pr, err := New(params)
	if err != nil {
		t.Fatal(err)
	}
	reports := snapTestReports(t, params, 500)
	for _, rep := range reports {
		if err := pr.Absorb(rep); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := pr.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	fresh := func() *Protocol {
		p, err := New(params)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	t.Run("round trip", func(t *testing.T) {
		p := fresh()
		if err := p.Restore(snap); err != nil {
			t.Fatal(err)
		}
		out, err := p.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, snap) {
			t.Error("snapshot round trip not canonical")
		}
	})
	t.Run("fingerprint rejects different seed", func(t *testing.T) {
		other, err := New(snapTestParams(6))
		if err != nil {
			t.Fatal(err)
		}
		if err := other.Restore(snap); err == nil {
			t.Error("snapshot from different seed accepted")
		}
		if err := other.MergeSnapshot(snap); err == nil {
			t.Error("merge from different seed accepted")
		}
		if err := other.MergeFrom(pr); err == nil {
			t.Error("MergeFrom across seeds accepted")
		}
	})
	t.Run("fingerprint rejects different shape", func(t *testing.T) {
		p := snapTestParams(5)
		p.Y = 32
		other, err := New(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := other.Restore(snap); err == nil {
			t.Error("snapshot from different geometry accepted")
		}
	})
	t.Run("workers excluded from fingerprint", func(t *testing.T) {
		p := snapTestParams(5)
		p.Workers = 3
		other, err := New(p)
		if err != nil {
			t.Fatal(err)
		}
		if other.Fingerprint() != pr.Fingerprint() {
			t.Error("Workers changed the fingerprint; it must stay a pure throughput knob")
		}
		if err := other.Restore(snap); err != nil {
			t.Errorf("snapshot rejected across worker counts: %v", err)
		}
	})
	corruptions := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"truncated header", func(b []byte) []byte { return b[:10] }},
		{"truncated body", func(b []byte) []byte { return b[:len(b)/2] }},
		{"trailing bytes", func(b []byte) []byte { return append(b, 0) }},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }},
		{"bad version", func(b []byte) []byte { b[4] = 99; return b }},
		{"corrupt fingerprint", func(b []byte) []byte { b[5] ^= 1; return b }},
		{"corrupt group count", func(b []byte) []byte { b[25] ^= 1; return b }},
		{"negative total", func(b []byte) []byte { b[17] |= 0x80; return b }},
		{"NaN tail payload", func(b []byte) []byte {
			copy(b[len(b)-8:], []byte{0x7f, 0xf8, 0, 0, 0, 0, 0, 1})
			return b
		}},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			p := fresh()
			buf := tc.mutate(append([]byte(nil), snap...))
			if err := p.Restore(buf); err == nil {
				t.Fatalf("%s accepted", tc.name)
			}
			if err := p.MergeSnapshot(buf); err == nil {
				t.Fatalf("%s accepted by MergeSnapshot", tc.name)
			}
			// Atomicity: the failed restore left no partial state behind.
			if p.TotalReports() != 0 {
				t.Errorf("%s mutated protocol state on failure", tc.name)
			}
		})
	}
	t.Run("after identify", func(t *testing.T) {
		p := fresh()
		if err := p.Restore(snap); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Identify(); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Snapshot(); err == nil {
			t.Error("Snapshot after Identify accepted")
		}
		if err := p.Restore(snap); err == nil {
			t.Error("Restore after Identify accepted")
		}
		if err := p.MergeSnapshot(snap); err == nil {
			t.Error("MergeSnapshot after Identify accepted")
		}
	})
}

// TestProtocolMergeSnapshotConcurrent merges leaf snapshots from concurrent
// goroutines while report traffic is still arriving — the root aggregator's
// real workload — and checks the total and the Identify output match the
// sequential reference. Run under -race this also proves the locking is
// sound.
func TestProtocolMergeSnapshotConcurrent(t *testing.T) {
	const n = 8000
	const k = 4
	params := snapTestParams(31)
	reports := snapTestReports(t, params, 2*n)
	direct, snapshotted := reports[:n], reports[n:]

	seq, err := New(params)
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.AbsorbBatch(reports, 1); err != nil {
		t.Fatal(err)
	}
	want := identifyAll(t, seq)

	snaps := make([][]byte, k)
	for l := 0; l < k; l++ {
		leaf, err := New(params)
		if err != nil {
			t.Fatal(err)
		}
		for i := l; i < n; i += k {
			if err := leaf.Absorb(snapshotted[i]); err != nil {
				t.Fatal(err)
			}
		}
		if snaps[l], err = leaf.Snapshot(); err != nil {
			t.Fatal(err)
		}
	}

	root, err := New(params)
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, k+1)
	for l := 0; l < k; l++ {
		go func(snap []byte) { errCh <- root.MergeSnapshot(snap) }(snaps[l])
	}
	go func() { errCh <- root.AbsorbBatch(direct, 2) }()
	for i := 0; i < k+1; i++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
	if root.TotalReports() != 2*n {
		t.Fatalf("root holds %d reports, want %d", root.TotalReports(), 2*n)
	}
	assertIdenticalEstimates(t, identifyAll(t, root), want)
}
