package core

// Benchmark for the steps 2-3 admission scan — the per-coordinate argmax
// kernel Identify spends its scan phase in. The protocol is built and
// absorbed once outside the timer; the measured loop replays the full
// M-coordinate scan against the frozen per-coordinate oracles, which is
// exactly the work par.Range distributes inside Identify.

import (
	"encoding/binary"
	"math/rand/v2"
	"testing"

	"ldphh/internal/listrec"
)

func benchScanProtocol(b *testing.B) *Protocol {
	b.Helper()
	pr, err := New(Params{Eps: 4, N: 30000, ItemBytes: 4, Y: 64, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(5, 6))
	var item [4]byte
	for i := 0; i < 30000; i++ {
		binary.BigEndian.PutUint32(item[:], uint32(i%512))
		rep, err := pr.Report(item[:], i, rng)
		if err != nil {
			b.Fatal(err)
		}
		if err := pr.Absorb(rep); err != nil {
			b.Fatal(err)
		}
	}
	for m := range pr.direct {
		pr.direct[m].Finalize()
	}
	return pr
}

func BenchmarkPESArgmaxScan(b *testing.B) {
	pr := benchScanProtocol(b)
	lists := make([][][]listrec.Symbol, pr.p.B)
	for bb := range lists {
		lists[bb] = make([][]listrec.Symbol, pr.p.M)
	}
	cells := pr.p.CellsPerCoordinate(pr.zbits)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for m := 0; m < pr.p.M; m++ {
			pr.scanLists(m, lists)
		}
	}
	b.ReportMetric(float64(pr.p.M*cells), "cells/op")
}
