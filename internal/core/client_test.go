package core

import (
	"bytes"
	"math"
	"math/rand/v2"
	"sync"
	"testing"

	"ldphh/internal/workload"
)

// TestClientServerInterop: a Client constructed *independently* from the
// same Params must produce reports the server accepts and decodes —
// the deployment-critical property that devices never need the server's
// in-memory object, only Params.
func TestClientServerInterop(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end protocol run")
	}
	const n = 30000
	params := Params{Eps: 4, N: n, ItemBytes: 4, Y: 64, Seed: 2024}
	server, err := New(params)
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(params)
	if err != nil {
		t.Fatal(err)
	}
	dom := workload.Domain{ItemBytes: 4}
	ds, err := workload.Planted(dom, n, []float64{0.30, 0.22}, rand.New(rand.NewPCG(1, 2)))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 4))
	for i, x := range ds.Items {
		rep, err := client.Report(x, i, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := server.Absorb(rep); err != nil {
			t.Fatal(err)
		}
	}
	est, err := server.Identify()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		item := dom.Item(uint64(i))
		if _, found := findEstimate(est, item); !found {
			t.Errorf("item %d not identified via independent client", i)
		}
	}
	if client.MinRecoverableFrequency() != server.Params().MinRecoverableFrequency() {
		t.Error("client/server disagree on the recovery floor")
	}
}

func TestClientReportsMatchServerDerivation(t *testing.T) {
	// Same params + same rng stream => identical reports from the client
	// object and a server-side Report call (they share public randomness).
	params := Params{Eps: 2, N: 1000, ItemBytes: 4, Y: 64, Seed: 5}
	server, err := New(params)
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(params)
	if err != nil {
		t.Fatal(err)
	}
	item := []byte{1, 2, 3, 4}
	a, err := client.Report(item, 7, rand.New(rand.NewPCG(9, 9)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := server.Report(item, 7, rand.New(rand.NewPCG(9, 9)))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("client and server derive different reports from identical randomness")
	}
}

func TestHeavyHittersFilter(t *testing.T) {
	est := []Estimate{
		{Item: []byte("a"), Count: 900},
		{Item: []byte("b"), Count: 500},
		{Item: []byte("c"), Count: 120},
		{Item: []byte("d"), Count: 20},
	}
	out, err := HeavyHitters(est, 1000, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("filter kept %d items, want 3", len(out))
	}
	for _, e := range out {
		if e.Count < 100 {
			t.Errorf("item below delta in output: %+v", e)
		}
	}
	// List-size cap: delta=400 over n=1000 allows at most 2·1000/400 = 5;
	// with a tiny delta the cap binds.
	big := make([]Estimate, 50)
	for i := range big {
		big[i] = Estimate{Item: []byte{byte(i)}, Count: float64(1000 - i)}
	}
	out, err = HeavyHitters(big, 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) > 2*100/50 {
		t.Errorf("list-size bound violated: %d items", len(out))
	}
	// Validation.
	if _, err := HeavyHitters(est, 1000, 0); err == nil {
		t.Error("delta 0 accepted")
	}
	if _, err := HeavyHitters(est, 0, 10); err == nil {
		t.Error("n 0 accepted")
	}
	unsorted := []Estimate{{Count: 1}, {Count: 2}}
	if _, err := HeavyHitters(unsorted, 10, 1); err == nil {
		t.Error("unsorted estimates accepted")
	}
}

func TestSmallDomainProtocol(t *testing.T) {
	// The n > |X| regime: enumerate the domain directly (paper's remark
	// after Theorem 3.13).
	const domainSize = 256
	const n = 40000
	s, err := NewSmallDomain(1.0, 1, domainSize)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	truth := make([]int, domainSize)
	for i := 0; i < n; i++ {
		var v byte
		switch {
		case i < 12000:
			v = 7
		case i < 18000:
			v = 200
		default:
			v = byte(rng.UintN(domainSize))
		}
		truth[v]++
		rep, err := s.Report([]byte{v}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Absorb(rep); err != nil {
			t.Fatal(err)
		}
	}
	bound := s.ErrorBound(n, 0.001/domainSize)
	est := s.Identify(bound)
	// The two planted values must surface with accurate counts.
	for _, v := range []byte{7, 200} {
		got := s.EstimateFrequency([]byte{v})
		if math.Abs(got-float64(truth[v])) > bound {
			t.Errorf("value %d: estimate %.0f, truth %d (bound %.0f)", v, got, truth[v], bound)
		}
		found := false
		for _, e := range est {
			if bytes.Equal(e.Item, []byte{v}) {
				found = true
			}
		}
		if !found {
			t.Errorf("value %d not in Identify output", v)
		}
	}
	if len(est) > 40 {
		t.Errorf("small-domain output bloated: %d items", len(est))
	}
}

func TestSmallDomainValidation(t *testing.T) {
	if _, err := NewSmallDomain(1, 0, 16); err == nil {
		t.Error("ItemBytes 0 accepted")
	}
	if _, err := NewSmallDomain(1, 9, 16); err == nil {
		t.Error("ItemBytes 9 accepted")
	}
	if _, err := NewSmallDomain(1, 1, 1); err == nil {
		t.Error("domain 1 accepted")
	}
	if _, err := NewSmallDomain(1, 1, 300); err == nil {
		t.Error("domain exceeding width accepted")
	}
	s, err := NewSmallDomain(1, 2, 256)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 1))
	if _, err := s.Report([]byte{1}, rng); err == nil {
		t.Error("wrong width accepted")
	}
	if _, err := s.Report([]byte{9, 9}, rng); err == nil {
		t.Error("out-of-domain ordinal accepted")
	}
	if got := s.EstimateFrequency([]byte{9, 9}); got != 0 {
		t.Errorf("out-of-domain estimate %f", got)
	}
}

// TestConcurrentReports: Report is safe for concurrent use with per-worker
// rngs (clients are immutable after construction), and the resulting
// protocol round still identifies the planted items.
func TestConcurrentReports(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end protocol run")
	}
	const n = 30000
	const workers = 8
	params := Params{Eps: 4, N: n, ItemBytes: 4, Y: 64, Seed: 321}
	server, err := New(params)
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(params)
	if err != nil {
		t.Fatal(err)
	}
	dom := workload.Domain{ItemBytes: 4}
	ds, err := workload.Planted(dom, n, []float64{0.30}, rand.New(rand.NewPCG(1, 2)))
	if err != nil {
		t.Fatal(err)
	}
	reports := make([]Report, n)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 9))
			for i := w; i < n; i += workers {
				rep, err := client.Report(ds.Items[i], i, rng)
				if err != nil {
					errs <- err
					return
				}
				reports[i] = rep
			}
			errs <- nil
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, rep := range reports {
		if err := server.Absorb(rep); err != nil {
			t.Fatal(err)
		}
	}
	est, err := server.Identify()
	if err != nil {
		t.Fatal(err)
	}
	if _, found := findEstimate(est, dom.Item(1)); !found {
		t.Error("planted item lost under concurrent report generation")
	}
}

// TestPESZipfWorkload: end-to-end on the Zipf-shaped population the paper's
// applications have (URL/word telemetry), asserting recall over every rank
// above the configuration's floor.
func TestPESZipfWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end protocol run")
	}
	const n = 60000
	dom := workload.Domain{ItemBytes: 4}
	ds, err := workload.Zipf(dom, n, 500, 1.6, rand.New(rand.NewPCG(11, 12)))
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Eps: 4, N: n, ItemBytes: 4, Y: 128, Seed: 88}
	est := runProtocol(t, p, ds, 13)
	pr, _ := New(p)
	floor := pr.Params().MinRecoverableFrequency()
	// With margin: require recall for items 1.3x above the floor.
	for _, h := range ds.HeavierThan(int(1.3 * floor)) {
		if _, found := findEstimate(est, h.Item); !found {
			t.Errorf("zipf item %x (count %d, floor %.0f) not identified", h.Item, h.Count, floor)
		}
	}
}
