// Package core implements PrivateExpanderSketch, the paper's primary
// contribution (Algorithm 1, Theorem 3.13): an ε-LDP heavy-hitters protocol
// with worst-case error O((1/ε)·sqrt(n·log(|X|/β))), optimal in all
// parameters including the failure probability β.
//
// Protocol shape (Section 3.3):
//
//  1. Users are partitioned into M groups. User i in group m reports, at
//     privacy ε/2, the composite value (g(x_i), h_m(x_i), Ẽnc(x_i)_m) into a
//     small-domain DirectHistogram oracle for group m (Theorem 3.8), where g
//     is a Θ(log|X|)-wise independent super-bucket hash and Ẽnc is the
//     unique-list-recoverable code payload of Theorem 3.6.
//  2. For every (m, b, y) the server takes the arg-max payload z and admits
//     (y, z) into list L^b_m if its estimate clears a threshold, capping the
//     list length (steps 2-3 of Algorithm 1; we admit the top-cap by
//     estimate, which dominates the paper's first-come rule and is
//     deterministic).
//  3. Each bucket's lists are decoded, Ĥ^b = Dec(L^b_1..L^b_M) (step 4).
//  4. The same users' second report halves (privacy ε/2) feed a Hashtogram
//     confirmation oracle (Theorem 3.7) that estimates the frequency of each
//     candidate (steps 5-6); each user therefore sends exactly one message
//     carrying both halves, and the whole protocol is non-interactive ε-LDP
//     by basic composition.
package core

import (
	"fmt"
	"math"
	"runtime"

	"ldphh/internal/hadamard"
	"ldphh/internal/listrec"
)

// Params configures PrivateExpanderSketch. Zero fields are derived from
// Eps, N and ItemBytes with the paper's formulas scaled to practical
// constants; see DESIGN.md §3.
type Params struct {
	Eps       float64 // total privacy budget per user (split ε/2 + ε/2)
	N         int     // expected number of users
	ItemBytes int     // fixed item width; |X| = 256^ItemBytes

	// Coordinates and code (Theorem 3.6). M defaults to 2·ItemBytes /
	// ChunkBytes (Reed-Solomon rate 1/2).
	M          int
	ChunkBytes int
	Y          int     // per-coordinate hash range (power of two), default 512
	F          int     // neighbour fingerprint range (power of two), default 2
	D          int     // expander degree, default 4
	B          int     // super-buckets for g, default from ε√n/log^1.5|X| (min 1)
	GWise      int     // independence of g, default max(8, log2|X|/4)
	ListCap    int     // ℓ, default 4·log2|X|
	TauFactor  float64 // admission threshold in units of CEps(ε/2)·sqrt(n_m);
	// default sqrt(2·ln(cells))+1 so τ dominates the maximum of the
	// per-coordinate noise over all B·Y·Z cells (the role of C_f in step 3b)

	// Confirmation oracle (Theorem 3.7) overrides; 0 = derive from N.
	ConfRows int
	ConfT    int

	// Workers bounds the goroutine pool Identify uses for the per-coordinate
	// argmax scan, the per-bucket decode, the confirmation estimates and the
	// final sort. 0 derives runtime.GOMAXPROCS(0); 1 forces the serial path.
	// Workers is a pure throughput knob: Identify output is bit-identical at
	// every worker count (see the package determinism contract in doc.go),
	// and the field does not influence any public randomness, so clients and
	// servers may disagree on it freely.
	Workers int

	Seed uint64 // public randomness seed
}

func (p *Params) setDefaults() error {
	if p.Eps <= 0 {
		return fmt.Errorf("core: Eps must be positive, got %v", p.Eps)
	}
	if p.N <= 0 {
		return fmt.Errorf("core: N must be positive, got %d", p.N)
	}
	if p.ItemBytes < 1 || p.ItemBytes > 64 {
		return fmt.Errorf("core: ItemBytes must be in [1,64], got %d", p.ItemBytes)
	}
	if p.ChunkBytes == 0 {
		p.ChunkBytes = 1
	}
	if p.M == 0 {
		p.M = 2 * p.ItemBytes / p.ChunkBytes
		if p.M < 4 {
			p.M = 4
		}
	}
	if p.Y == 0 {
		p.Y = 512
	}
	if p.F == 0 {
		p.F = 2
	}
	if p.D == 0 {
		p.D = 4
	}
	logX := 8 * float64(p.ItemBytes)
	if p.B == 0 {
		b := p.Eps * math.Sqrt(float64(p.N)) / (10 * math.Pow(logX, 1.5))
		p.B = int(math.Max(1, math.Floor(b)))
	}
	if p.GWise == 0 {
		p.GWise = int(math.Max(8, logX/4))
	}
	if p.ListCap == 0 {
		p.ListCap = int(4 * logX)
	}
	if p.TauFactor == 0 {
		// The admission threshold must exceed the *maximum* of the
		// sub-gaussian cell noise over the whole per-coordinate report
		// domain, or every (b, y) pair admits a junk arg-max entry and the
		// decode graph floods. E[max of k gaussians] ≈ σ·sqrt(2·ln k).
		cells := float64(p.B*p.Y) * math.Exp2(float64(p.zbits()))
		p.TauFactor = math.Sqrt(2*math.Log(cells)) + 1
	}
	if p.B < 1 {
		return fmt.Errorf("core: B must be >= 1, got %d", p.B)
	}
	if p.ListCap < 1 {
		return fmt.Errorf("core: ListCap must be >= 1, got %d", p.ListCap)
	}
	if p.TauFactor <= 0 {
		return fmt.Errorf("core: TauFactor must be positive, got %v", p.TauFactor)
	}
	if p.Workers < 0 {
		return fmt.Errorf("core: Workers must be >= 0, got %d", p.Workers)
	}
	if p.Workers == 0 {
		p.Workers = runtime.GOMAXPROCS(0)
	}
	return nil
}

// zbits returns the packed payload width of the Theorem 3.6 code for these
// parameters (chunk bytes plus one fingerprint per expander neighbour,
// accounting for the complete-graph fallback at tiny M).
func (p Params) zbits() int {
	dEff := p.D
	if p.M <= p.D+1 {
		dEff = p.M - 1
	}
	fbits := 0
	for f := p.F; f > 1; f >>= 1 {
		fbits++
	}
	return 8*p.ChunkBytes + dEff*fbits
}

// codeParams derives the Theorem 3.6 code parameters.
func (p Params) codeParams() listrec.Params {
	return listrec.Params{
		ItemBytes:  p.ItemBytes,
		M:          p.M,
		ChunkBytes: p.ChunkBytes,
		Y:          p.Y,
		F:          p.F,
		D:          p.D,
	}
}

// CellsPerCoordinate returns the size of the per-coordinate report domain
// [B]x[Y]x[Z] after padding; it bounds both the per-coordinate server memory
// (8 bytes per cell during aggregation) and the step-2 scan cost.
func (p Params) CellsPerCoordinate(zbits int) int {
	return hadamard.NextPow2(p.B * p.Y * (1 << uint(zbits)))
}

// MinRecoverableFrequency estimates the smallest multiplicity this
// configuration reliably identifies: a heavy hitter needs its per-coordinate
// count f/M to clear the admission threshold τ = TauFactor·σ plus ~2σ of its
// own estimate noise, where σ = CEps(ε/2)·sqrt(n/M). This is the
// Theorem 3.13 item-2 bound with this implementation's concrete constants:
//
//	f* ≈ (TauFactor+2)·CEps(ε/2)·sqrt(n·M)
//
// Note sqrt(n·M) = sqrt(n·log|X|/loglog|X|) — the paper's optimal shape, and
// TauFactor carries the sqrt(log) of the per-coordinate domain size exactly
// like the paper's C_f·loglog|X| calibration.
func (p Params) MinRecoverableFrequency() float64 {
	eps1 := p.Eps / 2
	e := math.Exp(eps1)
	ceps := (e + 1) / (e - 1)
	return (p.TauFactor + 2) * ceps * math.Sqrt(float64(p.N)*float64(p.M))
}
