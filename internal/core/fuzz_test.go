package core

import (
	"bytes"
	"math/rand/v2"
	"testing"
)

// fuzzParams is a deliberately tiny configuration (4 coordinates of 4096
// cells each) so each fuzz execution's Restore/Snapshot round trip stays
// cheap while still exercising every section of the LPSK format.
func fuzzParams() Params {
	return Params{Eps: 1, N: 50, ItemBytes: 1, Y: 2, Seed: 9}
}

// FuzzRestoreSnapshot: arbitrary bytes must never panic Protocol.Restore.
// Truncated, oversize, NaN/Inf-payload, shape-mismatched and
// fingerprint-mismatched inputs are rejected with errors before any state
// changes; any input that IS accepted must re-serialize to the identical
// bytes, because the LPSK format is canonical for a fixed parameter set.
func FuzzRestoreSnapshot(f *testing.F) {
	pr, err := New(fuzzParams())
	if err != nil {
		f.Fatal(err)
	}
	// Live seeds: a real snapshot with absorbed reports (the only way to get
	// the correct fingerprint into the corpus), plus truncations and
	// bit-flips at header boundaries.
	seed, err := New(fuzzParams())
	if err != nil {
		f.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 32; i++ {
		rep, err := seed.Report([]byte{byte(i % 5)}, i, rng)
		if err != nil {
			f.Fatal(err)
		}
		if err := seed.Absorb(rep); err != nil {
			f.Fatal(err)
		}
	}
	snap, err := seed.Snapshot()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(snap)
	f.Add(snap[:25])
	f.Add(snap[:len(snap)-1])
	f.Add(append(append([]byte(nil), snap...), 0))
	for _, i := range []int{0, 4, 5, 13, 17, 25, 57, 61, len(snap) - 8} {
		mut := append([]byte(nil), snap...)
		mut[i] ^= 0x80
		f.Add(mut)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if err := pr.Restore(data); err != nil {
			return
		}
		out, err := pr.Snapshot()
		if err != nil {
			t.Fatalf("accepted snapshot failed to re-serialize: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("protocol snapshot not canonical: %d bytes in, %d bytes out", len(data), len(out))
		}
	})
}
