package core

import (
	"math/rand/v2"
	"testing"

	"ldphh/internal/workload"
)

// The tests below verify the probabilistic events of the Theorem 3.13
// analysis hold at the configured rates in this implementation — the
// mechanism-level counterparts of the end-to-end recovery tests.

// Event E5: for every super-bucket b, most coordinates' hash h_m perfectly
// separates the heavy items mapped to b.
func TestEventE5PerfectHashingOfHeavyItems(t *testing.T) {
	p := Params{Eps: 4, N: 60000, ItemBytes: 4, Y: 128, Seed: 61}
	pr, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	dom := workload.Domain{ItemBytes: 4}
	// 6 heavy items, as many as a workload at this scale would carry.
	var heavy [][]byte
	for i := 1; i <= 6; i++ {
		heavy = append(heavy, dom.Item(uint64(i)))
	}
	badCoords := 0
	for m := 0; m < pr.p.M; m++ {
		seen := make(map[int]bool)
		collision := false
		for _, x := range heavy {
			y := pr.code.Hash(m, x)
			if seen[y] {
				collision = true
			}
			seen[y] = true
		}
		if collision {
			badCoords++
		}
	}
	// The analysis tolerates an α/10 fraction of bad coordinates; with
	// C(6,2)=15 pairs over Y=128 the expected collision rate per
	// coordinate is ~11%, so demand at most a third of coordinates bad.
	if badCoords > pr.p.M/3 {
		t.Errorf("E5 violated: %d/%d coordinates have heavy-item hash collisions",
			badCoords, pr.p.M)
	}
}

// Event E1: the Θ(log|X|)-wise independent super-bucket hash g spreads
// items evenly across B buckets.
func TestEventE1SuperBucketBalance(t *testing.T) {
	p := Params{Eps: 4, N: 60000, ItemBytes: 4, Y: 64, B: 8, Seed: 62}
	pr, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	dom := workload.Domain{ItemBytes: 4}
	counts := make([]int, 8)
	const items = 8000
	for i := 0; i < items; i++ {
		counts[pr.Bucket(dom.Item(uint64(i)))]++
	}
	exp := items / 8
	for b, c := range counts {
		if c < exp/2 || c > 2*exp {
			t.Errorf("bucket %d holds %d items, expected ~%d", b, c, exp)
		}
	}
}

// Event E3/E4 analogue: the public partition gives every coordinate group a
// proportional share of each heavy item's users (already tested for group
// sizes; here for per-item shares).
func TestEventE3HeavyItemSharePerGroup(t *testing.T) {
	p := Params{Eps: 4, N: 40000, ItemBytes: 4, Y: 64, Seed: 63}
	pr, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	dom := workload.Domain{ItemBytes: 4}
	ds, err := workload.Planted(dom, 40000, []float64{0.25}, rand.New(rand.NewPCG(1, 2)))
	if err != nil {
		t.Fatal(err)
	}
	item := dom.Item(1)
	shares := make([]int, pr.p.M)
	for i, x := range ds.Items {
		if string(x) == string(item) {
			shares[pr.Group(i)]++
		}
	}
	f := ds.Count(item)
	expected := f / pr.p.M
	for m, s := range shares {
		// Theorem's event: share >= f/(2M) for most m; demand it for all at
		// this scale (expected 1250 per group, σ ≈ 34).
		if s < expected/2 {
			t.Errorf("group %d holds %d of item's users, expected ~%d (E3 violated)",
				m, s, expected)
		}
	}
}

// Event E7 analogue: the per-coordinate oracles estimate the heavy item's
// composite cell within the threshold's noise budget in most coordinates.
func TestEventE7PerCoordinateAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end mechanism run")
	}
	const n = 40000
	p := Params{Eps: 4, N: n, ItemBytes: 4, Y: 64, Seed: 64}
	pr, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	dom := workload.Domain{ItemBytes: 4}
	ds, err := workload.Planted(dom, n, []float64{0.25}, rand.New(rand.NewPCG(3, 4)))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(5, 6))
	// Track the true per-group composite-cell counts while absorbing.
	item := dom.Item(1)
	enc, err := pr.code.Encode(item)
	if err != nil {
		t.Fatal(err)
	}
	b := pr.Bucket(item)
	trueCellCount := make([]int, pr.p.M)
	for i, x := range ds.Items {
		rep, err := pr.Report(x, i, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := pr.Absorb(rep); err != nil {
			t.Fatal(err)
		}
		if string(x) == string(item) {
			trueCellCount[pr.Group(i)]++
		}
	}
	for m := 0; m < pr.p.M; m++ {
		pr.direct[m].Finalize()
	}
	bad := 0
	for m := 0; m < pr.p.M; m++ {
		v := pr.cell(b, enc[m].Y, enc[m].Z)
		est := pr.direct[m].Estimate(v)
		tau := pr.threshold(m)
		if est < float64(trueCellCount[m])-tau || est > float64(trueCellCount[m])+tau {
			bad++
		}
	}
	// τ is TauFactor ≈ 6 deviations; a single miss among M coordinates is
	// already unlikely, two would flag a bias bug.
	if bad >= 2 {
		t.Errorf("E7 violated: %d/%d coordinate estimates outside ±τ of truth", bad, pr.p.M)
	}
}
