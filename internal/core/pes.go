package core

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"

	"ldphh/internal/dist"
	"ldphh/internal/freqoracle"
	"ldphh/internal/hashing"
	"ldphh/internal/listrec"
	"ldphh/internal/par"
	"ldphh/internal/proto"
)

// Report is one user's single ε-LDP message: the user's coordinate group,
// the step-1 DirectHistogram half (privacy ε/2) and the step-5 Hashtogram
// confirmation half (privacy ε/2).
type Report struct {
	M    int
	Dir  freqoracle.DirectReport
	Conf freqoracle.HashtogramReport
}

// Estimate is one output row: an identified item and its estimated
// multiplicity. It is an alias of the repository-wide proto.Estimate, so
// estimates flow between protocols, the generic transport and the facade
// without conversion.
type Estimate = proto.Estimate

// Protocol is the PrivateExpanderSketch server. Construct with New, have
// each user call Report (the client-side computation), Absorb every report,
// then call Identify once.
//
// Absorb, Merge, AbsorbBatch and Identify are safe for concurrent use: a
// single mutex guards the aggregation state. That mutex is the scalability
// bottleneck Absorb callers contend on; high-throughput ingestion should
// absorb into per-worker NewAccumulator shards (no locking) and Merge them,
// or hand whole batches to AbsorbBatch.
//
// Identify itself fans out over a bounded pool of Params.Workers goroutines
// (per-coordinate scan, per-bucket decode, per-candidate confirmation) and
// is bit-identical at every worker count: all decode-side randomness is
// derived from Params.Seed and the super-bucket index, never from shared
// mutable generator state.
type Protocol struct {
	p        Params
	code     *listrec.Code
	g        hashing.KWise
	fold     hashing.Fingerprinter
	partHash hashing.KWise // user index -> coordinate group (public partition)
	zbits    int

	mu        sync.Mutex // guards everything below
	direct    []*freqoracle.DirectHistogram
	conf      *freqoracle.Hashtogram
	groupN    []int
	absorbed  int
	finalized bool
}

// New constructs the protocol and draws all public randomness from
// params.Seed.
func New(params Params) (*Protocol, error) {
	if err := params.setDefaults(); err != nil {
		return nil, err
	}
	rng := hashing.Seeded(params.Seed, 0x50455321)
	code, err := listrec.New(params.codeParams(), rng)
	if err != nil {
		return nil, err
	}
	zbits := code.ZBits()
	cells := params.CellsPerCoordinate(zbits)
	const maxCells = 1 << 26
	if cells > maxCells {
		return nil, fmt.Errorf("core: per-coordinate domain %d cells exceeds %d; shrink Y, F, D or ChunkBytes",
			cells, maxCells)
	}
	pr := &Protocol{
		p:        params,
		code:     code,
		g:        hashing.NewKWise(params.GWise, rng),
		fold:     hashing.NewFingerprinter(rng),
		partHash: hashing.NewKWise(2, rng),
		direct:   make([]*freqoracle.DirectHistogram, params.M),
		zbits:    zbits,
		groupN:   make([]int, params.M),
	}
	for m := 0; m < params.M; m++ {
		d, err := freqoracle.NewDirectHistogram(params.Eps/2, params.B*params.Y*(1<<uint(zbits)))
		if err != nil {
			return nil, err
		}
		pr.direct[m] = d
	}
	pr.conf, err = freqoracle.NewHashtogram(freqoracle.HashtogramParams{
		Eps:  params.Eps / 2,
		N:    params.N,
		Rows: params.ConfRows,
		T:    params.ConfT,
		Seed: rng.Uint64(),
	})
	if err != nil {
		return nil, err
	}
	return pr, nil
}

// Params returns the defaulted parameters.
func (pr *Protocol) Params() Params { return pr.p }

// Code exposes the unique-list-recoverable code (public randomness).
func (pr *Protocol) Code() *listrec.Code { return pr.code }

// Group returns the coordinate group of user userIdx (public partition).
func (pr *Protocol) Group(userIdx int) int {
	return pr.partHash.Range(uint64(userIdx), pr.p.M)
}

// Bucket returns g(x) in [0, B).
func (pr *Protocol) Bucket(x []byte) int {
	return pr.g.Range(pr.fold.Fold(x), pr.p.B)
}

// cell packs (b, y, z) into the per-coordinate report domain:
// ((b·Y + y) << zbits) | z.
func (pr *Protocol) cell(b, y int, z uint64) uint64 {
	return (uint64(b)*uint64(pr.p.Y)+uint64(y))<<uint(pr.zbits) | z
}

// Report runs user userIdx's client computation on item x: O(M) hash and
// code evaluations and two randomized bits, all inside one message.
func (pr *Protocol) Report(x []byte, userIdx int, rng *rand.Rand) (Report, error) {
	if len(x) != pr.p.ItemBytes {
		return Report{}, fmt.Errorf("core: item length %d, want %d", len(x), pr.p.ItemBytes)
	}
	m := pr.Group(userIdx)
	enc, err := pr.code.Encode(x)
	if err != nil {
		return Report{}, err
	}
	sym := enc[m]
	v := pr.cell(pr.Bucket(x), sym.Y, sym.Z)
	dirRep, err := pr.direct[m].Report(v, rng)
	if err != nil {
		return Report{}, err
	}
	return Report{
		M:    m,
		Dir:  dirRep,
		Conf: pr.conf.Report(x, userIdx, rng),
	}, nil
}

// Absorb folds one user report into the server state. It serializes behind
// the protocol's single mutex; for contention-free parallel ingestion use
// NewAccumulator/Merge or AbsorbBatch.
func (pr *Protocol) Absorb(rep Report) error {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	if pr.finalized {
		return fmt.Errorf("core: Absorb after Identify")
	}
	if rep.M < 0 || rep.M >= pr.p.M {
		return fmt.Errorf("core: report group %d out of range", rep.M)
	}
	if err := pr.direct[rep.M].Absorb(rep.Dir); err != nil {
		return err
	}
	if err := pr.conf.Absorb(rep.Conf); err != nil {
		return err
	}
	pr.groupN[rep.M]++
	pr.absorbed++
	return nil
}

// Accumulator is shard-local absorption state: a private copy of the
// protocol's counters sharing its (read-only) public randomness. Each
// ingestion worker owns one shard and absorbs into it with no
// synchronization at all; shards fold back into the protocol with
// Protocol.Merge, or into each other with Accumulator.Merge for
// tree-structured aggregation. Because every counter is an exact small
// integer in float64, absorption order cannot change any estimate: sharded
// and sequential ingestion produce bit-identical Identify output.
type Accumulator struct {
	m        int
	direct   []*freqoracle.DirectHistogram
	conf     *freqoracle.Hashtogram
	groupN   []int
	absorbed int
}

// NewAccumulator returns an empty shard for this protocol. Shards cost one
// zeroed copy of the counter state, so size the shard count to the ingestion
// worker pool, not to the report count.
func (pr *Protocol) NewAccumulator() *Accumulator {
	direct := make([]*freqoracle.DirectHistogram, pr.p.M)
	for m := range direct {
		direct[m] = pr.direct[m].NewAccumulator()
	}
	return &Accumulator{
		m:      pr.p.M,
		direct: direct,
		conf:   pr.conf.NewAccumulator(),
		groupN: make([]int, pr.p.M),
	}
}

// Absorb folds one user report into the shard. It performs the same
// validation as Protocol.Absorb but takes no locks; a shard must be used by
// one goroutine at a time.
func (a *Accumulator) Absorb(rep Report) error {
	if rep.M < 0 || rep.M >= a.m {
		return fmt.Errorf("core: report group %d out of range", rep.M)
	}
	if err := a.direct[rep.M].Absorb(rep.Dir); err != nil {
		return err
	}
	if err := a.conf.Absorb(rep.Conf); err != nil {
		return err
	}
	a.groupN[rep.M]++
	a.absorbed++
	return nil
}

// Absorbed returns the number of reports held by the shard.
func (a *Accumulator) Absorbed() int { return a.absorbed }

// Merge folds another shard into this one (tree aggregation). Neither shard
// may be in concurrent use.
func (a *Accumulator) Merge(other *Accumulator) error {
	if a.m != other.m {
		return fmt.Errorf("core: Merge of differently-shaped accumulators")
	}
	for m := range a.direct {
		if err := a.direct[m].Merge(other.direct[m]); err != nil {
			return err
		}
	}
	if err := a.conf.Merge(other.conf); err != nil {
		return err
	}
	for m, n := range other.groupN {
		a.groupN[m] += n
	}
	a.absorbed += other.absorbed
	return nil
}

// Merge folds a shard into the server state under the protocol mutex: one
// lock acquisition per batch instead of one per report. The shard is
// logically consumed; reusing it would double-count its reports.
func (pr *Protocol) Merge(a *Accumulator) error {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	if pr.finalized {
		return fmt.Errorf("core: Merge after Identify")
	}
	if a.m != pr.p.M {
		return fmt.Errorf("core: Merge of differently-shaped accumulator")
	}
	for m := range pr.direct {
		if err := pr.direct[m].Merge(a.direct[m]); err != nil {
			return err
		}
	}
	if err := pr.conf.Merge(a.conf); err != nil {
		return err
	}
	for m, n := range a.groupN {
		pr.groupN[m] += n
	}
	pr.absorbed += a.absorbed
	return nil
}

// AbsorbBatch ingests a report batch across the given number of shards.
// shards <= 1 is the single-mutex path (every report serializes through
// Absorb — the baseline BenchmarkAbsorbParallel compares against); shards
// >= 2 splits the batch into contiguous chunks absorbed by concurrent
// workers into private accumulators, merged into the protocol as each
// worker finishes. On an error ingestion stops promptly in every shard and
// the first error observed is returned; exactly which reports of the batch
// were absorbed at that point is unspecified (it depends on the shard
// interleaving), so treat the round as poisoned and discard the protocol
// rather than Identify after a failed batch.
func (pr *Protocol) AbsorbBatch(reports []Report, shards int) error {
	if shards > len(reports) {
		shards = len(reports)
	}
	if shards <= 1 {
		for _, rep := range reports {
			if err := pr.Absorb(rep); err != nil {
				return err
			}
		}
		return nil
	}
	var wg sync.WaitGroup
	var failed atomic.Bool
	errs := make([]error, shards)
	chunk := (len(reports) + shards - 1) / shards
	for s := 0; s < shards; s++ {
		lo := s * chunk
		if lo >= len(reports) {
			break // ceil division can exhaust the batch before the last shard
		}
		hi := lo + chunk
		if hi > len(reports) {
			hi = len(reports)
		}
		wg.Add(1)
		go func(s int, batch []Report) {
			defer wg.Done()
			acc := pr.NewAccumulator()
			for _, rep := range batch {
				if failed.Load() {
					return // another shard already poisoned the round
				}
				if err := acc.Absorb(rep); err != nil {
					errs[s] = err
					failed.Store(true)
					return
				}
			}
			if err := pr.Merge(acc); err != nil && errs[s] == nil {
				errs[s] = err
				failed.Store(true)
			}
		}(s, reports[lo:hi])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// listEntry is a candidate (y, z) with its estimate, used for top-cap
// admission.
type listEntry struct {
	sym listrec.Symbol
	est float64
}

// decodeStreamLabel salts the per-bucket decode sub-streams so they cannot
// collide with any other consumer of dist.Mix(Seed, ...).
const decodeStreamLabel = 0x6465636f64657221 // "decoder!"

// Identify runs the server-side reconstruction (steps 2-6 of Algorithm 1)
// and returns the estimates sorted by decreasing count. It finalizes the
// protocol; further Absorb and Merge calls fail.
//
// Every stage fans out over at most Params.Workers goroutines, and the
// output is bit-identical at any worker count: each coordinate's scan and
// each bucket's decode is a pure function of the absorbed counters and
// Params.Seed writing only its own output slot, the per-bucket decoder
// randomness is a dist.SubStream labelled by (Seed, bucket) rather than a
// shared generator, and the final order is a strict total order (count
// descending, item ascending) over deduplicated items.
func (pr *Protocol) Identify() ([]Estimate, error) {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	if pr.finalized {
		return nil, fmt.Errorf("core: Identify already ran")
	}
	pr.finalized = true
	workers := pr.p.Workers
	if workers < 1 {
		workers = 1
	}
	// Finalize the per-coordinate oracles. Each Finalize holds an O(cells)
	// scratch buffer during its transform, so cap the pool at one worker
	// when cells is large to bound peak memory, exactly as the serial path
	// always did.
	cells := pr.p.CellsPerCoordinate(pr.zbits)
	finWorkers := workers
	if cells > 1<<20 {
		finWorkers = 1
	}
	par.Range(pr.p.M, finWorkers, func(m int) { pr.direct[m].Finalize() })

	// Steps 2-3: per (m, b, y) arg-max over z, threshold, top-cap lists.
	// Coordinates are independent — worker m reads only its own oracle and
	// writes only the lists[b][m] slots — so the scan parallelizes over m
	// with no synchronization beyond the pool barrier.
	lists := make([][][]listrec.Symbol, pr.p.B) // [b][m] -> list
	for b := range lists {
		lists[b] = make([][]listrec.Symbol, pr.p.M)
	}
	par.Range(pr.p.M, workers, func(m int) { pr.scanLists(m, lists) })

	// Step 4: decode each super-bucket concurrently. Bucket b's decoder
	// randomness is the (Seed, b) sub-stream, so the items it returns do not
	// depend on which worker ran it or in what order; the dedup below then
	// walks buckets in index order, keeping the candidate list canonical.
	decoded := make([][][]byte, pr.p.B)
	decodeErrs := make([]error, pr.p.B)
	par.Range(pr.p.B, workers, func(b int) {
		items, err := pr.code.Decode(lists[b], dist.Mix(pr.p.Seed, decodeStreamLabel, uint64(b)))
		if err != nil {
			decodeErrs[b] = fmt.Errorf("core: decoding bucket %d: %w", b, err)
			return
		}
		decoded[b] = items
	})
	for _, err := range decodeErrs {
		if err != nil {
			return nil, err
		}
	}
	seen := make(map[string]bool)
	var candidates [][]byte
	for b := 0; b < pr.p.B; b++ {
		for _, it := range decoded[b] {
			// The decoded item must actually map to this super-bucket;
			// anything else is a phantom assembled from cross-bucket noise.
			if pr.Bucket(it) != b {
				continue
			}
			if !seen[string(it)] {
				seen[string(it)] = true
				candidates = append(candidates, it)
			}
		}
	}

	// Steps 5-6: confirm frequencies with the second report halves. The
	// oracle finalize honors the same worker bound; after it the oracle is
	// read-only, so the estimates fan out per candidate and the sort runs
	// chunked-parallel over the same pool.
	pr.conf.FinalizeWorkers(workers)
	out := make([]Estimate, len(candidates))
	par.Range(len(candidates), workers, func(i int) {
		out[i] = Estimate{Item: candidates[i], Count: pr.conf.Estimate(candidates[i])}
	})
	sortEstimates(out, workers)
	return out, nil
}

// scanLists runs the steps 2-3 admission scan for coordinate m: per (b, y)
// arg-max over z, threshold, top-cap. It reads only coordinate m's finalized
// oracle and writes only the lists[b][m] slots, which is what lets Identify
// parallelize the scan over coordinates with no synchronization.
//
// The inner arg-max is the profiled Identify scan kernel, so it is written
// for bounds-check elimination: each (b, y) re-slices the histogram to its
// zSize-cell row and seeds the running maximum from cell 0 rather than a
// -Inf sentinel (histogram cells are always finite, so the first
// iteration's compare-against-sentinel was pure overhead). len(row) pins
// the loop bound to the slice the compiler just checked, eliding the
// per-iteration bounds check.
func (pr *Protocol) scanLists(m int, lists [][][]listrec.Symbol) {
	tau := pr.threshold(m)
	hist := pr.direct[m].HistogramView()
	zSize := int(uint64(1) << uint(pr.zbits))
	for b := 0; b < pr.p.B; b++ {
		var entries []listEntry
		for y := 0; y < pr.p.Y; y++ {
			base := int(pr.cell(b, y, 0))
			row := hist[base : base+zSize]
			bestZ, bestV := 0, row[0]
			for z := 1; z < len(row); z++ {
				if v := row[z]; v > bestV {
					bestV, bestZ = v, z
				}
			}
			if bestV >= tau {
				entries = append(entries, listEntry{
					sym: listrec.Symbol{Y: y, Z: uint64(bestZ)},
					est: bestV,
				})
			}
		}
		sort.Slice(entries, func(i, j int) bool {
			if entries[i].est != entries[j].est {
				return entries[i].est > entries[j].est
			}
			return entries[i].sym.Y < entries[j].sym.Y
		})
		if len(entries) > pr.p.ListCap {
			entries = entries[:pr.p.ListCap]
		}
		syms := make([]listrec.Symbol, len(entries))
		for i, e := range entries {
			syms[i] = e.sym
		}
		lists[b][m] = syms
	}
}

// threshold is the step-3b admission bound for coordinate m:
// TauFactor standard deviations of the group's estimator noise.
func (pr *Protocol) threshold(m int) float64 {
	nm := float64(pr.groupN[m])
	if nm < 1 {
		nm = 1
	}
	eps1 := pr.p.Eps / 2
	e := math.Exp(eps1)
	ceps := (e + 1) / (e - 1)
	return pr.p.TauFactor * ceps * math.Sqrt(nm)
}

// EstimateFrequency exposes the confirmation oracle for ad-hoc queries
// after Identify (the protocol is a frequency oracle too, Definition 3.2).
func (pr *Protocol) EstimateFrequency(x []byte) float64 {
	return pr.conf.Estimate(x)
}

// TotalReports returns the number of absorbed reports.
func (pr *Protocol) TotalReports() int {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	return pr.absorbed
}

// SketchBytes returns the resident server memory across both phases.
func (pr *Protocol) SketchBytes() int {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	total := pr.conf.SketchBytes()
	for _, d := range pr.direct {
		total += d.SketchBytes()
	}
	return total
}

// ReportPayloadBytes is the payload of one user message: group (2) +
// direct column (4) + direct bit (1) + confirmation row (2) + confirmation
// column (4) + confirmation bit (1). The TCP transport frames it behind a
// 1-byte version, so protocol.FrameSize is defined as 1 + this constant —
// one shared source of truth the wire encoder, the frame reader and the
// Table 1 communication metric all derive from, pinned together by
// protocol.TestFrameSizePinnedToBytesPerReport. (Historically the two were
// written down independently and drifted.)
const ReportPayloadBytes = 2 + 4 + 1 + 2 + 4 + 1

// BytesPerReport returns the payload size of one user message (the Table 1
// "communication per user" metric). Like every baseline's BytesPerReport
// it excludes transport framing — the TCP path adds one version byte, see
// protocol.FrameSize — so the cross-protocol comparison stays
// apples-to-apples.
func (pr *Protocol) BytesPerReport() int { return ReportPayloadBytes }

// ConfOracleParams exposes the confirmation oracle's defaulted parameters;
// the end-to-end accuracy suite derives its binomial-tail error bounds from
// the row count and width chosen here.
func (pr *Protocol) ConfOracleParams() freqoracle.HashtogramParams {
	return pr.conf.Params()
}
