package core

import (
	"fmt"
	"math/rand/v2"
)

// Client is the user-side half of PrivateExpanderSketch. It is constructed
// from the same Params the server uses — the Seed pins all shared public
// randomness, so a client built on a device and a server built in the
// aggregation service agree on every hash function and code without
// exchanging anything beyond Params. The client holds no server state and
// no other user's data.
type Client struct {
	proto *Protocol
}

// NewClient derives the client side from params. The construction is
// deterministic in params (including Seed).
func NewClient(params Params) (*Client, error) {
	proto, err := New(params)
	if err != nil {
		return nil, err
	}
	return &Client{proto: proto}, nil
}

// Params returns the defaulted parameters.
func (c *Client) Params() Params { return c.proto.Params() }

// Report computes user userIdx's single ε-LDP message for item x.
func (c *Client) Report(x []byte, userIdx int, rng *rand.Rand) (Report, error) {
	return c.proto.Report(x, userIdx, rng)
}

// MinRecoverableFrequency forwards the configuration's recovery floor so a
// device can decide participation policy.
func (c *Client) MinRecoverableFrequency() float64 {
	return c.proto.Params().MinRecoverableFrequency()
}

// HeavyHitters returns the Definition 3.1 view of the identification output:
// only items whose confirmed estimate reaches delta, truncated to the
// definition's O(n/delta) list-size bound (keeping the largest estimates).
// Call after building est with Identify.
func HeavyHitters(est []Estimate, n int, delta float64) ([]Estimate, error) {
	if delta <= 0 {
		return nil, fmt.Errorf("core: delta must be positive, got %v", delta)
	}
	if n <= 0 {
		return nil, fmt.Errorf("core: n must be positive, got %d", n)
	}
	// est arrives sorted by decreasing count (Identify's contract).
	for i := 1; i < len(est); i++ {
		if est[i].Count > est[i-1].Count {
			return nil, fmt.Errorf("core: estimates not sorted by decreasing count")
		}
	}
	var out []Estimate
	for _, e := range est {
		if e.Count >= delta {
			out = append(out, e)
		}
	}
	// |L| <= 2n/delta: at most n/ (delta/2) items can have true frequency
	// delta/2, and estimates concentrate; cap defensively at 2n/delta.
	maxLen := int(2 * float64(n) / delta)
	if maxLen < 1 {
		maxLen = 1
	}
	if len(out) > maxLen {
		out = out[:maxLen]
	}
	return out, nil
}
