package core

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
)

// Protocol-level snapshots make the whole server-side accumulated state
// mergeable and network-transportable: a leaf aggregator that has absorbed a
// shard of the fleet's reports can Snapshot its state, ship the bytes to a
// parent, and the parent folds them in with MergeSnapshot — the fan-in tree
// deployment of Bassily-Nissim-Stemmer-Thakurta (2017). Because every
// counter is an exact small integer in float64, merge order cannot change
// any estimate: a root that merges k leaf snapshots identifies the
// bit-identical heavy-hitter list a single aggregator would have produced
// from the union of the reports (the cross-layer equivalence suite enforces
// this at every layer, under the race detector, and over real TCP).
//
// Format "LPSK" version 1 (big endian):
//
//	magic "LPSK" | version u8 | fingerprint u64 | m u32 | absorbed u64 |
//	groupN []u64 | per coordinate: len u32 + DirectHistogram "LDSK" blob |
//	len u32 + confirmation Hashtogram "LHSK" blob
//
// The fingerprint pins every parameter that shapes the accumulated state or
// the public randomness (see Fingerprint); a snapshot from a protocol built
// with a different Seed, ε or sketch geometry is rejected before any state
// is touched. Workers is deliberately excluded — it is a pure throughput
// knob, so aggregators in one tree may size their pools independently.

// snapshotVersion is the current LPSK format version.
const snapshotVersion = 1

// fingerprintLabel seeds the parameter fingerprint so it cannot collide
// with any other FNV-1a use in the module.
const fingerprintLabel = "ldphh/core.Params/v1"

// Fingerprint returns a 64-bit digest of every parameter that determines
// the protocol's accumulated-state shape and public randomness: Eps, N,
// ItemBytes, the code/coordinate geometry (M, ChunkBytes, Y, F, D, B,
// GWise, ListCap, TauFactor), Seed, and the defaulted confirmation-oracle
// parameters. Two protocols with equal fingerprints absorb interchangeable
// reports and produce mergeable snapshots. Workers is excluded: it never
// feeds public randomness or state shape.
func (pr *Protocol) Fingerprint() uint64 {
	h := fnv.New64a()
	h.Write([]byte(fingerprintLabel))
	conf := pr.conf.Params()
	var buf [8]byte
	for _, w := range []uint64{
		math.Float64bits(pr.p.Eps),
		uint64(pr.p.N),
		uint64(pr.p.ItemBytes),
		uint64(pr.p.M),
		uint64(pr.p.ChunkBytes),
		uint64(pr.p.Y),
		uint64(pr.p.F),
		uint64(pr.p.D),
		uint64(pr.p.B),
		uint64(pr.p.GWise),
		uint64(pr.p.ListCap),
		math.Float64bits(pr.p.TauFactor),
		pr.p.Seed,
		uint64(conf.Rows),
		uint64(conf.T),
		conf.Seed,
	} {
		binary.BigEndian.PutUint64(buf[:], w)
		h.Write(buf[:])
	}
	return h.Sum64()
}

// Snapshot serializes the protocol's full accumulated (pre-Identify) state:
// the per-coordinate DirectHistogram counters, the confirmation Hashtogram
// counters, and the group occupancy the admission thresholds derive from.
// The bytes restore only into a protocol with an equal Fingerprint.
func (pr *Protocol) Snapshot() ([]byte, error) {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	if pr.finalized {
		return nil, fmt.Errorf("core: Snapshot after Identify")
	}
	buf := make([]byte, 0, 64)
	buf = append(buf, 'L', 'P', 'S', 'K', snapshotVersion)
	buf = binary.BigEndian.AppendUint64(buf, pr.Fingerprint())
	buf = binary.BigEndian.AppendUint32(buf, uint32(pr.p.M))
	buf = binary.BigEndian.AppendUint64(buf, uint64(pr.absorbed))
	for _, n := range pr.groupN {
		buf = binary.BigEndian.AppendUint64(buf, uint64(n))
	}
	for m := 0; m < pr.p.M; m++ {
		blob, err := pr.direct[m].Snapshot()
		if err != nil {
			return nil, err
		}
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(blob)))
		buf = append(buf, blob...)
	}
	blob, err := pr.conf.Snapshot()
	if err != nil {
		return nil, err
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(blob)))
	buf = append(buf, blob...)
	return buf, nil
}

// decodeSnapshot validates an LPSK snapshot end to end and materializes it
// as a fresh Accumulator shard (sharing this protocol's public randomness,
// owning the decoded counters). It also returns the M+1 oracle blob
// sub-slices (per-coordinate DirectHistogram snapshots, then the
// confirmation Hashtogram snapshot) so Restore can commit through the same
// parse — this function owns the layout walking; no other code re-derives
// offsets. Nothing in the protocol is mutated; every structural, shape,
// range and cross-consistency check happens here, so callers can commit
// the result without a failure path. Rejected inputs: wrong magic/version,
// fingerprint mismatch, truncated or oversized buffers, negative counters,
// non-finite accumulator values, and group/oracle report tallies that
// disagree with each other.
func (pr *Protocol) decodeSnapshot(buf []byte) (*Accumulator, [][]byte, error) {
	const header = 4 + 1 + 8 + 4 + 8
	if len(buf) < header {
		return nil, nil, fmt.Errorf("core: snapshot too short (%d bytes)", len(buf))
	}
	if string(buf[:4]) != "LPSK" {
		return nil, nil, fmt.Errorf("core: bad snapshot magic")
	}
	if buf[4] != snapshotVersion {
		return nil, nil, fmt.Errorf("core: unsupported snapshot version %d", buf[4])
	}
	if fp := binary.BigEndian.Uint64(buf[5:]); fp != pr.Fingerprint() {
		return nil, nil, fmt.Errorf("core: snapshot fingerprint %016x does not match protocol %016x (parameters or seed differ)",
			fp, pr.Fingerprint())
	}
	if m := int(binary.BigEndian.Uint32(buf[13:])); m != pr.p.M {
		return nil, nil, fmt.Errorf("core: snapshot has %d coordinates, protocol has %d", m, pr.p.M)
	}
	absorbed := binary.BigEndian.Uint64(buf[17:])
	if absorbed > math.MaxInt64 {
		return nil, nil, fmt.Errorf("core: snapshot report count %d is negative", int64(absorbed))
	}
	off := header
	if len(buf) < off+8*pr.p.M {
		return nil, nil, fmt.Errorf("core: snapshot truncated in group counts")
	}
	groupN := make([]int, pr.p.M)
	var sum uint64
	for m := range groupN {
		n := binary.BigEndian.Uint64(buf[off:])
		if n > math.MaxInt64 {
			return nil, nil, fmt.Errorf("core: snapshot group %d count %d is negative", m, int64(n))
		}
		sum += n
		if sum > absorbed {
			return nil, nil, fmt.Errorf("core: snapshot group counts exceed total %d", absorbed)
		}
		groupN[m] = int(n)
		off += 8
	}
	if sum != absorbed {
		return nil, nil, fmt.Errorf("core: snapshot group counts sum to %d, total says %d", sum, absorbed)
	}
	nextBlob := func() ([]byte, error) {
		if len(buf) < off+4 {
			return nil, fmt.Errorf("core: snapshot truncated in blob length")
		}
		n := int(binary.BigEndian.Uint32(buf[off:]))
		off += 4
		if n > len(buf)-off {
			return nil, fmt.Errorf("core: snapshot blob length %d exceeds remaining %d", n, len(buf)-off)
		}
		blob := buf[off : off+n]
		off += n
		return blob, nil
	}
	acc := pr.NewAccumulator()
	blobs := make([][]byte, 0, pr.p.M+1)
	for m := 0; m < pr.p.M; m++ {
		blob, err := nextBlob()
		if err != nil {
			return nil, nil, err
		}
		if err := acc.direct[m].Restore(blob); err != nil {
			return nil, nil, fmt.Errorf("core: snapshot coordinate %d: %w", m, err)
		}
		if got := acc.direct[m].TotalReports(); got != groupN[m] {
			return nil, nil, fmt.Errorf("core: snapshot coordinate %d holds %d reports, group count says %d",
				m, got, groupN[m])
		}
		blobs = append(blobs, blob)
	}
	blob, err := nextBlob()
	if err != nil {
		return nil, nil, err
	}
	if err := acc.conf.Restore(blob); err != nil {
		return nil, nil, fmt.Errorf("core: snapshot confirmation oracle: %w", err)
	}
	if got := acc.conf.TotalReports(); uint64(got) != absorbed {
		return nil, nil, fmt.Errorf("core: snapshot confirmation oracle holds %d reports, total says %d",
			got, absorbed)
	}
	if off != len(buf) {
		return nil, nil, fmt.Errorf("core: snapshot has %d trailing bytes", len(buf)-off)
	}
	blobs = append(blobs, blob)
	copy(acc.groupN, groupN)
	acc.absorbed = int(absorbed)
	return acc, blobs, nil
}

// Restore replaces the protocol's accumulated state with a snapshot taken
// from a protocol with an equal Fingerprint (checkpoint/resume). It is
// atomic: validation completes before any state changes, so on error the
// protocol is exactly as it was.
func (pr *Protocol) Restore(buf []byte) error {
	acc, blobs, err := pr.decodeSnapshot(buf)
	if err != nil {
		return err
	}
	pr.mu.Lock()
	defer pr.mu.Unlock()
	if pr.finalized {
		return fmt.Errorf("core: Restore after Identify")
	}
	// Commit in place (the oracle pointers stay put, preserving the
	// protocol's pointers-are-immutable invariant that unlocked
	// NewAccumulator readers rely on). Each blob was already accepted by an
	// identically-parameterized accumulator shard in decodeSnapshot, and the
	// oracle Restores are themselves validate-then-commit, so these cannot
	// fail and the whole commit is atomic.
	for m := 0; m < pr.p.M; m++ {
		if err := pr.direct[m].Restore(blobs[m]); err != nil {
			return fmt.Errorf("core: restoring coordinate %d: %w", m, err)
		}
	}
	if err := pr.conf.Restore(blobs[pr.p.M]); err != nil {
		return fmt.Errorf("core: restoring confirmation oracle: %w", err)
	}
	copy(pr.groupN, acc.groupN)
	pr.absorbed = acc.absorbed
	return nil
}

// MergeSnapshot folds a child aggregator's serialized state into this
// protocol, adding its counters to the running totals — the parent half of
// the fan-in tree. The snapshot must come from a protocol with an equal
// Fingerprint; it is fully validated before the merge, and the merge itself
// is one locked Accumulator fold, so concurrent Absorb/Merge traffic
// interleaves safely.
func (pr *Protocol) MergeSnapshot(buf []byte) error {
	acc, _, err := pr.decodeSnapshot(buf)
	if err != nil {
		return err
	}
	return pr.Merge(acc)
}

// MergeFrom folds another in-process protocol's accumulated state into this
// one (both must share a Fingerprint; neither may have run Identify). It
// serializes the source under its own lock and merges under the
// receiver's, so the two locks are never held together and concurrent
// cross-merges cannot deadlock. The source keeps its state; merging the
// same aggregator twice double-counts its reports.
func (pr *Protocol) MergeFrom(other *Protocol) error {
	snap, err := other.Snapshot()
	if err != nil {
		return err
	}
	return pr.MergeSnapshot(snap)
}
