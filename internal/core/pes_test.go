package core

import (
	"bytes"
	"math"
	"math/rand/v2"
	"testing"

	"ldphh/internal/freqoracle"
	"ldphh/internal/workload"
)

// testParams is a laptop-scale configuration: |X| = 2^32, n = 60k, ε = 4.
// MinRecoverableFrequency ≈ 7.4k (12.3% of n), so items planted at >= 13%
// clear it.
func testParams(n int, seed uint64) Params {
	return Params{
		Eps:       4,
		N:         n,
		ItemBytes: 4,
		Y:         128,
		Seed:      seed,
	}
}

func runProtocol(t *testing.T, p Params, ds *workload.Dataset, reportSeed uint64) []Estimate {
	t.Helper()
	pr, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(reportSeed, reportSeed^0xabcdef))
	for i, x := range ds.Items {
		rep, err := pr.Report(x, i, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := pr.Absorb(rep); err != nil {
			t.Fatal(err)
		}
	}
	est, err := pr.Identify()
	if err != nil {
		t.Fatal(err)
	}
	return est
}

func findEstimate(est []Estimate, item []byte) (float64, bool) {
	for _, e := range est {
		if bytes.Equal(e.Item, item) {
			return e.Count, true
		}
	}
	return 0, false
}

func TestPESRecoversPlantedHeavyHitters(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end protocol run")
	}
	const n = 60000
	p := testParams(n, 1001)
	dom := workload.Domain{ItemBytes: 4}
	ds, err := workload.Planted(dom, n, []float64{0.20, 0.16, 0.13}, rand.New(rand.NewPCG(7, 8)))
	if err != nil {
		t.Fatal(err)
	}
	est := runProtocol(t, p, ds, 42)

	// Frequency tolerance from the confirmation oracle at union-bounded beta.
	pr, _ := New(p)
	tol := 2.0 * pr.conf.ErrorBound(0.001)
	for i := 1; i <= 3; i++ {
		item := dom.Item(uint64(i))
		got, found := findEstimate(est, item)
		if !found {
			t.Errorf("planted item %d (count %d) not identified", i, ds.Count(item))
			continue
		}
		if math.Abs(got-float64(ds.Count(item))) > tol {
			t.Errorf("item %d: estimate %.0f, truth %d (tol %.0f)", i, got, ds.Count(item), tol)
		}
	}
	// Output must be sorted by decreasing count.
	for i := 1; i < len(est); i++ {
		if est[i].Count > est[i-1].Count {
			t.Fatal("output not sorted by decreasing count")
		}
	}
	// List size must stay near O(candidates), not blow up to the domain.
	if len(est) > p.ItemBytes*8*int(4*8*float64(p.ItemBytes)) {
		t.Errorf("output list suspiciously large: %d", len(est))
	}
}

func TestPESDeterministicGivenSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end protocol run")
	}
	const n = 30000
	dom := workload.Domain{ItemBytes: 4}
	ds, err := workload.Planted(dom, n, []float64{0.25, 0.18}, rand.New(rand.NewPCG(9, 9)))
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Eps: 4, N: n, ItemBytes: 4, Y: 64, Seed: 55}
	a := runProtocol(t, p, ds, 77)
	b := runProtocol(t, p, ds, 77)
	if _, found := findEstimate(a, dom.Item(1)); !found {
		t.Error("heaviest planted item not identified in the Y=64 regime")
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic output size: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !bytes.Equal(a[i].Item, b[i].Item) || a[i].Count != b[i].Count {
			t.Fatal("non-deterministic output")
		}
	}
}

func TestPESFrequencyOracleView(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end protocol run")
	}
	const n = 30000
	dom := workload.Domain{ItemBytes: 4}
	ds, err := workload.Planted(dom, n, []float64{0.3}, rand.New(rand.NewPCG(3, 4)))
	if err != nil {
		t.Fatal(err)
	}
	pr, err := New(Params{Eps: 4, N: n, ItemBytes: 4, Y: 64, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(5, 6))
	for i, x := range ds.Items {
		rep, err := pr.Report(x, i, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := pr.Absorb(rep); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := pr.Identify(); err != nil {
		t.Fatal(err)
	}
	// After Identify the protocol answers ad-hoc frequency queries
	// (Definition 3.2 reduction: every heavy-hitters protocol is an oracle).
	tol := 2 * pr.conf.ErrorBound(0.01)
	heavy := dom.Item(1)
	if got := pr.EstimateFrequency(heavy); math.Abs(got-float64(ds.Count(heavy))) > tol {
		t.Errorf("oracle view: estimate %.0f, truth %d", got, ds.Count(heavy))
	}
	absent := dom.Item(999999)
	if got := pr.EstimateFrequency(absent); math.Abs(got) > tol {
		t.Errorf("oracle view: absent item estimate %.0f", got)
	}
}

func TestPESValidation(t *testing.T) {
	if _, err := New(Params{Eps: 0, N: 100, ItemBytes: 4}); err == nil {
		t.Error("Eps 0 accepted")
	}
	if _, err := New(Params{Eps: 1, N: 0, ItemBytes: 4}); err == nil {
		t.Error("N 0 accepted")
	}
	if _, err := New(Params{Eps: 1, N: 100, ItemBytes: 0}); err == nil {
		t.Error("ItemBytes 0 accepted")
	}
	// Oversized per-coordinate domain must be rejected up front.
	if _, err := New(Params{Eps: 1, N: 100, ItemBytes: 4, Y: 1 << 20, F: 16, D: 8}); err == nil {
		t.Error("huge cell domain accepted")
	}
	pr, err := New(Params{Eps: 1, N: 1000, ItemBytes: 4, Y: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 1))
	if _, err := pr.Report([]byte("toolongitem"), 0, rng); err == nil {
		t.Error("wrong item length accepted")
	}
	if err := pr.Absorb(Report{M: -1}); err == nil {
		t.Error("bad group accepted")
	}
}

func TestParamsDerivation(t *testing.T) {
	p := Params{Eps: 2, N: 100000, ItemBytes: 8}
	if err := p.setDefaults(); err != nil {
		t.Fatal(err)
	}
	if p.M != 16 {
		t.Errorf("M = %d, want 16 (rate-1/2 over 8 bytes)", p.M)
	}
	if p.B < 1 {
		t.Errorf("B = %d", p.B)
	}
	if p.ListCap != 4*64 {
		t.Errorf("ListCap = %d", p.ListCap)
	}
	if p.MinRecoverableFrequency() <= 0 {
		t.Error("MinRecoverableFrequency not positive")
	}
	// The threshold must exhibit the paper's sqrt(n·M) shape: doubling N
	// scales it by sqrt(2).
	p2 := Params{Eps: 2, N: 200000, ItemBytes: 8}
	if err := p2.setDefaults(); err != nil {
		t.Fatal(err)
	}
	ratio := p2.MinRecoverableFrequency() / p.MinRecoverableFrequency()
	if math.Abs(ratio-math.Sqrt2) > 0.01 {
		t.Errorf("threshold scaling %f, want sqrt(2)", ratio)
	}
}

// TestPrivacyBudgetSplit is the privacy-accounting regression test: each
// user's single message is the pair of one DirectHistogram report and one
// Hashtogram report, and both component randomizers must be constructed at
// exactly ε/2 so the composed message is ε-LDP (basic composition; the
// component randomizers' e^{ε/2} ratios are themselves verified by
// enumeration in internal/ldp).
func TestPrivacyBudgetSplit(t *testing.T) {
	const eps = 3.0
	pr, err := New(Params{Eps: eps, N: 1000, ItemBytes: 4, Y: 64, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for m, d := range pr.direct {
		if d.Eps() != eps/2 {
			t.Errorf("coordinate %d oracle at eps %f, want %f", m, d.Eps(), eps/2)
		}
	}
	if got := pr.conf.Params().Eps; got != eps/2 {
		t.Errorf("confirmation oracle at eps %f, want %f", got, eps/2)
	}
}

// TestSingleUserInfluenceBounded is the poisoning-resistance property of the
// sketch: one malicious user injecting an adversarial (in-range) report can
// shift any single frequency estimate by at most O(CEps·Rows·scale), not
// arbitrarily — LDP sketches bound per-user influence by construction.
func TestSingleUserInfluenceBounded(t *testing.T) {
	const n = 4000
	params := Params{Eps: 2, N: n, ItemBytes: 4, Y: 64, Seed: 31}
	build := func(extra *Report) *Protocol {
		pr, err := New(params)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewPCG(1, 2))
		item := []byte{0, 0, 0, 9}
		for i := 0; i < n; i++ {
			rep, err := pr.Report(item, i, rng)
			if err != nil {
				t.Fatal(err)
			}
			if err := pr.Absorb(rep); err != nil {
				t.Fatal(err)
			}
		}
		if extra != nil {
			if err := pr.Absorb(*extra); err != nil {
				t.Fatal(err)
			}
		}
		pr.conf.Finalize()
		return pr
	}
	clean := build(nil)
	target := []byte{0, 0, 0, 9}
	base := clean.EstimateFrequency(target)

	// Adversarial report: worst in-range values for the confirmation half.
	evil := Report{
		M:    0,
		Dir:  freqoracle.DirectReport{Col: 0, Bit: 1},
		Conf: freqoracle.HashtogramReport{Row: 3, Col: 7, Bit: 1},
	}
	poisoned := build(&evil)
	got := poisoned.EstimateFrequency(target)

	// One report enters one row's accumulator with magnitude CEps after
	// unbiasing, scaled by n/rowCount ~ Rows; the median over rows further
	// dampens it. Bound generously at 3·CEps·Rows + re-normalization slack.
	ceps := 3.1 // CEps(1) = (e+1)/(e-1) ≈ 2.16, with slack
	rows := float64(clean.conf.Params().Rows)
	limit := 3*ceps*rows + 0.01*float64(n)
	if shift := math.Abs(got - base); shift > limit {
		t.Errorf("single adversarial report shifted estimate by %.0f (> %.0f)", shift, limit)
	}
}

func TestPESGroupPartitionBalanced(t *testing.T) {
	pr, err := New(Params{Eps: 1, N: 100000, ItemBytes: 4, Y: 64, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, pr.Params().M)
	for u := 0; u < 80000; u++ {
		counts[pr.Group(u)]++
	}
	exp := 80000 / pr.Params().M
	for m, c := range counts {
		if c < exp/2 || c > 2*exp {
			t.Errorf("group %d has %d users, expected ~%d", m, c, exp)
		}
	}
}
