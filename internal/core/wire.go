package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"math/rand/v2"

	"ldphh/internal/freqoracle"
	"ldphh/internal/proto"
)

// Wire codecs for the two protocols this package owns.
//
// PrivateExpanderSketch payload (big endian, ReportPayloadBytes = 14):
//
//	offset size field
//	0      2    coordinate group m
//	2      4    direct-report column
//	6      1    direct-report bit (0 => -1, 1 => +1)
//	7      2    confirmation row
//	9      4    confirmation column
//	13     1    confirmation bit
//
// SmallDomain payload is a bare freqoracle.DirectReport (5 bytes).
const (
	pesWireVersion         = 1
	smallDomainWireVersion = 1
)

func init() {
	proto.Register(proto.Codec{
		ID:           proto.IDPrivateExpanderSketch,
		Name:         "pes",
		Version:      pesWireVersion,
		PayloadBytes: ReportPayloadBytes,
		Validate: func(p []byte) error {
			_, err := DecodeReportPayload(p)
			return err
		},
	})
	proto.Register(proto.Codec{
		ID:           proto.IDSmallDomain,
		Name:         "smalldomain",
		Version:      smallDomainWireVersion,
		PayloadBytes: freqoracle.DirectReportPayloadBytes,
		Validate: func(p []byte) error {
			_, err := freqoracle.DecodeDirectReport(p)
			return err
		},
	})
}

// AppendReportPayload appends the 14-byte PES report payload to dst.
func AppendReportPayload(dst []byte, rep Report) ([]byte, error) {
	if rep.M < 0 || rep.M > 0xffff {
		return nil, fmt.Errorf("core: group %d does not fit the frame", rep.M)
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(rep.M))
	dst = freqoracle.AppendDirectReport(dst, rep.Dir)
	return freqoracle.AppendHashtogramReport(dst, rep.Conf)
}

// DecodeReportPayload parses a 14-byte PES report payload.
func DecodeReportPayload(p []byte) (Report, error) {
	if len(p) != ReportPayloadBytes {
		return Report{}, fmt.Errorf("core: payload length %d, want %d", len(p), ReportPayloadBytes)
	}
	dir, err := freqoracle.DecodeDirectReport(p[2 : 2+freqoracle.DirectReportPayloadBytes])
	if err != nil {
		return Report{}, err
	}
	conf, err := freqoracle.DecodeHashtogramReport(p[2+freqoracle.DirectReportPayloadBytes:])
	if err != nil {
		return Report{}, err
	}
	return Report{M: int(binary.BigEndian.Uint16(p)), Dir: dir, Conf: conf}, nil
}

// EncodeReportWire serializes a PES report into a self-describing wire
// report ([ID][version][14-byte payload]).
func EncodeReportWire(rep Report) (proto.WireReport, error) {
	dst := proto.AppendHeader(make([]byte, 0, 2+ReportPayloadBytes), proto.IDPrivateExpanderSketch, pesWireVersion)
	dst, err := AppendReportPayload(dst, rep)
	if err != nil {
		return nil, err
	}
	return proto.WireReport(dst), nil
}

// DecodeReportWire parses and validates a PES wire report.
func DecodeReportWire(wr proto.WireReport) (Report, error) {
	if err := proto.CheckHeader(wr, proto.IDPrivateExpanderSketch); err != nil {
		return Report{}, err
	}
	return DecodeReportPayload(wr.Payload())
}

// PESWire adapts PrivateExpanderSketch to the unified
// proto.Reporter/Aggregator/Mergeable surface. The underlying Protocol is
// already safe for concurrent use (its own mutex), so the adapter adds no
// locking; batch absorption takes the protocol mutex once per batch and
// folds every report in directly — O(batch) work per call. (A private
// Accumulator shard plus Merge would cost one full sketch copy and walk
// per call, which at n = 10^6 dwarfs absorbing the reports themselves;
// the Accumulator/Merge surface remains for fan-in trees, where a shard
// amortizes over a whole subtree.)
type PESWire struct{ pr *Protocol }

// NewPESWire constructs the protocol and its adapter in one step.
func NewPESWire(params Params) (*PESWire, error) {
	pr, err := New(params)
	if err != nil {
		return nil, err
	}
	return &PESWire{pr: pr}, nil
}

// Wire returns the unified-API adapter for an existing protocol instance.
func (pr *Protocol) Wire() *PESWire { return &PESWire{pr: pr} }

// Protocol exposes the wrapped instance (public randomness for clients,
// snapshot fingerprints, EstimateFrequency after Identify).
func (w *PESWire) Protocol() *Protocol { return w.pr }

// ProtocolID returns proto.IDPrivateExpanderSketch.
func (w *PESWire) ProtocolID() byte { return proto.IDPrivateExpanderSketch }

// Report computes user userIdx's wire report for item x.
func (w *PESWire) Report(x []byte, userIdx int, rng *rand.Rand) (proto.WireReport, error) {
	rep, err := w.pr.Report(x, userIdx, rng)
	if err != nil {
		return nil, err
	}
	return EncodeReportWire(rep)
}

// Absorb folds one wire report into the server state.
func (w *PESWire) Absorb(wr proto.WireReport) error {
	rep, err := DecodeReportWire(wr)
	if err != nil {
		return err
	}
	return w.pr.Absorb(rep)
}

// AbsorbBatch folds a batch into the server state under one mutex
// acquisition. Every report up to the first invalid one is absorbed (the
// valid prefix counts, exactly as under per-report absorption) and the
// first error is returned. Decode happens inline per frame, so the call
// allocates nothing regardless of batch size.
func (w *PESWire) AbsorbBatch(wrs []proto.WireReport) error {
	if len(wrs) == 0 {
		return nil
	}
	pr := w.pr
	pr.mu.Lock()
	defer pr.mu.Unlock()
	if pr.finalized {
		return fmt.Errorf("core: Absorb after Identify")
	}
	for _, wr := range wrs {
		rep, err := DecodeReportWire(wr)
		if err != nil {
			return err
		}
		if rep.M < 0 || rep.M >= pr.p.M {
			return fmt.Errorf("core: report group %d out of range", rep.M)
		}
		if err := pr.direct[rep.M].Absorb(rep.Dir); err != nil {
			return err
		}
		if err := pr.conf.Absorb(rep.Conf); err != nil {
			return err
		}
		pr.groupN[rep.M]++
		pr.absorbed++
	}
	return nil
}

// Identify runs the Algorithm 1 reconstruction. The context is checked on
// entry; the reconstruction itself is O~(n) and bounded by Params.Workers.
func (w *PESWire) Identify(ctx context.Context) ([]proto.Estimate, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return w.pr.Identify()
}

// TotalReports returns the number of absorbed reports.
func (w *PESWire) TotalReports() int { return w.pr.TotalReports() }

// SketchBytes returns resident server memory.
func (w *PESWire) SketchBytes() int { return w.pr.SketchBytes() }

// BytesPerReport returns the payload size of one user message.
func (w *PESWire) BytesPerReport() int { return w.pr.BytesPerReport() }

// MinRecoverableFrequency forwards the configuration's recovery floor.
func (w *PESWire) MinRecoverableFrequency() float64 {
	return w.pr.Params().MinRecoverableFrequency()
}

// Fingerprint states the parameter digest snapshots and checkpoints are
// pinned to (proto.Fingerprinted).
func (w *PESWire) Fingerprint() uint64 { return w.pr.Fingerprint() }

// Snapshot serializes the accumulated state (proto.Mergeable).
func (w *PESWire) Snapshot() ([]byte, error) { return w.pr.Snapshot() }

// Restore rehydrates a checkpoint (proto.Mergeable).
func (w *PESWire) Restore(buf []byte) error { return w.pr.Restore(buf) }

// MergeSnapshot folds a sibling aggregator's snapshot in (proto.Mergeable).
func (w *PESWire) MergeSnapshot(buf []byte) error { return w.pr.MergeSnapshot(buf) }

// SmallDomainWire adapts the enumerable-domain protocol to the unified
// surface. SmallDomain is a full-budget DirectHistogram over the explicit
// domain, so the adapter *is* freqoracle.DirectHistogramWire under the
// smalldomain codec identity — one implementation, two registered
// protocols.
type SmallDomainWire struct {
	*freqoracle.DirectHistogramWire
}

// NewSmallDomainWire constructs the protocol and its adapter. n is the
// expected user count (sizing hint for the recovery floor); minCount drops
// Identify output below the floor (0 keeps everything).
func NewSmallDomainWire(eps float64, itemBytes, domainSize, n int, minCount float64) (*SmallDomainWire, error) {
	w, err := freqoracle.NewDirectHistogramWireAs(
		proto.IDSmallDomain, smallDomainWireVersion, eps, itemBytes, domainSize, n, minCount)
	if err != nil {
		return nil, err
	}
	return &SmallDomainWire{DirectHistogramWire: w}, nil
}
