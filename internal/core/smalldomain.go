package core

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"ldphh/internal/freqoracle"
)

// SmallDomain is the complementary protocol the paper notes after
// Theorem 3.13: when n > |X| (or |X| is simply small enough to enumerate),
// skip the expander machinery entirely — run the Theorem 3.8 DirectHistogram
// over the whole domain at full budget ε and read every frequency off the
// reconstructed histogram. Same O~(1) user cost; server memory O(|X|).
type SmallDomain struct {
	eps       float64
	itemBytes int
	domain    int
	direct    *freqoracle.DirectHistogram
}

// NewSmallDomain constructs the enumerable-domain protocol for items that
// are width-itemBytes encodings of ordinals [0, domainSize).
func NewSmallDomain(eps float64, itemBytes, domainSize int) (*SmallDomain, error) {
	if itemBytes < 1 || itemBytes > 8 {
		return nil, fmt.Errorf("core: SmallDomain supports ItemBytes in [1,8], got %d", itemBytes)
	}
	if domainSize < 2 {
		return nil, fmt.Errorf("core: SmallDomain needs domainSize >= 2, got %d", domainSize)
	}
	if itemBytes < 8 && uint64(domainSize) > uint64(1)<<(8*itemBytes) {
		return nil, fmt.Errorf("core: domainSize %d exceeds the item width", domainSize)
	}
	d, err := freqoracle.NewDirectHistogram(eps, domainSize)
	if err != nil {
		return nil, err
	}
	return &SmallDomain{eps: eps, itemBytes: itemBytes, domain: domainSize, direct: d}, nil
}

// ordinal converts an item to its domain ordinal.
func (s *SmallDomain) ordinal(x []byte) (uint64, error) {
	return freqoracle.OrdinalOf(x, s.itemBytes, s.domain)
}

// Report computes one user's ε-LDP message.
func (s *SmallDomain) Report(x []byte, rng *rand.Rand) (freqoracle.DirectReport, error) {
	v, err := s.ordinal(x)
	if err != nil {
		return freqoracle.DirectReport{}, err
	}
	return s.direct.Report(v, rng)
}

// Absorb folds one report into the server state.
func (s *SmallDomain) Absorb(rep freqoracle.DirectReport) error {
	return s.direct.Absorb(rep)
}

// Identify reconstructs the full histogram and returns every item whose
// estimate reaches minCount, sorted by decreasing estimate.
func (s *SmallDomain) Identify(minCount float64) []Estimate {
	s.direct.Finalize()
	hist := s.direct.Histogram()
	var out []Estimate
	for v, est := range hist {
		if est >= minCount {
			out = append(out, Estimate{Item: freqoracle.OrdinalBytes(uint64(v), s.itemBytes), Count: est})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return string(out[i].Item) < string(out[j].Item)
	})
	return out
}

// EstimateFrequency answers a point query after Identify.
func (s *SmallDomain) EstimateFrequency(x []byte) float64 {
	v, err := s.ordinal(x)
	if err != nil {
		return 0
	}
	return s.direct.Estimate(v)
}

// ErrorBound forwards the Theorem 3.8 per-query bound.
func (s *SmallDomain) ErrorBound(n int, beta float64) float64 {
	return s.direct.ErrorBound(n, beta)
}

// TotalReports returns the number of absorbed reports.
func (s *SmallDomain) TotalReports() int { return s.direct.TotalReports() }

// SketchBytes returns resident server memory: O(|X|).
func (s *SmallDomain) SketchBytes() int { return s.direct.SketchBytes() }

// BytesPerReport returns the payload size of one user message (a bare
// DirectReport).
func (s *SmallDomain) BytesPerReport() int { return freqoracle.DirectReportPayloadBytes }
