package core

import (
	"sort"

	"ldphh/internal/par"
)

// estimateLess is the total order Identify publishes: decreasing count,
// ties broken by ascending item bytes. Because Identify deduplicates
// candidates, no two estimates compare equal, so any correct sort — serial
// or parallel — produces the same unique permutation.
func estimateLess(a, b Estimate) bool {
	if a.Count != b.Count {
		return a.Count > b.Count
	}
	return string(a.Item) < string(b.Item)
}

// parSortThreshold is the slice length below which sortEstimates always
// sorts serially: goroutine handoff costs more than the sort itself for
// the short candidate lists a typical round produces.
const parSortThreshold = 4096

// sortEstimates sorts est by estimateLess using up to workers goroutines:
// the slice is cut into one contiguous run per worker, the runs sort
// concurrently, and a serial k-way merge (k = workers, small) combines
// them. The comparator is a strict total order, so the output permutation
// is identical at every worker count.
func sortEstimates(est []Estimate, workers int) {
	if workers <= 1 || len(est) < parSortThreshold {
		sort.Slice(est, func(i, j int) bool { return estimateLess(est[i], est[j]) })
		return
	}
	if workers > len(est) {
		workers = len(est)
	}
	runs := make([][]Estimate, workers)
	chunk := (len(est) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(est) {
			break
		}
		hi := lo + chunk
		if hi > len(est) {
			hi = len(est)
		}
		runs[w] = est[lo:hi]
	}
	par.Range(workers, workers, func(w int) {
		run := runs[w]
		sort.Slice(run, func(i, j int) bool { return estimateLess(run[i], run[j]) })
	})
	merged := make([]Estimate, 0, len(est))
	heads := make([]int, workers)
	for len(merged) < len(est) {
		best := -1
		for w, run := range runs {
			if heads[w] >= len(run) {
				continue
			}
			if best == -1 || estimateLess(run[heads[w]], runs[best][heads[best]]) {
				best = w
			}
		}
		merged = append(merged, runs[best][heads[best]])
		heads[best]++
	}
	copy(est, merged)
}
