package core

import (
	"bytes"
	"math/rand/v2"
	"runtime"
	"sort"
	"testing"

	"ldphh/internal/workload"
)

// TestIdentifyWorkerDeterminism is the Identify-side twin of the ingestion
// equivalence tests (run under -race in CI): the same absorbed reports must
// produce byte-identical identification — same items, same order, same
// bit-exact counts — at every worker count, because all scheduling freedom
// in the parallel pipeline is confined to stages whose outputs are pure
// functions of (counters, Seed).
func TestIdentifyWorkerDeterminism(t *testing.T) {
	const n = 12000
	base := Params{Eps: 4, N: n, ItemBytes: 4, Y: 64, Seed: 777}

	dom := workload.Domain{ItemBytes: 4}
	ds, err := workload.Planted(dom, n, []float64{0.35, 0.25, 0.15}, rand.New(rand.NewPCG(5, 5)))
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(base)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(6, 6))
	reports := make([]Report, n)
	for i := range reports {
		if reports[i], err = client.Report(ds.Items[i], i, rng); err != nil {
			t.Fatal(err)
		}
	}

	run := func(workers int) []Estimate {
		t.Helper()
		params := base
		params.Workers = workers
		p, err := New(params)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.AbsorbBatch(reports, 4); err != nil {
			t.Fatal(err)
		}
		est, err := p.Identify()
		if err != nil {
			t.Fatal(err)
		}
		return est
	}

	want := run(1)
	if len(want) == 0 {
		t.Fatal("serial Identify returned no items; the equivalence check would be vacuous")
	}
	counts := []int{2, 3, 4, 7, runtime.GOMAXPROCS(0)}
	for _, workers := range counts {
		if workers < 2 {
			continue
		}
		got := run(workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d identified %d items, serial %d", workers, len(got), len(want))
		}
		for i := range got {
			if !bytes.Equal(got[i].Item, want[i].Item) {
				t.Fatalf("workers=%d rank %d item %x, serial %x", workers, i, got[i].Item, want[i].Item)
			}
			// Bit-exact, not approximately equal: the determinism contract.
			if got[i].Count != want[i].Count {
				t.Fatalf("workers=%d rank %d count %v, serial %v", workers, i, got[i].Count, want[i].Count)
			}
		}
	}
}

// TestWorkersValidation covers the knob's edge cases: 0 derives GOMAXPROCS,
// negatives are rejected, and the value never leaks into public randomness
// (two protocols differing only in Workers share every hash function).
func TestWorkersValidation(t *testing.T) {
	base := Params{Eps: 2, N: 1000, ItemBytes: 4, Y: 16, Seed: 3}

	p := base
	if err := p.setDefaults(); err != nil {
		t.Fatal(err)
	}
	if p.Workers != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers defaulted to %d, want GOMAXPROCS = %d", p.Workers, runtime.GOMAXPROCS(0))
	}

	p = base
	p.Workers = -1
	if _, err := New(p); err == nil {
		t.Fatal("negative Workers accepted")
	}

	a := base
	a.Workers = 1
	b := base
	b.Workers = 16
	pa, err := New(a)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := New(b)
	if err != nil {
		t.Fatal(err)
	}
	for _, item := range [][]byte{{0, 0, 0, 1}, {9, 9, 9, 9}, {1, 2, 3, 4}} {
		if pa.Bucket(item) != pb.Bucket(item) {
			t.Fatalf("Workers changed public randomness: Bucket(%x) differs", item)
		}
	}
	for u := 0; u < 50; u++ {
		if pa.Group(u) != pb.Group(u) {
			t.Fatalf("Workers changed public randomness: Group(%d) differs", u)
		}
	}
}

// TestSortEstimatesMatchesSerial checks the parallel chunked sort emits the
// exact permutation of the serial comparator at every worker count,
// including slices long enough to cross parSortThreshold.
func TestSortEstimatesMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	for _, size := range []int{0, 1, 17, parSortThreshold + 513} {
		ref := make([]Estimate, size)
		for i := range ref {
			item := []byte{byte(rng.UintN(256)), byte(rng.UintN(256)), byte(i >> 8), byte(i)}
			// Coarse counts force plenty of ties so the item tiebreak works.
			ref[i] = Estimate{Item: item, Count: float64(rng.UintN(7))}
		}
		want := append([]Estimate(nil), ref...)
		sort.Slice(want, func(i, j int) bool { return estimateLess(want[i], want[j]) })
		for _, workers := range []int{1, 2, 3, 8} {
			got := append([]Estimate(nil), ref...)
			sortEstimates(got, workers)
			for i := range got {
				if !bytes.Equal(got[i].Item, want[i].Item) || got[i].Count != want[i].Count {
					t.Fatalf("size=%d workers=%d diverges at %d: %x/%v want %x/%v",
						size, workers, i, got[i].Item, got[i].Count, want[i].Item, want[i].Count)
				}
			}
		}
	}
}
