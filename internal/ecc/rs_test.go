package ecc

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"testing"
)

func mustCode(t *testing.T, n, k int) *Code {
	t.Helper()
	c, err := New(n, k)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	bad := [][2]int{{10, 0}, {10, 10}, {10, 11}, {256, 100}, {0, 0}, {5, -1}}
	for _, nk := range bad {
		if _, err := New(nk[0], nk[1]); err == nil {
			t.Errorf("New(%d,%d) accepted invalid parameters", nk[0], nk[1])
		}
	}
	if _, err := New(255, 128); err != nil {
		t.Errorf("New(255,128) rejected: %v", err)
	}
}

func TestEncodeDecodeClean(t *testing.T) {
	c := mustCode(t, 32, 16)
	rng := rand.New(rand.NewPCG(1, 1))
	for trial := 0; trial < 100; trial++ {
		msg := randBytes(rng, 16)
		cw, err := c.Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		if len(cw) != 32 {
			t.Fatalf("codeword length %d", len(cw))
		}
		got, err := c.Decode(cw, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("clean roundtrip failed: %x != %x", got, msg)
		}
	}
}

func TestEncodeRejectsWrongLength(t *testing.T) {
	c := mustCode(t, 16, 8)
	if _, err := c.Encode(make([]byte, 7)); err == nil {
		t.Error("Encode accepted short message")
	}
	if _, err := c.Decode(make([]byte, 15), nil); err == nil {
		t.Error("Decode accepted short codeword")
	}
}

func TestDecodeWithErrors(t *testing.T) {
	c := mustCode(t, 32, 16) // corrects 8 errors
	rng := rand.New(rand.NewPCG(2, 2))
	for trial := 0; trial < 200; trial++ {
		msg := randBytes(rng, 16)
		cw, _ := c.Encode(msg)
		nErr := rng.IntN(c.MaxErrors() + 1)
		corrupt(rng, cw, nErr)
		got, err := c.Decode(cw, nil)
		if err != nil {
			t.Fatalf("decode failed with %d errors: %v", nErr, err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("wrong decode with %d errors", nErr)
		}
	}
}

func TestDecodeWithErasures(t *testing.T) {
	c := mustCode(t, 32, 16) // 16 parity: corrects 16 pure erasures
	rng := rand.New(rand.NewPCG(3, 3))
	for trial := 0; trial < 200; trial++ {
		msg := randBytes(rng, 16)
		cw, _ := c.Encode(msg)
		nEras := rng.IntN(17)
		positions := rng.Perm(32)[:nEras]
		for _, p := range positions {
			cw[p] = byte(rng.UintN(256)) // may or may not change the symbol
		}
		got, err := c.Decode(cw, positions)
		if err != nil {
			t.Fatalf("decode failed with %d erasures: %v", nEras, err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("wrong decode with %d erasures", nEras)
		}
	}
}

func TestDecodeErrorsPlusErasures(t *testing.T) {
	c := mustCode(t, 36, 16) // 20 parity: 2e + f <= 20
	rng := rand.New(rand.NewPCG(4, 4))
	for trial := 0; trial < 300; trial++ {
		msg := randBytes(rng, 16)
		cw, _ := c.Encode(msg)
		f := rng.IntN(8)
		e := rng.IntN((20-f)/2 + 1)
		perm := rng.Perm(36)
		erasPos := perm[:f]
		errPos := perm[f : f+e]
		for _, p := range erasPos {
			cw[p] = byte(rng.UintN(256))
		}
		for _, p := range errPos {
			cw[p] ^= byte(1 + rng.UintN(255)) // guaranteed change
		}
		got, err := c.Decode(cw, erasPos)
		if err != nil {
			t.Fatalf("decode failed with e=%d f=%d: %v", e, f, err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("wrong decode with e=%d f=%d", e, f)
		}
	}
}

func TestDecodeBeyondCapabilityFailsLoudly(t *testing.T) {
	c := mustCode(t, 24, 16) // corrects 4 errors
	rng := rand.New(rand.NewPCG(5, 5))
	failures := 0
	miscorrections := 0
	const trials = 300
	for trial := 0; trial < trials; trial++ {
		msg := randBytes(rng, 16)
		cw, _ := c.Encode(msg)
		corrupt(rng, cw, 10) // far beyond capability
		got, err := c.Decode(cw, nil)
		if err != nil {
			if !errors.Is(err, ErrTooManyCorruptions) {
				t.Fatalf("unexpected error type: %v", err)
			}
			failures++
		} else if !bytes.Equal(got, msg) {
			// RS may mis-decode to a *different valid codeword*; that is
			// information-theoretically unavoidable, but it must be rare.
			miscorrections++
		}
	}
	if failures == 0 {
		t.Error("no decode ever reported failure beyond capability")
	}
	if miscorrections > trials/4 {
		t.Errorf("too many silent miscorrections: %d/%d", miscorrections, trials)
	}
}

func TestDecodeTooManyErasures(t *testing.T) {
	c := mustCode(t, 20, 16)
	cw, _ := c.Encode(make([]byte, 16))
	if _, err := c.Decode(cw, []int{0, 1, 2, 3, 4}); !errors.Is(err, ErrTooManyCorruptions) {
		t.Errorf("5 erasures with 4 parity should fail, got %v", err)
	}
	if _, err := c.Decode(cw, []int{-1}); err == nil {
		t.Error("negative erasure position accepted")
	}
	if _, err := c.Decode(cw, []int{20}); err == nil {
		t.Error("out-of-range erasure position accepted")
	}
}

func TestDuplicateErasuresTolerated(t *testing.T) {
	c := mustCode(t, 20, 16)
	msg := []byte("abcdefghijklmnop")
	cw, _ := c.Encode(msg)
	cw[5] ^= 0xff
	got, err := c.Decode(cw, []int{5, 5, 5})
	if err != nil {
		t.Fatalf("duplicate erasures: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("wrong decode with duplicate erasures")
	}
}

func TestSystematicLayout(t *testing.T) {
	c := mustCode(t, 24, 16)
	msg := []byte("0123456789abcdef")
	cw, _ := c.Encode(msg)
	if !bytes.Equal(cw[8:], msg) {
		t.Fatal("codeword is not systematic (data must occupy the tail)")
	}
}

func TestEncodeDeterministic(t *testing.T) {
	c := mustCode(t, 24, 16)
	msg := []byte("0123456789abcdef")
	a, _ := c.Encode(msg)
	b, _ := c.Encode(msg)
	if !bytes.Equal(a, b) {
		t.Fatal("Encode not deterministic")
	}
}

func TestPropertyRoundtripRandomParams(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	for trial := 0; trial < 60; trial++ {
		k := 1 + rng.IntN(40)
		n := k + 2 + rng.IntN(40)
		if n > 255 {
			n = 255
		}
		c := mustCode(t, n, k)
		msg := randBytes(rng, k)
		cw, err := c.Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		e := rng.IntN(c.MaxErrors() + 1)
		corrupt(rng, cw, e)
		got, err := c.Decode(cw, nil)
		if err != nil {
			t.Fatalf("n=%d k=%d e=%d: %v", n, k, e, err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("n=%d k=%d e=%d: wrong message", n, k, e)
		}
	}
}

func randBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.UintN(256))
	}
	return b
}

// corrupt flips nErr distinct symbols to guaranteed-different values.
func corrupt(rng *rand.Rand, cw []byte, nErr int) {
	perm := rng.Perm(len(cw))
	for i := 0; i < nErr; i++ {
		cw[perm[i]] ^= byte(1 + rng.UintN(255))
	}
}

func BenchmarkEncode32_16(b *testing.B) {
	c, _ := New(32, 16)
	msg := make([]byte, 16)
	for i := range msg {
		msg[i] = byte(i * 7)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode32_16_4errors(b *testing.B) {
	c, _ := New(32, 16)
	msg := make([]byte, 16)
	cw, _ := c.Encode(msg)
	cw[3] ^= 0x55
	cw[9] ^= 0x22
	cw[20] ^= 0x77
	cw[31] ^= 0x11
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(cw, nil); err != nil {
			b.Fatal(err)
		}
	}
}
