package ecc

// Differential suite for the incremental Chien search: the optimized
// chienSearch must agree position-for-position with the textbook
// per-position Horner evaluation on every locator polynomial the decoder
// can encounter, and Decode must keep correcting across the full
// 2e + f <= n - k error/erasure grid it did before the rewrite.

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"ldphh/internal/gf256"
)

// chienSearchReference is the pre-optimization textbook search: a full
// Horner PolyEval of the locator at α^{-pos} for every position.
func chienSearchReference(lambda []byte, n int) []int {
	var positions []int
	for pos := 0; pos < n; pos++ {
		if gf256.PolyEval(lambda, gf256.Exp(-pos)) == 0 {
			positions = append(positions, pos)
		}
	}
	return positions
}

func samePositions(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestChienDifferential sweeps locator polynomials built from every root
// count a decoder can produce, at several codeword lengths, and pins the
// incremental search to the textbook search.
func TestChienDifferential(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	for _, n := range []int{15, 30, 63, 255} {
		maxRoots := n / 2
		if maxRoots > 32 {
			maxRoots = 32
		}
		for roots := 0; roots <= maxRoots; roots++ {
			for trial := 0; trial < 8; trial++ {
				// Λ(x) = c·Π (1 - α^{pos} x) over a random root set, scaled
				// so the constant term isn't always 1.
				lambda := []byte{byte(1 + rng.IntN(255))}
				for _, pos := range rng.Perm(n)[:roots] {
					lambda = gf256.PolyMul(lambda, []byte{1, gf256.Exp(pos)})
				}
				got := chienSearch(lambda, n)
				want := chienSearchReference(lambda, n)
				if !samePositions(got, want) {
					t.Fatalf("n=%d roots=%d lambda %v: incremental %v, textbook %v",
						n, roots, lambda, got, want)
				}
			}
		}
	}
	// Degenerate shapes only reachable through corruption: the zero
	// polynomial, constants, sparse and trailing-zero locators.
	for _, lambda := range [][]byte{nil, {0}, {7}, {1}, {0, 0, 1}, {1, 0, 0}, {0, 1}} {
		got := chienSearch(lambda, 30)
		want := chienSearchReference(lambda, 30)
		if !samePositions(got, want) {
			t.Errorf("lambda %v: incremental %v, textbook %v", lambda, got, want)
		}
	}
}

// TestDecodeErrorErasureGridDifferential walks the full correctable grid
// 2e + f <= n - k and verifies Decode — with the incremental Chien and the
// stack-buffered Berlekamp-Massey inside — still recovers the message
// exactly at every point, exactly as the pre-rewrite decoder did.
func TestDecodeErrorErasureGridDifferential(t *testing.T) {
	const n, k = 30, 10
	c := mustCode(t, n, k)
	nParity := n - k
	rng := rand.New(rand.NewPCG(23, 24))
	msg := make([]byte, k)
	for i := range msg {
		msg[i] = byte(rng.IntN(256))
	}
	cw, err := c.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; 2*e <= nParity; e++ {
		for f := 0; 2*e+f <= nParity; f++ {
			for trial := 0; trial < 4; trial++ {
				recv := append([]byte(nil), cw...)
				perm := rng.Perm(n)
				for _, pos := range perm[:e] {
					recv[pos] ^= byte(1 + rng.IntN(255))
				}
				erasures := append([]int(nil), perm[e:e+f]...)
				for _, pos := range erasures {
					recv[pos] ^= byte(rng.IntN(256)) // may or may not corrupt
				}
				got, err := c.Decode(recv, erasures)
				if err != nil {
					t.Fatalf("e=%d f=%d trial=%d: %v", e, f, trial, err)
				}
				if !bytes.Equal(got, msg) {
					t.Fatalf("e=%d f=%d trial=%d: decoded %x, want %x", e, f, trial, got, msg)
				}
			}
		}
	}
}
