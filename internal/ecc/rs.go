// Package ecc implements a systematic Reed-Solomon code over GF(256) with
// errors-and-erasures decoding (Berlekamp-Massey, Chien search, Forney).
//
// Role in the reproduction: the unique-list-recoverable code of the paper's
// Theorem 3.6 (Appendix B) needs "a (standard) error-correcting code with
// constant rate that can correct an Ω(1)-fraction of errors" — the paper
// cites linear-time Spielman codes. At the block lengths that arise here
// (M = O(log|X|/loglog|X|) symbols, always ≤ 255) Reed-Solomon is the better
// engineering choice: strictly optimal distance (MDS) at every rate and
// O(M²) decoding that is negligible at polylog block length. See DESIGN.md
// substitution S1.
//
// A codeword of n symbols with k data symbols corrects e errors plus f
// erasures whenever 2e + f <= n - k.
package ecc

import (
	"errors"
	"fmt"

	"ldphh/internal/gf256"
)

// Code is a Reed-Solomon code with fixed (n, k). Safe for concurrent use
// after construction.
type Code struct {
	n, k int
	gen  []byte // generator polynomial, degree n-k
}

// ErrTooManyCorruptions is returned when decoding fails because the
// corruption pattern exceeds the code's capability.
var ErrTooManyCorruptions = errors.New("ecc: corruption beyond code capability")

// New constructs an RS(n, k) code: codewords of n symbols carrying k data
// symbols. Requires 0 < k < n <= 255.
func New(n, k int) (*Code, error) {
	if k <= 0 || n <= k || n > 255 {
		return nil, fmt.Errorf("ecc: invalid parameters n=%d k=%d (need 0 < k < n <= 255)", n, k)
	}
	// gen(x) = Π_{i=0}^{n-k-1} (x - α^i)
	gen := []byte{1}
	for i := 0; i < n-k; i++ {
		gen = gf256.PolyMul(gen, []byte{gf256.Exp(i), 1})
	}
	return &Code{n: n, k: k, gen: gen}, nil
}

// N returns the codeword length in symbols.
func (c *Code) N() int { return c.n }

// K returns the number of data symbols.
func (c *Code) K() int { return c.k }

// MaxErrors returns the number of symbol errors correctable with no
// erasures: floor((n-k)/2).
func (c *Code) MaxErrors() int { return (c.n - c.k) / 2 }

// Encode returns the systematic codeword for msg (len k): the first k
// symbols are msg itself, followed by n-k parity symbols.
func (c *Code) Encode(msg []byte) ([]byte, error) {
	if len(msg) != c.k {
		return nil, fmt.Errorf("ecc: message length %d, want %d", len(msg), c.k)
	}
	// Treat message as coefficients of m(x)·x^(n-k); remainder mod gen(x)
	// gives parity. Standard synthetic division.
	nParity := c.n - c.k
	rem := make([]byte, nParity)
	for i := c.k - 1; i >= 0; i-- {
		factor := gf256.Add(msg[i], rem[nParity-1])
		copy(rem[1:], rem[:nParity-1])
		rem[0] = 0
		if factor != 0 {
			for j := 0; j < nParity; j++ {
				rem[j] ^= gf256.Mul(factor, c.gen[j])
			}
		}
	}
	cw := make([]byte, c.n)
	// Layout: codeword polynomial cw(x) = Σ cw[i] x^i with parity in the low
	// coefficients and data in the high coefficients, so cw(α^j) = 0.
	copy(cw[:nParity], rem)
	copy(cw[nParity:], msg)
	return cw, nil
}

// Decode corrects received in place-free fashion and returns the k data
// symbols. erasures lists symbol positions (0-based, in codeword order) the
// caller knows are unreliable; they may overlap actual errors. Returns
// ErrTooManyCorruptions when the corruption pattern is uncorrectable or
// inconsistent.
func (c *Code) Decode(received []byte, erasures []int) ([]byte, error) {
	if len(received) != c.n {
		return nil, fmt.Errorf("ecc: received length %d, want %d", len(received), c.n)
	}
	nParity := c.n - c.k
	// Dedup erasure positions with a stack bitmap — positions are < n <= 255,
	// so neither the seen set nor the dedup list needs a heap allocation.
	var seen [255]bool
	var dedupBuf [255]int
	dedup := dedupBuf[:0]
	for _, e := range erasures {
		if e < 0 || e >= c.n {
			return nil, fmt.Errorf("ecc: erasure position %d out of range", e)
		}
		if !seen[e] {
			seen[e] = true
			dedup = append(dedup, e)
		}
	}
	erasures = dedup
	if len(erasures) > nParity {
		return nil, ErrTooManyCorruptions
	}

	// Syndromes S_j = r(α^j), j = 0..nParity-1.
	var syndBuf [255]byte
	synd := syndBuf[:nParity]
	allZero := true
	for j := 0; j < nParity; j++ {
		s := gf256.PolyEval(received, gf256.Exp(j))
		synd[j] = s
		if s != 0 {
			allZero = false
		}
	}
	if allZero {
		return append([]byte(nil), received[nParity:]...), nil
	}

	// Erasure locator Γ(x) = Π (1 - α^{pos} x).
	gamma := []byte{1}
	for _, pos := range erasures {
		gamma = gf256.PolyMul(gamma, []byte{1, gf256.Exp(pos)})
	}
	// Modified syndrome polynomial Ξ(x) = Γ(x)·S(x) mod x^{nParity}.
	xi := gf256.PolyMul(gamma, synd)
	if len(xi) > nParity {
		xi = xi[:nParity]
	}

	// Berlekamp-Massey on the modified syndromes finds the error locator σ.
	sigma := berlekampMassey(xi, len(erasures), nParity)
	if sigma == nil {
		return nil, ErrTooManyCorruptions
	}

	// Errata locator Λ = σ·Γ; roots locate both errors and erasures.
	lambda := gf256.PolyMul(sigma, gamma)
	positions := chienSearch(lambda, c.n)
	if len(positions) != len(lambda)-1 {
		// locator degree != number of roots found: decoding failure
		return nil, ErrTooManyCorruptions
	}

	// Errata evaluator Ω(x) = S(x)·Λ(x) mod x^{nParity}.
	omega := gf256.PolyMul(synd, lambda)
	if len(omega) > nParity {
		omega = omega[:nParity]
	}
	lambdaDeriv := gf256.PolyDeriv(lambda)

	out := append([]byte(nil), received...)
	for _, pos := range positions {
		xInv := gf256.Exp(-pos) // α^{-pos}
		num := gf256.PolyEval(omega, xInv)
		den := gf256.PolyEval(lambdaDeriv, xInv)
		if den == 0 {
			return nil, ErrTooManyCorruptions
		}
		// Forney (for syndromes starting at α^0): magnitude = x·Ω(x^-1)/Λ'(x^-1)
		// with x = α^{pos}.
		mag := gf256.Mul(gf256.Exp(pos), gf256.Div(num, den))
		out[pos] ^= mag
	}

	// Verify: all syndromes of the corrected word must vanish.
	for j := 0; j < nParity; j++ {
		if gf256.PolyEval(out, gf256.Exp(j)) != 0 {
			return nil, ErrTooManyCorruptions
		}
	}
	return out[nParity:], nil
}

// berlekampMassey finds the minimal error-locator polynomial for the
// modified syndromes, assuming numErasures positions are already accounted
// for. Returns nil when the implied error count exceeds capability.
func berlekampMassey(synd []byte, numErasures, nParity int) []byte {
	// σ, the previous σ and the update scratch all live in fixed stack
	// buffers: locator degrees stay below 255, and the per-round
	// copy-and-shift allocations were the hottest Decode allocation site.
	var sigmaBuf, prevBuf, tmpBuf [256]byte
	sigma := sigmaBuf[:1]
	prev := prevBuf[:1]
	sigma[0], prev[0] = 1, 1
	var l, m int = 0, 1
	b := byte(1)
	rounds := nParity - numErasures
	for i := 0; i < rounds; i++ {
		idx := i + numErasures
		// discrepancy d = Ξ_idx + Σ_{j=1}^{l} σ_j·Ξ_{idx-j}
		d := byte(0)
		if idx < len(synd) {
			d = synd[idx]
		}
		for j := 1; j <= l && j < len(sigma); j++ {
			if idx-j >= 0 && idx-j < len(synd) {
				d ^= gf256.Mul(sigma[j], synd[idx-j])
			}
		}
		if d == 0 {
			m++
			continue
		}
		coef := gf256.Div(d, b)
		if 2*l <= i {
			// σ <- σ + coef·x^m·prev with prev <- the pre-update σ.
			tl := copy(tmpBuf[:], sigma)
			for need := m + len(prev); len(sigma) < need; {
				sigma = append(sigma, 0)
			}
			for j, v := range prev {
				sigma[m+j] ^= gf256.Mul(coef, v)
			}
			l = i + 1 - l
			prev = prevBuf[:tl]
			copy(prev, tmpBuf[:tl])
			b = d
			m = 1
		} else {
			for need := m + len(prev); len(sigma) < need; {
				sigma = append(sigma, 0)
			}
			for j, v := range prev {
				sigma[m+j] ^= gf256.Mul(coef, v)
			}
			m++
		}
	}
	// Trim trailing zeros.
	for len(sigma) > 1 && sigma[len(sigma)-1] == 0 {
		sigma = sigma[:len(sigma)-1]
	}
	if 2*l > rounds {
		return nil // too many errors for remaining parity budget
	}
	return append([]byte(nil), sigma...)
}

// chienSearch returns the codeword positions pos such that
// lambda(α^{-pos}) = 0, for pos in [0, n), using the incremental Chien
// update: term i of λ(α^{-pos}) is λ_i·α^{-i·pos}, so stepping pos by one
// multiplies term i by the fixed factor α^{-i}. Carrying each nonzero
// term's discrete log turns that step into one subtract-mod-255 and one
// exp-table lookup — against the full Horner evaluation (two log lookups,
// an add and an exp lookup per coefficient) the textbook per-position
// PolyEval costs. Zero coefficients drop out of the scan entirely, and the
// search exits as soon as deg(λ) roots are found, since a degree-d
// polynomial has at most d roots. TestChienDifferential pins the output
// against the textbook search on the full error/erasure grid.
func chienSearch(lambda []byte, n int) []int {
	deg := len(lambda) - 1
	// Gather the nonzero terms once: coefficient degree and running log.
	// Locators have degree <= nParity < 255, so the scratch fits the stack.
	var degs, logs [256]int32
	k := 0
	for i, c := range lambda {
		if c != 0 {
			degs[k] = int32(i % 255) // per-step log decrement, pre-reduced
			logs[k] = int32(gf256.Log(c))
			k++
		}
	}
	if k == 0 {
		// The zero polynomial vanishes everywhere (textbook behavior).
		positions := make([]int, n)
		for pos := range positions {
			positions[pos] = pos
		}
		return positions
	}
	positions := make([]int, 0, deg)
	for pos := 0; pos < n; pos++ {
		var sum byte
		for j := 0; j < k; j++ {
			sum ^= gf256.ExpAt(int(logs[j])) // logs stay reduced to [0, 255)
			// Advance term j to the next position: multiply by α^{-deg_j}.
			l := logs[j] - degs[j]
			if l < 0 {
				l += 255
			}
			logs[j] = l
		}
		if sum == 0 {
			positions = append(positions, pos)
			if len(positions) == deg {
				break
			}
		}
	}
	return positions
}
