package ecc

// Benchmarks for the Reed-Solomon decode kernels: the full
// errors-and-erasures Decode and the Chien root search it calls per
// candidate locator. The list-recovery peeling loop invokes Decode once per
// seeded growth attempt, so both sit on the Identify step-4 hot path.

import (
	"math/rand/v2"
	"testing"

	"ldphh/internal/gf256"
)

func benchCorrupted(b *testing.B, n, k, errs int) (*Code, []byte) {
	b.Helper()
	c, err := New(n, k)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(9, 10))
	msg := make([]byte, k)
	for i := range msg {
		msg[i] = byte(rng.IntN(256))
	}
	cw, err := c.Encode(msg)
	if err != nil {
		b.Fatal(err)
	}
	for _, pos := range rng.Perm(n)[:errs] {
		cw[pos] ^= byte(1 + rng.IntN(255))
	}
	return c, cw
}

func benchDecode(b *testing.B, n, k, errs int) {
	c, cw := benchCorrupted(b, n, k, errs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(cw, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeSmall(b *testing.B)  { benchDecode(b, 30, 10, 10) }
func BenchmarkDecodeLarge(b *testing.B)  { benchDecode(b, 255, 223, 16) }
func BenchmarkDecodeClean(b *testing.B)  { benchDecode(b, 30, 10, 0) }
func BenchmarkDecodeErasures(b *testing.B) {
	c, cw := benchCorrupted(b, 30, 10, 0)
	rng := rand.New(rand.NewPCG(11, 12))
	erasures := rng.Perm(30)[:12]
	for _, pos := range erasures {
		cw[pos] ^= byte(1 + rng.IntN(255))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(cw, erasures); err != nil {
			b.Fatal(err)
		}
	}
}

func benchLocator(b *testing.B, n, roots int) []byte {
	b.Helper()
	rng := rand.New(rand.NewPCG(13, 14))
	lambda := []byte{1}
	for _, pos := range rng.Perm(n)[:roots] {
		lambda = gf256.PolyMul(lambda, []byte{1, gf256.Exp(pos)})
	}
	return lambda
}

func benchChien(b *testing.B, n, roots int) {
	lambda := benchLocator(b, n, roots)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := chienSearch(lambda, n); len(got) != roots {
			b.Fatalf("found %d roots, want %d", len(got), roots)
		}
	}
}

func BenchmarkChienSearchSmall(b *testing.B) { benchChien(b, 30, 10) }
func BenchmarkChienSearchLarge(b *testing.B) { benchChien(b, 255, 16) }
