package ecc

import (
	"bytes"
	"testing"
)

// FuzzDecode: arbitrary received words must never panic the decoder, and
// whenever it claims success, the returned message must re-encode to a
// codeword within correction distance of the input (i.e. the decoder only
// ever outputs genuine codewords).
func FuzzDecode(f *testing.F) {
	code, err := New(24, 16)
	if err != nil {
		f.Fatal(err)
	}
	clean, _ := code.Encode(bytes.Repeat([]byte{7}, 16))
	f.Add(clean)
	corrupt := append([]byte(nil), clean...)
	corrupt[0] ^= 0xff
	corrupt[13] ^= 0x55
	f.Add(corrupt)
	f.Add(make([]byte, 24))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) != 24 {
			return
		}
		msg, err := code.Decode(data, nil)
		if err != nil {
			return
		}
		cw, err := code.Encode(msg)
		if err != nil {
			t.Fatalf("decoded message failed to encode: %v", err)
		}
		diff := 0
		for i := range cw {
			if cw[i] != data[i] {
				diff++
			}
		}
		if diff > code.MaxErrors() {
			t.Fatalf("decoder accepted a word %d symbols from any codeword (max %d)",
				diff, code.MaxErrors())
		}
	})
}
