package stream

import (
	"encoding/binary"
	"math"
	"math/rand/v2"
	"testing"

	"ldphh/internal/ldp"
)

// testParams returns a small BasicHG configuration the edge-case tests
// share; callers override fields before New.
func testParams() Params {
	return Params{
		Kind: BasicHG, Eps: 4, Windows: 4, K: 8, Domain: 256,
		WindowSize: 1000, WarmupWindows: 1, Seed: 11,
	}
}

// zipfStream draws n items from a zipf(s) distribution over [0, domain) and
// returns the randomized reports plus the true histogram.
func zipfStream(t *testing.T, a *Aggregator, n int, s float64, seed uint64) []int {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	z := rand.NewZipf(rng, s, 1, uint64(a.p.Domain-1))
	truth := make([]int, a.p.Domain)
	for i := 0; i < n; i++ {
		x := uint32(z.Uint64())
		truth[x]++
		if err := a.Absorb(uint32(a.rr.Sample(uint64(x), rng))); err != nil {
			t.Fatalf("absorb %d: %v", i, err)
		}
	}
	return truth
}

func TestZeroWidthWindowRejected(t *testing.T) {
	for _, w := range []int{0, -1} {
		p := testParams()
		p.Windows = w
		if _, err := New(p); err == nil {
			t.Errorf("Windows = %d accepted", w)
		}
	}
	// The other validation gates, while we are here.
	bad := []func(*Params){
		func(p *Params) { p.Eps = 0 },
		func(p *Params) { p.K = 0 },
		func(p *Params) { p.Domain = 1 },
		func(p *Params) { p.WindowSize = 0 },
		func(p *Params) { p.WarmupWindows = -1 },
		func(p *Params) { p.Kind = Kind(9) },
	}
	for i, mutate := range bad {
		p := testParams()
		mutate(&p)
		if _, err := New(p); err == nil {
			t.Errorf("invalid params %d accepted", i)
		}
	}
}

// TestQueryDuringWarmup pins that QueryTopK answers mid-warmup: the
// structure is partially filled, no decay has run, and the debiased
// estimates already reflect the absorbed prefix.
func TestQueryDuringWarmup(t *testing.T) {
	p := testParams()
	// Keep the per-window randomizer strong enough (ε/w = 2 over 32 values)
	// that the planted value dominates after half a window.
	p.Eps, p.Domain = 8, 32
	a, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	if !a.InWarmup() {
		t.Fatal("fresh BasicHG aggregator not in warmup")
	}
	rng := rand.New(rand.NewPCG(1, 2))
	// Half a warmup window of a single hot value.
	for i := 0; i < p.WindowSize/2; i++ {
		if err := a.Absorb(uint32(a.rr.Sample(7, rng))); err != nil {
			t.Fatal(err)
		}
	}
	if !a.InWarmup() {
		t.Errorf("mid-window query point left warmup (reports=%d, cap=%d)", a.reports, a.warmupCap)
	}
	if w := a.CurrentWindow(); w != 0 {
		t.Errorf("CurrentWindow = %d mid-first-window, want 0", w)
	}
	est := a.QueryTopK(0)
	if len(est) == 0 {
		t.Fatal("QueryTopK during warmup returned nothing")
	}
	if est[0].Value != 7 {
		t.Errorf("top value during warmup = %d, want 7", est[0].Value)
	}
	if a.Evictions() != 0 || a.decays != 0 {
		t.Errorf("warmup ran decay: evictions=%d decays=%d", a.Evictions(), a.decays)
	}
	// Warmup ends exactly at WarmupWindows*WindowSize reports.
	for i := a.reports; i < a.warmupCap; i++ {
		if err := a.Absorb(uint32(a.rr.Sample(7, rng))); err != nil {
			t.Fatal(err)
		}
	}
	if a.InWarmup() {
		t.Error("still in warmup at the warmup cap")
	}
}

// TestEvictionAtExactlyFullBuckets drives a one-bucket structure to exactly
// full and pins the phase behaviors: warmup drops newcomers (overflow),
// statistics decays the weakest cell and replaces it at zero.
func TestEvictionAtExactlyFullBuckets(t *testing.T) {
	p := testParams()
	p.Domain = 16
	p.Buckets, p.LambdaH = 1, 2 // one bucket, two cells: full after 2 distinct values
	p.WindowSize = 4
	p.WarmupWindows = 1
	a, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	// Fill the bucket exactly during warmup: two distinct values, then a
	// third on the full bucket must be dropped and counted.
	for _, v := range []uint32{1, 2, 3, 3} {
		if err := a.Absorb(v); err != nil {
			t.Fatal(err)
		}
	}
	if a.Overflow() != 2 {
		t.Fatalf("warmup overflow = %d, want 2 (both reports of value 3 on a full bucket)", a.Overflow())
	}
	if a.Evictions() != 0 {
		t.Fatalf("warmup evicted %d cells", a.Evictions())
	}
	// Statistics phase: hammer a newcomer at the exactly-full bucket. Each
	// arrival decays the weakest cell with probability b^-cnt (near 1 at
	// cnt=1), and the newcomer takes the slot when the count reaches zero.
	if a.InWarmup() {
		t.Fatal("still in warmup after WarmupWindows*WindowSize reports")
	}
	for i := 0; i < 50 && a.Evictions() == 0; i++ {
		if err := a.Absorb(5); err != nil {
			t.Fatal(err)
		}
	}
	if a.Evictions() == 0 {
		t.Fatal("50 statistics-phase arrivals at a full bucket evicted nothing")
	}
	if a.decays == 0 {
		t.Fatal("eviction with no decay attempt recorded")
	}
	tracked := false
	for _, c := range a.cells {
		if c.used && c.val == 5 {
			tracked = true
		}
	}
	if !tracked {
		t.Error("evicting newcomer 5 not tracked after eviction")
	}
	// The structure never exceeds its geometry.
	used := 0
	for _, c := range a.cells {
		if c.used {
			used++
		}
	}
	if used > p.Buckets*p.LambdaH {
		t.Errorf("%d cells used, structure holds %d", used, p.Buckets*p.LambdaH)
	}
}

// TestMergeMidWindowSnapshots splits one stream across two aggregators,
// snapshots both mid-window, folds them into a third, and checks the merge
// against the sequential reference. Naive merges exactly (bit-identical);
// BasicHG preserves the report clock and tracks the union's heavy values.
func TestMergeMidWindowSnapshots(t *testing.T) {
	for _, kind := range []Kind{Naive, BasicHG} {
		t.Run(kind.String(), func(t *testing.T) {
			p := testParams()
			p.Kind = kind
			p.WindowSize = 1000
			mk := func() *Aggregator {
				a, err := New(p)
				if err != nil {
					t.Fatal(err)
				}
				return a
			}
			left, right, seq := mk(), mk(), mk()
			rng := rand.New(rand.NewPCG(4, 4))
			// 1500 reports: both shards end mid-window (750 = 0.75 windows).
			const n = 1500
			for i := 0; i < n; i++ {
				v := uint32(a3(i) % uint64(p.Domain))
				out := uint32(left.rr.Sample(uint64(v), rng))
				target := left
				if i%2 == 1 {
					target = right
				}
				if err := target.Absorb(out); err != nil {
					t.Fatal(err)
				}
				if err := seq.Absorb(out); err != nil {
					t.Fatal(err)
				}
			}
			if left.CurrentWindow() != 0 || left.reports != n/2 {
				t.Fatalf("left shard at window %d with %d reports, want mid-window 0 with %d",
					left.CurrentWindow(), left.reports, n/2)
			}
			ls, err := left.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			rs, err := right.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			merged := mk()
			if err := merged.MergeSnapshot(ls); err != nil {
				t.Fatal(err)
			}
			if err := merged.MergeSnapshot(rs); err != nil {
				t.Fatal(err)
			}
			if merged.reports != n {
				t.Fatalf("merged reports = %d, want %d", merged.reports, n)
			}
			if merged.CurrentWindow() != seq.CurrentWindow() {
				t.Errorf("merged window clock %d, sequential %d", merged.CurrentWindow(), seq.CurrentWindow())
			}
			got, want := merged.QueryTopK(0), seq.QueryTopK(0)
			if kind == Naive {
				// Counts add exactly: split-ingest-merge is bit-identical.
				if len(got) != len(want) {
					t.Fatalf("merged top-k size %d, sequential %d", len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("merged[%d] = %+v, sequential %+v", i, got[i], want[i])
					}
				}
				return
			}
			// BasicHG: the merged structure must track the sequential top
			// value (decay histories differ, so only containment is pinned).
			if len(got) == 0 || len(want) == 0 {
				t.Fatal("empty top-k after merge")
			}
			found := false
			for _, e := range got {
				if e.Value == want[0].Value {
					found = true
				}
			}
			if !found {
				t.Errorf("sequential top value %d missing from merged top-k %+v", want[0].Value, got)
			}
		})
	}
}

// a3 is a cheap deterministic item sequence with a skewed head.
func a3(i int) uint64 {
	if i%3 != 0 {
		return uint64(i % 5)
	}
	return uint64(i % 97)
}

// TestWorkersDeterminism pins the bit-identical-at-any-worker-count
// contract: the same stream queried under different Workers bounds returns
// byte-identical top-k lists, for both kinds.
func TestWorkersDeterminism(t *testing.T) {
	for _, kind := range []Kind{Naive, BasicHG} {
		t.Run(kind.String(), func(t *testing.T) {
			base := testParams()
			base.Kind = kind
			var ref []ValueEstimate
			for _, workers := range []int{0, 1, 2, 7} {
				p := base
				p.Workers = workers
				a, err := New(p)
				if err != nil {
					t.Fatal(err)
				}
				zipfStream(t, a, 5000, 1.3, 42)
				got := a.QueryTopK(0)
				if ref == nil {
					ref = got
					continue
				}
				if len(got) != len(ref) {
					t.Fatalf("workers=%d: %d estimates, want %d", workers, len(got), len(ref))
				}
				for i := range got {
					if got[i] != ref[i] {
						t.Fatalf("workers=%d: est[%d] = %+v, want %+v", workers, i, got[i], ref[i])
					}
				}
			}
		})
	}
}

// TestWindowBudgetAccounting proves the per-window budget split: each
// report's randomizer runs at exactly ε/w, the realized worst-case privacy
// ratio of one report is e^{ε/w}, and basic composition over one report per
// window keeps the whole stream within the total budget ε.
func TestWindowBudgetAccounting(t *testing.T) {
	p := testParams()
	p.Eps, p.Windows, p.Domain = 2.0, 5, 32
	a, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	windowEps := p.WindowEps()
	if want := p.Eps / float64(p.Windows); windowEps != want {
		t.Fatalf("WindowEps = %v, want %v", windowEps, want)
	}
	if got := a.Randomizer().Epsilon(); got != windowEps {
		t.Fatalf("randomizer runs at ε = %v, want per-window %v", got, windowEps)
	}
	// The mechanism actually meets its stated budget: the exhaustive
	// worst-case output likelihood ratio over all input pairs is e^{ε/w}.
	ratio := ldp.MaxPrivacyRatio(a.Randomizer())
	if bound := math.Exp(windowEps); ratio > bound*(1+1e-9) {
		t.Fatalf("per-report privacy ratio %v exceeds e^(ε/w) = %v", ratio, bound)
	}
	// Basic composition: a device reporting once per window over all w
	// windows spends w·(ε/w) = ε ≤ ε total. Accumulate in log space exactly
	// as the composition theorem does.
	total := 0.0
	for w := 0; w < p.Windows; w++ {
		total += math.Log(ldp.MaxPrivacyRatio(a.Randomizer()))
	}
	if total > p.Eps*(1+1e-9) {
		t.Fatalf("composed stream budget %v exceeds total ε = %v", total, p.Eps)
	}
	// And the split is tight: fewer reports spend proportionally less.
	if one := math.Log(ratio); one > p.Eps/float64(p.Windows)*(1+1e-9) {
		t.Fatalf("single window spends %v, budget per window is %v", one, p.Eps/float64(p.Windows))
	}
}

// TestNaiveDebiasAccuracy pins the estimator: on a stationary stream the
// naive debiased counts track the true histogram within the calibrated
// envelope.
func TestNaiveDebiasAccuracy(t *testing.T) {
	p := testParams()
	p.Kind = Naive
	p.Domain, p.Eps, p.N = 64, 8, 30000
	a, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	truth := zipfStream(t, a, p.N, 1.5, 7)
	bound := a.ErrorBound(0.01)
	est := a.QueryTopK(p.Domain)
	byValue := make(map[uint32]float64, len(est))
	for _, e := range est {
		byValue[e.Value] = e.Count
	}
	for v, want := range truth {
		if got := byValue[uint32(v)]; math.Abs(got-float64(want)) > bound {
			t.Errorf("debiased est[%d] = %.0f, true %d (envelope %.0f)", v, got, want, bound)
		}
	}
}

// TestStreamingVsBatchRecall is the acceptance gate: on a stationary zipf
// stream, the bounded BasicHG structure's final top-k contains every true
// heavy hitter that clears the calibrated recovery floor — the same recall
// envelope the batch accuracy suite grants the full-histogram baseline.
func TestStreamingVsBatchRecall(t *testing.T) {
	p := testParams()
	// ε/w = 4 over 128 values: pKeep ≈ 0.30, estimation envelope ≈ 920 of
	// 40000 reports; K = 32 gives a 64-cell structure whose capture floor
	// (~3500) the zipf(1.4) head clears.
	p.Domain, p.Eps, p.K, p.N = 128, 16, 32, 40000
	p.WindowSize = p.N / p.Windows
	// Arm decay from the first report: a warmup that spans a whole window
	// hands cells to whichever values arrive first and drops later
	// newcomers, so a heavy value that misses the first few hundred reports
	// could be locked out. Warmup suits short structure-fill prefixes;
	// continuous accuracy runs contest cells by weight throughout.
	p.WarmupWindows = 0
	naive := func() *Aggregator {
		q := p
		q.Kind = Naive
		a, err := New(q)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}()
	hg, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	// Identical stationary stream into both structures.
	rng := rand.New(rand.NewPCG(21, 22))
	z := rand.NewZipf(rng, 1.4, 1, uint64(p.Domain-1))
	truth := make([]int, p.Domain)
	for i := 0; i < p.N; i++ {
		x := z.Uint64()
		truth[x]++
		out := uint32(hg.rr.Sample(x, rng))
		if err := hg.Absorb(out); err != nil {
			t.Fatal(err)
		}
		if err := naive.Absorb(out); err != nil {
			t.Fatal(err)
		}
	}
	if hg.CurrentWindow() != p.Windows {
		t.Fatalf("stream ended at window %d, want all %d windows", hg.CurrentWindow(), p.Windows)
	}
	// True heavy hitters that clear the recovery floor — exactly the
	// accuracy suite's envelope (MinRecoverableFrequency): the estimation
	// envelope for the full histogram, joined with the capture floor for
	// the bounded structure.
	floor := naive.ErrorBound(0.05)
	if c := hg.CaptureFloor(); c > floor {
		floor = c
	}
	var heavy []uint32
	for v, c := range truth {
		if float64(c) > floor {
			heavy = append(heavy, uint32(v))
		}
	}
	if len(heavy) < 2 {
		t.Fatalf("only %d true values clear the %.0f floor; the recall check would be vacuous", len(heavy), floor)
	}
	if len(heavy) > p.K {
		heavy = heavy[:p.K]
	}
	inTop := func(est []ValueEstimate, v uint32) bool {
		for _, e := range est {
			if e.Value == v {
				return true
			}
		}
		return false
	}
	hgTop, naiveTop := hg.QueryTopK(0), naive.QueryTopK(0)
	for _, v := range heavy {
		if !inTop(naiveTop, v) {
			t.Errorf("baseline full histogram missed heavy value %d (true %d, floor %.0f)", v, truth[v], floor)
		}
		if !inTop(hgTop, v) {
			t.Errorf("bounded BasicHG missed heavy value %d (true %d, floor %.0f)", v, truth[v], floor)
		}
	}
	// And the bounded structure stayed bounded: cells scale with K, not
	// with the domain (the byte footprints only cross over for domains
	// far above this test's 128).
	if cells := hg.p.Buckets * hg.p.LambdaH; cells >= p.Domain {
		t.Errorf("BasicHG holds %d cells for a %d-value domain", cells, p.Domain)
	}
	if got, full := hg.SketchBytes(), 8*p.Domain; got > full {
		t.Errorf("BasicHG resident %d bytes, naive histogram is %d", got, full)
	}
}

// TestSnapshotRoundTrip pins Snapshot → Restore equivalence for both kinds.
func TestSnapshotRoundTrip(t *testing.T) {
	for _, kind := range []Kind{Naive, BasicHG} {
		t.Run(kind.String(), func(t *testing.T) {
			p := testParams()
			p.Kind = kind
			a, err := New(p)
			if err != nil {
				t.Fatal(err)
			}
			zipfStream(t, a, 3000, 1.2, 99)
			snap, err := a.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			b := a.NewAccumulator()
			if err := b.Restore(snap); err != nil {
				t.Fatal(err)
			}
			if b.reports != a.reports || b.evictions != a.evictions ||
				b.decays != a.decays || b.overflow != a.overflow {
				t.Fatalf("restored clocks (%d,%d,%d,%d) differ from original (%d,%d,%d,%d)",
					b.reports, b.evictions, b.decays, b.overflow,
					a.reports, a.evictions, a.decays, a.overflow)
			}
			ga, gb := a.QueryTopK(0), b.QueryTopK(0)
			if len(ga) != len(gb) {
				t.Fatalf("restored top-k size %d, original %d", len(gb), len(ga))
			}
			for i := range ga {
				if ga[i] != gb[i] {
					t.Fatalf("restored[%d] = %+v, original %+v", i, gb[i], ga[i])
				}
			}
			if a.Fingerprint() != b.Fingerprint() {
				t.Error("restored fingerprint differs")
			}
			// The restored aggregator keeps absorbing identically.
			rng := rand.New(rand.NewPCG(5, 5))
			for i := 0; i < 100; i++ {
				v := uint32(a.rr.Sample(3, rng))
				if err := a.Absorb(v); err != nil {
					t.Fatal(err)
				}
				if err := b.Absorb(v); err != nil {
					t.Fatal(err)
				}
			}
			ga, gb = a.QueryTopK(0), b.QueryTopK(0)
			for i := range ga {
				if ga[i] != gb[i] {
					t.Fatalf("post-restore absorb diverged at %d: %+v vs %+v", i, gb[i], ga[i])
				}
			}
		})
	}
}

// TestSnapshotValidation pins the reject paths: corruption and parameter
// mismatches must fail without touching the receiver.
func TestSnapshotValidation(t *testing.T) {
	p := testParams()
	a, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	zipfStream(t, a, 2000, 1.2, 3)
	snap, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	fresh := func() *Aggregator { return a.NewAccumulator() }

	corrupt := func(name string, mutate func([]byte) []byte) {
		t.Helper()
		buf := append([]byte(nil), snap...)
		buf = mutate(buf)
		b := fresh()
		if err := b.Restore(buf); err == nil {
			t.Errorf("%s accepted", name)
		}
		if b.reports != 0 {
			t.Errorf("%s: failed restore mutated the receiver", name)
		}
	}
	corrupt("truncated snapshot", func(b []byte) []byte { return b[:len(b)-1] })
	corrupt("bad magic", func(b []byte) []byte { b[0] = 'X'; return b })
	corrupt("future version", func(b []byte) []byte { b[4] = 99; return b })
	corrupt("wrong kind", func(b []byte) []byte { b[5] = byte(Naive); return b })
	corrupt("wrong domain", func(b []byte) []byte { b[6]++; return b })
	corrupt("wrong seed", func(b []byte) []byte { b[49]++; return b })
	// The unused-cell guard needs a sparse snapshot — the shared one fills
	// every cell (2000 near-uniform observations over 16 cells).
	sparse := fresh()
	if err := sparse.Absorb(1); err != nil {
		t.Fatal(err)
	}
	sparseSnap, err := sparse.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	{
		buf := append([]byte(nil), sparseSnap...)
		body := buf[snapshotHdrLen:]
		planted := false
		for i := 0; i*cellLen < len(body); i++ {
			rec := body[i*cellLen:]
			if rec[0] == 0 {
				rec[12] = 1 // nonzero count bits on an unused cell
				planted = true
				break
			}
		}
		if !planted {
			t.Fatal("no unused cell in sparse snapshot")
		}
		if err := fresh().Restore(buf); err == nil {
			t.Error("unused cell with data accepted")
		}
	}
	corrupt("cell in wrong bucket", func(b []byte) []byte {
		// Move the first used cell's value out of its hash bucket.
		body := b[snapshotHdrLen:]
		for i := 0; i*cellLen < len(body); i++ {
			rec := body[i*cellLen:]
			if rec[0] != 1 {
				continue
			}
			v := uint32(rec[1])<<24 | uint32(rec[2])<<16 | uint32(rec[3])<<8 | uint32(rec[4])
			for nv := uint32(0); int(nv) < a.p.Domain; nv++ {
				if a.bucketOf.Range(uint64(nv), a.p.Buckets) != i/a.p.LambdaH {
					rec[1], rec[2], rec[3], rec[4] = byte(nv>>24), byte(nv>>16), byte(nv>>8), byte(nv)
					return b
				}
				_ = v
			}
		}
		t.Fatal("could not construct a wrong-bucket cell")
		return b
	})

	// Parameter mismatch: a differently-built receiver rejects the blob.
	q := p
	q.Eps = 2
	other, err := New(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Restore(snap); err == nil {
		t.Error("snapshot restored into an aggregator with a different ε")
	}

	// Finalized aggregators neither produce nor accept snapshots.
	done := fresh()
	done.Finalize()
	if _, err := done.Snapshot(); err == nil {
		t.Error("Snapshot after Finalize accepted")
	}
	if err := done.Restore(snap); err == nil {
		t.Error("Restore after Finalize accepted")
	}
	if err := done.MergeSnapshot(snap); err == nil {
		t.Error("MergeSnapshot after Finalize accepted")
	}
	if err := done.Absorb(1); err == nil {
		t.Error("Absorb after Finalize accepted")
	}
}

// TestNaiveSnapshotSumGuard pins the naive-kind consistency check: counts
// that do not sum to the report clock are rejected.
func TestNaiveSnapshotSumGuard(t *testing.T) {
	p := testParams()
	p.Kind = Naive
	a, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	zipfStream(t, a, 1000, 1.2, 13)
	snap, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Inflate one count by a material amount without touching the report
	// clock: the sum check must notice.
	buf := append([]byte(nil), snap...)
	c0 := math.Float64frombits(binary.BigEndian.Uint64(buf[snapshotHdrLen:]))
	binary.BigEndian.PutUint64(buf[snapshotHdrLen:], math.Float64bits(c0+1000))
	if err := a.NewAccumulator().Restore(buf); err == nil {
		t.Error("inconsistent counts/reports accepted")
	}
}
