package stream

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
)

// The streaming aggregator serializes its accumulated (non-finalized) state
// into a versioned binary snapshot so the aggregation server can checkpoint
// a running stream, resume after a crash, or ship a leaf's state to a parent
// that folds it in with Merge. The public randomness (bucket hash, decay
// coins) is NOT serialized — it is reproducible from the parameters — so a
// snapshot only loads into an aggregator built from identical parameters;
// Restore validates the embedded shape against the receiver and rejects
// mismatches before touching any state (atomic validate-then-commit, the
// repo-wide snapshot contract).
//
// Format "LSGK" version 1 (big endian):
//
//	magic "LSGK" | version u8 | kind u8
//	| domain u32 | windows u32 | k u32 | windowSize u32 | warmup u32
//	| buckets u32 | lambda u32 | epsBits u64 | seed u64
//	| reports u64 | evictions u64 | decays u64 | overflow u64
//	| payload
//
// payload is domain f64 raw counts for Naive, or buckets*lambda cells of
// (used u8 | val u32 | cntBits u64) for BasicHG.

const (
	snapshotMagic   = "LSGK"
	snapshotVersion = 1
	snapshotHdrLen  = 4 + 1 + 1 + 5*4 + 2*4 + 2*8 + 4*8
	cellLen         = 1 + 4 + 8
)

// fingerprint digests a labeled word sequence with FNV-1a — the same
// construction the oracle layers use, labeled per type so streaming
// fingerprints can never collide with LHSK/LDSK/LPSK ones.
func fingerprint(label string, words ...uint64) uint64 {
	f := fnv.New64a()
	f.Write([]byte(label))
	var buf [8]byte
	for _, w := range words {
		binary.BigEndian.PutUint64(buf[:], w)
		f.Write(buf[:])
	}
	return f.Sum64()
}

// Fingerprint returns a 64-bit digest of every parameter that shapes the
// accumulated state and public randomness: kind, ε, the window split, the
// structure geometry and the seed. Two aggregators with equal fingerprints
// absorb interchangeable reports and produce mutually loadable snapshots.
func (a *Aggregator) Fingerprint() uint64 {
	return fingerprint("ldphh/stream.Aggregator/v1",
		uint64(a.p.Kind), math.Float64bits(a.p.Eps), uint64(a.p.Windows),
		uint64(a.p.K), uint64(a.p.Domain), uint64(a.p.WindowSize),
		uint64(a.p.WarmupWindows), uint64(a.p.Buckets), uint64(a.p.LambdaH),
		a.p.Seed)
}

// snapshotLen returns the exact serialized length for this geometry.
func (a *Aggregator) snapshotLen() int {
	if a.p.Kind == Naive {
		return snapshotHdrLen + 8*a.p.Domain
	}
	return snapshotHdrLen + cellLen*len(a.cells)
}

// Snapshot serializes the accumulated state (format above). Rejected after
// Finalize: a retired stream has nothing left to recover into.
func (a *Aggregator) Snapshot() ([]byte, error) {
	if a.finalized {
		return nil, fmt.Errorf("stream: Snapshot after Finalize")
	}
	buf := make([]byte, 0, a.snapshotLen())
	buf = append(buf, snapshotMagic...)
	buf = append(buf, snapshotVersion, byte(a.p.Kind))
	buf = binary.BigEndian.AppendUint32(buf, uint32(a.p.Domain))
	buf = binary.BigEndian.AppendUint32(buf, uint32(a.p.Windows))
	buf = binary.BigEndian.AppendUint32(buf, uint32(a.p.K))
	buf = binary.BigEndian.AppendUint32(buf, uint32(a.p.WindowSize))
	buf = binary.BigEndian.AppendUint32(buf, uint32(a.p.WarmupWindows))
	buf = binary.BigEndian.AppendUint32(buf, uint32(a.p.Buckets))
	buf = binary.BigEndian.AppendUint32(buf, uint32(a.p.LambdaH))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(a.p.Eps))
	buf = binary.BigEndian.AppendUint64(buf, a.p.Seed)
	buf = binary.BigEndian.AppendUint64(buf, uint64(a.reports))
	buf = binary.BigEndian.AppendUint64(buf, uint64(a.evictions))
	buf = binary.BigEndian.AppendUint64(buf, a.decays)
	buf = binary.BigEndian.AppendUint64(buf, uint64(a.overflow))
	if a.p.Kind == Naive {
		for _, c := range a.counts {
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(c))
		}
		return buf, nil
	}
	for _, c := range a.cells {
		used := byte(0)
		if c.used {
			used = 1
		}
		buf = append(buf, used)
		buf = binary.BigEndian.AppendUint32(buf, c.val)
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(c.cnt))
	}
	return buf, nil
}

// decodeSnapshot validates a blob against the receiver's parameters and
// returns the decoded state without touching the receiver.
func (a *Aggregator) decodeSnapshot(buf []byte) (*Aggregator, error) {
	if len(buf) != a.snapshotLen() {
		return nil, fmt.Errorf("stream: snapshot length %d, want %d", len(buf), a.snapshotLen())
	}
	if string(buf[:4]) != snapshotMagic {
		return nil, fmt.Errorf("stream: bad snapshot magic %q", buf[:4])
	}
	if buf[4] != snapshotVersion {
		return nil, fmt.Errorf("stream: unsupported snapshot version %d", buf[4])
	}
	if Kind(buf[5]) != a.p.Kind {
		return nil, fmt.Errorf("stream: snapshot kind %v does not match aggregator kind %v", Kind(buf[5]), a.p.Kind)
	}
	geom := []struct {
		name string
		got  uint32
		want int
	}{
		{"domain", binary.BigEndian.Uint32(buf[6:]), a.p.Domain},
		{"windows", binary.BigEndian.Uint32(buf[10:]), a.p.Windows},
		{"k", binary.BigEndian.Uint32(buf[14:]), a.p.K},
		{"windowSize", binary.BigEndian.Uint32(buf[18:]), a.p.WindowSize},
		{"warmupWindows", binary.BigEndian.Uint32(buf[22:]), a.p.WarmupWindows},
		{"buckets", binary.BigEndian.Uint32(buf[26:]), a.p.Buckets},
		{"lambda", binary.BigEndian.Uint32(buf[30:]), a.p.LambdaH},
	}
	for _, g := range geom {
		if int(g.got) != g.want {
			return nil, fmt.Errorf("stream: snapshot %s %d does not match aggregator %d", g.name, g.got, g.want)
		}
	}
	if bits := binary.BigEndian.Uint64(buf[34:]); bits != math.Float64bits(a.p.Eps) {
		return nil, fmt.Errorf("stream: snapshot eps %v does not match aggregator %v", math.Float64frombits(bits), a.p.Eps)
	}
	if seed := binary.BigEndian.Uint64(buf[42:]); seed != a.p.Seed {
		return nil, fmt.Errorf("stream: snapshot seed %d does not match aggregator %d", seed, a.p.Seed)
	}
	other := a.NewAccumulator()
	reports := binary.BigEndian.Uint64(buf[50:])
	evictions := binary.BigEndian.Uint64(buf[58:])
	decays := binary.BigEndian.Uint64(buf[66:])
	overflow := binary.BigEndian.Uint64(buf[74:])
	if reports > math.MaxInt32 || evictions > math.MaxInt32 || overflow > math.MaxInt32 {
		return nil, fmt.Errorf("stream: snapshot counters out of range")
	}
	other.reports = int(reports)
	other.evictions = int64(evictions)
	other.decays = decays
	other.overflow = int64(overflow)
	body := buf[snapshotHdrLen:]
	if a.p.Kind == Naive {
		var sum float64
		for i := range other.counts {
			v := math.Float64frombits(binary.BigEndian.Uint64(body[8*i:]))
			if !(v >= 0) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("stream: snapshot count[%d] = %v is not a finite non-negative number", i, v)
			}
			other.counts[i] = v
			sum += v
		}
		if math.Abs(sum-float64(other.reports)) > 0.5+1e-6*sum {
			return nil, fmt.Errorf("stream: snapshot counts sum %v inconsistent with %d reports", sum, other.reports)
		}
		return other, nil
	}
	for i := range other.cells {
		rec := body[cellLen*i:]
		switch rec[0] {
		case 0:
			if binary.BigEndian.Uint32(rec[1:]) != 0 || binary.BigEndian.Uint64(rec[5:]) != 0 {
				return nil, fmt.Errorf("stream: snapshot cell %d unused but non-zero", i)
			}
		case 1:
			val := binary.BigEndian.Uint32(rec[1:])
			cnt := math.Float64frombits(binary.BigEndian.Uint64(rec[5:]))
			if int64(val) >= int64(a.p.Domain) {
				return nil, fmt.Errorf("stream: snapshot cell %d value %d outside domain %d", i, val, a.p.Domain)
			}
			if !(cnt > 0) || math.IsInf(cnt, 0) {
				return nil, fmt.Errorf("stream: snapshot cell %d count %v is not a finite positive number", i, cnt)
			}
			// A tracked value must live in the bucket the hash assigns it,
			// or Absorb and Merge would stop finding it.
			if b := a.bucketOf.Range(uint64(val), a.p.Buckets); i/a.p.LambdaH != b {
				return nil, fmt.Errorf("stream: snapshot cell %d holds value %d belonging to bucket %d", i, val, b)
			}
			other.cells[i] = cell{val: val, cnt: cnt, used: true}
		default:
			return nil, fmt.Errorf("stream: snapshot cell %d has invalid used byte %d", i, rec[0])
		}
	}
	// Duplicate tracked values would double-count on every later absorb.
	seen := make(map[uint32]struct{}, len(other.cells))
	for i, c := range other.cells {
		if !c.used {
			continue
		}
		if _, dup := seen[c.val]; dup {
			return nil, fmt.Errorf("stream: snapshot tracks value %d in more than one cell (%d)", c.val, i)
		}
		seen[c.val] = struct{}{}
	}
	return other, nil
}

// Restore replaces this aggregator's accumulated state with a snapshot
// produced by an aggregator with identical parameters. On error the state
// is unchanged.
func (a *Aggregator) Restore(buf []byte) error {
	if a.finalized {
		return fmt.Errorf("stream: Restore after Finalize")
	}
	other, err := a.decodeSnapshot(buf)
	if err != nil {
		return err
	}
	a.counts = other.counts
	a.cells = other.cells
	a.reports = other.reports
	a.evictions = other.evictions
	a.decays = other.decays
	a.overflow = other.overflow
	return nil
}

// MergeSnapshot folds a sibling aggregator's snapshot into this one by
// rehydrating it into a fresh shard and merging.
func (a *Aggregator) MergeSnapshot(buf []byte) error {
	if a.finalized {
		return fmt.Errorf("stream: MergeSnapshot after Finalize")
	}
	other, err := a.decodeSnapshot(buf)
	if err != nil {
		return err
	}
	return a.Merge(other)
}
