package stream

import (
	"context"
	"encoding/binary"
	"fmt"
	"math/rand/v2"
	"sync"

	"ldphh/internal/freqoracle"
	"ldphh/internal/proto"
)

// Wire payload: one k-ary RR domain ordinal, u32 big endian. The payload
// carries no window stamp — every window shares the ε/w randomizer, so
// debiasing needs only the total report count, and the server advances its
// window clock by count. Four bytes per report regardless of domain size.
const PayloadBytes = 4

const wireVersion = 1

func init() {
	proto.Register(proto.Codec{
		ID:           proto.IDStreamHG,
		Name:         "streamhg",
		Version:      wireVersion,
		PayloadBytes: PayloadBytes,
		Validate: func(p []byte) error {
			// Any u32 is structurally valid; the domain range depends on the
			// aggregator's parameters, so out-of-domain values are rejected
			// at absorption, not at decode.
			if len(p) != PayloadBytes {
				return fmt.Errorf("stream: payload length %d, want %d", len(p), PayloadBytes)
			}
			return nil
		},
	})
}

// Wire adapts the streaming aggregator to the unified
// proto.Reporter/Aggregator surface, so it inherits the generic TCP server,
// mega-batch ingest, snapshot/merge fan-in, durable checkpoints and the
// metrics sidecar unchanged. Items are width-itemBytes encodings of domain
// ordinals, exactly like the other enumerable-domain protocols. The adapter
// serializes access with its own mutex: the core Aggregator is not safe for
// concurrent use.
//
// On top of the batch surface it implements proto.ContinuousQuerier:
// QueryTopK answers over the live structure at any time, while Identify
// keeps the repo-wide round semantics (answer, then retire the stream).
type Wire struct {
	mu        sync.Mutex
	a         *Aggregator
	itemBytes int
	queries   int64 // continuous queries answered (in-process and over TCP)
}

// NewWire constructs the adapter around a fresh streaming aggregator.
// itemBytes is the item width Identify/QueryTopK answers use; the domain
// must fit it.
func NewWire(p Params, itemBytes int) (*Wire, error) {
	if itemBytes < 1 || itemBytes > 8 {
		return nil, fmt.Errorf("stream: Wire supports ItemBytes in [1,8], got %d", itemBytes)
	}
	if itemBytes < 8 && uint64(p.Domain) > uint64(1)<<(8*itemBytes) {
		return nil, fmt.Errorf("stream: domain %d exceeds the %d-byte item width", p.Domain, itemBytes)
	}
	a, err := New(p)
	if err != nil {
		return nil, err
	}
	return &Wire{a: a, itemBytes: itemBytes}, nil
}

// Aggregator exposes the wrapped core (for in-process inspection; callers
// must not mutate it concurrently with the adapter).
func (w *Wire) Aggregator() *Aggregator { return w.a }

// ProtocolID returns proto.IDStreamHG.
func (w *Wire) ProtocolID() byte { return proto.IDStreamHG }

// Report computes one user's wire report for item x: the item's domain
// ordinal pushed through the per-window ε/w k-ary randomized response. The
// device-side budget contract is behavioral: a device reporting at most
// once per window spends at most ε over the stream by basic composition.
func (w *Wire) Report(x []byte, _ int, rng *rand.Rand) (proto.WireReport, error) {
	v, err := freqoracle.OrdinalOf(x, w.itemBytes, w.a.p.Domain)
	if err != nil {
		return nil, err
	}
	out := w.a.rr.Sample(v, rng)
	dst := proto.AppendHeader(make([]byte, 0, 2+PayloadBytes), proto.IDStreamHG, wireVersion)
	dst = binary.BigEndian.AppendUint32(dst, uint32(out))
	return proto.WireReport(dst), nil
}

func (w *Wire) decode(wr proto.WireReport) (uint32, error) {
	if err := proto.CheckHeader(wr, proto.IDStreamHG); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint32(wr.Payload())
	if int64(v) >= int64(w.a.p.Domain) {
		return 0, fmt.Errorf("stream: report value %d outside domain %d", v, w.a.p.Domain)
	}
	return v, nil
}

// Absorb folds one wire report into the structure.
func (w *Wire) Absorb(wr proto.WireReport) error {
	v, err := w.decode(wr)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.a.Absorb(v)
}

// AbsorbBatch folds a batch under one lock acquisition. Decoding and
// validation run before the lock; the valid prefix is absorbed and the
// first error returned.
func (w *Wire) AbsorbBatch(wrs []proto.WireReport) error {
	vals := make([]uint32, 0, len(wrs))
	var decodeErr error
	for _, wr := range wrs {
		v, err := w.decode(wr)
		if err != nil {
			decodeErr = err
			break
		}
		vals = append(vals, v)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, v := range vals {
		if err := w.a.Absorb(v); err != nil {
			return err
		}
	}
	return decodeErr
}

// estimates converts core value estimates to the unified estimate type.
func (w *Wire) estimates(ve []ValueEstimate) []proto.Estimate {
	out := make([]proto.Estimate, len(ve))
	for i, e := range ve {
		out[i] = proto.Estimate{Item: freqoracle.OrdinalBytes(uint64(e.Value), w.itemBytes), Count: e.Count}
	}
	return out
}

// QueryTopK answers the k largest debiased estimates over the live
// structure without retiring the stream (proto.ContinuousQuerier); k <= 0
// asks for the configured Params.K. Ingestion may continue concurrently —
// the query serializes with absorption on the adapter mutex.
func (w *Wire) QueryTopK(ctx context.Context, k int) ([]proto.Estimate, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.queries++
	return w.estimates(w.a.QueryTopK(k)), nil
}

// StreamStats reports the stream position (proto.ContinuousQuerier).
func (w *Wire) StreamStats() proto.StreamStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return proto.StreamStats{
		Window:     w.a.CurrentWindow(),
		Windows:    w.a.p.Windows,
		WindowSize: w.a.p.WindowSize,
		TopK:       w.a.p.K,
		Warmup:     w.a.InWarmup(),
		Evictions:  w.a.Evictions(),
	}
}

// QueriesServed returns the number of continuous queries answered.
func (w *Wire) QueriesServed() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.queries
}

// Identify answers the configured top-k and retires the stream: the
// round-closing semantics every batch protocol shares (further ingestion
// fails, the final checkpoint is skipped). Use QueryTopK to read the
// structure while the stream runs.
func (w *Wire) Identify(ctx context.Context) ([]proto.Estimate, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	est := w.estimates(w.a.QueryTopK(w.a.p.K))
	w.a.Finalize()
	return est, nil
}

// TotalReports returns the number of absorbed reports.
func (w *Wire) TotalReports() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.a.TotalReports()
}

// SketchBytes returns resident structure memory.
func (w *Wire) SketchBytes() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.a.SketchBytes()
}

// BytesPerReport returns the payload size of one user message.
func (w *Wire) BytesPerReport() int { return PayloadBytes }

// MinRecoverableFrequency reports the recovery floor (proto.Calibrated):
// the larger of the per-value estimation envelope at β = 0.05 and, for the
// bounded structure, the capture floor above which a value reliably holds a
// cell. Values above the floor appear in QueryTopK with the accuracy-suite
// recall guarantee; below it the bounded structure makes no promise.
func (w *Wire) MinRecoverableFrequency() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	f := w.a.ErrorBound(0.05)
	if c := w.a.CaptureFloor(); c > f {
		f = c
	}
	return f
}

// Fingerprint states the parameter digest snapshots and checkpoints are
// pinned to (proto.Fingerprinted). The item width is mixed in because it
// shapes every answer's encoding.
func (w *Wire) Fingerprint() uint64 {
	return fingerprint("ldphh/stream.Wire/v1", uint64(w.itemBytes), w.a.Fingerprint())
}

// Snapshot serializes the accumulated state (proto.Mergeable).
func (w *Wire) Snapshot() ([]byte, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.a.Snapshot()
}

// Restore rehydrates a checkpoint (proto.Mergeable).
func (w *Wire) Restore(buf []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.a.Restore(buf)
}

// MergeSnapshot folds a sibling aggregator's snapshot into this one
// (proto.Mergeable).
func (w *Wire) MergeSnapshot(buf []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.a.MergeSnapshot(buf)
}
