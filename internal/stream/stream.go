// Package stream implements the continuous-query streaming heavy-hitters
// aggregator: a HeavyGuardian-style bounded-memory top-k structure fed by
// k-ary randomized response reports, queryable at any time while ingestion
// continues.
//
// The batch protocols in this repository (internal/core, internal/baseline,
// internal/freqoracle) ingest a whole round and Identify once. Telemetry
// deployments instead stream reports indefinitely and ask "what is hot right
// now"; the related work (mpc4j-dp-stream's LdpHeavyHitterFactory) answers
// with a per-window privacy budget — a total budget ε split over w windows,
// each report randomized at ε/w so a device reporting once per window spends
// at most ε over the stream by basic composition — and a bounded-memory
// HeavyGuardian sketch on the server.
//
// Two kinds mirror the factory:
//
//   - Naive keeps the full debiased histogram (O(domain) memory) — the
//     accuracy baseline every bounded structure is judged against.
//   - BasicHG keeps w buckets of λ cells (HeavyGuardian): a warmup phase
//     fills empty cells, then a statistics phase decays the weakest cell of
//     a full bucket with probability b^-count and evicts it at zero.
//
// Both kinds absorb the identical wire reports (one k-ary RR ordinal per
// user per window), so a Naive and a BasicHG aggregator fed the same stream
// are directly comparable. All estimates are debiased with the standard
// k-RR inversion est = (obs − N·q)/(p − q).
//
// The Aggregator here is the single-threaded core; stream.Wire adapts it to
// the unified proto surface (with a mutex) and registers the streamhg codec.
package stream

import (
	"fmt"
	"math"
	"sort"

	"ldphh/internal/dist"
	"ldphh/internal/hashing"
	"ldphh/internal/ldp"
	"ldphh/internal/par"
)

// Kind selects the server-side structure, mirroring the mpc4j factory's
// NAIVE_RR / BASIC_HG selection. The wire format is identical for both.
type Kind byte

const (
	// Naive keeps the full debiased histogram — O(domain) memory, the
	// accuracy baseline.
	Naive Kind = 1
	// BasicHG keeps the bounded HeavyGuardian bucket/cell structure.
	BasicHG Kind = 2
)

// String returns the kind's factory name.
func (k Kind) String() string {
	switch k {
	case Naive:
		return "naive"
	case BasicHG:
		return "basichg"
	default:
		return fmt.Sprintf("kind(%d)", byte(k))
	}
}

// decayBase is HeavyGuardian's exponential-decay base b: a full bucket's
// weakest cell is decremented with probability b^-count, so heavy cells are
// nearly immune to eviction pressure while light ones wash out.
const decayBase = 1.08

// Params configures a streaming aggregator. The zero value is invalid; every
// field that admits no sensible default must be set (the ldphh facade fills
// conventional defaults).
type Params struct {
	// Kind selects Naive or BasicHG.
	Kind Kind
	// Eps is the total per-user privacy budget over the whole stream; each
	// report is randomized at Eps/Windows.
	Eps float64
	// Windows is the per-user budget split w: a device reporting at most
	// once per window spends at most Eps over the stream. Must be >= 1 — a
	// zero-width window would leave every report with no budget at all.
	Windows int
	// K is the top-k size Identify returns (QueryTopK can ask for another).
	K int
	// Domain is the enumerable item domain size d; reports are k-ary RR
	// ordinals in [0, d).
	Domain int
	// WindowSize is the server-side window advance: every WindowSize
	// absorbed reports the window index increments. The first
	// WarmupWindows windows are BasicHG's structure-filling warmup.
	WindowSize int
	// WarmupWindows is the number of initial windows in which BasicHG only
	// fills empty cells (no decay, no eviction); >= 0, default 1 when left
	// zero by the facade is the caller's choice — 0 arms eviction
	// immediately.
	WarmupWindows int
	// Buckets and LambdaH set the HeavyGuardian geometry (w buckets of λ_h
	// cells). Zero derives LambdaH = 8 and Buckets = ceil(2K/λ_h), giving
	// the structure twice the capacity of the answer it serves.
	Buckets int
	LambdaH int
	// N is the expected stream length, used only to size the pre-run error
	// envelope (ErrorBound falls back to absorbed reports when 0).
	N int
	// Seed derives the bucket hash and the decay randomness; two
	// aggregators with equal seeds and geometry merge.
	Seed uint64
	// Workers bounds the QueryTopK debias worker pool (0 = serial). Output
	// is bit-identical at every worker count.
	Workers int
}

// withDefaults derives the HeavyGuardian geometry left zero.
func (p Params) withDefaults() Params {
	if p.Kind == BasicHG {
		if p.LambdaH == 0 {
			p.LambdaH = 8
		}
		if p.Buckets == 0 && p.LambdaH > 0 && p.K > 0 {
			p.Buckets = (2*p.K + p.LambdaH - 1) / p.LambdaH
			if p.Buckets < 1 {
				p.Buckets = 1
			}
		}
	}
	return p
}

func (p Params) validate() error {
	if p.Kind != Naive && p.Kind != BasicHG {
		return fmt.Errorf("stream: unknown kind %v", p.Kind)
	}
	if p.Eps <= 0 {
		return fmt.Errorf("stream: Eps must be positive, got %v", p.Eps)
	}
	if p.Windows < 1 {
		return fmt.Errorf("stream: zero-width window: Windows must be >= 1, got %d", p.Windows)
	}
	if p.K < 1 {
		return fmt.Errorf("stream: K must be >= 1, got %d", p.K)
	}
	if p.Domain < 2 || p.Domain > math.MaxUint32 {
		return fmt.Errorf("stream: Domain must be in [2, 2^32), got %d", p.Domain)
	}
	if p.WindowSize < 1 {
		return fmt.Errorf("stream: WindowSize must be >= 1, got %d", p.WindowSize)
	}
	if p.WarmupWindows < 0 {
		return fmt.Errorf("stream: WarmupWindows must be >= 0, got %d", p.WarmupWindows)
	}
	if p.Kind == BasicHG {
		if p.Buckets < 1 || p.LambdaH < 1 {
			return fmt.Errorf("stream: BasicHG needs Buckets >= 1 and LambdaH >= 1, got %d x %d", p.Buckets, p.LambdaH)
		}
	}
	return nil
}

// WindowEps returns the per-window (per-report) budget ε/w.
func (p Params) WindowEps() float64 { return p.Eps / float64(p.Windows) }

// cell is one HeavyGuardian slot: a tracked value and its (decayed)
// structure count.
type cell struct {
	val  uint32
	cnt  float64
	used bool
}

// ValueEstimate is one domain ordinal with its debiased count estimate.
type ValueEstimate struct {
	Value uint32
	Count float64
}

// Aggregator is the streaming heavy-hitters core. It is not safe for
// concurrent use — stream.Wire wraps it with a mutex for the generic TCP
// server. Determinism contract: for a fixed absorb order, every observable
// (structure state, QueryTopK output, snapshots) is bit-identical at any
// Workers count; all decay randomness is derived by counter-labeled hashing
// (dist.Mix), not a stateful rng.
type Aggregator struct {
	p         Params
	rr        ldp.KaryRR // per-window randomizer at ε/w
	warmupCap int        // reports in the warmup phase (WarmupWindows * WindowSize)

	bucketOf hashing.KWise // value -> bucket (BasicHG)

	counts []float64 // Naive: raw observation histogram
	cells  []cell    // BasicHG: Buckets x LambdaH, bucket b at [b*λ, (b+1)*λ)

	reports   int    // absorbed reports (window clock)
	evictions int64  // BasicHG cells evicted by decay
	decays    uint64 // decay attempts; the label of the decay randomness
	overflow  int64  // warmup reports dropped on a full bucket
	finalized bool
}

// New constructs a streaming aggregator. HeavyGuardian geometry left zero is
// derived (λ_h = 8, Buckets = ceil(2K/λ_h)); everything else must be set.
func New(p Params) (*Aggregator, error) {
	p = p.withDefaults()
	if err := p.validate(); err != nil {
		return nil, err
	}
	a := &Aggregator{
		p:         p,
		rr:        ldp.NewKaryRR(p.WindowEps(), uint64(p.Domain)),
		warmupCap: p.WarmupWindows * p.WindowSize,
	}
	switch p.Kind {
	case Naive:
		a.counts = make([]float64, p.Domain)
	case BasicHG:
		a.bucketOf = hashing.NewKWise(4, hashing.Seeded(p.Seed, 0x48476275636b6574)) // "HGbucket"
		a.cells = make([]cell, p.Buckets*p.LambdaH)
	}
	return a, nil
}

// Params returns the construction parameters (with derived geometry).
func (a *Aggregator) Params() Params { return a.p }

// Randomizer returns the per-window k-ary RR mechanism devices must use.
func (a *Aggregator) Randomizer() ldp.KaryRR { return a.rr }

// TotalReports returns the number of reports absorbed.
func (a *Aggregator) TotalReports() int { return a.reports }

// CurrentWindow returns the zero-based index of the window the next report
// lands in: absorbed reports / WindowSize.
func (a *Aggregator) CurrentWindow() int { return a.reports / a.p.WindowSize }

// InWarmup reports whether BasicHG is still in the structure-filling warmup
// phase (always false for Naive, which has no phases).
func (a *Aggregator) InWarmup() bool {
	return a.p.Kind == BasicHG && a.reports < a.warmupCap
}

// Evictions returns the number of cells evicted by decay so far.
func (a *Aggregator) Evictions() int64 { return a.evictions }

// Overflow returns the number of warmup-phase reports dropped because their
// bucket was already full (always 0 for Naive).
func (a *Aggregator) Overflow() int64 { return a.overflow }

// Finalized reports whether Finalize retired the stream.
func (a *Aggregator) Finalized() bool { return a.finalized }

// Finalize retires the stream: further Absorb/Merge/Snapshot calls fail,
// queries keep answering over the frozen state.
func (a *Aggregator) Finalize() { a.finalized = true }

// Absorb folds one randomized report (a domain ordinal) into the structure.
func (a *Aggregator) Absorb(v uint32) error {
	if a.finalized {
		return fmt.Errorf("stream: aggregator is finalized")
	}
	if int64(v) >= int64(a.p.Domain) {
		return fmt.Errorf("stream: report value %d outside domain %d", v, a.p.Domain)
	}
	if a.p.Kind == Naive {
		a.counts[v]++
		a.reports++
		return nil
	}
	warm := a.InWarmup() // phase of the report being absorbed
	a.reports++
	b := a.bucketOf.Range(uint64(v), a.p.Buckets)
	bucket := a.cells[b*a.p.LambdaH : (b+1)*a.p.LambdaH]
	// Tracked already?
	for i := range bucket {
		if bucket[i].used && bucket[i].val == v {
			bucket[i].cnt++
			return nil
		}
	}
	// Free cell?
	for i := range bucket {
		if !bucket[i].used {
			bucket[i] = cell{val: v, cnt: 1, used: true}
			return nil
		}
	}
	if warm {
		// Warmup fills only: a full bucket drops the newcomer (counted).
		a.overflow++
		return nil
	}
	// Statistics phase: exponentially decay the weakest cell; on zero the
	// newcomer takes the slot. The decay coin is derived by hashing the
	// seed with a monotone attempt counter — pure, so the structure is a
	// deterministic function of the absorb order.
	w := 0
	for i := 1; i < len(bucket); i++ {
		if bucket[i].cnt < bucket[w].cnt {
			w = i
		}
	}
	a.decays++
	u := float64(dist.Mix(a.p.Seed, 0x48476465636179, a.decays)>>11) * 0x1p-53 // "HGdecay"
	if u < math.Pow(decayBase, -bucket[w].cnt) {
		bucket[w].cnt--
		if bucket[w].cnt <= 0 {
			a.evictions++
			bucket[w] = cell{val: v, cnt: 1, used: true}
		}
	}
	return nil
}

// debias inverts the k-ary RR bias: est = (obs − N·q)/(p − q).
func (a *Aggregator) debias(obs float64) float64 {
	pk := a.rr.PKeep()
	q := (1 - pk) / float64(a.p.Domain-1)
	return (obs - float64(a.reports)*q) / (pk - q)
}

// QueryTopK returns the k largest debiased estimates (ties broken by
// ascending value) over the current structure, without retiring the stream.
// k <= 0 asks for the configured Params.K. Safe to call at any point of the
// stream, including mid-window and during warmup.
func (a *Aggregator) QueryTopK(k int) []ValueEstimate {
	if k <= 0 {
		k = a.p.K
	}
	var est []ValueEstimate
	switch a.p.Kind {
	case Naive:
		est = make([]ValueEstimate, a.p.Domain)
		par.Range(a.p.Domain, a.p.Workers, func(v int) {
			est[v] = ValueEstimate{Value: uint32(v), Count: a.debias(a.counts[v])}
		})
	case BasicHG:
		est = make([]ValueEstimate, 0, len(a.cells))
		for _, c := range a.cells {
			if c.used {
				est = append(est, ValueEstimate{Value: c.val, Count: a.debias(c.cnt)})
			}
		}
	}
	sortValueEstimates(est)
	if len(est) > k {
		est = est[:k]
	}
	return est
}

// sortValueEstimates orders by decreasing count, ties by ascending value —
// the same strict total order every Identify in the repository returns.
func sortValueEstimates(est []ValueEstimate) {
	sort.Slice(est, func(i, j int) bool {
		if est[i].Count != est[j].Count {
			return est[i].Count > est[j].Count
		}
		return est[i].Value < est[j].Value
	})
}

// ErrorBound returns the per-value estimation envelope at confidence 1-beta:
// with probability 1-beta a single debiased estimate is within the bound of
// the true count (Hoeffding over the N per-report coins, scaled by the RR
// inversion denominator). Sized from Params.N before any report arrives.
func (a *Aggregator) ErrorBound(beta float64) float64 {
	n := a.reports
	if n < a.p.N {
		n = a.p.N
	}
	if n < 1 {
		n = 1
	}
	pk := a.rr.PKeep()
	q := (1 - pk) / float64(a.p.Domain-1)
	return math.Sqrt(float64(n)*math.Log(2/beta)/2) / (pk - q)
}

// CaptureFloor returns the bounded-structure recovery floor: the true count
// above which a value's observed arrival weight dominates the typical
// resident cell weight (reports spread over the Buckets×λ cells), so the
// value reliably wins a cell and decay pressure cannot wash it out. Below
// the floor a value competes with the k-RR background — every domain value
// observes ~N·q arrivals — and whether it holds a slot is a race decided by
// arrival order. Naive tracks the whole histogram and has no capture floor.
func (a *Aggregator) CaptureFloor() float64 {
	if a.p.Kind == Naive {
		return 0
	}
	n := a.reports
	if n < a.p.N {
		n = a.p.N
	}
	if n < 1 {
		n = 1
	}
	resident := 2 * float64(n) / float64(a.p.Buckets*a.p.LambdaH)
	pk := a.rr.PKeep()
	q := (1 - pk) / float64(a.p.Domain-1)
	f := (resident - float64(n)*q) / (pk - q)
	if f < 0 {
		f = 0
	}
	return f
}

// SketchBytes returns resident structure memory.
func (a *Aggregator) SketchBytes() int {
	if a.p.Kind == Naive {
		return 8 * len(a.counts)
	}
	return 16 * len(a.cells) // val + cnt + used, padded
}

// Merge folds another aggregator's structure into this one. Both must be
// unfinalized and built from identical parameters (Workers excepted — it
// shapes no state). Naive merges exactly (counts add, so split-ingest-merge
// is bit-identical to sequential ingest); BasicHG folds the other's tracked
// cells in: matching values add, free cells fill, and an incoming cell
// heavier than the bucket's weakest takes its slot (counted as an eviction).
func (a *Aggregator) Merge(other *Aggregator) error {
	if a.finalized || other.finalized {
		return fmt.Errorf("stream: cannot merge finalized aggregators")
	}
	if err := a.compatible(other); err != nil {
		return err
	}
	switch a.p.Kind {
	case Naive:
		for v, c := range other.counts {
			a.counts[v] += c
		}
	case BasicHG:
		for _, c := range other.cells {
			if c.used {
				a.mergeCell(c)
			}
		}
	}
	a.reports += other.reports
	a.evictions += other.evictions
	a.decays += other.decays
	a.overflow += other.overflow
	return nil
}

// mergeCell folds one tracked (value, count) pair into the structure with
// its full weight.
func (a *Aggregator) mergeCell(in cell) {
	b := a.bucketOf.Range(uint64(in.val), a.p.Buckets)
	bucket := a.cells[b*a.p.LambdaH : (b+1)*a.p.LambdaH]
	for i := range bucket {
		if bucket[i].used && bucket[i].val == in.val {
			bucket[i].cnt += in.cnt
			return
		}
	}
	for i := range bucket {
		if !bucket[i].used {
			bucket[i] = in
			return
		}
	}
	w := 0
	for i := 1; i < len(bucket); i++ {
		if bucket[i].cnt < bucket[w].cnt {
			w = i
		}
	}
	if in.cnt > bucket[w].cnt {
		a.evictions++
		bucket[w] = in
	}
}

// compatible checks that two aggregators share every state-shaping
// parameter (Workers and the N sizing hint excepted).
func (a *Aggregator) compatible(other *Aggregator) error {
	x, y := a.p, other.p
	x.Workers, y.Workers = 0, 0
	x.N, y.N = 0, 0
	if x != y {
		return fmt.Errorf("stream: parameter mismatch: %+v vs %+v", x, y)
	}
	return nil
}

// NewAccumulator returns a fresh, empty aggregator with identical
// parameters — the shard MergeSnapshot rehydrates foreign state into.
func (a *Aggregator) NewAccumulator() *Aggregator {
	acc, err := New(a.p)
	if err != nil {
		// a.p validated at construction; a failure here is a programming error.
		panic(fmt.Sprintf("stream: NewAccumulator: %v", err))
	}
	return acc
}
