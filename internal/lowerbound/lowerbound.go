// Package lowerbound implements Section 7 of the paper: the
// anti-concentration lower bound (Theorem 7.2) stating that every
// non-interactive (ε, δ)-LDP frequency oracle has worst-case error
// Ω((1/ε)·sqrt(n·log(|X|/β))) with probability at least β, together with an
// empirical harness that demonstrates the bound's *tightness*: the optimal
// randomized-response counting protocol's error quantiles match the bound's
// shape in both n and β.
//
// The harness follows the proof's construction: a uniformly random database
// S ∈ {0,1}^m with m = C·ε²·n is blown up into D ∈ {0,1}^n by duplicating
// every bit n/m times; the protocol's renormalized estimate of ΣS inherits
// the duplicated noise, and binomial anti-concentration (Theorem A.5) forces
// the stated error floor.
package lowerbound

import (
	"fmt"
	"math"
	"math/rand/v2"

	"ldphh/internal/dist"
	"ldphh/internal/ldp"
)

// ErrorLowerBound returns the Theorem 7.2 bound on the worst-case error of
// any (ε, δ)-LDP frequency oracle at failure probability beta over domain
// size |X| (with reference constant 1):
//
//	Δ ≥ (1/ε)·sqrt(n·ln(|X|/β)).
func ErrorLowerBound(eps float64, n int, domainSize, beta float64) float64 {
	if eps <= 0 || n < 1 || domainSize < 2 || beta <= 0 || beta >= 1 {
		panic("lowerbound: invalid arguments")
	}
	return math.Sqrt(float64(n)*math.Log(domainSize/beta)) / eps
}

// CountingResult is one trial of the blow-up experiment.
type CountingResult struct {
	TrueSum int     // ΣS, the number of ones in the random source database
	EstSum  float64 // renormalized protocol estimate of ΣS
}

// Err returns the signed estimation error.
func (r CountingResult) Err() float64 { return r.EstSum - float64(r.TrueSum) }

// Experiment runs trials of the Section 7 construction with the optimal
// binary-randomized-response counting protocol: m = ceil(C·ε²·n) source
// bits (C defaulting to 1 when cFactor <= 0), each held by n/m users.
func Experiment(eps float64, n, trials int, cFactor float64, rng *rand.Rand) ([]CountingResult, error) {
	if eps <= 0 || n < 1 || trials < 1 {
		return nil, fmt.Errorf("lowerbound: invalid arguments")
	}
	if cFactor <= 0 {
		cFactor = 1
	}
	m := int(math.Ceil(cFactor * eps * eps * float64(n)))
	if m < 1 {
		m = 1
	}
	if m > n {
		m = n
	}
	rr := ldp.NewBinaryRR(eps)
	results := make([]CountingResult, trials)
	for t := range results {
		// Random source database S and its blow-up D; run RR counting on D.
		trueSum := 0
		ones := 0
		reports := 0
		for j := 0; j < m; j++ {
			bit := uint64(0)
			if rng.Float64() < 0.5 {
				bit = 1
				trueSum++
			}
			copies := n / m
			if j < n%m {
				copies++
			}
			for c := 0; c < copies; c++ {
				if rr.Sample(bit, rng) == 1 {
					ones++
				}
				reports++
			}
		}
		estD := rr.Unbias(ones, reports)
		results[t] = CountingResult{
			TrueSum: trueSum,
			EstSum:  estD * float64(m) / float64(n),
		}
	}
	return results, nil
}

// QuantileRow is one line of the E12 tightness table: at failure probability
// beta, the measured (1-beta)-quantile of |error| against the theoretical
// sqrt(m·ln(1/beta))-shaped floor.
type QuantileRow struct {
	Beta          float64
	MeasuredQuant float64
	TheoryShape   float64 // sqrt(m·ln(1/beta)) reference curve (constant-free)
}

// Tightness reduces trial results to the quantile table. m must be the
// source-database size used in the experiment (ceil(cFactor·ε²·n)).
func Tightness(results []CountingResult, m int, betas []float64) []QuantileRow {
	errs := make([]float64, len(results))
	for i, r := range results {
		errs[i] = math.Abs(r.Err())
	}
	rows := make([]QuantileRow, 0, len(betas))
	for _, beta := range betas {
		rows = append(rows, QuantileRow{
			Beta:          beta,
			MeasuredQuant: dist.Quantile(errs, 1-beta),
			TheoryShape:   math.Sqrt(float64(m) * math.Log(1/beta)),
		})
	}
	return rows
}

// SourceSize returns the m used by Experiment for the given parameters.
func SourceSize(eps float64, n int, cFactor float64) int {
	if cFactor <= 0 {
		cFactor = 1
	}
	m := int(math.Ceil(cFactor * eps * eps * float64(n)))
	if m < 1 {
		m = 1
	}
	if m > n {
		m = n
	}
	return m
}

// AntiConcentrationHolds checks the Theorem A.5 statement empirically on the
// experiment results: Pr[|err| > c·sqrt(m·ln(1/β))] >= β for the given
// constant c, returning the measured exceedance probability.
func AntiConcentrationHolds(results []CountingResult, m int, beta, c float64) (measured float64) {
	threshold := c * math.Sqrt(float64(m)*math.Log(1/beta))
	count := 0
	for _, r := range results {
		if math.Abs(r.Err()) > threshold {
			count++
		}
	}
	return float64(count) / float64(len(results))
}
