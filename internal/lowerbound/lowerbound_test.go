package lowerbound

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestErrorLowerBoundShape(t *testing.T) {
	// Δ grows as sqrt(n), sqrt(log|X|), sqrt(log 1/β) and 1/ε.
	base := ErrorLowerBound(1, 10000, 1<<32, 0.05)
	if got := ErrorLowerBound(1, 40000, 1<<32, 0.05); math.Abs(got/base-2) > 0.01 {
		t.Errorf("n-scaling wrong: %f", got/base)
	}
	if got := ErrorLowerBound(0.5, 10000, 1<<32, 0.05); math.Abs(got/base-2) > 0.01 {
		t.Errorf("eps-scaling wrong: %f", got/base)
	}
	if ErrorLowerBound(1, 10000, 1<<32, 0.0001) <= base {
		t.Error("beta-scaling missing")
	}
	if ErrorLowerBound(1, 10000, 1<<48, 0.05) <= base {
		t.Error("domain-scaling missing")
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid args accepted")
		}
	}()
	ErrorLowerBound(0, 10, 2, 0.1)
}

func TestExperimentUnbiased(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	const n = 20000
	const trials = 300
	results, err := Experiment(0.5, n, trials, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != trials {
		t.Fatalf("got %d results", len(results))
	}
	m := SourceSize(0.5, n, 1)
	// The estimator is unbiased: mean signed error ~ 0 within Monte-Carlo
	// noise. Error stdev per trial ~ CEps·sqrt(n)·(m/n) = CEps·sqrt(m)·sqrt(m/n).
	sum := 0.0
	for _, r := range results {
		sum += r.Err()
	}
	mean := sum / trials
	if math.Abs(mean) > float64(m)/5 {
		t.Errorf("mean signed error %.1f suspicious (m=%d)", mean, m)
	}
}

// TestTheorem72Tightness is experiment E12: the measured (1-β)-quantile of
// the optimal counting protocol's error tracks sqrt(m·ln(1/β)) — matching
// the lower bound's shape, hence the bound is tight in β.
func TestTheorem72Tightness(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	const n = 10000
	const eps = 0.5
	const trials = 4000
	results, err := Experiment(eps, n, trials, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	m := SourceSize(eps, n, 1)
	betas := []float64{0.2, 0.05, 0.01}
	rows := Tightness(results, m, betas)
	// The normalized ratio measured/theory must be roughly constant across β
	// (tight shape) — allow 2x wiggle across the range.
	ratios := make([]float64, len(rows))
	for i, row := range rows {
		if row.MeasuredQuant <= 0 {
			t.Fatalf("degenerate quantile at beta=%v", row.Beta)
		}
		ratios[i] = row.MeasuredQuant / row.TheoryShape
	}
	for i := 1; i < len(ratios); i++ {
		if ratios[i] > 2*ratios[0] || ratios[i] < ratios[0]/2 {
			t.Errorf("quantile/theory ratio drifts: %v", ratios)
		}
	}
	// Quantiles must increase as β decreases.
	if !(rows[0].MeasuredQuant < rows[2].MeasuredQuant) {
		t.Errorf("quantiles not increasing as beta decreases: %+v", rows)
	}
}

// TestAntiConcentrationFloor verifies the Theorem A.5 consequence the lower
// bound rests on: with a small enough constant, the error *exceeds*
// c·sqrt(m·ln(1/β)) with probability at least β.
func TestAntiConcentrationFloor(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	const n = 10000
	const eps = 0.5
	const trials = 4000
	results, err := Experiment(eps, n, trials, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	m := SourceSize(eps, n, 1)
	for _, beta := range []float64{0.1, 0.02} {
		// c = 1/4 is comfortably below the true constant for this protocol.
		measured := AntiConcentrationHolds(results, m, beta, 0.25)
		if measured < beta {
			t.Errorf("beta=%v: exceedance %.4f below beta — anti-concentration floor violated",
				beta, measured)
		}
	}
}

func TestSourceSize(t *testing.T) {
	if m := SourceSize(0.5, 10000, 1); m != 2500 {
		t.Errorf("SourceSize = %d, want 2500", m)
	}
	if m := SourceSize(10, 100, 1); m != 100 {
		t.Errorf("SourceSize must cap at n, got %d", m)
	}
	if m := SourceSize(0.001, 100, 1); m != 1 {
		t.Errorf("SourceSize must floor at 1, got %d", m)
	}
}

func TestExperimentValidation(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	if _, err := Experiment(0, 10, 1, 1, rng); err == nil {
		t.Error("eps 0 accepted")
	}
	if _, err := Experiment(1, 0, 1, 1, rng); err == nil {
		t.Error("n 0 accepted")
	}
	if _, err := Experiment(1, 10, 0, 1, rng); err == nil {
		t.Error("trials 0 accepted")
	}
}
