package workload

import (
	"bytes"
	"math"
	"math/rand/v2"
	"testing"
)

func TestDomainItem(t *testing.T) {
	d := Domain{ItemBytes: 4}
	if got := d.Item(0x01020304); !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Errorf("Item = %v", got)
	}
	if got := d.Item(1); !bytes.Equal(got, []byte{0, 0, 0, 1}) {
		t.Errorf("Item(1) = %v", got)
	}
	wide := Domain{ItemBytes: 12}
	got := wide.Item(0xff)
	if len(got) != 12 || got[11] != 0xff || got[0] != 0 {
		t.Errorf("wide Item = %v", got)
	}
	if d.LogSize() != 32 {
		t.Errorf("LogSize = %f", d.LogSize())
	}
}

func TestPlanted(t *testing.T) {
	d := Domain{ItemBytes: 4}
	rng := rand.New(rand.NewPCG(1, 2))
	ds, err := Planted(d, 10000, []float64{0.3, 0.1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 10000 {
		t.Fatalf("N = %d", ds.N())
	}
	if got := ds.Count(d.Item(1)); got != 3000 {
		t.Errorf("item 1 count = %d", got)
	}
	if got := ds.Count(d.Item(2)); got != 1000 {
		t.Errorf("item 2 count = %d", got)
	}
	top := ds.TopK(2)
	if len(top) != 2 || !bytes.Equal(top[0].Item, d.Item(1)) || top[0].Count != 3000 {
		t.Errorf("TopK = %+v", top)
	}
	heavy := ds.HeavierThan(1000)
	if len(heavy) != 2 {
		t.Errorf("HeavierThan(1000) = %d items", len(heavy))
	}
	// Items must not arrive grouped: check the first 100 users are not all
	// the same item (shuffle happened).
	same := 0
	for i := 1; i < 100; i++ {
		if bytes.Equal(ds.Items[i], ds.Items[0]) {
			same++
		}
	}
	if same > 90 {
		t.Error("dataset does not look shuffled")
	}
}

func TestPlantedValidation(t *testing.T) {
	d := Domain{ItemBytes: 4}
	rng := rand.New(rand.NewPCG(3, 4))
	if _, err := Planted(d, 100, []float64{0.7, 0.5}, rng); err == nil {
		t.Error("fractions > 1 accepted")
	}
	if _, err := Planted(d, 100, []float64{0}, rng); err == nil {
		t.Error("zero fraction accepted")
	}
}

func TestZipf(t *testing.T) {
	d := Domain{ItemBytes: 4}
	rng := rand.New(rand.NewPCG(5, 6))
	ds, err := Zipf(d, 50000, 1000, 1.1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 50000 {
		t.Fatalf("N = %d", ds.N())
	}
	// Rank 1 must dominate rank 100 by roughly (100)^1.1.
	c1 := ds.Count(d.Item(1))
	c100 := ds.Count(d.Item(100))
	if c1 < 10*c100 {
		t.Errorf("Zipf skew missing: rank1=%d rank100=%d", c1, c100)
	}
	top := ds.TopK(5)
	for i := 1; i < len(top); i++ {
		if top[i].Count > top[i-1].Count {
			t.Error("TopK not sorted")
		}
	}
	if _, err := Zipf(d, 0, 10, 1, rng); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestUniform(t *testing.T) {
	d := Domain{ItemBytes: 4}
	rng := rand.New(rand.NewPCG(7, 8))
	ds, err := Uniform(d, 40000, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	want := 400.0
	for r := 1; r <= 100; r += 13 {
		c := float64(ds.Count(d.Item(uint64(r))))
		if math.Abs(c-want) > 6*math.Sqrt(want) {
			t.Errorf("rank %d count %.0f, want ~%.0f", r, c, want)
		}
	}
}

func TestTopKBounds(t *testing.T) {
	d := Domain{ItemBytes: 2}
	rng := rand.New(rand.NewPCG(9, 10))
	ds, err := Uniform(d, 100, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got := ds.TopK(100); len(got) != 5 {
		t.Errorf("TopK over-asks returned %d", len(got))
	}
}
