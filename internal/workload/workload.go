// Package workload generates the synthetic populations the experiments run
// on (DESIGN.md substitution S5): fixed-width byte items with planted heavy
// hitters, Zipf-shaped popularity (the skew of the URL/word telemetry that
// motivates the paper), and uniform filler, together with exact ground-truth
// counting for error measurement.
package workload

import (
	"encoding/binary"
	"fmt"
	"math/rand/v2"
	"sort"

	"ldphh/internal/dist"
)

// Domain describes a universe of fixed-width byte strings. |X| = 256^ItemBytes.
type Domain struct {
	ItemBytes int
}

// LogSize returns log2 |X|.
func (d Domain) LogSize() float64 { return 8 * float64(d.ItemBytes) }

// Item materializes the domain element with the given ordinal (taken mod the
// domain size) as a canonical big-endian byte string.
func (d Domain) Item(ordinal uint64) []byte {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], ordinal)
	b := make([]byte, d.ItemBytes)
	if d.ItemBytes >= 8 {
		copy(b[d.ItemBytes-8:], buf[:])
	} else {
		copy(b, buf[8-d.ItemBytes:])
	}
	return b
}

// RandomItem draws a uniform domain element.
func (d Domain) RandomItem(rng *rand.Rand) []byte {
	b := make([]byte, d.ItemBytes)
	for i := range b {
		b[i] = byte(rng.UintN(256))
	}
	return b
}

// Dataset is a concrete population: one item per user plus exact counts.
type Dataset struct {
	Domain Domain
	Items  [][]byte
	truth  map[string]int
}

// N returns the number of users.
func (ds *Dataset) N() int { return len(ds.Items) }

// Count returns the exact multiplicity of x.
func (ds *Dataset) Count(x []byte) int { return ds.truth[string(x)] }

// Truth returns the exact histogram (shared map; do not mutate).
func (ds *Dataset) Truth() map[string]int { return ds.truth }

// ItemCount pairs an item with its exact multiplicity.
type ItemCount struct {
	Item  []byte
	Count int
}

// TopK returns the k most frequent items in descending order (ties broken
// by item bytes for determinism).
func (ds *Dataset) TopK(k int) []ItemCount {
	all := make([]ItemCount, 0, len(ds.truth))
	for item, c := range ds.truth {
		all = append(all, ItemCount{Item: []byte(item), Count: c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return string(all[i].Item) < string(all[j].Item)
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

// HeavierThan returns every item with multiplicity >= delta.
func (ds *Dataset) HeavierThan(delta int) []ItemCount {
	var out []ItemCount
	for item, c := range ds.truth {
		if c >= delta {
			out = append(out, ItemCount{Item: []byte(item), Count: c})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return string(out[i].Item) < string(out[j].Item)
	})
	return out
}

func newDataset(d Domain, n int) *Dataset {
	return &Dataset{Domain: d, Items: make([][]byte, 0, n), truth: make(map[string]int)}
}

func (ds *Dataset) add(item []byte) {
	ds.Items = append(ds.Items, item)
	ds.truth[string(item)]++
}

func (ds *Dataset) shuffle(rng *rand.Rand) {
	rng.Shuffle(len(ds.Items), func(i, j int) {
		ds.Items[i], ds.Items[j] = ds.Items[j], ds.Items[i]
	})
}

// Planted builds a population of n users where fractions[i] of the users
// hold the distinct planted item i and the rest hold uniform random filler
// (filler items collide with each other only negligibly for ItemBytes >= 4).
// The planted items are Domain.Item(1), Domain.Item(2), ...
func Planted(d Domain, n int, fractions []float64, rng *rand.Rand) (*Dataset, error) {
	total := 0.0
	for _, f := range fractions {
		if f <= 0 {
			return nil, fmt.Errorf("workload: planted fraction must be positive, got %v", f)
		}
		total += f
	}
	if total > 1 {
		return nil, fmt.Errorf("workload: planted fractions sum to %v > 1", total)
	}
	ds := newDataset(d, n)
	for i, f := range fractions {
		item := d.Item(uint64(i) + 1)
		count := int(f * float64(n))
		for j := 0; j < count; j++ {
			ds.add(item)
		}
	}
	for len(ds.Items) < n {
		ds.add(d.RandomItem(rng))
	}
	ds.shuffle(rng)
	return ds, nil
}

// Zipf builds a population of n users drawing from a support of the given
// size with Zipf exponent s. Rank r maps to Domain.Item(r+1).
func Zipf(d Domain, n, support int, s float64, rng *rand.Rand) (*Dataset, error) {
	if support < 1 || n < 1 {
		return nil, fmt.Errorf("workload: Zipf needs positive n and support")
	}
	z := dist.NewZipf(support, s)
	ds := newDataset(d, n)
	for i := 0; i < n; i++ {
		ds.add(d.Item(uint64(z.Sample(rng)) + 1))
	}
	ds.shuffle(rng)
	return ds, nil
}

// Uniform builds a population of n users drawing uniformly from a support of
// the given size.
func Uniform(d Domain, n, support int, rng *rand.Rand) (*Dataset, error) {
	return Zipf(d, n, support, 0, rng)
}
