package baseline

// reportTally is the shared absorbed-report counter every baseline embeds;
// it replaces the per-protocol copy-pasted `absorbed` field + TotalReports
// accessor. Concurrency follows the embedding protocol's rules (the
// baselines are single-writer; the wire adapters add the locking).
type reportTally struct{ absorbed int }

// TotalReports returns the number of absorbed reports.
func (t *reportTally) TotalReports() int { return t.absorbed }

// sketchSized is anything that can report its resident byte size.
type sketchSized interface{ SketchBytes() int }

// totalSketchBytes sums resident memory across a protocol's constituent
// sketches — the shared body of every baseline's SketchBytes accessor.
func totalSketchBytes(parts ...sketchSized) int {
	total := 0
	for _, p := range parts {
		total += p.SketchBytes()
	}
	return total
}
