package baseline

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"ldphh/internal/freqoracle"
	"ldphh/internal/hashing"
	"ldphh/internal/ldp"
)

// BassilySmithParams configures the [4]-style succinct-histogram protocol.
// The domain must be explicitly enumerable: items are the Domain ordinals
// [0, DomainSize) of the given byte width.
type BassilySmithParams struct {
	Eps        float64
	N          int
	ItemBytes  int
	DomainSize int // |X|, scanned exhaustively by the server
	Proj       int // projection dimension m̂; 0 derives ~n
	Seed       uint64
}

func (p *BassilySmithParams) setDefaults() error {
	if p.Eps <= 0 {
		return fmt.Errorf("baseline: Eps must be positive")
	}
	if p.N <= 0 {
		return fmt.Errorf("baseline: N must be positive")
	}
	if p.ItemBytes < 1 || p.ItemBytes > 8 {
		return fmt.Errorf("baseline: BassilySmith supports ItemBytes in [1,8]")
	}
	if p.DomainSize <= 1 {
		return fmt.Errorf("baseline: DomainSize must be > 1")
	}
	if p.ItemBytes < 8 && uint64(p.DomainSize) > uint64(1)<<(8*p.ItemBytes) {
		return fmt.Errorf("baseline: DomainSize exceeds the item width")
	}
	if p.Proj == 0 {
		p.Proj = p.N
	}
	if p.Proj < 1 {
		return fmt.Errorf("baseline: Proj must be positive")
	}
	return nil
}

// BassilySmithReport is one user's message: a projection row index and one
// randomized bit.
type BassilySmithReport struct {
	Row int
	Bit int8
}

// BassilySmith is a scaled-down succinct-histogram server in the style of
// Bassily and Smith (STOC 2015). The public randomness is a ±1 projection
// matrix Φ ∈ {±1}^{Proj×|X|} realized as a pairwise-independent sign hash.
// Each user reports one randomized entry of Φ's column for its item; the
// server reconstructs ẑ and scans *every* domain element x, estimating
// f(x) = <Φ_x, ẑ>·|scaling|. The exhaustive scan is the O(|X|·Proj) server
// cost that Table 1 charges this protocol for (the original paper trades it
// to O(n^2.5) with their identification tree; either way it is super-linear
// and dominates PrivateExpanderSketch's O~(n); see DESIGN.md S3).
type BassilySmith struct {
	reportTally
	p BassilySmithParams
	// sign is 4-wise independent: the estimator correlates *products* of two
	// projection entries across rows, and pairwise independence does not
	// control the variance of products (it produced systematic cross-item
	// bias); 4-wise does.
	sign      hashing.KWise
	rowOf     hashing.KWise
	rr        ldp.BinaryRR
	z         []float64
	rowCounts []int
	finalized bool
}

// NewBassilySmith constructs the server.
func NewBassilySmith(params BassilySmithParams) (*BassilySmith, error) {
	if err := params.setDefaults(); err != nil {
		return nil, err
	}
	rng := hashing.Seeded(params.Seed, 0x42535348)
	return &BassilySmith{
		p:         params,
		sign:      hashing.NewKWise(4, rng),
		rowOf:     hashing.NewKWise(2, rng),
		rr:        ldp.NewBinaryRR(params.Eps),
		z:         make([]float64, params.Proj),
		rowCounts: make([]int, params.Proj),
	}, nil
}

// Params returns the defaulted parameters.
func (bs *BassilySmith) Params() BassilySmithParams { return bs.p }

// phi returns the projection entry Φ[row, x] in {±1}.
func (bs *BassilySmith) phi(row int, x uint64) int {
	if bs.sign.Eval(uint64(row)<<32^x)&1 == 0 {
		return 1
	}
	return -1
}

// Report runs user userIdx's client computation for domain ordinal x.
func (bs *BassilySmith) Report(x uint64, userIdx int, rng *rand.Rand) (BassilySmithReport, error) {
	if x >= uint64(bs.p.DomainSize) {
		return BassilySmithReport{}, fmt.Errorf("baseline: ordinal %d outside domain %d", x, bs.p.DomainSize)
	}
	row := bs.rowOf.Range(uint64(userIdx), bs.p.Proj)
	trueBit := uint64(0)
	if bs.phi(row, x) > 0 {
		trueBit = 1
	}
	y := bs.rr.Sample(trueBit, rng)
	bit := int8(-1)
	if y == 1 {
		bit = 1
	}
	return BassilySmithReport{Row: row, Bit: bit}, nil
}

// Absorb folds one report into the accumulator.
func (bs *BassilySmith) Absorb(rep BassilySmithReport) error {
	if bs.finalized {
		return fmt.Errorf("baseline: Absorb after Identify")
	}
	if rep.Row < 0 || rep.Row >= bs.p.Proj {
		return fmt.Errorf("baseline: report row %d out of range", rep.Row)
	}
	if rep.Bit != 1 && rep.Bit != -1 {
		return fmt.Errorf("baseline: report bit %d invalid", rep.Bit)
	}
	// Unbias the randomized sign: E[report] = sign/CEps.
	e := math.Exp(bs.p.Eps)
	ceps := (e + 1) / (e - 1)
	bs.z[rep.Row] += ceps * float64(rep.Bit)
	bs.rowCounts[rep.Row]++
	bs.absorbed++
	return nil
}

// EstimateOrdinal returns the frequency estimate of a single domain ordinal
// (an O(1) correlation against the user's row would be biased; the estimator
// correlates over all rows weighted by row occupancy — O(Proj) per query,
// the protocol's documented cost profile).
func (bs *BassilySmith) EstimateOrdinal(x uint64) float64 {
	est := 0.0
	for row := 0; row < bs.p.Proj; row++ {
		if bs.rowCounts[row] == 0 {
			continue
		}
		est += float64(bs.phi(row, x)) * bs.z[row]
	}
	return est
}

// Identify scans the whole domain and returns every ordinal whose estimate
// is at least minCount, sorted by decreasing estimate. Server time
// O(|X|·Proj): the Table 1 super-linear cost.
func (bs *BassilySmith) Identify(minCount float64) []Estimate {
	est, _ := bs.IdentifyContext(context.Background(), minCount)
	return est
}

// IdentifyContext is Identify with cancellation: the exhaustive scan is the
// one super-linear server cost in the repository, so it checks the context
// periodically (every 1024 ordinals) and aborts mid-scan when the deadline
// passes or the caller cancels.
func (bs *BassilySmith) IdentifyContext(ctx context.Context, minCount float64) ([]Estimate, error) {
	bs.finalized = true
	var out []Estimate
	for x := uint64(0); x < uint64(bs.p.DomainSize); x++ {
		if x%1024 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if est := bs.EstimateOrdinal(x); est >= minCount {
			out = append(out, Estimate{Item: freqoracle.OrdinalBytes(x, bs.p.ItemBytes), Count: est})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return string(out[i].Item) < string(out[j].Item)
	})
	return out, nil
}

// ErrorBound returns the protocol's error envelope at failure probability
// beta: CEps·sqrt(2·n·ln(2·|X|/beta)) — the sqrt(n·log|X|/ε) shape of [4].
func (bs *BassilySmith) ErrorBound(beta float64) float64 {
	if beta <= 0 || beta >= 1 {
		panic("baseline: beta must be in (0,1)")
	}
	e := math.Exp(bs.p.Eps)
	ceps := (e + 1) / (e - 1)
	return ceps * math.Sqrt(2*float64(bs.p.N)*math.Log(2*float64(bs.p.DomainSize)/beta))
}

// SketchBytes returns resident server memory: the z vector is O(Proj) = O(n).
func (bs *BassilySmith) SketchBytes() int { return 8*len(bs.z) + 8*len(bs.rowCounts) }

// BytesPerReport returns the payload size of one user message.
func (bs *BassilySmith) BytesPerReport() int { return bassilySmithPayloadBytes }

// ordinalBytes is the canonical ordinal encoding, shared repository-wide.
func ordinalBytes(x uint64, width int) []byte { return freqoracle.OrdinalBytes(x, width) }

// NonPrivate is the exact (no privacy) counter used as ground truth in
// benches and examples.
type NonPrivate struct {
	counts map[string]int
	n      int
}

// NewNonPrivate constructs the counter.
func NewNonPrivate() *NonPrivate {
	return &NonPrivate{counts: make(map[string]int)}
}

// AddUser counts one item.
func (np *NonPrivate) AddUser(x []byte) {
	np.counts[string(x)]++
	np.n++
}

// Identify returns items with count >= minCount, sorted by decreasing count.
func (np *NonPrivate) Identify(minCount int) []Estimate {
	var out []Estimate
	for item, c := range np.counts {
		if c >= minCount {
			out = append(out, Estimate{Item: []byte(item), Count: float64(c)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return string(out[i].Item) < string(out[j].Item)
	})
	return out
}

// Estimate returns the exact count of x.
func (np *NonPrivate) Estimate(x []byte) float64 { return float64(np.counts[string(x)]) }
