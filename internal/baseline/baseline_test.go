package baseline

import (
	"bytes"
	"math"
	"math/rand/v2"
	"testing"

	"ldphh/internal/workload"
)

func findEstimate(est []Estimate, item []byte) (float64, bool) {
	for _, e := range est {
		if bytes.Equal(e.Item, item) {
			return e.Count, true
		}
	}
	return 0, false
}

func TestBitstogramRecoversHeavyHitters(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end protocol run")
	}
	const n = 60000
	dom := workload.Domain{ItemBytes: 4}
	ds, err := workload.Planted(dom, n, []float64{0.25, 0.20}, rand.New(rand.NewPCG(17, 18)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBitstogram(BitstogramParams{Eps: 4, N: n, ItemBytes: 4, Seed: 303})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(19, 20))
	for i, x := range ds.Items {
		rep, err := b.Report(x, i, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Absorb(rep); err != nil {
			t.Fatal(err)
		}
	}
	est, err := b.Identify(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		item := dom.Item(uint64(i))
		got, found := findEstimate(est, item)
		if !found {
			t.Errorf("planted item %d not identified by bitstogram", i)
			continue
		}
		if math.Abs(got-float64(ds.Count(item))) > 4000 {
			t.Errorf("item %d: estimate %.0f, truth %d", i, got, ds.Count(item))
		}
	}
	// Candidate set must stay near O(Reps·T), not the domain.
	p := b.Params()
	if len(est) > 3*p.Reps*p.T {
		t.Errorf("candidate blow-up: %d", len(est))
	}
}

func TestBitstogramSuboptimalBetaDependence(t *testing.T) {
	// The baseline's threshold grows like sqrt(Reps) = sqrt(log(1/β)) while
	// PES's is β-free; verify the formulas exhibit the paper's Table 1 gap.
	mk := func(beta float64) float64 {
		b, err := NewBitstogram(BitstogramParams{Eps: 2, N: 1 << 20, ItemBytes: 8, Beta: beta, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		return b.MinRecoverableFrequency()
	}
	loose, tight := mk(0.25), mk(1.0/(1<<12))
	ratio := tight / loose
	want := math.Sqrt(12.0 / 2.0) // sqrt(Reps ratio)
	if math.Abs(ratio-want) > 0.3 {
		t.Errorf("threshold beta-scaling ratio %.2f, want ~%.2f", ratio, want)
	}
}

func TestBitstogramValidation(t *testing.T) {
	if _, err := NewBitstogram(BitstogramParams{Eps: 0, N: 10, ItemBytes: 4}); err == nil {
		t.Error("Eps 0 accepted")
	}
	if _, err := NewBitstogram(BitstogramParams{Eps: 1, N: 10, ItemBytes: 0}); err == nil {
		t.Error("ItemBytes 0 accepted")
	}
	if _, err := NewBitstogram(BitstogramParams{Eps: 1, N: 10, ItemBytes: 4, T: 100}); err == nil {
		t.Error("non-power-of-two T accepted")
	}
	if _, err := NewBitstogram(BitstogramParams{Eps: 1, N: 10, ItemBytes: 4, Beta: 2}); err == nil {
		t.Error("Beta >= 1 accepted")
	}
	b, err := NewBitstogram(BitstogramParams{Eps: 1, N: 100, ItemBytes: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 1))
	if _, err := b.Report([]byte("x"), 0, rng); err == nil {
		t.Error("wrong item width accepted")
	}
	if err := b.Absorb(BitstogramReport{Rep: -1}); err == nil {
		t.Error("bad group accepted")
	}
}

func TestBassilySmithRecoversHeavyHitters(t *testing.T) {
	if testing.Short() {
		t.Skip("quadratic-cost baseline")
	}
	const n = 20000
	const domainSize = 4096
	params := BassilySmithParams{
		Eps:        2,
		N:          n,
		ItemBytes:  2,
		DomainSize: domainSize,
		Proj:       4096,
		Seed:       99,
	}
	bs, err := NewBassilySmith(params)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(41, 42))
	truth := make([]int, domainSize)
	for i := 0; i < n; i++ {
		var x uint64
		switch {
		case i < 5000:
			x = 7
		case i < 8000:
			x = 1234
		default:
			x = uint64(rng.IntN(domainSize)) // uniform background
		}
		truth[x]++
		rep, err := bs.Report(x, i, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := bs.Absorb(rep); err != nil {
			t.Fatal(err)
		}
	}
	bound := bs.ErrorBound(0.01)
	est := bs.Identify(bound)
	for _, x := range []uint64{7, 1234} {
		got, found := findEstimate(est, ordinalBytes(x, 2))
		if !found {
			t.Errorf("heavy ordinal %d not identified", x)
			continue
		}
		if math.Abs(got-float64(truth[x])) > 2*bound {
			t.Errorf("ordinal %d: estimate %.0f, truth %d (bound %.0f)", x, got, truth[x], bound)
		}
	}
	// With the threshold at the error bound, the output must stay small.
	if len(est) > 64 {
		t.Errorf("identify returned %d items above the noise threshold", len(est))
	}
	if err := bs.Absorb(BassilySmithReport{Row: 0, Bit: 1}); err == nil {
		t.Error("Absorb after Identify accepted")
	}
}

func TestBassilySmithValidation(t *testing.T) {
	if _, err := NewBassilySmith(BassilySmithParams{Eps: 0, N: 10, ItemBytes: 2, DomainSize: 16}); err == nil {
		t.Error("Eps 0 accepted")
	}
	if _, err := NewBassilySmith(BassilySmithParams{Eps: 1, N: 10, ItemBytes: 1, DomainSize: 300}); err == nil {
		t.Error("domain exceeding width accepted")
	}
	if _, err := NewBassilySmith(BassilySmithParams{Eps: 1, N: 10, ItemBytes: 2, DomainSize: 1}); err == nil {
		t.Error("degenerate domain accepted")
	}
	bs, err := NewBassilySmith(BassilySmithParams{Eps: 1, N: 10, ItemBytes: 2, DomainSize: 64, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 1))
	if _, err := bs.Report(64, 0, rng); err == nil {
		t.Error("out-of-domain ordinal accepted")
	}
	if err := bs.Absorb(BassilySmithReport{Row: -1, Bit: 1}); err == nil {
		t.Error("bad row accepted")
	}
	if err := bs.Absorb(BassilySmithReport{Row: 0, Bit: 0}); err == nil {
		t.Error("bad bit accepted")
	}
}

func TestNonPrivate(t *testing.T) {
	np := NewNonPrivate()
	for i := 0; i < 10; i++ {
		np.AddUser([]byte("a"))
	}
	for i := 0; i < 5; i++ {
		np.AddUser([]byte("b"))
	}
	np.AddUser([]byte("c"))
	est := np.Identify(5)
	if len(est) != 2 {
		t.Fatalf("Identify(5) returned %d items", len(est))
	}
	if !bytes.Equal(est[0].Item, []byte("a")) || est[0].Count != 10 {
		t.Errorf("top item %q count %.0f", est[0].Item, est[0].Count)
	}
	if np.Estimate([]byte("c")) != 1 || np.Estimate([]byte("zz")) != 0 {
		t.Error("exact estimates wrong")
	}
}

func TestOrdinalBytes(t *testing.T) {
	if got := ordinalBytes(0x0102, 2); !bytes.Equal(got, []byte{1, 2}) {
		t.Errorf("ordinalBytes = %v", got)
	}
	if got := ordinalBytes(7, 4); !bytes.Equal(got, []byte{0, 0, 0, 7}) {
		t.Errorf("ordinalBytes = %v", got)
	}
}
