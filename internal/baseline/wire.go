package baseline

import (
	"context"
	"encoding/binary"
	"fmt"
	"math/rand/v2"
	"sync"

	"ldphh/internal/freqoracle"
	"ldphh/internal/proto"
)

// Wire codecs for the three Table 1 baselines (big endian).
//
// Bitstogram payload (16 bytes): rep u16 | bit-position u16 |
// DirectReport (5) | HashtogramReport (7).
//
// TreeHist payload (16 bytes): level u16 | prefix HashtogramReport (7) |
// confirmation HashtogramReport (7).
//
// BassilySmith payload (5 bytes): projection row u32 | ±1 bit byte.
const (
	bitstogramWireVersion   = 1
	treeHistWireVersion     = 1
	bassilySmithWireVersion = 1

	bitstogramPayloadBytes   = 2 + 2 + freqoracle.DirectReportPayloadBytes + freqoracle.HashtogramReportPayloadBytes
	treeHistPayloadBytes     = 2 + 2*freqoracle.HashtogramReportPayloadBytes
	bassilySmithPayloadBytes = 4 + 1
)

func init() {
	proto.Register(proto.Codec{
		ID:           proto.IDBitstogram,
		Name:         "bitstogram",
		Version:      bitstogramWireVersion,
		PayloadBytes: bitstogramPayloadBytes,
		Validate: func(p []byte) error {
			_, err := decodeBitstogramPayload(p)
			return err
		},
	})
	proto.Register(proto.Codec{
		ID:           proto.IDTreeHist,
		Name:         "treehist",
		Version:      treeHistWireVersion,
		PayloadBytes: treeHistPayloadBytes,
		Validate: func(p []byte) error {
			_, err := decodeTreeHistPayload(p)
			return err
		},
	})
	proto.Register(proto.Codec{
		ID:           proto.IDBassilySmith,
		Name:         "bassilysmith",
		Version:      bassilySmithWireVersion,
		PayloadBytes: bassilySmithPayloadBytes,
		Validate: func(p []byte) error {
			_, err := decodeBassilySmithPayload(p)
			return err
		},
	})
}

func appendBitstogramPayload(dst []byte, rep BitstogramReport) ([]byte, error) {
	if rep.Rep < 0 || rep.Rep > 0xffff {
		return nil, fmt.Errorf("baseline: repetition %d does not fit the frame", rep.Rep)
	}
	if rep.Bit < 0 || rep.Bit > 0xffff {
		return nil, fmt.Errorf("baseline: bit position %d does not fit the frame", rep.Bit)
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(rep.Rep))
	dst = binary.BigEndian.AppendUint16(dst, uint16(rep.Bit))
	dst = freqoracle.AppendDirectReport(dst, rep.Dir)
	return freqoracle.AppendHashtogramReport(dst, rep.Conf)
}

func decodeBitstogramPayload(p []byte) (BitstogramReport, error) {
	if len(p) != bitstogramPayloadBytes {
		return BitstogramReport{}, fmt.Errorf("baseline: bitstogram payload length %d, want %d", len(p), bitstogramPayloadBytes)
	}
	dir, err := freqoracle.DecodeDirectReport(p[4 : 4+freqoracle.DirectReportPayloadBytes])
	if err != nil {
		return BitstogramReport{}, err
	}
	conf, err := freqoracle.DecodeHashtogramReport(p[4+freqoracle.DirectReportPayloadBytes:])
	if err != nil {
		return BitstogramReport{}, err
	}
	return BitstogramReport{
		Rep:  int(binary.BigEndian.Uint16(p)),
		Bit:  int(binary.BigEndian.Uint16(p[2:])),
		Dir:  dir,
		Conf: conf,
	}, nil
}

func appendTreeHistPayload(dst []byte, rep TreeHistReport) ([]byte, error) {
	if rep.Level < 0 || rep.Level > 0xffff {
		return nil, fmt.Errorf("baseline: level %d does not fit the frame", rep.Level)
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(rep.Level))
	dst, err := freqoracle.AppendHashtogramReport(dst, rep.Pref)
	if err != nil {
		return nil, err
	}
	return freqoracle.AppendHashtogramReport(dst, rep.Conf)
}

func decodeTreeHistPayload(p []byte) (TreeHistReport, error) {
	if len(p) != treeHistPayloadBytes {
		return TreeHistReport{}, fmt.Errorf("baseline: treehist payload length %d, want %d", len(p), treeHistPayloadBytes)
	}
	pref, err := freqoracle.DecodeHashtogramReport(p[2 : 2+freqoracle.HashtogramReportPayloadBytes])
	if err != nil {
		return TreeHistReport{}, err
	}
	conf, err := freqoracle.DecodeHashtogramReport(p[2+freqoracle.HashtogramReportPayloadBytes:])
	if err != nil {
		return TreeHistReport{}, err
	}
	return TreeHistReport{Level: int(binary.BigEndian.Uint16(p)), Pref: pref, Conf: conf}, nil
}

func appendBassilySmithPayload(dst []byte, rep BassilySmithReport) ([]byte, error) {
	if rep.Row < 0 || int64(rep.Row) > int64(^uint32(0)) {
		return nil, fmt.Errorf("baseline: projection row %d does not fit the frame", rep.Row)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(rep.Row))
	return append(dst, freqoracle.EncodeBit(rep.Bit)), nil
}

func decodeBassilySmithPayload(p []byte) (BassilySmithReport, error) {
	if len(p) != bassilySmithPayloadBytes {
		return BassilySmithReport{}, fmt.Errorf("baseline: bassilysmith payload length %d, want %d", len(p), bassilySmithPayloadBytes)
	}
	bit, err := freqoracle.DecodeBit(p[4])
	if err != nil {
		return BassilySmithReport{}, err
	}
	return BassilySmithReport{Row: int(binary.BigEndian.Uint32(p)), Bit: bit}, nil
}

// BitstogramWire adapts the [3]-style protocol to the unified
// proto.Reporter/Aggregator surface. The underlying Bitstogram has no
// internal locking, so the adapter serializes all access with its own
// mutex.
type BitstogramWire struct {
	mu       sync.Mutex
	b        *Bitstogram
	minCount float64
}

// NewBitstogramWire constructs the protocol and its adapter; minCount is
// the Identify floor (0 keeps everything).
func NewBitstogramWire(params BitstogramParams, minCount float64) (*BitstogramWire, error) {
	b, err := NewBitstogram(params)
	if err != nil {
		return nil, err
	}
	return &BitstogramWire{b: b, minCount: minCount}, nil
}

// Bitstogram exposes the wrapped protocol.
func (w *BitstogramWire) Bitstogram() *Bitstogram { return w.b }

// ProtocolID returns proto.IDBitstogram.
func (w *BitstogramWire) ProtocolID() byte { return proto.IDBitstogram }

// Report computes user userIdx's wire report for item x.
func (w *BitstogramWire) Report(x []byte, userIdx int, rng *rand.Rand) (proto.WireReport, error) {
	rep, err := w.b.Report(x, userIdx, rng)
	if err != nil {
		return nil, err
	}
	dst := proto.AppendHeader(make([]byte, 0, 2+bitstogramPayloadBytes), proto.IDBitstogram, bitstogramWireVersion)
	dst, err = appendBitstogramPayload(dst, rep)
	if err != nil {
		return nil, err
	}
	return proto.WireReport(dst), nil
}

func (w *BitstogramWire) decode(wr proto.WireReport) (BitstogramReport, error) {
	if err := proto.CheckHeader(wr, proto.IDBitstogram); err != nil {
		return BitstogramReport{}, err
	}
	return decodeBitstogramPayload(wr.Payload())
}

// Absorb folds one wire report into the server state.
func (w *BitstogramWire) Absorb(wr proto.WireReport) error {
	rep, err := w.decode(wr)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Absorb(rep)
}

// AbsorbBatch folds a batch under one lock acquisition, decoding and
// validating before the lock; the valid prefix is absorbed and the first
// error returned.
func (w *BitstogramWire) AbsorbBatch(wrs []proto.WireReport) error {
	reps := make([]BitstogramReport, 0, len(wrs))
	var decodeErr error
	for _, wr := range wrs {
		rep, err := w.decode(wr)
		if err != nil {
			decodeErr = err
			break
		}
		reps = append(reps, rep)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, rep := range reps {
		if err := w.b.Absorb(rep); err != nil {
			return err
		}
	}
	return decodeErr
}

// Identify reconstructs and confirms candidates.
func (w *BitstogramWire) Identify(ctx context.Context) ([]proto.Estimate, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Identify(w.minCount)
}

// TotalReports returns the number of absorbed reports.
func (w *BitstogramWire) TotalReports() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.TotalReports()
}

// SketchBytes returns resident server memory.
func (w *BitstogramWire) SketchBytes() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.SketchBytes()
}

// BytesPerReport returns the payload size of one user message.
func (w *BitstogramWire) BytesPerReport() int { return bitstogramPayloadBytes }

// MinRecoverableFrequency forwards the configuration's recovery floor.
func (w *BitstogramWire) MinRecoverableFrequency() float64 {
	return w.b.MinRecoverableFrequency()
}

// TreeHistWire adapts the prefix-tree baseline to the unified surface,
// adding the locking the bare protocol lacks.
type TreeHistWire struct {
	mu sync.Mutex
	t  *TreeHist
}

// NewTreeHistWire constructs the protocol and its adapter.
func NewTreeHistWire(params TreeHistParams) (*TreeHistWire, error) {
	t, err := NewTreeHist(params)
	if err != nil {
		return nil, err
	}
	return &TreeHistWire{t: t}, nil
}

// TreeHist exposes the wrapped protocol.
func (w *TreeHistWire) TreeHist() *TreeHist { return w.t }

// ProtocolID returns proto.IDTreeHist.
func (w *TreeHistWire) ProtocolID() byte { return proto.IDTreeHist }

// Report computes user userIdx's wire report for item x.
func (w *TreeHistWire) Report(x []byte, userIdx int, rng *rand.Rand) (proto.WireReport, error) {
	rep, err := w.t.Report(x, userIdx, rng)
	if err != nil {
		return nil, err
	}
	dst := proto.AppendHeader(make([]byte, 0, 2+treeHistPayloadBytes), proto.IDTreeHist, treeHistWireVersion)
	dst, err = appendTreeHistPayload(dst, rep)
	if err != nil {
		return nil, err
	}
	return proto.WireReport(dst), nil
}

func (w *TreeHistWire) decode(wr proto.WireReport) (TreeHistReport, error) {
	if err := proto.CheckHeader(wr, proto.IDTreeHist); err != nil {
		return TreeHistReport{}, err
	}
	return decodeTreeHistPayload(wr.Payload())
}

// Absorb folds one wire report into the server state.
func (w *TreeHistWire) Absorb(wr proto.WireReport) error {
	rep, err := w.decode(wr)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.t.Absorb(rep)
}

// AbsorbBatch folds a batch under one lock acquisition, decoding and
// validating before the lock; the valid prefix is absorbed and the first
// error returned.
func (w *TreeHistWire) AbsorbBatch(wrs []proto.WireReport) error {
	reps := make([]TreeHistReport, 0, len(wrs))
	var decodeErr error
	for _, wr := range wrs {
		rep, err := w.decode(wr)
		if err != nil {
			decodeErr = err
			break
		}
		reps = append(reps, rep)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, rep := range reps {
		if err := w.t.Absorb(rep); err != nil {
			return err
		}
	}
	return decodeErr
}

// Identify walks the prefix tree and confirms survivors.
func (w *TreeHistWire) Identify(ctx context.Context) ([]proto.Estimate, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.t.Identify()
}

// TotalReports returns the number of absorbed reports.
func (w *TreeHistWire) TotalReports() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.t.TotalReports()
}

// SketchBytes returns resident server memory.
func (w *TreeHistWire) SketchBytes() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.t.SketchBytes()
}

// BytesPerReport returns the payload size of one user message.
func (w *TreeHistWire) BytesPerReport() int { return treeHistPayloadBytes }

// MinRecoverableFrequency forwards the configuration's recovery floor.
func (w *TreeHistWire) MinRecoverableFrequency() float64 {
	return w.t.MinRecoverableFrequency()
}

// BassilySmithWire adapts the [4]-style succinct histogram to the unified
// surface over items that are width-ItemBytes encodings of domain ordinals.
type BassilySmithWire struct {
	mu       sync.Mutex
	bs       *BassilySmith
	minCount float64
}

// NewBassilySmithWire constructs the protocol and its adapter. A zero
// minCount defaults to the protocol's β = 0.05 error bound — without a
// floor the exhaustive scan would emit a domain-sized list of noise.
func NewBassilySmithWire(params BassilySmithParams, minCount float64) (*BassilySmithWire, error) {
	bs, err := NewBassilySmith(params)
	if err != nil {
		return nil, err
	}
	if minCount == 0 {
		minCount = bs.ErrorBound(0.05)
	}
	return &BassilySmithWire{bs: bs, minCount: minCount}, nil
}

// BassilySmith exposes the wrapped protocol.
func (w *BassilySmithWire) BassilySmith() *BassilySmith { return w.bs }

// ProtocolID returns proto.IDBassilySmith.
func (w *BassilySmithWire) ProtocolID() byte { return proto.IDBassilySmith }

// Report computes user userIdx's wire report for item x.
func (w *BassilySmithWire) Report(x []byte, userIdx int, rng *rand.Rand) (proto.WireReport, error) {
	v, err := freqoracle.OrdinalOf(x, w.bs.p.ItemBytes, w.bs.p.DomainSize)
	if err != nil {
		return nil, err
	}
	rep, err := w.bs.Report(v, userIdx, rng)
	if err != nil {
		return nil, err
	}
	dst := proto.AppendHeader(make([]byte, 0, 2+bassilySmithPayloadBytes), proto.IDBassilySmith, bassilySmithWireVersion)
	dst, err = appendBassilySmithPayload(dst, rep)
	if err != nil {
		return nil, err
	}
	return proto.WireReport(dst), nil
}

func (w *BassilySmithWire) decode(wr proto.WireReport) (BassilySmithReport, error) {
	if err := proto.CheckHeader(wr, proto.IDBassilySmith); err != nil {
		return BassilySmithReport{}, err
	}
	return decodeBassilySmithPayload(wr.Payload())
}

// Absorb folds one wire report into the accumulator.
func (w *BassilySmithWire) Absorb(wr proto.WireReport) error {
	rep, err := w.decode(wr)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.bs.Absorb(rep)
}

// AbsorbBatch folds a batch under one lock acquisition, decoding and
// validating before the lock; the valid prefix is absorbed and the first
// error returned.
func (w *BassilySmithWire) AbsorbBatch(wrs []proto.WireReport) error {
	reps := make([]BassilySmithReport, 0, len(wrs))
	var decodeErr error
	for _, wr := range wrs {
		rep, err := w.decode(wr)
		if err != nil {
			decodeErr = err
			break
		}
		reps = append(reps, rep)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, rep := range reps {
		if err := w.bs.Absorb(rep); err != nil {
			return err
		}
	}
	return decodeErr
}

// Identify runs the exhaustive O(|X|·Proj) scan. This is the one
// super-linear Identify in the repository, so it honors context
// cancellation periodically mid-scan, not just on entry.
func (w *BassilySmithWire) Identify(ctx context.Context) ([]proto.Estimate, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.bs.IdentifyContext(ctx, w.minCount)
}

// TotalReports returns the number of absorbed reports.
func (w *BassilySmithWire) TotalReports() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.bs.TotalReports()
}

// SketchBytes returns resident server memory.
func (w *BassilySmithWire) SketchBytes() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.bs.SketchBytes()
}

// BytesPerReport returns the payload size of one user message.
func (w *BassilySmithWire) BytesPerReport() int { return bassilySmithPayloadBytes }

// MinRecoverableFrequency reports the protocol's β = 0.05 error bound.
func (w *BassilySmithWire) MinRecoverableFrequency() float64 { return w.bs.ErrorBound(0.05) }
