package baseline

import (
	"math"
	"math/rand/v2"
	"testing"

	"ldphh/internal/workload"
)

func TestTreeHistRecoversHeavyHitters(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end protocol run")
	}
	const n = 60000
	// 16-bit domain: tree depth is what TreeHist pays for, so the test uses
	// the width where its floor sits near the planted frequencies.
	dom := workload.Domain{ItemBytes: 2}
	ds, err := workload.Planted(dom, n, []float64{0.30, 0.22}, rand.New(rand.NewPCG(27, 28)))
	if err != nil {
		t.Fatal(err)
	}
	th, err := NewTreeHist(TreeHistParams{Eps: 4, N: n, ItemBytes: 2, Seed: 404})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(29, 30))
	for i, x := range ds.Items {
		rep, err := th.Report(x, i, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := th.Absorb(rep); err != nil {
			t.Fatal(err)
		}
	}
	est, err := th.Identify()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		item := dom.Item(uint64(i))
		got, found := findEstimate(est, item)
		if !found {
			t.Errorf("planted item %d not identified by treehist", i)
			continue
		}
		if math.Abs(got-float64(ds.Count(item))) > 5000 {
			t.Errorf("item %d: estimate %.0f, truth %d", i, got, ds.Count(item))
		}
	}
	if len(est) > th.Params().Cap {
		t.Errorf("output exceeds cap: %d", len(est))
	}
}

func TestTreeHistPrefixKey(t *testing.T) {
	x := []byte{0b10110001, 0b01000000}
	// 3-bit prefix: 101 -> first byte masked to 10100000.
	k := prefixKey(x, 3)
	if k[0] != 3 || k[1] != 0b10100000 || len(k) != 2 {
		t.Fatalf("prefixKey(3) = %v", k)
	}
	// 8-bit prefix keeps the byte intact.
	k = prefixKey(x, 8)
	if k[0] != 8 || k[1] != 0b10110001 {
		t.Fatalf("prefixKey(8) = %v", k)
	}
	// 9-bit prefix spans two bytes, masking the second.
	k = prefixKey(x, 9)
	if k[0] != 9 || k[1] != 0b10110001 || k[2] != 0 {
		t.Fatalf("prefixKey(9) = %v", k)
	}
	// Two items sharing a prefix produce identical keys at that depth.
	y := []byte{0b10111111, 0xff}
	for bits := 1; bits <= 4; bits++ {
		ka := prefixKey(x, bits)
		kb := prefixKey(y, bits)
		if string(ka) != string(kb) {
			t.Fatalf("shared %d-bit prefix produced different keys", bits)
		}
	}
	// Diverging bit 5 produces different keys from there on.
	if string(prefixKey(x, 5)) == string(prefixKey(y, 5)) {
		t.Fatal("diverging prefixes collide")
	}
}

func TestTreeHistValidation(t *testing.T) {
	if _, err := NewTreeHist(TreeHistParams{Eps: 0, N: 10, ItemBytes: 2}); err == nil {
		t.Error("Eps 0 accepted")
	}
	if _, err := NewTreeHist(TreeHistParams{Eps: 1, N: 0, ItemBytes: 2}); err == nil {
		t.Error("N 0 accepted")
	}
	if _, err := NewTreeHist(TreeHistParams{Eps: 1, N: 10, ItemBytes: 0}); err == nil {
		t.Error("ItemBytes 0 accepted")
	}
	if _, err := NewTreeHist(TreeHistParams{Eps: 1, N: 10, ItemBytes: 2, Cap: 1}); err == nil {
		t.Error("Cap 1 accepted")
	}
	th, err := NewTreeHist(TreeHistParams{Eps: 1, N: 100, ItemBytes: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 1))
	if _, err := th.Report([]byte{1}, 0, rng); err == nil {
		t.Error("wrong item width accepted")
	}
	if err := th.Absorb(TreeHistReport{Level: -1}); err == nil {
		t.Error("bad level accepted")
	}
	if err := th.Absorb(TreeHistReport{Level: 999}); err == nil {
		t.Error("bad level accepted")
	}
}

func TestTreeHistLevelBalance(t *testing.T) {
	th, err := NewTreeHist(TreeHistParams{Eps: 1, N: 64000, ItemBytes: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 32)
	for u := 0; u < 64000; u++ {
		counts[th.Level(u)]++
	}
	for l, c := range counts {
		if c < 1000 || c > 4000 {
			t.Errorf("level %d has %d users, expected ~2000", l, c)
		}
	}
}
