// Package baseline implements the two prior-work heavy-hitters protocols of
// Table 1, so every benchmark row can be regenerated comparatively:
//
//   - Bitstogram — the protocol of Bassily, Nissim, Stemmer and Thakurta
//     (NIPS 2017, reference [3]; Section 3.1.1 of the paper): a single
//     public hash h per repetition, bit-by-bit reconstruction of candidate
//     pre-images, and O(log(1/β)) independent repetitions to drive the
//     failure probability down. The repetitions split the user population,
//     which is precisely what costs the extra sqrt(log(1/β)) error factor
//     that PrivateExpanderSketch removes.
//
//   - BassilySmith — a scaled-down but faithful succinct-histogram protocol
//     in the style of Bassily and Smith (STOC 2015, reference [4]): a
//     JL-style random ±1 projection reported one randomized bit per user and
//     an exhaustive candidate scan over the whole domain, exhibiting the
//     server-time blow-up the paper's Table 1 reports (DESIGN.md
//     substitution S3).
//
// And NonPrivate, the exact counter used as ground truth.
package baseline

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"ldphh/internal/freqoracle"
	"ldphh/internal/hadamard"
	"ldphh/internal/hashing"
	"ldphh/internal/proto"
)

// Estimate is an alias of the repository-wide proto.Estimate (identical to
// core.Estimate), so baseline output flows through the unified aggregation
// surface without conversion.
type Estimate = proto.Estimate

// BitstogramParams configures the [3]-style protocol.
type BitstogramParams struct {
	Eps       float64
	N         int
	ItemBytes int
	Reps      int     // K independent repetitions; 0 derives ceil(log2(1/Beta))
	Beta      float64 // target failure probability used to derive Reps (default 0.05)
	T         int     // hash range per repetition (power of two); 0 derives ~sqrt(n)
	ConfRows  int
	ConfT     int
	Seed      uint64
}

func (p *BitstogramParams) setDefaults() error {
	if p.Eps <= 0 {
		return fmt.Errorf("baseline: Eps must be positive")
	}
	if p.N <= 0 {
		return fmt.Errorf("baseline: N must be positive")
	}
	if p.ItemBytes < 1 || p.ItemBytes > 64 {
		return fmt.Errorf("baseline: ItemBytes must be in [1,64]")
	}
	if p.Beta == 0 {
		p.Beta = 0.05
	}
	if p.Beta <= 0 || p.Beta >= 1 {
		return fmt.Errorf("baseline: Beta must be in (0,1)")
	}
	if p.Reps == 0 {
		p.Reps = int(math.Ceil(math.Log2(1 / p.Beta)))
		if p.Reps < 1 {
			p.Reps = 1
		}
	}
	if p.T == 0 {
		p.T = hadamard.NextPow2(int(math.Sqrt(float64(p.N))))
		if p.T < 16 {
			p.T = 16
		}
	}
	if p.T < 2 || p.T&(p.T-1) != 0 {
		return fmt.Errorf("baseline: T must be a power of two >= 2")
	}
	return nil
}

// BitstogramReport is one user's message: the (repetition, bit-position)
// group and the two report halves.
type BitstogramReport struct {
	Rep  int
	Bit  int
	Dir  freqoracle.DirectReport
	Conf freqoracle.HashtogramReport
}

// Bitstogram is the server. Each user is assigned to one (repetition k, bit
// position m) group and reports, at privacy ε/2, the composite value
// (h_k(x), x_m) into the group's DirectHistogram; the second half (ε/2)
// feeds a confirmation Hashtogram. For each repetition and hash cell y the
// server reads each bit as argmax{est(y,0), est(y,1)}, assembles the
// candidate pre-image, and confirms candidates on the oracle.
type Bitstogram struct {
	reportTally
	p        BitstogramParams
	bits     int
	hs       []hashing.KWise
	fold     hashing.Fingerprinter
	partHash hashing.KWise
	direct   [][]*freqoracle.DirectHistogram // [rep][bit]
	conf     *freqoracle.Hashtogram
	groupN   [][]int
}

// NewBitstogram constructs the server, drawing public randomness from Seed.
func NewBitstogram(params BitstogramParams) (*Bitstogram, error) {
	if err := params.setDefaults(); err != nil {
		return nil, err
	}
	rng := hashing.Seeded(params.Seed, 0x42495453)
	bits := 8 * params.ItemBytes
	b := &Bitstogram{
		p:        params,
		bits:     bits,
		hs:       make([]hashing.KWise, params.Reps),
		fold:     hashing.NewFingerprinter(rng),
		partHash: hashing.NewKWise(2, rng),
		direct:   make([][]*freqoracle.DirectHistogram, params.Reps),
		groupN:   make([][]int, params.Reps),
	}
	for k := 0; k < params.Reps; k++ {
		b.hs[k] = hashing.NewKWise(2, rng)
		b.direct[k] = make([]*freqoracle.DirectHistogram, bits)
		b.groupN[k] = make([]int, bits)
		for m := 0; m < bits; m++ {
			d, err := freqoracle.NewDirectHistogram(params.Eps/2, 2*params.T)
			if err != nil {
				return nil, err
			}
			b.direct[k][m] = d
		}
	}
	var err error
	b.conf, err = freqoracle.NewHashtogram(freqoracle.HashtogramParams{
		Eps:  params.Eps / 2,
		N:    params.N,
		Rows: params.ConfRows,
		T:    params.ConfT,
		Seed: rng.Uint64(),
	})
	if err != nil {
		return nil, err
	}
	return b, nil
}

// Params returns the defaulted parameters.
func (b *Bitstogram) Params() BitstogramParams { return b.p }

// Group returns user userIdx's (repetition, bit) assignment.
func (b *Bitstogram) Group(userIdx int) (rep, bit int) {
	g := b.partHash.Range(uint64(userIdx), b.p.Reps*b.bits)
	return g / b.bits, g % b.bits
}

func itemBit(x []byte, m int) uint64 {
	return uint64(x[m/8] >> uint(7-m%8) & 1)
}

// Report runs user userIdx's client computation for item x.
func (b *Bitstogram) Report(x []byte, userIdx int, rng *rand.Rand) (BitstogramReport, error) {
	if len(x) != b.p.ItemBytes {
		return BitstogramReport{}, fmt.Errorf("baseline: item length %d, want %d", len(x), b.p.ItemBytes)
	}
	rep, bit := b.Group(userIdx)
	y := uint64(b.hs[rep].Range(b.fold.Fold(x), b.p.T))
	v := y<<1 | itemBit(x, bit)
	dirRep, err := b.direct[rep][bit].Report(v, rng)
	if err != nil {
		return BitstogramReport{}, err
	}
	return BitstogramReport{
		Rep:  rep,
		Bit:  bit,
		Dir:  dirRep,
		Conf: b.conf.Report(x, userIdx, rng),
	}, nil
}

// Absorb folds one report into the server state.
func (b *Bitstogram) Absorb(rep BitstogramReport) error {
	if rep.Rep < 0 || rep.Rep >= b.p.Reps || rep.Bit < 0 || rep.Bit >= b.bits {
		return fmt.Errorf("baseline: report group (%d,%d) out of range", rep.Rep, rep.Bit)
	}
	if err := b.direct[rep.Rep][rep.Bit].Absorb(rep.Dir); err != nil {
		return err
	}
	if err := b.conf.Absorb(rep.Conf); err != nil {
		return err
	}
	b.groupN[rep.Rep][rep.Bit]++
	b.absorbed++
	return nil
}

// Identify reconstructs candidates (one per repetition and hash cell),
// confirms their frequencies and returns the union sorted by decreasing
// count. Candidates whose confirmed estimate falls below minCount are
// dropped; pass 0 to keep everything.
func (b *Bitstogram) Identify(minCount float64) ([]Estimate, error) {
	for k := range b.direct {
		for m := range b.direct[k] {
			b.direct[k][m].Finalize()
		}
	}
	seen := make(map[string]bool)
	var candidates [][]byte
	for k := 0; k < b.p.Reps; k++ {
		for y := 0; y < b.p.T; y++ {
			item := make([]byte, b.p.ItemBytes)
			mass := 0.0
			for m := 0; m < b.bits; m++ {
				e0 := b.direct[k][m].Estimate(uint64(y) << 1)
				e1 := b.direct[k][m].Estimate(uint64(y)<<1 | 1)
				if e1 > e0 {
					item[m/8] |= 1 << uint(7-m%8)
					mass += e1
				} else {
					mass += e0
				}
			}
			// Skip cells with no plausible mass at all (sum of per-bit
			// estimates below a loose noise floor) to keep the candidate
			// set near O(T) genuinely-supported cells.
			if mass <= 0 {
				continue
			}
			// The candidate must hash back to its cell; anything else was
			// assembled from pure noise.
			if b.hs[k].Range(b.fold.Fold(item), b.p.T) != y {
				continue
			}
			if !seen[string(item)] {
				seen[string(item)] = true
				candidates = append(candidates, item)
			}
		}
	}
	b.conf.Finalize()
	out := make([]Estimate, 0, len(candidates))
	for _, it := range candidates {
		c := b.conf.Estimate(it)
		if c >= minCount {
			out = append(out, Estimate{Item: it, Count: c})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return string(out[i].Item) < string(out[j].Item)
	})
	return out, nil
}

// MinRecoverableFrequency mirrors core.Params.MinRecoverableFrequency for
// the baseline: each (rep, bit) group holds n/(Reps·bits) users, so
//
//	f* ≈ 4·CEps(ε/2)·sqrt(n·bits·Reps)
//
// — the extra sqrt(Reps) = sqrt(log(1/β)) versus PrivateExpanderSketch is
// exactly the sub-optimality of Theorem 3.3 item 2.
func (b *Bitstogram) MinRecoverableFrequency() float64 {
	e := math.Exp(b.p.Eps / 2)
	ceps := (e + 1) / (e - 1)
	return 4 * ceps * math.Sqrt(float64(b.p.N)*float64(b.bits)*float64(b.p.Reps))
}

// EstimateFrequency exposes the confirmation oracle after Identify.
func (b *Bitstogram) EstimateFrequency(x []byte) float64 { return b.conf.Estimate(x) }

// SketchBytes returns resident server memory.
func (b *Bitstogram) SketchBytes() int {
	parts := []sketchSized{b.conf}
	for k := range b.direct {
		for m := range b.direct[k] {
			parts = append(parts, b.direct[k][m])
		}
	}
	return totalSketchBytes(parts...)
}

// BytesPerReport returns the payload size of one user message.
func (b *Bitstogram) BytesPerReport() int { return bitstogramPayloadBytes }
