package baseline

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"ldphh/internal/freqoracle"
	"ldphh/internal/hashing"
)

// TreeHist is the prefix-tree heavy-hitters protocol of Bassily, Nissim,
// Stemmer and Thakurta (NIPS 2017) — the companion to Bitstogram in
// reference [3]. Users are partitioned across the L = 8·ItemBytes bit
// levels of the domain's prefix tree; a user at level ℓ reports its item's
// (ℓ+1)-bit prefix into that level's Hashtogram. The server walks the tree
// top-down, extending surviving prefixes one bit at a time and pruning by
// estimated frequency, then confirms the full-length survivors.
//
// Its error carries the same sqrt(n·L) population-splitting factor as
// Bitstogram but avoids repetitions; like Bitstogram, and unlike
// PrivateExpanderSketch, driving the failure probability β down requires
// retuning thresholds by sqrt(log(1/β)).
type TreeHist struct {
	reportTally
	p        TreeHistParams
	levels   int
	partHash hashing.KWise
	oracles  []*freqoracle.Hashtogram
	conf     *freqoracle.Hashtogram
	levelN   []int
}

// TreeHistParams configures TreeHist.
type TreeHistParams struct {
	Eps       float64
	N         int
	ItemBytes int
	Cap       int     // max surviving prefixes per level; 0 derives ~4·sqrt(n)
	TauFactor float64 // pruning threshold in per-level noise deviations (default 3)
	Seed      uint64
}

func (p *TreeHistParams) setDefaults() error {
	if p.Eps <= 0 {
		return fmt.Errorf("baseline: Eps must be positive")
	}
	if p.N <= 0 {
		return fmt.Errorf("baseline: N must be positive")
	}
	if p.ItemBytes < 1 || p.ItemBytes > 64 {
		return fmt.Errorf("baseline: ItemBytes must be in [1,64]")
	}
	if p.Cap == 0 {
		p.Cap = 4 * int(math.Sqrt(float64(p.N)))
	}
	if p.Cap < 2 {
		return fmt.Errorf("baseline: Cap must be >= 2")
	}
	if p.TauFactor == 0 {
		p.TauFactor = 3
	}
	if p.TauFactor <= 0 {
		return fmt.Errorf("baseline: TauFactor must be positive")
	}
	return nil
}

// TreeHistReport is one user's message.
type TreeHistReport struct {
	Level int
	Pref  freqoracle.HashtogramReport
	Conf  freqoracle.HashtogramReport
}

// NewTreeHist constructs the protocol.
func NewTreeHist(params TreeHistParams) (*TreeHist, error) {
	if err := params.setDefaults(); err != nil {
		return nil, err
	}
	rng := hashing.Seeded(params.Seed, 0x54726565)
	levels := 8 * params.ItemBytes
	t := &TreeHist{
		p:        params,
		levels:   levels,
		partHash: hashing.NewKWise(2, rng),
		oracles:  make([]*freqoracle.Hashtogram, levels),
		levelN:   make([]int, levels),
	}
	var err error
	for l := 0; l < levels; l++ {
		t.oracles[l], err = freqoracle.NewHashtogram(freqoracle.HashtogramParams{
			Eps: params.Eps / 2,
			N:   params.N/levels + 1,
			// Few rows: each level answers only ~2·Cap queries, and the
			// sketch-row factor sqrt(Rows) multiplies the level noise after
			// population rescaling, so depth is expensive here.
			Rows: 8,
			Seed: rng.Uint64(),
		})
		if err != nil {
			return nil, err
		}
	}
	t.conf, err = freqoracle.NewHashtogram(freqoracle.HashtogramParams{
		Eps:  params.Eps / 2,
		N:    params.N,
		Seed: rng.Uint64(),
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Params returns the defaulted parameters.
func (t *TreeHist) Params() TreeHistParams { return t.p }

// Level returns user userIdx's level assignment (public).
func (t *TreeHist) Level(userIdx int) int {
	return t.partHash.Range(uint64(userIdx), t.levels)
}

// prefixKey canonically encodes the first `bits` bits of x for oracle
// queries: the level byte followed by the prefix bytes with the unused low
// bits of the last byte zeroed.
func prefixKey(x []byte, bits int) []byte {
	nBytes := (bits + 7) / 8
	key := make([]byte, 1+nBytes)
	key[0] = byte(bits)
	copy(key[1:], x[:nBytes])
	if rem := bits % 8; rem != 0 {
		key[nBytes] &= byte(0xff << uint(8-rem))
	}
	return key
}

// Report runs user userIdx's client computation for item x.
func (t *TreeHist) Report(x []byte, userIdx int, rng *rand.Rand) (TreeHistReport, error) {
	if len(x) != t.p.ItemBytes {
		return TreeHistReport{}, fmt.Errorf("baseline: item length %d, want %d", len(x), t.p.ItemBytes)
	}
	level := t.Level(userIdx)
	return TreeHistReport{
		Level: level,
		Pref:  t.oracles[level].Report(prefixKey(x, level+1), userIdx, rng),
		Conf:  t.conf.Report(x, userIdx, rng),
	}, nil
}

// Absorb folds one report into the server state.
func (t *TreeHist) Absorb(rep TreeHistReport) error {
	if rep.Level < 0 || rep.Level >= t.levels {
		return fmt.Errorf("baseline: report level %d out of range", rep.Level)
	}
	if err := t.oracles[rep.Level].Absorb(rep.Pref); err != nil {
		return err
	}
	if err := t.conf.Absorb(rep.Conf); err != nil {
		return err
	}
	t.levelN[rep.Level]++
	t.absorbed++
	return nil
}

// threshold is the per-level pruning bound, extrapolated to population
// counts: TauFactor deviations of the level oracle's noise times the
// level-splitting factor L.
func (t *TreeHist) threshold(level int) float64 {
	nl := float64(t.levelN[level])
	if nl < 1 {
		nl = 1
	}
	e := math.Exp(t.p.Eps / 2)
	ceps := (e + 1) / (e - 1)
	rows := float64(t.oracles[level].Params().Rows)
	scale := float64(t.p.N) / nl
	return t.p.TauFactor * scale * ceps * math.Sqrt(nl*rows)
}

// Identify walks the prefix tree and returns confirmed estimates sorted by
// decreasing count.
func (t *TreeHist) Identify() ([]Estimate, error) {
	for _, o := range t.oracles {
		o.Finalize()
	}
	// Walk levels: candidates hold byte-packed prefixes.
	type cand struct{ bytes []byte }
	candidates := []cand{{bytes: make([]byte, t.p.ItemBytes)}} // root: empty prefix
	for level := 0; level < t.levels; level++ {
		o := t.oracles[level]
		nl := t.levelN[level]
		scale := 1.0
		if nl > 0 {
			scale = float64(t.p.N) / float64(nl)
		}
		tau := t.threshold(level)
		type scored struct {
			c   cand
			est float64
		}
		var next []scored
		bits := level + 1
		for _, c := range candidates {
			for _, bit := range []byte{0, 1} {
				child := append([]byte(nil), c.bytes...)
				if bit == 1 {
					child[level/8] |= 1 << uint(7-level%8)
				}
				est := scale * o.Estimate(prefixKey(child, bits))
				if est >= tau {
					next = append(next, scored{c: cand{bytes: child}, est: est})
				}
			}
		}
		sort.Slice(next, func(i, j int) bool { return next[i].est > next[j].est })
		if len(next) > t.p.Cap {
			next = next[:t.p.Cap]
		}
		candidates = candidates[:0]
		for _, s := range next {
			candidates = append(candidates, s.c)
		}
		if len(candidates) == 0 {
			break
		}
	}
	t.conf.Finalize()
	out := make([]Estimate, 0, len(candidates))
	for _, c := range candidates {
		out = append(out, Estimate{Item: c.bytes, Count: t.conf.Estimate(c.bytes)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return string(out[i].Item) < string(out[j].Item)
	})
	return out, nil
}

// MinRecoverableFrequency mirrors the other protocols' floor: the
// population-split threshold at the deepest level.
func (t *TreeHist) MinRecoverableFrequency() float64 {
	e := math.Exp(t.p.Eps / 2)
	ceps := (e + 1) / (e - 1)
	// Per level: n/L users on an 8-row sketch; extrapolated by L:
	// TauFactor·ceps·sqrt(n·L·8).
	return t.p.TauFactor * ceps * math.Sqrt(float64(t.p.N)*float64(t.levels)*8)
}

// EstimateFrequency exposes the confirmation oracle after Identify.
func (t *TreeHist) EstimateFrequency(x []byte) float64 { return t.conf.Estimate(x) }

// SketchBytes returns resident server memory.
func (t *TreeHist) SketchBytes() int {
	parts := []sketchSized{t.conf}
	for _, o := range t.oracles {
		parts = append(parts, o)
	}
	return totalSketchBytes(parts...)
}

// BytesPerReport returns the payload size of one user message.
func (t *TreeHist) BytesPerReport() int { return treeHistPayloadBytes }
