package composition

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestConstruction(t *testing.T) {
	m, err := New(64, 0.05, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := m.Shell()
	center := 64 / (math.Exp(0.05) + 1)
	if float64(lo) > center || float64(hi) < center {
		t.Errorf("shell [%d,%d] does not cover the center %.1f", lo, hi, center)
	}
	if m.K() != 64 {
		t.Error("K wrong")
	}
	if _, err := New(0, 0.1, 0.1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := New(8, 0, 0.1); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := New(8, 0.1, 0); err == nil {
		t.Error("beta=0 accepted")
	}
}

func TestMissMassAtMostBeta(t *testing.T) {
	// The shell is built by Hoeffding to capture 1-β of M(x)'s mass.
	for _, cfg := range []struct {
		k    int
		eps  float64
		beta float64
	}{{32, 0.05, 0.05}, {64, 0.1, 0.01}, {256, 0.02, 0.001}, {1024, 0.01, 0.05}} {
		m, err := New(cfg.k, cfg.eps, cfg.beta)
		if err != nil {
			t.Fatal(err)
		}
		if miss := m.MissMass(); miss > cfg.beta {
			t.Errorf("k=%d: miss mass %.5f exceeds beta %.3f", cfg.k, miss, cfg.beta)
		}
	}
}

func TestExactTVWithinBeta(t *testing.T) {
	// Theorem 5.1 item 2: conditioned on an event of probability 1-β the
	// outputs agree, so TV(M̃(x), M(x)) <= β; the exact TV is far smaller.
	m, err := New(128, 0.05, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if tv := m.ExactTV(); tv > 0.02 {
		t.Errorf("exact TV %.5f exceeds beta", tv)
	}
}

func TestPrivacyRatioAgainstTheorem(t *testing.T) {
	// Exact worst-case log-ratio must be at most ε̃ = 6ε·sqrt(k·ln(2/β))
	// whenever the theorem's preconditions hold.
	for _, cfg := range []struct {
		k    int
		eps  float64
		beta float64
	}{{64, 0.008, 0.004}, {128, 0.005, 0.002}, {256, 0.004, 0.002}, {1024, 0.002, 0.01}} {
		m, err := New(cfg.k, cfg.eps, cfg.beta)
		if err != nil {
			t.Fatal(err)
		}
		tilde := m.TildeEpsilon()
		got := m.MaxRatioExhaustive()
		if got > tilde {
			t.Errorf("k=%d eps=%v beta=%v: exact log-ratio %.4f exceeds ε̃=%.4f",
				cfg.k, cfg.eps, cfg.beta, got, tilde)
		}
		// The advantage over basic composition ε̃ < kε needs
		// k > 36·ln(2/β); assert it where it applies.
		if float64(cfg.k) > 36*math.Log(2/cfg.beta) && tilde >= m.BasicCompositionEpsilon() {
			t.Errorf("k=%d: ε̃=%.3f not beating basic composition %.3f",
				cfg.k, tilde, m.BasicCompositionEpsilon())
		}
	}
}

func TestLogProbNormalization(t *testing.T) {
	// Σ_y Pr[M̃(x)=y] = Σ_d C(k,d)·Pr[dist d] must equal 1.
	m, err := New(48, 0.06, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for d := 0; d <= 48; d++ {
		total += math.Exp(m.logChoose[d] + m.LogProb(d))
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("M̃ pmf sums to %.9f", total)
	}
	totalM := 0.0
	for d := 0; d <= 48; d++ {
		totalM += math.Exp(m.logChoose[d] + m.LogProbM(d))
	}
	if math.Abs(totalM-1) > 1e-9 {
		t.Fatalf("M pmf sums to %.9f", totalM)
	}
}

func TestSamplerMatchesExactLaw(t *testing.T) {
	// Empirical distance-class frequencies of Sample must match the exact
	// pmf over distance classes.
	const k = 24
	m, err := New(k, 0.1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(7, 8))
	x := []uint64{0x0f0f0f} // arbitrary k-bit input
	const trials = 60000
	counts := make([]int, k+1)
	for i := 0; i < trials; i++ {
		y := m.Sample(x, rng)
		counts[hamming(x, y)]++
	}
	for d := 0; d <= k; d++ {
		want := math.Exp(m.logChoose[d] + m.LogProb(d))
		got := float64(counts[d]) / trials
		tol := 6*math.Sqrt(want*(1-want)/trials) + 0.003
		if math.Abs(got-want) > tol {
			t.Errorf("distance %d: empirical %.4f, exact %.4f", d, got, want)
		}
	}
}

func TestSampleMMatchesBinomial(t *testing.T) {
	const k = 16
	m, err := New(k, 0.2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(9, 10))
	x := []uint64{0}
	const trials = 40000
	counts := make([]int, k+1)
	for i := 0; i < trials; i++ {
		counts[hamming(x, m.SampleM(x, rng))]++
	}
	for d := 0; d <= k; d++ {
		want := math.Exp(m.logChoose[d] + m.LogProbM(d))
		got := float64(counts[d]) / trials
		if math.Abs(got-want) > 6*math.Sqrt(want*(1-want)/trials)+0.004 {
			t.Errorf("distance %d: empirical %.4f, binomial %.4f", d, got, want)
		}
	}
}

func TestSampleRejectsWrongWidth(t *testing.T) {
	m, err := New(100, 0.05, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("wrong word count accepted")
		}
	}()
	m.Sample([]uint64{0}, rand.New(rand.NewPCG(1, 1))) // needs 2 words
}

func hamming(a, b []uint64) int {
	d := 0
	for i := range a {
		x := a[i] ^ b[i]
		for x != 0 {
			d++
			x &= x - 1
		}
	}
	return d
}

func BenchmarkSampleK1024(b *testing.B) {
	m, err := New(1024, 0.01, 0.05)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 1))
	x := make([]uint64, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Sample(x, rng)
	}
}
