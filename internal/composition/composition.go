// Package composition implements Section 5 of the paper (Theorem 5.1): the
// algorithm M̃ that is pure ε̃-LDP with ε̃ = 6ε·sqrt(k·ln(2/β)), yet is
// β-close in statistical distance to the k-fold composition
// M(x) = (M_1(x), ..., M_k(x)) of ε-randomized response.
//
// Construction: a "good" Hamming shell around the input,
//
//	G_x = { y : dH(x,y) ∈ k/(e^ε+1) ± sqrt(k·ln(2/β)/2) },
//
// captures all but β of M(x)'s mass; M̃ samples y ← M(x), returns it if
// y ∈ G_x, and otherwise returns a uniform sample from the complement of
// G_x. Because the output distribution depends on y only through the
// Hamming distance dH(x, y), all probabilities are computable in closed
// form, which the tests exploit to verify the privacy bound exactly.
package composition

import (
	"fmt"
	"math"
	"math/rand/v2"

	"ldphh/internal/dist"
)

// MTilde is the Theorem 5.1 algorithm for a fixed (k, ε, β).
type MTilde struct {
	k    int
	eps  float64
	beta float64
	p    float64 // per-bit flip probability 1/(e^ε+1)
	lo   int     // smallest distance inside the good shell
	hi   int     // largest distance inside the good shell

	logChoose []float64 // log C(k, d)
	// complement sampling: distance classes outside [lo, hi] weighted by
	// C(k, d) (uniform over the complement set).
	compDists   []int
	compSampler *dist.Alias
	logCompSize float64 // log(Σ_{d∉[lo,hi]} C(k,d))
	missMass    float64 // Pr[M(x) ∉ G_x], cached
	logUniform  float64 // log(missMass) - logCompSize, cached
}

// New constructs M̃. Requires k >= 1, eps > 0, beta in (0,1), and a
// non-degenerate complement (the shell must not swallow all of {0,1}^k).
func New(k int, eps, beta float64) (*MTilde, error) {
	if k < 1 {
		return nil, fmt.Errorf("composition: k must be >= 1, got %d", k)
	}
	if eps <= 0 {
		return nil, fmt.Errorf("composition: eps must be positive, got %v", eps)
	}
	if beta <= 0 || beta >= 1 {
		return nil, fmt.Errorf("composition: beta must be in (0,1), got %v", beta)
	}
	center := float64(k) / (math.Exp(eps) + 1)
	halfWidth := math.Sqrt(float64(k) * math.Log(2/beta) / 2)
	lo := int(math.Ceil(center - halfWidth))
	hi := int(math.Floor(center + halfWidth))
	if lo < 0 {
		lo = 0
	}
	if hi > k {
		hi = k
	}
	if lo > hi {
		// Empty shell: every y is "bad" and M̃ would be uniform; reject as a
		// degenerate parameterization.
		return nil, fmt.Errorf("composition: empty good shell for k=%d eps=%v beta=%v", k, eps, beta)
	}
	m := &MTilde{
		k:    k,
		eps:  eps,
		beta: beta,
		p:    1 / (math.Exp(eps) + 1),
		lo:   lo,
		hi:   hi,
	}
	m.logChoose = make([]float64, k+1)
	for d := 0; d <= k; d++ {
		m.logChoose[d] = lgamma(float64(k)+1) - lgamma(float64(d)+1) - lgamma(float64(k-d)+1)
	}
	// Complement distance classes and their log-sum-exp normalizer.
	var dists []int
	var logWeights []float64
	for d := 0; d <= k; d++ {
		if d < lo || d > hi {
			dists = append(dists, d)
			logWeights = append(logWeights, m.logChoose[d])
		}
	}
	if len(dists) == 0 {
		return nil, fmt.Errorf("composition: good shell covers all of {0,1}^%d; no complement to sample", k)
	}
	maxLW := math.Inf(-1)
	for _, lw := range logWeights {
		if lw > maxLW {
			maxLW = lw
		}
	}
	weights := make([]float64, len(logWeights))
	sum := 0.0
	for i, lw := range logWeights {
		weights[i] = math.Exp(lw - maxLW)
		sum += weights[i]
	}
	m.compDists = dists
	m.compSampler = dist.NewAlias(weights)
	m.logCompSize = maxLW + math.Log(sum)
	inside := 0.0
	for d := m.lo; d <= m.hi; d++ {
		inside += math.Exp(m.logChoose[d] + m.LogProbM(d))
	}
	if inside > 1 {
		inside = 1
	}
	m.missMass = 1 - inside
	m.logUniform = math.Log(m.missMass) - m.logCompSize
	return m, nil
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// K returns the number of composed randomized responses.
func (m *MTilde) K() int { return m.k }

// Shell returns the inclusive Hamming-distance window [lo, hi] of the good
// set G_x.
func (m *MTilde) Shell() (lo, hi int) { return m.lo, m.hi }

// TildeEpsilon returns the Theorem 5.1 privacy parameter
// ε̃ = 6ε·sqrt(k·ln(2/β)).
func (m *MTilde) TildeEpsilon() float64 {
	return 6 * m.eps * math.Sqrt(float64(m.k)*math.Log(2/m.beta))
}

// BasicCompositionEpsilon returns the naive pure-composition parameter k·ε.
func (m *MTilde) BasicCompositionEpsilon() float64 { return float64(m.k) * m.eps }

// Sample runs M̃(x): x is the input packed as k bits in []uint64 words.
// The returned slice has the same packing.
func (m *MTilde) Sample(x []uint64, rng *rand.Rand) []uint64 {
	m.checkWords(x)
	// y <- M(x): flip each bit with probability p.
	y := append([]uint64(nil), x...)
	d := 0
	for pos := 0; pos < m.k; pos++ {
		if rng.Float64() < m.p {
			y[pos/64] ^= 1 << uint(pos%64)
			d++
		}
	}
	if d >= m.lo && d <= m.hi {
		return y
	}
	// Outside the shell: uniform over the complement, sampled by distance
	// class and then uniformly within the class.
	dOut := m.compDists[m.compSampler.Sample(rng)]
	return dist.HammingShell(x, m.k, dOut, rng)
}

// SampleM runs the unmodified composition M(x) (for statistical-distance
// comparisons).
func (m *MTilde) SampleM(x []uint64, rng *rand.Rand) []uint64 {
	m.checkWords(x)
	y := append([]uint64(nil), x...)
	for pos := 0; pos < m.k; pos++ {
		if rng.Float64() < m.p {
			y[pos/64] ^= 1 << uint(pos%64)
		}
	}
	return y
}

func (m *MTilde) checkWords(x []uint64) {
	if len(x) != (m.k+63)/64 {
		panic("composition: input word count mismatch")
	}
}

// LogProbM returns log Pr[M(x) = y] for a y at Hamming distance d from x.
func (m *MTilde) LogProbM(d int) float64 {
	if d < 0 || d > m.k {
		return math.Inf(-1)
	}
	return float64(d)*math.Log(m.p) + float64(m.k-d)*math.Log1p(-m.p)
}

// LogProb returns log Pr[M̃(x) = y] for a y at Hamming distance d from x.
// Inside the shell this equals LogProbM(d); outside it is
// log(Pr[M(x) ∉ G_x] / |complement|).
func (m *MTilde) LogProb(d int) float64 {
	if d < 0 || d > m.k {
		return math.Inf(-1)
	}
	if d >= m.lo && d <= m.hi {
		return m.LogProbM(d)
	}
	return m.logUniform
}

// MissMass returns Pr[M(x) ∉ G_x] exactly (it is at most β by Hoeffding).
func (m *MTilde) MissMass() float64 { return m.missMass }

// ExactTV returns the exact statistical distance between M̃(x) and M(x)
// (independent of x by symmetry): the two differ only on the complement of
// the shell.
func (m *MTilde) ExactTV() float64 {
	tv := 0.0
	logUnif := m.logUniform
	for _, d := range m.compDists {
		perY := math.Abs(math.Exp(m.LogProbM(d)) - math.Exp(logUnif))
		tv += math.Exp(m.logChoose[d]) * perY
	}
	return tv / 2
}

// MaxRatioExhaustive computes the exact worst-case privacy ratio
// max_{x,x',y} Pr[M̃(x)=y]/Pr[M̃(x')=y] by exhausting all (dH(x,y), dH(x',y))
// pairs consistent with some triple — for every pair of distances
// (a, b) with |a-b| <= dH(x,x') <= a+b there exist witnesses, and the
// probability depends only on the distances, so scanning all (a, b) in
// [0,k]² is exact. Returns the log-ratio.
func (m *MTilde) MaxRatioExhaustive() float64 {
	worst := math.Inf(-1)
	for a := 0; a <= m.k; a++ {
		la := m.LogProb(a)
		for b := 0; b <= m.k; b++ {
			// A triple (x, x', y) with dH(x,y)=a, dH(x',y)=b exists iff
			// a+b <= 2k - |a-b| ... in fact any a, b in [0,k] with
			// a ≡ b (mod 1) trivially admits witnesses when a+b <= 2k and
			// |a-b| <= k; both always hold. Parity imposes no constraint
			// because dH(x,x') is free.
			if r := la - m.LogProb(b); r > worst {
				worst = r
			}
		}
	}
	return worst
}
