// Package expander constructs d-regular spectral expanders on M vertices.
//
// Following footnote 7 of the paper, the construction is Las Vegas: sample a
// random d-regular graph (union of d/2 random Hamiltonian-cycle 2-factors),
// verify the spectral gap with power iteration, and retry on failure. A
// random d-regular graph is an expander with high probability, and spectral
// expansion is efficiently certifiable, so the expected number of retries is
// O(1). For M <= d+1 the complete graph K_M is returned (the optimal
// expander at that size, with second eigenvalue 1).
package expander

import (
	"fmt"
	"math"
	"math/rand/v2"

	"ldphh/internal/graph"
)

// Expander is a d-regular graph on M vertices with a certified bound on the
// second-largest adjacency eigenvalue magnitude.
type Expander struct {
	m, d    int
	nbrs    [][]int // exactly d entries per vertex (complete-graph case: M-1)
	lambda  float64 // certified upper bound on |λ2|
	isK     bool    // complete graph fallback
	retries int
}

// New samples a d-regular expander on m vertices with certified second
// eigenvalue at most lambdaMax, retrying up to maxTries times. d must be
// even and >= 2 (2-factor construction); m >= 2. If m <= d+1 the complete
// graph K_m is returned regardless of d.
func New(m, d int, lambdaMax float64, rng *rand.Rand, maxTries int) (*Expander, error) {
	if m < 2 {
		return nil, fmt.Errorf("expander: need m >= 2, got %d", m)
	}
	if m <= d+1 {
		return newComplete(m), nil
	}
	if d < 2 || d%2 != 0 {
		return nil, fmt.Errorf("expander: need even degree >= 2, got %d", d)
	}
	if maxTries <= 0 {
		maxTries = 50
	}
	for try := 0; try < maxTries; try++ {
		nbrs := randomRegular(m, d, rng)
		lam := SecondEigenvalue(nbrs, d, rng)
		if lam <= lambdaMax {
			return &Expander{m: m, d: d, nbrs: nbrs, lambda: lam, retries: try}, nil
		}
	}
	return nil, fmt.Errorf("expander: no (m=%d, d=%d) graph with λ2 <= %.3f found in %d tries",
		m, d, lambdaMax, maxTries)
}

func newComplete(m int) *Expander {
	nbrs := make([][]int, m)
	for u := 0; u < m; u++ {
		for v := 0; v < m; v++ {
			if v != u {
				nbrs[u] = append(nbrs[u], v)
			}
		}
	}
	return &Expander{m: m, d: m - 1, nbrs: nbrs, lambda: 1, isK: true}
}

// randomRegular returns a d-regular multigraph on m vertices as the union of
// d/2 uniformly random Hamiltonian cycles (a standard contiguous-regular
// model; may contain parallel edges, which the spectral certificate absorbs).
func randomRegular(m, d int, rng *rand.Rand) [][]int {
	nbrs := make([][]int, m)
	for f := 0; f < d/2; f++ {
		perm := rng.Perm(m)
		for i := 0; i < m; i++ {
			u := perm[i]
			v := perm[(i+1)%m]
			nbrs[u] = append(nbrs[u], v)
			nbrs[v] = append(nbrs[v], u)
		}
	}
	return nbrs
}

// M returns the number of vertices.
func (e *Expander) M() int { return e.m }

// D returns the degree of every vertex.
func (e *Expander) D() int { return e.d }

// Lambda returns the certified upper bound on the second adjacency
// eigenvalue magnitude.
func (e *Expander) Lambda() float64 { return e.lambda }

// Retries reports how many candidate graphs were rejected before
// certification succeeded.
func (e *Expander) Retries() int { return e.retries }

// Neighbors returns the d neighbors of vertex u (shared storage).
func (e *Expander) Neighbors(u int) []int { return e.nbrs[u] }

// Neighbor returns the k-th neighbor Γ(u)_k.
func (e *Expander) Neighbor(u, k int) int { return e.nbrs[u][k] }

// Graph materializes the expander as a graph.Graph.
func (e *Expander) Graph() *graph.Graph {
	g := graph.New(e.m)
	for u, ns := range e.nbrs {
		for _, v := range ns {
			if u < v {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// SecondEigenvalue estimates (from above, with iteration slack) the second
// largest adjacency eigenvalue magnitude of a d-regular graph given by
// adjacency lists, by power iteration on A restricted to the complement of
// the all-ones vector. The returned value overestimates the truth by at most
// ~2% at the default iteration count, which is the safe direction for
// certification.
func SecondEigenvalue(nbrs [][]int, d int, rng *rand.Rand) float64 {
	m := len(nbrs)
	v := make([]float64, m)
	for i := range v {
		v[i] = rng.Float64()*2 - 1
	}
	tmp := make([]float64, m)
	deflate := func(x []float64) {
		mean := 0.0
		for _, xi := range x {
			mean += xi
		}
		mean /= float64(m)
		for i := range x {
			x[i] -= mean
		}
	}
	norm := func(x []float64) float64 {
		s := 0.0
		for _, xi := range x {
			s += xi * xi
		}
		return math.Sqrt(s)
	}
	deflate(v)
	n0 := norm(v)
	if n0 == 0 {
		return 0
	}
	for i := range v {
		v[i] /= n0
	}
	const iters = 120
	lam := 0.0
	for it := 0; it < iters; it++ {
		for i := range tmp {
			tmp[i] = 0
		}
		for u, ns := range nbrs {
			xu := v[u]
			for _, w := range ns {
				tmp[w] += xu
			}
		}
		deflate(tmp)
		lam = norm(tmp)
		if lam == 0 {
			return 0
		}
		for i := range v {
			v[i] = tmp[i] / lam
		}
	}
	// Power iteration converges from below on |λ2|; pad by the slack of the
	// final Rayleigh step so the certificate errs safe. The padding also
	// covers the |λ_min| < λ2 case because we track vector norms (magnitude).
	return math.Min(lam*1.02, float64(d))
}
