package expander

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestCompleteGraphFallback(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	e, err := New(5, 8, 0.9, rng, 10) // m <= d+1 → K_5
	if err != nil {
		t.Fatal(err)
	}
	if e.M() != 5 || e.D() != 4 {
		t.Fatalf("K_5 has m=%d d=%d", e.M(), e.D())
	}
	if e.Lambda() != 1 {
		t.Errorf("K_5 lambda = %f, want 1", e.Lambda())
	}
	for u := 0; u < 5; u++ {
		if len(e.Neighbors(u)) != 4 {
			t.Fatalf("vertex %d has %d neighbors", u, len(e.Neighbors(u)))
		}
		for _, v := range e.Neighbors(u) {
			if v == u {
				t.Fatal("self neighbor in complete graph")
			}
		}
	}
}

func TestRandomRegularProperties(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	for _, cfg := range []struct{ m, d int }{{16, 4}, {32, 6}, {64, 8}, {17, 4}} {
		e, err := New(cfg.m, cfg.d, 0.95*float64(cfg.d), rng, 100)
		if err != nil {
			t.Fatalf("m=%d d=%d: %v", cfg.m, cfg.d, err)
		}
		// Regularity.
		for u := 0; u < cfg.m; u++ {
			if len(e.Neighbors(u)) != cfg.d {
				t.Fatalf("m=%d d=%d: vertex %d degree %d", cfg.m, cfg.d, u, len(e.Neighbors(u)))
			}
		}
		// Symmetry: u appears in each neighbor's list as many times as the
		// neighbor appears in u's.
		count := func(list []int, x int) int {
			c := 0
			for _, v := range list {
				if v == x {
					c++
				}
			}
			return c
		}
		for u := 0; u < cfg.m; u++ {
			for _, v := range e.Neighbors(u) {
				if count(e.Neighbors(v), u) != count(e.Neighbors(u), v) {
					t.Fatalf("asymmetric adjacency between %d and %d", u, v)
				}
			}
		}
		// Connectivity (union of Hamiltonian cycles is connected by design,
		// but verify via the Graph view).
		if comps := e.Graph().Components(nil); len(comps) != 1 {
			t.Fatalf("m=%d d=%d: %d components", cfg.m, cfg.d, len(comps))
		}
	}
}

func TestSpectralGapCertificate(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	e, err := New(64, 8, 0.85*8, rng, 100)
	if err != nil {
		t.Fatal(err)
	}
	if e.Lambda() > 0.85*8 {
		t.Fatalf("certified lambda %f exceeds requested bound", e.Lambda())
	}
	// Ramanujan-quality graphs have λ2 >= 2*sqrt(d-1) - o(1); the estimate
	// must not be absurdly small either.
	if e.Lambda() < math.Sqrt(float64(e.D()))-1 {
		t.Fatalf("lambda %f suspiciously small", e.Lambda())
	}
}

func TestSecondEigenvalueKnownGraphs(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	// Complete graph K_8: adjacency eigenvalues are 7 and -1 → |λ2| = 1.
	nbrs := make([][]int, 8)
	for u := 0; u < 8; u++ {
		for v := 0; v < 8; v++ {
			if v != u {
				nbrs[u] = append(nbrs[u], v)
			}
		}
	}
	lam := SecondEigenvalue(nbrs, 7, rng)
	if lam < 0.9 || lam > 1.2 {
		t.Fatalf("K_8 λ2 estimate = %f, want ~1", lam)
	}
	// Cycle C_8: eigenvalues 2cos(2πk/8) → |λ2| = sqrt(2) ≈ 1.414... but the
	// second largest in magnitude is 2cos(π) = -2? No: C_8 eigenvalues are
	// 2cos(2πk/8), k=0..7 → {2, √2, 0, -√2, -2}. |λ2| = 2 (bipartite).
	cyc := make([][]int, 8)
	for u := 0; u < 8; u++ {
		cyc[u] = []int{(u + 1) % 8, (u + 7) % 8}
	}
	lam = SecondEigenvalue(cyc, 2, rng)
	if lam < 1.85 || lam > 2.05 {
		t.Fatalf("C_8 λ estimate = %f, want ~2 (bipartite)", lam)
	}
}

func TestNewValidation(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	if _, err := New(1, 4, 0.9, rng, 10); err == nil {
		t.Error("m=1 accepted")
	}
	if _, err := New(16, 3, 0.9, rng, 10); err == nil {
		t.Error("odd degree accepted")
	}
	if _, err := New(16, 0, 0.9, rng, 10); err == nil {
		t.Error("zero degree accepted")
	}
	// Impossible spectral demand must fail loudly, not loop forever.
	if _, err := New(64, 4, 0.1, rng, 5); err == nil {
		t.Error("impossible lambda accepted")
	}
}

func TestDeterminismGivenSeed(t *testing.T) {
	e1, err := New(32, 6, 0.9*6, rand.New(rand.NewPCG(7, 7)), 50)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := New(32, 6, 0.9*6, rand.New(rand.NewPCG(7, 7)), 50)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 32; u++ {
		for k := 0; k < 6; k++ {
			if e1.Neighbor(u, k) != e2.Neighbor(u, k) {
				t.Fatal("expander not deterministic for fixed seed")
			}
		}
	}
}
