// Package hashing provides the hash families the protocols rely on:
//
//   - KWise: k-wise independent functions [0,2^64) -> GF(p), realized as
//     random degree-(k-1) polynomials over GF(2^61-1). With k = 2 this is the
//     pairwise independent family used for the per-coordinate hashes
//     h_1..h_M of PrivateExpanderSketch; the super-bucket hash g uses
//     k = Θ(log|X|) as required by events E1/E2 of the paper.
//   - Sign: pairwise independent ±1 hashes for count-sketch rows.
//   - Fingerprinter: a polynomial byte-string hash over GF(p) that folds
//     arbitrary-length items into uint64 keys, so protocols can hash raw
//     user items ([]byte) without assuming a numeric domain.
//
// All families are deterministic given their seed, which makes them usable
// as the protocols' *public randomness*: the server draws the seed once and
// ships it to every user.
package hashing

import (
	"math/rand/v2"

	"ldphh/internal/field"
)

// KWise is a k-wise independent hash function from uint64 keys to field
// elements. The zero value is not usable; construct with NewKWise.
type KWise struct {
	coeffs []field.Elem
}

// NewKWise draws a fresh function from the k-wise independent family using
// rng. k must be >= 1; k = 2 gives the classic pairwise independent family.
func NewKWise(k int, rng *rand.Rand) KWise {
	if k < 1 {
		panic("hashing: k-wise family needs k >= 1")
	}
	coeffs := make([]field.Elem, k)
	for i := range coeffs {
		coeffs[i] = field.Reduce(rng.Uint64())
	}
	// Ensure the leading coefficient is nonzero so the polynomial has true
	// degree k-1; this keeps the family's standard independence proof intact
	// and costs only a negligible bias in seed selection.
	for coeffs[k-1] == 0 {
		coeffs[k-1] = field.Reduce(rng.Uint64())
	}
	return KWise{coeffs: coeffs}
}

// K reports the independence parameter of the family this function was drawn
// from.
func (h KWise) K() int { return len(h.coeffs) }

// Eval returns the hash of key as a field element in [0, 2^61-1).
func (h KWise) Eval(key uint64) uint64 {
	return field.EvalPoly(h.coeffs, field.Reduce(key))
}

// Range returns the hash of key mapped onto [0, m). m must be > 0.
//
// The map is Eval(key) mod m; for m << p the distortion from non-divisibility
// is at most m/p < 2^-40 per bucket, far below every probability the
// protocols care about.
func (h KWise) Range(key uint64, m int) int {
	if m <= 0 {
		panic("hashing: Range needs m > 0")
	}
	return int(h.Eval(key) % uint64(m))
}

// Sign is a pairwise independent hash from uint64 keys to {-1,+1},
// used for count-sketch style unbiasing.
type Sign struct {
	h KWise
}

// NewSign draws a fresh ±1 hash using rng.
func NewSign(rng *rand.Rand) Sign {
	return Sign{h: NewKWise(2, rng)}
}

// Eval returns -1 or +1 for key.
func (s Sign) Eval(key uint64) int {
	if s.h.Eval(key)&1 == 0 {
		return 1
	}
	return -1
}

// Fingerprinter folds byte strings into uint64 keys via a random polynomial
// evaluation over GF(2^61-1): fp(b) = sum b_i * r^i + len * r^len. Two
// distinct strings of length <= L collide with probability <= (L+1)/p.
type Fingerprinter struct {
	r field.Elem
}

// NewFingerprinter draws a fresh fingerprint function using rng.
func NewFingerprinter(rng *rand.Rand) Fingerprinter {
	r := field.Reduce(rng.Uint64())
	for r == 0 {
		r = field.Reduce(rng.Uint64())
	}
	return Fingerprinter{r: r}
}

// Fold returns the fingerprint of b.
func (f Fingerprinter) Fold(b []byte) uint64 {
	acc := field.Elem(0)
	for _, c := range b {
		acc = field.Add(field.Mul(acc, f.r), field.Elem(c)+1)
	}
	// Mix in the length so "a" and "a\x00" style extensions differ even
	// under the +1 shift above.
	acc = field.Add(field.Mul(acc, f.r), field.Reduce(uint64(len(b))))
	return acc
}

// Seeded constructs a deterministic PCG generator from two seed words.
// Protocol constructors use this to derive independent sub-generators for
// each piece of public randomness from a single user-supplied seed.
func Seeded(hi, lo uint64) *rand.Rand {
	return rand.New(rand.NewPCG(hi, lo))
}
