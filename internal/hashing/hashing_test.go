package hashing

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestKWiseDeterministic(t *testing.T) {
	h1 := NewKWise(4, Seeded(1, 2))
	h2 := NewKWise(4, Seeded(1, 2))
	for key := uint64(0); key < 1000; key++ {
		if h1.Eval(key) != h2.Eval(key) {
			t.Fatalf("same seed, different hash at key %d", key)
		}
	}
	h3 := NewKWise(4, Seeded(1, 3))
	same := 0
	for key := uint64(0); key < 1000; key++ {
		if h1.Eval(key) == h3.Eval(key) {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("different seeds agree on %d/1000 keys", same)
	}
}

func TestKWiseRejectsBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewKWise(0) did not panic")
		}
	}()
	NewKWise(0, Seeded(1, 1))
}

func TestRangeRejectsBadM(t *testing.T) {
	h := NewKWise(2, Seeded(9, 9))
	defer func() {
		if recover() == nil {
			t.Fatal("Range(m=0) did not panic")
		}
	}()
	h.Range(1, 0)
}

func TestRangeUniformity(t *testing.T) {
	// Chi-square style check: hash 0..N-1 into m buckets, expect near-uniform.
	const m = 16
	const n = 16000
	h := NewKWise(2, Seeded(42, 43))
	counts := make([]int, m)
	for key := uint64(0); key < n; key++ {
		counts[h.Range(key, m)]++
	}
	exp := float64(n) / m
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - exp
		chi2 += d * d / exp
	}
	// 15 degrees of freedom; 99.99th percentile is ~44. Allow generous slack.
	if chi2 > 60 {
		t.Fatalf("chi2 = %.1f, suspiciously non-uniform: %v", chi2, counts)
	}
}

func TestPairwiseIndependenceEmpirical(t *testing.T) {
	// For pairwise family, Pr[h(a)=i and h(b)=j] should be ~1/m^2 across
	// random draws of h, for fixed distinct a, b.
	const m = 4
	const trials = 40000
	joint := make([]int, m*m)
	rng := rand.New(rand.NewPCG(7, 7))
	for i := 0; i < trials; i++ {
		h := NewKWise(2, rng)
		joint[h.Range(11, m)*m+h.Range(22, m)]++
	}
	exp := float64(trials) / (m * m)
	for idx, c := range joint {
		if math.Abs(float64(c)-exp) > 6*math.Sqrt(exp) {
			t.Fatalf("cell %d has count %d, expected ~%.0f", idx, c, exp)
		}
	}
}

func TestSignBalance(t *testing.T) {
	s := NewSign(Seeded(100, 200))
	sum := 0
	const n = 100000
	for key := uint64(0); key < n; key++ {
		v := s.Eval(key)
		if v != 1 && v != -1 {
			t.Fatalf("sign hash returned %d", v)
		}
		sum += v
	}
	if math.Abs(float64(sum)) > 6*math.Sqrt(n) {
		t.Fatalf("sign hash biased: sum=%d over %d keys", sum, n)
	}
}

func TestFingerprinterBasics(t *testing.T) {
	f := NewFingerprinter(Seeded(5, 5))
	if f.Fold([]byte("abc")) != f.Fold([]byte("abc")) {
		t.Fatal("fingerprint not deterministic")
	}
	pairs := [][2]string{
		{"a", "b"},
		{"abc", "abd"},
		{"", "x"},
		{"a", "a\x00"},
		{"aa", "a"},
		{"\x00", ""},
		{"\x00\x00", "\x00"},
	}
	for _, p := range pairs {
		if f.Fold([]byte(p[0])) == f.Fold([]byte(p[1])) {
			t.Errorf("collision between %q and %q", p[0], p[1])
		}
	}
}

func TestFingerprinterCollisionRate(t *testing.T) {
	f := NewFingerprinter(Seeded(77, 78))
	seen := make(map[uint64][]byte)
	rng := rand.New(rand.NewPCG(3, 3))
	for i := 0; i < 50000; i++ {
		b := make([]byte, 1+rng.IntN(16))
		for j := range b {
			b[j] = byte(rng.UintN(256))
		}
		fp := f.Fold(b)
		if prev, ok := seen[fp]; ok && string(prev) != string(b) {
			t.Fatalf("fingerprint collision: %x vs %x", prev, b)
		}
		seen[fp] = append([]byte(nil), b...)
	}
}

func TestKWiseRangeQuick(t *testing.T) {
	h := NewKWise(3, Seeded(8, 8))
	inRange := func(key uint64, mRaw uint16) bool {
		m := int(mRaw%1024) + 1
		v := h.Range(key, m)
		return v >= 0 && v < m
	}
	if err := quick.Check(inRange, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkKWiseEvalPairwise(b *testing.B) {
	h := NewKWise(2, Seeded(1, 1))
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc ^= h.Eval(uint64(i))
	}
	_ = acc
}

func BenchmarkKWiseEvalLogWise(b *testing.B) {
	h := NewKWise(32, Seeded(1, 1))
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc ^= h.Eval(uint64(i))
	}
	_ = acc
}

func BenchmarkFingerprinter16B(b *testing.B) {
	f := NewFingerprinter(Seeded(1, 1))
	buf := []byte("0123456789abcdef")
	b.SetBytes(int64(len(buf)))
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc ^= f.Fold(buf)
	}
	_ = acc
}
