package protocol

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"sort"
	"strings"
	"testing"
	"time"

	"ldphh/internal/core"
	"ldphh/internal/proto"
)

// TestMetricsTextLint enforces Prometheus naming over the full exposition:
// every series ending in `_total` must be TYPE counter and every counter
// must end in `_total` (the lint that caught ldphh_identify_seconds_total
// declared as a gauge), every series carries a HELP line, names are unique
// and namespaced under ldphh_. The render includes the stream series, the
// interactive round series and a taken checkpoint so conditional metrics
// are linted too.
func TestMetricsTextLint(t *testing.T) {
	m := newMetrics("streamhg")
	m.noteCheckpoint(3, time.Now().UnixNano(), 128, 7)
	stream := &proto.StreamStats{Window: 2, Windows: 8, Warmup: true, Evictions: 5}
	round := &proto.RoundState{Round: 1, Rounds: 4, PrefixBits: 8, GroupReports: 9,
		Candidates: [][]byte{{0x10}, {0x20}}}
	var sb strings.Builder
	bw := bufio.NewWriter(&sb)
	m.writeProm(bw, 42, errors.New("listener dead"), stream, round)
	bw.Flush()
	text := sb.String()

	types := map[string]string{}
	helps := map[string]bool{}
	var order []string
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		if len(fields) >= 3 && fields[0] == "#" && fields[1] == "HELP" {
			helps[fields[2]] = true
		}
		if len(fields) == 4 && fields[0] == "#" && fields[1] == "TYPE" {
			name, typ := fields[2], fields[3]
			if _, dup := types[name]; dup {
				t.Errorf("metric %s declared twice", name)
			}
			types[name] = typ
			order = append(order, name)
		}
	}
	if len(types) < 20 {
		t.Fatalf("exposition parsed only %d TYPE lines — render or parser broke:\n%s", len(types), text)
	}
	sort.Strings(order)
	for _, name := range order {
		typ := types[name]
		if !strings.HasPrefix(name, "ldphh_") {
			t.Errorf("metric %s escapes the ldphh_ namespace", name)
		}
		if !helps[name] {
			t.Errorf("metric %s has no HELP line", name)
		}
		if strings.HasSuffix(name, "_total") != (typ == "counter") {
			t.Errorf("metric %s: TYPE %s violates the _total<->counter naming rule", name, typ)
		}
	}
	if typ := types["ldphh_identify_seconds_total"]; typ != "counter" {
		t.Errorf("ldphh_identify_seconds_total is TYPE %q, want counter", typ)
	}
	for _, name := range []string{"ldphh_round", "ldphh_round_candidates", "ldphh_round_group_size"} {
		if typ := types[name]; typ != "gauge" {
			t.Errorf("%s is TYPE %q, want gauge", name, typ)
		}
	}
	if typ := types["ldphh_rounds_advanced_total"]; typ != "counter" {
		t.Errorf("ldphh_rounds_advanced_total is TYPE %q, want counter", typ)
	}
}

// TestHealthzKeysAndPprof pins the /healthz JSON key set — operator probes
// and dashboards parse these names, so adding is fine but renaming or
// dropping is a breaking change — and verifies the pprof handlers are
// reachable on the same sidecar.
func TestHealthzKeysAndPprof(t *testing.T) {
	agg, err := core.NewPESWire(treeParams(64))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewGenericServer(agg, "127.0.0.1:0", WithMetricsAddr("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get("http://" + srv.MetricsAddr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	_, body := get("/healthz")
	var parsed map[string]any
	if err := json.Unmarshal(body, &parsed); err != nil {
		t.Fatalf("/healthz is not valid JSON: %v\n%s", err, body)
	}
	for _, key := range []string{
		"status", "protocol", "uptime_seconds", "absorbed", "resident",
		"checkpoint_seq", "checkpoint_taken", "checkpoint_age_seconds",
		"checkpoint_lag_reports", "last_checkpoint_error", "listener_error",
	} {
		if _, ok := parsed[key]; !ok {
			t.Errorf("/healthz dropped stable key %q: %s", key, body)
		}
	}

	// The profiling endpoints ride the metrics sidecar; /cmdline and the
	// index are cheap to hit (unlike /profile, which samples for seconds).
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline"} {
		if code, body := get(path); code != http.StatusOK {
			t.Errorf("GET %s = %d: %s", path, code, body)
		}
	}
}
