package protocol

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"net"
	"sync"
	"testing"
	"time"

	"ldphh/internal/baseline"
	"ldphh/internal/core"
	"ldphh/internal/freqoracle"
	"ldphh/internal/proto"
	"ldphh/internal/stream"
)

// ordItem encodes ordinal v as a width-w item.
func ordItem(v uint64, w int) []byte { return freqoracle.OrdinalBytes(v, w) }

// genericCase is one row of the cross-protocol transport suite: a protocol
// constructed twice from identical parameters (device side and server
// side), a dataset generator whose items are legal for the protocol's
// domain, and the planted heavy item the round must identify.
type genericCase struct {
	name      string
	n         int
	itemBytes int
	// build returns the device-side reporter and the server-side aggregator.
	build func(t *testing.T) (proto.Reporter, proto.Aggregator)
	// itemFor maps user i to its item; 40% hold heavy, 30% second, rest
	// filler.
	itemFor func(i int) []byte
	heavy   []byte
}

// plantedOrdinals is the shared dataset shape over a small ordinal domain:
// 40% ordinal 1, 30% ordinal 2, 30% spread over [3, 3+spread).
func plantedOrdinals(w, spread int) func(i int) []byte {
	return func(i int) []byte {
		switch {
		case i%10 < 4:
			return ordItem(1, w)
		case i%10 < 7:
			return ordItem(2, w)
		default:
			return ordItem(uint64(3+i%spread), w)
		}
	}
}

func genericCases() []genericCase {
	const seed = 20260729
	cases := []genericCase{
		{
			name: "pes", n: 12000, itemBytes: 4,
			build: func(t *testing.T) (proto.Reporter, proto.Aggregator) {
				params := core.Params{Eps: 4, N: 12000, ItemBytes: 4, Y: 16, Seed: seed}
				rep, err := core.NewPESWire(params)
				if err != nil {
					t.Fatal(err)
				}
				agg, err := core.NewPESWire(params)
				if err != nil {
					t.Fatal(err)
				}
				return rep, agg
			},
			itemFor: plantedOrdinals(4, 89),
			heavy:   ordItem(1, 4),
		},
		{
			name: "smalldomain", n: 6000, itemBytes: 2,
			build: func(t *testing.T) (proto.Reporter, proto.Aggregator) {
				mk := func() *core.SmallDomainWire {
					w, err := core.NewSmallDomainWire(4, 2, 64, 6000, 0)
					if err != nil {
						t.Fatal(err)
					}
					return w
				}
				return mk(), mk()
			},
			itemFor: plantedOrdinals(2, 32),
			heavy:   ordItem(1, 2),
		},
		{
			name: "hashtogram", n: 6000, itemBytes: 3,
			build: func(t *testing.T) (proto.Reporter, proto.Aggregator) {
				candidates := [][]byte{ordItem(1, 3), ordItem(2, 3), ordItem(77, 3)}
				mk := func() *freqoracle.HashtogramWire {
					w, err := freqoracle.NewHashtogramWire(
						freqoracle.HashtogramParams{Eps: 4, N: 6000, Seed: seed}, candidates, 0)
					if err != nil {
						t.Fatal(err)
					}
					return w
				}
				return mk(), mk()
			},
			itemFor: plantedOrdinals(3, 50),
			heavy:   ordItem(1, 3),
		},
		{
			name: "directhistogram", n: 6000, itemBytes: 2,
			build: func(t *testing.T) (proto.Reporter, proto.Aggregator) {
				mk := func() *freqoracle.DirectHistogramWire {
					w, err := freqoracle.NewDirectHistogramWire(4, 2, 64, 6000, 0)
					if err != nil {
						t.Fatal(err)
					}
					return w
				}
				return mk(), mk()
			},
			itemFor: plantedOrdinals(2, 32),
			heavy:   ordItem(1, 2),
		},
		{
			name: "bitstogram", n: 20000, itemBytes: 2,
			build: func(t *testing.T) (proto.Reporter, proto.Aggregator) {
				mk := func() *baseline.BitstogramWire {
					w, err := baseline.NewBitstogramWire(
						baseline.BitstogramParams{Eps: 4, N: 20000, ItemBytes: 2, Seed: seed}, 0)
					if err != nil {
						t.Fatal(err)
					}
					return w
				}
				return mk(), mk()
			},
			itemFor: plantedOrdinals(2, 100),
			heavy:   ordItem(1, 2),
		},
		{
			name: "treehist", n: 20000, itemBytes: 2,
			build: func(t *testing.T) (proto.Reporter, proto.Aggregator) {
				mk := func() *baseline.TreeHistWire {
					w, err := baseline.NewTreeHistWire(
						baseline.TreeHistParams{Eps: 4, N: 20000, ItemBytes: 2, Seed: seed})
					if err != nil {
						t.Fatal(err)
					}
					return w
				}
				return mk(), mk()
			},
			itemFor: plantedOrdinals(2, 100),
			heavy:   ordItem(1, 2),
		},
		{
			name: "bassilysmith", n: 8000, itemBytes: 2,
			build: func(t *testing.T) (proto.Reporter, proto.Aggregator) {
				mk := func() *baseline.BassilySmithWire {
					w, err := baseline.NewBassilySmithWire(
						baseline.BassilySmithParams{Eps: 4, N: 8000, ItemBytes: 2, DomainSize: 256, Seed: seed}, 0)
					if err != nil {
						t.Fatal(err)
					}
					return w
				}
				return mk(), mk()
			},
			itemFor: plantedOrdinals(2, 100),
			heavy:   ordItem(1, 2),
		},
		{
			name: "streamhg", n: 6000, itemBytes: 2,
			build: func(t *testing.T) (proto.Reporter, proto.Aggregator) {
				mk := func() *stream.Wire {
					w, err := stream.NewWire(stream.Params{
						Kind: stream.BasicHG, Eps: 16, Windows: 4, K: 16, Domain: 64,
						WindowSize: 1500, WarmupWindows: 0, N: 6000, Seed: seed,
					}, 2)
					if err != nil {
						t.Fatal(err)
					}
					return w
				}
				return mk(), mk()
			},
			itemFor: plantedOrdinals(2, 32),
			heavy:   ordItem(1, 2),
		},
	}
	return cases
}

// TestServerAllProtocols is the cross-protocol transport gate: every
// registered Table 1 protocol completes a report → TCP ingest → identify
// round trip through the identical generic server code path, with the
// planted heavy item recovered at a sane estimate. Runs under -race in CI
// (the fleet sends over concurrent connections).
func TestServerAllProtocols(t *testing.T) {
	for _, tc := range genericCases() {
		t.Run(tc.name, func(t *testing.T) {
			reporter, agg := tc.build(t)
			if agg.BytesPerReport() <= 0 || agg.SketchBytes() <= 0 {
				t.Fatalf("degenerate metrics: %d bytes/report, %d sketch bytes",
					agg.BytesPerReport(), agg.SketchBytes())
			}
			codec, ok := proto.Lookup(agg.ProtocolID())
			if !ok {
				t.Fatalf("protocol ID %#02x not registered", agg.ProtocolID())
			}
			srv, err := NewGenericServer(agg, "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()

			// Device phase: every user derives one wire report.
			rng := rand.New(rand.NewPCG(7, 7))
			trueHeavy := 0
			reports := make([]proto.WireReport, tc.n)
			for i := range reports {
				item := tc.itemFor(i)
				if bytes.Equal(item, tc.heavy) {
					trueHeavy++
				}
				wr, err := reporter.Report(item, i, rng)
				if err != nil {
					t.Fatalf("report %d: %v", i, err)
				}
				if len(wr) != codec.FrameBytes() {
					t.Fatalf("report frame %d bytes, codec says %d", len(wr), codec.FrameBytes())
				}
				reports[i] = wr
			}

			// Transport phase: a fleet of concurrent connections.
			const fleets = 4
			var wg sync.WaitGroup
			errs := make(chan error, fleets)
			for f := 0; f < fleets; f++ {
				var batch []proto.WireReport
				for i := f; i < tc.n; i += fleets {
					batch = append(batch, reports[i])
				}
				wg.Add(1)
				go func(batch []proto.WireReport) {
					defer wg.Done()
					errs <- SendWire(context.Background(), srv.Addr(), batch)
				}(batch)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
			if got := srv.Absorbed(); got != tc.n {
				t.Fatalf("server absorbed %d of %d reports", got, tc.n)
			}

			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			est, err := RequestIdentifyContext(ctx, srv.Addr())
			if err != nil {
				t.Fatal(err)
			}
			found := false
			for _, e := range est {
				if bytes.Equal(e.Item, tc.heavy) {
					found = true
					if math.Abs(e.Count-float64(trueHeavy)) > float64(trueHeavy)/2 {
						t.Errorf("heavy item estimate %.0f, truth %d", e.Count, trueHeavy)
					}
				}
			}
			if !found {
				t.Errorf("planted heavy item not identified over TCP (%d estimates)", len(est))
			}
		})
	}
}

// TestServerRejectsForeignProtocol pins the connection-time negotiation:
// PES reports sent to a Bitstogram server are rejected at the preamble,
// before any state changes.
func TestServerRejectsForeignProtocol(t *testing.T) {
	agg, err := baseline.NewBitstogramWire(
		baseline.BitstogramParams{Eps: 2, N: 1000, ItemBytes: 2, Seed: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewGenericServer(agg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	pes, err := core.NewPESWire(core.Params{Eps: 2, N: 1000, ItemBytes: 4, Y: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	wr, err := pes.Report([]byte{0, 0, 0, 1}, 0, rand.New(rand.NewPCG(1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := SendWire(context.Background(), srv.Addr(), []proto.WireReport{wr}); err == nil {
		t.Fatal("bitstogram server accepted a pes batch")
	}
	if got := srv.Absorbed(); got != 0 {
		t.Fatalf("foreign batch changed absorbed count to %d", got)
	}
	// A frame whose ID disagrees with the (accepted) preamble is rejected by
	// the aggregator mid-stream: open as wildcard and smuggle the PES frame.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := append([]byte{proto.IDWildcard, cmdReport}, wr...)
	// Pad to the bitstogram frame length so the server reads a full frame.
	msg = append(msg, make([]byte, 2)...)
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	conn.(*net.TCPConn).CloseWrite()
	reply := make([]byte, 64)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	n, _ := conn.Read(reply)
	if n == 0 || reply[0] != 'E' {
		t.Fatalf("expected ERR reply for smuggled frame, got %q", reply[:n])
	}
	if got := srv.Absorbed(); got != 0 {
		t.Fatalf("smuggled frame absorbed (count %d)", got)
	}
}

// TestSnapshotUnsupportedProtocol: the snapshot commands are capability
// detected — a non-Mergeable aggregator answers ERR, not a hang or a
// panic.
func TestSnapshotUnsupportedProtocol(t *testing.T) {
	agg, err := baseline.NewTreeHistWire(
		baseline.TreeHistParams{Eps: 2, N: 1000, ItemBytes: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := proto.AsMergeable(agg); ok {
		t.Fatal("treehist unexpectedly advertises Mergeable; update this test")
	}
	srv, err := NewGenericServer(agg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := RequestSnapshot(srv.Addr()); err == nil {
		t.Error("snapshot of a non-mergeable protocol accepted")
	}
	if err := PushSnapshot(srv.Addr(), []byte("LPSKjunk")); err == nil {
		t.Error("merge into a non-mergeable protocol accepted")
	}
}

// TestMergeableGenericServer: the snapshot/merge wire path works for a
// non-PES Mergeable aggregator (DirectHistogramWire) — the fan-in tree is
// a property of the capability, not of one protocol.
func TestMergeableGenericServer(t *testing.T) {
	mk := func() *freqoracle.DirectHistogramWire {
		w, err := freqoracle.NewDirectHistogramWire(2, 2, 32, 2000, 0)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	leafAgg, rootAgg, reporter := mk(), mk(), mk()
	leaf, err := NewGenericServer(leafAgg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer leaf.Close()
	root, err := NewGenericServer(rootAgg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer root.Close()

	rng := rand.New(rand.NewPCG(5, 5))
	var reports []proto.WireReport
	for i := 0; i < 2000; i++ {
		wr, err := reporter.Report(ordItem(uint64(i%8), 2), i, rng)
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, wr)
	}
	if err := SendWire(context.Background(), leaf.Addr(), reports); err != nil {
		t.Fatal(err)
	}
	snap, err := RequestSnapshot(leaf.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := PushSnapshot(root.Addr(), snap); err != nil {
		t.Fatal(err)
	}
	if got := root.Absorbed(); got != 2000 {
		t.Fatalf("root absorbed %d reports via snapshot merge, want 2000", got)
	}
	est, err := RequestIdentify(root.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if len(est) == 0 {
		t.Fatal("merged root identified nothing")
	}
}

// wedgedListener accepts connections and never reads or replies — the
// pathological server the context-aware clients must not block on.
func wedgedListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var conns []net.Conn
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, c)
			mu.Unlock()
		}
	}()
	t.Cleanup(func() {
		ln.Close()
		mu.Lock()
		defer mu.Unlock()
		for _, c := range conns {
			c.Close()
		}
	})
	return ln
}

// TestContextClientsAgainstWedgedServer is the regression for the context
// plumbing fix: the legacy clients blocked forever on a stalled server;
// the ctx-aware variants must return promptly with the context's error
// once the deadline passes or the caller cancels.
func TestContextClientsAgainstWedgedServer(t *testing.T) {
	ln := wedgedListener(t)
	addr := ln.Addr().String()

	expectDeadline := func(name string, f func(ctx context.Context) error) {
		t.Helper()
		ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
		defer cancel()
		start := time.Now()
		err := f(ctx)
		elapsed := time.Since(start)
		if err == nil {
			t.Fatalf("%s returned nil against a wedged server", name)
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("%s error %v does not wrap context.DeadlineExceeded", name, err)
		}
		if elapsed > 3*time.Second {
			t.Fatalf("%s took %v to honor a 150ms deadline", name, elapsed)
		}
	}

	expectDeadline("RequestIdentifyContext", func(ctx context.Context) error {
		_, err := RequestIdentifyContext(ctx, addr)
		return err
	})
	expectDeadline("RequestSnapshotContext", func(ctx context.Context) error {
		_, err := RequestSnapshotContext(ctx, addr)
		return err
	})
	expectDeadline("PushSnapshotContext", func(ctx context.Context) error {
		return PushSnapshotContext(ctx, addr, []byte("LPSKwedged"))
	})
	expectDeadline("SendReportsContext", func(ctx context.Context) error {
		// A report batch: the server never reads, so the ack read blocks.
		return SendReportsContext(ctx, addr, []core.Report{{
			M:    0,
			Dir:  freqoracle.DirectReport{Col: 0, Bit: 1},
			Conf: freqoracle.HashtogramReport{Row: 0, Col: 0, Bit: 1},
		}})
	})

	// Cancellation (no deadline) must interrupt blocked I/O too.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := RequestIdentifyContext(ctx, addr)
		done <- err
	}()
	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancellation error %v does not wrap context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not interrupt a blocked identify")
	}
}

// TestGenericServerUnregisteredAggregator: constructing a generic server
// around an aggregator with no registered codec fails up front.
func TestGenericServerUnregisteredAggregator(t *testing.T) {
	if _, err := NewGenericServer(fakeAggregator{}, "127.0.0.1:0"); err == nil {
		t.Fatal("server accepted an aggregator with no codec")
	}
}

type fakeAggregator struct{}

func (fakeAggregator) ProtocolID() byte                     { return 0x6f }
func (fakeAggregator) Absorb(proto.WireReport) error        { return fmt.Errorf("nope") }
func (fakeAggregator) AbsorbBatch([]proto.WireReport) error { return fmt.Errorf("nope") }
func (fakeAggregator) Identify(context.Context) ([]proto.Estimate, error) {
	return nil, fmt.Errorf("nope")
}
func (fakeAggregator) TotalReports() int   { return 0 }
func (fakeAggregator) SketchBytes() int    { return 0 }
func (fakeAggregator) BytesPerReport() int { return 0 }
