package protocol

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"io"
	"math"
	"net"
	"strings"
	"testing"
	"time"

	"ldphh/internal/core"
	"ldphh/internal/freqoracle"
	"ldphh/internal/proto"
)

// ingestServer builds a fresh PES server plus a deterministic wire-report
// population shared across delivery paths.
func ingestServer(t testing.TB, seed uint64) *Server {
	t.Helper()
	srv, err := NewServer(treeParams(seed), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func wireReports(t testing.TB, seed uint64, n int) []proto.WireReport {
	t.Helper()
	reps := treeReports(t, treeParams(seed), n)
	wrs := make([]proto.WireReport, n)
	for i, rep := range reps {
		wr, err := core.EncodeReportWire(rep)
		if err != nil {
			t.Fatal(err)
		}
		wrs[i] = wr
	}
	return wrs
}

// TestMegaBatchEquivalentToStream: the same report multiset delivered over
// the legacy cmdReport stream, one cmdReportBatch command, and a pipelined
// IngestConn session (batches crossing both the shardAfter graduation and
// the window boundary) must produce bit-identical aggregate state — same
// TotalReports, bit-identical Identify estimates.
func TestMegaBatchEquivalentToStream(t *testing.T) {
	const n = 9000
	const seed = 4242
	wrs := wireReports(t, seed, n)
	ctx := context.Background()

	deliver := map[string]func(addr string) error{
		"stream": func(addr string) error {
			return SendWire(ctx, addr, wrs)
		},
		"one-batch": func(addr string) error {
			return SendWireBatch(ctx, addr, wrs)
		},
		"pipelined": func(addr string) error {
			c, err := DialIngest(ctx, addr, proto.IDPrivateExpanderSketch)
			if err != nil {
				return err
			}
			defer c.Close()
			// 5000 crosses windowFrames within one command; the rest crosses
			// the command boundary.
			for lo := 0; lo < len(wrs); lo += 5000 {
				hi := min(lo+5000, len(wrs))
				if err := c.SendBatch(ctx, wrs[lo:hi]); err != nil {
					return err
				}
			}
			return nil
		},
	}

	type outcome struct {
		absorbed int
		est      []proto.Estimate
	}
	results := map[string]outcome{}
	for name, send := range deliver {
		srv := ingestServer(t, seed)
		if err := send(srv.Addr()); err != nil {
			t.Fatalf("%s delivery: %v", name, err)
		}
		if got := srv.Absorbed(); got != n {
			t.Fatalf("%s delivery absorbed %d of %d", name, got, n)
		}
		est, err := RequestIdentify(srv.Addr())
		if err != nil {
			t.Fatalf("%s identify: %v", name, err)
		}
		results[name] = outcome{srv.Absorbed(), est}
	}

	ref := results["stream"]
	for name, got := range results {
		if got.absorbed != ref.absorbed {
			t.Errorf("%s absorbed %d, stream absorbed %d", name, got.absorbed, ref.absorbed)
		}
		if len(got.est) != len(ref.est) {
			t.Fatalf("%s identified %d items, stream identified %d", name, len(got.est), len(ref.est))
		}
		for i := range got.est {
			if !bytes.Equal(got.est[i].Item, ref.est[i].Item) ||
				math.Float64bits(got.est[i].Count) != math.Float64bits(ref.est[i].Count) {
				t.Errorf("%s estimate %d = (%x, %v), stream = (%x, %v)", name, i,
					got.est[i].Item, got.est[i].Count, ref.est[i].Item, ref.est[i].Count)
			}
		}
	}
}

// TestIngestConnPipelinesBatches: one connection carries many mega-batches
// back to back — connection reuse is the point of the framing — and the
// server's count is exact afterwards.
func TestIngestConnPipelinesBatches(t *testing.T) {
	const batches = 16
	const per = 750
	wrs := wireReports(t, 77, batches*per)
	srv := ingestServer(t, 77)
	ctx := context.Background()
	c, err := DialIngest(ctx, srv.Addr(), proto.IDPrivateExpanderSketch)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for b := 0; b < batches; b++ {
		if err := c.SendBatch(ctx, wrs[b*per:(b+1)*per]); err != nil {
			t.Fatalf("batch %d on the shared connection: %v", b, err)
		}
	}
	if got := srv.Absorbed(); got != batches*per {
		t.Fatalf("absorbed %d of %d across a pipelined connection", got, batches*per)
	}
	if _, err := RequestIdentify(srv.Addr()); err != nil {
		t.Fatalf("identify after pipelined ingest: %v", err)
	}
}

// TestBatchFramingNeedsNoHalfClose: the length-prefixed mega-batch framing
// must work over a connection with no CloseWrite at all (net.Pipe) — the
// EOF dependence of the stream framing is gone.
func TestBatchFramingNeedsNoHalfClose(t *testing.T) {
	srv := ingestServer(t, 99)
	wrs := wireReports(t, 99, 600)

	cli, srvConn := net.Pipe()
	defer cli.Close()
	handleDone := make(chan struct{})
	go func() {
		defer close(handleDone)
		srv.handle(srvConn) //nolint:errcheck // ends with the pipe close
		srvConn.Close()
	}()

	c := &IngestConn{
		conn:     cli,
		bw:       bufio.NewWriterSize(cli, 1<<16),
		br:       bufio.NewReader(cli),
		id:       proto.IDPrivateExpanderSketch,
		frameLen: FrameSize,
	}
	if err := c.bw.WriteByte(c.id); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.SendBatch(ctx, wrs[:300]); err != nil {
		t.Fatalf("batch over a pipe (no CloseWrite): %v", err)
	}
	if err := c.SendBatch(ctx, wrs[300:]); err != nil {
		t.Fatalf("second batch over a pipe: %v", err)
	}
	if got := srv.Absorbed(); got != 600 {
		t.Fatalf("absorbed %d of 600 over the pipe", got)
	}
	cli.Close()
	select {
	case <-handleDone:
	case <-time.After(5 * time.Second):
		t.Fatal("handler did not exit after the pipe closed")
	}
}

// TestStreamRequiresCloseWrite: the legacy stream framing on a connection
// that cannot half-close must fail fast with an explicit error instead of
// wedging both ends waiting for an EOF that never comes.
func TestStreamRequiresCloseWrite(t *testing.T) {
	cli, srvConn := net.Pipe()
	defer cli.Close()
	defer srvConn.Close()
	wrs := wireReports(t, 13, 1)
	err := streamWire(cli, wrs)
	if err == nil {
		t.Fatal("stream framing accepted a connection with no CloseWrite")
	}
	if !strings.Contains(err.Error(), "half-close") {
		t.Fatalf("error %q does not explain the missing half-close", err)
	}
}

// TestBatchRejectsOversizedCount: a hostile count header beyond the batch
// cap is rejected with an ERR reply before any frame is read.
func TestBatchRejectsOversizedCount(t *testing.T) {
	srv := ingestServer(t, 55)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := make([]byte, 6)
	msg[0] = proto.IDPrivateExpanderSketch
	msg[1] = cmdReportBatch
	binary.BigEndian.PutUint32(msg[2:], maxBatchFrames+1)
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	reply, _ := io.ReadAll(conn)
	if !strings.Contains(string(reply), "cap") {
		t.Fatalf("oversized batch reply %q does not reject the frame cap", reply)
	}
	if got := srv.Absorbed(); got != 0 {
		t.Fatalf("oversized batch absorbed %d reports", got)
	}
}

// poisonVersion returns a copy of wr with a corrupted codec version byte:
// it passes the client's protocol-ID check but fails server-side decode.
func poisonVersion(wr proto.WireReport) proto.WireReport {
	bad := append(proto.WireReport(nil), wr...)
	bad[1] ^= 0x7f
	return bad
}

// TestStreamPoisonedFrameDrained: when Absorb fails mid-stream the server
// must drain the rest of the stream before replying ERR. Regression: it
// used to stop reading immediately, so a context-free client still
// writing a multi-megabyte stream wedged against a full send buffer (or
// died on RST) and never saw the real error.
func TestStreamPoisonedFrameDrained(t *testing.T) {
	srv := ingestServer(t, 31)
	good := wireReports(t, 31, 6)
	// ~6.5 MB of stream after the poison — far beyond the socket buffers,
	// so an undrained server provably wedges or resets this client.
	const tail = 400_000
	wrs := make([]proto.WireReport, 0, 6+tail)
	wrs = append(wrs, good[:5]...)
	wrs = append(wrs, poisonVersion(good[5]))
	for i := 0; i < tail; i++ {
		wrs = append(wrs, good[5])
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	err := SendWire(ctx, srv.Addr(), wrs)
	if err == nil {
		t.Fatal("poisoned stream accepted")
	}
	if !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("client saw %q instead of the server's ERR reply (wedged or reset mid-write?)", err)
	}
	if got := srv.Absorbed(); got != 5 {
		t.Fatalf("absorbed %d reports, want the 5-frame valid prefix", got)
	}
	// The server survived the poisoned connection.
	if err := SendWireBatch(ctx, srv.Addr(), good[:5]); err != nil {
		t.Fatalf("server wedged after a poisoned stream: %v", err)
	}
}

// TestBatchPoisonedFrameDrained is the mega-batch twin: an AbsorbBatch
// failure mid-command drains the declared remainder (its exact length is
// known) before the ERR reply, and the valid prefix keeps counting.
func TestBatchPoisonedFrameDrained(t *testing.T) {
	srv := ingestServer(t, 32)
	good := wireReports(t, 32, 400)
	// Poison inside the first window, with most of the batch still unsent:
	// windowFrames+ more frames follow the poison.
	wrs := make([]proto.WireReport, 0, 400+2*windowFrames)
	wrs = append(wrs, good[:300]...)
	wrs = append(wrs, poisonVersion(good[300]))
	for i := 0; i < 2*windowFrames; i++ {
		wrs = append(wrs, good[i%400])
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	err := SendWireBatch(ctx, srv.Addr(), wrs)
	if err == nil {
		t.Fatal("poisoned batch accepted")
	}
	if !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("client saw %q instead of the server's ERR reply", err)
	}
	if got := srv.Absorbed(); got != 300 {
		t.Fatalf("absorbed %d reports, want the 300-frame valid prefix", got)
	}
	if err := SendWireBatch(ctx, srv.Addr(), good); err != nil {
		t.Fatalf("server wedged after a poisoned batch: %v", err)
	}
}

// TestWindowedAbsorbErrorValidPrefix pins the unified error semantics of
// the windowed stream branch. Regression: an AbsorbBatch failure on a
// full mid-stream window used to return immediately — no drain, different
// accounting than the tail flush. Now every path counts the valid prefix
// (every frame up to the first invalid one) and the client reads the real
// ERR reply.
func TestWindowedAbsorbErrorValidPrefix(t *testing.T) {
	srv := ingestServer(t, 33)
	const prefix = shardAfter + 100 // poison lands inside the first window
	total := shardAfter + windowFrames + 1000
	good := wireReports(t, 33, prefix+1)
	wrs := make([]proto.WireReport, 0, total+1)
	wrs = append(wrs, good[:prefix]...)
	wrs = append(wrs, poisonVersion(good[prefix]))
	for len(wrs) < total {
		wrs = append(wrs, good[0])
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	err := SendWire(ctx, srv.Addr(), wrs)
	if err == nil {
		t.Fatal("poisoned windowed stream accepted")
	}
	if !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("client saw %q instead of the server's ERR reply", err)
	}
	if got := srv.Absorbed(); got != prefix {
		t.Fatalf("TotalReports = %d, want the %d-frame valid prefix (same as the tail-flush semantics)", got, prefix)
	}
	if err := SendWireBatch(ctx, srv.Addr(), good[:10]); err != nil {
		t.Fatalf("server wedged after the windowed error: %v", err)
	}
}

// TestBatchDecodeAllocs pins the zero-allocation contract of the
// mega-batch decode path: pooled window buffers, pre-sliced frame views,
// no per-frame (and no per-window-beyond-the-aggregator) heap traffic.
func TestBatchDecodeAllocs(t *testing.T) {
	cases := []struct {
		name  string
		id    byte
		build func(t *testing.T) (proto.Reporter, proto.Aggregator)
	}{
		{
			name: "pes", id: proto.IDPrivateExpanderSketch,
			build: func(t *testing.T) (proto.Reporter, proto.Aggregator) {
				params := core.Params{Eps: 4, N: 20000, ItemBytes: 4, Y: 16, Seed: 8}
				dev, err := core.NewPESWire(params)
				if err != nil {
					t.Fatal(err)
				}
				agg, err := core.NewPESWire(params)
				if err != nil {
					t.Fatal(err)
				}
				return dev, agg
			},
		},
		{
			name: "hashtogram", id: proto.IDHashtogram,
			build: func(t *testing.T) (proto.Reporter, proto.Aggregator) {
				mk := func() *freqoracle.HashtogramWire {
					w, err := freqoracle.NewHashtogramWire(
						freqoracle.HashtogramParams{Eps: 4, N: 20000, Seed: 8},
						[][]byte{freqoracle.OrdinalBytes(1, 4)}, 0)
					if err != nil {
						t.Fatal(err)
					}
					return w
				}
				return mk(), mk()
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dev, agg := tc.build(t)
			srv, err := NewGenericServer(agg, "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()

			// One full window of frames as a pre-encoded batch body:
			// u32 count + contiguous frames.
			const frames = windowFrames
			rng := testRng(5)
			var body bytes.Buffer
			var hdr [4]byte
			binary.BigEndian.PutUint32(hdr[:], frames)
			body.Write(hdr[:])
			for i := 0; i < frames; i++ {
				wr, err := dev.Report(freqoracle.OrdinalBytes(uint64(1+i%7), 4), i, rng)
				if err != nil {
					t.Fatal(err)
				}
				body.Write(wr)
			}
			raw := body.Bytes()

			rd := bytes.NewReader(raw)
			br := bufio.NewReaderSize(rd, 1<<16)
			run := func() {
				rd.Reset(raw)
				br.Reset(rd)
				if err := srv.handleReportBatch(br); err != nil {
					t.Fatal(err)
				}
			}
			run() // warm the window pool before measuring
			perRun := testing.AllocsPerRun(20, run)
			perReport := perRun / frames
			t.Logf("%s: %.1f allocs/window, %.5f allocs/report", tc.name, perRun, perReport)
			if perReport > 0.05 {
				t.Errorf("batch decode path allocates %.4f/report (%.1f per %d-frame window), want ~0",
					perReport, perRun, frames)
			}
		})
	}
}

// BenchmarkIngestWire measures end-to-end delivered reports/sec of the two
// wire framings over real TCP — the per-frame stream path against the
// mega-batch path — so the gain shows up in `go test -bench IngestWire`.
func BenchmarkIngestWire(b *testing.B) {
	for _, mode := range []string{"stream", "batch"} {
		b.Run(mode, func(b *testing.B) {
			params := treeParams(17)
			srv, err := NewServer(params, "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			wrs := wireReports(b, 17, 4096)
			ctx := context.Background()
			var c *IngestConn
			if mode == "batch" {
				if c, err = DialIngest(ctx, srv.Addr(), proto.IDPrivateExpanderSketch); err != nil {
					b.Fatal(err)
				}
				defer c.Close()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if mode == "batch" {
					err = c.SendBatch(ctx, wrs)
				} else {
					err = SendWire(ctx, srv.Addr(), wrs)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N*len(wrs))/b.Elapsed().Seconds(), "reports/s")
		})
	}
}
