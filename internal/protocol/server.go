package protocol

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"

	"ldphh/internal/core"
)

// Commands on the control byte that begins every connection.
const (
	cmdReport        = 0x01 // followed by a stream of report frames until EOF
	cmdIdentify      = 0x02 // triggers identification; reply is the estimate list
	cmdSnapshot      = 0x03 // stream my accumulated state out (length-prefixed LPSK blob)
	cmdMergeSnapshot = 0x04 // absorb a child aggregator's state (length-prefixed LPSK blob)
)

// maxSnapshotBytes bounds the length prefix either side of a snapshot
// transfer will honor. It caps allocation from a hostile peer and keeps the
// prefix unambiguous against the textual "ERR " failure reply (whose first
// four bytes read as ~1.16e9, above this cap).
const maxSnapshotBytes = 1 << 30

// Server aggregates LDP reports over TCP into a PrivateExpanderSketch
// protocol instance. One Server serves one collection round.
//
// Ingestion is sharded: a report connection that proves to be bulk (more
// than shardAfter frames) decodes and absorbs in its own goroutine into a
// private core.Accumulator, so concurrent senders never contend on the
// protocol's mutex per report. The shard is merged into the protocol — one
// lock acquisition — when the stream ends or every mergeEvery frames,
// whichever comes first. Short streams (a device delivering its single
// report) skip shard setup entirely and take the locked Absorb path, which
// is cheaper than zeroing a sketch-sized accumulator for a handful of
// frames. All round state (absorbed count, round-closed flag) lives in the
// protocol itself.
type Server struct {
	proto *core.Protocol

	ln     net.Listener
	wg     sync.WaitGroup
	closed chan struct{}
}

const (
	// shardAfter is the stream length at which a connection graduates from
	// per-report locked absorption to its own shard accumulator.
	shardAfter = 256
	// mergeEvery bounds how many frames a connection shard buffers before
	// folding into the protocol, so Absorbed() tracks long-lived streams
	// and an aborted connection loses at most one partial window.
	mergeEvery = 1 << 16
)

// NewServer constructs a server around a fresh protocol with the given
// parameters and starts listening on addr (use "127.0.0.1:0" for tests).
// params.Workers sizes the Identify worker pool the cmdIdentify command
// runs on; the identification reply is bit-identical at any worker count,
// so operators can tune it per deployment without coordinating clients.
func NewServer(params core.Params, addr string) (*Server, error) {
	proto, err := core.New(params)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{proto: proto, ln: ln, closed: make(chan struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Protocol exposes the underlying protocol (public randomness for clients).
func (s *Server) Protocol() *core.Protocol { return s.proto }

// Absorbed returns the number of reports accepted so far.
func (s *Server) Absorbed() int { return s.proto.TotalReports() }

// Close stops accepting and waits for in-flight connections.
func (s *Server) Close() error {
	select {
	case <-s.closed:
	default:
		close(s.closed)
	}
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				// Listener failure outside Close: stop accepting.
				return
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			if err := s.handle(conn); err != nil && !errors.Is(err, io.EOF) {
				// Best effort error reply; the connection is about to close.
				fmt.Fprintf(conn, "ERR %v\n", err)
			}
		}()
	}
}

func (s *Server) handle(conn net.Conn) error {
	br := bufio.NewReader(conn)
	cmd, err := br.ReadByte()
	if err != nil {
		return err
	}
	switch cmd {
	case cmdReport:
		if err := s.handleReports(br); err != nil {
			return err
		}
		// Acknowledge so the sender knows every frame was absorbed before it
		// returns (SendReports blocks on this byte).
		_, err := conn.Write([]byte{ackByte})
		return err
	case cmdIdentify:
		return s.handleIdentify(conn)
	case cmdSnapshot:
		return s.handleSnapshot(conn)
	case cmdMergeSnapshot:
		return s.handleMergeSnapshot(conn, br)
	default:
		return fmt.Errorf("protocol: unknown command %d", cmd)
	}
}

const ackByte = 0x06

func (s *Server) handleReports(r io.Reader) error {
	var acc *core.Accumulator
	frames := 0
	var streamErr error
	for streamErr == nil {
		rep, err := ReadFrame(r)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				streamErr = err
			}
			break
		}
		if acc == nil {
			if frames < shardAfter {
				// Short-stream path: locked absorption, no shard setup.
				frames++
				if err := s.proto.Absorb(rep); err != nil {
					streamErr = err
				}
				continue
			}
			acc = s.proto.NewAccumulator()
		}
		if err := acc.Absorb(rep); err != nil {
			streamErr = err
			break
		}
		if acc.Absorbed() >= mergeEvery {
			if err := s.proto.Merge(acc); err != nil {
				return err
			}
			acc = s.proto.NewAccumulator()
		}
	}
	// Merge the valid prefix even when the stream went bad mid-flight —
	// every frame that decoded and validated counts, exactly as under the
	// per-report lock.
	if acc != nil && acc.Absorbed() > 0 {
		if err := s.proto.Merge(acc); err != nil {
			return err
		}
	}
	return streamErr
}

func (s *Server) handleIdentify(conn net.Conn) error {
	// The protocol finalizes itself: a second identify (or any absorb or
	// merge racing this call) fails under its mutex.
	est, err := s.proto.Identify()
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(conn)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(est)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	for _, e := range est {
		var lenb [2]byte
		binary.BigEndian.PutUint16(lenb[:], uint16(len(e.Item)))
		if _, err := bw.Write(lenb[:]); err != nil {
			return err
		}
		if _, err := bw.Write(e.Item); err != nil {
			return err
		}
		var cnt [8]byte
		binary.BigEndian.PutUint64(cnt[:], uint64(int64(e.Count)))
		if _, err := bw.Write(cnt[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// handleSnapshot serializes the protocol's accumulated state and streams it
// back as a u32 length prefix plus the LPSK blob. Reports absorbed after
// the internal Snapshot call are simply not in this checkpoint; they remain
// in this aggregator's state and reach the root in a later snapshot or not
// at all — the transfer itself is consistent at one instant because
// Snapshot runs under the protocol mutex.
func (s *Server) handleSnapshot(conn net.Conn) error {
	snap, err := s.proto.Snapshot()
	if err != nil {
		return err
	}
	if len(snap) > maxSnapshotBytes {
		return fmt.Errorf("protocol: snapshot of %d bytes exceeds transfer cap", len(snap))
	}
	bw := bufio.NewWriter(conn)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(snap)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := bw.Write(snap); err != nil {
		return err
	}
	return bw.Flush()
}

// handleMergeSnapshot reads a length-prefixed LPSK blob from a child
// aggregator and folds it into the protocol, acknowledging with the same
// byte report streams use so the child knows its state was absorbed before
// it retires the data.
func (s *Server) handleMergeSnapshot(conn net.Conn, br *bufio.Reader) error {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return fmt.Errorf("protocol: reading snapshot length: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxSnapshotBytes {
		return fmt.Errorf("protocol: snapshot length %d exceeds transfer cap", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return fmt.Errorf("protocol: reading snapshot body: %w", err)
	}
	if err := s.proto.MergeSnapshot(buf); err != nil {
		return err
	}
	_, err := conn.Write([]byte{ackByte})
	return err
}

// SendReports streams reports to the server over one connection and waits
// for the server's acknowledgment that every frame was absorbed.
func SendReports(addr string, reports []core.Report) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	bw := bufio.NewWriter(conn)
	if err := bw.WriteByte(cmdReport); err != nil {
		return err
	}
	for _, rep := range reports {
		if err := WriteFrame(bw, rep); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	// Half-close the write side so the server sees EOF, then wait for ACK.
	if tc, ok := conn.(*net.TCPConn); ok {
		if err := tc.CloseWrite(); err != nil {
			return err
		}
	}
	var ack [1]byte
	if _, err := io.ReadFull(conn, ack[:]); err != nil {
		return fmt.Errorf("protocol: waiting for server ack: %w", err)
	}
	if ack[0] != ackByte {
		return fmt.Errorf("protocol: server rejected the batch (reply %q...)", ack[0])
	}
	return nil
}

// RequestIdentify asks the server to run identification and returns the
// estimates.
func RequestIdentify(addr string) ([]core.Estimate, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{cmdIdentify}); err != nil {
		return nil, err
	}
	br := bufio.NewReader(conn)
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("protocol: reading identify reply: %w", err)
	}
	// The server answers failures with a textual "ERR ...\n" line instead of
	// an estimate count; relay its message rather than misparsing the bytes.
	if string(hdr[:]) == "ERR " {
		msg, _ := br.ReadString('\n')
		return nil, fmt.Errorf("protocol: server rejected identify: %s", strings.TrimSpace(msg))
	}
	n := binary.BigEndian.Uint32(hdr[:])
	const maxItems = 1 << 24
	if n > maxItems {
		return nil, fmt.Errorf("protocol: implausible estimate count %d", n)
	}
	out := make([]core.Estimate, 0, n)
	for i := uint32(0); i < n; i++ {
		var lenb [2]byte
		if _, err := io.ReadFull(br, lenb[:]); err != nil {
			return nil, err
		}
		item := make([]byte, binary.BigEndian.Uint16(lenb[:]))
		if _, err := io.ReadFull(br, item); err != nil {
			return nil, err
		}
		var cnt [8]byte
		if _, err := io.ReadFull(br, cnt[:]); err != nil {
			return nil, err
		}
		out = append(out, core.Estimate{Item: item, Count: float64(int64(binary.BigEndian.Uint64(cnt[:])))})
	}
	return out, nil
}

// RequestSnapshot asks an aggregation server for its accumulated state and
// returns the LPSK snapshot bytes, ready to feed a parent aggregator via
// PushSnapshot (or core.Protocol.MergeSnapshot / Restore in process).
func RequestSnapshot(addr string) ([]byte, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{cmdSnapshot}); err != nil {
		return nil, err
	}
	br := bufio.NewReader(conn)
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("protocol: reading snapshot reply: %w", err)
	}
	// Failures arrive as a textual "ERR ...\n" line instead of a length;
	// the cap below keeps the two unambiguous ("ERR " decodes above it).
	if string(hdr[:]) == "ERR " {
		msg, _ := br.ReadString('\n')
		return nil, fmt.Errorf("protocol: server rejected snapshot: %s", strings.TrimSpace(msg))
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxSnapshotBytes {
		return nil, fmt.Errorf("protocol: implausible snapshot length %d", n)
	}
	snap := make([]byte, n)
	if _, err := io.ReadFull(br, snap); err != nil {
		return nil, fmt.Errorf("protocol: reading snapshot body: %w", err)
	}
	return snap, nil
}

// PushSnapshot ships a leaf aggregator's snapshot to a parent server, which
// merges it into its own state, and waits for the acknowledgment. The two
// ends must run protocols with equal fingerprints (same Params.Seed and
// sketch geometry); a mismatch is rejected server-side before any state
// changes.
func PushSnapshot(addr string, snap []byte) error {
	if len(snap) > maxSnapshotBytes {
		return fmt.Errorf("protocol: snapshot of %d bytes exceeds transfer cap", len(snap))
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	bw := bufio.NewWriter(conn)
	if err := bw.WriteByte(cmdMergeSnapshot); err != nil {
		return err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(snap)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := bw.Write(snap); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	br := bufio.NewReader(conn)
	first, err := br.ReadByte()
	if err != nil {
		return fmt.Errorf("protocol: waiting for merge ack: %w", err)
	}
	if first == ackByte {
		return nil
	}
	msg, _ := br.ReadString('\n')
	return fmt.Errorf("protocol: server rejected snapshot merge: %s", strings.TrimSpace(string(first)+msg))
}
