package protocol

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"time"

	"ldphh/internal/checkpoint"
	"ldphh/internal/core"
	"ldphh/internal/proto"
)

// Commands on the control byte that follows the protocol-ID byte opening
// every connection.
const (
	cmdReport        = 0x01 // followed by a stream of report frames until EOF
	cmdIdentify      = 0x02 // triggers identification; reply is the estimate list
	cmdSnapshot      = 0x03 // stream my accumulated state out (length-prefixed blob)
	cmdMergeSnapshot = 0x04 // absorb a child aggregator's state (length-prefixed blob)
	cmdReportBatch   = 0x05 // u32 frame count + that many contiguous frames; pipelined
	cmdQueryTopK     = 0x07 // u32 k; reply is the estimate list; pipelined (0x06 is ackByte)
	cmdRound         = 0x08 // read the open round's broadcast state; pipelined
	cmdAdvanceRound  = 0x09 // finalize the open round, open the next; reply is the new state; pipelined
)

// maxSnapshotBytes bounds the length prefix either side of a snapshot
// transfer will honor. It caps allocation from a hostile peer and keeps the
// prefix unambiguous against the textual "ERR " failure reply (whose first
// four bytes read as ~1.16e9, above this cap).
const maxSnapshotBytes = 1 << 30

// Server aggregates LDP reports over TCP into any proto.Aggregator. One
// Server serves one collection round for one protocol; the protocol ID is
// negotiated (verified) at connection time and revalidated on every
// self-describing report frame.
//
// Ingestion is sharded: a report connection that proves to be bulk (more
// than shardAfter frames) buffers frames into windows handed to the
// aggregator's AbsorbBatch — one lock acquisition (for PES, one private
// accumulator merge) per window instead of one per report, so concurrent
// senders never contend on the aggregator per report. Short streams (a
// device delivering its single report) skip the window entirely and take
// the per-report Absorb path, which is cheaper than batch setup for a
// handful of frames.
//
// The hot ingest path is allocation-free per report: frames land in pooled
// fixed-size window buffers (one buffer per in-flight connection window,
// pre-sliced into WireReport views), so the steady-state batch path costs
// ~0 heap allocations per report — see TestBatchDecodeAllocs for the pin.
// Memory per connection is bounded by one window; a sender that outruns
// absorption is parked by TCP flow control rather than buffered without
// bound.
//
// Aggregators that additionally implement proto.Mergeable (capability
// detected at runtime) answer the snapshot/merge commands that compose
// servers into fan-in trees; others reject those commands with an ERR
// reply.
type Server struct {
	agg   proto.Aggregator
	codec proto.Codec
	pes   *core.Protocol // non-nil only for the legacy PES constructor

	ln     net.Listener
	wg     sync.WaitGroup
	closed chan struct{}

	windows sync.Pool // *frameWindow sized for this codec's frames

	// Permanent listener death outside Close: dieOnce records the fatal
	// Accept error and closes dead so operators can watch for it (Err,
	// Done) instead of discovering a silently deaf server.
	dieOnce sync.Once
	dead    chan struct{}
	diedErr error

	// Close/Shutdown may race from any number of goroutines; the Once is
	// what makes the closed-channel close and the listener teardown happen
	// exactly once (a bare select on s.closed lets two goroutines both take
	// the default branch and double-close the channel — a panic).
	closeOnce sync.Once
	closeErr  error

	// Durability and observability (nil/zero when not configured).
	cfg     serverConfig
	metrics *Metrics
	merge   proto.Mergeable     // snapshot capability, nil if unsupported
	ckpt    *checkpoint.Manager // nil when checkpointing is off
	ckptMu  sync.Mutex          // serializes snapshot+save so triggers never interleave
	msrv    *metricsServer      // nil when no metrics address is configured
}

// serverConfig carries the lifecycle options.
type serverConfig struct {
	metricsAddr  string
	ckptDir      string
	ckptInterval time.Duration
	ckptEvery    int
	ckptRetain   int
}

// ServerOption configures durability and observability on any of the
// server constructors.
type ServerOption func(*serverConfig)

// WithCheckpointDir enables durable checkpoints in dir: the newest valid
// checkpoint is restored into the aggregator before the listener accepts
// its first connection (torn or truncated files fall back to the previous
// valid one; a parameter-fingerprint mismatch fails startup), periodic and
// ack-coupled checkpoints persist the state while the round runs, and a
// graceful Shutdown writes a final checkpoint. The aggregator must support
// snapshots (proto.Mergeable).
func WithCheckpointDir(dir string) ServerOption {
	return func(c *serverConfig) { c.ckptDir = dir }
}

// WithCheckpointInterval sets the periodic checkpoint cadence (default
// 30s; <= 0 disables the timer, leaving only ack-coupled and shutdown
// checkpoints).
func WithCheckpointInterval(d time.Duration) ServerOption {
	return func(c *serverConfig) { c.ckptInterval = d }
}

// WithCheckpointEvery couples durability to the ingest acknowledgment:
// whenever at least n reports have been absorbed since the last
// checkpoint, the server checkpoints synchronously before acknowledging
// the report command that crossed the threshold — so an acknowledged batch
// is on disk before the sender retires it, and a kill -9 can only lose the
// unacknowledged window. Set n to the mega-batch size for exactly-once
// recovery semantics with client-side replay of unacknowledged batches.
func WithCheckpointEvery(n int) ServerOption {
	return func(c *serverConfig) { c.ckptEvery = n }
}

// WithCheckpointRetain keeps the newest n checkpoint files on disk
// (default 3, minimum 2 so torn-file recovery always has a fallback).
func WithCheckpointRetain(n int) ServerOption {
	return func(c *serverConfig) { c.ckptRetain = n }
}

// WithMetricsAddr starts the HTTP operability sidecar on addr (use
// "127.0.0.1:0" to let the kernel pick): /healthz for probes and load
// balancers, /metrics for Prometheus scrapes. MetricsAddr reports the
// bound address.
func WithMetricsAddr(addr string) ServerOption {
	return func(c *serverConfig) { c.metricsAddr = addr }
}

const (
	// shardAfter is the stream length at which a connection graduates from
	// per-report locked absorption to windowed batch absorption.
	shardAfter = 256
	// windowFrames bounds how many frames a connection buffers before
	// folding into the aggregator: the per-connection memory ceiling and
	// the unit of backpressure (a sender is parked by TCP flow control
	// while its window absorbs). An aborted connection loses at most one
	// partial window. 4Ki frames keeps a pooled window at ~64 KiB; this
	// presumes AbsorbBatch costs O(batch) per call (PES absorbs under one
	// mutex acquisition rather than merging a sketch-sized accumulator
	// copy, which at n = 10^6 would dominate ingest at this granularity).
	windowFrames = 4096
	// maxBatchFrames caps the frame count one cmdReportBatch command may
	// declare, bounding how long a single command can monopolize a
	// connection handler and keeping a hostile count header from looking
	// plausible. Larger ingests pipeline multiple batch commands on one
	// connection.
	maxBatchFrames = 1 << 22
)

// frameWindow is one pooled read window: a contiguous frame buffer plus the
// aliasing WireReport views, sliced once at construction so the hot loop
// never re-slices (and never allocates) per frame or per window.
type frameWindow struct {
	buf []byte
	wrs []proto.WireReport
}

func newFrameWindow(frameLen int) *frameWindow {
	w := &frameWindow{
		buf: make([]byte, windowFrames*frameLen),
		wrs: make([]proto.WireReport, windowFrames),
	}
	for i := range w.wrs {
		w.wrs[i] = proto.WireReport(w.buf[i*frameLen : (i+1)*frameLen])
	}
	return w
}

// NewServer constructs a PrivateExpanderSketch server around a fresh
// protocol with the given parameters and starts listening on addr (use
// "127.0.0.1:0" for tests). params.Workers sizes the Identify worker pool;
// the identification reply is bit-identical at any worker count, so
// operators can tune it per deployment without coordinating clients.
func NewServer(params core.Params, addr string, opts ...ServerOption) (*Server, error) {
	pr, err := core.New(params)
	if err != nil {
		return nil, err
	}
	s, err := NewGenericServer(pr.Wire(), addr, opts...)
	if err != nil {
		return nil, err
	}
	s.pes = pr
	return s, nil
}

// NewGenericServer constructs a server around any aggregator and starts
// listening on addr. The aggregator's protocol must have a registered wire
// codec (every protocol in the repository registers one at init).
func NewGenericServer(agg proto.Aggregator, addr string, opts ...ServerOption) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s, err := ServeListener(agg, ln, opts...)
	if err != nil {
		ln.Close()
		return nil, err
	}
	return s, nil
}

// ServeListener constructs a server around any aggregator on an existing
// listener, which the server takes ownership of (Close closes it). It is
// the injection point for custom listeners — tests wrap a faulty one to
// exercise accept-loop resilience; deployments can hand in a TLS listener.
//
// When a checkpoint directory is configured, recovery runs here, before
// the accept loop starts: the newest valid on-disk checkpoint is restored
// into the aggregator (torn or truncated files fall back to the previous
// valid one), and a checkpoint whose parameter fingerprint does not match
// the aggregator fails construction — restarting under different
// parameters must be loud, not a silent fresh start over a stale round.
func ServeListener(agg proto.Aggregator, ln net.Listener, opts ...ServerOption) (*Server, error) {
	codec, ok := proto.Lookup(agg.ProtocolID())
	if !ok {
		return nil, fmt.Errorf("protocol: aggregator protocol ID %#02x has no registered codec", agg.ProtocolID())
	}
	var cfg serverConfig
	cfg.ckptInterval = 30 * time.Second
	for _, opt := range opts {
		opt(&cfg)
	}
	s := &Server{
		agg:     agg,
		codec:   codec,
		ln:      ln,
		closed:  make(chan struct{}),
		dead:    make(chan struct{}),
		cfg:     cfg,
		metrics: newMetrics(codec.Name),
	}
	frameLen := codec.FrameBytes()
	s.windows.New = func() any { return newFrameWindow(frameLen) }
	if cfg.ckptDir != "" {
		if err := s.openCheckpoints(); err != nil {
			return nil, err
		}
	}
	if cfg.metricsAddr != "" {
		msrv, err := startMetricsServer(cfg.metricsAddr, s)
		if err != nil {
			return nil, err
		}
		s.msrv = msrv
	}
	if s.ckpt != nil && cfg.ckptInterval > 0 {
		s.wg.Add(1)
		go s.checkpointLoop(cfg.ckptInterval)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// openCheckpoints wires the durable-checkpoint manager up and runs the
// startup recovery path.
func (s *Server) openCheckpoints() error {
	m, ok := proto.AsMergeable(s.agg)
	if !ok {
		return fmt.Errorf("protocol: %s does not support snapshots; checkpoints need a Mergeable aggregator", s.codec.Name)
	}
	copts := make([]checkpoint.Option, 0, 2)
	if s.cfg.ckptRetain > 0 {
		copts = append(copts, checkpoint.WithRetain(s.cfg.ckptRetain))
	}
	if f, ok := proto.AsFingerprinted(s.agg); ok {
		copts = append(copts, checkpoint.WithFingerprint(f.Fingerprint()))
	}
	mgr, err := checkpoint.Open(s.cfg.ckptDir, copts...)
	if err != nil {
		return err
	}
	payload, info, err := mgr.LoadNewest()
	switch {
	case err == nil:
		if err := m.Restore(payload); err != nil {
			return fmt.Errorf("protocol: restoring checkpoint %s: %w", info.Path, err)
		}
		s.metrics.recoveredReports.Store(int64(s.agg.TotalReports()))
		s.metrics.noteCheckpoint(info.Seq, info.Time.UnixNano(), info.Bytes, 0)
	case errors.Is(err, checkpoint.ErrNoCheckpoint):
		// Fresh start: nothing on disk (or nothing intact), begin at seq 1.
	default:
		// Fingerprint mismatch or an unreadable directory: refuse to serve.
		return err
	}
	s.ckpt, s.merge = mgr, m
	return nil
}

// checkpointLoop persists the aggregator state on a timer. Failures are
// recorded in the metrics (checkpoint_errors_total, /healthz
// last_checkpoint_error) and retried on the next tick — a transient disk
// error must not kill the ingest plane.
func (s *Server) checkpointLoop(interval time.Duration) {
	defer s.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.closed:
			return
		case <-t.C:
			if s.metrics.CheckpointLag() > 0 {
				s.takeCheckpoint() //nolint:errcheck // recorded in metrics, retried next tick
			}
		}
	}
}

// takeCheckpoint snapshots the aggregator and durably persists it as the
// next checkpoint. The absorbed-report counter is sampled before the
// snapshot, so the recorded lag can only overcount, never undercount,
// what the file covers.
func (s *Server) takeCheckpoint() error {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	return s.takeCheckpointLocked()
}

func (s *Server) takeCheckpointLocked() error {
	absorbed := s.metrics.reportsAbsorbed.Load()
	snap, err := s.merge.Snapshot()
	if err != nil {
		s.metrics.noteCheckpointError(err)
		return err
	}
	info, err := s.ckpt.Save(snap)
	if err != nil {
		s.metrics.noteCheckpointError(err)
		return err
	}
	s.metrics.checkpoints.Add(1)
	s.metrics.noteCheckpoint(info.Seq, info.Time.UnixNano(), len(snap), absorbed)
	return nil
}

// maybeCheckpointSync implements the ack-coupled durability policy
// (WithCheckpointEvery): called after a report command absorbs and before
// its acknowledgment goes out. When the threshold is crossed the
// checkpoint happens here, synchronously — an error fails the command, so
// the client never receives an ack for state that is not on disk. The lag
// is rechecked under the checkpoint lock because a concurrent connection
// may have just covered this one's reports.
func (s *Server) maybeCheckpointSync() error {
	if s.ckpt == nil || s.cfg.ckptEvery <= 0 {
		return nil
	}
	if s.metrics.CheckpointLag() < int64(s.cfg.ckptEvery) {
		return nil
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	if s.metrics.CheckpointLag() < int64(s.cfg.ckptEvery) {
		return nil
	}
	return s.takeCheckpointLocked()
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Aggregator exposes the aggregator this server feeds.
func (s *Server) Aggregator() proto.Aggregator { return s.agg }

// Protocol exposes the underlying PES protocol (public randomness for
// clients) when the server was built with NewServer; it is nil for servers
// around other aggregators.
func (s *Server) Protocol() *core.Protocol { return s.pes }

// Absorbed returns the number of reports accepted so far.
func (s *Server) Absorbed() int { return s.agg.TotalReports() }

// Err reports why the server stopped accepting, if it did: nil while the
// listener is healthy (or was shut down by Close), the fatal Accept error
// after a permanent listener failure.
func (s *Server) Err() error {
	select {
	case <-s.dead:
		return s.diedErr
	default:
		return nil
	}
}

// Done returns a channel closed when the listener dies permanently outside
// Close — the signal a supervisor watches to restart or fail over instead
// of discovering a silently deaf server.
func (s *Server) Done() <-chan struct{} { return s.dead }

// Metrics exposes the server's operability counters (always non-nil).
func (s *Server) Metrics() *Metrics { return s.metrics }

// MetricsAddr returns the bound address of the HTTP operability sidecar,
// or "" when none was configured.
func (s *Server) MetricsAddr() string {
	if s.msrv == nil {
		return ""
	}
	return s.msrv.ln.Addr().String()
}

// Close stops accepting and waits for in-flight connections, then writes
// a final checkpoint when durability is configured. If the listener had
// already died of a permanent Accept failure, Close reports that failure
// instead of success. Close is safe to call concurrently and repeatedly:
// every call returns the same error after the same fully-drained state.
func (s *Server) Close() error { return s.Shutdown(context.Background()) }

// Shutdown drains the server gracefully: stop accepting, wait (bounded by
// ctx) for in-flight connections and windows to finish folding into the
// aggregator, persist a final checkpoint, and tear the metrics sidecar
// down. A ctx expiry abandons the wait but still reports it — connections
// past the listener close still run to completion in the background.
func (s *Server) Shutdown(ctx context.Context) error {
	s.metrics.draining.Store(true)
	s.closeOnce.Do(func() {
		close(s.closed)
		s.closeErr = s.ln.Close()
	})
	waitErr := s.waitCtx(ctx)
	var ckptErr error
	if waitErr == nil {
		ckptErr = s.finalCheckpoint()
	}
	s.msrv.close()
	if dieErr := s.Err(); dieErr != nil {
		return dieErr
	}
	if waitErr != nil {
		return waitErr
	}
	if ckptErr != nil {
		return ckptErr
	}
	return s.closeErr
}

// waitCtx waits for the connection/loop waitgroup, bounded by ctx.
func (s *Server) waitCtx(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("protocol: shutdown abandoned with connections in flight: %w", ctx.Err())
	}
}

// finalCheckpoint persists the shutdown checkpoint: everything absorbed is
// on disk before the process exits, so a restart resumes the round with
// zero loss. Skipped when checkpointing is off, when nothing changed since
// the last checkpoint, or when the round was already retired by Identify
// (aggregators reject Snapshot after finalization, and a finished round
// has nothing left to recover into).
func (s *Server) finalCheckpoint() error {
	if s.ckpt == nil || s.metrics.identifies.Load() > s.metrics.identifyErrors.Load() {
		return nil
	}
	if s.metrics.CheckpointLag() == 0 &&
		(s.metrics.checkpointSeq.Load() > 0 || s.metrics.reportsAbsorbed.Load() == 0) {
		return nil
	}
	return s.takeCheckpoint()
}

// isTemporary reports whether an Accept error is worth retrying (EMFILE/
// ENFILE-style resource pressure, aborted handshakes). The Temporary
// classification is asserted structurally so custom listeners can
// participate.
func isTemporary(err error) bool {
	var te interface{ Temporary() bool }
	return errors.As(err, &te) && te.Temporary()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	const (
		backoffFloor = 5 * time.Millisecond
		backoffCap   = time.Second
	)
	backoff := time.Duration(0)
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			if isTemporary(err) {
				// Transient failure (e.g. EMFILE under load): back off and
				// keep the listener alive instead of silently killing it.
				backoff *= 2
				if backoff < backoffFloor {
					backoff = backoffFloor
				}
				if backoff > backoffCap {
					backoff = backoffCap
				}
				timer := time.NewTimer(backoff)
				select {
				case <-s.closed:
					timer.Stop()
					return
				case <-timer.C:
				}
				continue
			}
			// Permanent listener death outside Close: surface it.
			s.dieOnce.Do(func() {
				s.diedErr = err
				close(s.dead)
			})
			return
		}
		backoff = 0
		s.metrics.connsAccepted.Add(1)
		s.metrics.connsActive.Add(1)
		s.wg.Add(1)
		go func() {
			defer s.metrics.connsActive.Add(-1)
			defer s.wg.Done()
			defer conn.Close()
			if err := s.handle(conn); err != nil && !errors.Is(err, io.EOF) {
				// Best effort error reply; the connection is about to close.
				// The write deadline keeps a peer that stopped reading (or a
				// dead network path) from pinning this handler — and with it
				// Close/Shutdown, which wait on the handler waitgroup — for
				// the TCP timeout's minutes.
				conn.SetWriteDeadline(time.Now().Add(errReplyTimeout)) //nolint:errcheck // best-effort reply
				fmt.Fprintf(conn, "ERR %v\n", err)
			}
		}()
	}
}

// handle negotiates the protocol ID once per connection, then serves
// commands. cmdReportBatch is pipelined — after its ACK the connection
// loops back for the next command byte, so one connection carries any
// number of mega-batches (and may finish with an identify or snapshot).
// The remaining commands keep their one-shot semantics and end the
// connection.
func (s *Server) handle(conn net.Conn) error {
	br := bufio.NewReader(conn)
	// Connection-time negotiation: the client names the protocol it speaks
	// (or the wildcard for control commands); a mismatch is rejected before
	// any state changes.
	id, err := br.ReadByte()
	if err != nil {
		return err
	}
	if id != proto.IDWildcard && id != s.agg.ProtocolID() {
		if c, ok := proto.Lookup(id); ok {
			return fmt.Errorf("protocol: client speaks %s, server aggregates %s", c.Name, s.codec.Name)
		}
		return fmt.Errorf("protocol: client protocol ID %#02x unknown (server aggregates %s)", id, s.codec.Name)
	}
	for {
		cmd, err := br.ReadByte()
		if err != nil {
			// EOF here is a clean end of a pipelined connection (or an empty
			// one); anything else is a transport failure.
			return err
		}
		switch cmd {
		case cmdReport:
			if err := s.handleReports(br); err != nil {
				return err
			}
			// Ack-coupled durability: when WithCheckpointEvery is armed and
			// this command crossed the threshold, the state is on disk before
			// the acknowledgment below — a failure here is an ERR, not an ack,
			// so the sender retries instead of retiring undurable data.
			if err := s.maybeCheckpointSync(); err != nil {
				return err
			}
			// Acknowledge so the sender knows every frame was absorbed before
			// it returns (SendReports blocks on this byte).
			_, err := conn.Write([]byte{ackByte})
			return err
		case cmdReportBatch:
			if err := s.handleReportBatch(br); err != nil {
				return err
			}
			if err := s.maybeCheckpointSync(); err != nil {
				return err
			}
			if _, err := conn.Write([]byte{ackByte}); err != nil {
				return err
			}
			// Pipelined: loop for the next command on this connection.
		case cmdIdentify:
			return s.handleIdentify(conn)
		case cmdQueryTopK:
			if err := s.handleQueryTopK(conn, br); err != nil {
				return err
			}
			// Pipelined: a monitoring client interleaves queries with report
			// batches on one connection.
		case cmdRound, cmdAdvanceRound:
			if err := s.handleRound(conn, cmd == cmdAdvanceRound); err != nil {
				return err
			}
			// Pipelined: a round driver reads the broadcast, streams the
			// round's batches and advances, all on one connection.
		case cmdSnapshot:
			return s.handleSnapshot(conn)
		case cmdMergeSnapshot:
			return s.handleMergeSnapshot(conn, br)
		default:
			return fmt.Errorf("protocol: unknown command %d", cmd)
		}
	}
}

const ackByte = 0x06

// errReplyTimeout bounds the best-effort ERR reply write on a failing
// connection. A variable so tests can shrink it.
var errReplyTimeout = 2 * time.Second

// handleReports serves the legacy cmdReport stream: fixed-size frames until
// EOF. Frames land in one pooled window buffer (no per-frame allocation);
// short streams absorb per report, bulk streams per window. On any mid-
// stream failure every frame up to the first bad one still counts (the
// valid-prefix contract, identical on the per-report, windowed and tail
// paths) and the remainder of the stream is drained so a sender still
// writing never wedges on a full send buffer before it can read the ERR
// reply.
func (s *Server) handleReports(r io.Reader) error {
	frameLen := s.codec.FrameBytes()
	w := s.windows.Get().(*frameWindow)
	defer s.windows.Put(w)
	frames := 0   // total complete frames read
	pending := 0  // frames buffered in the window, not yet absorbed
	accepted := 0 // reports known absorbed (error paths undercount the valid prefix)
	var streamErr error
	for streamErr == nil {
		if _, err := io.ReadFull(r, w.buf[pending*frameLen:(pending+1)*frameLen]); err != nil {
			if err == io.ErrUnexpectedEOF {
				streamErr = fmt.Errorf("protocol: truncated frame: %w", err)
			} else if !errors.Is(err, io.EOF) {
				streamErr = err
			}
			break
		}
		if frames < shardAfter {
			// Short-stream path: per-report absorption, no window setup. The
			// frame sits in window slot `pending` (always 0 here).
			frames++
			if err := s.agg.Absorb(w.wrs[pending]); err != nil {
				streamErr = err
			} else {
				accepted++
			}
			continue
		}
		frames++
		pending++
		if pending == windowFrames {
			// A full window folds in one AbsorbBatch; an error follows the
			// same valid-prefix semantics as the tail flush below (the batch
			// absorbs every report up to the first invalid one) instead of
			// abandoning the stream with different accounting.
			s.metrics.windowDepth.Add(1)
			if err := s.agg.AbsorbBatch(w.wrs[:pending]); err != nil {
				streamErr = err
			} else {
				accepted += pending
			}
			s.metrics.windowDepth.Add(-1)
			pending = 0
		}
	}
	// Absorb the valid prefix even when the stream went bad mid-flight —
	// every frame that decoded and validated counts, exactly as under the
	// per-report path.
	if pending > 0 {
		s.metrics.windowDepth.Add(1)
		if err := s.agg.AbsorbBatch(w.wrs[:pending]); err != nil {
			if streamErr == nil {
				streamErr = err
			}
		} else {
			accepted += pending
		}
		s.metrics.windowDepth.Add(-1)
	}
	s.metrics.reportsAbsorbed.Add(int64(accepted))
	if streamErr != nil {
		s.metrics.absorbErrors.Add(1)
		// Drain whatever the client is still writing: the stream protocol
		// has no server->client signal before the reply, so a context-free
		// sender mid-write would otherwise wedge against a full send buffer
		// and never reach the ERR line.
		io.Copy(io.Discard, r) //nolint:errcheck // best-effort drain before the ERR reply
	}
	return streamErr
}

// handleReportBatch serves one cmdReportBatch command: a u32 frame count
// followed by exactly that many contiguous fixed-size frames. The count
// makes the body self-delimiting — no EOF handshake — which is what lets
// one connection pipeline many batches. Frames are absorbed window by
// window from the pooled buffer: bounded memory per connection, ~0 heap
// allocations per report. On an absorb failure the declared remainder is
// drained (its exact length is known) before the error reply, so the
// sender never wedges and the valid prefix keeps the same accounting as
// the stream path.
func (s *Server) handleReportBatch(br *bufio.Reader) error {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return fmt.Errorf("protocol: reading batch header: %w", err)
	}
	count := binary.BigEndian.Uint32(hdr[:])
	if count == 0 {
		return nil // an empty batch is a legal no-op (still acknowledged)
	}
	if count > maxBatchFrames {
		return fmt.Errorf("protocol: batch of %d frames exceeds the %d-frame cap", count, maxBatchFrames)
	}
	frameLen := s.codec.FrameBytes()
	w := s.windows.Get().(*frameWindow)
	defer s.windows.Put(w)
	remaining := int(count)
	for remaining > 0 {
		k := remaining
		if k > windowFrames {
			k = windowFrames
		}
		if _, err := io.ReadFull(br, w.buf[:k*frameLen]); err != nil {
			s.metrics.absorbErrors.Add(1)
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return fmt.Errorf("protocol: batch truncated with %d of %d frames outstanding", remaining, count)
			}
			return err
		}
		remaining -= k
		s.metrics.windowDepth.Add(1)
		err := s.agg.AbsorbBatch(w.wrs[:k])
		s.metrics.windowDepth.Add(-1)
		if err != nil {
			// Valid prefix absorbed (AbsorbBatch's contract); discard the
			// declared remainder so the sender finishes its write and reads
			// the ERR reply instead of wedging mid-batch.
			s.metrics.absorbErrors.Add(1)
			io.CopyN(io.Discard, br, int64(remaining)*int64(frameLen)) //nolint:errcheck // best-effort drain
			return err
		}
		s.metrics.reportsAbsorbed.Add(int64(k))
	}
	s.metrics.batchesAbsorbed.Add(1)
	return nil
}

func (s *Server) handleIdentify(conn net.Conn) error {
	// Identification honors no server-side deadline — the client's context
	// bounds how long it waits — but it does honor the client itself: the
	// watcher below cancels the derived context the moment the peer hangs
	// up, so an O~(n) reconstruction never runs on for a caller that is
	// gone. The read is safe as a disconnect probe because the identify
	// protocol sends nothing after the command byte (clients hold the
	// connection open without half-closing until the reply lands), so the
	// only bytes this Read can return precede an EOF or reset.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	watchDone := make(chan struct{})
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer close(watchDone)
		var one [1]byte
		conn.Read(one[:]) //nolint:errcheck // any outcome means the client is done talking
		cancel()
	}()
	// The deferred conn.Close in acceptLoop unblocks the watcher; wait for
	// it here too so the pooled buffers this handler still references are
	// not returned while a goroutine from this connection lives.
	defer func() { cancel(); conn.SetReadDeadline(time.Now()); <-watchDone }() //nolint:errcheck // teardown

	start := time.Now()
	est, err := s.agg.Identify(ctx)
	elapsed := time.Since(start)
	s.metrics.identifies.Add(1)
	s.metrics.identifyNanos.Add(int64(elapsed))
	s.metrics.lastIdentifyNanos.Store(int64(elapsed))
	if err != nil {
		s.metrics.identifyErrors.Add(1)
		return err
	}
	return writeEstimates(conn, est)
}

// writeEstimates renders the estimate-list reply shared by identify and
// top-k queries: u32 count, then per estimate a u16 item length, the item
// bytes and the count's IEEE 754 bits (bit-identical float64 on the far
// side). Validation runs before the first write: once the count header is
// on the wire the reply can only be completed, not turned into an ERR line.
func writeEstimates(conn net.Conn, est []proto.Estimate) error {
	for _, e := range est {
		if len(e.Item) > 0xffff {
			return fmt.Errorf("protocol: estimate item of %d bytes does not fit the reply frame", len(e.Item))
		}
	}
	bw := bufio.NewWriter(conn)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(est)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	for _, e := range est {
		var lenb [2]byte
		binary.BigEndian.PutUint16(lenb[:], uint16(len(e.Item)))
		if _, err := bw.Write(lenb[:]); err != nil {
			return err
		}
		if _, err := bw.Write(e.Item); err != nil {
			return err
		}
		var cnt [8]byte
		binary.BigEndian.PutUint64(cnt[:], math.Float64bits(e.Count))
		if _, err := bw.Write(cnt[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// handleQueryTopK serves one continuous top-k query: a u32 k (0 asks for
// the aggregator's configured size) answered with the estimate-list framing
// identify uses, against the live structure — the stream is not retired and
// the connection loops for the next command, so a monitor can interleave
// queries with ingest batches. Only aggregators with the
// proto.ContinuousQuerier capability answer; others get an ERR reply.
func (s *Server) handleQueryTopK(conn net.Conn, br *bufio.Reader) error {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return fmt.Errorf("protocol: reading top-k request: %w", err)
	}
	cq, ok := proto.AsContinuousQuerier(s.agg)
	if !ok {
		s.metrics.topkQueryErrors.Add(1)
		return fmt.Errorf("protocol: %s does not answer continuous top-k queries", s.codec.Name)
	}
	k := binary.BigEndian.Uint32(hdr[:])
	if k > maxTopK {
		s.metrics.topkQueryErrors.Add(1)
		return fmt.Errorf("protocol: implausible top-k request %d", k)
	}
	est, err := cq.QueryTopK(context.Background(), int(k))
	if err != nil {
		s.metrics.topkQueryErrors.Add(1)
		return err
	}
	s.metrics.topkQueries.Add(1)
	return writeEstimates(conn, est)
}

// maxTopK caps one query's answer size, keeping a hostile k header from
// provoking a domain-sized reply allocation.
const maxTopK = 1 << 20

// handleRound serves the interactive-protocol commands: cmdRound replies
// with the open round's broadcast state (the candidate-prefix set devices
// report against), cmdAdvanceRound finalizes the open round, opens the next
// one and replies with the new state. Only aggregators with the
// proto.Interactive capability answer; others get an ERR reply.
//
// A round transition is a durable commit point: when checkpointing is
// configured, the advanced state is on disk before the reply goes out, so a
// crash after the broadcast can never resurrect an already-closed round and
// re-spend its group's reports.
func (s *Server) handleRound(conn net.Conn, advance bool) error {
	it, ok := proto.AsInteractive(s.agg)
	if !ok {
		s.metrics.roundErrors.Add(1)
		return fmt.Errorf("protocol: %s is not an interactive (multi-round) protocol", s.codec.Name)
	}
	var rs proto.RoundState
	if advance {
		var err error
		if rs, err = it.AdvanceRound(); err != nil {
			s.metrics.roundErrors.Add(1)
			return err
		}
		s.metrics.roundsAdvanced.Add(1)
		if s.ckpt != nil {
			// The transition persists synchronously before the broadcast
			// (engine snapshots serialize done states too, so even the final
			// advance is recoverable).
			if err := s.takeCheckpoint(); err != nil {
				return err
			}
		}
	} else {
		rs = it.RoundState()
	}
	blob := proto.EncodeRoundState(rs)
	if len(blob) > maxSnapshotBytes {
		return fmt.Errorf("protocol: round state of %d bytes exceeds transfer cap", len(blob))
	}
	bw := bufio.NewWriter(conn)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(blob)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := bw.Write(blob); err != nil {
		return err
	}
	return bw.Flush()
}

// mergeable returns the aggregator's snapshot capability or an error for
// the ERR reply when the protocol cannot snapshot.
func (s *Server) mergeable() (proto.Mergeable, error) {
	m, ok := proto.AsMergeable(s.agg)
	if !ok {
		return nil, fmt.Errorf("protocol: %s does not support snapshots", s.codec.Name)
	}
	return m, nil
}

// handleSnapshot serializes the aggregator's accumulated state and streams
// it back as a u32 length prefix plus the blob. Reports absorbed after the
// internal Snapshot call are simply not in this checkpoint; they remain in
// this aggregator's state and reach the root in a later snapshot or not at
// all — the transfer itself is consistent at one instant because Snapshot
// runs under the aggregator's lock.
func (s *Server) handleSnapshot(conn net.Conn) error {
	m, err := s.mergeable()
	if err != nil {
		return err
	}
	snap, err := m.Snapshot()
	if err != nil {
		return err
	}
	if len(snap) > maxSnapshotBytes {
		return fmt.Errorf("protocol: snapshot of %d bytes exceeds transfer cap", len(snap))
	}
	s.metrics.snapshotsServed.Add(1)
	bw := bufio.NewWriter(conn)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(snap)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := bw.Write(snap); err != nil {
		return err
	}
	return bw.Flush()
}

// handleMergeSnapshot reads a length-prefixed snapshot blob from a child
// aggregator and folds it into the server state, acknowledging with the
// same byte report streams use so the child knows its state was absorbed
// before it retires the data.
func (s *Server) handleMergeSnapshot(conn net.Conn, br *bufio.Reader) error {
	m, err := s.mergeable()
	if err != nil {
		return err
	}
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return fmt.Errorf("protocol: reading snapshot length: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxSnapshotBytes {
		return fmt.Errorf("protocol: snapshot length %d exceeds transfer cap", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return fmt.Errorf("protocol: reading snapshot body: %w", err)
	}
	before := s.agg.TotalReports()
	if err := m.MergeSnapshot(buf); err != nil {
		s.metrics.absorbErrors.Add(1)
		return err
	}
	s.metrics.mergesAbsorbed.Add(1)
	s.metrics.reportsAbsorbed.Add(int64(s.agg.TotalReports() - before))
	if err := s.maybeCheckpointSync(); err != nil {
		return err
	}
	_, err = conn.Write([]byte{ackByte})
	return err
}
