package protocol

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"time"

	"ldphh/internal/core"
	"ldphh/internal/proto"
)

// Commands on the control byte that follows the protocol-ID byte opening
// every connection.
const (
	cmdReport        = 0x01 // followed by a stream of report frames until EOF
	cmdIdentify      = 0x02 // triggers identification; reply is the estimate list
	cmdSnapshot      = 0x03 // stream my accumulated state out (length-prefixed blob)
	cmdMergeSnapshot = 0x04 // absorb a child aggregator's state (length-prefixed blob)
	cmdReportBatch   = 0x05 // u32 frame count + that many contiguous frames; pipelined
)

// maxSnapshotBytes bounds the length prefix either side of a snapshot
// transfer will honor. It caps allocation from a hostile peer and keeps the
// prefix unambiguous against the textual "ERR " failure reply (whose first
// four bytes read as ~1.16e9, above this cap).
const maxSnapshotBytes = 1 << 30

// Server aggregates LDP reports over TCP into any proto.Aggregator. One
// Server serves one collection round for one protocol; the protocol ID is
// negotiated (verified) at connection time and revalidated on every
// self-describing report frame.
//
// Ingestion is sharded: a report connection that proves to be bulk (more
// than shardAfter frames) buffers frames into windows handed to the
// aggregator's AbsorbBatch — one lock acquisition (for PES, one private
// accumulator merge) per window instead of one per report, so concurrent
// senders never contend on the aggregator per report. Short streams (a
// device delivering its single report) skip the window entirely and take
// the per-report Absorb path, which is cheaper than batch setup for a
// handful of frames.
//
// The hot ingest path is allocation-free per report: frames land in pooled
// fixed-size window buffers (one buffer per in-flight connection window,
// pre-sliced into WireReport views), so the steady-state batch path costs
// ~0 heap allocations per report — see TestBatchDecodeAllocs for the pin.
// Memory per connection is bounded by one window; a sender that outruns
// absorption is parked by TCP flow control rather than buffered without
// bound.
//
// Aggregators that additionally implement proto.Mergeable (capability
// detected at runtime) answer the snapshot/merge commands that compose
// servers into fan-in trees; others reject those commands with an ERR
// reply.
type Server struct {
	agg   proto.Aggregator
	codec proto.Codec
	pes   *core.Protocol // non-nil only for the legacy PES constructor

	ln     net.Listener
	wg     sync.WaitGroup
	closed chan struct{}

	windows sync.Pool // *frameWindow sized for this codec's frames

	// Permanent listener death outside Close: dieOnce records the fatal
	// Accept error and closes dead so operators can watch for it (Err,
	// Done) instead of discovering a silently deaf server.
	dieOnce sync.Once
	dead    chan struct{}
	diedErr error
}

const (
	// shardAfter is the stream length at which a connection graduates from
	// per-report locked absorption to windowed batch absorption.
	shardAfter = 256
	// windowFrames bounds how many frames a connection buffers before
	// folding into the aggregator: the per-connection memory ceiling and
	// the unit of backpressure (a sender is parked by TCP flow control
	// while its window absorbs). An aborted connection loses at most one
	// partial window. 4Ki frames keeps a pooled window at ~64 KiB; this
	// presumes AbsorbBatch costs O(batch) per call (PES absorbs under one
	// mutex acquisition rather than merging a sketch-sized accumulator
	// copy, which at n = 10^6 would dominate ingest at this granularity).
	windowFrames = 4096
	// maxBatchFrames caps the frame count one cmdReportBatch command may
	// declare, bounding how long a single command can monopolize a
	// connection handler and keeping a hostile count header from looking
	// plausible. Larger ingests pipeline multiple batch commands on one
	// connection.
	maxBatchFrames = 1 << 22
)

// frameWindow is one pooled read window: a contiguous frame buffer plus the
// aliasing WireReport views, sliced once at construction so the hot loop
// never re-slices (and never allocates) per frame or per window.
type frameWindow struct {
	buf []byte
	wrs []proto.WireReport
}

func newFrameWindow(frameLen int) *frameWindow {
	w := &frameWindow{
		buf: make([]byte, windowFrames*frameLen),
		wrs: make([]proto.WireReport, windowFrames),
	}
	for i := range w.wrs {
		w.wrs[i] = proto.WireReport(w.buf[i*frameLen : (i+1)*frameLen])
	}
	return w
}

// NewServer constructs a PrivateExpanderSketch server around a fresh
// protocol with the given parameters and starts listening on addr (use
// "127.0.0.1:0" for tests). params.Workers sizes the Identify worker pool;
// the identification reply is bit-identical at any worker count, so
// operators can tune it per deployment without coordinating clients.
func NewServer(params core.Params, addr string) (*Server, error) {
	pr, err := core.New(params)
	if err != nil {
		return nil, err
	}
	s, err := NewGenericServer(pr.Wire(), addr)
	if err != nil {
		return nil, err
	}
	s.pes = pr
	return s, nil
}

// NewGenericServer constructs a server around any aggregator and starts
// listening on addr. The aggregator's protocol must have a registered wire
// codec (every protocol in the repository registers one at init).
func NewGenericServer(agg proto.Aggregator, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s, err := ServeListener(agg, ln)
	if err != nil {
		ln.Close()
		return nil, err
	}
	return s, nil
}

// ServeListener constructs a server around any aggregator on an existing
// listener, which the server takes ownership of (Close closes it). It is
// the injection point for custom listeners — tests wrap a faulty one to
// exercise accept-loop resilience; deployments can hand in a TLS listener.
func ServeListener(agg proto.Aggregator, ln net.Listener) (*Server, error) {
	codec, ok := proto.Lookup(agg.ProtocolID())
	if !ok {
		return nil, fmt.Errorf("protocol: aggregator protocol ID %#02x has no registered codec", agg.ProtocolID())
	}
	s := &Server{
		agg:    agg,
		codec:  codec,
		ln:     ln,
		closed: make(chan struct{}),
		dead:   make(chan struct{}),
	}
	frameLen := codec.FrameBytes()
	s.windows.New = func() any { return newFrameWindow(frameLen) }
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Aggregator exposes the aggregator this server feeds.
func (s *Server) Aggregator() proto.Aggregator { return s.agg }

// Protocol exposes the underlying PES protocol (public randomness for
// clients) when the server was built with NewServer; it is nil for servers
// around other aggregators.
func (s *Server) Protocol() *core.Protocol { return s.pes }

// Absorbed returns the number of reports accepted so far.
func (s *Server) Absorbed() int { return s.agg.TotalReports() }

// Err reports why the server stopped accepting, if it did: nil while the
// listener is healthy (or was shut down by Close), the fatal Accept error
// after a permanent listener failure.
func (s *Server) Err() error {
	select {
	case <-s.dead:
		return s.diedErr
	default:
		return nil
	}
}

// Done returns a channel closed when the listener dies permanently outside
// Close — the signal a supervisor watches to restart or fail over instead
// of discovering a silently deaf server.
func (s *Server) Done() <-chan struct{} { return s.dead }

// Close stops accepting and waits for in-flight connections. If the
// listener had already died of a permanent Accept failure, Close reports
// that failure instead of success.
func (s *Server) Close() error {
	select {
	case <-s.closed:
	default:
		close(s.closed)
	}
	err := s.ln.Close()
	s.wg.Wait()
	if dieErr := s.Err(); dieErr != nil {
		return dieErr
	}
	return err
}

// isTemporary reports whether an Accept error is worth retrying (EMFILE/
// ENFILE-style resource pressure, aborted handshakes). The Temporary
// classification is asserted structurally so custom listeners can
// participate.
func isTemporary(err error) bool {
	var te interface{ Temporary() bool }
	return errors.As(err, &te) && te.Temporary()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	const (
		backoffFloor = 5 * time.Millisecond
		backoffCap   = time.Second
	)
	backoff := time.Duration(0)
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			if isTemporary(err) {
				// Transient failure (e.g. EMFILE under load): back off and
				// keep the listener alive instead of silently killing it.
				backoff *= 2
				if backoff < backoffFloor {
					backoff = backoffFloor
				}
				if backoff > backoffCap {
					backoff = backoffCap
				}
				timer := time.NewTimer(backoff)
				select {
				case <-s.closed:
					timer.Stop()
					return
				case <-timer.C:
				}
				continue
			}
			// Permanent listener death outside Close: surface it.
			s.dieOnce.Do(func() {
				s.diedErr = err
				close(s.dead)
			})
			return
		}
		backoff = 0
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			if err := s.handle(conn); err != nil && !errors.Is(err, io.EOF) {
				// Best effort error reply; the connection is about to close.
				fmt.Fprintf(conn, "ERR %v\n", err)
			}
		}()
	}
}

// handle negotiates the protocol ID once per connection, then serves
// commands. cmdReportBatch is pipelined — after its ACK the connection
// loops back for the next command byte, so one connection carries any
// number of mega-batches (and may finish with an identify or snapshot).
// The remaining commands keep their one-shot semantics and end the
// connection.
func (s *Server) handle(conn net.Conn) error {
	br := bufio.NewReader(conn)
	// Connection-time negotiation: the client names the protocol it speaks
	// (or the wildcard for control commands); a mismatch is rejected before
	// any state changes.
	id, err := br.ReadByte()
	if err != nil {
		return err
	}
	if id != proto.IDWildcard && id != s.agg.ProtocolID() {
		if c, ok := proto.Lookup(id); ok {
			return fmt.Errorf("protocol: client speaks %s, server aggregates %s", c.Name, s.codec.Name)
		}
		return fmt.Errorf("protocol: client protocol ID %#02x unknown (server aggregates %s)", id, s.codec.Name)
	}
	for {
		cmd, err := br.ReadByte()
		if err != nil {
			// EOF here is a clean end of a pipelined connection (or an empty
			// one); anything else is a transport failure.
			return err
		}
		switch cmd {
		case cmdReport:
			if err := s.handleReports(br); err != nil {
				return err
			}
			// Acknowledge so the sender knows every frame was absorbed before
			// it returns (SendReports blocks on this byte).
			_, err := conn.Write([]byte{ackByte})
			return err
		case cmdReportBatch:
			if err := s.handleReportBatch(br); err != nil {
				return err
			}
			if _, err := conn.Write([]byte{ackByte}); err != nil {
				return err
			}
			// Pipelined: loop for the next command on this connection.
		case cmdIdentify:
			return s.handleIdentify(conn)
		case cmdSnapshot:
			return s.handleSnapshot(conn)
		case cmdMergeSnapshot:
			return s.handleMergeSnapshot(conn, br)
		default:
			return fmt.Errorf("protocol: unknown command %d", cmd)
		}
	}
}

const ackByte = 0x06

// handleReports serves the legacy cmdReport stream: fixed-size frames until
// EOF. Frames land in one pooled window buffer (no per-frame allocation);
// short streams absorb per report, bulk streams per window. On any mid-
// stream failure every frame up to the first bad one still counts (the
// valid-prefix contract, identical on the per-report, windowed and tail
// paths) and the remainder of the stream is drained so a sender still
// writing never wedges on a full send buffer before it can read the ERR
// reply.
func (s *Server) handleReports(r io.Reader) error {
	frameLen := s.codec.FrameBytes()
	w := s.windows.Get().(*frameWindow)
	defer s.windows.Put(w)
	frames := 0  // total complete frames read
	pending := 0 // frames buffered in the window, not yet absorbed
	var streamErr error
	for streamErr == nil {
		if _, err := io.ReadFull(r, w.buf[pending*frameLen:(pending+1)*frameLen]); err != nil {
			if err == io.ErrUnexpectedEOF {
				streamErr = fmt.Errorf("protocol: truncated frame: %w", err)
			} else if !errors.Is(err, io.EOF) {
				streamErr = err
			}
			break
		}
		if frames < shardAfter {
			// Short-stream path: per-report absorption, no window setup. The
			// frame sits in window slot `pending` (always 0 here).
			frames++
			if err := s.agg.Absorb(w.wrs[pending]); err != nil {
				streamErr = err
			}
			continue
		}
		frames++
		pending++
		if pending == windowFrames {
			// A full window folds in one AbsorbBatch; an error follows the
			// same valid-prefix semantics as the tail flush below (the batch
			// absorbs every report up to the first invalid one) instead of
			// abandoning the stream with different accounting.
			if err := s.agg.AbsorbBatch(w.wrs[:pending]); err != nil {
				streamErr = err
			}
			pending = 0
		}
	}
	// Absorb the valid prefix even when the stream went bad mid-flight —
	// every frame that decoded and validated counts, exactly as under the
	// per-report path.
	if pending > 0 {
		if err := s.agg.AbsorbBatch(w.wrs[:pending]); err != nil && streamErr == nil {
			streamErr = err
		}
	}
	if streamErr != nil {
		// Drain whatever the client is still writing: the stream protocol
		// has no server->client signal before the reply, so a context-free
		// sender mid-write would otherwise wedge against a full send buffer
		// and never reach the ERR line.
		io.Copy(io.Discard, r) //nolint:errcheck // best-effort drain before the ERR reply
	}
	return streamErr
}

// handleReportBatch serves one cmdReportBatch command: a u32 frame count
// followed by exactly that many contiguous fixed-size frames. The count
// makes the body self-delimiting — no EOF handshake — which is what lets
// one connection pipeline many batches. Frames are absorbed window by
// window from the pooled buffer: bounded memory per connection, ~0 heap
// allocations per report. On an absorb failure the declared remainder is
// drained (its exact length is known) before the error reply, so the
// sender never wedges and the valid prefix keeps the same accounting as
// the stream path.
func (s *Server) handleReportBatch(br *bufio.Reader) error {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return fmt.Errorf("protocol: reading batch header: %w", err)
	}
	count := binary.BigEndian.Uint32(hdr[:])
	if count == 0 {
		return nil // an empty batch is a legal no-op (still acknowledged)
	}
	if count > maxBatchFrames {
		return fmt.Errorf("protocol: batch of %d frames exceeds the %d-frame cap", count, maxBatchFrames)
	}
	frameLen := s.codec.FrameBytes()
	w := s.windows.Get().(*frameWindow)
	defer s.windows.Put(w)
	remaining := int(count)
	for remaining > 0 {
		k := remaining
		if k > windowFrames {
			k = windowFrames
		}
		if _, err := io.ReadFull(br, w.buf[:k*frameLen]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return fmt.Errorf("protocol: batch truncated with %d of %d frames outstanding", remaining, count)
			}
			return err
		}
		remaining -= k
		if err := s.agg.AbsorbBatch(w.wrs[:k]); err != nil {
			// Valid prefix absorbed (AbsorbBatch's contract); discard the
			// declared remainder so the sender finishes its write and reads
			// the ERR reply instead of wedging mid-batch.
			io.CopyN(io.Discard, br, int64(remaining)*int64(frameLen)) //nolint:errcheck // best-effort drain
			return err
		}
	}
	return nil
}

func (s *Server) handleIdentify(conn net.Conn) error {
	// The aggregator finalizes itself; identification honors no deadline on
	// the server side — the client's context bounds how long it waits.
	est, err := s.agg.Identify(context.Background())
	if err != nil {
		return err
	}
	// Validate before the first write: once the count header is on the wire
	// the reply can only be completed, not turned into an ERR line.
	for _, e := range est {
		if len(e.Item) > 0xffff {
			return fmt.Errorf("protocol: estimate item of %d bytes does not fit the reply frame", len(e.Item))
		}
	}
	bw := bufio.NewWriter(conn)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(est)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	for _, e := range est {
		var lenb [2]byte
		binary.BigEndian.PutUint16(lenb[:], uint16(len(e.Item)))
		if _, err := bw.Write(lenb[:]); err != nil {
			return err
		}
		if _, err := bw.Write(e.Item); err != nil {
			return err
		}
		var cnt [8]byte
		binary.BigEndian.PutUint64(cnt[:], math.Float64bits(e.Count))
		if _, err := bw.Write(cnt[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// mergeable returns the aggregator's snapshot capability or an error for
// the ERR reply when the protocol cannot snapshot.
func (s *Server) mergeable() (proto.Mergeable, error) {
	m, ok := proto.AsMergeable(s.agg)
	if !ok {
		return nil, fmt.Errorf("protocol: %s does not support snapshots", s.codec.Name)
	}
	return m, nil
}

// handleSnapshot serializes the aggregator's accumulated state and streams
// it back as a u32 length prefix plus the blob. Reports absorbed after the
// internal Snapshot call are simply not in this checkpoint; they remain in
// this aggregator's state and reach the root in a later snapshot or not at
// all — the transfer itself is consistent at one instant because Snapshot
// runs under the aggregator's lock.
func (s *Server) handleSnapshot(conn net.Conn) error {
	m, err := s.mergeable()
	if err != nil {
		return err
	}
	snap, err := m.Snapshot()
	if err != nil {
		return err
	}
	if len(snap) > maxSnapshotBytes {
		return fmt.Errorf("protocol: snapshot of %d bytes exceeds transfer cap", len(snap))
	}
	bw := bufio.NewWriter(conn)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(snap)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := bw.Write(snap); err != nil {
		return err
	}
	return bw.Flush()
}

// handleMergeSnapshot reads a length-prefixed snapshot blob from a child
// aggregator and folds it into the server state, acknowledging with the
// same byte report streams use so the child knows its state was absorbed
// before it retires the data.
func (s *Server) handleMergeSnapshot(conn net.Conn, br *bufio.Reader) error {
	m, err := s.mergeable()
	if err != nil {
		return err
	}
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return fmt.Errorf("protocol: reading snapshot length: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxSnapshotBytes {
		return fmt.Errorf("protocol: snapshot length %d exceeds transfer cap", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return fmt.Errorf("protocol: reading snapshot body: %w", err)
	}
	if err := m.MergeSnapshot(buf); err != nil {
		return err
	}
	_, err = conn.Write([]byte{ackByte})
	return err
}
