package protocol

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"

	"ldphh/internal/core"
	"ldphh/internal/proto"
)

// Commands on the control byte that follows the protocol-ID byte opening
// every connection.
const (
	cmdReport        = 0x01 // followed by a stream of report frames until EOF
	cmdIdentify      = 0x02 // triggers identification; reply is the estimate list
	cmdSnapshot      = 0x03 // stream my accumulated state out (length-prefixed blob)
	cmdMergeSnapshot = 0x04 // absorb a child aggregator's state (length-prefixed blob)
)

// maxSnapshotBytes bounds the length prefix either side of a snapshot
// transfer will honor. It caps allocation from a hostile peer and keeps the
// prefix unambiguous against the textual "ERR " failure reply (whose first
// four bytes read as ~1.16e9, above this cap).
const maxSnapshotBytes = 1 << 30

// Server aggregates LDP reports over TCP into any proto.Aggregator. One
// Server serves one collection round for one protocol; the protocol ID is
// negotiated (verified) at connection time and revalidated on every
// self-describing report frame.
//
// Ingestion is sharded: a report connection that proves to be bulk (more
// than shardAfter frames) buffers frames into windows handed to the
// aggregator's AbsorbBatch — one lock acquisition (for PES, one private
// accumulator merge) per window instead of one per report, so concurrent
// senders never contend on the aggregator per report. Short streams (a
// device delivering its single report) skip the window entirely and take
// the per-report Absorb path, which is cheaper than batch setup for a
// handful of frames.
//
// Aggregators that additionally implement proto.Mergeable (capability
// detected at runtime) answer the snapshot/merge commands that compose
// servers into fan-in trees; others reject those commands with an ERR
// reply.
type Server struct {
	agg   proto.Aggregator
	codec proto.Codec
	pes   *core.Protocol // non-nil only for the legacy PES constructor

	ln     net.Listener
	wg     sync.WaitGroup
	closed chan struct{}
}

const (
	// shardAfter is the stream length at which a connection graduates from
	// per-report locked absorption to windowed batch absorption.
	shardAfter = 256
	// mergeEvery bounds how many frames a connection buffers before folding
	// into the aggregator, so TotalReports tracks long-lived streams and an
	// aborted connection loses at most one partial window.
	mergeEvery = 1 << 16
)

// NewServer constructs a PrivateExpanderSketch server around a fresh
// protocol with the given parameters and starts listening on addr (use
// "127.0.0.1:0" for tests). params.Workers sizes the Identify worker pool;
// the identification reply is bit-identical at any worker count, so
// operators can tune it per deployment without coordinating clients.
func NewServer(params core.Params, addr string) (*Server, error) {
	pr, err := core.New(params)
	if err != nil {
		return nil, err
	}
	s, err := NewGenericServer(pr.Wire(), addr)
	if err != nil {
		return nil, err
	}
	s.pes = pr
	return s, nil
}

// NewGenericServer constructs a server around any aggregator and starts
// listening on addr. The aggregator's protocol must have a registered wire
// codec (every protocol in the repository registers one at init).
func NewGenericServer(agg proto.Aggregator, addr string) (*Server, error) {
	codec, ok := proto.Lookup(agg.ProtocolID())
	if !ok {
		return nil, fmt.Errorf("protocol: aggregator protocol ID %#02x has no registered codec", agg.ProtocolID())
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{agg: agg, codec: codec, ln: ln, closed: make(chan struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Aggregator exposes the aggregator this server feeds.
func (s *Server) Aggregator() proto.Aggregator { return s.agg }

// Protocol exposes the underlying PES protocol (public randomness for
// clients) when the server was built with NewServer; it is nil for servers
// around other aggregators.
func (s *Server) Protocol() *core.Protocol { return s.pes }

// Absorbed returns the number of reports accepted so far.
func (s *Server) Absorbed() int { return s.agg.TotalReports() }

// Close stops accepting and waits for in-flight connections.
func (s *Server) Close() error {
	select {
	case <-s.closed:
	default:
		close(s.closed)
	}
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				// Listener failure outside Close: stop accepting.
				return
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			if err := s.handle(conn); err != nil && !errors.Is(err, io.EOF) {
				// Best effort error reply; the connection is about to close.
				fmt.Fprintf(conn, "ERR %v\n", err)
			}
		}()
	}
}

func (s *Server) handle(conn net.Conn) error {
	br := bufio.NewReader(conn)
	// Connection-time negotiation: the client names the protocol it speaks
	// (or the wildcard for control commands); a mismatch is rejected before
	// any state changes.
	id, err := br.ReadByte()
	if err != nil {
		return err
	}
	if id != proto.IDWildcard && id != s.agg.ProtocolID() {
		if c, ok := proto.Lookup(id); ok {
			return fmt.Errorf("protocol: client speaks %s, server aggregates %s", c.Name, s.codec.Name)
		}
		return fmt.Errorf("protocol: client protocol ID %#02x unknown (server aggregates %s)", id, s.codec.Name)
	}
	cmd, err := br.ReadByte()
	if err != nil {
		return err
	}
	switch cmd {
	case cmdReport:
		if err := s.handleReports(br); err != nil {
			return err
		}
		// Acknowledge so the sender knows every frame was absorbed before it
		// returns (SendReports blocks on this byte).
		_, err := conn.Write([]byte{ackByte})
		return err
	case cmdIdentify:
		return s.handleIdentify(conn)
	case cmdSnapshot:
		return s.handleSnapshot(conn)
	case cmdMergeSnapshot:
		return s.handleMergeSnapshot(conn, br)
	default:
		return fmt.Errorf("protocol: unknown command %d", cmd)
	}
}

const ackByte = 0x06

func (s *Server) handleReports(r io.Reader) error {
	frameLen := s.codec.FrameBytes()
	frames := 0
	var window []proto.WireReport
	var streamErr error
	for streamErr == nil {
		buf := make([]byte, frameLen)
		if _, err := io.ReadFull(r, buf); err != nil {
			if err == io.ErrUnexpectedEOF {
				streamErr = fmt.Errorf("protocol: truncated frame: %w", err)
			} else if !errors.Is(err, io.EOF) {
				streamErr = err
			}
			break
		}
		wr := proto.WireReport(buf)
		if frames < shardAfter {
			// Short-stream path: per-report absorption, no window setup.
			frames++
			if err := s.agg.Absorb(wr); err != nil {
				streamErr = err
			}
			continue
		}
		window = append(window, wr)
		if len(window) >= mergeEvery {
			if err := s.agg.AbsorbBatch(window); err != nil {
				return err
			}
			window = window[:0]
		}
	}
	// Absorb the valid prefix even when the stream went bad mid-flight —
	// every frame that decoded and validated counts, exactly as under the
	// per-report path.
	if len(window) > 0 {
		if err := s.agg.AbsorbBatch(window); err != nil {
			if streamErr == nil {
				streamErr = err
			}
		}
	}
	return streamErr
}

func (s *Server) handleIdentify(conn net.Conn) error {
	// The aggregator finalizes itself; identification honors no deadline on
	// the server side — the client's context bounds how long it waits.
	est, err := s.agg.Identify(context.Background())
	if err != nil {
		return err
	}
	// Validate before the first write: once the count header is on the wire
	// the reply can only be completed, not turned into an ERR line.
	for _, e := range est {
		if len(e.Item) > 0xffff {
			return fmt.Errorf("protocol: estimate item of %d bytes does not fit the reply frame", len(e.Item))
		}
	}
	bw := bufio.NewWriter(conn)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(est)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	for _, e := range est {
		var lenb [2]byte
		binary.BigEndian.PutUint16(lenb[:], uint16(len(e.Item)))
		if _, err := bw.Write(lenb[:]); err != nil {
			return err
		}
		if _, err := bw.Write(e.Item); err != nil {
			return err
		}
		var cnt [8]byte
		binary.BigEndian.PutUint64(cnt[:], math.Float64bits(e.Count))
		if _, err := bw.Write(cnt[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// mergeable returns the aggregator's snapshot capability or an error for
// the ERR reply when the protocol cannot snapshot.
func (s *Server) mergeable() (proto.Mergeable, error) {
	m, ok := proto.AsMergeable(s.agg)
	if !ok {
		return nil, fmt.Errorf("protocol: %s does not support snapshots", s.codec.Name)
	}
	return m, nil
}

// handleSnapshot serializes the aggregator's accumulated state and streams
// it back as a u32 length prefix plus the blob. Reports absorbed after the
// internal Snapshot call are simply not in this checkpoint; they remain in
// this aggregator's state and reach the root in a later snapshot or not at
// all — the transfer itself is consistent at one instant because Snapshot
// runs under the aggregator's lock.
func (s *Server) handleSnapshot(conn net.Conn) error {
	m, err := s.mergeable()
	if err != nil {
		return err
	}
	snap, err := m.Snapshot()
	if err != nil {
		return err
	}
	if len(snap) > maxSnapshotBytes {
		return fmt.Errorf("protocol: snapshot of %d bytes exceeds transfer cap", len(snap))
	}
	bw := bufio.NewWriter(conn)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(snap)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := bw.Write(snap); err != nil {
		return err
	}
	return bw.Flush()
}

// handleMergeSnapshot reads a length-prefixed snapshot blob from a child
// aggregator and folds it into the server state, acknowledging with the
// same byte report streams use so the child knows its state was absorbed
// before it retires the data.
func (s *Server) handleMergeSnapshot(conn net.Conn, br *bufio.Reader) error {
	m, err := s.mergeable()
	if err != nil {
		return err
	}
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return fmt.Errorf("protocol: reading snapshot length: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxSnapshotBytes {
		return fmt.Errorf("protocol: snapshot length %d exceeds transfer cap", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return fmt.Errorf("protocol: reading snapshot body: %w", err)
	}
	if err := m.MergeSnapshot(buf); err != nil {
		return err
	}
	_, err = conn.Write([]byte{ackByte})
	return err
}
