package protocol

import (
	"math/rand/v2"
	"testing"

	"ldphh/internal/core"
)

// TestFrameSizePinnedToBytesPerReport pins the three places a report's wire
// size is spoken for — the shared payload constant, the frame encoder's
// actual output, and the Table 1 communication metric — to one value.
// BytesPerReport is the payload (comparable with the baselines, which also
// report framing-free sizes); the TCP frame adds exactly the 1-byte
// version. A drift in any of them (the historical bug: the two constants
// were written down independently) fails here.
func TestFrameSizePinnedToBytesPerReport(t *testing.T) {
	if FrameSize != 1+core.ReportPayloadBytes {
		t.Fatalf("FrameSize = %d, want 1 + core.ReportPayloadBytes = %d", FrameSize, 1+core.ReportPayloadBytes)
	}
	p, err := core.New(core.Params{Eps: 2, N: 1000, ItemBytes: 4, Y: 16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.BytesPerReport(); got != core.ReportPayloadBytes {
		t.Fatalf("BytesPerReport() = %d, core.ReportPayloadBytes = %d", got, core.ReportPayloadBytes)
	}
	rep, err := p.Report([]byte{1, 2, 3, 4}, 0, rand.New(rand.NewPCG(1, 2)))
	if err != nil {
		t.Fatal(err)
	}
	buf, err := EncodeReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != p.BytesPerReport()+1 {
		t.Fatalf("encoded frame is %d bytes, want payload %d + 1 version byte", len(buf), p.BytesPerReport())
	}
	if len(buf) != FrameSize {
		t.Fatalf("encoded frame is %d bytes, FrameSize = %d", len(buf), FrameSize)
	}
}
