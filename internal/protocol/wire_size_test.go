package protocol

import (
	"math/rand/v2"
	"testing"

	"ldphh/internal/core"
	"ldphh/internal/proto"
)

// TestFrameSizePinnedToBytesPerReport pins the three places a report's wire
// size is spoken for — the shared payload constant, the frame encoder's
// actual output, and the Table 1 communication metric — to one value.
// BytesPerReport is the payload (comparable with the baselines, which also
// report framing-free sizes); the wire frame adds exactly the 2-byte
// [protocol ID][codec version] header every protocol's reports carry. A
// drift in any of them (the historical bug: the two constants were written
// down independently) fails here.
func TestFrameSizePinnedToBytesPerReport(t *testing.T) {
	if FrameSize != 2+core.ReportPayloadBytes {
		t.Fatalf("FrameSize = %d, want 2 + core.ReportPayloadBytes = %d", FrameSize, 2+core.ReportPayloadBytes)
	}
	codec, ok := proto.Lookup(proto.IDPrivateExpanderSketch)
	if !ok {
		t.Fatal("PES codec not registered")
	}
	if codec.FrameBytes() != FrameSize {
		t.Fatalf("registry frame size %d, FrameSize = %d", codec.FrameBytes(), FrameSize)
	}
	if codec.PayloadBytes != core.ReportPayloadBytes {
		t.Fatalf("registry payload %d, core.ReportPayloadBytes = %d", codec.PayloadBytes, core.ReportPayloadBytes)
	}
	p, err := core.New(core.Params{Eps: 2, N: 1000, ItemBytes: 4, Y: 16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.BytesPerReport(); got != core.ReportPayloadBytes {
		t.Fatalf("BytesPerReport() = %d, core.ReportPayloadBytes = %d", got, core.ReportPayloadBytes)
	}
	rep, err := p.Report([]byte{1, 2, 3, 4}, 0, rand.New(rand.NewPCG(1, 2)))
	if err != nil {
		t.Fatal(err)
	}
	buf, err := EncodeReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != p.BytesPerReport()+2 {
		t.Fatalf("encoded frame is %d bytes, want payload %d + 2 header bytes", len(buf), p.BytesPerReport())
	}
	if len(buf) != FrameSize {
		t.Fatalf("encoded frame is %d bytes, FrameSize = %d", len(buf), FrameSize)
	}
}
