// Package protocol provides the generic TCP transport for the unified
// aggregation surface of internal/proto: any proto.Aggregator — the
// PrivateExpanderSketch protocol, the enumerable-domain variant, the two
// frequency oracles or any of the Table 1 baselines — plugs into the same
// Server, and every protocol's users serialize their single ε-LDP report
// into the same self-describing wire frame.
//
// Connection protocol (all integers big endian):
//
//	preamble  [protocol ID][command]
//
// The protocol ID negotiates at connection time: a server rejects the
// connection with an "ERR ...\n" line when the client's ID names a
// different protocol than the server aggregates. ID 0x00 is the wildcard
// for control commands that work against any server.
//
//	cmdReport         stream of fixed-size report frames until EOF; reply
//	                  is one ACK byte after every frame was absorbed. The
//	                  EOF handshake makes this command terminal: one
//	                  stream per connection.
//	cmdReportBatch    u32 frame count, then exactly that many contiguous
//	                  fixed-size frames; reply is one ACK byte. The count
//	                  makes the body self-delimiting (no half-close
//	                  needed), so the command is pipelined: after the ACK
//	                  the connection accepts further commands, and one
//	                  connection carries any number of mega-batches. This
//	                  is the million-device ingest framing — one syscall
//	                  carries thousands of reports and the dial amortizes
//	                  across the session (DialIngest/IngestConn).
//	cmdIdentify       no body; reply is u32 count, then per estimate
//	                  u16 item length + item + f64 count (IEEE 754 bits, so
//	                  the TCP path returns bit-identical estimates).
//	cmdQueryTopK      u32 k (0 = the server's configured size); reply is
//	                  the identify estimate framing, answered over the live
//	                  structure without retiring the round (streaming
//	                  aggregators with the proto.ContinuousQuerier
//	                  capability only). Pipelined like cmdReportBatch, so a
//	                  monitor interleaves queries with ingest batches on
//	                  one connection.
//	cmdSnapshot       no body; reply is u32 length + snapshot blob
//	                  (Mergeable aggregators only).
//	cmdMergeSnapshot  u32 length + snapshot blob; reply is one ACK byte.
//
// A report frame is a complete proto.WireReport — [ID][codec version] +
// fixed payload — so a stream is also self-describing frame by frame and a
// misrouted or corrupted report is rejected by the aggregator, not
// misparsed.
package protocol

import (
	"fmt"
	"io"

	"ldphh/internal/core"
	"ldphh/internal/proto"
)

// Version is the PES wire codec version (byte 1 of every PES report frame).
const Version = 1

// FrameSize is the PES report frame: the 2-byte [protocol ID][version]
// header plus core.ReportPayloadBytes — the constant Protocol.BytesPerReport
// (the Table 1 communication metric) answers from — so the two cannot
// drift apart. Other protocols' frame sizes come from their registry
// entries (proto.Codec.FrameBytes).
const FrameSize = 2 + core.ReportPayloadBytes

// EncodeReport serializes a PES report into a fresh wire frame.
func EncodeReport(rep core.Report) ([]byte, error) {
	wr, err := core.EncodeReportWire(rep)
	return []byte(wr), err
}

// DecodeReport parses and validates one PES wire frame.
func DecodeReport(buf []byte) (core.Report, error) {
	return core.DecodeReportWire(proto.WireReport(buf))
}

// WriteFrame writes one encoded PES report to w.
func WriteFrame(w io.Writer, rep core.Report) error {
	buf, err := EncodeReport(rep)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// ReadFrame reads one PES report from r. Returns io.EOF cleanly at end of
// stream.
func ReadFrame(r io.Reader) (core.Report, error) {
	buf := make([]byte, FrameSize)
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.ErrUnexpectedEOF {
			return core.Report{}, fmt.Errorf("protocol: truncated frame: %w", err)
		}
		return core.Report{}, err
	}
	return DecodeReport(buf)
}
