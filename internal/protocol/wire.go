// Package protocol provides the wire format and a TCP transport for
// PrivateExpanderSketch, so the "distributed database" of the paper is
// exercised over a real network path: users serialize their single ε-LDP
// report into a fixed 15-byte frame, an aggregation server absorbs frames
// from any number of connections, and a control command triggers
// identification.
package protocol

import (
	"encoding/binary"
	"fmt"
	"io"

	"ldphh/internal/core"
	"ldphh/internal/freqoracle"
)

// Frame layout (big endian), 15 bytes:
//
//	offset size field
//	0      1    version (currently 1)
//	1      2    coordinate group m
//	3      4    direct-report column
//	7      1    direct-report bit (0 => -1, 1 => +1)
//	8      2    confirmation row
//	10     4    confirmation column
//	14     1    confirmation bit (0 => -1, 1 => +1)
//
// FrameSize derives from core.ReportPayloadBytes — the constant
// Protocol.BytesPerReport (the Table 1 communication metric) answers from
// — plus the 1-byte version, so the two cannot drift apart.
const (
	Version   = 1
	FrameSize = 1 + core.ReportPayloadBytes
)

// EncodeReport serializes a report into a fresh frame.
func EncodeReport(rep core.Report) ([]byte, error) {
	if rep.M < 0 || rep.M > 0xffff {
		return nil, fmt.Errorf("protocol: group %d does not fit the frame", rep.M)
	}
	if rep.Conf.Row < 0 || rep.Conf.Row > 0xffff {
		return nil, fmt.Errorf("protocol: confirmation row %d does not fit the frame", rep.Conf.Row)
	}
	buf := make([]byte, FrameSize)
	buf[0] = Version
	binary.BigEndian.PutUint16(buf[1:], uint16(rep.M))
	binary.BigEndian.PutUint32(buf[3:], rep.Dir.Col)
	buf[7] = bitByte(rep.Dir.Bit)
	binary.BigEndian.PutUint16(buf[8:], uint16(rep.Conf.Row))
	binary.BigEndian.PutUint32(buf[10:], rep.Conf.Col)
	buf[14] = bitByte(rep.Conf.Bit)
	return buf, nil
}

// DecodeReport parses one frame.
func DecodeReport(buf []byte) (core.Report, error) {
	if len(buf) != FrameSize {
		return core.Report{}, fmt.Errorf("protocol: frame length %d, want %d", len(buf), FrameSize)
	}
	if buf[0] != Version {
		return core.Report{}, fmt.Errorf("protocol: unsupported version %d", buf[0])
	}
	dirBit, err := byteBit(buf[7])
	if err != nil {
		return core.Report{}, err
	}
	confBit, err := byteBit(buf[14])
	if err != nil {
		return core.Report{}, err
	}
	return core.Report{
		M: int(binary.BigEndian.Uint16(buf[1:])),
		Dir: freqoracle.DirectReport{
			Col: binary.BigEndian.Uint32(buf[3:]),
			Bit: dirBit,
		},
		Conf: freqoracle.HashtogramReport{
			Row: int(binary.BigEndian.Uint16(buf[8:])),
			Col: binary.BigEndian.Uint32(buf[10:]),
			Bit: confBit,
		},
	}, nil
}

func bitByte(b int8) byte {
	if b > 0 {
		return 1
	}
	return 0
}

func byteBit(b byte) (int8, error) {
	switch b {
	case 0:
		return -1, nil
	case 1:
		return 1, nil
	default:
		return 0, fmt.Errorf("protocol: invalid bit byte %d", b)
	}
}

// WriteFrame writes one encoded report to w.
func WriteFrame(w io.Writer, rep core.Report) error {
	buf, err := EncodeReport(rep)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// ReadFrame reads one report from r. Returns io.EOF cleanly at end of
// stream.
func ReadFrame(r io.Reader) (core.Report, error) {
	buf := make([]byte, FrameSize)
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.ErrUnexpectedEOF {
			return core.Report{}, fmt.Errorf("protocol: truncated frame: %w", err)
		}
		return core.Report{}, err
	}
	return DecodeReport(buf)
}
