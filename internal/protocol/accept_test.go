package protocol

import (
	"context"
	"errors"
	"math/rand/v2"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"ldphh/internal/core"
	"ldphh/internal/proto"
)

// testRng returns a deterministic per-test rng.
func testRng(stream uint64) *rand.Rand {
	return rand.New(rand.NewPCG(0x1095e57, stream))
}

// acceptAgg builds a small PES aggregator pair (device, server) for the
// accept-loop tests.
func acceptAgg(t *testing.T) (proto.Reporter, proto.Aggregator) {
	t.Helper()
	params := core.Params{Eps: 2, N: 1000, ItemBytes: 4, Y: 16, Seed: 41}
	dev, err := core.NewPESWire(params)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := core.NewPESWire(params)
	if err != nil {
		t.Fatal(err)
	}
	return dev, agg
}

// tempAcceptErr is a synthetic transient Accept failure (what EMFILE under
// load surfaces as through the net package's Temporary classification).
type tempAcceptErr struct{}

func (tempAcceptErr) Error() string   { return "synthetic temporary accept failure" }
func (tempAcceptErr) Temporary() bool { return true }
func (tempAcceptErr) Timeout() bool   { return false }

// flakyListener injects a burst of temporary Accept failures before
// delegating to the real listener.
type flakyListener struct {
	net.Listener
	mu       sync.Mutex
	failures int
	injected int
}

func (l *flakyListener) Accept() (net.Conn, error) {
	l.mu.Lock()
	if l.failures > 0 {
		l.failures--
		l.injected++
		l.mu.Unlock()
		return nil, tempAcceptErr{}
	}
	l.mu.Unlock()
	return l.Listener.Accept()
}

// permDeadListener fails its first Accept with a permanent error; the
// accept loop must stop and surface it (it is never called again).
type permDeadListener struct {
	net.Listener
	mu    sync.Mutex
	fired bool
}

var errListenerDied = errors.New("synthetic permanent listener failure")

func (l *permDeadListener) Accept() (net.Conn, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.fired {
		l.fired = true
		return nil, errListenerDied
	}
	return nil, errors.New("Accept called again after a permanent failure")
}

// TestAcceptLoopRetriesTemporaryErrors: a transient Accept failure (e.g.
// EMFILE under load) must not kill the listener — the loop backs off,
// retries, and the server keeps serving. Regression: the loop used to
// return on any Accept error, permanently and silently deafening the
// server while Close still reported success.
func TestAcceptLoopRetriesTemporaryErrors(t *testing.T) {
	dev, agg := acceptAgg(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := &flakyListener{Listener: ln, failures: 3}
	srv, err := ServeListener(agg, fl)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rep, err := dev.Report([]byte{0, 0, 0, 1}, 0, testRng(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := SendWireBatch(ctx, srv.Addr(), []proto.WireReport{rep}); err != nil {
		t.Fatalf("server did not recover from temporary accept failures: %v", err)
	}
	fl.mu.Lock()
	injected := fl.injected
	fl.mu.Unlock()
	if injected != 3 {
		t.Fatalf("injected %d of 3 temporary failures", injected)
	}
	if got := srv.Absorbed(); got != 1 {
		t.Fatalf("absorbed %d reports, want 1", got)
	}
	if err := srv.Err(); err != nil {
		t.Fatalf("temporary failures surfaced as permanent death: %v", err)
	}
}

// TestAcceptLoopSurfacesPermanentDeath: a permanent listener failure must
// be observable — Done() closes, Err() reports the cause, and Close
// relays it instead of reporting success over a dead server.
func TestAcceptLoopSurfacesPermanentDeath(t *testing.T) {
	_, agg := acceptAgg(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ServeListener(agg, &permDeadListener{Listener: ln})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-srv.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("listener death was never surfaced on Done()")
	}
	if err := srv.Err(); !errors.Is(err, errListenerDied) {
		t.Fatalf("Err() = %v, want the fatal accept error", err)
	}
	if err := srv.Close(); !errors.Is(err, errListenerDied) {
		t.Fatalf("Close() = %v, want the fatal accept error (not silent success)", err)
	}
}

// TestCloseAfterTemporaryBackoff: Close during a temporary-error backoff
// window must return promptly instead of waiting out the retry timer
// against a listener that keeps failing.
func TestCloseAfterTemporaryBackoff(t *testing.T) {
	_, agg := acceptAgg(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// An endless temporary-failure storm: the loop should sit in backoff.
	fl := &flakyListener{Listener: ln, failures: 1 << 30}
	srv, err := ServeListener(agg, fl)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the loop enter backoff
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil && !strings.Contains(err.Error(), "use of closed") {
			t.Fatalf("Close during backoff: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close wedged behind the accept backoff")
	}
}
