package protocol

import (
	"bufio"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"

	"ldphh/internal/proto"
)

// Metrics is the server's operability surface: a set of atomic counters
// threaded through the ingest, identify, snapshot and checkpoint paths.
// Every update on a hot path is a single atomic add — no locks, no
// allocation — and the batch paths count once per window, not per report,
// so metering is invisible next to the absorption work itself. Rendering
// (Prometheus text, /healthz JSON) happens only when a scraper asks.
type Metrics struct {
	protocol  string
	startNano int64

	connsAccepted atomic.Int64
	connsActive   atomic.Int64

	reportsAbsorbed atomic.Int64 // reports accepted into the aggregator via this server
	batchesAbsorbed atomic.Int64 // mega-batch commands completed
	absorbErrors    atomic.Int64 // absorb/decode failures (stream, batch and merge paths)
	windowDepth     atomic.Int64 // ingest windows currently folding into the aggregator

	identifies        atomic.Int64
	identifyErrors    atomic.Int64
	identifyNanos     atomic.Int64 // cumulative wall time inside Identify
	lastIdentifyNanos atomic.Int64

	topkQueries     atomic.Int64 // continuous top-k queries answered over the wire
	topkQueryErrors atomic.Int64 // top-k queries rejected (unsupported protocol, bad k)

	roundsAdvanced atomic.Int64 // interactive round transitions committed over the wire
	roundErrors    atomic.Int64 // round commands rejected (unsupported protocol, failed advance)

	snapshotsServed atomic.Int64
	mergesAbsorbed  atomic.Int64

	checkpoints         atomic.Int64 // successful checkpoint saves this run
	checkpointErrors    atomic.Int64
	checkpointSeq       atomic.Uint64
	checkpointUnixNano  atomic.Int64 // wall clock of the last successful save (or the recovered file)
	checkpointBytes     atomic.Int64
	reportsAtCheckpoint atomic.Int64 // reportsAbsorbed sampled just before the last snapshot
	recoveredReports    atomic.Int64 // reports rehydrated from disk at startup

	draining    atomic.Bool
	lastCkptErr atomic.Value // string; "" when the last checkpoint attempt succeeded
}

func newMetrics(protocol string) *Metrics {
	m := &Metrics{protocol: protocol, startNano: time.Now().UnixNano()}
	m.lastCkptErr.Store("")
	return m
}

// ReportsAbsorbed returns the number of reports this server has accepted
// over its wire (frames plus merged snapshot contents) since it started —
// recovered checkpoint contents are counted separately by RecoveredReports.
func (m *Metrics) ReportsAbsorbed() int64 { return m.reportsAbsorbed.Load() }

// RecoveredReports returns the number of reports rehydrated from the
// on-disk checkpoint at startup (0 on a fresh start).
func (m *Metrics) RecoveredReports() int64 { return m.recoveredReports.Load() }

// CheckpointLag returns how many absorbed reports are not yet covered by a
// durable checkpoint.
func (m *Metrics) CheckpointLag() int64 {
	return m.reportsAbsorbed.Load() - m.reportsAtCheckpoint.Load()
}

// CheckpointAge returns the time since the last durable checkpoint, or -1
// when none has been taken (and none was recovered).
func (m *Metrics) CheckpointAge() time.Duration {
	at := m.checkpointUnixNano.Load()
	if at == 0 {
		return -1
	}
	return time.Duration(time.Now().UnixNano() - at)
}

// noteCheckpoint records one successful checkpoint save (or the recovered
// checkpoint at startup). absorbedBefore is the reportsAbsorbed sample
// taken just before the snapshot, so the lag metric never undercounts.
func (m *Metrics) noteCheckpoint(seq uint64, unixNano int64, bytes int, absorbedBefore int64) {
	m.checkpointSeq.Store(seq)
	m.checkpointUnixNano.Store(unixNano)
	m.checkpointBytes.Store(int64(bytes))
	m.reportsAtCheckpoint.Store(absorbedBefore)
	m.lastCkptErr.Store("")
}

func (m *Metrics) noteCheckpointError(err error) {
	m.checkpointErrors.Add(1)
	m.lastCkptErr.Store(err.Error())
}

// uptime returns seconds since the server started.
func (m *Metrics) uptime() float64 {
	return float64(time.Now().UnixNano()-m.startNano) / 1e9
}

// writeProm renders the Prometheus text exposition format. resident is the
// aggregator's authoritative TotalReports at scrape time (it includes
// recovered and merged state); listenerErr reports permanent listener
// death; stream is the continuous-query position for streaming aggregators
// (nil for batch protocols, which have no stream series); round is the
// interactive-protocol round position (nil for single-round protocols).
func (m *Metrics) writeProm(w *bufio.Writer, resident int, listenerErr error, stream *proto.StreamStats, round *proto.RoundState) {
	p := m.protocol
	up := 1
	if listenerErr != nil {
		up = 0
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s{protocol=%q} %d\n", name, help, name, name, p, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s{protocol=%q} %g\n", name, help, name, name, p, v)
	}
	// counterF is the float-valued counter flavor for cumulative quantities
	// that are not integer event counts (e.g. summed wall time). Prometheus
	// naming requires every `_total` series to be TYPE counter — and only
	// those — which TestMetricsTextLint enforces over the whole exposition.
	counterF := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s{protocol=%q} %g\n", name, help, name, name, p, v)
	}
	gauge("ldphh_up", "1 while the listener accepts connections, 0 after permanent death.", float64(up))
	gauge("ldphh_uptime_seconds", "Seconds since the server started.", m.uptime())
	gauge("ldphh_draining", "1 while a graceful shutdown drains in-flight connections.", b2f(m.draining.Load()))

	counter("ldphh_connections_accepted_total", "Connections accepted by the listener.", m.connsAccepted.Load())
	gauge("ldphh_connections_active", "Connections currently being served.", float64(m.connsActive.Load()))

	counter("ldphh_reports_absorbed_total", "Reports accepted into the aggregator over the wire (frames plus merged snapshots).", m.reportsAbsorbed.Load())
	gauge("ldphh_reports_resident", "Reports resident in the aggregator, including recovered and merged state.", float64(resident))
	gauge("ldphh_reports_per_second", "Mean wire absorption rate over the server lifetime (use rate() on the _total for windows).",
		float64(m.reportsAbsorbed.Load())/maxf(m.uptime(), 1e-9))
	counter("ldphh_batches_absorbed_total", "Mega-batch commands absorbed.", m.batchesAbsorbed.Load())
	counter("ldphh_absorb_errors_total", "Report streams, batches or snapshot merges rejected mid-absorption.", m.absorbErrors.Load())
	gauge("ldphh_ingest_window_depth", "Ingest windows currently folding into the aggregator.", float64(m.windowDepth.Load()))

	counter("ldphh_identify_total", "Identify commands served.", m.identifies.Load())
	counter("ldphh_identify_errors_total", "Identify commands that failed (including client-disconnect cancellations).", m.identifyErrors.Load())
	counterF("ldphh_identify_seconds_total", "Cumulative wall time spent in Identify.", float64(m.identifyNanos.Load())/1e9)
	gauge("ldphh_identify_last_seconds", "Wall time of the most recent Identify.", float64(m.lastIdentifyNanos.Load())/1e9)

	counter("ldphh_topk_queries_total", "Continuous top-k queries answered over the wire.", m.topkQueries.Load())
	counter("ldphh_topk_query_errors_total", "Continuous top-k queries rejected.", m.topkQueryErrors.Load())
	if stream != nil {
		gauge("ldphh_stream_window", "Zero-based index of the current ingest window.", float64(stream.Window))
		gauge("ldphh_stream_windows", "Configured per-user budget split w (per-report budget is eps/w).", float64(stream.Windows))
		gauge("ldphh_stream_warmup", "1 while the bounded structure is in its filling warmup phase.", b2f(stream.Warmup))
		counter("ldphh_stream_evictions_total", "Cells evicted from the bounded structure by decay.", stream.Evictions)
	}
	if round != nil {
		gauge("ldphh_round", "Zero-based index of the open interactive round.", float64(round.Round))
		gauge("ldphh_rounds", "Configured interactive round count (the user-group count g).", float64(round.Rounds))
		gauge("ldphh_round_candidates", "Candidate prefixes broadcast for the open round.", float64(len(round.Candidates)))
		gauge("ldphh_round_group_size", "Reports absorbed into the open round's group so far.", float64(round.GroupReports))
		gauge("ldphh_round_done", "1 once the final round committed and Identify is answerable.", b2f(round.Done))
		counter("ldphh_rounds_advanced_total", "Interactive round transitions committed over the wire.", m.roundsAdvanced.Load())
		counter("ldphh_round_errors_total", "Round commands rejected.", m.roundErrors.Load())
	}

	counter("ldphh_snapshots_served_total", "Snapshot commands served to parent aggregators.", m.snapshotsServed.Load())
	counter("ldphh_snapshot_merges_total", "Child snapshots merged into this aggregator.", m.mergesAbsorbed.Load())

	counter("ldphh_checkpoints_total", "Durable checkpoints written this run.", m.checkpoints.Load())
	counter("ldphh_checkpoint_errors_total", "Checkpoint attempts that failed.", m.checkpointErrors.Load())
	gauge("ldphh_checkpoint_seq", "Sequence number of the newest durable checkpoint.", float64(m.checkpointSeq.Load()))
	// CheckpointAge returns the -1 "never" sentinel until the first durable
	// save; the age series is omitted then (a negative age would poison
	// min()/alerting math) and the _taken flag tells the two states apart
	// from a plain zero-age scrape.
	age := m.CheckpointAge()
	gauge("ldphh_checkpoint_taken", "1 once a durable checkpoint exists (written this run or recovered).", b2f(age >= 0))
	if age >= 0 {
		gauge("ldphh_checkpoint_age_seconds", "Seconds since the newest durable checkpoint.", age.Seconds())
	}
	gauge("ldphh_checkpoint_lag_reports", "Absorbed reports not yet covered by a durable checkpoint.", float64(m.CheckpointLag()))
	gauge("ldphh_checkpoint_bytes", "Payload size of the newest durable checkpoint.", float64(m.checkpointBytes.Load()))
	gauge("ldphh_recovered_reports", "Reports rehydrated from the on-disk checkpoint at startup.", float64(m.recoveredReports.Load()))
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// metricsServer is the HTTP operability sidecar: /healthz for liveness
// probes and load balancers, /metrics for Prometheus scrapes. It listens on
// its own address so the report wire and the control plane never share a
// port, and it shuts down with the server.
type metricsServer struct {
	ln  net.Listener
	srv *http.Server
}

func startMetricsServer(addr string, s *Server) (*metricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("protocol: metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	// Live profiling rides the operability sidecar: the metrics address is
	// already the non-ingest control plane, so `go tool pprof
	// http://<metrics-addr>/debug/pprof/profile` works against a running
	// aggregation server with no extra flag or port. Registered explicitly —
	// the sidecar uses its own mux, so the net/http/pprof init-time
	// DefaultServeMux registrations would not be reachable.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ms := &metricsServer{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go ms.srv.Serve(ln) //nolint:errcheck // exits on Close
	return ms, nil
}

func (ms *metricsServer) close() {
	if ms == nil {
		return
	}
	ms.srv.Close() //nolint:errcheck // teardown
}

// handleHealthz answers liveness/readiness probes: 200 with a JSON summary
// while the server accepts traffic, 503 while draining or after the
// listener died — so a load balancer stops routing to a server that can no
// longer absorb reports, and an operator's curl shows why.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	m := s.metrics
	status, code := "ok", http.StatusOK
	var listenerErr string
	if m.draining.Load() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	if err := s.Err(); err != nil {
		status, code = "listener-dead", http.StatusServiceUnavailable
		listenerErr = err.Error()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	// Before the first durable checkpoint CheckpointAge returns the -1
	// sentinel; the JSON reports a NaN-safe 0 plus an explicit taken flag,
	// so a probe never parses a negative age as a real duration.
	age, taken := 0.0, false
	if a := m.CheckpointAge(); a >= 0 {
		age, taken = a.Seconds(), true
	}
	stream := ""
	if cq, ok := proto.AsContinuousQuerier(s.agg); ok {
		st := cq.StreamStats()
		stream = fmt.Sprintf(`,"stream_window":%d,"stream_windows":%d,"stream_warmup":%t,"stream_evictions":%d,"topk_queries":%d`,
			st.Window, st.Windows, st.Warmup, st.Evictions, m.topkQueries.Load())
	}
	round := ""
	if it, ok := proto.AsInteractive(s.agg); ok {
		rs := it.RoundState()
		round = fmt.Sprintf(`,"round":%d,"rounds":%d,"round_candidates":%d,"round_group_size":%d,"round_done":%t`,
			rs.Round, rs.Rounds, len(rs.Candidates), rs.GroupReports, rs.Done)
	}
	fmt.Fprintf(w, `{"status":%q,"protocol":%q,"uptime_seconds":%.3f,"absorbed":%d,"resident":%d,"checkpoint_seq":%d,"checkpoint_taken":%t,"checkpoint_age_seconds":%.3f,"checkpoint_lag_reports":%d,"last_checkpoint_error":%q,"listener_error":%q%s%s}`+"\n",
		status, m.protocol, m.uptime(), m.reportsAbsorbed.Load(), s.agg.TotalReports(),
		m.checkpointSeq.Load(), taken, age, m.CheckpointLag(),
		m.lastCkptErr.Load().(string), listenerErr, stream, round)
}

// handleMetrics serves the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var stream *proto.StreamStats
	if cq, ok := proto.AsContinuousQuerier(s.agg); ok {
		st := cq.StreamStats()
		stream = &st
	}
	var round *proto.RoundState
	if it, ok := proto.AsInteractive(s.agg); ok {
		rs := it.RoundState()
		round = &rs
	}
	bw := bufio.NewWriter(w)
	s.metrics.writeProm(bw, s.agg.TotalReports(), s.Err(), stream, round)
	bw.Flush() //nolint:errcheck // client gone
}
