package protocol

import (
	"bytes"
	"testing"
)

// FuzzDecodeReport: arbitrary bytes must never panic the decoder, and any
// frame it accepts must re-encode to the identical bytes (canonical form).
func FuzzDecodeReport(f *testing.F) {
	f.Add(make([]byte, FrameSize))
	good := make([]byte, FrameSize)
	good[0] = Version
	good[7] = 1
	good[14] = 1
	f.Add(good)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, FrameSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := DecodeReport(data)
		if err != nil {
			return
		}
		out, err := EncodeReport(rep)
		if err != nil {
			t.Fatalf("decoded frame failed to re-encode: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("decode/encode not canonical: %x -> %x", data, out)
		}
	})
}
