package protocol

import (
	"bytes"
	"testing"

	"ldphh/internal/proto"
)

// FuzzDecodeReport: arbitrary bytes must never panic the decoder, and any
// frame it accepts must re-encode to the identical bytes (canonical form).
func FuzzDecodeReport(f *testing.F) {
	f.Add(make([]byte, FrameSize))
	// Frame layout: [ID][version] + payload (m u16 | dir col u32 | dir bit |
	// conf row u16 | conf col u32 | conf bit) — bits at offsets 8 and 15.
	good := make([]byte, FrameSize)
	good[0] = proto.IDPrivateExpanderSketch
	good[1] = Version
	good[8] = 1
	good[15] = 1
	f.Add(good)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, FrameSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := DecodeReport(data)
		if err != nil {
			return
		}
		out, err := EncodeReport(rep)
		if err != nil {
			t.Fatalf("decoded frame failed to re-encode: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("decode/encode not canonical: %x -> %x", data, out)
		}
	})
}
