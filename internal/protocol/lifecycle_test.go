package protocol

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"ldphh/internal/checkpoint"
	"ldphh/internal/core"
	"ldphh/internal/proto"
)

// TestCloseConcurrent is the double-close regression: Close used to guard
// the closed-channel close with a bare select, so two concurrent callers
// could both take the default branch and both close the channel — a
// panic. Every caller must now drain and report the same result. Run
// under -race (the CI recovery job does).
func TestCloseConcurrent(t *testing.T) {
	_, agg := acceptAgg(t)
	srv, err := NewGenericServer(agg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	const callers = 16
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = srv.Close()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("concurrent Close %d: %v", i, err)
		}
	}
	if err := srv.Close(); err != nil {
		t.Errorf("Close after Close: %v", err)
	}
}

// pipeAddr satisfies net.Addr for the in-memory listener.
type pipeAddr struct{}

func (pipeAddr) Network() string { return "pipe" }
func (pipeAddr) String() string  { return "pipe" }

// pipeListener hands pre-made net.Pipe server ends to the accept loop, so
// a test controls both halves of a connection with real blocking-write
// semantics (a pipe write blocks until the peer reads — exactly the
// stuck-peer behavior TCP shows once buffers fill).
type pipeListener struct {
	conns     chan net.Conn
	done      chan struct{}
	closeOnce sync.Once
}

func newPipeListener() *pipeListener {
	return &pipeListener{conns: make(chan net.Conn), done: make(chan struct{})}
}

func (l *pipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *pipeListener) Close() error {
	l.closeOnce.Do(func() { close(l.done) })
	return nil
}

func (l *pipeListener) Addr() net.Addr { return pipeAddr{} }

// TestErrReplyDeadlineUnblocksClose is the stuck-ERR-reply regression: the
// best-effort ERR write on a failing connection had no deadline, so a peer
// that triggered an error and then stopped reading pinned the handler
// goroutine — and with it Close, which waits on the handler waitgroup —
// indefinitely. With the write deadline, Close returns promptly.
func TestErrReplyDeadlineUnblocksClose(t *testing.T) {
	saved := errReplyTimeout
	errReplyTimeout = 100 * time.Millisecond
	defer func() { errReplyTimeout = saved }()

	_, agg := acceptAgg(t)
	ln := newPipeListener()
	srv, err := ServeListener(agg, ln)
	if err != nil {
		t.Fatal(err)
	}
	server, client := net.Pipe()
	ln.conns <- server
	// An unknown protocol byte makes the handler fail and attempt the ERR
	// reply; the client then never reads, so the pipe write can only be
	// released by the deadline.
	if _, err := client.Write([]byte{0xee}); err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close wedged behind the ERR reply to a peer that stopped reading")
	}
}

// blockingIdentifyAgg wraps a real aggregator but parks Identify until its
// context is cancelled — the stand-in for a reconstruction mid-flight when
// the requesting client disconnects.
type blockingIdentifyAgg struct {
	proto.Aggregator
	started chan struct{}
}

func (a *blockingIdentifyAgg) Identify(ctx context.Context) ([]proto.Estimate, error) {
	close(a.started)
	<-ctx.Done()
	return nil, ctx.Err()
}

// TestDisconnectCancelsIdentify is the abandoned-reconstruction
// regression: handleIdentify ran the aggregator under
// context.Background(), so a client that hung up left the O~(n)
// reconstruction running with nowhere to send the answer. The handler now
// derives a context cancelled on connection close and routes it into
// Identify.
func TestDisconnectCancelsIdentify(t *testing.T) {
	_, inner := acceptAgg(t)
	agg := &blockingIdentifyAgg{Aggregator: inner, started: make(chan struct{})}
	srv, err := NewGenericServer(agg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte{proto.IDPrivateExpanderSketch, cmdIdentify}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-agg.started:
	case <-time.After(5 * time.Second):
		t.Fatal("Identify never started")
	}
	// Hang up mid-identification; the watcher must cancel the context and
	// let the handler (and later Close) finish.
	conn.Close()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Metrics().identifyErrors.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("Identify still running after client disconnect")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n := srv.Metrics().identifies.Load(); n != 1 {
		t.Fatalf("identify_total = %d, want 1", n)
	}
}

// TestIdentifyStillWorksWithWatcher: the disconnect watcher must not break
// a well-behaved client that holds the connection open (without writing or
// half-closing) until the reply lands.
func TestIdentifyStillWorksWithWatcher(t *testing.T) {
	srv := ingestServer(t, 2718)
	if err := SendWireBatch(context.Background(), srv.Addr(), wireReports(t, 2718, 4000)); err != nil {
		t.Fatal(err)
	}
	est, err := RequestIdentify(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if len(est) == 0 {
		t.Fatal("identify returned nothing over a planted population")
	}
	if srv.Metrics().identifies.Load() != 1 || srv.Metrics().identifyErrors.Load() != 0 {
		t.Fatalf("identify metrics = (%d total, %d errors), want (1, 0)",
			srv.Metrics().identifies.Load(), srv.Metrics().identifyErrors.Load())
	}
}

// recoverySlices cuts a wire-report population into equal mega-batches.
func recoverySlices(wrs []proto.WireReport, per int) [][]proto.WireReport {
	var out [][]proto.WireReport
	for lo := 0; lo < len(wrs); lo += per {
		out = append(out, wrs[lo:min(lo+per, len(wrs))])
	}
	return out
}

// newestCheckpointFile returns the live checkpoint file with the highest
// sequence number.
func newestCheckpointFile(t *testing.T, dir string) string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "ckpt-*.lckf"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no checkpoint files in %s (err=%v)", dir, err)
	}
	sort.Strings(files) // %016x sequence numbers sort lexically
	return files[len(files)-1]
}

// TestCrashRecoveryEquivalence is the tentpole's acceptance suite: a
// server checkpointing under the ack-coupled policy is killed mid-ingest
// (its state discarded, as under kill -9), a fresh server over the same
// directory restores the newest checkpoint, the sender replays only the
// unacknowledged batches, and the final Identify is bit-identical to an
// uninterrupted run of the same population. The torn-file variant corrupts
// the newest checkpoint first and recovers through the fallback.
func TestCrashRecoveryEquivalence(t *testing.T) {
	const (
		seed  = 1337
		n     = 6000
		per   = 1500 // mega-batch size == WithCheckpointEvery => durable-before-ack
		acked = 3    // batches delivered (and durably acked) before the crash
	)
	params := treeParams(seed)
	wrs := wireReports(t, seed, n)
	batches := recoverySlices(wrs, per)
	ctx := context.Background()

	// Uninterrupted reference run.
	ref := func() []proto.Estimate {
		srv := ingestServer(t, seed)
		if err := SendWireBatch(ctx, srv.Addr(), wrs); err != nil {
			t.Fatal(err)
		}
		est, err := RequestIdentify(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		return est
	}()

	scenarios := map[string]func(t *testing.T, dir string){
		"clean": func(t *testing.T, dir string) {},
		"torn-newest": func(t *testing.T, dir string) {
			// Chop the newest checkpoint as a torn write would; recovery must
			// fall back to the previous intact file and the sender replays
			// everything past it.
			path := newestCheckpointFile(t, dir)
			buf, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, buf[:len(buf)/3], 0o644); err != nil {
				t.Fatal(err)
			}
		},
	}
	for name, sabotage := range scenarios {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			opts := []ServerOption{
				WithCheckpointDir(dir),
				WithCheckpointEvery(per),
				WithCheckpointInterval(0), // only ack-coupled checkpoints: deterministic coverage
				WithCheckpointRetain(4),
			}
			agg1, err := core.NewPESWire(params)
			if err != nil {
				t.Fatal(err)
			}
			srv1, err := NewGenericServer(agg1, "127.0.0.1:0", opts...)
			if err != nil {
				t.Fatal(err)
			}
			for _, b := range batches[:acked] {
				if err := SendWireBatch(ctx, srv1.Addr(), b); err != nil {
					t.Fatal(err)
				}
			}
			// Crash: tear the listener out from under the server and discard
			// its in-memory state without any graceful-shutdown checkpoint —
			// everything a kill -9 leaves behind is the checkpoint directory.
			srv1.ln.Close()

			sabotage(t, dir)
			durable := acked * per
			if name == "torn-newest" {
				durable -= per // the newest (torn) file covered one more batch
			}

			agg2, err := core.NewPESWire(params)
			if err != nil {
				t.Fatal(err)
			}
			srv2, err := NewGenericServer(agg2, "127.0.0.1:0", opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer srv2.Close()
			if got := srv2.Absorbed(); got != durable {
				t.Fatalf("recovered server holds %d reports, want %d (the durably acked prefix)", got, durable)
			}
			if got := srv2.Metrics().recoveredReports.Load(); got != int64(durable) {
				t.Fatalf("recovered_reports metric = %d, want %d", got, durable)
			}
			// Replay everything past the durable prefix — in production the
			// sender replays the batches the crashed server never acked.
			for _, b := range batches[durable/per:] {
				if err := SendWireBatch(ctx, srv2.Addr(), b); err != nil {
					t.Fatal(err)
				}
			}
			if got := srv2.Absorbed(); got != n {
				t.Fatalf("after replay the server holds %d reports, want %d", got, n)
			}
			est, err := RequestIdentify(srv2.Addr())
			if err != nil {
				t.Fatal(err)
			}
			assertSameEstimates(t, est, ref)
		})
	}
}

// TestGracefulShutdownCheckpointsTail: a drain must leave the whole round
// on disk even when no ack-coupled or periodic checkpoint covered the
// tail, so a deliberate restart (deploy, migration) loses nothing.
func TestGracefulShutdownCheckpointsTail(t *testing.T) {
	const seed, n = 555, 2000
	params := treeParams(seed)
	wrs := wireReports(t, seed, n)
	dir := t.TempDir()
	ctx := context.Background()

	agg1, err := core.NewPESWire(params)
	if err != nil {
		t.Fatal(err)
	}
	srv1, err := NewGenericServer(agg1, "127.0.0.1:0",
		WithCheckpointDir(dir), WithCheckpointInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := SendWireBatch(ctx, srv1.Addr(), wrs); err != nil {
		t.Fatal(err)
	}
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	agg2, err := core.NewPESWire(params)
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := NewGenericServer(agg2, "127.0.0.1:0", WithCheckpointDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if got := srv2.Absorbed(); got != n {
		t.Fatalf("restored server holds %d reports, want %d (final checkpoint must cover the tail)", got, n)
	}

	// Bit-identical continuation: identify on the restored server matches a
	// never-restarted aggregator over the same reports.
	refAgg, err := core.NewPESWire(params)
	if err != nil {
		t.Fatal(err)
	}
	if err := refAgg.AbsorbBatch(wrs); err != nil {
		t.Fatal(err)
	}
	want, err := refAgg.Identify(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RequestIdentify(srv2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	assertSameEstimates(t, got, want)
}

// TestRecoveryRejectsForeignFingerprint: restarting over a checkpoint
// directory with different protocol parameters must fail construction
// loudly instead of silently starting a fresh round over stale files.
func TestRecoveryRejectsForeignFingerprint(t *testing.T) {
	dir := t.TempDir()
	params := treeParams(31)
	agg1, err := core.NewPESWire(params)
	if err != nil {
		t.Fatal(err)
	}
	srv1, err := NewGenericServer(agg1, "127.0.0.1:0", WithCheckpointDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := SendWireBatch(context.Background(), srv1.Addr(), wireReports(t, 31, 300)); err != nil {
		t.Fatal(err)
	}
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	other := params
	other.Seed = params.Seed + 1 // different public randomness => different fingerprint
	agg2, err := core.NewPESWire(other)
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewGenericServer(agg2, "127.0.0.1:0", WithCheckpointDir(dir))
	if !errors.Is(err, checkpoint.ErrFingerprintMismatch) {
		t.Fatalf("restart under different params = %v, want ErrFingerprintMismatch", err)
	}
}

// TestCheckpointsRequireMergeable: checkpointing needs the snapshot
// capability; a non-Mergeable aggregator must be rejected at construction,
// not discovered at the first save.
func TestCheckpointsRequireMergeable(t *testing.T) {
	agg := unsnapshottableAgg{}
	_, err := NewGenericServer(agg, "127.0.0.1:0", WithCheckpointDir(t.TempDir()))
	if err == nil || !strings.Contains(err.Error(), "checkpoint") {
		t.Fatalf("checkpointing a non-Mergeable aggregator = %v, want a capability error", err)
	}
}

// TestPeriodicCheckpointLoop: with a short interval and no ack coupling,
// the timer alone must persist absorbed state.
func TestPeriodicCheckpointLoop(t *testing.T) {
	dir := t.TempDir()
	params := treeParams(91)
	agg, err := core.NewPESWire(params)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewGenericServer(agg, "127.0.0.1:0",
		WithCheckpointDir(dir), WithCheckpointInterval(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if err := SendWireBatch(context.Background(), srv.Addr(), wireReports(t, 91, 500)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Metrics().checkpoints.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("periodic checkpoint never fired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if lag := srv.Metrics().CheckpointLag(); lag != 0 {
		t.Fatalf("checkpoint lag = %d after a periodic save of a quiesced server", lag)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMetricsEndpoints exercises the operability sidecar end to end:
// /healthz JSON while serving, Prometheus text on /metrics, and the
// sidecar's teardown with the server.
func TestMetricsEndpoints(t *testing.T) {
	dir := t.TempDir()
	params := treeParams(64)
	agg, err := core.NewPESWire(params)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewGenericServer(agg, "127.0.0.1:0",
		WithMetricsAddr("127.0.0.1:0"), WithCheckpointDir(dir), WithCheckpointEvery(400))
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.MetricsAddr()
	if addr == "" {
		t.Fatal("MetricsAddr empty with the sidecar configured")
	}
	if err := SendWireBatch(context.Background(), srv.Addr(), wireReports(t, 64, 400)); err != nil {
		t.Fatal(err)
	}

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz = %d: %s", code, body)
	}
	for _, want := range []string{`"status":"ok"`, `"protocol":"pes"`, `"absorbed":400`, `"checkpoint_seq":1`} {
		if !strings.Contains(body, want) {
			t.Errorf("/healthz %s missing %s", body, want)
		}
	}

	code, body = get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		`ldphh_reports_absorbed_total{protocol="pes"} 400`,
		`ldphh_reports_resident{protocol="pes"} 400`,
		`ldphh_batches_absorbed_total{protocol="pes"} 1`,
		`ldphh_checkpoints_total{protocol="pes"} 1`,
		`ldphh_checkpoint_lag_reports{protocol="pes"} 0`,
		`ldphh_up{protocol="pes"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("metrics sidecar still serving after Close")
	}
}

// unsnapshottableAgg is a registered-protocol aggregator without the
// Mergeable capability (Bitstogram's ID, none of its methods needed here).
type unsnapshottableAgg struct{}

func (unsnapshottableAgg) ProtocolID() byte                  { return proto.IDBitstogram }
func (unsnapshottableAgg) Absorb(proto.WireReport) error     { return nil }
func (unsnapshottableAgg) AbsorbBatch([]proto.WireReport) error { return nil }
func (unsnapshottableAgg) Identify(context.Context) ([]proto.Estimate, error) {
	return nil, fmt.Errorf("not implemented")
}
func (unsnapshottableAgg) TotalReports() int   { return 0 }
func (unsnapshottableAgg) SketchBytes() int    { return 0 }
func (unsnapshottableAgg) BytesPerReport() int { return 1 }
