package protocol

import (
	"bytes"
	"context"
	"io"
	"math/rand/v2"
	"net/http"
	"strings"
	"testing"

	"ldphh/internal/core"
	"ldphh/internal/proto"
	"ldphh/internal/stream"
)

// streamPair builds a device-side and a server-side streaming adapter from
// identical parameters.
func streamPair(t *testing.T) (*stream.Wire, *stream.Wire) {
	t.Helper()
	mk := func() *stream.Wire {
		w, err := stream.NewWire(stream.Params{
			Kind: stream.BasicHG, Eps: 16, Windows: 4, K: 16, Domain: 64,
			WindowSize: 1500, WarmupWindows: 0, N: 6000, Seed: 77,
		}, 2)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	return mk(), mk()
}

// streamReports derives n wire reports with 40% planted on ordinal 1.
func streamReports(t *testing.T, dev *stream.Wire, n, offset int) []proto.WireReport {
	t.Helper()
	rng := rand.New(rand.NewPCG(uint64(offset), 5))
	out := make([]proto.WireReport, n)
	for i := range out {
		item := plantedOrdinals(2, 32)(offset + i)
		wr, err := dev.Report(item, offset+i, rng)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = wr
	}
	return out
}

// TestQueryTopKOverTCP pins the continuous-query command end to end: a
// monitor interleaves mega-batch ingest and top-k queries on one pipelined
// connection, the answers track the growing stream without retiring the
// round, and the query counters advance.
func TestQueryTopKOverTCP(t *testing.T) {
	dev, agg := streamPair(t)
	srv, err := NewGenericServer(agg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx := context.Background()

	conn, err := DialIngest(ctx, srv.Addr(), proto.IDStreamHG)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	heavy := ordItem(1, 2)
	if err := conn.SendBatch(ctx, streamReports(t, dev, 3000, 0)); err != nil {
		t.Fatal(err)
	}
	mid, err := conn.QueryTopK(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(mid) == 0 || !bytes.Equal(mid[0].Item, heavy) {
		t.Fatalf("mid-stream top estimate %+v, want heavy item %x", mid, heavy)
	}

	// The query did not retire the round: ingest continues on the same
	// connection and the heavy estimate grows.
	if err := conn.SendBatch(ctx, streamReports(t, dev, 3000, 3000)); err != nil {
		t.Fatal(err)
	}
	final, err := conn.QueryTopK(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(final[0].Item, heavy) {
		t.Fatalf("final top estimate %+v, want heavy item %x", final[0], heavy)
	}
	if final[0].Count <= mid[0].Count {
		t.Errorf("heavy estimate did not grow across ingest: %.0f then %.0f", mid[0].Count, final[0].Count)
	}
	if got := srv.Absorbed(); got != 6000 {
		t.Fatalf("server absorbed %d of 6000 reports", got)
	}

	// Explicit k truncates; the one-shot client works against the same
	// server.
	one, err := QueryTopKContext(ctx, srv.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || !bytes.Equal(one[0].Item, heavy) {
		t.Fatalf("QueryTopK(1) = %+v, want only the heavy item", one)
	}

	if got := srv.Metrics().topkQueries.Load(); got != 3 {
		t.Errorf("topk query counter = %d, want 3", got)
	}
	if got := srv.Metrics().topkQueryErrors.Load(); got != 0 {
		t.Errorf("topk error counter = %d, want 0", got)
	}

	// Identify still closes the round with the usual semantics.
	est, err := RequestIdentifyContext(ctx, srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(est[0].Item, heavy) {
		t.Fatalf("Identify top %+v, want heavy item %x", est[0], heavy)
	}
}

// TestQueryTopKUnsupportedProtocol pins the capability gate: a batch
// aggregator answers a top-k query with ERR (no hang, no panic) and the
// error counter advances.
func TestQueryTopKUnsupportedProtocol(t *testing.T) {
	agg, err := core.NewPESWire(core.Params{Eps: 2, N: 1000, ItemBytes: 4, Y: 16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewGenericServer(agg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := QueryTopK(srv.Addr(), 4); err == nil {
		t.Fatal("batch protocol answered a continuous top-k query")
	} else if !strings.Contains(err.Error(), "continuous") {
		t.Fatalf("unexpected rejection: %v", err)
	}
	if got := srv.Metrics().topkQueryErrors.Load(); got != 1 {
		t.Errorf("topk error counter = %d, want 1", got)
	}
	if got := srv.Metrics().topkQueries.Load(); got != 0 {
		t.Errorf("topk query counter = %d, want 0", got)
	}
}

// TestFreshServerCheckpointMetrics is the negative-sentinel regression: a
// server that has never checkpointed (no checkpoint dir at all) must not
// emit a negative checkpoint age anywhere — the Prometheus rendering omits
// the age series and flags the state via ldphh_checkpoint_taken 0, and the
// /healthz JSON reports a NaN-safe zero age with an explicit false flag.
func TestFreshServerCheckpointMetrics(t *testing.T) {
	dev, agg := streamPair(t)
	srv, err := NewGenericServer(agg, "127.0.0.1:0", WithMetricsAddr("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if age := srv.Metrics().CheckpointAge(); age >= 0 {
		t.Fatalf("fresh server CheckpointAge = %v, want the negative sentinel", age)
	}
	// A little traffic plus one query so the streaming series have state.
	ctx := context.Background()
	if err := SendWireBatch(ctx, srv.Addr(), streamReports(t, dev, 2000, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := QueryTopKContext(ctx, srv.Addr(), 4); err != nil {
		t.Fatal(err)
	}

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + srv.MetricsAddr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	prom := get("/metrics")
	if strings.Contains(prom, "ldphh_checkpoint_age_seconds") {
		t.Error("/metrics emits a checkpoint age series for a never-checkpointed server")
	}
	for _, want := range []string{
		`ldphh_checkpoint_taken{protocol="streamhg"} 0`,
		`ldphh_topk_queries_total{protocol="streamhg"} 1`,
		`ldphh_stream_window{protocol="streamhg"} 1`,
		`ldphh_stream_windows{protocol="streamhg"} 4`,
		`ldphh_stream_warmup{protocol="streamhg"} 0`,
		`ldphh_stream_evictions_total{protocol="streamhg"}`,
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if strings.Contains(prom, "} -") {
		t.Error("/metrics emits a negative sample on a fresh server")
	}

	health := get("/healthz")
	for _, want := range []string{
		`"checkpoint_taken":false`,
		`"checkpoint_age_seconds":0.000`,
		`"stream_window":1`,
		`"stream_windows":4`,
		`"stream_warmup":false`,
		`"topk_queries":1`,
	} {
		if !strings.Contains(health, want) {
			t.Errorf("/healthz %s missing %s", health, want)
		}
	}
	if strings.Contains(health, "-1") {
		t.Errorf("/healthz leaks the -1 sentinel: %s", health)
	}

	// And once a checkpoint exists the flag flips and the age appears —
	// the positive half of the regression.
	srv.Metrics().noteCheckpoint(1, srv.Metrics().startNano, 10, 0)
	prom = get("/metrics")
	for _, want := range []string{
		`ldphh_checkpoint_taken{protocol="streamhg"} 1`,
		`ldphh_checkpoint_age_seconds{protocol="streamhg"}`,
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("/metrics after checkpoint missing %q", want)
		}
	}
	if !strings.Contains(get("/healthz"), `"checkpoint_taken":true`) {
		t.Error("/healthz still reports checkpoint_taken false after a checkpoint")
	}
}
