package protocol

import (
	"bytes"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"testing"
	"time"

	"ldphh/internal/core"
	"ldphh/internal/proto"
)

func treeParams(seed uint64) core.Params {
	return core.Params{Eps: 4, N: 20000, ItemBytes: 4, Y: 16, Seed: seed}
}

// treeReports builds a deterministic planted report stream for the tree
// tests (items 1 and 2 heavy, thin tail).
func treeReports(t testing.TB, params core.Params, n int) []core.Report {
	t.Helper()
	proto, err := core.New(params)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(41, 42))
	reports := make([]core.Report, n)
	for i := range reports {
		var item [4]byte
		switch {
		case i%10 < 4:
			item[3] = 1
		case i%10 < 7:
			item[3] = 2
		default:
			item[2] = byte(i % 89)
			item[3] = byte(i % 241)
		}
		rep, err := proto.Report(item[:], i, rng)
		if err != nil {
			t.Fatal(err)
		}
		reports[i] = rep
	}
	return reports
}

// TestTreeEquivalenceTCP is the end-to-end half of the tentpole property:
// a two-tier aggregation tree over real TCP — k leaf servers ingesting
// report shards concurrently, a root absorbing their snapshots via
// cmdSnapshot/cmdMergeSnapshot — must answer Identify byte-identically to
// one server that ingested every report itself. The wire reply carries
// counts as raw IEEE 754 bits, so the comparison is exact on items, order
// and float64 counts.
func TestTreeEquivalenceTCP(t *testing.T) {
	const n = 12000
	params := treeParams(314)
	reports := treeReports(t, params, n)

	// Reference: a single aggregator served the whole fleet.
	single, err := NewServer(params, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := SendReports(single.Addr(), reports); err != nil {
		t.Fatal(err)
	}
	want, err := RequestIdentify(single.Addr())
	if err != nil {
		t.Fatal(err)
	}
	single.Close()
	if len(want) == 0 {
		t.Fatal("reference round identified nothing; the equivalence check would be vacuous")
	}

	for _, k := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("leaves_%d", k), func(t *testing.T) {
			root, err := NewServer(params, "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer root.Close()
			leaves := make([]*Server, k)
			for l := range leaves {
				if leaves[l], err = NewServer(params, "127.0.0.1:0"); err != nil {
					t.Fatal(err)
				}
				defer leaves[l].Close()
			}
			// Leaf tier: each leaf ingests its shard over concurrent
			// connections.
			var wg sync.WaitGroup
			errs := make(chan error, k)
			for l := 0; l < k; l++ {
				var shard []core.Report
				for i := l; i < n; i += k {
					shard = append(shard, reports[i])
				}
				wg.Add(1)
				go func(addr string, shard []core.Report) {
					defer wg.Done()
					errs <- SendReports(addr, shard)
				}(leaves[l].Addr(), shard)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
			// Fan-in: pull each leaf's state and push it into the root.
			for l := 0; l < k; l++ {
				snap, err := RequestSnapshot(leaves[l].Addr())
				if err != nil {
					t.Fatal(err)
				}
				if err := PushSnapshot(root.Addr(), snap); err != nil {
					t.Fatal(err)
				}
			}
			if got := root.Absorbed(); got != n {
				t.Fatalf("root absorbed %d reports, want %d", got, n)
			}
			got, err := RequestIdentify(root.Addr())
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("tree identified %d items, single server %d", len(got), len(want))
			}
			for i := range got {
				if !bytes.Equal(got[i].Item, want[i].Item) || got[i].Count != want[i].Count {
					t.Fatalf("rank %d diverged: %x/%v vs %x/%v",
						i, got[i].Item, got[i].Count, want[i].Item, want[i].Count)
				}
			}
		})
	}
}

// TestSnapshotCommandErrors covers the failure replies of the two new
// commands: snapshotting a closed round, pushing corrupt bytes, and pushing
// a snapshot from a differently-seeded tree all answer ERR without
// disturbing the server.
func TestSnapshotCommandErrors(t *testing.T) {
	params := treeParams(99)
	srv, err := NewServer(params, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	reports := treeReports(t, params, 300)
	if err := SendReports(srv.Addr(), reports); err != nil {
		t.Fatal(err)
	}
	snap, err := RequestSnapshot(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}

	t.Run("merge corrupt blob", func(t *testing.T) {
		bad := append([]byte(nil), snap...)
		bad[0] = 'X'
		if err := PushSnapshot(srv.Addr(), bad); err == nil {
			t.Error("corrupt snapshot accepted")
		}
		if got := srv.Absorbed(); got != 300 {
			t.Errorf("corrupt push changed absorbed count to %d", got)
		}
	})
	t.Run("merge truncated blob", func(t *testing.T) {
		if err := PushSnapshot(srv.Addr(), snap[:len(snap)/2]); err == nil {
			t.Error("truncated snapshot accepted")
		}
	})
	t.Run("merge across seeds", func(t *testing.T) {
		other, err := NewServer(treeParams(100), "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer other.Close()
		if err := PushSnapshot(other.Addr(), snap); err == nil {
			t.Error("snapshot from a differently-seeded tree accepted")
		}
	})
	t.Run("self merge doubles counters", func(t *testing.T) {
		// Merging my own snapshot is legal (fingerprints match) and, per the
		// linear-accumulator semantics, double-counts: the operator-facing
		// reason snapshots must be retired once pushed.
		if err := PushSnapshot(srv.Addr(), snap); err != nil {
			t.Fatal(err)
		}
		if got := srv.Absorbed(); got != 600 {
			t.Errorf("self merge produced %d reports, want 600", got)
		}
	})
	t.Run("snapshot after identify", func(t *testing.T) {
		if _, err := RequestIdentify(srv.Addr()); err != nil {
			t.Fatal(err)
		}
		if _, err := RequestSnapshot(srv.Addr()); err == nil {
			t.Error("snapshot of a closed round accepted")
		}
		if err := PushSnapshot(srv.Addr(), snap); err == nil {
			t.Error("merge into a closed round accepted")
		}
	})
}

// TestIdentifyEmptyRound: cmdIdentify with zero absorbed reports is a legal
// degenerate round — the reply is an empty estimate list, not an error, and
// the round closes exactly like a populated one.
func TestIdentifyEmptyRound(t *testing.T) {
	srv, err := NewServer(treeParams(7), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	est, err := RequestIdentify(srv.Addr())
	if err != nil {
		t.Fatalf("identify on an empty round failed: %v", err)
	}
	if len(est) != 0 {
		t.Fatalf("empty round identified %d items", len(est))
	}
	if _, err := RequestIdentify(srv.Addr()); err == nil {
		t.Error("second identify on the closed empty round accepted")
	}
}

// TestClientDisconnectMidFrame: a bulk connection (past the shardAfter
// graduation point) that dies in the middle of a frame must cost the server
// only the torn frame — every complete frame before it is merged — and the
// server keeps serving.
func TestClientDisconnectMidFrame(t *testing.T) {
	params := treeParams(17)
	srv, err := NewServer(params, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	const sent = shardAfter + 100 // force the shard-accumulator path
	reports := treeReports(t, params, sent)

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.Write([]byte{proto.IDPrivateExpanderSketch, cmdReport})
	for _, rep := range reports {
		if err := WriteFrame(&buf, rep); err != nil {
			t.Fatal(err)
		}
	}
	// Ship every complete frame plus half of a torn one, then vanish
	// without the half-close handshake.
	torn, err := EncodeReport(reports[0])
	if err != nil {
		t.Fatal(err)
	}
	buf.Write(torn[:FrameSize/2])
	if _, err := conn.Write(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && srv.Absorbed() < sent {
		time.Sleep(5 * time.Millisecond)
	}
	if got := srv.Absorbed(); got != sent {
		t.Fatalf("server absorbed %d reports, want the %d complete frames", got, sent)
	}
	// Server is still healthy: snapshot and identify both answer.
	if _, err := RequestSnapshot(srv.Addr()); err != nil {
		t.Fatalf("server wedged after torn frame: %v", err)
	}
	if _, err := RequestIdentify(srv.Addr()); err != nil {
		t.Fatalf("identify failed after torn frame: %v", err)
	}
}

// TestCloseDuringIngestion: Close racing an active bulk stream must wait
// for the in-flight connection, keep every complete frame, and not panic or
// deadlock (the sender closes its half, so the handler drains and exits).
func TestCloseDuringIngestion(t *testing.T) {
	params := treeParams(23)
	srv, err := NewServer(params, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	const sent = shardAfter + 512
	reports := treeReports(t, params, sent)

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte{proto.IDPrivateExpanderSketch, cmdReport}); err != nil {
		t.Fatal(err)
	}
	// First half of the stream, guaranteed in flight before Close starts.
	var first bytes.Buffer
	for _, rep := range reports[:sent/2] {
		if err := WriteFrame(&first, rep); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := conn.Write(first.Bytes()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && srv.Absorbed() == 0 {
		time.Sleep(2 * time.Millisecond)
	}

	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()

	// The server is now draining us; finish the stream and disconnect so
	// Close can complete.
	var second bytes.Buffer
	for _, rep := range reports[sent/2:] {
		if err := WriteFrame(&second, rep); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := conn.Write(second.Bytes()); err != nil {
		t.Fatal(err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.CloseWrite()
	}
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("Close failed: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close deadlocked against an active ingestion stream")
	}
	conn.Close()
	if got := srv.Absorbed(); got != sent {
		t.Fatalf("server absorbed %d reports across Close, want %d", got, sent)
	}
	// After Close the listener is gone: new rounds are refused.
	if err := SendReports(srv.Addr(), reports[:1]); err == nil {
		t.Error("send succeeded after Close")
	}
}
