package protocol

import (
	"bytes"
	"math"
	"math/rand/v2"
	"net"
	"sync"
	"testing"
	"time"

	"ldphh/internal/core"
	"ldphh/internal/freqoracle"
	"ldphh/internal/proto"
	"ldphh/internal/workload"
)

func TestFrameRoundtrip(t *testing.T) {
	reps := []core.Report{
		{M: 0, Dir: freqoracle.DirectReport{Col: 0, Bit: 1},
			Conf: freqoracle.HashtogramReport{Row: 0, Col: 0, Bit: -1}},
		{M: 15, Dir: freqoracle.DirectReport{Col: 1 << 20, Bit: -1},
			Conf: freqoracle.HashtogramReport{Row: 31, Col: 12345, Bit: 1}},
		{M: 65535, Dir: freqoracle.DirectReport{Col: ^uint32(0), Bit: 1},
			Conf: freqoracle.HashtogramReport{Row: 65535, Col: ^uint32(0), Bit: 1}},
	}
	for _, rep := range reps {
		buf, err := EncodeReport(rep)
		if err != nil {
			t.Fatal(err)
		}
		if len(buf) != FrameSize {
			t.Fatalf("frame size %d", len(buf))
		}
		got, err := DecodeReport(buf)
		if err != nil {
			t.Fatal(err)
		}
		if got != rep {
			t.Fatalf("roundtrip mismatch: %+v != %+v", got, rep)
		}
	}
}

func TestFrameValidation(t *testing.T) {
	if _, err := EncodeReport(core.Report{M: 1 << 17}); err == nil {
		t.Error("oversized group accepted")
	}
	if _, err := DecodeReport(make([]byte, 3)); err == nil {
		t.Error("short frame accepted")
	}
	bad := make([]byte, FrameSize)
	bad[0] = 99
	if _, err := DecodeReport(bad); err == nil {
		t.Error("unknown protocol ID accepted")
	}
	bad[0] = proto.IDBitstogram
	if _, err := DecodeReport(bad); err == nil {
		t.Error("frame from another protocol accepted")
	}
	bad[0] = proto.IDPrivateExpanderSketch
	bad[1] = 99
	if _, err := DecodeReport(bad); err == nil {
		t.Error("bad codec version accepted")
	}
	bad[1] = Version
	bad[8] = 7 // the direct-report bit byte
	if _, err := DecodeReport(bad); err == nil {
		t.Error("bad bit byte accepted")
	}
}

func TestFrameStreamRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	var want []core.Report
	for i := 0; i < 100; i++ {
		rep := core.Report{
			M:    i % 8,
			Dir:  freqoracle.DirectReport{Col: uint32(i * 31), Bit: int8(1 - 2*(i%2))},
			Conf: freqoracle.HashtogramReport{Row: i % 16, Col: uint32(i), Bit: int8(2*(i%2) - 1)},
		}
		want = append(want, rep)
		if err := WriteFrame(&buf, rep); err != nil {
			t.Fatal(err)
		}
	}
	for i := range want {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got != want[i] {
			t.Fatalf("frame %d mismatch", i)
		}
	}
	if _, err := ReadFrame(&buf); err == nil {
		t.Error("expected EOF at stream end")
	}
}

func TestEndToEndOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("network round")
	}
	const n = 30000
	params := core.Params{Eps: 4, N: n, ItemBytes: 4, Y: 64, Seed: 777}
	srv, err := NewServer(params, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	dom := workload.Domain{ItemBytes: 4}
	ds, err := workload.Planted(dom, n, []float64{0.30, 0.22}, rand.New(rand.NewPCG(1, 2)))
	if err != nil {
		t.Fatal(err)
	}

	// Simulate a fleet: 4 concurrent batches of users, each over its own
	// connection (the paper's non-interactive single-message model).
	pr := srv.Protocol()
	const fleets = 4
	var wg sync.WaitGroup
	errs := make(chan error, fleets)
	for f := 0; f < fleets; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(f), 99))
			var batch []core.Report
			for i := f; i < n; i += fleets {
				rep, err := pr.Report(ds.Items[i], i, rng)
				if err != nil {
					errs <- err
					return
				}
				batch = append(batch, rep)
			}
			errs <- SendReports(srv.Addr(), batch)
		}(f)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := srv.Absorbed(); got != n {
		t.Fatalf("server absorbed %d of %d reports", got, n)
	}

	est, err := RequestIdentify(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		item := dom.Item(uint64(i))
		found := false
		for _, e := range est {
			if bytes.Equal(e.Item, item) {
				found = true
				if math.Abs(e.Count-float64(ds.Count(item))) > 6000 {
					t.Errorf("item %d estimate %.0f, truth %d", i, e.Count, ds.Count(item))
				}
			}
		}
		if !found {
			t.Errorf("item %d not identified over TCP", i)
		}
	}
	// A second identify must fail: the round is closed.
	if _, err := RequestIdentify(srv.Addr()); err == nil {
		t.Error("second identify accepted")
	}
}

func TestServerRejectsCorruptStream(t *testing.T) {
	params := core.Params{Eps: 2, N: 1000, ItemBytes: 4, Y: 64, Seed: 5}
	srv, err := NewServer(params, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// A truncated frame must not be absorbed and must not wedge the server.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	preamble := []byte{proto.IDPrivateExpanderSketch, cmdReport}
	if _, err := conn.Write(append(append([]byte(nil), preamble...), make([]byte, FrameSize/2)...)); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	// A frame with an unknown protocol-ID byte must be rejected mid-stream.
	pr := srv.Protocol()
	rng := rand.New(rand.NewPCG(1, 1))
	good, err := pr.Report([]byte{0, 0, 0, 1}, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := EncodeReport(good)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), frame...)
	bad[0] = 99
	conn2, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	payload := append(append([]byte(nil), preamble...), frame...)
	payload = append(payload, bad...)
	if _, err := conn2.Write(payload); err != nil {
		t.Fatal(err)
	}
	conn2.Close()

	// Give the handlers a moment, then confirm the server survived and
	// absorbed at most the one good frame.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && srv.Absorbed() < 1 {
		time.Sleep(5 * time.Millisecond)
	}
	if a := srv.Absorbed(); a > 1 {
		t.Fatalf("server absorbed %d reports from corrupt streams", a)
	}
	// Server still functional: a clean batch goes through.
	if err := SendReports(srv.Addr(), []core.Report{good}); err != nil {
		t.Fatalf("server wedged after corrupt streams: %v", err)
	}
}

func TestUnknownCommandRejected(t *testing.T) {
	params := core.Params{Eps: 2, N: 100, ItemBytes: 4, Y: 64, Seed: 6}
	srv, err := NewServer(params, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{proto.IDWildcard, 0xee}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, _ := conn.Read(buf)
	if n == 0 || buf[0] != 'E' { // "ERR ..." reply
		t.Fatalf("expected error reply, got %q", buf[:n])
	}
}

func BenchmarkEncodeReport(b *testing.B) {
	rep := core.Report{
		M:    7,
		Dir:  freqoracle.DirectReport{Col: 12345, Bit: 1},
		Conf: freqoracle.HashtogramReport{Row: 3, Col: 999, Bit: -1},
	}
	for i := 0; i < b.N; i++ {
		if _, err := EncodeReport(rep); err != nil {
			b.Fatal(err)
		}
	}
}
