package protocol

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"strings"
	"time"

	"ldphh/internal/core"
	"ldphh/internal/proto"
)

// Network client helpers. Every operation has a context-aware variant with
// real deadline and cancellation propagation: the context's deadline is
// installed as the connection deadline, and a cancellation mid-operation
// wakes any blocked read or write immediately — a stalled or wedged server
// can no longer block a client forever (the regression
// TestContextClientsAgainstWedgedServer pins this). The legacy
// context-free helpers delegate with context.Background(), preserving their
// original wait-forever semantics for callers that want them.

// withConn dials addr, wires ctx's deadline and cancellation to the
// connection, and runs fn. If fn fails because ctx expired, the returned
// error wraps ctx.Err() so callers can errors.Is against
// context.DeadlineExceeded / context.Canceled.
func withConn(ctx context.Context, addr string, fn func(conn net.Conn) error) error {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	if dl, ok := ctx.Deadline(); ok {
		if err := conn.SetDeadline(dl); err != nil {
			return err
		}
	}
	// Cancellation (not just deadline expiry) must interrupt blocked I/O:
	// snap the deadline into the past the moment ctx is done.
	stop := context.AfterFunc(ctx, func() { conn.SetDeadline(time.Now()) })
	defer stop()
	if err := fn(conn); err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return fmt.Errorf("protocol: %w (%v)", ctxErr, err)
		}
		// The only deadline ever set on the connection is ctx's, so an I/O
		// timeout at the context's deadline means the context is expiring —
		// the poller can fire a hair before ctx.Err() flips, so wait out the
		// skew and report the context's error. A timeout from anywhere else
		// (a kernel ETIMEDOUT also satisfies net.Error.Timeout) is returned
		// as-is: with no imminent ctx deadline, Done may never fire.
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			if dl, ok := ctx.Deadline(); ok && time.Until(dl) < time.Second {
				<-ctx.Done()
				return fmt.Errorf("protocol: %w (%v)", ctx.Err(), err)
			}
		}
		return err
	}
	return nil
}

// writePreamble opens the negotiation: the protocol ID the client speaks
// and the command it is issuing.
func writePreamble(w io.Writer, id, cmd byte) error {
	_, err := w.Write([]byte{id, cmd})
	return err
}

// awaitAck reads the single acknowledgment byte, relaying a textual
// "ERR ...\n" reply as an error.
func awaitAck(r *bufio.Reader, op string) error {
	first, err := r.ReadByte()
	if err != nil {
		return fmt.Errorf("protocol: waiting for %s ack: %w", op, err)
	}
	if first == ackByte {
		return nil
	}
	msg, _ := r.ReadString('\n')
	return fmt.Errorf("protocol: server rejected %s: %s", op, strings.TrimSpace(string(first)+msg))
}

// closeWriter is the half-close capability the stream report path depends
// on: the server only learns a cmdReport stream ended when the write side
// closes. *net.TCPConn has it; so do *tls.Conn and the unix-socket conn.
type closeWriter interface{ CloseWrite() error }

// SendWire streams pre-encoded wire reports to the server over one
// connection in the legacy cmdReport framing and waits for the
// acknowledgment that every frame was absorbed. All reports must belong to
// one protocol (the first report's ID is negotiated for the connection);
// an empty batch is a no-op.
//
// The stream framing needs a connection that can half-close (the server
// reads until EOF); SendWire fails fast with an explicit error on any
// other connection type instead of hanging both ends. SendWireBatch and
// IngestConn use the length-prefixed mega-batch framing, which has no EOF
// dependence at all and also amortizes the dial over many batches.
func SendWire(ctx context.Context, addr string, reports []proto.WireReport) error {
	if len(reports) == 0 {
		return nil
	}
	return withConn(ctx, addr, func(conn net.Conn) error {
		return streamWire(conn, reports)
	})
}

// streamWire writes the cmdReport preamble plus every frame, half-closes,
// and waits for the ACK. Split from SendWire so the half-close contract is
// testable on a non-TCP connection.
func streamWire(conn net.Conn, reports []proto.WireReport) error {
	cw, ok := conn.(closeWriter)
	if !ok {
		// Without a half-close the server never sees EOF and both sides
		// hang: the server waiting for more frames, the client for the ACK.
		// Fail before the first byte rather than wedge.
		return fmt.Errorf("protocol: connection type %T cannot half-close (no CloseWrite); the cmdReport stream framing needs EOF — use the mega-batch framing (SendWireBatch/IngestConn) instead", conn)
	}
	id := reports[0].ProtocolID()
	bw := bufio.NewWriter(conn)
	if err := writePreamble(bw, id, cmdReport); err != nil {
		return err
	}
	for _, wr := range reports {
		if got := wr.ProtocolID(); got != id {
			return fmt.Errorf("protocol: mixed protocol IDs in one batch (%#02x and %#02x)", id, got)
		}
		if _, err := bw.Write(wr); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	// Half-close the write side so the server sees EOF, then wait for ACK.
	if err := cw.CloseWrite(); err != nil {
		return err
	}
	return awaitAck(bufio.NewReader(conn), "batch")
}

// SendWireBatch delivers pre-encoded wire reports in one cmdReportBatch
// command over one connection and waits for the acknowledgment. The
// length-prefixed framing needs no half-close handshake; for repeated
// batches prefer DialIngest, which amortizes the dial across the whole
// session. All reports must belong to one protocol; an empty batch is a
// no-op.
func SendWireBatch(ctx context.Context, addr string, reports []proto.WireReport) error {
	if len(reports) == 0 {
		return nil
	}
	c, err := DialIngest(ctx, addr, reports[0].ProtocolID())
	if err != nil {
		return err
	}
	defer c.Close()
	return c.SendBatch(ctx, reports)
}

// SendReports streams PES reports to the server and waits for its
// acknowledgment (context-free legacy form).
func SendReports(addr string, reports []core.Report) error {
	return SendReportsContext(context.Background(), addr, reports)
}

// SendReportsContext is SendReports with deadline/cancellation propagation.
// Delivery rides the mega-batch framing (one length-prefixed command, no
// EOF handshake); the absorbed state is bit-identical to the stream path.
func SendReportsContext(ctx context.Context, addr string, reports []core.Report) error {
	wrs := make([]proto.WireReport, len(reports))
	for i, rep := range reports {
		wr, err := core.EncodeReportWire(rep)
		if err != nil {
			return err
		}
		wrs[i] = wr
	}
	return SendWireBatch(ctx, addr, wrs)
}

// IngestConn is a persistent ingest session: one TCP connection carrying
// any number of cmdReportBatch commands, so the dial (and the per-frame
// syscall overhead) amortizes across an entire device fleet's worth of
// reports instead of being paid per batch. It is the client half of the
// million-device ingest path — cmd/hhload drives servers to saturation
// through it.
//
// An IngestConn is not safe for concurrent use; open one per sending
// goroutine. After any error the connection is dead: Close it and dial
// again.
type IngestConn struct {
	conn     net.Conn
	bw       *bufio.Writer
	br       *bufio.Reader
	id       byte
	frameLen int
}

// DialIngest opens an ingest session to a server for the protocol with the
// given registered ID. The context bounds the dial only; each SendBatch
// call takes its own context.
func DialIngest(ctx context.Context, addr string, id byte) (*IngestConn, error) {
	codec, ok := proto.Lookup(id)
	if !ok {
		return nil, fmt.Errorf("protocol: protocol ID %#02x has no registered codec", id)
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &IngestConn{
		conn:     conn,
		bw:       bufio.NewWriterSize(conn, 1<<16),
		br:       bufio.NewReader(conn),
		id:       id,
		frameLen: codec.FrameBytes(),
	}
	// The protocol ID negotiates once per connection; it flushes with the
	// first batch.
	if err := c.bw.WriteByte(id); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// FrameBytes returns the fixed wire frame length of the session's protocol
// (the unit SendEncoded slabs must be a multiple of).
func (c *IngestConn) FrameBytes() int { return c.frameLen }

// Close tears the session down.
func (c *IngestConn) Close() error { return c.conn.Close() }

// runWithCtx mirrors withConn's deadline/cancellation wiring for one
// operation on the persistent connection: ctx's deadline becomes the conn
// deadline for the call, cancellation snaps it into the past, and the
// deadline is cleared afterwards so later calls start fresh.
func (c *IngestConn) runWithCtx(ctx context.Context, fn func() error) error {
	if dl, ok := ctx.Deadline(); ok {
		if err := c.conn.SetDeadline(dl); err != nil {
			return err
		}
		defer c.conn.SetDeadline(time.Time{}) //nolint:errcheck // best-effort reset
	}
	stop := context.AfterFunc(ctx, func() { c.conn.SetDeadline(time.Now()) })
	defer stop()
	if err := fn(); err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return fmt.Errorf("protocol: %w (%v)", ctxErr, err)
		}
		// Same poller-skew handling as withConn: an I/O timeout at ctx's
		// imminent deadline is the context expiring a hair early.
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			if dl, ok := ctx.Deadline(); ok && time.Until(dl) < time.Second {
				<-ctx.Done()
				return fmt.Errorf("protocol: %w (%v)", ctx.Err(), err)
			}
		}
		return err
	}
	return nil
}

// SendBatch delivers one mega-batch of pre-encoded reports and waits for
// the acknowledgment that every frame was absorbed. All reports must carry
// the session's protocol ID and the codec's exact frame length; an empty
// batch is a no-op. The whole exchange — header, frames, ACK — stays on
// the session's connection, so consecutive batches pay zero dials and the
// frames ride a handful of large writes.
func (c *IngestConn) SendBatch(ctx context.Context, reports []proto.WireReport) error {
	if len(reports) == 0 {
		return nil
	}
	if len(reports) > maxBatchFrames {
		return fmt.Errorf("protocol: batch of %d frames exceeds the %d-frame cap; split it", len(reports), maxBatchFrames)
	}
	return c.runWithCtx(ctx, func() error {
		if err := c.bw.WriteByte(cmdReportBatch); err != nil {
			return err
		}
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(reports)))
		if _, err := c.bw.Write(hdr[:]); err != nil {
			return err
		}
		for _, wr := range reports {
			if got := wr.ProtocolID(); got != c.id {
				return fmt.Errorf("protocol: mixed protocol IDs in one batch (%#02x and %#02x)", c.id, got)
			}
			if len(wr) != c.frameLen {
				return fmt.Errorf("protocol: report of %d bytes in a %d-byte-frame batch", len(wr), c.frameLen)
			}
			if _, err := c.bw.Write(wr); err != nil {
				return err
			}
		}
		if err := c.bw.Flush(); err != nil {
			return err
		}
		return awaitAck(c.br, "batch")
	})
}

// SendEncoded delivers one mega-batch from a pre-packed contiguous slab of
// frames (length a multiple of FrameBytes) and waits for the
// acknowledgment. This is the zero-copy fast path for senders that keep
// their fleet's reports densely encoded — the slab goes to the socket as
// one write, with no per-report slice handling at all.
func (c *IngestConn) SendEncoded(ctx context.Context, slab []byte) error {
	if len(slab) == 0 {
		return nil
	}
	if len(slab)%c.frameLen != 0 {
		return fmt.Errorf("protocol: slab of %d bytes is not a whole number of %d-byte frames", len(slab), c.frameLen)
	}
	count := len(slab) / c.frameLen
	if count > maxBatchFrames {
		return fmt.Errorf("protocol: batch of %d frames exceeds the %d-frame cap; split it", count, maxBatchFrames)
	}
	return c.runWithCtx(ctx, func() error {
		if err := c.bw.WriteByte(cmdReportBatch); err != nil {
			return err
		}
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(count))
		if _, err := c.bw.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := c.bw.Write(slab); err != nil {
			return err
		}
		if err := c.bw.Flush(); err != nil {
			return err
		}
		return awaitAck(c.br, "batch")
	})
}

// readEstimates parses the identify reply: u32 count, then per estimate a
// u16 item length, the item bytes and the count's IEEE 754 bits — so the
// TCP path returns bit-identical float64 estimates.
func readEstimates(br *bufio.Reader) ([]proto.Estimate, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("protocol: reading identify reply: %w", err)
	}
	// The server answers failures with a textual "ERR ...\n" line instead of
	// an estimate count; relay its message rather than misparsing the bytes.
	if string(hdr[:]) == "ERR " {
		msg, _ := br.ReadString('\n')
		return nil, fmt.Errorf("protocol: server rejected identify: %s", strings.TrimSpace(msg))
	}
	n := binary.BigEndian.Uint32(hdr[:])
	const maxItems = 1 << 24
	if n > maxItems {
		return nil, fmt.Errorf("protocol: implausible estimate count %d", n)
	}
	out := make([]proto.Estimate, 0, n)
	for i := uint32(0); i < n; i++ {
		var lenb [2]byte
		if _, err := io.ReadFull(br, lenb[:]); err != nil {
			return nil, err
		}
		item := make([]byte, binary.BigEndian.Uint16(lenb[:]))
		if _, err := io.ReadFull(br, item); err != nil {
			return nil, err
		}
		var cnt [8]byte
		if _, err := io.ReadFull(br, cnt[:]); err != nil {
			return nil, err
		}
		out = append(out, proto.Estimate{Item: item, Count: math.Float64frombits(binary.BigEndian.Uint64(cnt[:]))})
	}
	return out, nil
}

// RequestIdentify asks the server to run identification and returns the
// estimates (context-free legacy form: waits as long as the server takes).
func RequestIdentify(addr string) ([]proto.Estimate, error) {
	return RequestIdentifyContext(context.Background(), addr)
}

// RequestIdentifyContext is RequestIdentify with deadline/cancellation
// propagation: a wedged or slow server cannot block the caller past the
// context's deadline.
func RequestIdentifyContext(ctx context.Context, addr string) ([]proto.Estimate, error) {
	var est []proto.Estimate
	err := withConn(ctx, addr, func(conn net.Conn) error {
		if err := writePreamble(conn, proto.IDWildcard, cmdIdentify); err != nil {
			return err
		}
		var err error
		est, err = readEstimates(bufio.NewReader(conn))
		return err
	})
	if err != nil {
		return nil, err
	}
	return est, nil
}

// QueryTopK asks a streaming aggregation server for its current top-k heavy
// hitters without retiring the round (context-free legacy form). k <= 0
// asks for the server's configured answer size. Servers for batch protocols
// reject the query with an ERR reply.
func QueryTopK(addr string, k int) ([]proto.Estimate, error) {
	return QueryTopKContext(context.Background(), addr, k)
}

// QueryTopKContext is QueryTopK with deadline/cancellation propagation.
func QueryTopKContext(ctx context.Context, addr string, k int) ([]proto.Estimate, error) {
	if k < 0 {
		k = 0
	}
	var est []proto.Estimate
	err := withConn(ctx, addr, func(conn net.Conn) error {
		bw := bufio.NewWriter(conn)
		if err := writePreamble(bw, proto.IDWildcard, cmdQueryTopK); err != nil {
			return err
		}
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(k))
		if _, err := bw.Write(hdr[:]); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		var err error
		est, err = readEstimates(bufio.NewReader(conn))
		return err
	})
	if err != nil {
		return nil, err
	}
	return est, nil
}

// QueryTopK asks the server for its current top-k over the session's
// persistent connection — the command is pipelined, so a monitor can
// interleave queries with SendBatch calls without re-dialing. k <= 0 asks
// for the server's configured answer size.
func (c *IngestConn) QueryTopK(ctx context.Context, k int) ([]proto.Estimate, error) {
	if k < 0 {
		k = 0
	}
	var est []proto.Estimate
	err := c.runWithCtx(ctx, func() error {
		if err := c.bw.WriteByte(cmdQueryTopK); err != nil {
			return err
		}
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(k))
		if _, err := c.bw.Write(hdr[:]); err != nil {
			return err
		}
		if err := c.bw.Flush(); err != nil {
			return err
		}
		var err error
		est, err = readEstimates(c.br)
		return err
	})
	if err != nil {
		return nil, err
	}
	return est, nil
}

// readRoundState parses the round-command reply: a u32 length prefix plus
// an encoded proto.RoundState, with the textual "ERR ...\n" failure reply
// relayed as an error (the length cap keeps the two unambiguous).
func readRoundState(br *bufio.Reader, op string) (proto.RoundState, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return proto.RoundState{}, fmt.Errorf("protocol: reading %s reply: %w", op, err)
	}
	if string(hdr[:]) == "ERR " {
		msg, _ := br.ReadString('\n')
		return proto.RoundState{}, fmt.Errorf("protocol: server rejected %s: %s", op, strings.TrimSpace(msg))
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxSnapshotBytes {
		return proto.RoundState{}, fmt.Errorf("protocol: implausible round state length %d", n)
	}
	blob := make([]byte, n)
	if _, err := io.ReadFull(br, blob); err != nil {
		return proto.RoundState{}, fmt.Errorf("protocol: reading %s body: %w", op, err)
	}
	return proto.DecodeRoundState(blob)
}

// requestRound issues one round command (read or advance) over a fresh
// connection.
func requestRound(ctx context.Context, addr string, cmd byte, op string) (proto.RoundState, error) {
	var rs proto.RoundState
	err := withConn(ctx, addr, func(conn net.Conn) error {
		if err := writePreamble(conn, proto.IDWildcard, cmd); err != nil {
			return err
		}
		var err error
		rs, err = readRoundState(bufio.NewReader(conn), op)
		return err
	})
	return rs, err
}

// RequestRound asks an interactive aggregation server for the open round's
// broadcast state — the candidate-prefix set the round's user group reports
// against. Servers for single-round protocols reject the command with an
// ERR reply (context-free legacy form).
func RequestRound(addr string) (proto.RoundState, error) {
	return RequestRoundContext(context.Background(), addr)
}

// RequestRoundContext is RequestRound with deadline/cancellation
// propagation.
func RequestRoundContext(ctx context.Context, addr string) (proto.RoundState, error) {
	return requestRound(ctx, addr, cmdRound, "round")
}

// AdvanceRound asks an interactive aggregation server to finalize the open
// round and open the next one, returning the new broadcast state (Done once
// the final round committed). When the server checkpoints, the transition
// is durable before this reply arrives (context-free legacy form).
func AdvanceRound(addr string) (proto.RoundState, error) {
	return AdvanceRoundContext(context.Background(), addr)
}

// AdvanceRoundContext is AdvanceRound with deadline/cancellation
// propagation.
func AdvanceRoundContext(ctx context.Context, addr string) (proto.RoundState, error) {
	return requestRound(ctx, addr, cmdAdvanceRound, "round advance")
}

// Round reads the open round's broadcast state over the session's
// persistent connection — pipelined, so a round driver interleaves state
// reads, report batches and advances without re-dialing.
func (c *IngestConn) Round(ctx context.Context) (proto.RoundState, error) {
	return c.roundCmd(ctx, cmdRound, "round")
}

// AdvanceRound finalizes the open round over the session's persistent
// connection and returns the new broadcast state.
func (c *IngestConn) AdvanceRound(ctx context.Context) (proto.RoundState, error) {
	return c.roundCmd(ctx, cmdAdvanceRound, "round advance")
}

func (c *IngestConn) roundCmd(ctx context.Context, cmd byte, op string) (proto.RoundState, error) {
	var rs proto.RoundState
	err := c.runWithCtx(ctx, func() error {
		if err := c.bw.WriteByte(cmd); err != nil {
			return err
		}
		if err := c.bw.Flush(); err != nil {
			return err
		}
		var err error
		rs, err = readRoundState(c.br, op)
		return err
	})
	return rs, err
}

// RequestSnapshot asks an aggregation server for its accumulated state and
// returns the snapshot bytes, ready to feed a parent aggregator via
// PushSnapshot (or Mergeable.MergeSnapshot / Restore in process).
func RequestSnapshot(addr string) ([]byte, error) {
	return RequestSnapshotContext(context.Background(), addr)
}

// RequestSnapshotContext is RequestSnapshot with deadline/cancellation
// propagation.
func RequestSnapshotContext(ctx context.Context, addr string) ([]byte, error) {
	var snap []byte
	err := withConn(ctx, addr, func(conn net.Conn) error {
		if err := writePreamble(conn, proto.IDWildcard, cmdSnapshot); err != nil {
			return err
		}
		br := bufio.NewReader(conn)
		var hdr [4]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return fmt.Errorf("protocol: reading snapshot reply: %w", err)
		}
		// Failures arrive as a textual "ERR ...\n" line instead of a length;
		// the cap below keeps the two unambiguous ("ERR " decodes above it).
		if string(hdr[:]) == "ERR " {
			msg, _ := br.ReadString('\n')
			return fmt.Errorf("protocol: server rejected snapshot: %s", strings.TrimSpace(msg))
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n > maxSnapshotBytes {
			return fmt.Errorf("protocol: implausible snapshot length %d", n)
		}
		snap = make([]byte, n)
		if _, err := io.ReadFull(br, snap); err != nil {
			return fmt.Errorf("protocol: reading snapshot body: %w", err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return snap, nil
}

// PushSnapshot ships a leaf aggregator's snapshot to a parent server, which
// merges it into its own state, and waits for the acknowledgment. The two
// ends must run protocols with matching parameters (for PES: equal
// fingerprints — same Params.Seed and sketch geometry); a mismatch is
// rejected server-side before any state changes.
func PushSnapshot(addr string, snap []byte) error {
	return PushSnapshotContext(context.Background(), addr, snap)
}

// PushSnapshotContext is PushSnapshot with deadline/cancellation
// propagation.
func PushSnapshotContext(ctx context.Context, addr string, snap []byte) error {
	if len(snap) > maxSnapshotBytes {
		return fmt.Errorf("protocol: snapshot of %d bytes exceeds transfer cap", len(snap))
	}
	return withConn(ctx, addr, func(conn net.Conn) error {
		bw := bufio.NewWriter(conn)
		if err := writePreamble(bw, proto.IDWildcard, cmdMergeSnapshot); err != nil {
			return err
		}
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(snap)))
		if _, err := bw.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := bw.Write(snap); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		return awaitAck(bufio.NewReader(conn), "snapshot merge")
	})
}
