package protocol

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// corpusDir holds the checked-in seed corpus for FuzzDecodeReport. The Go
// fuzzer picks these up automatically when run with -fuzz, and
// TestDecodeReportCorpus replays them deterministically in every plain
// `go test` run so promoted regressions stay covered without the fuzzer.
const corpusDir = "testdata/fuzz/FuzzDecodeReport"

// readCorpusEntry parses one file in Go's `go test fuzz v1` corpus format:
// a version header line followed by one []byte("...") literal per fuzz
// argument (FuzzDecodeReport takes exactly one).
func readCorpusEntry(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	if len(lines) != 2 || lines[0] != "go test fuzz v1" {
		return nil, fmt.Errorf("corpus file %s: want version header plus one value line, got %d lines", path, len(lines))
	}
	lit := lines[1]
	const prefix, suffix = `[]byte(`, `)`
	if !strings.HasPrefix(lit, prefix) || !strings.HasSuffix(lit, suffix) {
		return nil, fmt.Errorf("corpus file %s: value %q is not a []byte literal", path, lit)
	}
	s, err := strconv.Unquote(lit[len(prefix) : len(lit)-len(suffix)])
	if err != nil {
		return nil, fmt.Errorf("corpus file %s: %w", path, err)
	}
	return []byte(s), nil
}

// TestDecodeReportCorpus replays the seed corpus through the same invariant
// FuzzDecodeReport enforces: the decoder never panics, and any frame it
// accepts re-encodes to the identical bytes (canonical form).
func TestDecodeReportCorpus(t *testing.T) {
	entries, err := os.ReadDir(corpusDir)
	if err != nil {
		t.Fatalf("reading seed corpus: %v", err)
	}
	if len(entries) == 0 {
		t.Fatal("seed corpus is empty")
	}
	// Guard against the corpus degenerating into rejects only: at least one
	// entry must exercise the canonical-form half of the invariant. Counted
	// in the parent so -run filters over the subtests cannot skew it.
	accepted := 0
	for _, entry := range entries {
		if entry.IsDir() {
			continue
		}
		data, err := readCorpusEntry(filepath.Join(corpusDir, entry.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeReport(data); err == nil {
			accepted++
		}
		t.Run(entry.Name(), func(t *testing.T) {
			rep, err := DecodeReport(data)
			if err != nil {
				return // rejected input; not panicking is the invariant
			}
			out, err := EncodeReport(rep)
			if err != nil {
				t.Fatalf("decoded frame failed to re-encode: %v", err)
			}
			if !bytes.Equal(out, data) {
				t.Fatalf("decode/encode not canonical: %x -> %x", data, out)
			}
		})
	}
	if accepted == 0 {
		t.Error("no corpus entry decodes successfully; canonical-form invariant untested")
	}
}
