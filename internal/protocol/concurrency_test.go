package protocol

import (
	"bytes"
	"math/rand/v2"
	"sync"
	"testing"

	"ldphh/internal/core"
	"ldphh/internal/workload"
)

// TestConcurrentIngestionMatchesSequential is the sharded-ingestion
// correctness gate (run under -race in CI): many goroutine clients stream
// frames to one server over concurrent connections, and the result must be
// indistinguishable from absorbing the same reports sequentially into a
// fresh protocol — same absorbed count, bit-identical identification.
// Equality is exact, not approximate: every counter is an integer-valued
// float64, so merge order cannot perturb any estimate.
func TestConcurrentIngestionMatchesSequential(t *testing.T) {
	const (
		n       = 8000
		clients = 8
	)
	params := core.Params{Eps: 4, N: n, ItemBytes: 4, Y: 64, Seed: 4242}

	dom := workload.Domain{ItemBytes: 4}
	ds, err := workload.Planted(dom, n, []float64{0.3, 0.2}, rand.New(rand.NewPCG(9, 9)))
	if err != nil {
		t.Fatal(err)
	}

	// Deterministic report set: client c owns users c, c+clients, ... and
	// derives all randomness from its own seeded generator.
	client, err := core.NewClient(params)
	if err != nil {
		t.Fatal(err)
	}
	batches := make([][]core.Report, clients)
	for c := 0; c < clients; c++ {
		rng := rand.New(rand.NewPCG(uint64(c), 1234))
		for i := c; i < n; i += clients {
			rep, err := client.Report(ds.Items[i], i, rng)
			if err != nil {
				t.Fatal(err)
			}
			batches[c] = append(batches[c], rep)
		}
	}

	// Sequential reference: same params, same reports, one Absorb loop.
	ref, err := core.New(params)
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range batches {
		for _, rep := range batch {
			if err := ref.Absorb(rep); err != nil {
				t.Fatal(err)
			}
		}
	}
	want, err := ref.Identify()
	if err != nil {
		t.Fatal(err)
	}

	// Concurrent network round: every client streams its batch over its own
	// connection simultaneously.
	srv, err := NewServer(params, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(batch []core.Report) {
			defer wg.Done()
			errs <- SendReports(srv.Addr(), batch)
		}(batches[c])
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	if got := srv.Absorbed(); got != n {
		t.Fatalf("server absorbed %d of %d reports", got, n)
	}
	got, err := RequestIdentify(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}

	if len(got) != len(want) {
		t.Fatalf("concurrent round identified %d items, sequential %d", len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i].Item, want[i].Item) {
			t.Fatalf("rank %d item %x, sequential %x", i, got[i].Item, want[i].Item)
		}
		// The identify reply truncates counts to int64 on the wire; compare
		// at wire granularity.
		if int64(got[i].Count) != int64(want[i].Count) {
			t.Fatalf("rank %d count %v, sequential %v", i, got[i].Count, want[i].Count)
		}
	}
}

// TestAccumulatorShardEquivalence drives the shard machinery directly (no
// network): AbsorbBatch across several shard counts and a hand-built
// accumulator tree must all reproduce the sequential Identify output
// exactly.
func TestAccumulatorShardEquivalence(t *testing.T) {
	const n = 4000
	params := core.Params{Eps: 4, N: n, ItemBytes: 4, Y: 64, Seed: 99}
	dom := workload.Domain{ItemBytes: 4}
	ds, err := workload.Planted(dom, n, []float64{0.35}, rand.New(rand.NewPCG(2, 7)))
	if err != nil {
		t.Fatal(err)
	}
	client, err := core.NewClient(params)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 3))
	reports := make([]core.Report, n)
	for i := range reports {
		if reports[i], err = client.Report(ds.Items[i], i, rng); err != nil {
			t.Fatal(err)
		}
	}

	identify := func(ingest func(p *core.Protocol) error) []core.Estimate {
		t.Helper()
		p, err := core.New(params)
		if err != nil {
			t.Fatal(err)
		}
		if err := ingest(p); err != nil {
			t.Fatal(err)
		}
		if got := p.TotalReports(); got != n {
			t.Fatalf("ingested %d of %d reports", got, n)
		}
		est, err := p.Identify()
		if err != nil {
			t.Fatal(err)
		}
		return est
	}

	want := identify(func(p *core.Protocol) error {
		return p.AbsorbBatch(reports, 1)
	})
	for _, shards := range []int{2, 3, 8} {
		got := identify(func(p *core.Protocol) error {
			return p.AbsorbBatch(reports, shards)
		})
		assertSameEstimates(t, got, want)
	}

	// Regression: shard counts that don't divide the batch evenly. Ceil
	// division can exhaust a small batch before the last shard (5 reports
	// over 4 shards chunks as 2+2+1+nothing), which once sliced out of
	// range and panicked the ingestion goroutine.
	for _, tail := range []int{1, 2, 3, 5, 7} {
		p, err := core.New(params)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.AbsorbBatch(reports[:tail], 4); err != nil {
			t.Fatalf("AbsorbBatch(%d reports, 4 shards): %v", tail, err)
		}
		if got := p.TotalReports(); got != tail {
			t.Fatalf("AbsorbBatch(%d reports, 4 shards) absorbed %d", tail, got)
		}
	}

	// Tree aggregation: two leaf shards merged into a third, then into the
	// protocol — the mergetree deployment shape.
	got := identify(func(p *core.Protocol) error {
		left, right := p.NewAccumulator(), p.NewAccumulator()
		for i, rep := range reports[:n/2] {
			if err := left.Absorb(rep); err != nil {
				t.Fatal(i, err)
			}
		}
		for _, rep := range reports[n/2:] {
			if err := right.Absorb(rep); err != nil {
				t.Fatal(err)
			}
		}
		if err := left.Merge(right); err != nil {
			t.Fatal(err)
		}
		if left.Absorbed() != n {
			t.Fatalf("tree root holds %d reports", left.Absorbed())
		}
		return p.Merge(left)
	})
	assertSameEstimates(t, got, want)
}

func assertSameEstimates(t *testing.T, got, want []core.Estimate) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("identified %d items, want %d", len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i].Item, want[i].Item) || got[i].Count != want[i].Count {
			t.Fatalf("rank %d: %x/%v, want %x/%v",
				i, got[i].Item, got[i].Count, want[i].Item, want[i].Count)
		}
	}
}
