package protocol

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"

	"ldphh/internal/interactive"
	"ldphh/internal/proto"
)

// pemParams builds a small open-domain discovery round: 2-byte items
// revealed 4 bits per round over 4 rounds, ~1500 users per group.
func pemParams(seed uint64) interactive.Params {
	return interactive.Params{
		Mode: interactive.ModePEM, Eps: 4, N: 6000, ItemBytes: 2,
		BitsPerRound: 4, TopK: 8, Seed: seed,
	}
}

// openItem plants two heavies (40% and 30% of the population) over a thin
// open-domain tail.
func openItem(i int) []byte {
	switch {
	case i%10 < 4:
		return []byte{0x12, 0x34}
	case i%10 < 7:
		return []byte{0xBE, 0xEF}
	default:
		return []byte{0x40, byte(40 + i%97)}
	}
}

// openReports computes the wire reports of every user assigned to the
// device fleet's open round (the device engine must already hold the
// round's broadcast). Per-(round, user) generators keep the fleet
// deterministic at any replay concurrency.
func openReports(t *testing.T, dev *interactive.Wire, p interactive.Params, round int) []proto.WireReport {
	t.Helper()
	var out []proto.WireReport
	for u := 0; u < p.N; u++ {
		wr, err := dev.Report(openItem(u), u, interactive.RoundRand(p.Seed, round, u))
		if errors.Is(err, interactive.ErrNotInRound) {
			continue
		}
		if err != nil {
			t.Fatalf("user %d round %d: %v", u, round, err)
		}
		out = append(out, wr)
	}
	return out
}

// refOpenDomain runs the whole discovery in process — the bit-identical
// reference every wire variant must reproduce.
func refOpenDomain(t *testing.T, p interactive.Params) []proto.Estimate {
	t.Helper()
	dev, err := interactive.NewWire(p)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := interactive.NewWire(p)
	if err != nil {
		t.Fatal(err)
	}
	for {
		rs := srv.RoundState()
		if rs.Done {
			break
		}
		if err := dev.SetRoundState(rs); err != nil {
			t.Fatal(err)
		}
		if err := srv.AbsorbBatch(openReports(t, dev, p, rs.Round)); err != nil {
			t.Fatal(err)
		}
		if _, err := srv.AdvanceRound(); err != nil {
			t.Fatal(err)
		}
	}
	est, err := srv.Identify(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return est
}

// TestRoundDrivesOverWire runs a full PEM discovery against the generic
// TCP server: the driver reads each round's broadcast, the device fleet
// reports against it, and AdvanceRound commits the transition — first over
// one-shot connections, then over a pipelined IngestConn session — and the
// final estimates must be bit-identical to the in-process reference.
func TestRoundDrivesOverWire(t *testing.T) {
	p := pemParams(7)
	ref := refOpenDomain(t, p)
	ctx := context.Background()

	agg, err := interactive.NewWire(p)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewGenericServer(agg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	dev, err := interactive.NewWire(p)
	if err != nil {
		t.Fatal(err)
	}

	ic, err := DialIngest(ctx, srv.Addr(), proto.IDPEM)
	if err != nil {
		t.Fatal(err)
	}
	defer ic.Close()

	rs, err := RequestRound(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	advanced := 0
	for !rs.Done {
		if rs.Rounds != 4 || len(rs.Candidates) == 0 {
			t.Fatalf("round %d broadcast = %+v", rs.Round, rs)
		}
		if err := dev.SetRoundState(rs); err != nil {
			t.Fatal(err)
		}
		if err := SendWireBatch(ctx, srv.Addr(), openReports(t, dev, p, rs.Round)); err != nil {
			t.Fatal(err)
		}
		// Alternate the one-shot and pipelined clients so both reply paths
		// stay covered.
		if rs.Round%2 == 0 {
			rs, err = AdvanceRound(srv.Addr())
		} else {
			rs, err = ic.AdvanceRound(ctx)
		}
		if err != nil {
			t.Fatal(err)
		}
		advanced++
		if advanced > 16 {
			t.Fatal("round protocol never reached Done")
		}
	}
	if got, _ := ic.Round(ctx); !got.Done {
		t.Fatalf("pipelined Round after completion = %+v, want Done", got)
	}
	if n := srv.Metrics().roundsAdvanced.Load(); int(n) != advanced {
		t.Fatalf("rounds_advanced_total = %d, want %d", n, advanced)
	}
	est, err := RequestIdentify(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	assertSameEstimates(t, est, ref)
	if !bytes.Equal(est[0].Item, []byte{0x12, 0x34}) {
		t.Fatalf("top estimate %x, want the planted heavy 1234", est[0].Item)
	}
}

// TestRoundRejectsNonInteractive: single-round protocols must answer the
// round commands with a textual ERR the client relays, and count the
// rejection.
func TestRoundRejectsNonInteractive(t *testing.T) {
	srv := ingestServer(t, 99)
	if _, err := RequestRound(srv.Addr()); err == nil || !strings.Contains(err.Error(), "round") {
		t.Fatalf("RequestRound on a tree server = %v, want a relayed ERR", err)
	}
	if _, err := AdvanceRound(srv.Addr()); err == nil {
		t.Fatal("AdvanceRound on a tree server succeeded")
	}
	if n := srv.Metrics().roundErrors.Load(); n != 2 {
		t.Fatalf("round_errors_total = %d, want 2", n)
	}
}

// TestRoundMetricsExposition: the per-round gauges ride /metrics and the
// round keys ride /healthz while a discovery is in flight.
func TestRoundMetricsExposition(t *testing.T) {
	p := pemParams(11)
	agg, err := interactive.NewWire(p)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewGenericServer(agg, "127.0.0.1:0", WithMetricsAddr("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	dev, err := interactive.NewWire(p)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := RequestRound(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.SetRoundState(rs); err != nil {
		t.Fatal(err)
	}
	if err := SendWireBatch(context.Background(), srv.Addr(), openReports(t, dev, p, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := AdvanceRound(srv.Addr()); err != nil {
		t.Fatal(err)
	}

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + srv.MetricsAddr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	metrics := get("/metrics")
	for _, want := range []string{
		`ldphh_round{protocol="pem"} 1`,
		`ldphh_rounds{protocol="pem"} 4`,
		`ldphh_round_candidates{protocol="pem"}`,
		`ldphh_round_group_size{protocol="pem"} 0`,
		`ldphh_round_done{protocol="pem"} 0`,
		`ldphh_rounds_advanced_total{protocol="pem"} 1`,
		`ldphh_round_errors_total{protocol="pem"} 0`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}
	healthz := get("/healthz")
	for _, want := range []string{`"round":1`, `"rounds":4`, `"round_candidates":`, `"round_group_size":0`, `"round_done":false`} {
		if !strings.Contains(healthz, want) {
			t.Errorf("/healthz missing %s: %s", want, healthz)
		}
	}
}

// TestRoundCrashRecoveryEquivalence is the interactive extension of the
// crash-equivalence suite: the round-transition checkpoint plus ack-coupled
// mid-round checkpoints must let a killed server resume an in-flight
// discovery — same open round, same candidate broadcast, same group tally —
// and finish with estimates bit-identical to an uninterrupted run.
func TestRoundCrashRecoveryEquivalence(t *testing.T) {
	p := pemParams(9)
	ref := refOpenDomain(t, p)
	ctx := context.Background()
	dir := t.TempDir()
	opts := []ServerOption{
		WithCheckpointDir(dir),
		WithCheckpointEvery(1), // every batch ack is durable
		WithCheckpointInterval(0),
		WithCheckpointRetain(4),
	}

	dev, err := interactive.NewWire(p)
	if err != nil {
		t.Fatal(err)
	}
	agg1, err := interactive.NewWire(p)
	if err != nil {
		t.Fatal(err)
	}
	srv1, err := NewGenericServer(agg1, "127.0.0.1:0", opts...)
	if err != nil {
		t.Fatal(err)
	}

	// Round 0 end to end, then commit the transition (handleRound persists
	// it before replying).
	rs, err := RequestRound(srv1.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.SetRoundState(rs); err != nil {
		t.Fatal(err)
	}
	if err := SendWireBatch(ctx, srv1.Addr(), openReports(t, dev, p, 0)); err != nil {
		t.Fatal(err)
	}
	rs, err = AdvanceRound(srv1.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if rs.Round != 1 || rs.Done {
		t.Fatalf("after one advance the broadcast is %+v, want open round 1", rs)
	}
	if err := dev.SetRoundState(rs); err != nil {
		t.Fatal(err)
	}

	// Half of round 1, durably acked, then kill the server: the listener is
	// torn out and the in-memory state discarded, exactly what kill -9
	// leaves behind.
	round1 := openReports(t, dev, p, 1)
	half := len(round1) / 2
	if err := SendWireBatch(ctx, srv1.Addr(), round1[:half]); err != nil {
		t.Fatal(err)
	}
	srv1.ln.Close()

	agg2, err := interactive.NewWire(p)
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := NewGenericServer(agg2, "127.0.0.1:0", opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()

	resumed, err := RequestRound(srv2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Round != 1 || resumed.Done {
		t.Fatalf("recovered broadcast %+v, want open round 1", resumed)
	}
	if resumed.GroupReports != half {
		t.Fatalf("recovered round holds %d reports, want the durably acked %d", resumed.GroupReports, half)
	}
	if len(resumed.Candidates) != len(rs.Candidates) {
		t.Fatalf("recovered candidate set has %d entries, want %d", len(resumed.Candidates), len(rs.Candidates))
	}
	for i := range resumed.Candidates {
		if !bytes.Equal(resumed.Candidates[i], rs.Candidates[i]) {
			t.Fatalf("recovered candidate %d = %x, want %x", i, resumed.Candidates[i], rs.Candidates[i])
		}
	}

	// Finish the discovery on the recovered server: the rest of round 1,
	// then every remaining round.
	if err := SendWireBatch(ctx, srv2.Addr(), round1[half:]); err != nil {
		t.Fatal(err)
	}
	rs, err = AdvanceRound(srv2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	for !rs.Done {
		if err := dev.SetRoundState(rs); err != nil {
			t.Fatal(err)
		}
		if err := SendWireBatch(ctx, srv2.Addr(), openReports(t, dev, p, rs.Round)); err != nil {
			t.Fatal(err)
		}
		rs, err = AdvanceRound(srv2.Addr())
		if err != nil {
			t.Fatal(err)
		}
	}
	est, err := RequestIdentify(srv2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	assertSameEstimates(t, est, ref)
}
