// Package par provides the bounded worker pool the server-side parallel
// pipelines share (core.Protocol.Identify's stages, the freqoracle sketch
// finalizers). It exists so the atomic-counter pool is written once: both
// consumers need identical semantics — dynamic index handout, a true
// serial path at one worker — and neither can import the other.
package par

import (
	"sync"
	"sync/atomic"
)

// Range runs fn(i) for every i in [0, n) on a pool of at most workers
// goroutines and returns when all calls have finished. Indices are handed
// out dynamically (an atomic counter), so uneven per-index cost balances
// across the pool; with workers <= 1 the calls run inline with no
// goroutine at all, making the 1-worker path exactly the serial loop it
// replaces.
//
// Determinism contract: Range itself schedules nondeterministically —
// callers obtain deterministic results by making fn(i) a pure function of
// i that writes only to slot i of preallocated output, which is how every
// caller in this module uses it.
func Range(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
