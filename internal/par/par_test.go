package par

import (
	"sync/atomic"
	"testing"
)

func TestRange(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 100} {
		for _, n := range []int{0, 1, 5, 1000} {
			out := make([]int, n)
			Range(n, workers, func(i int) { out[i] = i * i })
			for i, v := range out {
				if v != i*i {
					t.Fatalf("workers=%d n=%d: slot %d = %d", workers, n, i, v)
				}
			}
		}
	}
}

// TestRangeEachIndexOnce pins the handout contract: every index exactly
// once, even with far more workers than items.
func TestRangeEachIndexOnce(t *testing.T) {
	const n = 5000
	var calls [n]atomic.Int32
	Range(n, 64, func(i int) { calls[i].Add(1) })
	for i := range calls {
		if got := calls[i].Load(); got != 1 {
			t.Fatalf("index %d ran %d times", i, got)
		}
	}
}
