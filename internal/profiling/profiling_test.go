package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartWritesBothProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// A little work so the CPU profile has something to sample.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		info, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if info.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestStartNoopWhenUnconfigured(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartRejectsUnwritablePath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.pprof"), ""); err == nil {
		t.Fatal("Start accepted an unwritable CPU profile path")
	}
}
