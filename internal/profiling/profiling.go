// Package profiling wires the runtime/pprof file profilers into the CLI
// tools (-cpuprofile / -memprofile on hhbench and hhload), complementing
// the live /debug/pprof endpoints the metrics sidecar serves for running
// aggregation servers. The artifacts are standard pprof protos:
//
//	go tool pprof hhbench cpu.pprof
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (when non-empty) and returns a stop
// function that ends the CPU profile and, when memPath is non-empty, writes
// a post-GC heap profile there. Either path may be empty to skip that
// profile; with both empty the returned stop is a cheap no-op, so callers
// can wire it unconditionally. The stop function is not idempotent — call
// it exactly once, after the workload being measured.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: start CPU profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			// An explicit GC first so the heap profile reflects live objects,
			// not garbage awaiting collection.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("profiling: write heap profile: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		return nil
	}, nil
}
