// Package gf256 implements arithmetic in GF(2^8) with the AES-adjacent
// reduction polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11d), via exp/log
// tables generated at init. It is the symbol field of the Reed-Solomon code
// in internal/ecc, which plays the role of the constant-rate
// error-correcting code in the paper's list-recoverable construction
// (DESIGN.md substitution S1).
package gf256

// Poly is the reduction polynomial (without the x^8 term) used to generate
// the field: x^8 + x^4 + x^3 + x^2 + 1.
const Poly = 0x1d

var (
	expTable [512]byte // doubled so Mul can skip a mod 255
	logTable [256]byte
)

func init() {
	x := byte(1)
	for i := 0; i < 255; i++ {
		expTable[i] = x
		logTable[x] = byte(i)
		// multiply x by the generator 0x02
		carry := x&0x80 != 0
		x <<= 1
		if carry {
			x ^= Poly
		}
	}
	for i := 255; i < 512; i++ {
		expTable[i] = expTable[i-255]
	}
}

// Add returns a+b (= a-b) in GF(256).
func Add(a, b byte) byte { return a ^ b }

// Mul returns a*b in GF(256).
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[int(logTable[a])+int(logTable[b])]
}

// Div returns a/b in GF(256). b must be nonzero.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf256: division by zero")
	}
	if a == 0 {
		return 0
	}
	return expTable[int(logTable[a])+255-int(logTable[b])]
}

// Inv returns the multiplicative inverse of a. a must be nonzero.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf256: inverse of zero")
	}
	return expTable[255-int(logTable[a])]
}

// Exp returns the generator (0x02) raised to the power e mod 255.
func Exp(e int) byte {
	e %= 255
	if e < 0 {
		e += 255
	}
	return expTable[e]
}

// ExpAt returns the generator raised to e for an exponent the caller has
// already reduced to [0, 510): the doubled exp table means even the sum of
// two reduced logs indexes it directly, with no modular reduction. It is
// the hot-path companion of Exp for callers (like the incremental Chien
// search in internal/ecc) that maintain reduced exponents themselves; it
// panics via the bounds check on anything outside the table.
func ExpAt(e int) byte { return expTable[e] }

// Log returns the discrete log base 0x02 of a. a must be nonzero.
func Log(a byte) int {
	if a == 0 {
		panic("gf256: log of zero")
	}
	return int(logTable[a])
}

// Pow returns a^e in GF(256) (with 0^0 = 1).
func Pow(a byte, e int) byte {
	if e == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	le := (int(logTable[a]) * e) % 255
	if le < 0 {
		le += 255
	}
	return expTable[le]
}

// PolyEval evaluates the polynomial p (coefficients in ascending degree
// order) at x.
func PolyEval(p []byte, x byte) byte {
	if len(p) == 0 {
		return 0
	}
	acc := p[len(p)-1]
	for i := len(p) - 2; i >= 0; i-- {
		acc = Add(Mul(acc, x), p[i])
	}
	return acc
}

// PolyMul returns the product of polynomials a and b.
func PolyMul(a, b []byte) []byte {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make([]byte, len(a)+len(b)-1)
	for i, ai := range a {
		if ai == 0 {
			continue
		}
		for j, bj := range b {
			out[i+j] ^= Mul(ai, bj)
		}
	}
	return out
}

// PolyScale returns a copy of p with every coefficient multiplied by c.
func PolyScale(p []byte, c byte) []byte {
	out := make([]byte, len(p))
	for i, v := range p {
		out[i] = Mul(v, c)
	}
	return out
}

// PolyAdd returns a+b, trimming nothing (length = max of inputs).
func PolyAdd(a, b []byte) []byte {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make([]byte, n)
	copy(out, a)
	for i, v := range b {
		out[i] ^= v
	}
	return out
}

// PolyDeriv returns the formal derivative of p. In characteristic 2, odd
// powers survive and even powers vanish.
func PolyDeriv(p []byte) []byte {
	if len(p) <= 1 {
		return nil
	}
	out := make([]byte, len(p)-1)
	for i := 1; i < len(p); i += 2 {
		out[i-1] = p[i]
	}
	return out
}
