package gf256

import (
	"testing"
	"testing/quick"
)

func TestTablesConsistent(t *testing.T) {
	// exp(log(a)) = a for all nonzero a; exp is 255-periodic.
	for a := 1; a < 256; a++ {
		if Exp(Log(byte(a))) != byte(a) {
			t.Fatalf("exp(log(%d)) != %d", a, a)
		}
	}
	if Exp(0) != 1 {
		t.Error("Exp(0) != 1")
	}
	if Exp(255) != 1 {
		t.Error("Exp(255) != 1 (period)")
	}
	if Exp(-1) != Exp(254) {
		t.Error("negative exponent handling broken")
	}
}

func TestMulRef(t *testing.T) {
	// Cross-check table Mul against bitwise Russian-peasant multiplication.
	ref := func(a, b byte) byte {
		var p byte
		for b > 0 {
			if b&1 == 1 {
				p ^= a
			}
			carry := a&0x80 != 0
			a <<= 1
			if carry {
				a ^= Poly
			}
			b >>= 1
		}
		return p
	}
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			if Mul(byte(a), byte(b)) != ref(byte(a), byte(b)) {
				t.Fatalf("Mul(%d,%d) mismatch", a, b)
			}
		}
	}
}

func TestFieldAxiomsQuick(t *testing.T) {
	assoc := func(a, b, c byte) bool {
		return Mul(Mul(a, b), c) == Mul(a, Mul(b, c))
	}
	if err := quick.Check(assoc, nil); err != nil {
		t.Error(err)
	}
	distrib := func(a, b, c byte) bool {
		return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
	}
	if err := quick.Check(distrib, nil); err != nil {
		t.Error(err)
	}
	comm := func(a, b byte) bool {
		return Mul(a, b) == Mul(b, a) && Add(a, b) == Add(b, a)
	}
	if err := quick.Check(comm, nil); err != nil {
		t.Error(err)
	}
}

func TestInvDiv(t *testing.T) {
	for a := 1; a < 256; a++ {
		if Mul(byte(a), Inv(byte(a))) != 1 {
			t.Fatalf("a * a^-1 != 1 for a=%d", a)
		}
		if Div(byte(a), byte(a)) != 1 {
			t.Fatalf("a/a != 1 for a=%d", a)
		}
	}
	if Div(0, 5) != 0 {
		t.Error("0/b != 0")
	}
	defer func() {
		if recover() == nil {
			t.Error("Div by zero did not panic")
		}
	}()
	Div(1, 0)
}

func TestPow(t *testing.T) {
	if Pow(0, 0) != 1 {
		t.Error("0^0 != 1")
	}
	if Pow(0, 3) != 0 {
		t.Error("0^3 != 0")
	}
	if Pow(5, 1) != 5 {
		t.Error("a^1 != a")
	}
	for a := 1; a < 256; a++ {
		if Pow(byte(a), 255) != 1 { // Lagrange: order divides 255
			t.Fatalf("a^255 != 1 for a=%d", a)
		}
		want := Mul(Mul(byte(a), byte(a)), byte(a))
		if Pow(byte(a), 3) != want {
			t.Fatalf("a^3 mismatch for a=%d", a)
		}
	}
}

func TestPolyOps(t *testing.T) {
	// (1 + x)(1 + x) = 1 + x^2 in characteristic 2.
	sq := PolyMul([]byte{1, 1}, []byte{1, 1})
	if len(sq) != 3 || sq[0] != 1 || sq[1] != 0 || sq[2] != 1 {
		t.Fatalf("(1+x)^2 = %v", sq)
	}
	// Evaluate 1 + x^2 at x=2: 1 ^ Mul(2,2) = 1 ^ 4 = 5.
	if PolyEval(sq, 2) != 5 {
		t.Fatalf("eval = %d", PolyEval(sq, 2))
	}
	if PolyEval(nil, 9) != 0 {
		t.Error("eval of empty poly != 0")
	}
	s := PolyScale([]byte{1, 2, 3}, 2)
	if s[0] != 2 || s[1] != 4 || s[2] != 6 {
		t.Fatalf("scale = %v", s)
	}
	a := PolyAdd([]byte{1, 2}, []byte{1, 2, 3})
	if len(a) != 3 || a[0] != 0 || a[1] != 0 || a[2] != 3 {
		t.Fatalf("add = %v", a)
	}
	// d/dx (a + bx + cx^2 + dx^3) = b + dx^2 in char 2.
	d := PolyDeriv([]byte{7, 5, 9, 3})
	if len(d) != 3 || d[0] != 5 || d[1] != 0 || d[2] != 3 {
		t.Fatalf("deriv = %v", d)
	}
	if PolyDeriv([]byte{1}) != nil {
		t.Error("deriv of constant should be nil")
	}
}

func TestPolyEvalRootOfProduct(t *testing.T) {
	// A product Π (x - α^i) must vanish at every α^i.
	p := []byte{1}
	for i := 0; i < 10; i++ {
		p = PolyMul(p, []byte{Exp(i), 1})
	}
	for i := 0; i < 10; i++ {
		if PolyEval(p, Exp(i)) != 0 {
			t.Fatalf("product does not vanish at α^%d", i)
		}
	}
	if PolyEval(p, Exp(11)) == 0 {
		t.Error("product vanishes at a non-root")
	}
}
