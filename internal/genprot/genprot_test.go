package genprot

import (
	"math"
	"math/rand/v2"
	"testing"

	"ldphh/internal/dist"
	"ldphh/internal/ldp"
)

func TestDefaultT(t *testing.T) {
	// Must cover both the 5·ln(1/ε) floor and the 2·ln(2n/β) target.
	if got := DefaultT(0.01, 10, 0.5); got < int(5*math.Log(100)) {
		t.Errorf("DefaultT below the privacy floor: %d", got)
	}
	if got := DefaultT(0.2, 1<<20, 0.01); got < int(2*math.Log(2*float64(1<<20)/0.01)) {
		t.Errorf("DefaultT below the utility target: %d", got)
	}
	// O(log log n) communication: doubling n adds O(1) to T.
	a := DefaultT(0.1, 1<<10, 0.05)
	b := DefaultT(0.1, 1<<20, 0.05)
	if b-a > 20 {
		t.Errorf("T grows too fast with n: %d -> %d", a, b)
	}
	defer func() {
		if recover() == nil {
			t.Error("eps >= 1 accepted")
		}
	}()
	DefaultT(1, 10, 0.5)
}

func TestConstruction(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	r := ldp.NewLeakyRR(0.2, 1e-4)
	if _, err := New(Params{Eps: 0.2, T: 3}, r, rng); err == nil {
		t.Error("T below 5·ln(1/ε) accepted")
	}
	if _, err := New(Params{Eps: 0.3, T: 40}, r, rng); err == nil {
		t.Error("eps > 1/4 accepted")
	}
	tr, err := New(Params{Eps: 0.2, T: 40}, r, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Refs()) != 40 {
		t.Error("reference sample count wrong")
	}
	if tr.ReportBits() != 6 {
		t.Errorf("ReportBits = %d, want 6 for T=40", tr.ReportBits())
	}
}

func TestReportDistIsDistribution(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	r := ldp.NewLeakyRR(0.1, 1e-3)
	tr, err := New(Params{Eps: 0.1, T: 24}, r, rng)
	if err != nil {
		t.Fatal(err)
	}
	for x := uint64(0); x < 2; x++ {
		q := tr.ReportDist(x)
		s := 0.0
		for _, v := range q {
			if v < 0 {
				t.Fatal("negative report probability")
			}
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("report distribution sums to %f", s)
		}
	}
}

func TestReportDistMatchesSampler(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	r := ldp.NewLeakyRR(0.15, 1e-3)
	tr, err := New(Params{Eps: 0.15, T: 16}, r, rng)
	if err != nil {
		t.Fatal(err)
	}
	q := tr.ReportDist(1)
	const trials = 80000
	counts := make([]int, 16)
	srng := rand.New(rand.NewPCG(4, 4))
	for i := 0; i < trials; i++ {
		counts[tr.Report(1, srng)]++
	}
	for g := 0; g < 16; g++ {
		got := float64(counts[g]) / trials
		if math.Abs(got-q[g]) > 6*math.Sqrt(q[g]*(1-q[g])/trials)+0.003 {
			t.Errorf("index %d: empirical %.4f vs exact %.4f", g, got, q[g])
		}
	}
}

// TestTheorem61Privacy is experiment E11's core assertion: the report
// distribution of GenProt wrapping a *non-pure* (ε,δ)-LDP randomizer is
// purely 10ε-LDP, verified exactly over many public-randomness draws.
func TestTheorem61Privacy(t *testing.T) {
	const eps = 0.2
	r := ldp.NewLeakyRR(eps, 5e-3)
	// The wrapped randomizer itself has infinite pure-privacy ratio.
	if !math.IsInf(ldp.MaxPrivacyRatio(r), 1) {
		t.Fatal("test subject should not be purely private")
	}
	bound := math.Exp(10 * eps)
	for seed := uint64(0); seed < 30; seed++ {
		tr, err := New(Params{Eps: eps, T: 32}, r, rand.New(rand.NewPCG(seed, seed)))
		if err != nil {
			t.Fatal(err)
		}
		if got := tr.MaxReportRatio(); got > bound {
			t.Fatalf("seed %d: report ratio %.4f exceeds e^{10ε}=%.4f", seed, got, bound)
		}
	}
}

// TestTheorem61Utility: the induced distribution (what the server feeds the
// original protocol) is TV-close to the wrapped randomizer's distribution,
// within the per-user Theorem 6.1 bound, on average over public randomness.
func TestTheorem61Utility(t *testing.T) {
	const eps = 0.2
	const delta = 1e-5
	r := ldp.NewLeakyRR(eps, delta)
	tparam := 40
	var worst float64
	var sum float64
	const draws = 50
	for seed := uint64(0); seed < draws; seed++ {
		tr, err := New(Params{Eps: eps, T: tparam}, r, rand.New(rand.NewPCG(seed, 99)))
		if err != nil {
			t.Fatal(err)
		}
		for x := uint64(0); x < 2; x++ {
			tv := dist.TVDist(tr.InducedDist(x), tr.OriginalDist(x))
			sum += tv
			if tv > worst {
				worst = tv
			}
		}
	}
	avg := sum / (2 * draws)
	// Per-draw TV fluctuates with the reference samples (the bound is an
	// expectation over public randomness plus concentration terms); the
	// average must comfortably sit within a small multiple of the bound's
	// scale, and certainly far below naive truncation at 1.
	tr, _ := New(Params{Eps: eps, T: tparam}, r, rand.New(rand.NewPCG(0, 99)))
	bound := tr.TVBound()
	if avg > 20*bound+0.05 {
		t.Errorf("average TV %.4f too large (per-user bound %.6f)", avg, bound)
	}
	if worst > 0.5 {
		t.Errorf("worst-case TV %.4f absurdly large", worst)
	}
}

// TestGenProtPreservesAccuracy runs a full counting protocol through the
// transformation: the purified reports must still support unbiased counting.
func TestGenProtPreservesAccuracy(t *testing.T) {
	const eps = 0.2
	const n = 30000
	r := ldp.NewLeakyRR(eps, 1e-4)
	pub := rand.New(rand.NewPCG(11, 11))
	usr := rand.New(rand.NewPCG(12, 12))
	trueOnes := 9000
	ones, zeros, leaks := 0, 0, 0
	// Every user gets its own transform (fresh public reference samples),
	// as in algorithm GenProt step 1.
	for i := 0; i < n; i++ {
		tr, err := New(Params{Eps: eps, T: 24}, r, pub)
		if err != nil {
			t.Fatal(err)
		}
		x := uint64(0)
		if i < trueOnes {
			x = 1
		}
		y := tr.Decode(tr.Report(x, usr))
		switch y {
		case 0:
			zeros++
		case 1:
			ones++
		default:
			leaks++
		}
	}
	// The reconstructed reports follow approximately RR(A(⊥-ish mixture));
	// GenProt guarantees closeness to the true A(x_i) ensemble, so the
	// standard RR unbiasing should land near the truth.
	pKeep := math.Exp(eps) / (math.Exp(eps) + 1)
	q := 1 - pKeep
	est := (float64(ones) - float64(ones+zeros)*q) / (pKeep - q)
	if math.Abs(est-float64(trueOnes)) > 2500 {
		t.Errorf("purified counting estimate %.0f, want ~%d", est, trueOnes)
	}
	// Leak outputs survive at roughly rate δ — they are part of A(⊥)'s
	// support — but must stay rare.
	if leaks > n/100 {
		t.Errorf("too many leak outputs: %d", leaks)
	}
}

func BenchmarkReport(b *testing.B) {
	r := ldp.NewLeakyRR(0.2, 1e-4)
	tr, err := New(Params{Eps: 0.2, T: 32}, r, rand.New(rand.NewPCG(1, 1)))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(2, 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Report(uint64(i&1), rng)
	}
}
