// Package genprot implements Section 6 of the paper: the generic
// rejection-sampling transformation (algorithm GenProt, Theorem 6.1) from
// any non-interactive (ε, δ)-LDP protocol into a pure 10ε-LDP protocol with
// per-user reports of ⌈log₂ T⌉ = O(log log n) bits and total-variation
// error n·((1/2+ε)^T + 6Tδe^ε/(1−e^{−ε})).
//
// The server generates T public reference samples y_{i,1..T} ← A_i(⊥) per
// user. User i computes acceptance probabilities
// p_{i,t} = Pr[A_i(x_i)=y_{i,t}] / (2·Pr[A_i(⊥)=y_{i,t}]), clamped to 1/2
// when outside [e^{-2ε}/2, e^{2ε}/2], samples acceptance bits, and sends
// only the *index* g_i of a uniformly chosen accepted sample. The server
// resumes the original protocol on (y_{1,g_1}, ..., y_{n,g_n}).
package genprot

import (
	"fmt"
	"math"
	"math/rand/v2"

	"ldphh/internal/ldp"
)

// Params configures the transformation.
type Params struct {
	Eps float64 // the ε of the wrapped randomizer's (ε, δ) guarantee
	T   int     // reference samples per user; see DefaultT
}

// DefaultT returns the Theorem 6.1 recommended T = max(⌈5·ln(1/ε)⌉,
// ⌈2·ln(2n/β)⌉), which makes the total-variation error at most β when
// δ <= ε·β / (48·n·ln(2n/β)).
func DefaultT(eps float64, n int, beta float64) int {
	if eps <= 0 || eps >= 1 {
		panic("genprot: DefaultT needs eps in (0,1)")
	}
	if n < 1 || beta <= 0 || beta >= 1 {
		panic("genprot: DefaultT needs n >= 1 and beta in (0,1)")
	}
	a := int(math.Ceil(5 * math.Log(1/eps)))
	b := int(math.Ceil(2 * math.Log(2*float64(n)/beta)))
	if a > b {
		return a
	}
	return b
}

// Transform wraps one user's randomizer. The public reference samples are
// drawn once per user at construction (they are part of the protocol's
// public randomness).
type Transform struct {
	p    Params
	r    ldp.Randomizer
	refs []uint64 // y_{t}, t = 1..T, drawn from A(⊥)
}

// New constructs the per-user transform, drawing the T public reference
// samples from publicRng.
func New(p Params, r ldp.Randomizer, publicRng *rand.Rand) (*Transform, error) {
	if p.Eps <= 0 || p.Eps > 0.25 {
		return nil, fmt.Errorf("genprot: Theorem 6.1 needs eps in (0, 1/4], got %v", p.Eps)
	}
	if minT := 5 * math.Log(1/p.Eps); float64(p.T) < minT {
		return nil, fmt.Errorf("genprot: T=%d below the Theorem 6.1 minimum 5·ln(1/ε)=%.1f", p.T, minT)
	}
	refs := make([]uint64, p.T)
	null := r.NullInput()
	for t := range refs {
		refs[t] = r.Sample(null, publicRng)
	}
	return &Transform{p: p, r: r, refs: refs}, nil
}

// Refs returns the public reference samples (shared storage).
func (tr *Transform) Refs() []uint64 { return tr.refs }

// acceptProb returns p_t for input x and reference index t, with the
// protocol's clamping rule.
func (tr *Transform) acceptProb(x uint64, t int) float64 {
	y := tr.refs[t]
	den := tr.r.Prob(tr.r.NullInput(), y)
	if den == 0 {
		return 0.5
	}
	p := tr.r.Prob(x, y) / (2 * den)
	lo := math.Exp(-2*tr.p.Eps) / 2
	hi := math.Exp(2*tr.p.Eps) / 2
	if p < lo || p > hi {
		return 0.5
	}
	return p
}

// Report runs the user side: samples the acceptance bits and returns the
// index g of the chosen reference sample. The report is ⌈log₂T⌉ bits.
func (tr *Transform) Report(x uint64, rng *rand.Rand) int {
	var accepted []int
	for t := 0; t < tr.p.T; t++ {
		if rng.Float64() < tr.acceptProb(x, t) {
			accepted = append(accepted, t)
		}
	}
	if len(accepted) == 0 {
		return rng.IntN(tr.p.T)
	}
	return accepted[rng.IntN(len(accepted))]
}

// Decode maps a report index back to the reference sample the server feeds
// into the original protocol.
func (tr *Transform) Decode(g int) uint64 {
	return tr.refs[g]
}

// ReportBits returns the per-user communication in bits: ⌈log₂ T⌉.
func (tr *Transform) ReportBits() int {
	bits := 0
	for v := tr.p.T - 1; v > 0; v >>= 1 {
		bits++
	}
	if bits == 0 {
		bits = 1
	}
	return bits
}

// ReportDist computes the exact output distribution of the user's report
// Q(x) over [T], using the Poisson-binomial law of the acceptance bits:
//
//	Pr[g] = p_g · E[1/(1+W_g)] + Pr[no acceptance]·(1/T),
//
// where W_g counts acceptances among t ≠ g. Exact in O(T²) — this is what
// makes the 10ε pure-privacy guarantee *verifiable* in tests rather than
// only provable.
func (tr *Transform) ReportDist(x uint64) []float64 {
	T := tr.p.T
	ps := make([]float64, T)
	for t := range ps {
		ps[t] = tr.acceptProb(x, t)
	}
	pNone := 1.0
	for _, p := range ps {
		pNone *= 1 - p
	}
	out := make([]float64, T)
	for g := 0; g < T; g++ {
		// Poisson-binomial pmf of W_g = Σ_{t≠g} b_t by DP.
		pmf := make([]float64, T)
		pmf[0] = 1
		count := 0
		for t := 0; t < T; t++ {
			if t == g {
				continue
			}
			count++
			for w := count; w >= 1; w-- {
				pmf[w] = pmf[w]*(1-ps[t]) + pmf[w-1]*ps[t]
			}
			pmf[0] *= 1 - ps[t]
		}
		exp := 0.0
		for w := 0; w <= count; w++ {
			exp += pmf[w] / float64(w+1)
		}
		out[g] = ps[g]*exp + pNone/float64(T)
	}
	return out
}

// MaxReportRatio returns the exact worst-case privacy ratio of the report
// distribution over all input pairs of the wrapped randomizer — Theorem 6.1
// guarantees it is at most e^{10ε}.
func (tr *Transform) MaxReportRatio() float64 {
	n := tr.r.NumInputs()
	dists := make([][]float64, n)
	for x := uint64(0); x < n; x++ {
		dists[x] = tr.ReportDist(x)
	}
	worst := 0.0
	for x := uint64(0); x < n; x++ {
		for xp := uint64(0); xp < n; xp++ {
			if x == xp {
				continue
			}
			for g := 0; g < tr.p.T; g++ {
				if dists[xp][g] == 0 {
					if dists[x][g] > 0 {
						return math.Inf(1)
					}
					continue
				}
				if r := dists[x][g] / dists[xp][g]; r > worst {
					worst = r
				}
			}
		}
	}
	return worst
}

// InducedDist returns the distribution of the server-side reconstructed
// value y_{g} for input x, over the wrapped randomizer's output space.
func (tr *Transform) InducedDist(x uint64) []float64 {
	q := tr.ReportDist(x)
	out := make([]float64, tr.r.NumOutputs())
	for g, pg := range q {
		out[tr.refs[g]] += pg
	}
	return out
}

// OriginalDist returns the wrapped randomizer's exact output distribution
// for input x.
func (tr *Transform) OriginalDist(x uint64) []float64 {
	out := make([]float64, tr.r.NumOutputs())
	for y := range out {
		out[y] = tr.r.Prob(x, uint64(y))
	}
	return out
}

// TVBound returns the per-user Theorem 6.1 total-variation bound
// (1/2+ε)^T + 6Tδe^ε/(1−e^{−ε}); multiply by n for the protocol-level
// statement.
func (tr *Transform) TVBound() float64 {
	eps := tr.p.Eps
	delta := tr.r.Delta()
	t := float64(tr.p.T)
	return math.Pow(0.5+eps, t) + 6*t*delta*math.Exp(eps)/(1-math.Exp(-eps))
}
