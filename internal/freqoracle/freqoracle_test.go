package freqoracle

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand/v2"
	"testing"
)

// population builds n users where item i (as 8-byte key) has the given
// multiplicity; remaining users get unique filler items.
type population struct {
	items  [][]byte
	truth  map[string]int
	filler int
}

func buildPopulation(n int, planted map[uint64]int) *population {
	p := &population{truth: make(map[string]int)}
	for key, count := range planted {
		b := make([]byte, 8)
		binary.BigEndian.PutUint64(b, key)
		p.truth[string(b)] = count
		for i := 0; i < count; i++ {
			p.items = append(p.items, b)
		}
	}
	filler := 1 << 40
	for len(p.items) < n {
		b := make([]byte, 8)
		binary.BigEndian.PutUint64(b, uint64(filler))
		filler++
		p.items = append(p.items, b)
		p.filler++
	}
	// Deterministic shuffle so user order is not correlated with values.
	rng := rand.New(rand.NewPCG(1234, 5678))
	rng.Shuffle(len(p.items), func(i, j int) { p.items[i], p.items[j] = p.items[j], p.items[i] })
	return p
}

func key(k uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, k)
	return b
}

func TestHashtogramAccuracy(t *testing.T) {
	n := 60000
	planted := map[uint64]int{1: 9000, 2: 6000, 3: 3000, 4: 900}
	pop := buildPopulation(n, planted)
	h, err := NewHashtogram(HashtogramParams{Eps: 1.0, N: n, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(2, 2))
	for i, x := range pop.items {
		if err := h.Absorb(h.Report(x, i, rng)); err != nil {
			t.Fatal(err)
		}
	}
	h.Finalize()
	bound := h.ErrorBound(0.01)
	for k, want := range planted {
		got := h.Estimate(key(uint64(k)))
		if math.Abs(got-float64(want)) > bound {
			t.Errorf("item %d: estimate %.0f, want %d (bound %.0f)", k, got, want, bound)
		}
	}
	// An absent item must estimate near zero.
	if got := h.Estimate(key(999999)); math.Abs(got) > bound {
		t.Errorf("absent item estimate %.0f exceeds bound %.0f", got, bound)
	}
}

func TestHashtogramUnbiasedOverSeeds(t *testing.T) {
	// Average the estimate of one item over independent protocol runs; the
	// mean must converge to the true count.
	n := 4000
	trueCount := 600
	planted := map[uint64]int{42: trueCount}
	pop := buildPopulation(n, planted)
	const runs = 30
	sum := 0.0
	for seed := uint64(0); seed < runs; seed++ {
		h, err := NewHashtogram(HashtogramParams{Eps: 1.0, N: n, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewPCG(seed, 99))
		for i, x := range pop.items {
			if err := h.Absorb(h.Report(x, i, rng)); err != nil {
				t.Fatal(err)
			}
		}
		h.Finalize()
		sum += h.Estimate(key(42))
	}
	mean := sum / runs
	se := 3 * 8 * math.Sqrt(float64(n)) / math.Sqrt(runs) // ~CEps·sqrt(nR)/sqrt(runs), generous
	if math.Abs(mean-float64(trueCount)) > se {
		t.Fatalf("mean estimate over %d runs = %.0f, want ~%d (tol %.0f)", runs, mean, trueCount, se)
	}
}

func TestHashtogramValidation(t *testing.T) {
	if _, err := NewHashtogram(HashtogramParams{Eps: 0, N: 100}); err == nil {
		t.Error("Eps 0 accepted")
	}
	if _, err := NewHashtogram(HashtogramParams{Eps: 1, N: 0}); err == nil {
		t.Error("N 0 accepted")
	}
	if _, err := NewHashtogram(HashtogramParams{Eps: 1, N: 100, T: 100}); err == nil {
		t.Error("non-power-of-two T accepted")
	}
	h, err := NewHashtogram(HashtogramParams{Eps: 1, N: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Absorb(HashtogramReport{Row: -1, Col: 0, Bit: 1}); err == nil {
		t.Error("bad row accepted")
	}
	if err := h.Absorb(HashtogramReport{Row: 0, Col: 1 << 30, Bit: 1}); err == nil {
		t.Error("bad col accepted")
	}
	if err := h.Absorb(HashtogramReport{Row: 0, Col: 0, Bit: 0}); err == nil {
		t.Error("bad bit accepted")
	}
	h.Finalize()
	if err := h.Absorb(HashtogramReport{Row: 0, Col: 0, Bit: 1}); err == nil {
		t.Error("Absorb after Finalize accepted")
	}
	h.Finalize() // idempotent
}

func TestHashtogramEmpty(t *testing.T) {
	h, err := NewHashtogram(HashtogramParams{Eps: 1, N: 100})
	if err != nil {
		t.Fatal(err)
	}
	h.Finalize()
	if got := h.Estimate([]byte("anything")); got != 0 {
		t.Errorf("empty oracle estimate = %f", got)
	}
}

func TestHashtogramRowAssignmentBalanced(t *testing.T) {
	h, err := NewHashtogram(HashtogramParams{Eps: 1, N: 100000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rows := h.Params().Rows
	counts := make([]int, rows)
	for u := 0; u < 100000; u++ {
		counts[h.Row(u)]++
	}
	exp := 100000 / rows
	for r, c := range counts {
		if c < exp/2 || c > exp*2 {
			t.Errorf("row %d has %d users, expected ~%d", r, c, exp)
		}
	}
}

func TestDirectHistogramAccuracy(t *testing.T) {
	const domain = 300
	const n = 40000
	d, err := NewDirectHistogram(1.0, domain)
	if err != nil {
		t.Fatal(err)
	}
	truth := make([]int, domain)
	rng := rand.New(rand.NewPCG(5, 5))
	zipfish := []uint64{7, 7, 7, 7, 7, 13, 13, 13, 200, 200, 4}
	for i := 0; i < n; i++ {
		x := zipfish[i%len(zipfish)]
		truth[x]++
		rep, err := d.Report(x, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Absorb(rep); err != nil {
			t.Fatal(err)
		}
	}
	d.Finalize()
	bound := d.ErrorBound(n, 0.001)
	for x := 0; x < domain; x++ {
		got := d.Estimate(uint64(x))
		if math.Abs(got-float64(truth[x])) > bound {
			t.Errorf("value %d: estimate %.0f, want %d (bound %.0f)", x, got, truth[x], bound)
		}
	}
	hist := d.Histogram()
	if len(hist) != domain {
		t.Fatalf("histogram length %d", len(hist))
	}
	for x := 0; x < domain; x++ {
		if hist[x] != d.Estimate(uint64(x)) {
			t.Fatal("Histogram() disagrees with Estimate()")
		}
	}
}

func TestDirectHistogramErrorScalesWithEps(t *testing.T) {
	// Empirical error at eps=0.5 should exceed error at eps=2 (roughly by
	// the CEps ratio) on the same data.
	const domain = 64
	const n = 30000
	errAt := func(eps float64) float64 {
		d, err := NewDirectHistogram(eps, domain)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewPCG(9, 9))
		for i := 0; i < n; i++ {
			rep, _ := d.Report(uint64(i%domain), rng)
			if err := d.Absorb(rep); err != nil {
				t.Fatal(err)
			}
		}
		d.Finalize()
		worst := 0.0
		for x := 0; x < domain; x++ {
			e := math.Abs(d.Estimate(uint64(x)) - float64(n/domain))
			if e > worst {
				worst = e
			}
		}
		return worst
	}
	low, high := errAt(2.0), errAt(0.5)
	if high < 1.5*low {
		t.Errorf("error at eps=0.5 (%.0f) not clearly above error at eps=2 (%.0f)", high, low)
	}
}

func TestDirectHistogramValidation(t *testing.T) {
	if _, err := NewDirectHistogram(0, 10); err == nil {
		t.Error("eps 0 accepted")
	}
	if _, err := NewDirectHistogram(1, 0); err == nil {
		t.Error("domain 0 accepted")
	}
	d, _ := NewDirectHistogram(1, 10)
	if _, err := d.Report(10, rand.New(rand.NewPCG(1, 1))); err == nil {
		t.Error("out-of-domain value accepted")
	}
	if err := d.Absorb(DirectReport{Col: 999, Bit: 1}); err == nil {
		t.Error("bad column accepted")
	}
	if err := d.Absorb(DirectReport{Col: 0, Bit: 2}); err == nil {
		t.Error("bad bit accepted")
	}
}

func runOracle(t *testing.T, o Oracle, pop *population) {
	t.Helper()
	rng := rand.New(rand.NewPCG(11, 11))
	for i, x := range pop.items {
		if err := o.AddUser(x, i, rng); err != nil {
			t.Fatal(err)
		}
	}
	o.Finalize()
}

func TestBaselineOraclesAccuracy(t *testing.T) {
	n := 40000
	planted := map[uint64]int{1: 8000, 2: 4000, 3: 1200}
	pop := buildPopulation(n, planted)

	hash, err := NewHashtogramOracle(HashtogramParams{Eps: 1.5, N: n, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	olh, err := NewOLHOracle(1.5, 0, 22)
	if err != nil {
		t.Fatal(err)
	}
	oracles := []Oracle{
		hash,
		NewRAPPOROracle(1.5, 64, 2, 23),
		olh,
	}
	for _, o := range oracles {
		runOracle(t, o, pop)
		tol := 18 * math.Sqrt(float64(n)) // generous common envelope at eps=1.5
		for k, want := range planted {
			got := o.Estimate(key(uint64(k)))
			if math.Abs(got-float64(want)) > tol {
				t.Errorf("%s: item %d estimate %.0f, want %d (tol %.0f)", o.Name(), k, got, want, tol)
			}
		}
		if o.BytesPerReport() <= 0 || o.SketchBytes() <= 0 {
			t.Errorf("%s: degenerate size metrics", o.Name())
		}
	}
}

func TestKRROracle(t *testing.T) {
	candidates := [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma"), []byte("delta")}
	o, err := NewKRROracle(1.0, candidates)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(31, 31))
	n := 40000
	truth := map[string]int{"alpha": 20000, "beta": 12000, "gamma": 8000, "delta": 0}
	for i := 0; i < n; i++ {
		var x []byte
		switch {
		case i < 20000:
			x = candidates[0]
		case i < 32000:
			x = candidates[1]
		default:
			x = candidates[2]
		}
		if err := o.AddUser(x, i, rng); err != nil {
			t.Fatal(err)
		}
	}
	o.Finalize()
	for name, want := range truth {
		got := o.Estimate([]byte(name))
		if math.Abs(got-float64(want)) > 2500 {
			t.Errorf("krr %s: estimate %.0f, want %d", name, got, want)
		}
	}
	if err := o.AddUser([]byte("unknown"), 0, rng); err == nil {
		t.Error("unknown candidate accepted")
	}
	if got := o.Estimate([]byte("unknown")); got != 0 {
		t.Errorf("unknown estimate = %f", got)
	}
	if _, err := NewKRROracle(1, [][]byte{[]byte("one")}); err == nil {
		t.Error("single candidate accepted")
	}
	if _, err := NewKRROracle(1, [][]byte{[]byte("a"), []byte("a")}); err == nil {
		t.Error("duplicate candidates accepted")
	}
}

func TestOLHValidation(t *testing.T) {
	if _, err := NewOLHOracle(0, 0, 1); err == nil {
		t.Error("eps 0 accepted")
	}
	if _, err := NewOLHOracle(1, 1, 1); err == nil {
		t.Error("g=1 accepted")
	}
	if _, err := NewOLHOracle(1, 1<<17, 1); err == nil {
		t.Error("huge g accepted")
	}
}

func TestHashtogramErrorBoundShape(t *testing.T) {
	h, err := NewHashtogram(HashtogramParams{Eps: 1, N: 10000})
	if err != nil {
		t.Fatal(err)
	}
	// Monotone decreasing in beta; increasing as eps decreases.
	if h.ErrorBound(0.01) <= h.ErrorBound(0.1) {
		t.Error("bound not decreasing in beta")
	}
	h2, _ := NewHashtogram(HashtogramParams{Eps: 0.5, N: 10000})
	if h2.ErrorBound(0.05) <= h.ErrorBound(0.05) {
		t.Error("bound not decreasing in eps")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("beta=0 accepted")
			}
		}()
		h.ErrorBound(0)
	}()
}

func BenchmarkHashtogramReport(b *testing.B) {
	h, err := NewHashtogram(HashtogramParams{Eps: 1, N: 1 << 20, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 1))
	item := []byte("benchmark")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Report(item, i, rng)
	}
}

func BenchmarkHashtogramAbsorbFinalize100k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		h, err := NewHashtogram(HashtogramParams{Eps: 1, N: 100000, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewPCG(uint64(i), 1))
		reports := make([]HashtogramReport, 100000)
		for u := range reports {
			reports[u] = h.Report(key(uint64(u%50)), u, rng)
		}
		b.StartTimer()
		for _, rep := range reports {
			if err := h.Absorb(rep); err != nil {
				b.Fatal(err)
			}
		}
		h.Finalize()
	}
}

func BenchmarkDirectHistogramFinalize1M(b *testing.B) {
	d, err := NewDirectHistogram(1, 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 1))
	for i := 0; i < 1000; i++ {
		rep, _ := d.Report(uint64(i), rng)
		if err := d.Absorb(rep); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.finalized = false
		d.Finalize()
	}
}

func ExampleDirectHistogram() {
	d, _ := NewDirectHistogram(2.0, 4)
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 8000; i++ {
		rep, _ := d.Report(uint64(i%2), rng) // half zeros, half ones
		_ = d.Absorb(rep)
	}
	d.Finalize()
	fmt.Println(d.Estimate(0) > 2500, d.Estimate(1) > 2500, math.Abs(d.Estimate(3)) < 1500)
	// Output: true true true
}

// TestHashtogramFinalizeWorkersEquivalence pins the bounded-finalize
// contract: the frozen sketch — hence every estimate — is bit-identical
// whether the per-row transforms run serially, under a small pool, or one
// goroutine per row (the plain Finalize path).
func TestHashtogramFinalizeWorkersEquivalence(t *testing.T) {
	const n = 4000
	pop := buildPopulation(n, map[uint64]int{1: 900, 2: 500})
	build := func(finalize func(h *Hashtogram)) *Hashtogram {
		t.Helper()
		h, err := NewHashtogram(HashtogramParams{Eps: 2, N: n, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewPCG(3, 3))
		for i, x := range pop.items {
			if err := h.Absorb(h.Report(x, i, rng)); err != nil {
				t.Fatal(err)
			}
		}
		finalize(h)
		return h
	}
	ref := build(func(h *Hashtogram) { h.FinalizeWorkers(1) })
	for name, fin := range map[string]func(h *Hashtogram){
		"workers_3": func(h *Hashtogram) { h.FinalizeWorkers(3) },
		"workers_over_rows": func(h *Hashtogram) {
			h.FinalizeWorkers(10 * h.Params().Rows)
		},
		"Finalize": func(h *Hashtogram) { h.Finalize() },
	} {
		got := build(fin)
		for _, q := range [][]byte{key(1), key(2), key(3), key(1 << 41)} {
			if ref.Estimate(q) != got.Estimate(q) {
				t.Fatalf("%s: Estimate(%x) = %v, serial finalize %v",
					name, q, got.Estimate(q), ref.Estimate(q))
			}
		}
	}
}
