package freqoracle

// Reject-path pins for the explicit maxSnapshotTally bounds: every counter
// in a snapshot is checked against the 2^53 report-tally bound on the raw
// uint64 (or raw float64 bits) before any int conversion, so corrupted
// oversized values can never wrap or lose precision on the way into the
// int64 accumulators. The same mutations live as named seeds under
// testdata/fuzz/FuzzRestoreSnapshot/.

import (
	"encoding/binary"
	"math"
	"strings"
	"testing"
)

func TestHashtogramRestoreRejectsOversizedCounters(t *testing.T) {
	mk := func() *Hashtogram {
		h, err := NewHashtogram(HashtogramParams{Eps: 1, N: 100, Rows: 2, T: 4, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	base, err := mk().Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		off  int
		bits uint64
		want string
	}{
		{"rowcount beyond 2^53", 13, uint64(1)<<53 + 1, "exceeds report-tally bound"},
		{"cell beyond 2^53", 29, math.Float64bits(float64(uint64(1) << 54)), "not an integral report tally"},
		{"non-integral cell", 29, math.Float64bits(2.5), "not an integral report tally"},
		{"negative-zero cell", 29, math.Float64bits(math.Copysign(0, -1)), "not canonical"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			snap := append([]byte(nil), base...)
			binary.BigEndian.PutUint64(snap[tc.off:], tc.bits)
			err := mk().Restore(snap)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Restore = %v, want error containing %q", err, tc.want)
			}
		})
	}
	t.Run("rowcount sum beyond 2^53", func(t *testing.T) {
		snap := append([]byte(nil), base...)
		binary.BigEndian.PutUint64(snap[13:], uint64(1)<<53) // each row in bound,
		binary.BigEndian.PutUint64(snap[21:], uint64(1)<<53) // their sum is not
		err := mk().Restore(snap)
		if err == nil || !strings.Contains(err.Error(), "total report count exceeds bound") {
			t.Fatalf("Restore = %v, want total-report-count error", err)
		}
	})
}

func TestDirectRestoreRejectsOversizedCounters(t *testing.T) {
	mk := func() *DirectHistogram {
		d, err := NewDirectHistogram(1, 3)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	base, err := mk().Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		off  int
		bits uint64
		want string
	}{
		{"n beyond 2^53", 21, uint64(1)<<53 + 1, "exceeds report-tally bound"},
		{"cell beyond 2^53", 29, math.Float64bits(float64(uint64(1) << 54)), "not an integral report tally"},
		{"non-integral cell", 29, math.Float64bits(1.5), "not an integral report tally"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			snap := append([]byte(nil), base...)
			binary.BigEndian.PutUint64(snap[tc.off:], tc.bits)
			err := mk().Restore(snap)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Restore = %v, want error containing %q", err, tc.want)
			}
		})
	}
}
