package freqoracle

import (
	"encoding/hex"
	"testing"
)

// The golden-bytes tests pin the exact serialized layouts so the formats
// cannot drift silently (the way BytesPerReport once did): any byte-level
// change to the encoders breaks these constants and must ship with a
// version bump and a migration story, not slide through.

// TestSnapshotGoldenBytes pins Hashtogram "LHSK" version 1:
//
//	magic | version | rows u32 | t u32 | rowCounts []u64 | acc []f64 (row-major)
func TestSnapshotGoldenBytes(t *testing.T) {
	h, err := NewHashtogram(HashtogramParams{Eps: 1, N: 100, Rows: 2, T: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Hand-picked reports with fully predictable counters: two +1 hits on
	// (row 0, col 1) and one -1 hit on (row 1, col 3).
	for _, rep := range []HashtogramReport{
		{Row: 0, Col: 1, Bit: 1},
		{Row: 0, Col: 1, Bit: 1},
		{Row: 1, Col: 3, Bit: -1},
	} {
		if err := h.Absorb(rep); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := h.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	const golden = "4c48534b01" + // "LHSK" v1
		"00000002" + "00000004" + // rows=2, t=4
		"0000000000000002" + "0000000000000001" + // rowCounts
		"0000000000000000" + "4000000000000000" + "0000000000000000" + "0000000000000000" + // acc row 0: [0, 2, 0, 0]
		"0000000000000000" + "0000000000000000" + "0000000000000000" + "bff0000000000000" // acc row 1: [0, 0, 0, -1]
	if got := hex.EncodeToString(snap); got != golden {
		t.Fatalf("LHSK layout drifted:\n got %s\nwant %s", got, golden)
	}
	// And the pinned bytes restore to the identical state.
	g, err := NewHashtogram(HashtogramParams{Eps: 1, N: 100, Rows: 2, T: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := hex.DecodeString(golden)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Restore(raw); err != nil {
		t.Fatal(err)
	}
	if g.TotalReports() != 3 {
		t.Fatalf("restored golden sketch holds %d reports, want 3", g.TotalReports())
	}
}

// TestDirectSnapshotGoldenBytes pins DirectHistogram "LDSK" version 1:
//
//	magic | version | domain u32 | t u32 | epsBits u64 | n u64 | acc []f64
func TestDirectSnapshotGoldenBytes(t *testing.T) {
	d, err := NewDirectHistogram(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range []DirectReport{
		{Col: 0, Bit: 1},
		{Col: 2, Bit: -1},
	} {
		if err := d.Absorb(rep); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	const golden = "4c44534b01" + // "LDSK" v1
		"00000003" + "00000004" + // domain=3, padded t=4
		"3ff0000000000000" + // epsBits: Float64bits(1.0)
		"0000000000000002" + // n=2
		"3ff0000000000000" + "0000000000000000" + "bff0000000000000" + "0000000000000000" // acc: [1, 0, -1, 0]
	if got := hex.EncodeToString(snap); got != golden {
		t.Fatalf("LDSK layout drifted:\n got %s\nwant %s", got, golden)
	}
	g, err := NewDirectHistogram(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := hex.DecodeString(golden)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Restore(raw); err != nil {
		t.Fatal(err)
	}
	if g.TotalReports() != 2 {
		t.Fatalf("restored golden histogram holds %d reports, want 2", g.TotalReports())
	}
}
