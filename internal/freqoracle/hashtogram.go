// Package freqoracle implements the frequency oracles of the paper:
//
//   - Hashtogram (Theorem 3.7): the large-domain oracle of Bassily, Nissim,
//     Stemmer and Thakurta — a count-median sketch of R rows by T = O(√n)
//     buckets, filled through the Hadamard one-bit randomizer and
//     reconstructed with one fast Walsh-Hadamard transform per row. Error
//     O((1/ε)·sqrt(n·log(R'/β))) per query, server memory O~(√n), user time
//     and communication O~(1).
//   - DirectHistogram (Theorem 3.8): the small-domain variant that estimates
//     the whole histogram at once over an explicit domain, used per
//     coordinate inside PrivateExpanderSketch.
//
// Both follow the same client/server shape: the server is created first and
// publishes PublicParams (the protocol's public randomness); clients are
// cheap value types that turn an item into a single small report; the server
// absorbs reports in any order, finalizes, and then answers point queries.
//
// The package also provides RAPPOR-, OLH- and KRR-based oracles over
// explicit candidate sets as industrial baselines (see baselines.go).
package freqoracle

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"sync"

	"ldphh/internal/dist"
	"ldphh/internal/hadamard"
	"ldphh/internal/hashing"
	"ldphh/internal/ldp"
	"ldphh/internal/par"
)

// HashtogramParams configures the large-domain oracle.
type HashtogramParams struct {
	Eps  float64 // privacy parameter of each user's single report
	N    int     // expected number of users (sizing hint)
	Rows int     // sketch depth R; 0 derives O(log n) from N
	T    int     // sketch width (power of two); 0 derives O(√n) from N
	Seed uint64  // public-randomness seed
}

func (p *HashtogramParams) setDefaults() error {
	if p.Eps <= 0 {
		return fmt.Errorf("freqoracle: Eps must be positive, got %v", p.Eps)
	}
	if p.N <= 0 {
		return fmt.Errorf("freqoracle: N must be positive, got %d", p.N)
	}
	if p.Rows == 0 {
		p.Rows = int(math.Ceil(2 * math.Log2(float64(p.N)+1)))
		if p.Rows < 8 {
			p.Rows = 8
		}
	}
	if p.Rows < 1 {
		return fmt.Errorf("freqoracle: Rows must be positive, got %d", p.Rows)
	}
	if p.T == 0 {
		p.T = hadamard.NextPow2(int(math.Ceil(math.Sqrt(float64(p.N)))))
		if p.T < 16 {
			p.T = 16
		}
	}
	if p.T < 2 || p.T&(p.T-1) != 0 {
		return fmt.Errorf("freqoracle: T must be a power of two >= 2, got %d", p.T)
	}
	return nil
}

// HashtogramReport is one user's message: the sketch row the user belongs
// to, the Hadamard column it sampled, and the randomized ±1 bit.
type HashtogramReport struct {
	Row int
	Col uint32
	Bit int8
}

// Hashtogram is the server side of the Theorem 3.7 oracle.
//
// The accumulator is one flat int64 slab indexed [row*T + col]: reports are
// ±1 tallies, so the running sums are exact integers, and keeping them in a
// single structure-of-arrays slab makes Absorb one cache-line touch and
// Merge one linear vector add. Magnitudes are bounded by the report count
// (far below 2^53), so the float64 conversion at Finalize is exact and the
// reconstruction is bit-identical to the historical float64 accumulator.
type Hashtogram struct {
	p         HashtogramParams
	rowHash   hashing.KWise // user index -> row (the public partition)
	hs        []hashing.KWise
	signs     []hashing.Sign
	fold      hashing.Fingerprinter
	rand      ldp.HadamardBit
	acc       []int64 // [row*T + col] running sums of ±1 reports
	rowCounts []int
	total     int // running sum of rowCounts, kept in lockstep
	est       [][]float64 // [row][bucket] finalized estimates
	scale     []float64   // [row] n/rowCounts[row] (0 for empty rows), frozen at Finalize
	finalized bool
	scratch   sync.Pool // *[]float64 per-query row-estimate buffers (Estimate runs concurrently)
}

// NewHashtogram constructs the server and draws the public randomness from
// params.Seed.
func NewHashtogram(params HashtogramParams) (*Hashtogram, error) {
	if err := params.setDefaults(); err != nil {
		return nil, err
	}
	rng := hashing.Seeded(params.Seed, 0x48617368)
	h := &Hashtogram{
		p:         params,
		rowHash:   hashing.NewKWise(2, rng),
		hs:        make([]hashing.KWise, params.Rows),
		signs:     make([]hashing.Sign, params.Rows),
		fold:      hashing.NewFingerprinter(rng),
		rand:      ldp.NewHadamardBit(params.Eps, params.T),
		acc:       make([]int64, params.Rows*params.T),
		rowCounts: make([]int, params.Rows),
	}
	for r := 0; r < params.Rows; r++ {
		h.hs[r] = hashing.NewKWise(2, rng)
		h.signs[r] = hashing.NewSign(rng)
	}
	return h, nil
}

// Params returns the defaulted parameters (the public randomness is fully
// determined by Params().Seed).
func (h *Hashtogram) Params() HashtogramParams { return h.p }

// Row returns the sketch row user userIdx reports into (public).
func (h *Hashtogram) Row(userIdx int) int {
	return h.rowHash.Range(uint64(userIdx), h.p.Rows)
}

// Report produces user userIdx's ε-LDP message for item x. It is the
// client-side computation: O(1) hash evaluations and one randomized bit.
func (h *Hashtogram) Report(x []byte, userIdx int, rng *rand.Rand) HashtogramReport {
	row := h.Row(userIdx)
	key := h.fold.Fold(x)
	bucket := uint64(h.hs[row].Range(key, h.p.T))
	sign := h.signs[row].Eval(key)
	// Encode sign by flipping the encoded basis vector: σ·e_b has Hadamard
	// coefficients σ·H[j,b]; realize σ on the true bit before randomizing.
	y := h.rand.Sample(bucket, rng)
	col, bit := h.rand.DecodeReport(y)
	bit *= sign
	return HashtogramReport{Row: row, Col: uint32(col), Bit: int8(bit)}
}

// NewAccumulator returns an empty shard that absorbs reports for this
// sketch without touching its state: the shard shares the sketch's public
// randomness (hash families are read-only after construction) but owns
// private counters, so any number of shards can Absorb concurrently — one
// per ingestion worker — and be folded back with Merge when their batches
// end. This is the per-shard half of the concurrent ingestion path; the
// sketch itself still serializes Absorb and Merge callers.
func (h *Hashtogram) NewAccumulator() *Hashtogram {
	return &Hashtogram{
		p:         h.p,
		rowHash:   h.rowHash,
		hs:        h.hs,
		signs:     h.signs,
		fold:      h.fold,
		rand:      h.rand,
		acc:       make([]int64, h.p.Rows*h.p.T),
		rowCounts: make([]int, h.p.Rows),
	}
}

// Absorb folds one report into the sketch. Not safe for concurrent use;
// callers that parallelize should absorb into per-worker NewAccumulator
// shards and Merge.
func (h *Hashtogram) Absorb(rep HashtogramReport) error {
	if h.finalized {
		return fmt.Errorf("freqoracle: Absorb after Finalize")
	}
	if rep.Row < 0 || rep.Row >= h.p.Rows {
		return fmt.Errorf("freqoracle: report row %d out of range", rep.Row)
	}
	if int(rep.Col) >= h.p.T {
		return fmt.Errorf("freqoracle: report column %d out of range", rep.Col)
	}
	if rep.Bit != 1 && rep.Bit != -1 {
		return fmt.Errorf("freqoracle: report bit %d invalid", rep.Bit)
	}
	h.acc[rep.Row*h.p.T+int(rep.Col)] += int64(rep.Bit)
	h.rowCounts[rep.Row]++
	h.total++
	return nil
}

// Finalize reconstructs per-row bucket histograms (one FWHT per row, all
// rows concurrently) and freezes the sketch.
func (h *Hashtogram) Finalize() { h.FinalizeWorkers(h.p.Rows) }

// FinalizeWorkers is Finalize with the row transforms bounded to at most
// workers concurrent goroutines; workers <= 1 runs fully serially with no
// goroutine at all. The reconstruction is per-row independent, so the
// frozen sketch is bit-identical at every bound — the knob only caps
// concurrency and the transient per-worker O(T) scratch buffer, which is
// how core.Protocol.Identify keeps its Params.Workers contract over the
// confirmation oracle.
func (h *Hashtogram) FinalizeWorkers(workers int) {
	if h.finalized {
		return
	}
	h.est = make([][]float64, h.p.Rows)
	// One slab holds every row's estimate vector: a single rows×T allocation
	// sliced per row instead of R separate copies, so finalization does not
	// fragment the heap and the frozen sketch stays cache-contiguous. The
	// int64 tallies convert exactly (|cell| <= reports << 2^53), so the
	// transform input — and therefore the frozen sketch — is bit-identical
	// to the historical float64 accumulator.
	slab := make([]float64, h.p.Rows*h.p.T)
	par.Range(h.p.Rows, workers, func(r int) {
		v := slab[r*h.p.T : (r+1)*h.p.T : (r+1)*h.p.T]
		row := h.acc[r*h.p.T : (r+1)*h.p.T]
		for j, a := range row {
			v[j] = float64(a)
		}
		hadamard.Transform(v)
		c := h.rand.CEps()
		for j := range v {
			v[j] *= c
		}
		h.est[r] = v
	})
	// Counters are frozen from here on, so the per-row n/rowCounts rescale
	// Estimate applied per query folds into one precomputed factor per row.
	h.scale = make([]float64, h.p.Rows)
	n := float64(h.total)
	for r, c := range h.rowCounts {
		if c > 0 {
			h.scale[r] = n / float64(c)
		}
	}
	h.finalized = true
}

// TotalReports returns the number of absorbed reports. The count is
// maintained incrementally alongside rowCounts, so the call is O(1) — it
// sits on the Estimate hot path (every query rescales by the total).
func (h *Hashtogram) TotalReports() int { return h.total }

// Merge folds another aggregator's accumulated state into this one. Both
// must be built from identical parameters (same Seed, so same public
// randomness) and neither may be finalized. This is what lets intermediate
// aggregators pre-combine report batches before shipping them upstream.
func (h *Hashtogram) Merge(other *Hashtogram) error {
	if h.finalized || other.finalized {
		return fmt.Errorf("freqoracle: Merge after Finalize")
	}
	if h.p != other.p {
		return fmt.Errorf("freqoracle: Merge of differently-parameterized sketches")
	}
	for j, v := range other.acc {
		h.acc[j] += v
	}
	for r, c := range other.rowCounts {
		h.rowCounts[r] += c
	}
	h.total += other.total
	return nil
}

// rowEstimates appends the rescaled signed per-row estimates for x to dst
// and returns it sorted — the shared row loop behind Estimate and
// EstimateWithSpread. Rows with no reports are skipped; the sort makes the
// result directly consumable by dist.QuantileSorted, which is what keeps
// the query allocation-free. Must only be called after Finalize.
func (h *Hashtogram) rowEstimates(x []byte, dst []float64) []float64 {
	key := h.fold.Fold(x)
	for r := 0; r < h.p.Rows; r++ {
		if h.rowCounts[r] == 0 {
			continue
		}
		bucket := h.hs[r].Range(key, h.p.T)
		sign := float64(h.signs[r].Eval(key))
		dst = append(dst, h.scale[r]*sign*h.est[r][bucket])
	}
	sort.Float64s(dst)
	return dst
}

// getScratch leases a row-estimate buffer from the per-sketch pool.
// Identify fans Estimate out over concurrent workers, so the scratch cannot
// be a single reused field; a pool keeps the steady state at zero
// allocations per query without serializing queriers.
func (h *Hashtogram) getScratch() *[]float64 {
	if buf, ok := h.scratch.Get().(*[]float64); ok {
		return buf
	}
	buf := make([]float64, 0, h.p.Rows)
	return &buf
}

// Estimate returns the estimated multiplicity of x among the absorbed
// reports: the median over rows of the rescaled signed bucket estimates.
// Must be called after Finalize. Safe for concurrent use (the frozen sketch
// is read-only; per-query scratch comes from an internal pool).
func (h *Hashtogram) Estimate(x []byte) float64 {
	if !h.finalized {
		panic("freqoracle: Estimate before Finalize")
	}
	if h.total == 0 {
		return 0
	}
	buf := h.getScratch()
	vals := h.rowEstimates(x, (*buf)[:0])
	var out float64
	if len(vals) > 0 {
		out = dist.QuantileSorted(vals, 0.5)
	}
	*buf = vals
	h.scratch.Put(buf)
	return out
}

// EstimateWithSpread returns the median estimate together with the
// interquartile range of the per-row estimates, a data-driven uncertainty
// indicator (wide spread flags heavy hash collisions or low row occupancy).
func (h *Hashtogram) EstimateWithSpread(x []byte) (est, iqr float64) {
	if !h.finalized {
		panic("freqoracle: EstimateWithSpread before Finalize")
	}
	if h.total == 0 {
		return 0, 0
	}
	buf := h.getScratch()
	vals := h.rowEstimates(x, (*buf)[:0])
	if len(vals) > 0 {
		est = dist.QuantileSorted(vals, 0.5)
		iqr = dist.QuantileSorted(vals, 0.75) - dist.QuantileSorted(vals, 0.25)
	}
	*buf = vals
	h.scratch.Put(buf)
	return est, iqr
}

// SketchBytes returns the resident size of the server state in bytes
// (the Table 1 "server memory" metric).
func (h *Hashtogram) SketchBytes() int {
	per := 8 * h.p.T * h.p.Rows // acc
	if h.finalized {
		per *= 2 // est
	}
	return per + 8*h.p.Rows
}

// ErrorBound returns a calibrated envelope on the error of a single query at
// failure probability beta. Shape per Theorem 3.7: a per-row standard
// deviation of CEps·sqrt(n·R) from the privacy noise, with the median over R
// rows driving the failure probability down as exp(-Ω(R)), so the
// β-dependence enters as an additive ln(1/β) under the square root:
//
//	bound(β) = 2·CEps·sqrt(n·(R + ln(1/β)))
func (h *Hashtogram) ErrorBound(beta float64) float64 {
	if beta <= 0 || beta >= 1 {
		panic("freqoracle: beta must be in (0,1)")
	}
	n := float64(h.p.N)
	r := float64(h.p.Rows)
	return 2 * h.rand.CEps() * math.Sqrt(n*(r+math.Log(1/beta)))
}
