package freqoracle

import (
	"fmt"
	"math/rand/v2"
	"testing"
)

// The split-ingest-snapshot-merge equivalence property, oracle layer: for a
// fixed report stream, splitting it across k leaf aggregators, serializing
// each leaf with Snapshot, rehydrating the bytes with Restore and folding
// everything into one root with Merge must reproduce the sequential
// single-aggregator state bit for bit — identical counters, so identical
// estimates for every query. Counters are exact small integers in float64,
// so no rounding can leak in from the split.

func TestHashtogramSnapshotMergeEquivalence(t *testing.T) {
	const n = 20000
	params := HashtogramParams{Eps: 1.5, N: n, Seed: 77}
	ref, err := NewHashtogram(params)
	if err != nil {
		t.Fatal(err)
	}
	pop := buildPopulation(n, map[uint64]int{1: 5000, 2: 2500})
	rng := rand.New(rand.NewPCG(8, 9))
	reports := make([]HashtogramReport, n)
	for i, x := range pop.items {
		reports[i] = ref.Report(x, i, rng)
	}
	for _, rep := range reports {
		if err := ref.Absorb(rep); err != nil {
			t.Fatal(err)
		}
	}
	ref.Finalize()

	for _, k := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("leaves_%d", k), func(t *testing.T) {
			leaves := make([]*Hashtogram, k)
			for l := range leaves {
				var err error
				if leaves[l], err = NewHashtogram(params); err != nil {
					t.Fatal(err)
				}
			}
			for i, rep := range reports {
				if err := leaves[i%k].Absorb(rep); err != nil {
					t.Fatal(err)
				}
			}
			root, err := NewHashtogram(params)
			if err != nil {
				t.Fatal(err)
			}
			for _, leaf := range leaves {
				snap, err := leaf.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				child, err := NewHashtogram(params)
				if err != nil {
					t.Fatal(err)
				}
				if err := child.Restore(snap); err != nil {
					t.Fatal(err)
				}
				if err := root.Merge(child); err != nil {
					t.Fatal(err)
				}
			}
			root.Finalize()
			if root.TotalReports() != n {
				t.Fatalf("root holds %d reports, want %d", root.TotalReports(), n)
			}
			for _, q := range []uint64{1, 2, 3, 424242} {
				got, want := root.Estimate(key(q)), ref.Estimate(key(q))
				if got != want {
					t.Fatalf("query %d: merged estimate %v != sequential %v", q, got, want)
				}
			}
		})
	}
}

func TestDirectHistogramSnapshotMergeEquivalence(t *testing.T) {
	const domain = 48
	const n = 20000
	ref, err := NewDirectHistogram(1.2, domain)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(10, 11))
	reports := make([]DirectReport, n)
	for i := range reports {
		rep, err := ref.Report(uint64(i%7), rng)
		if err != nil {
			t.Fatal(err)
		}
		reports[i] = rep
	}
	for _, rep := range reports {
		if err := ref.Absorb(rep); err != nil {
			t.Fatal(err)
		}
	}
	ref.Finalize()

	for _, k := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("leaves_%d", k), func(t *testing.T) {
			root, err := NewDirectHistogram(1.2, domain)
			if err != nil {
				t.Fatal(err)
			}
			for l := 0; l < k; l++ {
				leaf, err := NewDirectHistogram(1.2, domain)
				if err != nil {
					t.Fatal(err)
				}
				for i := l; i < n; i += k {
					if err := leaf.Absorb(reports[i]); err != nil {
						t.Fatal(err)
					}
				}
				snap, err := leaf.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				child, err := NewDirectHistogram(1.2, domain)
				if err != nil {
					t.Fatal(err)
				}
				if err := child.Restore(snap); err != nil {
					t.Fatal(err)
				}
				if err := root.Merge(child); err != nil {
					t.Fatal(err)
				}
			}
			root.Finalize()
			if root.TotalReports() != n {
				t.Fatalf("root holds %d reports, want %d", root.TotalReports(), n)
			}
			for v := uint64(0); v < domain; v++ {
				if got, want := root.Estimate(v), ref.Estimate(v); got != want {
					t.Fatalf("value %d: merged estimate %v != sequential %v", v, got, want)
				}
			}
		})
	}
}

func TestDirectHistogramSnapshotRestoreResume(t *testing.T) {
	// Checkpoint/resume: absorb half, snapshot, restore into a fresh
	// instance, absorb the rest; identical to the uninterrupted run.
	const domain = 10
	const n = 5000
	a, err := NewDirectHistogram(2, domain)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(12, 13))
	reports := make([]DirectReport, n)
	for i := range reports {
		rep, err := a.Report(uint64(i%domain), rng)
		if err != nil {
			t.Fatal(err)
		}
		reports[i] = rep
	}
	for i := 0; i < n/2; i++ {
		if err := a.Absorb(reports[i]); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewDirectHistogram(2, domain)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Restore(snap); err != nil {
		t.Fatal(err)
	}
	c, err := NewDirectHistogram(2, domain)
	if err != nil {
		t.Fatal(err)
	}
	for i := n / 2; i < n; i++ {
		if err := b.Absorb(reports[i]); err != nil {
			t.Fatal(err)
		}
	}
	for _, rep := range reports {
		if err := c.Absorb(rep); err != nil {
			t.Fatal(err)
		}
	}
	b.Finalize()
	c.Finalize()
	if b.TotalReports() != n {
		t.Fatalf("restored histogram holds %d reports", b.TotalReports())
	}
	for v := uint64(0); v < domain; v++ {
		if got, want := b.Estimate(v), c.Estimate(v); got != want {
			t.Fatalf("value %d: resumed estimate %v != uninterrupted %v", v, got, want)
		}
	}
}

func TestDirectSnapshotValidation(t *testing.T) {
	d, err := NewDirectHistogram(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func([]byte) []byte
		target func() *DirectHistogram
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)-1] }, nil},
		{"oversize", func(b []byte) []byte { return append(b, 0) }, nil},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, nil},
		{"bad version", func(b []byte) []byte { b[4] = 9; return b }, nil},
		{"shape mismatch", func(b []byte) []byte { return b }, func() *DirectHistogram {
			o, _ := NewDirectHistogram(1, 9)
			return o
		}},
		{"eps mismatch", func(b []byte) []byte { return b }, func() *DirectHistogram {
			o, _ := NewDirectHistogram(2, 8)
			return o
		}},
		{"negative count", func(b []byte) []byte {
			b[21] = 0xff
			return b
		}, nil},
		{"NaN payload", func(b []byte) []byte {
			copy(b[29:], []byte{0x7f, 0xf8, 0, 0, 0, 0, 0, 1})
			return b
		}, nil},
		{"Inf payload", func(b []byte) []byte {
			copy(b[29:], []byte{0x7f, 0xf0, 0, 0, 0, 0, 0, 0})
			return b
		}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			target := d
			if tc.target != nil {
				target = tc.target()
			}
			buf := tc.mutate(append([]byte(nil), snap...))
			if err := target.Restore(buf); err == nil {
				t.Errorf("%s accepted", tc.name)
			}
			// Atomicity: the failed restore left the target untouched.
			if target.TotalReports() != 0 {
				t.Errorf("%s mutated state on failure", tc.name)
			}
		})
	}
	// After finalize, both directions reject.
	d.Finalize()
	if _, err := d.Snapshot(); err == nil {
		t.Error("snapshot after finalize accepted")
	}
	if err := d.Restore(snap); err == nil {
		t.Error("restore after finalize accepted")
	}
}

func TestHashtogramRestoreRejectsCorruptCounters(t *testing.T) {
	params := HashtogramParams{Eps: 1, N: 100, Rows: 2, T: 4, Seed: 1}
	h, err := NewHashtogram(params)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := h.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	fresh := func() *Hashtogram {
		g, err := NewHashtogram(params)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	// Negative rowCount: top bit of the first u64 row counter.
	neg := append([]byte(nil), snap...)
	neg[13] = 0x80
	if err := fresh().Restore(neg); err == nil {
		t.Error("negative rowCount accepted")
	}
	// NaN accumulator cell.
	nan := append([]byte(nil), snap...)
	copy(nan[13+8*2:], []byte{0x7f, 0xf8, 0, 0, 0, 0, 0, 1})
	if err := fresh().Restore(nan); err == nil {
		t.Error("NaN accumulator accepted")
	}
	// -Inf accumulator cell.
	inf := append([]byte(nil), snap...)
	copy(inf[13+8*2:], []byte{0xff, 0xf0, 0, 0, 0, 0, 0, 0})
	if err := fresh().Restore(inf); err == nil {
		t.Error("-Inf accumulator accepted")
	}
	// Atomicity: a corrupt tail must not leave a partially-written prefix.
	// Give the target a nonzero state first, then feed it a snapshot whose
	// final accumulator cell is NaN; every counter must keep its old value.
	target := fresh()
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 10; i++ {
		if err := target.Absorb(target.Report(key(1), i, rng)); err != nil {
			t.Fatal(err)
		}
	}
	before, err := target.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	tail := append([]byte(nil), before...)
	copy(tail[len(tail)-8:], []byte{0x7f, 0xf8, 0, 0, 0, 0, 0, 1})
	if err := target.Restore(tail); err == nil {
		t.Fatal("NaN tail accepted")
	}
	after, err := target.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Error("failed restore mutated sketch state")
	}
}
