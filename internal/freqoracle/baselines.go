package freqoracle

import (
	"fmt"
	"math"
	"math/rand/v2"

	"ldphh/internal/hashing"
	"ldphh/internal/ldp"
)

// Oracle is the uniform experiment-facing view of a frequency oracle: feed
// users one at a time (each call runs the client half and immediately
// absorbs the report server-side), finalize, then query estimates.
type Oracle interface {
	Name() string
	AddUser(x []byte, userIdx int, rng *rand.Rand) error
	Finalize()
	Estimate(x []byte) float64
	// BytesPerReport is the wire size of one user report.
	BytesPerReport() int
	// SketchBytes is the resident server memory after Finalize.
	SketchBytes() int
}

// HashtogramOracle adapts Hashtogram to the Oracle interface.
type HashtogramOracle struct {
	H *Hashtogram
}

// NewHashtogramOracle constructs the adapter.
func NewHashtogramOracle(params HashtogramParams) (*HashtogramOracle, error) {
	h, err := NewHashtogram(params)
	if err != nil {
		return nil, err
	}
	return &HashtogramOracle{H: h}, nil
}

// Name implements Oracle.
func (o *HashtogramOracle) Name() string { return "hashtogram" }

// AddUser implements Oracle.
func (o *HashtogramOracle) AddUser(x []byte, userIdx int, rng *rand.Rand) error {
	return o.H.Absorb(o.H.Report(x, userIdx, rng))
}

// Finalize implements Oracle.
func (o *HashtogramOracle) Finalize() { o.H.Finalize() }

// Estimate implements Oracle.
func (o *HashtogramOracle) Estimate(x []byte) float64 { return o.H.Estimate(x) }

// BytesPerReport implements Oracle: row (2) + column (4) + bit (1).
func (o *HashtogramOracle) BytesPerReport() int { return 7 }

// SketchBytes implements Oracle.
func (o *HashtogramOracle) SketchBytes() int { return o.H.SketchBytes() }

// RAPPOROracle is the basic one-time RAPPOR frequency oracle [12]: Bloom
// masks through per-bit randomized response, estimated per candidate from
// unbiased bit counts (averaged over the candidate's Bloom bits; Bloom
// collisions bias estimates upward, which is the known behaviour of the
// deployed system and part of why the paper's sketch-based oracles win).
type RAPPOROracle struct {
	r        ldp.RAPPOR
	bitCount []int
	n        int
}

// NewRAPPOROracle constructs the oracle.
func NewRAPPOROracle(eps float64, bloomBits, numHashes int, seed uint64) *RAPPOROracle {
	return &RAPPOROracle{
		r:        ldp.NewRAPPOR(eps, bloomBits, numHashes, seed, seed^0x5bd1e995),
		bitCount: make([]int, bloomBits),
	}
}

// Name implements Oracle.
func (o *RAPPOROracle) Name() string { return "rappor" }

// AddUser implements Oracle.
func (o *RAPPOROracle) AddUser(x []byte, _ int, rng *rand.Rand) error {
	rep := o.r.Sample(o.r.BloomMask(x), rng)
	for i := 0; i < o.r.BloomBits(); i++ {
		if rep>>uint(i)&1 == 1 {
			o.bitCount[i]++
		}
	}
	o.n++
	return nil
}

// Finalize implements Oracle (RAPPOR needs no reconstruction pass).
func (o *RAPPOROracle) Finalize() {}

// Estimate implements Oracle.
func (o *RAPPOROracle) Estimate(x []byte) float64 {
	mask := o.r.BloomMask(x)
	p := o.r.PKeep()
	q := 1 - p
	sum, bits := 0.0, 0
	for i := 0; i < o.r.BloomBits(); i++ {
		if mask>>uint(i)&1 == 1 {
			sum += (float64(o.bitCount[i]) - q*float64(o.n)) / (p - q)
			bits++
		}
	}
	if bits == 0 {
		return 0
	}
	return sum / float64(bits)
}

// BytesPerReport implements Oracle.
func (o *RAPPOROracle) BytesPerReport() int { return (o.r.BloomBits() + 7) / 8 }

// SketchBytes implements Oracle.
func (o *RAPPOROracle) SketchBytes() int { return 8 * len(o.bitCount) }

// OLHOracle is optimized local hashing (Wang et al.): each user hashes its
// item with a per-user public hash into g = ⌈e^ε⌉+1 buckets and reports the
// bucket through g-ary randomized response. Reports are O(1) bits but every
// Estimate costs O(n) — the classic trade-off this family accepts.
type OLHOracle struct {
	eps     float64
	g       uint64
	rr      ldp.KaryRR
	mix     hashing.KWise
	fold    hashing.Fingerprinter
	reports []uint16
}

// NewOLHOracle constructs the oracle; g defaults to ⌈e^ε⌉+1 when g == 0.
func NewOLHOracle(eps float64, g uint64, seed uint64) (*OLHOracle, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("freqoracle: Eps must be positive")
	}
	if g == 0 {
		g = uint64(math.Ceil(math.Exp(eps))) + 1
	}
	if g < 2 || g > 1<<16 {
		return nil, fmt.Errorf("freqoracle: OLH g=%d out of range", g)
	}
	rng := hashing.Seeded(seed, 0x4f4c48)
	return &OLHOracle{
		eps:  eps,
		g:    g,
		rr:   ldp.NewKaryRR(eps, g),
		mix:  hashing.NewKWise(2, rng),
		fold: hashing.NewFingerprinter(rng),
	}, nil
}

// userHash maps (user, item) to a bucket in [g]; the per-user hash function
// is the public pairwise family evaluated on a mixed key.
func (o *OLHOracle) userHash(userIdx int, x []byte) uint64 {
	key := o.fold.Fold(x) ^ (uint64(userIdx)+1)*0x9e3779b97f4a7c15
	return uint64(o.mix.Range(key, int(o.g)))
}

// Name implements Oracle.
func (o *OLHOracle) Name() string { return "olh" }

// AddUser implements Oracle.
func (o *OLHOracle) AddUser(x []byte, userIdx int, rng *rand.Rand) error {
	v := o.userHash(userIdx, x)
	o.reports = append(o.reports, uint16(o.rr.Sample(v, rng)))
	return nil
}

// Finalize implements Oracle.
func (o *OLHOracle) Finalize() {}

// Estimate implements Oracle. O(n) per query.
func (o *OLHOracle) Estimate(x []byte) float64 {
	n := len(o.reports)
	if n == 0 {
		return 0
	}
	support := 0
	for u, rep := range o.reports {
		if uint64(rep) == o.userHash(u, x) {
			support++
		}
	}
	p := o.rr.PKeep()
	q := 1 / float64(o.g)
	// A non-holder supports with probability exactly 1/g (its hash is an
	// independent uniform bucket); a holder supports with probability p.
	return (float64(support) - q*float64(n)) / (p - q)
}

// BytesPerReport implements Oracle.
func (o *OLHOracle) BytesPerReport() int { return 2 }

// SketchBytes implements Oracle (stores all reports).
func (o *OLHOracle) SketchBytes() int { return 2 * len(o.reports) }

// KRROracle applies k-ary randomized response over an explicit candidate
// set; items outside the set are rejected. It is the textbook small-domain
// baseline.
type KRROracle struct {
	rr     ldp.KaryRR
	index  map[string]uint64
	counts []int
	n      int
}

// NewKRROracle constructs the oracle over the candidate set.
func NewKRROracle(eps float64, candidates [][]byte) (*KRROracle, error) {
	if len(candidates) < 2 {
		return nil, fmt.Errorf("freqoracle: KRR needs at least 2 candidates")
	}
	index := make(map[string]uint64, len(candidates))
	for i, c := range candidates {
		if _, dup := index[string(c)]; dup {
			return nil, fmt.Errorf("freqoracle: duplicate candidate %q", c)
		}
		index[string(c)] = uint64(i)
	}
	return &KRROracle{
		rr:     ldp.NewKaryRR(eps, uint64(len(candidates))),
		index:  index,
		counts: make([]int, len(candidates)),
	}, nil
}

// Name implements Oracle.
func (o *KRROracle) Name() string { return "krr" }

// AddUser implements Oracle.
func (o *KRROracle) AddUser(x []byte, _ int, rng *rand.Rand) error {
	v, ok := o.index[string(x)]
	if !ok {
		return fmt.Errorf("freqoracle: item %q not in KRR candidate set", x)
	}
	o.counts[o.rr.Sample(v, rng)]++
	o.n++
	return nil
}

// Finalize implements Oracle.
func (o *KRROracle) Finalize() {}

// Estimate implements Oracle.
func (o *KRROracle) Estimate(x []byte) float64 {
	v, ok := o.index[string(x)]
	if !ok {
		return 0
	}
	return o.rr.Unbias(o.counts[v], o.n)
}

// BytesPerReport implements Oracle.
func (o *KRROracle) BytesPerReport() int { return 4 }

// SketchBytes implements Oracle.
func (o *KRROracle) SketchBytes() int { return 8 * len(o.counts) }
