package freqoracle

import (
	"fmt"
	"math"
	"math/rand/v2"

	"ldphh/internal/hadamard"
	"ldphh/internal/ldp"
)

// DirectHistogram is the small-domain oracle of Theorem 3.8: every user
// holds a value in an explicit domain [0, Domain) and reports one Hadamard
// bit of its one-hot encoding over the padded domain [T], T = NextPow2(Domain).
// The server reconstructs the entire estimated histogram with a single fast
// Walsh-Hadamard transform, so point queries and full scans are O(1) and
// O(Domain) respectively after Finalize.
//
// Per-query error is O((1/ε)·sqrt(n·log(1/β))) — no dependence on the domain
// size — at server memory O(Domain), exactly the Theorem 3.8 trade-off that
// PrivateExpanderSketch exploits per coordinate.
type DirectHistogram struct {
	eps       float64
	domain    int
	t         int
	rand      ldp.HadamardBit
	acc       []int64 // running sums of ±1 reports (exact integer tallies)
	n         int
	hist      []float64
	finalized bool
}

// DirectReport is one user's message: a Hadamard column and a ±1 bit.
type DirectReport struct {
	Col uint32
	Bit int8
}

// NewDirectHistogram constructs the oracle over an explicit domain of the
// given size with privacy parameter eps.
func NewDirectHistogram(eps float64, domain int) (*DirectHistogram, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("freqoracle: Eps must be positive, got %v", eps)
	}
	if domain < 1 {
		return nil, fmt.Errorf("freqoracle: domain must be positive, got %d", domain)
	}
	t := hadamard.NextPow2(domain)
	if t < 2 {
		t = 2
	}
	return &DirectHistogram{
		eps:    eps,
		domain: domain,
		t:      t,
		rand:   ldp.NewHadamardBit(eps, t),
		acc:    make([]int64, t),
	}, nil
}

// Domain returns the domain size.
func (d *DirectHistogram) Domain() int { return d.domain }

// Eps returns the privacy parameter of each report.
func (d *DirectHistogram) Eps() float64 { return d.eps }

// T returns the padded (power-of-two) report domain.
func (d *DirectHistogram) T() int { return d.t }

// Report produces one user's ε-LDP message for value x in [0, Domain).
func (d *DirectHistogram) Report(x uint64, rng *rand.Rand) (DirectReport, error) {
	if x >= uint64(d.domain) {
		return DirectReport{}, fmt.Errorf("freqoracle: value %d outside domain %d", x, d.domain)
	}
	y := d.rand.Sample(x, rng)
	col, bit := d.rand.DecodeReport(y)
	return DirectReport{Col: uint32(col), Bit: int8(bit)}, nil
}

// NewAccumulator returns an empty shard with this oracle's parameters and
// private counters. Shards absorb reports independently — one per ingestion
// worker, no locking — and fold back into the parent (or each other) with
// Merge when their batches end.
func (d *DirectHistogram) NewAccumulator() *DirectHistogram {
	return &DirectHistogram{
		eps:    d.eps,
		domain: d.domain,
		t:      d.t,
		rand:   d.rand,
		acc:    make([]int64, d.t),
	}
}

// Absorb folds one report into the accumulator. Not safe for concurrent
// use; callers that parallelize should absorb into per-worker
// NewAccumulator shards and Merge.
func (d *DirectHistogram) Absorb(rep DirectReport) error {
	if d.finalized {
		return fmt.Errorf("freqoracle: Absorb after Finalize")
	}
	if int(rep.Col) >= d.t {
		return fmt.Errorf("freqoracle: report column %d out of range", rep.Col)
	}
	if rep.Bit != 1 && rep.Bit != -1 {
		return fmt.Errorf("freqoracle: report bit %d invalid", rep.Bit)
	}
	d.acc[rep.Col] += int64(rep.Bit)
	d.n++
	return nil
}

// Finalize reconstructs the full estimated histogram.
func (d *DirectHistogram) Finalize() {
	if d.finalized {
		return
	}
	// The int64 tallies convert exactly (|cell| <= n << 2^53), so the
	// transform input is bit-identical to the historical float64 accumulator.
	v := make([]float64, d.t)
	for i, a := range d.acc {
		v[i] = float64(a)
	}
	hadamard.Transform(v)
	c := d.rand.CEps()
	for i := range v {
		v[i] *= c
	}
	d.hist = v
	d.finalized = true
}

// Estimate returns the estimated multiplicity of x. Must be called after
// Finalize.
func (d *DirectHistogram) Estimate(x uint64) float64 {
	if !d.finalized {
		panic("freqoracle: Estimate before Finalize")
	}
	if x >= uint64(d.domain) {
		return 0
	}
	return d.hist[x]
}

// Histogram returns the full estimated histogram over [0, Domain) (a copy).
func (d *DirectHistogram) Histogram() []float64 {
	if !d.finalized {
		panic("freqoracle: Histogram before Finalize")
	}
	return append([]float64(nil), d.hist[:d.domain]...)
}

// HistogramView returns the finalized estimated histogram over [0, Domain)
// without copying. The caller must treat the slice as read-only; it stays
// valid (and immutable — Absorb and Merge fail after Finalize) for the
// oracle's lifetime. Identify's parallel per-coordinate scan reads through
// this view so a large-domain scan costs no O(Domain) copy per coordinate.
func (d *DirectHistogram) HistogramView() []float64 {
	if !d.finalized {
		panic("freqoracle: HistogramView before Finalize")
	}
	return d.hist[:d.domain]
}

// TotalReports returns the number of absorbed reports.
func (d *DirectHistogram) TotalReports() int { return d.n }

// Merge folds another accumulator with identical parameters into this one;
// neither may be finalized.
func (d *DirectHistogram) Merge(other *DirectHistogram) error {
	if d.finalized || other.finalized {
		return fmt.Errorf("freqoracle: Merge after Finalize")
	}
	if d.eps != other.eps || d.domain != other.domain || d.t != other.t {
		return fmt.Errorf("freqoracle: Merge of differently-parameterized histograms")
	}
	for j := range d.acc {
		d.acc[j] += other.acc[j]
	}
	d.n += other.n
	return nil
}

// SketchBytes returns the resident server state in bytes.
func (d *DirectHistogram) SketchBytes() int {
	b := 8 * d.t
	if d.finalized {
		b *= 2
	}
	return b
}

// ErrorBound returns the Theorem 3.8-shaped high-probability bound on a
// single query's error at failure probability beta: the estimate is a sum of
// n independent bounded terms (each |CEps·H·bit| <= CEps), so Hoeffding
// gives CEps·sqrt(2·n·ln(2/β)).
func (d *DirectHistogram) ErrorBound(n int, beta float64) float64 {
	if beta <= 0 || beta >= 1 {
		panic("freqoracle: beta must be in (0,1)")
	}
	return d.rand.CEps() * math.Sqrt(2*float64(n)*math.Log(2/beta))
}
