package freqoracle

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestHashtogramMerge(t *testing.T) {
	// Split the same population across two aggregators with identical
	// public randomness; the merged sketch must estimate like a single one.
	const n = 40000
	params := HashtogramParams{Eps: 1.5, N: n, Seed: 33}
	a, err := NewHashtogram(params)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewHashtogram(params)
	if err != nil {
		t.Fatal(err)
	}
	planted := map[uint64]int{5: 9000, 6: 4000}
	pop := buildPopulation(n, planted)
	rng := rand.New(rand.NewPCG(1, 2))
	for i, x := range pop.items {
		target := a
		if i%2 == 1 {
			target = b
		}
		// Reports must come from the same public randomness (either
		// instance works since params are identical).
		if err := target.Absorb(a.Report(x, i, rng)); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	a.Finalize()
	if got := a.TotalReports(); got != n {
		t.Fatalf("merged sketch holds %d reports, want %d", got, n)
	}
	bound := a.ErrorBound(0.01)
	for k, want := range planted {
		got := a.Estimate(key(k))
		if math.Abs(got-float64(want)) > bound {
			t.Errorf("merged estimate of %d = %.0f, want %d (bound %.0f)", k, got, want, bound)
		}
	}
}

// sumRowCounts re-derives the report total the slow way; the running
// counter behind TotalReports must agree with it after every mutation.
func sumRowCounts(h *Hashtogram) int {
	n := 0
	for _, c := range h.rowCounts {
		n += c
	}
	return n
}

func TestHashtogramTotalReportsRunningCounter(t *testing.T) {
	params := HashtogramParams{Eps: 1, N: 4000, Seed: 7}
	h, err := NewHashtogram(params)
	if err != nil {
		t.Fatal(err)
	}
	check := func(stage string, sk *Hashtogram) {
		t.Helper()
		if got, want := sk.TotalReports(), sumRowCounts(sk); got != want {
			t.Fatalf("%s: TotalReports = %d, rowCounts sum to %d", stage, got, want)
		}
	}
	check("empty", h)
	rng := rand.New(rand.NewPCG(9, 9))
	for i := 0; i < 500; i++ {
		if err := h.Absorb(h.Report(key(uint64(i%17)), i, rng)); err != nil {
			t.Fatal(err)
		}
	}
	check("after absorb", h)

	// Shards start from zero and fold back through Merge.
	shard := h.NewAccumulator()
	check("fresh accumulator", shard)
	for i := 500; i < 800; i++ {
		if err := shard.Absorb(h.Report(key(uint64(i%17)), i, rng)); err != nil {
			t.Fatal(err)
		}
	}
	check("absorbed shard", shard)
	if err := h.Merge(shard); err != nil {
		t.Fatal(err)
	}
	check("after merge", h)
	if got := h.TotalReports(); got != 800 {
		t.Fatalf("merged total = %d, want 800", got)
	}

	// Restore rebuilds the counter from the snapshot's row counts — both
	// into a dirty sketch (stale counter must be overwritten) and a fresh one.
	snap, err := h.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	dirty, err := NewHashtogram(params)
	if err != nil {
		t.Fatal(err)
	}
	if err := dirty.Absorb(h.Report(key(3), 0, rng)); err != nil {
		t.Fatal(err)
	}
	if err := dirty.Restore(snap); err != nil {
		t.Fatal(err)
	}
	check("after restore", dirty)
	if got := dirty.TotalReports(); got != 800 {
		t.Fatalf("restored total = %d, want 800", got)
	}
}

func TestHashtogramMergeValidation(t *testing.T) {
	a, _ := NewHashtogram(HashtogramParams{Eps: 1, N: 100, Seed: 1})
	b, _ := NewHashtogram(HashtogramParams{Eps: 1, N: 100, Seed: 2})
	if err := a.Merge(b); err == nil {
		t.Error("merge of different seeds accepted")
	}
	c, _ := NewHashtogram(HashtogramParams{Eps: 1, N: 100, Seed: 1})
	c.Finalize()
	d, _ := NewHashtogram(HashtogramParams{Eps: 1, N: 100, Seed: 1})
	if err := c.Merge(d); err == nil {
		t.Error("merge after finalize accepted")
	}
	if err := d.Merge(c); err == nil {
		t.Error("merge of finalized source accepted")
	}
}

func TestSnapshotRestore(t *testing.T) {
	const n = 20000
	params := HashtogramParams{Eps: 1.5, N: n, Seed: 55}
	a, err := NewHashtogram(params)
	if err != nil {
		t.Fatal(err)
	}
	planted := map[uint64]int{3: 5000}
	pop := buildPopulation(n, planted)
	rng := rand.New(rand.NewPCG(6, 7))

	// Absorb half, snapshot, "crash", restore into a fresh instance built
	// from the same params, absorb the rest.
	reports := make([]HashtogramReport, n)
	for i, x := range pop.items {
		reports[i] = a.Report(x, i, rng)
	}
	for i := 0; i < n/2; i++ {
		if err := a.Absorb(reports[i]); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewHashtogram(params)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Restore(snap); err != nil {
		t.Fatal(err)
	}
	for i := n / 2; i < n; i++ {
		if err := b.Absorb(reports[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Reference: the uninterrupted run.
	c, err := NewHashtogram(params)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range reports {
		if err := c.Absorb(rep); err != nil {
			t.Fatal(err)
		}
	}
	b.Finalize()
	c.Finalize()
	if b.TotalReports() != n {
		t.Fatalf("restored sketch holds %d reports", b.TotalReports())
	}
	if got, want := b.Estimate(key(3)), c.Estimate(key(3)); got != want {
		t.Fatalf("restored estimate %f != uninterrupted %f", got, want)
	}
}

func TestSnapshotValidation(t *testing.T) {
	a, _ := NewHashtogram(HashtogramParams{Eps: 1, N: 100, Seed: 1})
	snap, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Wrong-shape sketch rejects.
	b, _ := NewHashtogram(HashtogramParams{Eps: 1, N: 100, T: 1024, Seed: 1})
	if err := b.Restore(snap); err == nil {
		t.Error("shape mismatch accepted")
	}
	// Corrupt magic rejects.
	bad := append([]byte(nil), snap...)
	bad[0] = 'X'
	c, _ := NewHashtogram(HashtogramParams{Eps: 1, N: 100, Seed: 1})
	if err := c.Restore(bad); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated rejects.
	if err := c.Restore(snap[:10]); err == nil {
		t.Error("truncated snapshot accepted")
	}
	// After finalize, both directions reject.
	a.Finalize()
	if _, err := a.Snapshot(); err == nil {
		t.Error("snapshot after finalize accepted")
	}
	if err := a.Restore(snap); err == nil {
		t.Error("restore after finalize accepted")
	}
}

func TestEstimateWithSpread(t *testing.T) {
	const n = 30000
	h, err := NewHashtogram(HashtogramParams{Eps: 1.5, N: n, Seed: 44})
	if err != nil {
		t.Fatal(err)
	}
	planted := map[uint64]int{9: 8000}
	pop := buildPopulation(n, planted)
	rng := rand.New(rand.NewPCG(4, 5))
	for i, x := range pop.items {
		if err := h.Absorb(h.Report(x, i, rng)); err != nil {
			t.Fatal(err)
		}
	}
	h.Finalize()
	est, iqr := h.EstimateWithSpread(key(9))
	if est != h.Estimate(key(9)) {
		t.Error("EstimateWithSpread median disagrees with Estimate")
	}
	if iqr <= 0 {
		t.Error("IQR should be positive under privacy noise")
	}
	// The IQR should be of the same order as the per-row noise scale, not
	// absurdly larger than the estimate's distance from truth.
	if iqr > 20000 {
		t.Errorf("IQR implausibly wide: %.0f", iqr)
	}
}

func TestDirectHistogramMerge(t *testing.T) {
	const domain = 64
	a, err := NewDirectHistogram(1, domain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewDirectHistogram(1, domain)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 4))
	const n = 30000
	for i := 0; i < n; i++ {
		target := a
		if i%3 == 0 {
			target = b
		}
		rep, err := target.Report(uint64(i%4), rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := target.Absorb(rep); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	a.Finalize()
	if a.TotalReports() != n {
		t.Fatalf("merged reports %d", a.TotalReports())
	}
	bound := a.ErrorBound(n, 0.001)
	for v := uint64(0); v < 4; v++ {
		got := a.Estimate(v)
		if math.Abs(got-float64(n)/4) > bound {
			t.Errorf("value %d: merged estimate %.0f, want %d", v, got, n/4)
		}
	}
	// Validation.
	c, _ := NewDirectHistogram(1, 32)
	if err := a.Merge(c); err == nil {
		t.Error("merge of different domains accepted (and after finalize)")
	}
	d1, _ := NewDirectHistogram(1, domain)
	d2, _ := NewDirectHistogram(2, domain)
	if err := d1.Merge(d2); err == nil {
		t.Error("merge of different epsilons accepted")
	}
}
