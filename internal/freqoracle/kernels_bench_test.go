package freqoracle

// Kernel benchmarks for the profiled Identify/ingest hot paths: Absorb
// (per-report tallying), Finalize (per-row FWHT reconstruction) and
// Estimate (the per-candidate confirmation query Identify fans out over).
// BENCH_kernels.json records their before/after trajectory across the
// int64 structure-of-arrays conversion.

import (
	"encoding/binary"
	"math/rand/v2"
	"testing"
)

const (
	benchKernelN       = 30000
	benchKernelKeys    = 512
	benchDirectDomain  = 1 << 14
	benchDirectReports = 30000
)

func benchKernelParams() HashtogramParams {
	return HashtogramParams{Eps: 4, N: benchKernelN, Seed: 7}
}

func benchKernelItem(i int) []byte {
	var item [4]byte
	binary.BigEndian.PutUint32(item[:], uint32(i%benchKernelKeys))
	return item[:]
}

// benchHashtogram returns a sketch plus the deterministic report stream of
// one full round against it.
func benchHashtogram(b *testing.B) (*Hashtogram, []HashtogramReport) {
	b.Helper()
	h, err := NewHashtogram(benchKernelParams())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	reports := make([]HashtogramReport, benchKernelN)
	for i := range reports {
		reports[i] = h.Report(benchKernelItem(i), i, rng)
	}
	return h, reports
}

func BenchmarkHashtogramAbsorb(b *testing.B) {
	h, reports := benchHashtogram(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.Absorb(reports[i%len(reports)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashtogramMerge(b *testing.B) {
	h, reports := benchHashtogram(b)
	shard := h.NewAccumulator()
	for _, rep := range reports {
		if err := shard.Absorb(rep); err != nil {
			b.Fatal(err)
		}
	}
	into := h.NewAccumulator()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := into.Merge(shard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashtogramFinalize(b *testing.B) {
	h, reports := benchHashtogram(b)
	for _, rep := range reports {
		if err := h.Absorb(rep); err != nil {
			b.Fatal(err)
		}
	}
	snap, err := h.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fresh, err := NewHashtogram(benchKernelParams())
		if err != nil {
			b.Fatal(err)
		}
		if err := fresh.Restore(snap); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		fresh.FinalizeWorkers(1)
	}
}

// benchFinalizedHashtogram returns a finalized sketch ready for Estimate
// queries, plus the query key set.
func benchFinalizedHashtogram(b *testing.B) (*Hashtogram, [][]byte) {
	b.Helper()
	h, reports := benchHashtogram(b)
	for _, rep := range reports {
		if err := h.Absorb(rep); err != nil {
			b.Fatal(err)
		}
	}
	h.Finalize()
	keys := make([][]byte, benchKernelKeys)
	for i := range keys {
		keys[i] = benchKernelItem(i)
	}
	return h, keys
}

func BenchmarkHashtogramEstimate(b *testing.B) {
	h, keys := benchFinalizedHashtogram(b)
	var sink float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += h.Estimate(keys[i%len(keys)])
	}
	benchSink = sink
}

func BenchmarkHashtogramEstimateWithSpread(b *testing.B) {
	h, keys := benchFinalizedHashtogram(b)
	var sink float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est, iqr := h.EstimateWithSpread(keys[i%len(keys)])
		sink += est + iqr
	}
	benchSink = sink
}

// benchSink defeats dead-code elimination of the measured query loops.
var benchSink float64

func benchDirect(b *testing.B) (*DirectHistogram, []DirectReport) {
	b.Helper()
	d, err := NewDirectHistogram(2, benchDirectDomain)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 4))
	reports := make([]DirectReport, benchDirectReports)
	for i := range reports {
		rep, err := d.Report(uint64(i%benchDirectDomain), rng)
		if err != nil {
			b.Fatal(err)
		}
		reports[i] = rep
	}
	return d, reports
}

func BenchmarkDirectAbsorb(b *testing.B) {
	d, reports := benchDirect(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Absorb(reports[i%len(reports)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDirectFinalize(b *testing.B) {
	d, reports := benchDirect(b)
	for _, rep := range reports {
		if err := d.Absorb(rep); err != nil {
			b.Fatal(err)
		}
	}
	snap, err := d.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fresh, err := NewDirectHistogram(2, benchDirectDomain)
		if err != nil {
			b.Fatal(err)
		}
		if err := fresh.Restore(snap); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		fresh.Finalize()
	}
}
