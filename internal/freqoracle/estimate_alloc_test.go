package freqoracle

// Allocation pin for the Estimate hot path: PES Identify step 5-6 fans
// Estimate/EstimateWithSpread out across workers for every surviving
// candidate, so a per-query allocation multiplies into the profile. The
// shared rowEstimates helper plus the pooled scratch slice keep both
// queries allocation-free after the pool warms; this test pins that.

import (
	"math/rand/v2"
	"testing"
)

func finalizedHashtogramForAllocTest(t *testing.T) (*Hashtogram, [][]byte) {
	t.Helper()
	h, err := NewHashtogram(HashtogramParams{Eps: 4, N: 2000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(8, 9))
	keys := make([][]byte, 32)
	for i := range keys {
		keys[i] = benchKernelItem(i)
	}
	for i := 0; i < 2000; i++ {
		if err := h.Absorb(h.Report(keys[i%len(keys)], i, rng)); err != nil {
			t.Fatal(err)
		}
	}
	h.Finalize()
	return h, keys
}

func TestEstimateAllocFree(t *testing.T) {
	h, keys := finalizedHashtogramForAllocTest(t)
	var sink float64
	i := 0
	// AllocsPerRun's warm-up call populates the sync.Pool scratch; after
	// that every query must reuse it. A stray background GC can evict the
	// pooled slice and cost one re-allocation across the whole run, so the
	// assertion is "well under one alloc per call", not exactly zero.
	allocs := testing.AllocsPerRun(500, func() {
		sink += h.Estimate(keys[i%len(keys)])
		i++
	})
	if allocs >= 1 {
		t.Errorf("Estimate allocates %.2f objects per call, want 0", allocs)
	}
	benchSink = sink
}

func TestEstimateWithSpreadAllocFree(t *testing.T) {
	h, keys := finalizedHashtogramForAllocTest(t)
	var sink float64
	i := 0
	allocs := testing.AllocsPerRun(500, func() {
		est, iqr := h.EstimateWithSpread(keys[i%len(keys)])
		sink += est + iqr
		i++
	})
	if allocs >= 1 {
		t.Errorf("EstimateWithSpread allocates %.2f objects per call, want 0", allocs)
	}
	benchSink = sink
}
