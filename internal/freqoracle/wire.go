package freqoracle

import (
	"context"
	"encoding/binary"
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"

	"ldphh/internal/proto"
)

// Wire payload primitives shared by every protocol whose reports are built
// from the two oracle report types. All layouts are big endian; a ±1 bit is
// one byte (0 => -1, 1 => +1).
const (
	// DirectReportPayloadBytes is a DirectReport on the wire: col u32 + bit.
	DirectReportPayloadBytes = 4 + 1
	// HashtogramReportPayloadBytes is a HashtogramReport on the wire:
	// row u16 + col u32 + bit.
	HashtogramReportPayloadBytes = 2 + 4 + 1
)

// EncodeBit maps a ±1 report bit to its wire byte.
func EncodeBit(b int8) byte {
	if b > 0 {
		return 1
	}
	return 0
}

// DecodeBit maps a wire byte back to a ±1 report bit, rejecting anything
// but the two legal encodings.
func DecodeBit(b byte) (int8, error) {
	switch b {
	case 0:
		return -1, nil
	case 1:
		return 1, nil
	default:
		return 0, fmt.Errorf("freqoracle: invalid bit byte %d", b)
	}
}

// AppendDirectReport appends the 5-byte DirectReport payload to dst.
func AppendDirectReport(dst []byte, rep DirectReport) []byte {
	dst = binary.BigEndian.AppendUint32(dst, rep.Col)
	return append(dst, EncodeBit(rep.Bit))
}

// DecodeDirectReport parses a 5-byte DirectReport payload.
func DecodeDirectReport(p []byte) (DirectReport, error) {
	if len(p) != DirectReportPayloadBytes {
		return DirectReport{}, fmt.Errorf("freqoracle: direct payload length %d, want %d", len(p), DirectReportPayloadBytes)
	}
	bit, err := DecodeBit(p[4])
	if err != nil {
		return DirectReport{}, err
	}
	return DirectReport{Col: binary.BigEndian.Uint32(p), Bit: bit}, nil
}

// AppendHashtogramReport appends the 7-byte HashtogramReport payload to dst.
func AppendHashtogramReport(dst []byte, rep HashtogramReport) ([]byte, error) {
	if rep.Row < 0 || rep.Row > 0xffff {
		return nil, fmt.Errorf("freqoracle: report row %d does not fit the frame", rep.Row)
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(rep.Row))
	dst = binary.BigEndian.AppendUint32(dst, rep.Col)
	return append(dst, EncodeBit(rep.Bit)), nil
}

// DecodeHashtogramReport parses a 7-byte HashtogramReport payload.
func DecodeHashtogramReport(p []byte) (HashtogramReport, error) {
	if len(p) != HashtogramReportPayloadBytes {
		return HashtogramReport{}, fmt.Errorf("freqoracle: hashtogram payload length %d, want %d", len(p), HashtogramReportPayloadBytes)
	}
	bit, err := DecodeBit(p[6])
	if err != nil {
		return HashtogramReport{}, err
	}
	return HashtogramReport{
		Row: int(binary.BigEndian.Uint16(p)),
		Col: binary.BigEndian.Uint32(p[2:]),
		Bit: bit,
	}, nil
}

const (
	hashtogramWireVersion = 1
	directWireVersion     = 1
)

func init() {
	proto.Register(proto.Codec{
		ID:           proto.IDHashtogram,
		Name:         "hashtogram",
		Version:      hashtogramWireVersion,
		PayloadBytes: HashtogramReportPayloadBytes,
		Validate: func(p []byte) error {
			_, err := DecodeHashtogramReport(p)
			return err
		},
	})
	proto.Register(proto.Codec{
		ID:           proto.IDDirectHistogram,
		Name:         "directhistogram",
		Version:      directWireVersion,
		PayloadBytes: DirectReportPayloadBytes,
		Validate: func(p []byte) error {
			_, err := DecodeDirectReport(p)
			return err
		},
	})
}

// OrdinalBytes encodes a domain ordinal as a canonical big-endian item of
// the given width (the inverse of OrdinalOf).
func OrdinalBytes(x uint64, width int) []byte {
	b := make([]byte, width)
	for i := width - 1; i >= 0; i-- {
		b[i] = byte(x)
		x >>= 8
	}
	return b
}

// OrdinalOf decodes a width-checked item into its domain ordinal, rejecting
// values outside [0, domain).
func OrdinalOf(x []byte, itemBytes, domain int) (uint64, error) {
	if len(x) != itemBytes {
		return 0, fmt.Errorf("freqoracle: item length %d, want %d", len(x), itemBytes)
	}
	var v uint64
	for _, b := range x {
		v = v<<8 | uint64(b)
	}
	if v >= uint64(domain) {
		return 0, fmt.Errorf("freqoracle: item ordinal %d outside domain %d", v, domain)
	}
	return v, nil
}

// HashtogramWire adapts the Theorem 3.7 oracle to the unified
// proto.Reporter/Aggregator surface. A frequency oracle answers point
// queries, not open-ended identification, so Identify estimates an explicit
// candidate set fixed at construction (the "known dictionary" deployment —
// e.g. a URL allowlist) and returns those reaching minCount. The adapter
// serializes access with its own mutex: the underlying oracle is not safe
// for concurrent use.
type HashtogramWire struct {
	mu         sync.Mutex
	h          *Hashtogram
	candidates [][]byte
	minCount   float64
}

// NewHashtogramWire constructs the adapter around a fresh oracle.
// candidates is the Identify query set (may be nil for ingest-only use, in
// which case Identify fails); minCount drops estimates below the floor.
func NewHashtogramWire(params HashtogramParams, candidates [][]byte, minCount float64) (*HashtogramWire, error) {
	h, err := NewHashtogram(params)
	if err != nil {
		return nil, err
	}
	return &HashtogramWire{h: h, candidates: candidates, minCount: minCount}, nil
}

// Oracle exposes the wrapped Hashtogram (for post-Identify point queries).
func (w *HashtogramWire) Oracle() *Hashtogram { return w.h }

// ProtocolID returns proto.IDHashtogram.
func (w *HashtogramWire) ProtocolID() byte { return proto.IDHashtogram }

// Report computes user userIdx's wire report for item x.
func (w *HashtogramWire) Report(x []byte, userIdx int, rng *rand.Rand) (proto.WireReport, error) {
	rep := w.h.Report(x, userIdx, rng)
	dst := proto.AppendHeader(make([]byte, 0, 2+HashtogramReportPayloadBytes), proto.IDHashtogram, hashtogramWireVersion)
	dst, err := AppendHashtogramReport(dst, rep)
	if err != nil {
		return nil, err
	}
	return proto.WireReport(dst), nil
}

func (w *HashtogramWire) decode(wr proto.WireReport) (HashtogramReport, error) {
	if err := proto.CheckHeader(wr, proto.IDHashtogram); err != nil {
		return HashtogramReport{}, err
	}
	return DecodeHashtogramReport(wr.Payload())
}

// Absorb folds one wire report into the oracle.
func (w *HashtogramWire) Absorb(wr proto.WireReport) error {
	rep, err := w.decode(wr)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.h.Absorb(rep)
}

// AbsorbBatch folds a batch under one lock acquisition. Decoding and
// validation run before the lock — concurrent connections only serialize
// on the counter updates — and the valid prefix is absorbed with the
// first error returned.
func (w *HashtogramWire) AbsorbBatch(wrs []proto.WireReport) error {
	reps := make([]HashtogramReport, 0, len(wrs))
	var decodeErr error
	for _, wr := range wrs {
		rep, err := w.decode(wr)
		if err != nil {
			decodeErr = err
			break
		}
		reps = append(reps, rep)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, rep := range reps {
		if err := w.h.Absorb(rep); err != nil {
			return err
		}
	}
	return decodeErr
}

// Identify finalizes the oracle and estimates the candidate set.
func (w *HashtogramWire) Identify(ctx context.Context) ([]proto.Estimate, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(w.candidates) == 0 {
		return nil, fmt.Errorf("freqoracle: Hashtogram Identify needs a candidate set (a frequency oracle cannot enumerate an open domain)")
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.h.Finalize()
	out := make([]proto.Estimate, 0, len(w.candidates))
	for _, c := range w.candidates {
		if est := w.h.Estimate(c); est >= w.minCount {
			out = append(out, proto.Estimate{Item: append([]byte(nil), c...), Count: est})
		}
	}
	sortEstimatesDesc(out)
	return out, nil
}

// TotalReports returns the number of absorbed reports.
func (w *HashtogramWire) TotalReports() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.h.TotalReports()
}

// SketchBytes returns resident server memory.
func (w *HashtogramWire) SketchBytes() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.h.SketchBytes()
}

// BytesPerReport returns the payload size of one user message.
func (w *HashtogramWire) BytesPerReport() int { return HashtogramReportPayloadBytes }

// MinRecoverableFrequency reports the oracle's per-query error envelope at
// β = 0.05 — the smallest count reliably distinguishable from zero.
func (w *HashtogramWire) MinRecoverableFrequency() float64 { return w.h.ErrorBound(0.05) }

// Fingerprint states the parameter digest snapshots and checkpoints are
// pinned to (proto.Fingerprinted). Candidates and minCount are excluded on
// purpose: they shape Identify's query set, never the accumulated state.
func (w *HashtogramWire) Fingerprint() uint64 { return w.h.Fingerprint() }

// Snapshot serializes the oracle's accumulated state (proto.Mergeable).
func (w *HashtogramWire) Snapshot() ([]byte, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.h.Snapshot()
}

// Restore rehydrates a checkpoint (proto.Mergeable).
func (w *HashtogramWire) Restore(buf []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.h.Restore(buf)
}

// MergeSnapshot folds a sibling aggregator's snapshot into this one by
// rehydrating it into a fresh shard and merging (proto.Mergeable).
func (w *HashtogramWire) MergeSnapshot(buf []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	acc := w.h.NewAccumulator()
	if err := acc.Restore(buf); err != nil {
		return err
	}
	return w.h.Merge(acc)
}

// DirectHistogramWire adapts the Theorem 3.8 oracle to the unified surface
// over items that are width-itemBytes encodings of ordinals [0, domain).
// Identify scans the whole reconstructed histogram — O(domain) — which is
// exactly the enumerable-domain regime this oracle is for.
//
// The adapter is also the shared implementation behind every codec whose
// payload is a bare DirectReport: core.SmallDomainWire is this adapter
// under the smalldomain protocol identity (NewDirectHistogramWireAs).
type DirectHistogramWire struct {
	mu        sync.Mutex
	d         *DirectHistogram
	id        byte
	version   byte
	itemBytes int
	minCount  float64
	n         int // sizing hint for the error envelope
}

// NewDirectHistogramWire constructs the adapter around a fresh oracle.
func NewDirectHistogramWire(eps float64, itemBytes, domain int, n int, minCount float64) (*DirectHistogramWire, error) {
	return NewDirectHistogramWireAs(proto.IDDirectHistogram, directWireVersion, eps, itemBytes, domain, n, minCount)
}

// NewDirectHistogramWireAs constructs the adapter under a different
// registered codec identity whose payload layout is a bare DirectReport
// (the smalldomain codec). The identity must be registered before any
// report flows.
func NewDirectHistogramWireAs(id, version byte, eps float64, itemBytes, domain, n int, minCount float64) (*DirectHistogramWire, error) {
	if itemBytes < 1 || itemBytes > 8 {
		return nil, fmt.Errorf("freqoracle: DirectHistogramWire supports ItemBytes in [1,8], got %d", itemBytes)
	}
	if itemBytes < 8 && uint64(domain) > uint64(1)<<(8*itemBytes) {
		return nil, fmt.Errorf("freqoracle: domain %d exceeds the item width", domain)
	}
	d, err := NewDirectHistogram(eps, domain)
	if err != nil {
		return nil, err
	}
	return &DirectHistogramWire{d: d, id: id, version: version, itemBytes: itemBytes, minCount: minCount, n: n}, nil
}

// Oracle exposes the wrapped DirectHistogram.
func (w *DirectHistogramWire) Oracle() *DirectHistogram { return w.d }

// ProtocolID returns the configured codec identity
// (proto.IDDirectHistogram unless constructed with
// NewDirectHistogramWireAs).
func (w *DirectHistogramWire) ProtocolID() byte { return w.id }

// Report computes the user's wire report for item x (userIdx is unused:
// the oracle has no user partition).
func (w *DirectHistogramWire) Report(x []byte, _ int, rng *rand.Rand) (proto.WireReport, error) {
	v, err := OrdinalOf(x, w.itemBytes, w.d.Domain())
	if err != nil {
		return nil, err
	}
	rep, err := w.d.Report(v, rng)
	if err != nil {
		return nil, err
	}
	dst := proto.AppendHeader(make([]byte, 0, 2+DirectReportPayloadBytes), w.id, w.version)
	return proto.WireReport(AppendDirectReport(dst, rep)), nil
}

func (w *DirectHistogramWire) decode(wr proto.WireReport) (DirectReport, error) {
	if err := proto.CheckHeader(wr, w.id); err != nil {
		return DirectReport{}, err
	}
	return DecodeDirectReport(wr.Payload())
}

// Absorb folds one wire report into the oracle.
func (w *DirectHistogramWire) Absorb(wr proto.WireReport) error {
	rep, err := w.decode(wr)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.d.Absorb(rep)
}

// AbsorbBatch folds a batch under one lock acquisition, decoding and
// validating before the lock; the valid prefix is absorbed and the first
// error returned.
func (w *DirectHistogramWire) AbsorbBatch(wrs []proto.WireReport) error {
	reps := make([]DirectReport, 0, len(wrs))
	var decodeErr error
	for _, wr := range wrs {
		rep, err := w.decode(wr)
		if err != nil {
			decodeErr = err
			break
		}
		reps = append(reps, rep)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, rep := range reps {
		if err := w.d.Absorb(rep); err != nil {
			return err
		}
	}
	return decodeErr
}

// Identify reconstructs the histogram and returns every ordinal whose
// estimate reaches minCount, sorted by decreasing estimate.
func (w *DirectHistogramWire) Identify(ctx context.Context) ([]proto.Estimate, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.d.Finalize()
	hist := w.d.HistogramView()
	var out []proto.Estimate
	for v, est := range hist {
		if est >= w.minCount {
			out = append(out, proto.Estimate{Item: OrdinalBytes(uint64(v), w.itemBytes), Count: est})
		}
	}
	sortEstimatesDesc(out)
	return out, nil
}

// TotalReports returns the number of absorbed reports.
func (w *DirectHistogramWire) TotalReports() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.d.TotalReports()
}

// SketchBytes returns resident server memory.
func (w *DirectHistogramWire) SketchBytes() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.d.SketchBytes()
}

// BytesPerReport returns the payload size of one user message.
func (w *DirectHistogramWire) BytesPerReport() int { return DirectReportPayloadBytes }

// MinRecoverableFrequency reports the per-query error envelope at β = 0.05.
func (w *DirectHistogramWire) MinRecoverableFrequency() float64 {
	n := w.n
	if n < 1 {
		n = w.d.TotalReports()
	}
	if n < 1 {
		n = 1
	}
	return w.d.ErrorBound(n, 0.05)
}

// Fingerprint states the parameter digest snapshots and checkpoints are
// pinned to (proto.Fingerprinted). The wire identity (codec ID) and item
// width are mixed in so a checkpoint written under the smalldomain identity
// never restores into a directhistogram server, even though the underlying
// LDSK state would be byte-compatible.
func (w *DirectHistogramWire) Fingerprint() uint64 {
	return fingerprint("ldphh/freqoracle.DirectHistogramWire/v1",
		uint64(w.id), uint64(w.itemBytes), w.d.Fingerprint())
}

// Snapshot serializes the oracle's accumulated state (proto.Mergeable).
func (w *DirectHistogramWire) Snapshot() ([]byte, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.d.Snapshot()
}

// Restore rehydrates a checkpoint (proto.Mergeable).
func (w *DirectHistogramWire) Restore(buf []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.d.Restore(buf)
}

// MergeSnapshot folds a sibling's snapshot in via a fresh shard
// (proto.Mergeable).
func (w *DirectHistogramWire) MergeSnapshot(buf []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	acc := w.d.NewAccumulator()
	if err := acc.Restore(buf); err != nil {
		return err
	}
	return w.d.Merge(acc)
}

// sortEstimatesDesc sorts by decreasing count, ties by ascending item bytes
// — the strict total order every Identify in the repository returns.
func sortEstimatesDesc(est []proto.Estimate) {
	sort.Slice(est, func(i, j int) bool {
		if est[i].Count != est[j].Count {
			return est[i].Count > est[j].Count
		}
		return string(est[i].Item) < string(est[j].Item)
	})
}
