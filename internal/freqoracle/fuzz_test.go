package freqoracle

import (
	"bytes"
	"testing"
)

// FuzzRestoreSnapshot: arbitrary bytes must never panic either oracle's
// Restore — truncated, oversize, NaN/Inf-payload and shape-mismatched
// inputs are rejected with errors — and any snapshot an oracle accepts must
// re-serialize to the identical bytes (the formats are canonical: every
// field is pinned by the oracle's shape, so accepted state round-trips bit
// for bit). Restore is atomic, which is what makes reusing one oracle
// across fuzz iterations sound: an accepted input replaces the whole state,
// a rejected one touches nothing.
func FuzzRestoreSnapshot(f *testing.F) {
	params := HashtogramParams{Eps: 1, N: 100, Rows: 2, T: 4, Seed: 1}
	h, err := NewHashtogram(params)
	if err != nil {
		f.Fatal(err)
	}
	d, err := NewDirectHistogram(1, 3)
	if err != nil {
		f.Fatal(err)
	}
	// Live seeds on top of the checked-in corpus: real snapshots of both
	// oracles, plus a bit-flip sweep over a valid one so the fuzzer starts
	// at every header boundary.
	hsnap, err := h.Snapshot()
	if err != nil {
		f.Fatal(err)
	}
	dsnap, err := d.Snapshot()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(hsnap)
	f.Add(dsnap)
	f.Add(hsnap[:len(hsnap)-1])
	f.Add(append(append([]byte(nil), dsnap...), 0))
	for i := 0; i < len(hsnap); i += 7 {
		mut := append([]byte(nil), hsnap...)
		mut[i] ^= 0x80
		f.Add(mut)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if err := h.Restore(data); err == nil {
			out, err := h.Snapshot()
			if err != nil {
				t.Fatalf("accepted hashtogram snapshot failed to re-serialize: %v", err)
			}
			if !bytes.Equal(out, data) {
				t.Fatalf("hashtogram snapshot not canonical: %x -> %x", data, out)
			}
		}
		if err := d.Restore(data); err == nil {
			out, err := d.Snapshot()
			if err != nil {
				t.Fatalf("accepted direct snapshot failed to re-serialize: %v", err)
			}
			if !bytes.Equal(out, data) {
				t.Fatalf("direct snapshot not canonical: %x -> %x", data, out)
			}
		}
	})
}
