package freqoracle

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Snapshot serializes the Hashtogram's accumulated (non-finalized) state so
// an aggregation server can checkpoint mid-collection and resume after a
// restart. The public randomness is NOT serialized — it is reproducible
// from Params().Seed — so a snapshot is only loadable into a sketch built
// from identical parameters. Format (big endian):
//
//	magic "LHSK" | version u8 | rows u32 | t u32 | rowCounts []u64 | acc []f64
func (h *Hashtogram) Snapshot() ([]byte, error) {
	if h.finalized {
		return nil, fmt.Errorf("freqoracle: Snapshot after Finalize")
	}
	size := 4 + 1 + 4 + 4 + 8*h.p.Rows + 8*h.p.Rows*h.p.T
	buf := make([]byte, 0, size)
	buf = append(buf, 'L', 'H', 'S', 'K', 1)
	buf = binary.BigEndian.AppendUint32(buf, uint32(h.p.Rows))
	buf = binary.BigEndian.AppendUint32(buf, uint32(h.p.T))
	for _, c := range h.rowCounts {
		buf = binary.BigEndian.AppendUint64(buf, uint64(c))
	}
	for r := 0; r < h.p.Rows; r++ {
		for _, v := range h.acc[r] {
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	return buf, nil
}

// Restore loads a snapshot produced by a sketch with identical parameters,
// replacing this sketch's accumulated state.
func (h *Hashtogram) Restore(buf []byte) error {
	if h.finalized {
		return fmt.Errorf("freqoracle: Restore after Finalize")
	}
	want := 4 + 1 + 4 + 4 + 8*h.p.Rows + 8*h.p.Rows*h.p.T
	if len(buf) != want {
		return fmt.Errorf("freqoracle: snapshot length %d, want %d", len(buf), want)
	}
	if string(buf[:4]) != "LHSK" {
		return fmt.Errorf("freqoracle: bad snapshot magic")
	}
	if buf[4] != 1 {
		return fmt.Errorf("freqoracle: unsupported snapshot version %d", buf[4])
	}
	rows := int(binary.BigEndian.Uint32(buf[5:]))
	t := int(binary.BigEndian.Uint32(buf[9:]))
	if rows != h.p.Rows || t != h.p.T {
		return fmt.Errorf("freqoracle: snapshot shape (%d,%d) does not match sketch (%d,%d)",
			rows, t, h.p.Rows, h.p.T)
	}
	off := 13
	for r := 0; r < rows; r++ {
		h.rowCounts[r] = int(binary.BigEndian.Uint64(buf[off:]))
		off += 8
	}
	for r := 0; r < rows; r++ {
		for j := 0; j < t; j++ {
			h.acc[r][j] = math.Float64frombits(binary.BigEndian.Uint64(buf[off:]))
			off += 8
		}
	}
	return nil
}
