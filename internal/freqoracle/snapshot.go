package freqoracle

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
)

// The oracles serialize their accumulated (non-finalized) state into small
// versioned binary snapshots so an aggregation server can checkpoint
// mid-collection, resume after a restart, or ship its state to a parent
// aggregator that folds it in with Merge. The public randomness is NOT
// serialized — it is reproducible from the construction parameters — so a
// snapshot is only loadable into an oracle built from identical parameters;
// Restore validates the embedded shape against the receiver and rejects
// mismatches.
//
// Restore is atomic: it fully validates the snapshot (magic, version,
// shape, counter ranges, float finiteness) before touching any state, so a
// failed Restore leaves the oracle exactly as it was.
//
// Hashtogram format "LHSK" version 1 (big endian), pinned by
// TestSnapshotGoldenBytes:
//
//	magic "LHSK" | version u8 | rows u32 | t u32 | rowCounts []u64 | acc []f64
//
// DirectHistogram format "LDSK" version 1 (big endian), pinned by
// TestDirectSnapshotGoldenBytes:
//
//	magic "LDSK" | version u8 | domain u32 | t u32 | epsBits u64 | n u64 | acc []f64

// fingerprint digests a labeled word sequence with FNV-1a — the shared
// helper behind the oracle parameter fingerprints, labeled per type so the
// two oracles can never collide with each other (or with core's LPSK
// fingerprint).
func fingerprint(label string, words ...uint64) uint64 {
	f := fnv.New64a()
	f.Write([]byte(label))
	var buf [8]byte
	for _, w := range words {
		binary.BigEndian.PutUint64(buf[:], w)
		f.Write(buf[:])
	}
	return f.Sum64()
}

// Fingerprint returns a 64-bit digest of every parameter that determines
// the Hashtogram's accumulated-state shape and public randomness: ε, the
// sketch geometry and the seed. Two sketches with equal fingerprints absorb
// interchangeable reports and produce mutually loadable snapshots; the
// checkpoint layer stamps it into checkpoint file headers.
func (h *Hashtogram) Fingerprint() uint64 {
	return fingerprint("ldphh/freqoracle.Hashtogram/v1",
		math.Float64bits(h.p.Eps), uint64(h.p.Rows), uint64(h.p.T), h.p.Seed)
}

// Fingerprint returns a 64-bit digest of every parameter that determines
// the DirectHistogram's accumulated-state shape and randomizer: ε, the
// domain and the derived Hadamard width. The histogram draws no seeded
// public randomness, so the parameters alone pin snapshot compatibility.
func (d *DirectHistogram) Fingerprint() uint64 {
	return fingerprint("ldphh/freqoracle.DirectHistogram/v1",
		math.Float64bits(d.eps), uint64(d.domain), uint64(d.t))
}

// Snapshot serializes the Hashtogram's accumulated state (format above).
func (h *Hashtogram) Snapshot() ([]byte, error) {
	if h.finalized {
		return nil, fmt.Errorf("freqoracle: Snapshot after Finalize")
	}
	size := 4 + 1 + 4 + 4 + 8*h.p.Rows + 8*h.p.Rows*h.p.T
	buf := make([]byte, 0, size)
	buf = append(buf, 'L', 'H', 'S', 'K', 1)
	buf = binary.BigEndian.AppendUint32(buf, uint32(h.p.Rows))
	buf = binary.BigEndian.AppendUint32(buf, uint32(h.p.T))
	for _, c := range h.rowCounts {
		buf = binary.BigEndian.AppendUint64(buf, uint64(c))
	}
	// The wire format keeps float64-bits cells: the int64 tallies are exact
	// integers far below 2^53, so the conversion is lossless and the encoded
	// bytes are identical to the historical float64 accumulator's.
	for _, v := range h.acc {
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(float64(v)))
	}
	return buf, nil
}

// maxSnapshotTally bounds every deserialized counter: report tallies and
// accumulator cells are integer-valued with magnitude at most the absorbed
// report count, and anything beyond 2^53 could not even have been
// accumulated exactly — so larger (or non-integral) values can only come
// from corruption and are rejected before conversion, with no reliance on
// signed wraparound.
const maxSnapshotTally = uint64(1) << 53

// Restore loads a snapshot produced by a sketch with identical parameters,
// replacing this sketch's accumulated state. On error the state is
// unchanged.
func (h *Hashtogram) Restore(buf []byte) error {
	if h.finalized {
		return fmt.Errorf("freqoracle: Restore after Finalize")
	}
	want := 4 + 1 + 4 + 4 + 8*h.p.Rows + 8*h.p.Rows*h.p.T
	if len(buf) != want {
		return fmt.Errorf("freqoracle: snapshot length %d, want %d", len(buf), want)
	}
	if string(buf[:4]) != "LHSK" {
		return fmt.Errorf("freqoracle: bad snapshot magic")
	}
	if buf[4] != 1 {
		return fmt.Errorf("freqoracle: unsupported snapshot version %d", buf[4])
	}
	rows := int(binary.BigEndian.Uint32(buf[5:]))
	t := int(binary.BigEndian.Uint32(buf[9:]))
	if rows != h.p.Rows || t != h.p.T {
		return fmt.Errorf("freqoracle: snapshot shape (%d,%d) does not match sketch (%d,%d)",
			rows, t, h.p.Rows, h.p.T)
	}
	// Validation pass: every counter must be a plausible accumulator value
	// before anything is committed. Row counts are report tallies, so each —
	// and their sum, which becomes the total — is checked against the
	// explicit maxSnapshotTally bound on the raw uint64 before any int
	// conversion; accumulator cells are sums of ±1 reports, so anything
	// non-finite, non-integral or beyond the bound can only be corruption.
	off := 13
	var sum uint64
	for r := 0; r < rows; r++ {
		c := binary.BigEndian.Uint64(buf[off:])
		if c > maxSnapshotTally {
			return fmt.Errorf("freqoracle: snapshot row %d count %d exceeds report-tally bound %d", r, c, maxSnapshotTally)
		}
		sum += c
		if sum > maxSnapshotTally {
			return fmt.Errorf("freqoracle: snapshot total report count exceeds bound %d", maxSnapshotTally)
		}
		off += 8
	}
	for i := 0; i < rows*t; i++ {
		v := math.Float64frombits(binary.BigEndian.Uint64(buf[off:]))
		if err := validTally(v); err != nil {
			return err
		}
		off += 8
	}
	// Commit pass.
	off = 13
	h.total = int(sum)
	for r := 0; r < rows; r++ {
		h.rowCounts[r] = int(binary.BigEndian.Uint64(buf[off:]))
		off += 8
	}
	for j := range h.acc {
		h.acc[j] = int64(math.Float64frombits(binary.BigEndian.Uint64(buf[off:])))
		off += 8
	}
	return nil
}

// validTally accepts exactly the float64 values an accumulator cell can
// hold: finite, integral, magnitude at most maxSnapshotTally. Every
// accepted value converts to int64 and back to the identical float64 bits,
// which is what keeps the canonical round-trip property intact across the
// int64 accumulator layout.
func validTally(v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("freqoracle: snapshot accumulator value %v is not finite", v)
	}
	if v != math.Trunc(v) || v > float64(maxSnapshotTally) || v < -float64(maxSnapshotTally) {
		return fmt.Errorf("freqoracle: snapshot accumulator value %v is not an integral report tally", v)
	}
	if v == 0 && math.Signbit(v) {
		// ±1 sums can never produce -0.0, and it would re-encode as +0.0,
		// breaking the canonical round-trip property.
		return fmt.Errorf("freqoracle: snapshot accumulator value -0 is not canonical")
	}
	return nil
}

// Snapshot serializes the DirectHistogram's accumulated state (format
// above). The privacy parameter is embedded as raw float64 bits so a
// snapshot cannot be restored into an oracle with a different ε — the
// accumulated counters are only meaningful under the randomizer that
// produced them.
func (d *DirectHistogram) Snapshot() ([]byte, error) {
	if d.finalized {
		return nil, fmt.Errorf("freqoracle: Snapshot after Finalize")
	}
	size := 4 + 1 + 4 + 4 + 8 + 8 + 8*d.t
	buf := make([]byte, 0, size)
	buf = append(buf, 'L', 'D', 'S', 'K', 1)
	buf = binary.BigEndian.AppendUint32(buf, uint32(d.domain))
	buf = binary.BigEndian.AppendUint32(buf, uint32(d.t))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(d.eps))
	buf = binary.BigEndian.AppendUint64(buf, uint64(d.n))
	for _, v := range d.acc {
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(float64(v)))
	}
	return buf, nil
}

// Restore loads a snapshot produced by an oracle with identical parameters,
// replacing this oracle's accumulated state. On error the state is
// unchanged.
func (d *DirectHistogram) Restore(buf []byte) error {
	if d.finalized {
		return fmt.Errorf("freqoracle: Restore after Finalize")
	}
	want := 4 + 1 + 4 + 4 + 8 + 8 + 8*d.t
	if len(buf) != want {
		return fmt.Errorf("freqoracle: snapshot length %d, want %d", len(buf), want)
	}
	if string(buf[:4]) != "LDSK" {
		return fmt.Errorf("freqoracle: bad snapshot magic")
	}
	if buf[4] != 1 {
		return fmt.Errorf("freqoracle: unsupported snapshot version %d", buf[4])
	}
	domain := int(binary.BigEndian.Uint32(buf[5:]))
	t := int(binary.BigEndian.Uint32(buf[9:]))
	if domain != d.domain || t != d.t {
		return fmt.Errorf("freqoracle: snapshot shape (%d,%d) does not match histogram (%d,%d)",
			domain, t, d.domain, d.t)
	}
	if epsBits := binary.BigEndian.Uint64(buf[13:]); epsBits != math.Float64bits(d.eps) {
		return fmt.Errorf("freqoracle: snapshot eps %v does not match histogram eps %v",
			math.Float64frombits(epsBits), d.eps)
	}
	n := binary.BigEndian.Uint64(buf[21:])
	if n > maxSnapshotTally {
		return fmt.Errorf("freqoracle: snapshot report count %d exceeds report-tally bound %d", n, maxSnapshotTally)
	}
	off := 29
	for j := 0; j < t; j++ {
		v := math.Float64frombits(binary.BigEndian.Uint64(buf[off:]))
		if err := validTally(v); err != nil {
			return err
		}
		off += 8
	}
	// Commit pass.
	d.n = int(n)
	off = 29
	for j := 0; j < t; j++ {
		d.acc[j] = int64(math.Float64frombits(binary.BigEndian.Uint64(buf[off:])))
		off += 8
	}
	return nil
}
