package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// RoundState is the server-driven broadcast of an interactive (multi-round)
// protocol: which round is open, how wide the candidate prefixes are, and
// the candidate set itself. Devices install it with Interactive.SetRoundState
// (or read it over the wire via the Round command) before computing their
// round report; the server advances it with Interactive.AdvanceRound once
// the round's group has reported.
//
// The candidate list is canonical: sorted ascending by bytes, strictly
// increasing (no duplicates), every entry exactly prefixBits wide with any
// trailing bits of the last byte zeroed. Canonical form is what makes the
// round transition deterministic regardless of ingest order or worker count.
type RoundState struct {
	Round        int      // zero-based index of the open round
	Rounds       int      // total round count g (users are partitioned into g groups)
	PrefixBits   int      // width of every candidate prefix this round, in bits
	Done         bool     // true once the final round committed; Identify is now answerable
	GroupReports int      // reports absorbed into the open round so far
	Candidates   [][]byte // canonical candidate prefix set of the open round
}

// roundStateVersion versions the RoundState wire encoding.
const roundStateVersion byte = 1

// maxRoundCandidates bounds a decoded candidate count so a corrupt or
// malicious length prefix cannot drive allocation. It comfortably exceeds
// any real fan-out (engine candidate sets are capped far lower).
const maxRoundCandidates = 1 << 22

// EncodeRoundState serializes a RoundState into its versioned wire form:
//
//	u8 version | u32 round | u32 rounds | u32 prefixBits | u8 done |
//	u64 groupReports | u32 candCount | candCount × (u16 len | bytes)
//
// All integers big-endian.
func EncodeRoundState(rs RoundState) []byte {
	n := 1 + 4 + 4 + 4 + 1 + 8 + 4
	for _, c := range rs.Candidates {
		n += 2 + len(c)
	}
	buf := make([]byte, 0, n)
	buf = append(buf, roundStateVersion)
	buf = binary.BigEndian.AppendUint32(buf, uint32(rs.Round))
	buf = binary.BigEndian.AppendUint32(buf, uint32(rs.Rounds))
	buf = binary.BigEndian.AppendUint32(buf, uint32(rs.PrefixBits))
	done := byte(0)
	if rs.Done {
		done = 1
	}
	buf = append(buf, done)
	buf = binary.BigEndian.AppendUint64(buf, uint64(rs.GroupReports))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(rs.Candidates)))
	for _, c := range rs.Candidates {
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(c)))
		buf = append(buf, c...)
	}
	return buf
}

// DecodeRoundState parses a RoundState encoded by EncodeRoundState,
// validating structure before returning (length prefixes consistent, no
// trailing garbage, candidate count bounded). It does not check candidate
// canonicality — that is the engine's job on install.
func DecodeRoundState(b []byte) (RoundState, error) {
	var rs RoundState
	const fixed = 1 + 4 + 4 + 4 + 1 + 8 + 4
	if len(b) < fixed {
		return rs, fmt.Errorf("proto: round state truncated: %d bytes", len(b))
	}
	if b[0] != roundStateVersion {
		return rs, fmt.Errorf("proto: round state version %d, want %d", b[0], roundStateVersion)
	}
	rs.Round = int(binary.BigEndian.Uint32(b[1:]))
	rs.Rounds = int(binary.BigEndian.Uint32(b[5:]))
	rs.PrefixBits = int(binary.BigEndian.Uint32(b[9:]))
	switch b[13] {
	case 0:
	case 1:
		rs.Done = true
	default:
		return rs, fmt.Errorf("proto: round state done byte %d", b[13])
	}
	rs.GroupReports = int(binary.BigEndian.Uint64(b[14:]))
	if rs.GroupReports < 0 {
		return rs, errors.New("proto: round state group-report count overflows int")
	}
	count := binary.BigEndian.Uint32(b[22:])
	if count > maxRoundCandidates {
		return rs, fmt.Errorf("proto: round state claims %d candidates (max %d)", count, maxRoundCandidates)
	}
	off := fixed
	if count > 0 {
		rs.Candidates = make([][]byte, 0, count)
	}
	for i := uint32(0); i < count; i++ {
		if len(b)-off < 2 {
			return RoundState{}, fmt.Errorf("proto: round state candidate %d length truncated", i)
		}
		l := int(binary.BigEndian.Uint16(b[off:]))
		off += 2
		if len(b)-off < l {
			return RoundState{}, fmt.Errorf("proto: round state candidate %d truncated: want %d bytes, have %d", i, l, len(b)-off)
		}
		c := make([]byte, l)
		copy(c, b[off:off+l])
		rs.Candidates = append(rs.Candidates, c)
		off += l
	}
	if off != len(b) {
		return RoundState{}, fmt.Errorf("proto: round state has %d trailing bytes", len(b)-off)
	}
	return rs, nil
}

// Interactive is the optional aggregator capability behind multi-round
// (interactive) protocols: the server broadcasts the open round's candidate
// set, each round's user group reports against it, and AdvanceRound
// finalizes the round's frequency oracle and extends the surviving prefixes
// into the next round's candidates — validate-then-commit, so a failed
// transition leaves the open round untouched.
//
// Devices use SetRoundState to install a server broadcast before reporting
// (a device and the server agree on the candidate set exactly, or the
// device's column indices would be meaningless). Detect the capability with
// AsInteractive.
type Interactive interface {
	// RoundState returns the currently open round's broadcast state.
	RoundState() RoundState
	// SetRoundState installs a server-broadcast round state, validating
	// round bounds and candidate canonicality first. Installing a Done
	// state is rejected — a finished protocol has nothing to report into.
	SetRoundState(RoundState) error
	// AdvanceRound finalizes the open round and opens the next one (or
	// marks the protocol Done after the final round), returning the new
	// state. Validate-then-commit: on error the open round is unchanged.
	AdvanceRound() (RoundState, error)
}

// AsInteractive reports whether the aggregator runs a multi-round
// interactive protocol, returning the capability view when it does. The
// generic server uses this to answer the Round/AdvanceRound commands (and
// to surface round position in /metrics) only for interactive protocols.
func AsInteractive(a Aggregator) (Interactive, bool) {
	i, ok := a.(Interactive)
	return i, ok
}
