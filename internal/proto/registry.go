package proto

import (
	"fmt"
	"sort"
	"sync"
)

// Codec describes one protocol's wire encoding: the registry entry behind a
// protocol ID byte. Every codec in this repository is fixed-size — a
// protocol's report payload is the same length for every user — which is
// what lets the TCP server stream reports with no per-frame length prefix.
type Codec struct {
	// ID is the registry key and the first byte of every report.
	ID byte
	// Name is the stable lowercase handle used by command-line flags and
	// ldphh.ParseKind ("pes", "bitstogram", ...).
	Name string
	// Version is the codec version stamped into byte 1 of every report.
	// Bump it when the payload layout changes; decoders reject other
	// versions.
	Version byte
	// PayloadBytes is the fixed payload length. The full wire frame is
	// FrameBytes = 2 + PayloadBytes.
	PayloadBytes int
	// Validate checks that a payload of the right length decodes into a
	// structurally valid report (field ranges, bit bytes). It must never
	// panic on arbitrary bytes.
	Validate func(payload []byte) error
}

// FrameBytes returns the full on-the-wire frame length of one report:
// the 2-byte [ID][version] header plus the fixed payload.
func (c Codec) FrameBytes() int { return headerBytes + c.PayloadBytes }

var (
	regMu  sync.RWMutex
	byID   = make(map[byte]Codec)
	byName = make(map[string]Codec)
)

// Register installs a codec in the registry. Protocol packages call it from
// init; it panics on a malformed codec or an ID/name collision, which is a
// programming error, not a runtime condition.
func Register(c Codec) {
	if c.ID == IDWildcard {
		panic("proto: cannot register the wildcard ID")
	}
	if c.Name == "" || c.PayloadBytes <= 0 || c.Validate == nil {
		panic(fmt.Sprintf("proto: malformed codec registration %+v", c))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if prev, dup := byID[c.ID]; dup {
		panic(fmt.Sprintf("proto: codec ID %#02x already registered as %q", c.ID, prev.Name))
	}
	if _, dup := byName[c.Name]; dup {
		panic(fmt.Sprintf("proto: codec name %q already registered", c.Name))
	}
	byID[c.ID] = c
	byName[c.Name] = c
}

// Lookup returns the codec registered under the protocol ID.
func Lookup(id byte) (Codec, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	c, ok := byID[id]
	return c, ok
}

// LookupName returns the codec registered under the stable name.
func LookupName(name string) (Codec, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	c, ok := byName[name]
	return c, ok
}

// Codecs returns every registered codec, sorted by ID.
func Codecs() []Codec {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Codec, 0, len(byID))
	for _, c := range byID {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// DecodeWireReport validates arbitrary bytes as a wire report: known
// protocol ID, matching codec version, exact frame length and a payload the
// protocol's validator accepts. It rejects anything else with an error and
// never panics (FuzzDecodeWireReport enforces this); on success the
// returned WireReport aliases buf.
func DecodeWireReport(buf []byte) (WireReport, error) {
	if len(buf) < headerBytes {
		return nil, fmt.Errorf("proto: report of %d bytes is shorter than the %d-byte header", len(buf), headerBytes)
	}
	c, ok := Lookup(buf[0])
	if !ok {
		return nil, fmt.Errorf("proto: unknown protocol ID %#02x", buf[0])
	}
	if buf[1] != c.Version {
		return nil, fmt.Errorf("proto: %s report version %d, want %d", c.Name, buf[1], c.Version)
	}
	if len(buf) != c.FrameBytes() {
		return nil, fmt.Errorf("proto: %s report length %d, want %d", c.Name, len(buf), c.FrameBytes())
	}
	if err := c.Validate(buf[headerBytes:]); err != nil {
		return nil, err
	}
	return WireReport(buf), nil
}

// CheckHeader verifies that a wire report belongs to the protocol with the
// given registered ID and version and has the codec's exact frame length —
// the shared first half of every adapter's Absorb.
func CheckHeader(w WireReport, id byte) error {
	c, ok := Lookup(id)
	if !ok {
		return fmt.Errorf("proto: protocol ID %#02x is not registered", id)
	}
	if len(w) != c.FrameBytes() {
		return fmt.Errorf("proto: %s report length %d, want %d", c.Name, len(w), c.FrameBytes())
	}
	if w[0] != id {
		if other, ok := Lookup(w[0]); ok {
			return fmt.Errorf("proto: %s report sent to a %s aggregator", other.Name, c.Name)
		}
		return fmt.Errorf("proto: report protocol ID %#02x, want %#02x (%s)", w[0], id, c.Name)
	}
	if w[1] != c.Version {
		return fmt.Errorf("proto: %s report version %d, want %d", c.Name, w[1], c.Version)
	}
	return nil
}
