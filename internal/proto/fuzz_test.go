package proto

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// FuzzDecodeWireReport: arbitrary bytes must never panic the registry-level
// decoder, and anything it accepts must satisfy the wire-report invariants
// (registered ID, matching codec version, exact frame length) and return
// the input bytes unchanged.
func FuzzDecodeWireReport(f *testing.F) {
	registerTestCodec()
	f.Add([]byte{})
	f.Add([]byte{testID})
	f.Add([]byte(NewWireReport(testID, testVersion, make([]byte, testPayload))))
	f.Add([]byte(NewWireReport(testID, testVersion, []byte{0xff, 0, 0, 0})))
	f.Add(bytes.Repeat([]byte{0xff}, 16))
	f.Fuzz(func(t *testing.T, data []byte) {
		wr, err := DecodeWireReport(data)
		if err != nil {
			return // rejected input; not panicking is the invariant
		}
		if !bytes.Equal(wr, data) {
			t.Fatalf("accepted report %x differs from input %x", wr, data)
		}
		c, ok := Lookup(wr.ProtocolID())
		if !ok {
			t.Fatalf("accepted report with unregistered ID %#02x", wr.ProtocolID())
		}
		if wr.Version() != c.Version {
			t.Fatalf("accepted report version %d, codec version %d", wr.Version(), c.Version)
		}
		if len(wr) != c.FrameBytes() {
			t.Fatalf("accepted report length %d, codec frame %d", len(wr), c.FrameBytes())
		}
	})
}

// wireCorpusDir holds the checked-in seed corpus for FuzzDecodeWireReport.
// The Go fuzzer picks these up automatically with -fuzz, and
// TestDecodeWireReportCorpus replays them in every plain `go test` run so
// promoted regressions stay covered without the fuzzer.
const wireCorpusDir = "testdata/fuzz/FuzzDecodeWireReport"

// readCorpusEntry parses one file in Go's `go test fuzz v1` corpus format.
func readCorpusEntry(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	if len(lines) != 2 || lines[0] != "go test fuzz v1" {
		return nil, fmt.Errorf("corpus file %s: want version header plus one value line, got %d lines", path, len(lines))
	}
	lit := lines[1]
	const prefix, suffix = `[]byte(`, `)`
	if !strings.HasPrefix(lit, prefix) || !strings.HasSuffix(lit, suffix) {
		return nil, fmt.Errorf("corpus file %s: value %q is not a []byte literal", path, lit)
	}
	s, err := strconv.Unquote(lit[len(prefix) : len(lit)-len(suffix)])
	if err != nil {
		return nil, fmt.Errorf("corpus file %s: %w", path, err)
	}
	return []byte(s), nil
}

// TestDecodeWireReportCorpus replays the seed corpus through the same
// invariant the fuzz target enforces, and pins the accept/reject verdict
// encoded in each entry's name (accept-* entries must decode, reject-*
// entries must not).
func TestDecodeWireReportCorpus(t *testing.T) {
	registerTestCodec()
	entries, err := os.ReadDir(wireCorpusDir)
	if err != nil {
		t.Fatalf("reading seed corpus: %v", err)
	}
	if len(entries) == 0 {
		t.Fatal("seed corpus is empty")
	}
	for _, entry := range entries {
		if entry.IsDir() {
			continue
		}
		name := entry.Name()
		data, err := readCorpusEntry(filepath.Join(wireCorpusDir, name))
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			wr, err := DecodeWireReport(data)
			switch {
			case strings.HasPrefix(name, "accept-"):
				if err != nil {
					t.Fatalf("expected accept, got %v", err)
				}
				if !bytes.Equal(wr, data) {
					t.Fatalf("accepted report differs from input")
				}
			case strings.HasPrefix(name, "reject-"):
				if err == nil {
					t.Fatal("expected reject, decoded successfully")
				}
			default:
				t.Fatalf("corpus entry %q must be named accept-* or reject-*", name)
			}
		})
	}
}
