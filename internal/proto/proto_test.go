package proto

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// The proto package sits below every protocol package, so its own test
// binary sees no real codecs — register one synthetic codec and exercise
// the registry machinery against it.
const (
	testID      byte = 0x7e
	testVersion byte = 3
	testPayload      = 4
)

var registerTestCodecOnce sync.Once

// registerTestCodec installs the synthetic codec exactly once per test
// binary (Register panics on duplicates by design). Payload rule: byte 0
// must not be 0xff.
func registerTestCodec() {
	registerTestCodecOnce.Do(func() {
		Register(Codec{
			ID:           testID,
			Name:         "testcodec",
			Version:      testVersion,
			PayloadBytes: testPayload,
			Validate: func(p []byte) error {
				if p[0] == 0xff {
					return errBadPayload
				}
				return nil
			},
		})
	})
}

var errBadPayload = &payloadError{}

type payloadError struct{}

func (*payloadError) Error() string { return "testcodec: bad payload" }

func TestRegistryLookup(t *testing.T) {
	registerTestCodec()
	c, ok := Lookup(testID)
	if !ok {
		t.Fatal("registered codec not found by ID")
	}
	if c.Name != "testcodec" || c.FrameBytes() != 2+testPayload {
		t.Fatalf("lookup returned %+v", c)
	}
	if _, ok := Lookup(0x6f); ok {
		t.Error("unregistered ID found")
	}
	byName, ok := LookupName("testcodec")
	if !ok || byName.ID != testID {
		t.Fatalf("LookupName = %+v, %v", byName, ok)
	}
	found := false
	for _, c := range Codecs() {
		if c.ID == testID {
			found = true
		}
	}
	if !found {
		t.Error("Codecs() omits the registered codec")
	}
}

func TestRegisterRejectsCollisionsAndWildcard(t *testing.T) {
	registerTestCodec()
	mustPanic := func(name string, c Codec) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		Register(c)
	}
	valid := func(p []byte) error { return nil }
	mustPanic("duplicate ID", Codec{ID: testID, Name: "other", Version: 1, PayloadBytes: 1, Validate: valid})
	mustPanic("duplicate name", Codec{ID: 0x6d, Name: "testcodec", Version: 1, PayloadBytes: 1, Validate: valid})
	mustPanic("wildcard ID", Codec{ID: IDWildcard, Name: "wild", Version: 1, PayloadBytes: 1, Validate: valid})
	mustPanic("nil validate", Codec{ID: 0x6c, Name: "novalidate", Version: 1, PayloadBytes: 1})
}

func TestWireReportAccessors(t *testing.T) {
	wr := NewWireReport(testID, testVersion, []byte{1, 2, 3, 4})
	if wr.ProtocolID() != testID || wr.Version() != testVersion {
		t.Fatalf("header accessors: %#02x v%d", wr.ProtocolID(), wr.Version())
	}
	if !bytes.Equal(wr.Payload(), []byte{1, 2, 3, 4}) {
		t.Fatalf("payload = %x", wr.Payload())
	}
	// NewWireReport copies: mutating the source must not change the report.
	src := []byte{9, 9}
	wr2 := NewWireReport(1, 1, src)
	src[0] = 0
	if wr2.Payload()[0] != 9 {
		t.Error("NewWireReport aliased the payload")
	}
	// Degenerate reports answer zero values, never panic.
	var empty WireReport
	if empty.ProtocolID() != IDWildcard || empty.Version() != 0 || empty.Payload() != nil {
		t.Error("empty report accessors not zero-valued")
	}
}

func TestDecodeWireReport(t *testing.T) {
	registerTestCodec()
	good := NewWireReport(testID, testVersion, []byte{0, 1, 2, 3})
	wr, err := DecodeWireReport(good)
	if err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}
	if !bytes.Equal(wr, good) {
		t.Fatal("DecodeWireReport changed the bytes")
	}
	reject := func(name string, buf []byte, wantSub string) {
		t.Helper()
		if _, err := DecodeWireReport(buf); err == nil {
			t.Errorf("%s accepted", name)
		} else if wantSub != "" && !strings.Contains(err.Error(), wantSub) {
			t.Errorf("%s: error %q missing %q", name, err, wantSub)
		}
	}
	reject("empty", nil, "shorter")
	reject("header only", []byte{testID, testVersion}, "length")
	reject("unknown ID", NewWireReport(0x6b, 1, []byte{0, 0, 0, 0}), "unknown protocol ID")
	reject("wrong version", NewWireReport(testID, testVersion+1, []byte{0, 0, 0, 0}), "version")
	reject("short payload", NewWireReport(testID, testVersion, []byte{0}), "length")
	reject("long payload", NewWireReport(testID, testVersion, []byte{0, 0, 0, 0, 0}), "length")
	reject("invalid payload", NewWireReport(testID, testVersion, []byte{0xff, 0, 0, 0}), "bad payload")
}

func TestCheckHeader(t *testing.T) {
	registerTestCodec()
	good := NewWireReport(testID, testVersion, []byte{0, 1, 2, 3})
	if err := CheckHeader(good, testID); err != nil {
		t.Fatalf("valid header rejected: %v", err)
	}
	if err := CheckHeader(good, 0x6a); err == nil {
		t.Error("unregistered expected ID accepted")
	}
	if err := CheckHeader(good[:3], testID); err == nil {
		t.Error("wrong length accepted")
	}
	other := NewWireReport(0x22, testVersion, []byte{0, 1, 2, 3})
	if err := CheckHeader(other, testID); err == nil {
		t.Error("foreign protocol ID accepted")
	}
	stale := NewWireReport(testID, testVersion+1, []byte{0, 1, 2, 3})
	if err := CheckHeader(stale, testID); err == nil {
		t.Error("stale codec version accepted")
	}
}
