// Package proto defines the unified protocol abstraction every heavy-hitters
// protocol in this repository plugs into: a device-side Reporter that turns
// one user's item into a self-describing wire-codable report, a server-side
// Aggregator that absorbs wire reports and identifies the heavy hitters, and
// an optional Mergeable capability for aggregators whose accumulated state
// snapshots and merges (the fan-in tree deployments).
//
// The paper's Table 1 is a cross-protocol comparison — PrivateExpanderSketch
// against Bitstogram/TreeHist (Bassily–Nissim–Stemmer–Thakurta, NIPS 2017)
// and a Bassily–Smith (STOC 2015) succinct histogram — and this package is
// what makes that comparison operational: every protocol speaks the same
// aggregation surface, so one generic TCP server, one benchmark harness and
// one merge tree drive them all. See DESIGN.md §2 for the layer diagram.
//
// proto sits at the bottom of the dependency tree: it imports none of the
// protocol packages. Each protocol package (internal/core, internal/baseline,
// internal/freqoracle) registers its wire codec with Register in an init
// function and exposes an adapter type satisfying the interfaces.
package proto

import (
	"context"
	"math/rand/v2"
)

// Protocol IDs. Each registered wire codec owns exactly one; the byte is the
// first byte of every WireReport and the negotiation byte that opens every
// TCP connection. IDs are append-only: never reuse a retired value.
const (
	// IDWildcard is not a protocol: clients send it in the connection
	// preamble for control commands (identify, snapshot) that work against
	// any server protocol.
	IDWildcard byte = 0x00

	IDPrivateExpanderSketch byte = 0x01 // Algorithm 1, Theorem 3.13
	IDSmallDomain           byte = 0x02 // enumerable-domain variant (after Theorem 3.13)
	IDHashtogram            byte = 0x03 // frequency oracle, Theorem 3.7
	IDDirectHistogram       byte = 0x04 // frequency oracle, Theorem 3.8
	IDBitstogram            byte = 0x05 // Bassily et al. NIPS 2017 [3]
	IDTreeHist              byte = 0x06 // prefix-tree protocol of [3]
	IDBassilySmith          byte = 0x07 // Bassily–Smith STOC 2015 style [4]
	IDStreamHG              byte = 0x08 // streaming HeavyGuardian top-k (continuous query)
	IDPEM                   byte = 0x09 // multi-round prefix extension (Wang et al., arXiv 1708.06674)
	IDFedTrie               byte = 0x0A // federated trie discovery (Zhu et al., arXiv 1902.08534)
)

// Estimate is one identified item with its estimated multiplicity. It is the
// single estimate type every protocol in the repository returns
// (core.Estimate, baseline.Estimate and ldphh.Estimate are aliases).
type Estimate struct {
	Item  []byte
	Count float64
}

// WireReport is one user's single ε-LDP message in self-describing framed
// form:
//
//	offset 0: protocol ID (the codec registry key)
//	offset 1: codec version
//	offset 2: protocol-specific payload, Codec.PayloadBytes long
//
// The two header bytes make any report stream self-identifying — an
// aggregator can reject a report from the wrong protocol or a future codec
// version before touching the payload — while BytesPerReport (the Table 1
// communication metric) keeps counting only the payload, exactly as every
// protocol's paper framing does.
type WireReport []byte

// headerBytes is the [protocol ID][codec version] prefix of every report.
const headerBytes = 2

// ProtocolID returns the protocol ID byte (0 for a report too short to
// carry one — never a registered ID).
func (w WireReport) ProtocolID() byte {
	if len(w) < 1 {
		return IDWildcard
	}
	return w[0]
}

// Version returns the codec version byte (0 for a truncated report).
func (w WireReport) Version() byte {
	if len(w) < headerBytes {
		return 0
	}
	return w[1]
}

// Payload returns the protocol-specific payload bytes.
func (w WireReport) Payload() []byte {
	if len(w) < headerBytes {
		return nil
	}
	return w[headerBytes:]
}

// NewWireReport assembles a report from its parts, copying the payload.
func NewWireReport(id, version byte, payload []byte) WireReport {
	w := make(WireReport, 0, headerBytes+len(payload))
	w = append(w, id, version)
	return append(w, payload...)
}

// AppendHeader appends the [id][version] report header to dst; codec
// implementations build reports as AppendHeader followed by payload appends.
func AppendHeader(dst []byte, id, version byte) []byte {
	return append(dst, id, version)
}

// Reporter is the device side of a protocol: one call per user turning the
// user's item into the single message it sends. Implementations are
// deterministic in their construction parameters (a device and a server
// built from the same parameters agree on all public randomness) and safe
// for concurrent use with per-goroutine rngs — Report never mutates shared
// state.
type Reporter interface {
	Report(item []byte, userIdx int, rng *rand.Rand) (WireReport, error)
}

// Aggregator is the server side of a protocol: it absorbs wire reports in
// any order and identifies the heavy hitters once the round closes.
// Implementations must be safe for concurrent use — the generic TCP server
// absorbs from many connections at once.
type Aggregator interface {
	// ProtocolID returns the wire codec this aggregator speaks; Absorb
	// rejects reports carrying any other ID.
	ProtocolID() byte
	// Absorb validates and folds one report into the accumulated state.
	Absorb(WireReport) error
	// AbsorbBatch folds a batch under one lock acquisition where the
	// implementation supports it. Every report up to the first invalid one
	// is absorbed; the first error is returned.
	AbsorbBatch([]WireReport) error
	// Identify runs the server-side reconstruction and returns estimates
	// sorted by decreasing count (ties by ascending item bytes). The
	// context bounds long reconstructions; implementations honor
	// cancellation at least on entry, super-linear ones periodically.
	Identify(ctx context.Context) ([]Estimate, error)
	// TotalReports returns the number of reports absorbed so far.
	TotalReports() int
	// SketchBytes returns resident server memory (Table 1 metric).
	SketchBytes() int
	// BytesPerReport returns the payload size of one user message (Table 1
	// communication metric; excludes the 2-byte wire header).
	BytesPerReport() int
}

// Protocol is a full protocol instance: both halves in one value. The
// concrete adapters (core.PESWire, baseline.BitstogramWire, ...) all satisfy
// it, so ldphh.New can hand back one object usable on either side.
type Protocol interface {
	Reporter
	Aggregator
}

// Mergeable is the optional aggregator capability behind snapshot/merge
// fan-in trees: serialize accumulated (pre-Identify) state, rehydrate a
// checkpoint, or fold a sibling's snapshot into a running aggregator.
// Snapshots are versioned and parameter-fingerprinted by each
// implementation; a blob only loads into an aggregator built from matching
// parameters. Detect the capability with AsMergeable.
type Mergeable interface {
	Snapshot() ([]byte, error)
	Restore([]byte) error
	MergeSnapshot([]byte) error
}

// AsMergeable reports whether the aggregator supports snapshot/merge
// fan-in, returning the capability view when it does. The generic server
// uses this to answer snapshot commands only for protocols that can.
func AsMergeable(a Aggregator) (Mergeable, bool) {
	m, ok := a.(Mergeable)
	return m, ok
}

// Calibrated is the optional capability of protocols that can state their
// recovery floor: the smallest multiplicity the configuration reliably
// identifies (or, for pure frequency oracles, the per-query error envelope).
// Benchmarks use it to score recall against ground truth.
type Calibrated interface {
	MinRecoverableFrequency() float64
}

// Fingerprinted is the optional aggregator capability of stating a 64-bit
// digest of every parameter that shapes its accumulated state and public
// randomness. Two aggregators with equal fingerprints absorb
// interchangeable reports and produce mutually loadable snapshots. The
// durable-checkpoint layer stamps the fingerprint into every checkpoint
// file header so a restart under different parameters is rejected at the
// file level, before any snapshot bytes are parsed.
type Fingerprinted interface {
	Fingerprint() uint64
}

// AsFingerprinted reports whether the aggregator can state a parameter
// fingerprint, returning the capability view when it does.
func AsFingerprinted(a Aggregator) (Fingerprinted, bool) {
	f, ok := a.(Fingerprinted)
	return f, ok
}

// StreamStats describes a continuous-query aggregator's position in its
// stream: the zero-based window the next report lands in, the configured
// per-user budget split (each report is randomized at ε/Windows), and the
// bounded-memory structure's churn. Batch aggregators have no stats.
type StreamStats struct {
	Window     int   // zero-based index of the current ingest window
	Windows    int   // configured budget split w (per-report budget is ε/w)
	WindowSize int   // reports per window (the window clock)
	TopK       int   // configured top-k answer size
	Warmup     bool  // still in the structure-filling warmup phase
	Evictions  int64 // cells evicted by decay so far
}

// ContinuousQuerier is the optional aggregator capability behind the
// QueryTopK server command: answer "what is hot right now" over the live
// structure without retiring the round the way Identify does. k <= 0 asks
// for the aggregator's configured top-k size. Detect it with
// AsContinuousQuerier.
type ContinuousQuerier interface {
	QueryTopK(ctx context.Context, k int) ([]Estimate, error)
	StreamStats() StreamStats
}

// AsContinuousQuerier reports whether the aggregator answers continuous
// top-k queries, returning the capability view when it does. The generic
// server uses this to serve the QueryTopK command (and to surface stream
// position in /metrics) only for streaming protocols.
func AsContinuousQuerier(a Aggregator) (ContinuousQuerier, bool) {
	c, ok := a.(ContinuousQuerier)
	return c, ok
}
