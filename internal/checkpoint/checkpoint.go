// Package checkpoint persists aggregator snapshots durably on disk so a
// crashed aggregation server can restart without losing its round.
//
// A Manager owns one directory of checkpoint files. Save writes the blob to
// a temporary file in the same directory, fsyncs it, atomically renames it
// into place and fsyncs the directory, so a crash at any instant leaves
// either the previous set of complete checkpoints or the previous set plus
// one complete new checkpoint — never a half-written file under a live
// name. LoadNewest walks the directory newest-first and returns the first
// checkpoint that passes integrity verification, falling back past torn or
// truncated files (a crash mid-rename, a disk that lied about a sync), so
// one bad tail never makes the whole history unreadable.
//
// File format "LCKF" version 1 (big endian), one checkpoint per file:
//
//	magic "LCKF" | version u8 | seq u64 | unix-nanos u64 | fingerprint u64 |
//	payload len u64 | payload | FNV-1a-64 over all preceding bytes
//
// The trailing checksum is what detects torn writes: truncation chops it
// off, corruption fails it. The fingerprint field carries the aggregator's
// parameter fingerprint when the aggregator can state one
// (proto.Fingerprinted); a Manager opened with an expected fingerprint
// rejects a mismatching checkpoint as ErrFingerprintMismatch — a distinct,
// non-recoverable failure (the operator restarted the server with different
// parameters), deliberately not subject to the torn-file fallback.
//
// The payload itself is an opaque snapshot blob (LPSK/LHSK/LDSK — see
// DESIGN.md §6); its own embedded fingerprints are revalidated again by the
// aggregator's Restore, so the file-level check is an early, cheaper
// rejection, not the only line of defense.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

const (
	magic   = "LCKF"
	version = 1
	// header is magic + version + seq + nanos + fingerprint + payload len.
	headerBytes = 4 + 1 + 8 + 8 + 8 + 8
	// trailerBytes is the FNV-1a-64 checksum.
	trailerBytes = 8
	// prefix/suffix of a live checkpoint file: ckpt-%016x.lckf.
	filePrefix = "ckpt-"
	fileSuffix = ".lckf"
	// tmpPrefix marks in-progress writes; stale ones are removed at Open.
	tmpPrefix = ".tmp-ckpt-"
)

// ErrNoCheckpoint is returned by LoadNewest when the directory holds no
// intact checkpoint (none ever written, or every file failed verification).
var ErrNoCheckpoint = errors.New("checkpoint: no valid checkpoint on disk")

// ErrFingerprintMismatch marks a checkpoint that is structurally intact but
// was written by an aggregator with different parameters. It is fatal on
// purpose: silently falling back to an older file would resurrect a stale
// round under the wrong configuration.
var ErrFingerprintMismatch = errors.New("checkpoint: fingerprint mismatch")

// Info describes one on-disk checkpoint.
type Info struct {
	Seq         uint64    // monotone sequence number (per directory)
	Time        time.Time // wall-clock instant Save stamped
	Fingerprint uint64    // aggregator parameter fingerprint (0 if unstated)
	Bytes       int       // payload length
	Path        string    // file path
}

// Manager owns one checkpoint directory. Methods are safe for concurrent
// use; Save serializes internally so two checkpoint triggers cannot
// interleave their sequence numbers or prunes.
type Manager struct {
	dir    string
	retain int
	fp     uint64 // expected fingerprint; 0 disables the file-level check

	mu  sync.Mutex
	seq uint64 // highest sequence number seen or written
}

// Option configures Open.
type Option func(*Manager)

// WithRetain keeps the newest n checkpoints on disk (default 3, minimum 2 —
// the newest file plus the fallback the torn-file recovery path needs).
func WithRetain(n int) Option { return func(m *Manager) { m.retain = n } }

// WithFingerprint pins the aggregator parameter fingerprint: Save stamps it
// into every file and LoadNewest rejects files stamped with a different
// non-zero value as ErrFingerprintMismatch.
func WithFingerprint(fp uint64) Option { return func(m *Manager) { m.fp = fp } }

// Open prepares dir as a checkpoint directory: creates it if needed,
// removes stale temporary files from interrupted writes, and resumes the
// sequence numbering after the newest file already present.
func Open(dir string, opts ...Option) (*Manager, error) {
	m := &Manager{dir: dir, retain: 3}
	for _, opt := range opts {
		opt(m)
	}
	if m.retain < 2 {
		m.retain = 2
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, tmpPrefix) {
			os.Remove(filepath.Join(dir, name)) //nolint:errcheck // best-effort cleanup
			continue
		}
		if seq, ok := seqOf(name); ok && seq > m.seq {
			m.seq = seq
		}
	}
	return m, nil
}

// Dir returns the managed directory.
func (m *Manager) Dir() string { return m.dir }

// seqOf parses the sequence number out of a live checkpoint file name.
func seqOf(name string) (uint64, bool) {
	if !strings.HasPrefix(name, filePrefix) || !strings.HasSuffix(name, fileSuffix) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, filePrefix), fileSuffix)
	seq, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// Save durably persists one snapshot payload as the next checkpoint:
// write-temp, fsync, atomic rename, directory fsync, then prune files
// beyond the retention horizon. It returns the new checkpoint's Info.
func (m *Manager) Save(payload []byte) (Info, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	seq := m.seq + 1
	now := time.Now()

	buf := make([]byte, 0, headerBytes+len(payload)+trailerBytes)
	buf = append(buf, magic...)
	buf = append(buf, version)
	buf = binary.BigEndian.AppendUint64(buf, seq)
	buf = binary.BigEndian.AppendUint64(buf, uint64(now.UnixNano()))
	buf = binary.BigEndian.AppendUint64(buf, m.fp)
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	h := fnv.New64a()
	h.Write(buf)
	buf = h.Sum(buf)

	tmp, err := os.CreateTemp(m.dir, tmpPrefix)
	if err != nil {
		return Info{}, fmt.Errorf("checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(buf); err == nil {
		err = tmp.Sync()
	} else {
		tmp.Sync() //nolint:errcheck // surface the write error below
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmpName) //nolint:errcheck // best-effort cleanup
		return Info{}, fmt.Errorf("checkpoint: writing %s: %w", tmpName, err)
	}
	final := filepath.Join(m.dir, fmt.Sprintf("%s%016x%s", filePrefix, seq, fileSuffix))
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName) //nolint:errcheck // best-effort cleanup
		return Info{}, fmt.Errorf("checkpoint: %w", err)
	}
	// The rename is only durable once the directory entry is. A failed
	// directory sync is reported, but the data file itself is complete, so
	// the checkpoint still counts locally.
	syncErr := syncDir(m.dir)
	m.seq = seq
	m.pruneLocked()
	info := Info{Seq: seq, Time: now, Fingerprint: m.fp, Bytes: len(payload), Path: final}
	if syncErr != nil {
		return info, fmt.Errorf("checkpoint: syncing directory: %w", syncErr)
	}
	return info, nil
}

// syncDir fsyncs a directory so a completed rename survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// pruneLocked removes live checkpoint files beyond the retention horizon,
// oldest first. Failures are ignored: an unremovable old file costs disk,
// not correctness.
func (m *Manager) pruneLocked() {
	seqs := m.liveSeqs()
	for len(seqs) > m.retain {
		os.Remove(filepath.Join(m.dir, fmt.Sprintf("%s%016x%s", filePrefix, seqs[0], fileSuffix))) //nolint:errcheck
		seqs = seqs[1:]
	}
}

// liveSeqs returns the sequence numbers of the live checkpoint files in
// ascending order.
func (m *Manager) liveSeqs() []uint64 {
	entries, err := os.ReadDir(m.dir)
	if err != nil {
		return nil
	}
	var seqs []uint64
	for _, e := range entries {
		if seq, ok := seqOf(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs
}

// LoadNewest returns the payload and Info of the newest checkpoint that
// passes integrity verification, skipping torn, truncated or corrupted
// files in favor of older intact ones. It returns ErrNoCheckpoint when no
// file survives, and ErrFingerprintMismatch (fatal, no fallback) when an
// intact checkpoint was written under different aggregator parameters.
func (m *Manager) LoadNewest() ([]byte, Info, error) {
	seqs := m.liveSeqs()
	for i := len(seqs) - 1; i >= 0; i-- {
		path := filepath.Join(m.dir, fmt.Sprintf("%s%016x%s", filePrefix, seqs[i], fileSuffix))
		payload, info, err := readFile(path)
		if err != nil {
			if errors.Is(err, ErrFingerprintMismatch) {
				return nil, Info{}, err
			}
			continue // torn/corrupt: fall back to the previous checkpoint
		}
		if m.fp != 0 && info.Fingerprint != 0 && info.Fingerprint != m.fp {
			return nil, Info{}, fmt.Errorf("%w: checkpoint %s has %016x, aggregator has %016x",
				ErrFingerprintMismatch, filepath.Base(path), info.Fingerprint, m.fp)
		}
		return payload, info, nil
	}
	return nil, Info{}, ErrNoCheckpoint
}

// readFile verifies one checkpoint file end to end and returns its payload.
func readFile(path string) ([]byte, Info, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, Info{}, err
	}
	if len(buf) < headerBytes+trailerBytes {
		return nil, Info{}, fmt.Errorf("checkpoint: %s truncated at %d bytes", path, len(buf))
	}
	if string(buf[:4]) != magic {
		return nil, Info{}, fmt.Errorf("checkpoint: %s has bad magic", path)
	}
	if buf[4] != version {
		return nil, Info{}, fmt.Errorf("checkpoint: %s has unsupported version %d", path, buf[4])
	}
	seq := binary.BigEndian.Uint64(buf[5:])
	nanos := binary.BigEndian.Uint64(buf[13:])
	fp := binary.BigEndian.Uint64(buf[21:])
	plen := binary.BigEndian.Uint64(buf[29:])
	if plen != uint64(len(buf)-headerBytes-trailerBytes) {
		return nil, Info{}, fmt.Errorf("checkpoint: %s declares %d payload bytes, holds %d",
			path, plen, len(buf)-headerBytes-trailerBytes)
	}
	body := buf[:len(buf)-trailerBytes]
	h := fnv.New64a()
	h.Write(body)
	if got, want := binary.BigEndian.Uint64(buf[len(buf)-trailerBytes:]), h.Sum64(); got != want {
		return nil, Info{}, fmt.Errorf("checkpoint: %s checksum %016x, want %016x (torn write?)", path, got, want)
	}
	return body[headerBytes:], Info{
		Seq:         seq,
		Time:        time.Unix(0, int64(nanos)),
		Fingerprint: fp,
		Bytes:       int(plen),
		Path:        path,
	}, nil
}
