package checkpoint

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSaveLoadRoundtrip(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, WithFingerprint(0xdeadbeef))
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("accumulated sketch state")
	info, err := m.Save(payload)
	if err != nil {
		t.Fatal(err)
	}
	if info.Seq != 1 {
		t.Fatalf("first checkpoint seq = %d, want 1", info.Seq)
	}
	if info.Fingerprint != 0xdeadbeef {
		t.Fatalf("info fingerprint = %#x, want 0xdeadbeef", info.Fingerprint)
	}
	got, gi, err := m.LoadNewest()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: got %q", got)
	}
	if gi.Seq != 1 || gi.Bytes != len(payload) {
		t.Fatalf("info = %+v", gi)
	}
	if gi.Time.IsZero() {
		t.Fatal("info.Time is zero")
	}
}

func TestLoadNewestPicksNewest(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := m.Save([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got, info, err := m.LoadNewest()
	if err != nil {
		t.Fatal(err)
	}
	if info.Seq != 3 || !bytes.Equal(got, []byte{2}) {
		t.Fatalf("loaded seq %d payload %v, want seq 3 payload [2]", info.Seq, got)
	}
}

func TestNoCheckpoint(t *testing.T) {
	m, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.LoadNewest(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty dir LoadNewest error = %v, want ErrNoCheckpoint", err)
	}
}

func TestSequenceResumesAcrossOpens(t *testing.T) {
	dir := t.TempDir()
	m1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m1.Save([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := m1.Save([]byte("b")); err != nil {
		t.Fatal(err)
	}
	m2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	info, err := m2.Save([]byte("c"))
	if err != nil {
		t.Fatal(err)
	}
	if info.Seq != 3 {
		t.Fatalf("post-reopen save seq = %d, want 3 (numbering must resume, not restart)", info.Seq)
	}
}

func TestRetentionPrunesOldest(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, WithRetain(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := m.Save([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	seqs := m.liveSeqs()
	if len(seqs) != 2 || seqs[0] != 4 || seqs[1] != 5 {
		t.Fatalf("live seqs after retention = %v, want [4 5]", seqs)
	}
}

func TestRetainMinimumIsTwo(t *testing.T) {
	m, err := Open(t.TempDir(), WithRetain(1))
	if err != nil {
		t.Fatal(err)
	}
	if m.retain != 2 {
		t.Fatalf("retain clamped to %d, want 2 (torn-file fallback needs a second file)", m.retain)
	}
}

// TestTornFileFallsBack is the crash-mid-write story: the newest file is
// truncated (as if power died during the write or the rename raced a
// crash) and LoadNewest must recover the previous intact checkpoint
// instead of failing or returning garbage.
func TestTornFileFallsBack(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Save([]byte("good old state")); err != nil {
		t.Fatal(err)
	}
	info2, err := m.Save([]byte("doomed new state"))
	if err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func([]byte) []byte{
		"truncated": func(b []byte) []byte { return b[:len(b)/2] },
		"bitflip":   func(b []byte) []byte { b[len(b)-3] ^= 0x40; return b },
		"shorter than header": func(b []byte) []byte { return b[:7] },
		"bad magic":           func(b []byte) []byte { b[0] = 'X'; return b },
	} {
		t.Run(name, func(t *testing.T) {
			orig, err := os.ReadFile(info2.Path)
			if err != nil {
				t.Fatal(err)
			}
			defer os.WriteFile(info2.Path, orig, 0o644) //nolint:errcheck // restore for the next subtest
			buf := append([]byte(nil), orig...)
			if err := os.WriteFile(info2.Path, mutate(buf), 0o644); err != nil {
				t.Fatal(err)
			}
			got, info, err := m.LoadNewest()
			if err != nil {
				t.Fatalf("LoadNewest with corrupt newest: %v", err)
			}
			if info.Seq != 1 || string(got) != "good old state" {
				t.Fatalf("recovered seq %d payload %q, want the seq-1 fallback", info.Seq, got)
			}
		})
	}
}

// TestFingerprintMismatchIsFatal pins the policy that a parameter mismatch
// does NOT fall back to an older file: the operator restarted the server
// under different parameters and must be told, not silently handed a
// stale round.
func TestFingerprintMismatchIsFatal(t *testing.T) {
	dir := t.TempDir()
	m1, err := Open(dir, WithFingerprint(0x1111))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m1.Save([]byte("round state")); err != nil {
		t.Fatal(err)
	}
	m2, err := Open(dir, WithFingerprint(0x2222))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m2.LoadNewest(); !errors.Is(err, ErrFingerprintMismatch) {
		t.Fatalf("mismatched manager LoadNewest error = %v, want ErrFingerprintMismatch", err)
	}
}

func TestUnfingerprintedManagerAcceptsAnyStamp(t *testing.T) {
	dir := t.TempDir()
	m1, err := Open(dir, WithFingerprint(0x1111))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m1.Save([]byte("x")); err != nil {
		t.Fatal(err)
	}
	m2, err := Open(dir) // no expected fingerprint => file-level check off
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m2.LoadNewest(); err != nil {
		t.Fatalf("unpinned LoadNewest: %v", err)
	}
}

func TestOpenCleansStaleTemporaries(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, tmpPrefix+"123456")
	if err := os.WriteFile(stale, []byte("half a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stale temp file survived Open: %v", err)
	}
}

func TestForeignFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ckpt-zzzz.lckf"), []byte("bad seq"), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.seq != 0 {
		t.Fatalf("foreign files influenced seq = %d", m.seq)
	}
	if _, _, err := m.LoadNewest(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("LoadNewest over foreign files = %v, want ErrNoCheckpoint", err)
	}
}

func TestEmptyPayloadRoundtrips(t *testing.T) {
	m, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Save(nil); err != nil {
		t.Fatal(err)
	}
	got, info, err := m.LoadNewest()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 || info.Bytes != 0 {
		t.Fatalf("empty payload came back as %v (%d bytes)", got, info.Bytes)
	}
}

func TestFileNameFormat(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	info, err := m.Save([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Base(info.Path)
	if !strings.HasPrefix(base, filePrefix) || !strings.HasSuffix(base, fileSuffix) {
		t.Fatalf("checkpoint file name %q does not match %s*%s", base, filePrefix, fileSuffix)
	}
	if seq, ok := seqOf(base); !ok || seq != 1 {
		t.Fatalf("seqOf(%q) = %d, %v", base, seq, ok)
	}
}
