// Package field implements arithmetic in the prime field GF(p) for the
// Mersenne prime p = 2^61 - 1.
//
// Every hash family in this repository (pairwise independent, k-wise
// independent, and byte-string fingerprints) evaluates polynomials over this
// field. The Mersenne structure lets us reduce a 122-bit product with two
// shifts and an add, so Mul is branch-light and fast enough to sit on the
// per-user hot path of the protocols.
package field

import "math/bits"

// P is the field modulus, the Mersenne prime 2^61 - 1.
const P uint64 = (1 << 61) - 1

// Elem is a field element. Valid values are in [0, P). The arithmetic
// functions accept any canonical element and return canonical elements.
type Elem = uint64

// Reduce maps an arbitrary uint64 into [0, P).
func Reduce(x uint64) Elem {
	// x = hi*2^61 + lo with hi < 8; 2^61 ≡ 1 (mod P).
	x = (x >> 61) + (x & P)
	if x >= P {
		x -= P
	}
	return x
}

// Add returns a+b mod P. Inputs must be canonical.
func Add(a, b Elem) Elem {
	s := a + b // < 2^62, no overflow
	if s >= P {
		s -= P
	}
	return s
}

// Sub returns a-b mod P. Inputs must be canonical.
func Sub(a, b Elem) Elem {
	if a >= b {
		return a - b
	}
	return a + P - b
}

// Neg returns -a mod P.
func Neg(a Elem) Elem {
	if a == 0 {
		return 0
	}
	return P - a
}

// Mul returns a*b mod P using the Mersenne reduction
// hi*2^64 + lo = hi*2^3*2^61 + lo ≡ hi*8 + lo (mod 2^61-1).
func Mul(a, b Elem) Elem {
	hi, lo := bits.Mul64(a, b)
	// lo = l1*2^61 + l0, product ≡ hi*8 + l1 + l0 (mod P).
	// hi < 2^58 so hi*8 < 2^61; the sum fits in 63 bits.
	s := (hi << 3) | (lo >> 61)
	t := lo & P
	return Add(Reduce(s), t)
}

// Pow returns a^e mod P by square-and-multiply.
func Pow(a Elem, e uint64) Elem {
	r := Elem(1)
	base := a
	for e > 0 {
		if e&1 == 1 {
			r = Mul(r, base)
		}
		base = Mul(base, base)
		e >>= 1
	}
	return r
}

// Inv returns the multiplicative inverse of a (a must be nonzero).
// Uses Fermat: a^(P-2).
func Inv(a Elem) Elem {
	return Pow(a, P-2)
}

// EvalPoly evaluates the polynomial with coefficients coeffs (degree
// ascending: coeffs[0] + coeffs[1]*x + ...) at x, by Horner's rule.
func EvalPoly(coeffs []Elem, x Elem) Elem {
	if len(coeffs) == 0 {
		return 0
	}
	acc := coeffs[len(coeffs)-1]
	for i := len(coeffs) - 2; i >= 0; i-- {
		acc = Add(Mul(acc, x), coeffs[i])
	}
	return acc
}
