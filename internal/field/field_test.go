package field

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestReduceCanonical(t *testing.T) {
	cases := []struct {
		in   uint64
		want Elem
	}{
		{0, 0},
		{1, 1},
		{P - 1, P - 1},
		{P, 0},
		{P + 1, 1},
		{2 * P, 0},
		{^uint64(0), Reduce(^uint64(0))},
	}
	for _, c := range cases {
		got := Reduce(c.in)
		if got >= P {
			t.Fatalf("Reduce(%d) = %d, not canonical", c.in, got)
		}
		if got != c.want {
			t.Errorf("Reduce(%d) = %d, want %d", c.in, got, c.want)
		}
		if got%P != c.in%P {
			t.Errorf("Reduce(%d) = %d, incongruent", c.in, got)
		}
	}
}

func TestAddSubInverse(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 1000; i++ {
		a := Reduce(rng.Uint64())
		b := Reduce(rng.Uint64())
		if got := Sub(Add(a, b), b); got != a {
			t.Fatalf("(a+b)-b = %d, want %d", got, a)
		}
		if got := Add(a, Neg(a)); got != 0 {
			t.Fatalf("a + (-a) = %d, want 0", got)
		}
	}
}

func TestMulMatchesBigIntSemantics(t *testing.T) {
	// Cross-check Mul against 128-bit schoolbook reduction done a second,
	// slower way: repeated subtraction via Pow identity a*b = a^1 * b.
	rng := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < 2000; i++ {
		a := Reduce(rng.Uint64())
		b := Reduce(rng.Uint64())
		got := Mul(a, b)
		if got >= P {
			t.Fatalf("Mul out of range: %d", got)
		}
		// Reference: compute via math/bits 128-bit remainder.
		want := mulRef(a, b)
		if got != want {
			t.Fatalf("Mul(%d,%d) = %d, want %d", a, b, got, want)
		}
	}
}

// mulRef reduces the 128-bit product with binary long division.
func mulRef(a, b uint64) uint64 {
	var r uint64
	for i := 63; i >= 0; i-- {
		r = r << 1
		if r >= P {
			r -= P
		}
		if b&(1<<uint(i)) != 0 {
			r += a % P
			if r >= P {
				r -= P
			}
		}
	}
	return r
}

func TestFieldAxiomsQuick(t *testing.T) {
	canon := func(x uint64) Elem { return Reduce(x) }

	commutative := func(x, y uint64) bool {
		a, b := canon(x), canon(y)
		return Mul(a, b) == Mul(b, a) && Add(a, b) == Add(b, a)
	}
	if err := quick.Check(commutative, nil); err != nil {
		t.Error(err)
	}

	associative := func(x, y, z uint64) bool {
		a, b, c := canon(x), canon(y), canon(z)
		return Mul(Mul(a, b), c) == Mul(a, Mul(b, c)) &&
			Add(Add(a, b), c) == Add(a, Add(b, c))
	}
	if err := quick.Check(associative, nil); err != nil {
		t.Error(err)
	}

	distributive := func(x, y, z uint64) bool {
		a, b, c := canon(x), canon(y), canon(z)
		return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
	}
	if err := quick.Check(distributive, nil); err != nil {
		t.Error(err)
	}
}

func TestInv(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for i := 0; i < 200; i++ {
		a := Reduce(rng.Uint64())
		if a == 0 {
			continue
		}
		if got := Mul(a, Inv(a)); got != 1 {
			t.Fatalf("a * a^-1 = %d, want 1 (a=%d)", got, a)
		}
	}
	if Inv(1) != 1 {
		t.Error("Inv(1) != 1")
	}
}

func TestPow(t *testing.T) {
	// 2^61 = P + 1 ≡ 1 (mod P).
	if got := Pow(2, 61); got != 1 {
		t.Errorf("Pow(2,61) = %d, want 1", got)
	}
	if Pow(5, 0) != 1 {
		t.Error("x^0 != 1")
	}
	if Pow(0, 5) != 0 {
		t.Error("0^5 != 0")
	}
	// Fermat: a^(P-1) = 1 for a != 0.
	rng := rand.New(rand.NewPCG(7, 8))
	for i := 0; i < 50; i++ {
		a := Reduce(rng.Uint64())
		if a == 0 {
			continue
		}
		if Pow(a, P-1) != 1 {
			t.Fatalf("Fermat fails for %d", a)
		}
	}
}

func TestEvalPoly(t *testing.T) {
	// p(x) = 3 + 2x + x^2 at x=5 -> 3 + 10 + 25 = 38.
	if got := EvalPoly([]Elem{3, 2, 1}, 5); got != 38 {
		t.Errorf("EvalPoly = %d, want 38", got)
	}
	if got := EvalPoly(nil, 10); got != 0 {
		t.Errorf("EvalPoly(nil) = %d, want 0", got)
	}
	if got := EvalPoly([]Elem{7}, 10); got != 7 {
		t.Errorf("constant poly = %d, want 7", got)
	}
}

func BenchmarkMul(b *testing.B) {
	x := Reduce(0x123456789abcdef)
	y := Reduce(0xfedcba987654321)
	for i := 0; i < b.N; i++ {
		x = Mul(x, y)
	}
	_ = x
}
