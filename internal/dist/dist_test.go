package dist

import (
	"math"
	"math/bits"
	"math/rand/v2"
	"sort"
	"testing"
)

// sortedQuantileOracle is the reference implementation the property tests
// compare against: explicit sort, explicit rank interpolation.
func sortedQuantileOracle(xs []float64, q float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	i := int(pos)
	if i == len(s)-1 {
		return s[i]
	}
	return s[i] + (pos-float64(i))*(s[i+1]-s[i])
}

func TestQuantileAgainstSortedOracle(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.IntN(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		orig := append([]float64(nil), xs...)
		for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1, rng.Float64()} {
			got := Quantile(xs, q)
			want := sortedQuantileOracle(xs, q)
			if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
				t.Fatalf("trial %d: Quantile(%v-sample, %v) = %v, oracle %v", trial, n, q, got, want)
			}
		}
		for i := range xs {
			if xs[i] != orig[i] {
				t.Fatal("Quantile mutated its input")
			}
		}
	}
}

func TestMedianAgainstSortedOracle(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.IntN(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()*2000 - 1000
		}
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		var want float64
		if n%2 == 1 {
			want = s[n/2]
		} else {
			want = (s[n/2-1] + s[n/2]) / 2
		}
		if got := Median(xs); math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("trial %d: Median = %v, oracle %v (n=%d)", trial, got, want, n)
		}
	}
}

func TestMeanAndQuantileExtremes(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if got := Mean(xs); math.Abs(got-2.8) > 1e-12 {
		t.Fatalf("Mean = %v", got)
	}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("Quantile(0) = %v, want min", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Fatalf("Quantile(1) = %v, want max", got)
	}
}

// TestAliasFrequencies draws a large sample and checks each index's
// empirical frequency against its expected probability within a chi-square
// style tolerance (4 standard deviations of the binomial count).
func TestAliasFrequencies(t *testing.T) {
	weights := []float64{5, 0.5, 2, 0, 1.5, 1}
	a := NewAlias(weights)
	sum := 0.0
	for _, w := range weights {
		sum += w
	}
	rng := rand.New(rand.NewPCG(5, 6))
	const draws = 200000
	counts := make([]int, len(weights))
	for i := 0; i < draws; i++ {
		counts[a.Sample(rng)]++
	}
	for i, w := range weights {
		p := w / sum
		mean := p * draws
		sd := math.Sqrt(draws * p * (1 - p))
		if math.Abs(float64(counts[i])-mean) > 4*sd+1 {
			t.Errorf("index %d: count %d, expected %.0f ± %.0f", i, counts[i], mean, 4*sd)
		}
	}
	if counts[3] != 0 {
		t.Errorf("zero-weight index sampled %d times", counts[3])
	}
	// The table's own probability report must match the weights too.
	for i, w := range weights {
		if got, want := a.Prob(i), w/sum; math.Abs(got-want) > 1e-9 {
			t.Errorf("Prob(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestZipfFrequencies(t *testing.T) {
	const support = 8
	const s = 1.2
	z := NewZipf(support, s)
	norm := 0.0
	for r := 1; r <= support; r++ {
		norm += math.Pow(float64(r), -s)
	}
	rng := rand.New(rand.NewPCG(7, 8))
	const draws = 100000
	counts := make([]int, support)
	for i := 0; i < draws; i++ {
		counts[z.Sample(rng)]++
	}
	for r := 0; r < support; r++ {
		p := math.Pow(float64(r+1), -s) / norm
		mean := p * draws
		sd := math.Sqrt(draws * p * (1 - p))
		if math.Abs(float64(counts[r])-mean) > 4*sd+1 {
			t.Errorf("rank %d: count %d, expected %.0f ± %.0f", r, counts[r], mean, 4*sd)
		}
	}
	// s = 0 must be exactly uniform in expectation (workload.Uniform).
	u := NewZipf(4, 0)
	uc := make([]int, 4)
	for i := 0; i < 40000; i++ {
		uc[u.Sample(rng)]++
	}
	for r, c := range uc {
		if math.Abs(float64(c)-10000) > 4*math.Sqrt(40000*0.25*0.75)+1 {
			t.Errorf("uniform rank %d count %d", r, c)
		}
	}
}

func TestTVDistProperties(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	randDist := func(n int) []float64 {
		p := make([]float64, n)
		sum := 0.0
		for i := range p {
			p[i] = rng.Float64()
			sum += p[i]
		}
		for i := range p {
			p[i] /= sum
		}
		return p
	}
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.IntN(20)
		p, q := randDist(n), randDist(n)
		d := TVDist(p, q)
		if d < 0 || d > 1 {
			t.Fatalf("TVDist outside [0,1]: %v", d)
		}
		if sym := TVDist(q, p); math.Abs(d-sym) > 1e-12 {
			t.Fatalf("TVDist asymmetric: %v vs %v", d, sym)
		}
		if self := TVDist(p, p); self != 0 {
			t.Fatalf("TVDist(p,p) = %v", self)
		}
	}
	// Disjoint supports are at distance exactly 1.
	if d := TVDist([]float64{1, 0}, []float64{0, 1}); math.Abs(d-1) > 1e-12 {
		t.Fatalf("disjoint TVDist = %v", d)
	}
}

func TestBinomialTailGE(t *testing.T) {
	// Against a directly computed PMF sum at small n.
	n, p := 12, 0.3
	for k := 0; k <= n+1; k++ {
		want := 0.0
		for i := k; i <= n; i++ {
			want += math.Exp(logChoose(n, i)) * math.Pow(p, float64(i)) * math.Pow(1-p, float64(n-i))
		}
		if got := BinomialTailGE(n, k, p); math.Abs(got-want) > 1e-12 {
			t.Errorf("tail(%d) = %v, want %v", k, got, want)
		}
	}
	if got := BinomialTailGE(10, 0, 0.5); got != 1 {
		t.Errorf("tail at k=0 = %v", got)
	}
	if got := BinomialTailGE(10, 11, 0.5); got != 0 {
		t.Errorf("tail past n = %v", got)
	}
	// Theorem A.4: the anti-concentration bound must actually lower-bound
	// the exact tail in its validity window.
	nn, pp := 2000, 0.3
	np := float64(nn) * pp
	for _, tt := range []float64{math.Sqrt(3*np) + 1, 60, 90} {
		if tt > np/2 {
			continue
		}
		exact := BinomialTailGE(nn, int(math.Ceil(np+tt)), pp)
		bound := BinomialAntiConcentration(nn, pp, tt)
		if exact < bound {
			t.Errorf("t=%v: exact tail %v below Theorem A.4 bound %v", tt, exact, bound)
		}
	}
}

func TestHammingShell(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	hamming := func(a, b []uint64) int {
		d := 0
		for i := range a {
			d += bits.OnesCount64(a[i] ^ b[i])
		}
		return d
	}
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.IntN(200)
		words := (k + 63) / 64
		x := make([]uint64, words)
		for i := range x {
			x[i] = rng.Uint64()
		}
		// Mask tail bits beyond k so distances stay within the k-bit cube.
		if k%64 != 0 {
			x[words-1] &= (1 << uint(k%64)) - 1
		}
		orig := append([]uint64(nil), x...)
		d := rng.IntN(k + 1)
		y := HammingShell(x, k, d, rng)
		if got := hamming(x, y); got != d {
			t.Fatalf("trial %d: distance %d, want %d (k=%d)", trial, got, d, k)
		}
		for i := range x {
			if x[i] != orig[i] {
				t.Fatal("HammingShell mutated its input")
			}
		}
		// No flipped bit may land outside [0, k).
		for i := range y {
			lim := k - 64*i
			if lim >= 64 {
				continue
			}
			mask := ^uint64(0)
			if lim > 0 {
				mask = ^((1 << uint(lim)) - 1)
			}
			if (x[i]^y[i])&mask != 0 {
				t.Fatalf("trial %d: bit flipped beyond position k=%d", trial, k)
			}
		}
	}
	// Uniformity over a tiny shell: k=4, d=2 has C(4,2)=6 equiprobable
	// outcomes.
	counts := map[uint64]int{}
	const draws = 60000
	for i := 0; i < draws; i++ {
		y := HammingShell([]uint64{0}, 4, 2, rng)
		counts[y[0]]++
	}
	if len(counts) != 6 {
		t.Fatalf("k=4,d=2 shell produced %d distinct points, want 6", len(counts))
	}
	for pt, c := range counts {
		mean := float64(draws) / 6
		sd := math.Sqrt(draws * (1.0 / 6) * (5.0 / 6))
		if math.Abs(float64(c)-mean) > 4*sd {
			t.Errorf("shell point %04b: count %d, expected %.0f ± %.0f", pt, c, mean, 4*sd)
		}
	}
}

func TestMixDistinctAndDeterministic(t *testing.T) {
	if Mix(1, 2) != Mix(1, 2) {
		t.Fatal("Mix not deterministic")
	}
	if Mix(1, 2) == Mix(2, 1) {
		t.Fatal("Mix ignores word order")
	}
	// Adjacent labels under a common root must scatter: collect 10k derived
	// words and require all distinct (a 64-bit birthday collision among 10k
	// draws has probability ~3e-12, so any collision means a mixing bug).
	seen := make(map[uint64]bool, 10000)
	for i := uint64(0); i < 10000; i++ {
		w := Mix(42, i)
		if seen[w] {
			t.Fatalf("Mix(42, %d) collides with an earlier label", i)
		}
		seen[w] = true
	}
}

func TestSubStreamDeterministicAndDecorrelated(t *testing.T) {
	a1 := SubStream(7, 3)
	a2 := SubStream(7, 3)
	for i := 0; i < 100; i++ {
		if a1.Uint64() != a2.Uint64() {
			t.Fatal("SubStream not deterministic for equal (seed, stream)")
		}
	}
	// Adjacent streams of one seed must not ride correlated sequences: the
	// fraction of positionwise-equal draws over 1000 steps should be ~2^-64.
	b1, b2 := SubStream(7, 0), SubStream(7, 1)
	equal := 0
	for i := 0; i < 1000; i++ {
		if b1.Uint64() == b2.Uint64() {
			equal++
		}
	}
	if equal != 0 {
		t.Fatalf("adjacent sub-streams agree on %d of 1000 draws", equal)
	}
}
