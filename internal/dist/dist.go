// Package dist collects the small probability-and-statistics toolkit the
// rest of the module leans on: summary statistics over float64 samples
// (Mean, Median, Quantile), total-variation distance between finite
// distributions, discrete samplers (Walker's alias method and a Zipf
// popularity law built on it), exact binomial tail probabilities with the
// paper's Theorem A.4 anti-concentration lower bound, and uniform sampling
// from a Hamming shell.
//
// Consumers across the module:
//
//   - freqoracle.Hashtogram takes the count-median estimate with Median and
//     reports per-row spread with Quantile (Theorem 3.7's median-of-rows
//     estimator).
//   - composition (Theorem 5.1) samples the complement of the good Hamming
//     shell with an Alias over distance classes and HammingShell within a
//     class.
//   - lowerbound and grouposition reduce Monte-Carlo trials to (1-β)
//     quantile tables with Quantile; cmd/experiments checks Theorem A.4 with
//     BinomialTailGE against BinomialAntiConcentration.
//   - workload draws Zipf-popular items via NewZipf; genprot compares
//     induced and original report laws with TVDist.
package dist

import (
	"math"
	"math/rand/v2"
	"sort"
)

// Mean returns the arithmetic mean of xs. It panics on an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("dist: Mean of empty slice")
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the median of xs without mutating it: the midpoint order
// statistic for odd lengths, the average of the two central order statistics
// for even lengths (so Median(xs) == Quantile(xs, 0.5) exactly). It panics on
// an empty slice.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-quantile of xs (q in [0, 1]) without mutating it,
// using linear interpolation between adjacent order statistics: the value at
// fractional rank q·(len(xs)-1). Quantile(xs, 0) is the minimum and
// Quantile(xs, 1) the maximum. It panics on an empty slice or q outside
// [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("dist: Quantile of empty slice")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return QuantileSorted(sorted, q)
}

// QuantileSorted is Quantile over a sample the caller has already sorted
// ascending: the same linear interpolation at fractional rank q·(len-1),
// with no copy and no allocation. It is the hot-path form behind
// Hashtogram's per-query median/IQR; Quantile delegates to it, so the two
// agree bit-for-bit on identical samples. It panics on an empty slice or q
// outside [0, 1]; an unsorted input silently yields garbage.
func QuantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("dist: QuantileSorted of empty slice")
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		panic("dist: QuantileSorted fraction outside [0,1]")
	}
	h := q * float64(len(sorted)-1)
	lo := int(math.Floor(h))
	hi := int(math.Ceil(h))
	if lo == hi {
		return sorted[lo]
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// TVDist returns the total-variation distance (1/2)·Σ|p_i − q_i| between two
// distributions given as aligned probability vectors. The result is in
// [0, 1] for any pair of probability vectors and is symmetric in its
// arguments. It panics if the lengths differ.
func TVDist(p, q []float64) float64 {
	if len(p) != len(q) {
		panic("dist: TVDist over misaligned supports")
	}
	sum := 0.0
	for i := range p {
		sum += math.Abs(p[i] - q[i])
	}
	return sum / 2
}

// Alias is a Walker/Vose alias table: after O(n) preprocessing it draws from
// an arbitrary discrete distribution over {0, ..., n-1} in O(1) with two
// uniform variates. The composition package uses it to sample the Hamming
// distance class of M̃'s complement draw; Zipf builds its rank sampler on it.
type Alias struct {
	prob  []float64 // acceptance probability of the home column
	alias []int     // overflow target when the home column is rejected
}

// NewAlias builds the alias table for the given non-negative weights (they
// need not be normalized). It panics if weights is empty, contains a
// negative or non-finite entry, or sums to zero.
func NewAlias(weights []float64) *Alias {
	n := len(weights)
	if n == 0 {
		panic("dist: NewAlias with no weights")
	}
	sum := 0.0
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			panic("dist: NewAlias weight must be finite and non-negative")
		}
		sum += w
	}
	if sum <= 0 {
		panic("dist: NewAlias weights sum to zero")
	}
	a := &Alias{prob: make([]float64, n), alias: make([]int, n)}
	// Vose's stable construction: columns scaled to mean 1 are split into
	// under- and over-full work lists; each underfull column is topped up by
	// exactly one overfull donor.
	scaled := make([]float64, n)
	var small, large []int
	for i, w := range weights {
		scaled[i] = w * float64(n) / sum
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Residual columns are full up to float round-off.
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a
}

// N returns the support size of the table.
func (a *Alias) N() int { return len(a.prob) }

// Sample draws one index from the table's distribution.
func (a *Alias) Sample(rng *rand.Rand) int {
	i := rng.IntN(len(a.prob))
	if rng.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}

// Prob returns the exact probability the table assigns to index i (useful
// for goodness-of-fit tests against the sampler).
func (a *Alias) Prob(i int) float64 {
	p := a.prob[i] / float64(len(a.prob))
	for j := range a.alias {
		if a.alias[j] == i && j != i {
			p += (1 - a.prob[j]) / float64(len(a.prob))
		}
	}
	return p
}

// Zipf draws ranks from the power law Pr[r] ∝ 1/(r+1)^s over
// {0, ..., support-1}. Exponent s = 0 degenerates to the uniform
// distribution, which workload.Uniform relies on; any s >= 0 is accepted
// (unlike math/rand/v2's Zipf, which requires s > 1).
type Zipf struct {
	alias *Alias
}

// NewZipf builds the rank sampler. It panics if support < 1, or if s is
// negative or non-finite.
func NewZipf(support int, s float64) *Zipf {
	if support < 1 {
		panic("dist: NewZipf support must be positive")
	}
	if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		panic("dist: NewZipf exponent must be finite and non-negative")
	}
	weights := make([]float64, support)
	for r := range weights {
		weights[r] = math.Pow(float64(r+1), -s)
	}
	return &Zipf{alias: NewAlias(weights)}
}

// Sample draws one rank in [0, support).
func (z *Zipf) Sample(rng *rand.Rand) int {
	return z.alias.Sample(rng)
}

// BinomialTailGE returns the exact upper tail Pr[Bin(n, p) >= k], summed in
// log space for numerical stability far into the tail. cmd/experiments pits
// it against BinomialAntiConcentration to verify Theorem A.4 numerically.
func BinomialTailGE(n, k int, p float64) float64 {
	if n < 0 || p < 0 || p > 1 || math.IsNaN(p) {
		panic("dist: BinomialTailGE needs n >= 0 and p in [0,1]")
	}
	if k <= 0 {
		return 1
	}
	if k > n {
		return 0
	}
	if p == 0 {
		return 0 // k >= 1 mass requires at least one success
	}
	if p == 1 {
		return 1 // all n successes, and k <= n
	}
	logP := math.Log(p)
	logQ := math.Log1p(-p)
	sum := 0.0
	for i := k; i <= n; i++ {
		sum += math.Exp(logChoose(n, i) + float64(i)*logP + float64(n-i)*logQ)
	}
	return math.Min(sum, 1)
}

// BinomialAntiConcentration returns the Theorem A.4 lower bound on the upper
// tail: for sqrt(3np) <= t <= np/2,
//
//	Pr[Bin(n, p) >= np + t] >= exp(-9t²/(np)).
//
// It is the anti-concentration engine behind the Section 7 lower bound
// (Theorem 7.2 via Theorem A.5); the lowerbound package's harness checks the
// measured error quantiles against its shape.
func BinomialAntiConcentration(n int, p, t float64) float64 {
	if n < 1 || p <= 0 || p > 1 {
		panic("dist: BinomialAntiConcentration needs n >= 1 and p in (0,1]")
	}
	return math.Exp(-9 * t * t / (float64(n) * p))
}

// logChoose returns log C(n, k) via log-gamma.
func logChoose(n, k int) float64 {
	lg := func(x float64) float64 {
		v, _ := math.Lgamma(x)
		return v
	}
	return lg(float64(n)+1) - lg(float64(k)+1) - lg(float64(n-k)+1)
}

// HammingShell returns a uniform sample from the set of points at Hamming
// distance exactly d from x in {0,1}^k, with x packed little-endian as k
// bits in []uint64 words (the composition package's bit layout). x is not
// mutated. It panics if d is outside [0, k] or x has the wrong word count.
//
// The d flip positions are chosen by Floyd's sampling algorithm: O(d)
// expected time and memory regardless of k, which keeps M̃'s rare
// complement-sampling path cheap even for large k.
func HammingShell(x []uint64, k, d int, rng *rand.Rand) []uint64 {
	if len(x) != (k+63)/64 {
		panic("dist: HammingShell input word count mismatch")
	}
	if d < 0 || d > k {
		panic("dist: HammingShell distance outside [0,k]")
	}
	y := append([]uint64(nil), x...)
	chosen := make(map[int]struct{}, d)
	for j := k - d; j < k; j++ {
		t := rng.IntN(j + 1)
		if _, dup := chosen[t]; dup {
			t = j
		}
		chosen[t] = struct{}{}
		y[t/64] ^= 1 << uint(t%64)
	}
	return y
}

// splitmix64 is the SplitMix64 finalizer: a fast bijective mixer whose
// output sequence over consecutive inputs passes BigCrush. It is the
// standard way to expand one seed word into decorrelated stream seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Mix folds any number of seed words into one well-distributed word by
// chaining the SplitMix64 finalizer. Adjacent inputs (seed, 0), (seed, 1),
// ... land far apart in the output space, so Mix(seed, i) is the canonical
// way to label per-shard or per-bucket randomness derived from one root
// seed.
func Mix(words ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, w := range words {
		h = splitmix64(h ^ w)
	}
	return h
}

// SubStream returns a deterministic PCG generator for the (seed, stream)
// pair. Distinct streams of the same seed are decorrelated even for
// adjacent stream indices, and the construction is pure: the same pair
// always yields a generator producing the same sequence. Parallel decoders
// (core.Protocol.Identify step 4) draw one SubStream per super-bucket so
// concurrent decoding stays reproducible at any worker count.
func SubStream(seed, stream uint64) *rand.Rand {
	return rand.New(rand.NewPCG(Mix(seed, stream), Mix(stream, 0x5375625374726561, seed)))
}
