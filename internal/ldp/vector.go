package ldp

import (
	"math"
	"math/bits"
	"math/rand/v2"
)

// RAPPOR is basic one-time RAPPOR (Erlingsson-Pihur-Korolova, CCS 2014 —
// reference [12] of the paper, the Chrome deployment): the item is hashed
// into a Bloom filter of BloomBits bits by NumHashes hash functions, and
// each bit goes through randomized response with per-bit parameter
// ε/(2·NumHashes), for a total privacy cost of ε (each item sets NumHashes
// bits, and flipping an item toggles at most 2·NumHashes bits).
//
// The Randomizer interface views the *Bloom-encoded* input: inputs are
// uint64 Bloom masks, outputs are uint64 report masks. Item hashing is done
// by BloomMask. BloomBits must be <= 20 for the interface's exhaustive
// output enumeration to stay tractable in tests; sampling works up to 64.
type RAPPOR struct {
	eps       float64
	bloomBits int
	numHashes int
	pKeep     float64 // per-bit probability of reporting the true bit
	seedA     uint64
	seedB     uint64
}

// NewRAPPOR constructs a basic one-time RAPPOR randomizer. seeds derive the
// public Bloom hash functions.
func NewRAPPOR(eps float64, bloomBits, numHashes int, seedA, seedB uint64) RAPPOR {
	if eps <= 0 {
		panic("ldp: RAPPOR needs eps > 0")
	}
	if bloomBits < 2 || bloomBits > 64 {
		panic("ldp: RAPPOR needs 2 <= BloomBits <= 64")
	}
	if numHashes < 1 || numHashes > bloomBits {
		panic("ldp: RAPPOR needs 1 <= NumHashes <= BloomBits")
	}
	e := math.Exp(eps / (2 * float64(numHashes)))
	return RAPPOR{
		eps:       eps,
		bloomBits: bloomBits,
		numHashes: numHashes,
		pKeep:     e / (e + 1),
		seedA:     seedA,
		seedB:     seedB,
	}
}

// BloomBits returns the filter width.
func (r RAPPOR) BloomBits() int { return r.bloomBits }

// NumHashes returns the number of Bloom hash functions.
func (r RAPPOR) NumHashes() int { return r.numHashes }

// PKeep returns the per-bit probability of reporting the true bit.
func (r RAPPOR) PKeep() float64 { return r.pKeep }

// BloomMask returns the Bloom filter mask for an item.
func (r RAPPOR) BloomMask(item []byte) uint64 {
	var mask uint64
	for h := 0; h < r.numHashes; h++ {
		acc := r.seedA + uint64(h)*0x9e3779b97f4a7c15
		for _, b := range item {
			acc ^= uint64(b)
			acc *= 0x100000001b3
			acc ^= acc >> 29
		}
		acc ^= r.seedB
		acc *= 0xff51afd7ed558ccd
		acc ^= acc >> 33
		mask |= 1 << (acc % uint64(r.bloomBits))
	}
	return mask
}

// Sample implements Randomizer: x is a Bloom mask; each of the BloomBits
// bits is kept with probability pKeep and flipped otherwise.
func (r RAPPOR) Sample(x uint64, rng *rand.Rand) uint64 {
	var out uint64
	for i := 0; i < r.bloomBits; i++ {
		bit := x >> uint(i) & 1
		if rng.Float64() >= r.pKeep {
			bit ^= 1
		}
		out |= bit << uint(i)
	}
	return out
}

// Prob implements Randomizer.
func (r RAPPOR) Prob(x, y uint64) float64 {
	if r.bloomBits < 64 {
		lim := uint64(1) << uint(r.bloomBits)
		if x >= lim || y >= lim {
			return 0
		}
	}
	diff := bits.OnesCount64(x ^ y)
	same := r.bloomBits - diff
	return math.Pow(r.pKeep, float64(same)) * math.Pow(1-r.pKeep, float64(diff))
}

// NumInputs implements Randomizer.
func (r RAPPOR) NumInputs() uint64 { return 1 << uint(r.bloomBits) }

// NumOutputs implements Randomizer.
func (r RAPPOR) NumOutputs() uint64 { return 1 << uint(r.bloomBits) }

// NullInput implements Randomizer.
func (r RAPPOR) NullInput() uint64 { return 0 }

// Epsilon implements Randomizer. The stated ε covers input masks that
// differ in at most 2·NumHashes bits, which is exactly the reachable set of
// Bloom masks of two items.
func (r RAPPOR) Epsilon() float64 { return r.eps }

// Delta implements Randomizer.
func (r RAPPOR) Delta() float64 { return 0 }

// OUE is optimized unary encoding (Wang et al.'s OUE, the standard
// communication-heavy frequency-oracle baseline): the input v in [k] is
// one-hot encoded; the '1' bit is reported truthfully with probability 1/2
// and every '0' bit is reported as 1 with probability 1/(e^ε+1).
type OUE struct {
	eps float64
	k   int
	q   float64 // Pr[report 1 | true 0]
}

// NewOUE constructs optimized unary encoding over k <= 64 values.
func NewOUE(eps float64, k int) OUE {
	if eps <= 0 {
		panic("ldp: OUE needs eps > 0")
	}
	if k < 2 || k > 64 {
		panic("ldp: OUE needs 2 <= k <= 64")
	}
	return OUE{eps: eps, k: k, q: 1 / (math.Exp(eps) + 1)}
}

// K returns the domain size.
func (r OUE) K() int { return r.k }

// Q returns Pr[bit reported 1 | true bit 0].
func (r OUE) Q() float64 { return r.q }

// Sample implements Randomizer: x in [k] one-hot encoded, output is a k-bit
// mask.
func (r OUE) Sample(x uint64, rng *rand.Rand) uint64 {
	if x >= uint64(r.k) {
		panic("ldp: OUE input out of range")
	}
	var out uint64
	for i := 0; i < r.k; i++ {
		var p float64
		if uint64(i) == x {
			p = 0.5
		} else {
			p = r.q
		}
		if rng.Float64() < p {
			out |= 1 << uint(i)
		}
	}
	return out
}

// Prob implements Randomizer.
func (r OUE) Prob(x, y uint64) float64 {
	if x >= uint64(r.k) {
		return 0
	}
	if r.k < 64 && y >= 1<<uint(r.k) {
		return 0
	}
	p := 1.0
	for i := 0; i < r.k; i++ {
		bit := y >> uint(i) & 1
		var pOne float64
		if uint64(i) == x {
			pOne = 0.5
		} else {
			pOne = r.q
		}
		if bit == 1 {
			p *= pOne
		} else {
			p *= 1 - pOne
		}
	}
	return p
}

// NumInputs implements Randomizer.
func (r OUE) NumInputs() uint64 { return uint64(r.k) }

// NumOutputs implements Randomizer.
func (r OUE) NumOutputs() uint64 { return 1 << uint(r.k) }

// NullInput implements Randomizer.
func (r OUE) NullInput() uint64 { return 0 }

// Epsilon implements Randomizer.
func (r OUE) Epsilon() float64 { return r.eps }

// Delta implements Randomizer.
func (r OUE) Delta() float64 { return 0 }

// Unbias converts the count of reports whose v-th bit is 1 into an unbiased
// estimate of the number of users holding v.
func (r OUE) Unbias(ones, n int) float64 {
	return (float64(ones) - float64(n)*r.q) / (0.5 - r.q)
}

// LeakyRR is an (ε, δ)-LDP randomizer built to be *genuinely approximate*:
// with probability 1-δ it behaves as binary ε-randomized response (outputs
// 0/1); with probability δ it leaks the input in the clear on a disjoint
// part of the output space (outputs 2+x). Its pure privacy ratio is infinite
// while its hockey-stick divergence at level ε is exactly δ, making it the
// canonical test subject for the Section 6 GenProt transformation.
type LeakyRR struct {
	rr    BinaryRR
	delta float64
}

// NewLeakyRR constructs the leaky randomizer; eps > 0, 0 < delta < 1.
func NewLeakyRR(eps, delta float64) LeakyRR {
	if delta <= 0 || delta >= 1 {
		panic("ldp: LeakyRR needs delta in (0,1)")
	}
	return LeakyRR{rr: NewBinaryRR(eps), delta: delta}
}

// Sample implements Randomizer.
func (r LeakyRR) Sample(x uint64, rng *rand.Rand) uint64 {
	if x > 1 {
		panic("ldp: LeakyRR input must be a bit")
	}
	if rng.Float64() < r.delta {
		return 2 + x
	}
	return r.rr.Sample(x, rng)
}

// Prob implements Randomizer.
func (r LeakyRR) Prob(x, y uint64) float64 {
	if x > 1 || y > 3 {
		return 0
	}
	if y >= 2 {
		if y-2 == x {
			return r.delta
		}
		return 0
	}
	return (1 - r.delta) * r.rr.Prob(x, y)
}

// NumInputs implements Randomizer.
func (r LeakyRR) NumInputs() uint64 { return 2 }

// NumOutputs implements Randomizer.
func (r LeakyRR) NumOutputs() uint64 { return 4 }

// NullInput implements Randomizer.
func (r LeakyRR) NullInput() uint64 { return 0 }

// Epsilon implements Randomizer.
func (r LeakyRR) Epsilon() float64 { return r.rr.Epsilon() }

// Delta implements Randomizer.
func (r LeakyRR) Delta() float64 { return r.delta }
