package ldp

import (
	"math"
	"math/rand/v2"

	"ldphh/internal/hadamard"
)

// HadamardBit is the one-bit randomizer of the Hashtogram frequency oracle
// ([3], used here as Theorems 3.7/3.8): the input is a bucket value v in
// [0, T); the user picks a uniform Hadamard column j, computes the true bit
// H[j, v] ∈ {±1} and passes it through ε-randomized response. The report is
// the pair (j, bit), encoded as the uint64 j*2 + (bit==+1 ? 1 : 0).
//
// The server-side unbiasing constant is CEps = (e^ε+1)/(e^ε−1): the adjusted
// report CEps·bit·e_j has expectation equal to (1/T)·H·e_v, so summing and
// applying one fast Walsh–Hadamard transform reconstructs the bucket
// histogram (see internal/freqoracle).
type HadamardBit struct {
	eps   float64
	t     uint64 // power of two
	pKeep float64
}

// NewHadamardBit constructs the randomizer over T buckets (T a power of
// two) with privacy parameter eps > 0.
func NewHadamardBit(eps float64, t int) HadamardBit {
	if eps <= 0 {
		panic("ldp: HadamardBit needs eps > 0")
	}
	if t < 1 || t&(t-1) != 0 {
		panic("ldp: HadamardBit needs T a positive power of two")
	}
	e := math.Exp(eps)
	return HadamardBit{eps: eps, t: uint64(t), pKeep: e / (e + 1)}
}

// T returns the bucket-domain size.
func (r HadamardBit) T() int { return int(r.t) }

// CEps returns the unbiasing constant (e^ε+1)/(e^ε−1).
func (r HadamardBit) CEps() float64 {
	e := math.Exp(r.eps)
	return (e + 1) / (e - 1)
}

// Encode packs a column index and a ±1 bit into a report value.
func (r HadamardBit) Encode(col uint64, bit int) uint64 {
	b := uint64(0)
	if bit > 0 {
		b = 1
	}
	return col<<1 | b
}

// DecodeReport unpacks a report into (column, ±1 bit).
func (r HadamardBit) DecodeReport(y uint64) (col uint64, bit int) {
	if y&1 == 1 {
		return y >> 1, 1
	}
	return y >> 1, -1
}

// Sample implements Randomizer.
func (r HadamardBit) Sample(x uint64, rng *rand.Rand) uint64 {
	if x >= r.t {
		panic("ldp: HadamardBit input out of range")
	}
	col := rng.Uint64N(r.t)
	bit := hadamard.Entry(col, x)
	if rng.Float64() >= r.pKeep {
		bit = -bit
	}
	return r.Encode(col, bit)
}

// Prob implements Randomizer.
func (r HadamardBit) Prob(x, y uint64) float64 {
	if x >= r.t || y >= 2*r.t {
		return 0
	}
	col, bit := r.DecodeReport(y)
	true_ := hadamard.Entry(col, x)
	if bit == true_ {
		return r.pKeep / float64(r.t)
	}
	return (1 - r.pKeep) / float64(r.t)
}

// NumInputs implements Randomizer.
func (r HadamardBit) NumInputs() uint64 { return r.t }

// NumOutputs implements Randomizer.
func (r HadamardBit) NumOutputs() uint64 { return 2 * r.t }

// NullInput implements Randomizer.
func (r HadamardBit) NullInput() uint64 { return 0 }

// Epsilon implements Randomizer.
func (r HadamardBit) Epsilon() float64 { return r.eps }

// Delta implements Randomizer.
func (r HadamardBit) Delta() float64 { return 0 }
