package ldp

import (
	"math"
	"math/rand/v2"
	"testing"
)

// checkSamplerMatchesProb draws many samples and compares the empirical
// distribution against Prob for a fixed input.
func checkSamplerMatchesProb(t *testing.T, r Randomizer, x uint64, trials int) {
	t.Helper()
	rng := rand.New(rand.NewPCG(99, x))
	counts := make(map[uint64]int)
	for i := 0; i < trials; i++ {
		counts[r.Sample(x, rng)]++
	}
	for y := uint64(0); y < r.NumOutputs(); y++ {
		want := r.Prob(x, y)
		got := float64(counts[y]) / float64(trials)
		tol := 6*math.Sqrt(want*(1-want)/float64(trials)) + 0.002
		if math.Abs(got-want) > tol {
			t.Errorf("output %d: empirical %.4f vs Prob %.4f", y, got, want)
		}
	}
}

func TestBinaryRR(t *testing.T) {
	r := NewBinaryRR(1.0)
	if err := checkTotalMass(r, 1e-12); err != nil {
		t.Fatal(err)
	}
	checkSamplerMatchesProb(t, r, 0, 60000)
	checkSamplerMatchesProb(t, r, 1, 60000)
	// Exhaustive privacy check: Definition 1.1.
	if got := MaxPrivacyRatio(r); got > math.Exp(1.0)+1e-9 {
		t.Errorf("privacy ratio %.4f exceeds e^eps", got)
	}
	// The ratio should also be achieved (RR is tight).
	if got := MaxPrivacyRatio(r); math.Abs(got-math.Exp(1.0)) > 1e-9 {
		t.Errorf("RR should meet its privacy bound exactly: %.6f", got)
	}
}

func TestBinaryRRUnbias(t *testing.T) {
	r := NewBinaryRR(1.5)
	rng := rand.New(rand.NewPCG(1, 1))
	n := 200000
	trueOnes := 60000
	ones := 0
	for i := 0; i < n; i++ {
		x := uint64(0)
		if i < trueOnes {
			x = 1
		}
		if r.Sample(x, rng) == 1 {
			ones++
		}
	}
	est := r.Unbias(ones, n)
	if math.Abs(est-float64(trueOnes)) > 4000 {
		t.Fatalf("Unbias estimate %.0f, want ~%d", est, trueOnes)
	}
}

func TestBinaryRRValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("eps <= 0 accepted")
		}
	}()
	NewBinaryRR(0)
}

func TestKaryRR(t *testing.T) {
	r := NewKaryRR(1.2, 5)
	if err := checkTotalMass(r, 1e-12); err != nil {
		t.Fatal(err)
	}
	checkSamplerMatchesProb(t, r, 3, 60000)
	if got := MaxPrivacyRatio(r); got > math.Exp(1.2)+1e-9 {
		t.Errorf("privacy ratio %.4f exceeds e^eps", got)
	}
	// k=2 must coincide with binary RR.
	k2 := NewKaryRR(0.7, 2)
	b := NewBinaryRR(0.7)
	for x := uint64(0); x < 2; x++ {
		for y := uint64(0); y < 2; y++ {
			if math.Abs(k2.Prob(x, y)-b.Prob(x, y)) > 1e-12 {
				t.Fatal("KaryRR(k=2) != BinaryRR")
			}
		}
	}
}

func TestKaryRRUnbias(t *testing.T) {
	r := NewKaryRR(1.0, 8)
	rng := rand.New(rand.NewPCG(2, 2))
	n := 150000
	trueCount := 30000
	count := 0
	for i := 0; i < n; i++ {
		x := uint64(7)
		if i < trueCount {
			x = 2
		}
		if r.Sample(x, rng) == 2 {
			count++
		}
	}
	est := r.Unbias(count, n)
	if math.Abs(est-float64(trueCount)) > 5000 {
		t.Fatalf("Unbias estimate %.0f, want ~%d", est, trueCount)
	}
}

func TestHadamardBit(t *testing.T) {
	r := NewHadamardBit(0.8, 16)
	if err := checkTotalMass(r, 1e-12); err != nil {
		t.Fatal(err)
	}
	checkSamplerMatchesProb(t, r, 5, 120000)
	if got := MaxPrivacyRatio(r); got > math.Exp(0.8)+1e-9 {
		t.Errorf("privacy ratio %.4f exceeds e^eps", got)
	}
	if got, want := r.CEps(), (math.Exp(0.8)+1)/(math.Exp(0.8)-1); math.Abs(got-want) > 1e-12 {
		t.Errorf("CEps = %f, want %f", got, want)
	}
}

func TestHadamardBitEncodeDecode(t *testing.T) {
	r := NewHadamardBit(1, 8)
	for col := uint64(0); col < 8; col++ {
		for _, bit := range []int{-1, 1} {
			c, b := r.DecodeReport(r.Encode(col, bit))
			if c != col || b != bit {
				t.Fatalf("encode/decode mismatch: (%d,%d) -> (%d,%d)", col, bit, c, b)
			}
		}
	}
}

func TestHadamardBitUnbiasedReconstruction(t *testing.T) {
	// The advertised estimator: CEps·bit over a random column reconstructs
	// the Hadamard coefficient in expectation; check E[CEps·y·H[j,v]] sums.
	r := NewHadamardBit(1.0, 8)
	rng := rand.New(rand.NewPCG(3, 3))
	v := uint64(3)
	const trials = 400000
	acc := make([]float64, 8)
	for i := 0; i < trials; i++ {
		col, bit := r.DecodeReport(r.Sample(v, rng))
		acc[col] += r.CEps() * float64(bit)
	}
	// E[acc[j]] = trials·(1/T)·H[j,v]; reconstruct e_v via inverse transform
	// by checking the histogram entry directly: f[b] = Σ_j H[j,b]·acc[j]/trials·T/T.
	for b := uint64(0); b < 8; b++ {
		f := 0.0
		for j := uint64(0); j < 8; j++ {
			f += float64(hEntry(j, b)) * acc[j]
		}
		f /= trials
		want := 0.0
		if b == v {
			want = 1.0
		}
		if math.Abs(f-want) > 0.05 {
			t.Errorf("reconstructed e_v[%d] = %.3f, want %.0f", b, f, want)
		}
	}
}

func hEntry(row, col uint64) int {
	v := row & col
	c := 0
	for v != 0 {
		c++
		v &= v - 1
	}
	if c%2 == 0 {
		return 1
	}
	return -1
}

func TestRAPPOR(t *testing.T) {
	r := NewRAPPOR(2.0, 8, 2, 11, 22)
	if err := checkTotalMass(r, 1e-9); err != nil {
		t.Fatal(err)
	}
	checkSamplerMatchesProb(t, r, r.BloomMask([]byte("hello")), 120000)
	// Pure LDP holds for mask pairs reachable from items (<= 2h differing
	// bits); check over a corpus of real items.
	items := []string{"a", "bb", "ccc", "dddd", "eeeee", "www.example.com", "x"}
	worst := 0.0
	for _, a := range items {
		for _, b := range items {
			if a == b {
				continue
			}
			ratio := PrivacyRatio(r, r.BloomMask([]byte(a)), r.BloomMask([]byte(b)))
			if ratio > worst {
				worst = ratio
			}
		}
	}
	if worst > math.Exp(2.0)+1e-9 {
		t.Errorf("RAPPOR item-level privacy ratio %.4f exceeds e^eps", worst)
	}
}

func TestRAPPORBloomMaskProperties(t *testing.T) {
	r := NewRAPPOR(1.0, 32, 2, 5, 6)
	m1 := r.BloomMask([]byte("chrome.google.com"))
	m2 := r.BloomMask([]byte("chrome.google.com"))
	if m1 != m2 {
		t.Error("BloomMask not deterministic")
	}
	if m1 == 0 {
		t.Error("BloomMask set no bits")
	}
	ones := 0
	for i := 0; i < 32; i++ {
		if m1>>uint(i)&1 == 1 {
			ones++
		}
	}
	if ones < 1 || ones > 2 {
		t.Errorf("BloomMask set %d bits, want 1..2", ones)
	}
}

func TestOUE(t *testing.T) {
	r := NewOUE(1.0, 6)
	if err := checkTotalMass(r, 1e-9); err != nil {
		t.Fatal(err)
	}
	checkSamplerMatchesProb(t, r, 2, 200000)
	if got := MaxPrivacyRatio(r); got > math.Exp(1.0)+1e-9 {
		t.Errorf("OUE privacy ratio %.4f exceeds e^eps", got)
	}
}

func TestOUEUnbias(t *testing.T) {
	r := NewOUE(1.2, 10)
	rng := rand.New(rand.NewPCG(4, 4))
	n := 100000
	trueCount := 25000
	ones := 0
	for i := 0; i < n; i++ {
		x := uint64(9)
		if i < trueCount {
			x = 4
		}
		y := r.Sample(x, rng)
		if y>>4&1 == 1 {
			ones++
		}
	}
	est := r.Unbias(ones, n)
	if math.Abs(est-float64(trueCount)) > 4000 {
		t.Fatalf("OUE Unbias estimate %.0f, want ~%d", est, trueCount)
	}
}

func TestLeakyRR(t *testing.T) {
	r := NewLeakyRR(1.0, 0.05)
	if err := checkTotalMass(r, 1e-12); err != nil {
		t.Fatal(err)
	}
	checkSamplerMatchesProb(t, r, 0, 80000)
	checkSamplerMatchesProb(t, r, 1, 80000)
	// Pure privacy must fail (infinite ratio through the leak outputs).
	if got := MaxPrivacyRatio(r); !math.IsInf(got, 1) {
		t.Errorf("LeakyRR pure privacy ratio should be +Inf, got %f", got)
	}
	// Hockey-stick at eps equals exactly delta.
	if got := MaxHockeyStick(r, 1.0); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("LeakyRR hockey-stick = %f, want 0.05", got)
	}
}

func TestHockeyStickPureMechanism(t *testing.T) {
	// A pure ε-LDP mechanism has zero hockey-stick divergence at level ε and
	// positive divergence below it.
	r := NewBinaryRR(1.0)
	if got := MaxHockeyStick(r, 1.0); got > 1e-12 {
		t.Errorf("pure RR has hockey-stick %g at its own eps", got)
	}
	if got := MaxHockeyStick(r, 0.5); got <= 0 {
		t.Error("hockey-stick below eps should be positive")
	}
}

func TestRandomizerMetadata(t *testing.T) {
	// Every randomizer must report coherent metadata — GenProt and the
	// experiment harness rely on these accessors.
	cases := []struct {
		r          Randomizer
		eps, delta float64
		inputs     uint64
	}{
		{NewBinaryRR(0.7), 0.7, 0, 2},
		{NewKaryRR(1.1, 6), 1.1, 0, 6},
		{NewHadamardBit(0.9, 32), 0.9, 0, 32},
		{NewOUE(1.3, 5), 1.3, 0, 5},
		{NewLeakyRR(0.4, 0.02), 0.4, 0.02, 2},
	}
	for i, c := range cases {
		if c.r.Epsilon() != c.eps {
			t.Errorf("case %d: Epsilon = %f", i, c.r.Epsilon())
		}
		if c.r.Delta() != c.delta {
			t.Errorf("case %d: Delta = %f", i, c.r.Delta())
		}
		if c.r.NumInputs() != c.inputs {
			t.Errorf("case %d: NumInputs = %d", i, c.r.NumInputs())
		}
		if c.r.NullInput() >= c.r.NumInputs() {
			t.Errorf("case %d: NullInput outside domain", i)
		}
		if c.r.NumOutputs() == 0 {
			t.Errorf("case %d: no outputs", i)
		}
	}
	h := NewHadamardBit(1, 64)
	if h.T() != 64 {
		t.Errorf("HadamardBit.T = %d", h.T())
	}
	k := NewKaryRR(1, 4)
	if k.PKeep() <= 0.25 || k.PKeep() >= 1 {
		t.Errorf("KaryRR.PKeep = %f", k.PKeep())
	}
	r := NewRAPPOR(1, 16, 2, 1, 2)
	if r.BloomBits() != 16 || r.NumHashes() != 2 {
		t.Error("RAPPOR accessors wrong")
	}
	if r.PKeep() <= 0.5 || r.PKeep() >= 1 {
		t.Errorf("RAPPOR.PKeep = %f", r.PKeep())
	}
	o := NewOUE(1, 8)
	if o.K() != 8 {
		t.Errorf("OUE.K = %d", o.K())
	}
	if o.Q() <= 0 || o.Q() >= 0.5 {
		t.Errorf("OUE.Q = %f", o.Q())
	}
}

func TestSampleInputValidationPanics(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	cases := []func(){
		func() { NewBinaryRR(1).Sample(2, rng) },
		func() { NewKaryRR(1, 4).Sample(4, rng) },
		func() { NewHadamardBit(1, 8).Sample(8, rng) },
		func() { NewOUE(1, 4).Sample(4, rng) },
		func() { NewLeakyRR(1, 0.1).Sample(2, rng) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: out-of-domain input accepted", i)
				}
			}()
			f()
		}()
	}
}

func TestValidationPanics(t *testing.T) {
	cases := []func(){
		func() { NewKaryRR(1, 1) },
		func() { NewKaryRR(-1, 5) },
		func() { NewHadamardBit(1, 7) },
		func() { NewHadamardBit(0, 8) },
		func() { NewRAPPOR(1, 1, 1, 0, 0) },
		func() { NewRAPPOR(1, 8, 9, 0, 0) },
		func() { NewOUE(1, 1) },
		func() { NewOUE(1, 65) },
		func() { NewLeakyRR(1, 0) },
		func() { NewLeakyRR(1, 1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: invalid construction accepted", i)
				}
			}()
			f()
		}()
	}
}

func BenchmarkBinaryRRSample(b *testing.B) {
	r := NewBinaryRR(1)
	rng := rand.New(rand.NewPCG(1, 1))
	for i := 0; i < b.N; i++ {
		r.Sample(uint64(i&1), rng)
	}
}

func BenchmarkHadamardBitSample(b *testing.B) {
	r := NewHadamardBit(1, 1024)
	rng := rand.New(rand.NewPCG(1, 1))
	for i := 0; i < b.N; i++ {
		r.Sample(uint64(i&1023), rng)
	}
}
