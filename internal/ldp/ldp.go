// Package ldp implements the local randomizers of the paper: binary and
// k-ary randomized response, the Hadamard one-bit randomizer underlying the
// Hashtogram frequency oracle, basic one-time RAPPOR (the Chrome deployment
// cited in the paper's introduction), optimized unary encoding, and a
// deliberately approximate (ε,δ)-LDP "leaky" randomizer used to exercise the
// GenProt purification transformation of Section 6.
//
// Every randomizer exposes its exact output distribution via Prob, which
// enables three things the paper's results depend on:
//
//   - privacy can be *verified by enumeration* in tests (Definition 1.1 is a
//     universally quantified statement over inputs and outputs);
//   - GenProt (Section 6) can compute its rejection-sampling acceptance
//     probabilities p_{i,t} = Pr[A(x)=y] / (2·Pr[A(⊥)=y]);
//   - the hockey-stick divergence (the tight δ in (ε,δ)-LDP) is computable.
package ldp

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Randomizer is a discrete local randomizer A: X -> Y with X ⊆ uint64 inputs
// and outputs in [0, NumOutputs). Implementations are immutable and safe for
// concurrent use.
type Randomizer interface {
	// Sample draws one report A(x).
	Sample(x uint64, rng *rand.Rand) uint64
	// Prob returns Pr[A(x) = y] exactly.
	Prob(x, y uint64) float64
	// NumInputs returns the size of the legal input domain [0, NumInputs).
	NumInputs() uint64
	// NumOutputs returns the size of the output domain [0, NumOutputs).
	NumOutputs() uint64
	// NullInput returns the reference input ⊥ used by GenProt.
	NullInput() uint64
	// Epsilon returns the designed pure-privacy parameter (the ε such that
	// the randomizer claims (ε, Delta())-LDP).
	Epsilon() float64
	// Delta returns the designed approximation parameter (0 for pure LDP).
	Delta() float64
}

// PrivacyRatio returns max over outputs y of Pr[A(x)=y] / Pr[A(x')=y]
// (treating 0/0 as 1 and p/0 as +Inf). For a pure ε-LDP randomizer this is
// at most e^ε for all input pairs.
func PrivacyRatio(r Randomizer, x, xp uint64) float64 {
	maxRatio := 0.0
	for y := uint64(0); y < r.NumOutputs(); y++ {
		p := r.Prob(x, y)
		q := r.Prob(xp, y)
		switch {
		case p == 0:
			continue
		case q == 0:
			return math.Inf(1)
		default:
			if ratio := p / q; ratio > maxRatio {
				maxRatio = ratio
			}
		}
	}
	return maxRatio
}

// HockeyStick returns the hockey-stick divergence
// Σ_y max(0, Pr[A(x)=y] - e^ε·Pr[A(x')=y]), i.e. the smallest δ for which
// the pair (x, x') satisfies the (ε, δ) inequality in Definition 2.1.
func HockeyStick(r Randomizer, x, xp uint64, eps float64) float64 {
	e := math.Exp(eps)
	s := 0.0
	for y := uint64(0); y < r.NumOutputs(); y++ {
		if d := r.Prob(x, y) - e*r.Prob(xp, y); d > 0 {
			s += d
		}
	}
	return s
}

// MaxPrivacyRatio exhaustively checks all ordered input pairs and returns
// the largest privacy ratio. Intended for tests on small input domains.
func MaxPrivacyRatio(r Randomizer) float64 {
	worst := 0.0
	for x := uint64(0); x < r.NumInputs(); x++ {
		for xp := uint64(0); xp < r.NumInputs(); xp++ {
			if x == xp {
				continue
			}
			if v := PrivacyRatio(r, x, xp); v > worst {
				worst = v
			}
		}
	}
	return worst
}

// MaxHockeyStick exhaustively checks all ordered input pairs and returns the
// largest hockey-stick divergence at level eps.
func MaxHockeyStick(r Randomizer, eps float64) float64 {
	worst := 0.0
	for x := uint64(0); x < r.NumInputs(); x++ {
		for xp := uint64(0); xp < r.NumInputs(); xp++ {
			if x == xp {
				continue
			}
			if v := HockeyStick(r, x, xp, eps); v > worst {
				worst = v
			}
		}
	}
	return worst
}

// checkTotalMass is a test helper exposed for reuse: verifies Σ_y Prob(x,y)
// = 1 within tol for every input.
func checkTotalMass(r Randomizer, tol float64) error {
	for x := uint64(0); x < r.NumInputs(); x++ {
		s := 0.0
		for y := uint64(0); y < r.NumOutputs(); y++ {
			s += r.Prob(x, y)
		}
		if math.Abs(s-1) > tol {
			return fmt.Errorf("ldp: Prob(%d, ·) sums to %v", x, s)
		}
	}
	return nil
}

// BinaryRR is the classic ε-randomized-response on one bit (the mechanism
// M_i of the paper's Theorem 5.1): report the true bit with probability
// e^ε/(e^ε+1), the flipped bit otherwise.
type BinaryRR struct {
	eps   float64
	pKeep float64
}

// NewBinaryRR constructs binary randomized response with parameter eps > 0.
func NewBinaryRR(eps float64) BinaryRR {
	if eps <= 0 {
		panic("ldp: BinaryRR needs eps > 0")
	}
	e := math.Exp(eps)
	return BinaryRR{eps: eps, pKeep: e / (e + 1)}
}

// Sample implements Randomizer.
func (r BinaryRR) Sample(x uint64, rng *rand.Rand) uint64 {
	if x > 1 {
		panic("ldp: BinaryRR input must be a bit")
	}
	if rng.Float64() < r.pKeep {
		return x
	}
	return 1 - x
}

// Prob implements Randomizer.
func (r BinaryRR) Prob(x, y uint64) float64 {
	if x > 1 || y > 1 {
		return 0
	}
	if x == y {
		return r.pKeep
	}
	return 1 - r.pKeep
}

// NumInputs implements Randomizer.
func (r BinaryRR) NumInputs() uint64 { return 2 }

// NumOutputs implements Randomizer.
func (r BinaryRR) NumOutputs() uint64 { return 2 }

// NullInput implements Randomizer.
func (r BinaryRR) NullInput() uint64 { return 0 }

// Epsilon implements Randomizer.
func (r BinaryRR) Epsilon() float64 { return r.eps }

// Delta implements Randomizer.
func (r BinaryRR) Delta() float64 { return 0 }

// PKeep returns the probability of reporting the true bit.
func (r BinaryRR) PKeep() float64 { return r.pKeep }

// Unbias converts an observed count of 1-reports among n users into an
// unbiased estimate of the number of users whose true bit is 1.
func (r BinaryRR) Unbias(ones, n int) float64 {
	q := 1 - r.pKeep
	return (float64(ones) - float64(n)*q) / (r.pKeep - q)
}

// KaryRR is generalized randomized response over [k]: keep the value with
// probability e^ε/(e^ε+k-1), otherwise report one of the k-1 other values
// uniformly.
type KaryRR struct {
	eps   float64
	k     uint64
	pKeep float64
}

// NewKaryRR constructs k-ary randomized response; k >= 2, eps > 0.
func NewKaryRR(eps float64, k uint64) KaryRR {
	if eps <= 0 {
		panic("ldp: KaryRR needs eps > 0")
	}
	if k < 2 {
		panic("ldp: KaryRR needs k >= 2")
	}
	e := math.Exp(eps)
	return KaryRR{eps: eps, k: k, pKeep: e / (e + float64(k) - 1)}
}

// Sample implements Randomizer.
func (r KaryRR) Sample(x uint64, rng *rand.Rand) uint64 {
	if x >= r.k {
		panic("ldp: KaryRR input out of range")
	}
	if rng.Float64() < r.pKeep {
		return x
	}
	// uniform over the other k-1 values
	v := rng.Uint64N(r.k - 1)
	if v >= x {
		v++
	}
	return v
}

// Prob implements Randomizer.
func (r KaryRR) Prob(x, y uint64) float64 {
	if x >= r.k || y >= r.k {
		return 0
	}
	if x == y {
		return r.pKeep
	}
	return (1 - r.pKeep) / float64(r.k-1)
}

// NumInputs implements Randomizer.
func (r KaryRR) NumInputs() uint64 { return r.k }

// NumOutputs implements Randomizer.
func (r KaryRR) NumOutputs() uint64 { return r.k }

// NullInput implements Randomizer.
func (r KaryRR) NullInput() uint64 { return 0 }

// Epsilon implements Randomizer.
func (r KaryRR) Epsilon() float64 { return r.eps }

// Delta implements Randomizer.
func (r KaryRR) Delta() float64 { return 0 }

// PKeep returns the probability of reporting the true value.
func (r KaryRR) PKeep() float64 { return r.pKeep }

// Unbias converts an observed count of reports equal to some value into an
// unbiased estimate of the number of users truly holding that value.
func (r KaryRR) Unbias(count, n int) float64 {
	q := (1 - r.pKeep) / float64(r.k-1)
	return (float64(count) - float64(n)*q) / (r.pKeep - q)
}
