package graph

import (
	"math/rand/v2"
	"reflect"
	"sort"
	"testing"
)

func TestBasics(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	if g.N() != 5 {
		t.Errorf("N = %d", g.N())
	}
	if g.NumEdges() != 3 {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
	if g.Degree(1) != 2 {
		t.Errorf("Degree(1) = %d", g.Degree(1))
	}
	defer func() {
		if recover() == nil {
			t.Error("self-loop accepted")
		}
	}()
	g.AddEdge(2, 2)
}

func TestParallelEdges(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1)
	if g.Degree(0) != 2 || g.NumEdges() != 2 {
		t.Error("parallel edges not counted")
	}
}

func TestComponents(t *testing.T) {
	g := New(7)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	// 5, 6 isolated
	comps := g.Components(nil)
	want := [][]int{{0, 1, 2}, {3, 4}, {5}, {6}}
	if !reflect.DeepEqual(comps, want) {
		t.Fatalf("components = %v", comps)
	}
	// Restricted: kill vertex 1, splitting the first component.
	alive := []bool{true, false, true, true, true, true, true}
	comps = g.Components(alive)
	want = [][]int{{0}, {2}, {3, 4}, {5}, {6}}
	if !reflect.DeepEqual(comps, want) {
		t.Fatalf("restricted components = %v", comps)
	}
}

func TestVolumeCutConductance(t *testing.T) {
	// Two triangles joined by one edge.
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	g.AddEdge(5, 3)
	g.AddEdge(2, 3)
	if v := g.Volume([]int{0, 1, 2}); v != 7 {
		t.Errorf("Volume = %d", v)
	}
	mask := []bool{true, true, true, false, false, false}
	if c := g.CutSize(mask); c != 1 {
		t.Errorf("CutSize = %d", c)
	}
	all := []int{0, 1, 2, 3, 4, 5}
	inS := map[int]bool{0: true, 1: true, 2: true}
	cond := g.Conductance(all, inS)
	if cond != 1.0/7.0 {
		t.Errorf("Conductance = %f, want %f", cond, 1.0/7.0)
	}
	// Degenerate side.
	if c := g.Conductance(all, map[int]bool{}); c != 1 {
		t.Errorf("empty-side conductance = %f", c)
	}
}

func TestPruneLowDegree(t *testing.T) {
	// A 4-clique with a pendant path hanging off it.
	g := New(7)
	clique := []int{0, 1, 2, 3}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddEdge(clique[i], clique[j])
		}
	}
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	g.AddEdge(5, 6)
	got := g.PruneLowDegree([]int{0, 1, 2, 3, 4, 5, 6}, 1, 0)
	// Path vertices have degree <= 1 after iterative removal of the tail.
	want := []int{0, 1, 2, 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("PruneLowDegree = %v", got)
	}
	// A single pass only removes the current offenders: vertex 6 (degree 1)
	// and nothing upstream of it yet... vertices 4,5 have degree 2 > 1 on the
	// first pass, 6 has degree 1.
	single := g.PruneLowDegree([]int{0, 1, 2, 3, 4, 5, 6}, 1, 1)
	if !reflect.DeepEqual(single, []int{0, 1, 2, 3, 4, 5}) {
		t.Fatalf("single-pass PruneLowDegree = %v", single)
	}
	// Pruning with threshold >= clique degree empties everything.
	if got := g.PruneLowDegree([]int{0, 1, 2, 3}, 3, 0); len(got) != 0 {
		t.Fatalf("over-pruning left %v", got)
	}
}

func TestFindClustersIsolatedComponents(t *testing.T) {
	// Three disjoint 5-cliques must come back exactly.
	g := New(15)
	for c := 0; c < 3; c++ {
		base := c * 5
		for i := 0; i < 5; i++ {
			for j := i + 1; j < 5; j++ {
				g.AddEdge(base+i, base+j)
			}
		}
	}
	rng := rand.New(rand.NewPCG(1, 1))
	clusters := g.FindClusters(ClusterOptions{MaxSize: 8, Rand: rng})
	if len(clusters) != 3 {
		t.Fatalf("got %d clusters", len(clusters))
	}
	for c, cl := range clusters {
		want := []int{c * 5, c*5 + 1, c*5 + 2, c*5 + 3, c*5 + 4}
		if !reflect.DeepEqual(cl, want) {
			t.Fatalf("cluster %d = %v", c, cl)
		}
	}
}

func TestFindClustersSplitsMergedCliques(t *testing.T) {
	// Two 10-cliques connected by a single bridge edge: one component of
	// size 20 that must be split into the two cliques.
	g := New(20)
	for c := 0; c < 2; c++ {
		base := c * 10
		for i := 0; i < 10; i++ {
			for j := i + 1; j < 10; j++ {
				g.AddEdge(base+i, base+j)
			}
		}
	}
	g.AddEdge(9, 10)
	rng := rand.New(rand.NewPCG(2, 2))
	clusters := g.FindClusters(ClusterOptions{MaxSize: 12, Rand: rng})
	if len(clusters) != 2 {
		t.Fatalf("got %d clusters: %v", len(clusters), clusters)
	}
	sort.Slice(clusters, func(i, j int) bool { return clusters[i][0] < clusters[j][0] })
	if clusters[0][0] != 0 || clusters[0][len(clusters[0])-1] != 9 {
		t.Fatalf("first cluster = %v", clusters[0])
	}
	if clusters[1][0] != 10 || clusters[1][len(clusters[1])-1] != 19 {
		t.Fatalf("second cluster = %v", clusters[1])
	}
}

func TestFindClustersKeepsWellConnectedOversized(t *testing.T) {
	// A single 16-clique with MaxSize 10: every cut has high conductance, so
	// it must be emitted whole rather than shredded.
	g := New(16)
	for i := 0; i < 16; i++ {
		for j := i + 1; j < 16; j++ {
			g.AddEdge(i, j)
		}
	}
	rng := rand.New(rand.NewPCG(3, 3))
	clusters := g.FindClusters(ClusterOptions{MaxSize: 10, Rand: rng, MinConductance: 0.3})
	if len(clusters) != 1 || len(clusters[0]) != 16 {
		t.Fatalf("clique was shredded: %v", clusters)
	}
}

func TestFindClustersValidation(t *testing.T) {
	g := New(3)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MaxSize 0 accepted")
			}
		}()
		g.FindClusters(ClusterOptions{MaxSize: 0, Rand: rand.New(rand.NewPCG(1, 1))})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil Rand accepted")
			}
		}()
		g.FindClusters(ClusterOptions{MaxSize: 5})
	}()
}

func TestFindClustersEmptyGraph(t *testing.T) {
	g := New(0)
	rng := rand.New(rand.NewPCG(4, 4))
	if clusters := g.FindClusters(ClusterOptions{MaxSize: 5, Rand: rng}); len(clusters) != 0 {
		t.Fatalf("clusters of empty graph: %v", clusters)
	}
}
