package graph

import (
	"math"
	"math/rand/v2"
	"sort"
)

// ClusterOptions tunes FindClusters.
type ClusterOptions struct {
	// MaxSize is the largest cluster the caller expects (the decoder passes
	// ~2M for expanders on M vertices). Components at or below this size are
	// emitted whole; larger components are split spectrally.
	MaxSize int
	// MinConductance stops recursion: if the best sweep cut of an oversized
	// component has conductance above this, the component is emitted as-is
	// (it really is one well-connected cluster).
	MinConductance float64
	// PowerIters bounds the power-iteration count per bisection.
	PowerIters int
	// Rand drives the power-iteration initialization. Must be non-nil.
	Rand *rand.Rand
}

// FindClusters partitions the graph into candidate clusters: connected
// components, with components larger than opts.MaxSize recursively split by
// spectral bisection (sweep cut over an approximate second eigenvector of
// the normalized adjacency). This is the engineering stand-in for the
// cluster-preserving clustering of [22] Theorem B.3: in the protocol's
// operating regime clusters are whp isolated components and the bisection
// path never runs; when decoding noise merges clusters, bisection recovers
// low-conductance pieces.
func (g *Graph) FindClusters(opts ClusterOptions) [][]int {
	if opts.MaxSize <= 0 {
		panic("graph: ClusterOptions.MaxSize must be positive")
	}
	if opts.Rand == nil {
		panic("graph: ClusterOptions.Rand must be set")
	}
	if opts.PowerIters <= 0 {
		opts.PowerIters = 100
	}
	if opts.MinConductance <= 0 {
		opts.MinConductance = 0.35
	}
	var out [][]int
	for _, comp := range g.Components(nil) {
		g.splitRecursive(comp, opts, 0, &out)
	}
	return out
}

const maxSplitDepth = 30

func (g *Graph) splitRecursive(comp []int, opts ClusterOptions, depth int, out *[][]int) {
	if len(comp) <= opts.MaxSize || depth >= maxSplitDepth {
		*out = append(*out, comp)
		return
	}
	a, b, cond := g.spectralBisect(comp, opts)
	if a == nil || cond > opts.MinConductance {
		*out = append(*out, comp)
		return
	}
	// The cut may disconnect each side further; re-run components restricted
	// to each half before recursing, so clusters separated by the cut are
	// not glued by the recursion bookkeeping.
	for _, half := range [][]int{a, b} {
		alive := make([]bool, g.N())
		for _, u := range half {
			alive[u] = true
		}
		for _, sub := range g.Components(alive) {
			g.splitRecursive(sub, opts, depth+1, out)
		}
	}
}

// spectralBisect computes a sweep cut over an approximate eigenvector of the
// normalized adjacency D^{-1/2} A D^{-1/2} restricted to comp, orthogonal to
// the top eigenvector d^{1/2}. Returns the two sides and the cut's
// conductance, or (nil, nil, 1) if no useful cut exists.
func (g *Graph) spectralBisect(comp []int, opts ClusterOptions) ([]int, []int, float64) {
	n := len(comp)
	if n < 2 {
		return nil, nil, 1
	}
	idx := make(map[int]int, n) // vertex -> local index
	for i, u := range comp {
		idx[u] = i
	}
	deg := make([]float64, n)
	for i, u := range comp {
		d := 0
		for _, v := range g.adj[u] {
			if _, ok := idx[v]; ok {
				d++
			}
		}
		if d == 0 {
			d = 1 // isolated inside comp; keep matrix well-defined
		}
		deg[i] = float64(d)
	}
	sqrtDeg := make([]float64, n)
	for i := range deg {
		sqrtDeg[i] = math.Sqrt(deg[i])
	}

	// Power iteration on M = (I + D^{-1/2} A D^{-1/2}) / 2 (PSD shift), with
	// deflation against the known top eigenvector d^{1/2}.
	v := make([]float64, n)
	for i := range v {
		v[i] = opts.Rand.Float64()*2 - 1
	}
	tmp := make([]float64, n)
	orthogonalize := func(x []float64) {
		dot, norm := 0.0, 0.0
		for i := range x {
			dot += x[i] * sqrtDeg[i]
			norm += sqrtDeg[i] * sqrtDeg[i]
		}
		c := dot / norm
		for i := range x {
			x[i] -= c * sqrtDeg[i]
		}
	}
	normalize := func(x []float64) float64 {
		s := 0.0
		for _, xi := range x {
			s += xi * xi
		}
		s = math.Sqrt(s)
		if s > 0 {
			for i := range x {
				x[i] /= s
			}
		}
		return s
	}
	orthogonalize(v)
	if normalize(v) == 0 {
		return nil, nil, 1
	}
	for it := 0; it < opts.PowerIters; it++ {
		for i := range tmp {
			tmp[i] = 0
		}
		for i, u := range comp {
			xi := v[i] / sqrtDeg[i]
			for _, w := range g.adj[u] {
				if j, ok := idx[w]; ok {
					tmp[j] += xi / sqrtDeg[j]
				}
			}
		}
		for i := range tmp {
			v[i] = (v[i] + tmp[i]) / 2
		}
		orthogonalize(v)
		if normalize(v) == 0 {
			return nil, nil, 1
		}
	}

	// Sweep cut on the embedding x_i = v_i / sqrtDeg_i.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return v[order[a]]/sqrtDeg[order[a]] < v[order[b]]/sqrtDeg[order[b]]
	})

	inS := make([]bool, n)
	volS, volAll := 0.0, 0.0
	for i := range deg {
		volAll += deg[i]
	}
	cut := 0.0
	bestCond, bestK := math.Inf(1), -1
	for k := 0; k < n-1; k++ {
		i := order[k]
		u := comp[i]
		inS[i] = true
		volS += deg[i]
		for _, w := range g.adj[u] {
			if j, ok := idx[w]; ok {
				if inS[j] {
					cut--
				} else {
					cut++
				}
			}
		}
		minVol := math.Min(volS, volAll-volS)
		if minVol <= 0 {
			continue
		}
		cond := cut / minVol
		if cond < bestCond {
			bestCond, bestK = cond, k
		}
	}
	if bestK < 0 {
		return nil, nil, 1
	}
	var a, b []int
	for k, i := range order {
		if k <= bestK {
			a = append(a, comp[i])
		} else {
			b = append(b, comp[i])
		}
	}
	sort.Ints(a)
	sort.Ints(b)
	return a, b, bestCond
}

// PruneLowDegree returns the subset of vs whose degree *within vs* exceeds
// minDegree, removing offenders in at most rounds passes (rounds <= 0 means
// iterate until stable). The list-recovery decoder uses a single pass with
// minDegree = d/2, exactly as in Appendix B — iterating can cascade and
// amputate genuine low-degree fringes of a damaged cluster.
func (g *Graph) PruneLowDegree(vs []int, minDegree, rounds int) []int {
	in := make(map[int]bool, len(vs))
	for _, u := range vs {
		in[u] = true
	}
	for r := 0; rounds <= 0 || r < rounds; r++ {
		var victims []int
		for _, u := range vs {
			if !in[u] {
				continue
			}
			d := 0
			for _, v := range g.adj[u] {
				if in[v] {
					d++
				}
			}
			if d <= minDegree {
				victims = append(victims, u)
			}
		}
		if len(victims) == 0 {
			break
		}
		for _, u := range victims {
			in[u] = false
		}
	}
	var out []int
	for _, u := range vs {
		if in[u] {
			out = append(out, u)
		}
	}
	return out
}
