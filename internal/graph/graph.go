// Package graph provides the undirected-graph machinery for the decoder of
// the unique-list-recoverable code: adjacency structures, connected
// components, conductance, and the spectral cluster finder standing in for
// Theorem B.3 of the paper (DESIGN.md substitution S2).
package graph

import "sort"

// Graph is an undirected multigraph on vertices 0..N-1 stored as adjacency
// lists. Parallel edges are permitted (the expander construction may create
// them); self-loops are not.
type Graph struct {
	adj [][]int
}

// New creates an empty graph on n vertices.
func New(n int) *Graph {
	return &Graph{adj: make([][]int, n)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// AddEdge inserts an undirected edge {u, v}. Self-loops are rejected.
func (g *Graph) AddEdge(u, v int) {
	if u == v {
		panic("graph: self-loop")
	}
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
}

// Degree returns the degree of u (counting parallel edges).
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// Neighbors returns u's adjacency list (shared storage; do not mutate).
func (g *Graph) Neighbors(u int) []int { return g.adj[u] }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total / 2
}

// Components returns the connected components restricted to the vertex set
// `alive` (nil means all vertices), each sorted ascending.
func (g *Graph) Components(alive []bool) [][]int {
	n := g.N()
	visited := make([]bool, n)
	var comps [][]int
	stack := make([]int, 0, 64)
	for s := 0; s < n; s++ {
		if visited[s] || (alive != nil && !alive[s]) {
			continue
		}
		var comp []int
		stack = append(stack[:0], s)
		visited[s] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for _, v := range g.adj[u] {
				if !visited[v] && (alive == nil || alive[v]) {
					visited[v] = true
					stack = append(stack, v)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// Volume returns the sum of degrees over the vertex set.
func (g *Graph) Volume(vs []int) int {
	v := 0
	for _, u := range vs {
		v += len(g.adj[u])
	}
	return v
}

// CutSize returns the number of edges with exactly one endpoint in set
// (given as a membership mask over all vertices).
func (g *Graph) CutSize(inSet []bool) int {
	cut := 0
	for u := range g.adj {
		if !inSet[u] {
			continue
		}
		for _, v := range g.adj[u] {
			if !inSet[v] {
				cut++
			}
		}
	}
	return cut
}

// Conductance returns cut(S, V\S) / min(vol(S), vol(V\S)) for the subset S
// of the sub-vertex-set vs. Returns 1 when either side has zero volume.
func (g *Graph) Conductance(vs []int, inS map[int]bool) float64 {
	volS, volT := 0, 0
	mask := make([]bool, g.N())
	sub := make([]bool, g.N())
	for _, u := range vs {
		sub[u] = true
	}
	for _, u := range vs {
		if inS[u] {
			mask[u] = true
			volS += len(g.adj[u])
		} else {
			volT += len(g.adj[u])
		}
	}
	if volS == 0 || volT == 0 {
		return 1
	}
	cut := 0
	for _, u := range vs {
		if !inS[u] {
			continue
		}
		for _, v := range g.adj[u] {
			if sub[v] && !mask[v] {
				cut++
			}
		}
	}
	minVol := volS
	if volT < minVol {
		minVol = volT
	}
	return float64(cut) / float64(minVol)
}
