package listrec

import (
	"bytes"
	"math/rand/v2"
	"sort"
	"testing"
)

func testParams() Params {
	return Params{
		ItemBytes: 8,
		M:         16,
		Y:         64,
		F:         8,
		D:         6,
	}
}

func mustCode(t *testing.T, p Params, seed uint64) *Code {
	t.Helper()
	c, err := New(p, rand.New(rand.NewPCG(seed, seed+1)))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func randItem(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.UintN(256))
	}
	return b
}

// buildLists scatters the encodings of items into M lists, obeying the
// unique-Y condition (first writer wins on a Y collision, mimicking the
// argmax behaviour of the protocol).
func buildLists(c *Code, items [][]byte) [][]Symbol {
	lists := make([][]Symbol, c.M())
	used := make([]map[int]bool, c.M())
	for m := range used {
		used[m] = make(map[int]bool)
	}
	for _, it := range items {
		enc, err := c.Encode(it)
		if err != nil {
			panic(err)
		}
		for m, s := range enc {
			if !used[m][s.Y] {
				used[m][s.Y] = true
				lists[m] = append(lists[m], s)
			}
		}
	}
	return lists
}

func containsItem(items [][]byte, want []byte) bool {
	for _, it := range items {
		if bytes.Equal(it, want) {
			return true
		}
	}
	return false
}

func TestParamsValidation(t *testing.T) {
	bad := []Params{
		{ItemBytes: 0, M: 16, Y: 64, F: 8, D: 6},
		{ItemBytes: 8, M: 1, Y: 64, F: 8, D: 6},
		{ItemBytes: 16, M: 16, Y: 64, F: 8, D: 6},  // rate >= 1
		{ItemBytes: 8, M: 16, Y: 63, F: 8, D: 6},   // Y not pow2
		{ItemBytes: 8, M: 16, Y: 64, F: 128, D: 6}, // F > Y
		{ItemBytes: 8, M: 16, Y: 64, F: 8, D: 5},   // odd D
		{ItemBytes: 8, M: 16, Y: 64, F: 8, D: 6, MinAgree: 1.5},
		{ItemBytes: 128, M: 200, ChunkBytes: 2, Y: 64, F: 8, D: 6}, // cw > 255
	}
	rng := rand.New(rand.NewPCG(1, 1))
	for i, p := range bad {
		if _, err := New(p, rng); err == nil {
			t.Errorf("case %d: invalid params accepted: %+v", i, p)
		}
	}
}

func TestZBitsPacking(t *testing.T) {
	c := mustCode(t, testParams(), 10)
	if got, want := c.ZBits(), 8+6*3; got != want {
		t.Fatalf("ZBits = %d, want %d", got, want)
	}
	// Pack/unpack roundtrip via an encode.
	rng := rand.New(rand.NewPCG(2, 2))
	item := randItem(rng, 8)
	enc, err := c.Encode(item)
	if err != nil {
		t.Fatal(err)
	}
	for m, s := range enc {
		if s.Z >= 1<<uint(c.ZBits()) {
			t.Fatalf("coordinate %d payload exceeds ZBits: %d", m, s.Z)
		}
		chunk, fps := c.unpack(s.Z)
		if got := c.PackZ(chunk, fps); got != s.Z {
			t.Fatalf("pack/unpack mismatch at %d: %d != %d", m, got, s.Z)
		}
	}
}

func TestEncodeDeterministicAndHashConsistent(t *testing.T) {
	c := mustCode(t, testParams(), 11)
	rng := rand.New(rand.NewPCG(3, 3))
	item := randItem(rng, 8)
	e1, _ := c.Encode(item)
	e2, _ := c.Encode(item)
	for m := range e1 {
		if e1[m] != e2[m] {
			t.Fatal("Encode not deterministic")
		}
		if e1[m].Y != c.Hash(m, item) {
			t.Fatalf("Enc(x)_%d.Y != h_%d(x)", m, m)
		}
	}
	if _, err := c.Encode(make([]byte, 7)); err == nil {
		t.Error("wrong-length item accepted")
	}
}

func TestDecodeSingleItemClean(t *testing.T) {
	c := mustCode(t, testParams(), 12)
	rng := rand.New(rand.NewPCG(4, 4))
	item := randItem(rng, 8)
	lists := buildLists(c, [][]byte{item})
	got, err := c.Decode(lists, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !bytes.Equal(got[0], item) {
		t.Fatalf("Decode = %v, want [%x]", got, item)
	}
}

func TestDecodeManyItems(t *testing.T) {
	c := mustCode(t, testParams(), 13)
	rng := rand.New(rand.NewPCG(5, 5))
	var items [][]byte
	for i := 0; i < 12; i++ {
		items = append(items, randItem(rng, 8))
	}
	lists := buildLists(c, items)
	got, err := c.Decode(lists, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		if !containsItem(got, it) {
			t.Errorf("item %x not recovered (got %d items)", it, len(got))
		}
	}
	if len(got) > 3*len(items) {
		t.Errorf("output list blew up: %d items for %d planted", len(got), len(items))
	}
}

func TestDecodeWithDroppedCoordinates(t *testing.T) {
	// Definition 3.5: items agreeing with (1-α)M lists must be recovered.
	// Drop up to alpha*M coordinates of the planted item.
	c := mustCode(t, testParams(), 14)
	rng := rand.New(rand.NewPCG(6, 6))
	item := randItem(rng, 8)
	for _, drop := range []int{1, 2, 4} {
		lists := buildLists(c, [][]byte{item})
		perm := rng.Perm(c.M())
		for _, m := range perm[:drop] {
			lists[m] = nil
		}
		got, err := c.Decode(lists, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !containsItem(got, item) {
			t.Errorf("item lost with %d dropped coordinates", drop)
		}
	}
}

func TestDecodeWithCorruptedCoordinates(t *testing.T) {
	// Replace the payloads of a few coordinates with junk (wrong chunk and
	// wrong fingerprints): mutual-edge filtering plus RS correction must
	// still recover the item.
	c := mustCode(t, testParams(), 15)
	rng := rand.New(rand.NewPCG(7, 7))
	item := randItem(rng, 8)
	for _, corrupt := range []int{1, 2, 3} {
		lists := buildLists(c, [][]byte{item})
		perm := rng.Perm(c.M())
		for _, m := range perm[:corrupt] {
			z := lists[m][0].Z ^ 0x3f5 // flips chunk and fingerprint bits
			lists[m][0] = Symbol{Y: lists[m][0].Y, Z: z & (1<<uint(c.ZBits()) - 1)}
		}
		got, err := c.Decode(lists, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !containsItem(got, item) {
			t.Errorf("item lost with %d corrupted coordinates", corrupt)
		}
	}
}

func TestDecodeWithNoiseSymbols(t *testing.T) {
	// Junk symbols with random payloads must neither block recovery nor
	// produce verified phantom items.
	c := mustCode(t, testParams(), 16)
	rng := rand.New(rand.NewPCG(8, 8))
	var items [][]byte
	for i := 0; i < 6; i++ {
		items = append(items, randItem(rng, 8))
	}
	lists := buildLists(c, items)
	for m := range lists {
		used := make(map[int]bool)
		for _, s := range lists[m] {
			used[s.Y] = true
		}
		for j := 0; j < 8; j++ {
			y := rng.IntN(c.Params().Y)
			if used[y] {
				continue
			}
			used[y] = true
			lists[m] = append(lists[m], Symbol{Y: y, Z: rng.Uint64() & (1<<uint(c.ZBits()) - 1)})
		}
	}
	got, err := c.Decode(lists, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		if !containsItem(got, it) {
			t.Errorf("item %x lost under noise", it)
		}
	}
	// Every returned item must verify against the lists, so phantoms are
	// bounded; with 6 planted items allow nothing beyond small constants.
	if len(got) > 12 {
		t.Errorf("too many phantom items: %d", len(got))
	}
}

func TestDecodeRejectsDuplicateY(t *testing.T) {
	c := mustCode(t, testParams(), 17)
	lists := make([][]Symbol, c.M())
	lists[0] = []Symbol{{Y: 3, Z: 1}, {Y: 3, Z: 2}}
	if _, err := c.Decode(lists, 1); err == nil {
		t.Fatal("duplicate Y accepted")
	}
	lists[0] = []Symbol{{Y: c.Params().Y, Z: 1}}
	if _, err := c.Decode(lists, 1); err == nil {
		t.Fatal("out-of-range Y accepted")
	}
	if _, err := c.Decode(make([][]Symbol, 3), 1); err == nil {
		t.Fatal("wrong list count accepted")
	}
}

func TestDecodeEmptyLists(t *testing.T) {
	c := mustCode(t, testParams(), 18)
	got, err := c.Decode(make([][]Symbol, c.M()), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("decoded %d items from empty lists", len(got))
	}
}

func TestPaperExactConstructionFEqualsY(t *testing.T) {
	// F = Y recovers the construction of Theorem 3.6 verbatim (S4).
	// Y must be comfortably above the item count so that the unique-Y
	// first-writer-wins collisions stay below the code's α tolerance
	// (this is exactly the paper's Event E5 requirement on Y).
	p := Params{ItemBytes: 4, M: 12, Y: 64, F: 64, D: 4}
	c := mustCode(t, p, 19)
	rng := rand.New(rand.NewPCG(11, 11))
	var items [][]byte
	for i := 0; i < 5; i++ {
		items = append(items, randItem(rng, 4))
	}
	lists := buildLists(c, items)
	got, err := c.Decode(lists, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		if !containsItem(got, it) {
			t.Errorf("item %x not recovered with F=Y", it)
		}
	}
}

func TestTinyMCompleteGraphFallback(t *testing.T) {
	p := Params{ItemBytes: 2, M: 5, Y: 32, F: 8, D: 8} // M <= D+1 → K_5
	c := mustCode(t, p, 20)
	if c.Expander().D() != 4 {
		t.Fatalf("expected complete-graph degree 4, got %d", c.Expander().D())
	}
	rng := rand.New(rand.NewPCG(12, 12))
	item := randItem(rng, 2)
	lists := buildLists(c, [][]byte{item})
	got, err := c.Decode(lists, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !containsItem(got, item) {
		t.Fatal("item not recovered at tiny M")
	}
}

func TestSlotPairingIsInvolution(t *testing.T) {
	c := mustCode(t, testParams(), 21)
	exp := c.Expander()
	for m := 0; m < exp.M(); m++ {
		for k := range exp.Neighbors(m) {
			m2 := exp.Neighbor(m, k)
			k2 := c.slotOf[m][k]
			if k2 < 0 || k2 >= len(exp.Neighbors(m2)) {
				t.Fatalf("slot (%d,%d) pairs out of range: %d", m, k, k2)
			}
			if exp.Neighbor(m2, k2) != m {
				t.Fatalf("slot (%d,%d) pairs to (%d,%d) which points at %d",
					m, k, m2, k2, exp.Neighbor(m2, k2))
			}
			if c.slotOf[m2][k2] != k {
				t.Fatalf("slot pairing not an involution at (%d,%d)", m, k)
			}
		}
	}
}

func TestDecodeManyItemsSortedStable(t *testing.T) {
	// Decoding twice over the same lists with the same seed yields the same
	// item set: Decode derives all its randomness from the seed argument.
	c := mustCode(t, testParams(), 22)
	rng := rand.New(rand.NewPCG(13, 13))
	var items [][]byte
	for i := 0; i < 8; i++ {
		items = append(items, randItem(rng, 8))
	}
	lists := buildLists(c, items)
	a, err := c.Decode(lists, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Decode(lists, 1)
	if err != nil {
		t.Fatal(err)
	}
	key := func(xs [][]byte) []string {
		var ks []string
		for _, x := range xs {
			ks = append(ks, string(x))
		}
		sort.Strings(ks)
		return ks
	}
	ka, kb := key(a), key(b)
	if len(ka) != len(kb) {
		t.Fatalf("non-deterministic decode: %d vs %d items", len(ka), len(kb))
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatal("non-deterministic decode content")
		}
	}
}

func BenchmarkEncode(b *testing.B) {
	c, err := New(testParams(), rand.New(rand.NewPCG(1, 2)))
	if err != nil {
		b.Fatal(err)
	}
	item := []byte("8byteitm")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(item); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode20Items(b *testing.B) {
	c, err := New(testParams(), rand.New(rand.NewPCG(1, 2)))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 4))
	var items [][]byte
	for i := 0; i < 20; i++ {
		items = append(items, randItem(rng, 8))
	}
	lists := buildLists(c, items)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(lists, 1); err != nil {
			b.Fatal(err)
		}
	}
}
