package listrec

import (
	"errors"
	"fmt"
	"math/rand/v2"

	"ldphh/internal/dist"
	"ldphh/internal/ecc"
	"ldphh/internal/graph"
)

// Decode recovers all items x whose encodings agree with at least a
// MinAgree fraction of the lists (Definition 3.5). lists must have length M;
// within each list the Y values must be distinct (the "unique" condition,
// guaranteed by the PrivateExpanderSketch argmax construction).
//
// seed pins the call's entire randomness: Decode derives a private PCG
// stream from it (dist.SubStream) that drives the spectral refinement path
// of the cluster finder, so the same (lists, seed) pair always returns the
// same items in the same order and concurrent Decode calls share no mutable
// state. Callers decoding many bucket lists in parallel label each call
// with its own seed (e.g. dist.Mix(rootSeed, bucket)); decoding is fully
// deterministic even without that care whenever clusters arrive as isolated
// components, which is the whp case.
//
// Decoding iterates a peeling loop (part of DESIGN.md substitution S2): when
// short fingerprints glue several items' expander copies into one component,
// the pass recovers at least the cleanest items; their symbols are then
// removed from the lists and the graph rebuilt, which isolates the remaining
// copies. The loop runs to a fixpoint.
func (c *Code) Decode(lists [][]Symbol, seed uint64) ([][]byte, error) {
	if len(lists) != c.p.M {
		return nil, fmt.Errorf("listrec: got %d lists, want %d", len(lists), c.p.M)
	}
	for m, list := range lists {
		seen := make(map[int]bool, len(list))
		for _, s := range list {
			if s.Y < 0 || s.Y >= c.p.Y {
				return nil, fmt.Errorf("listrec: list %d has out-of-range Y=%d", m, s.Y)
			}
			if seen[s.Y] {
				return nil, fmt.Errorf("listrec: list %d violates the unique-Y condition at Y=%d", m, s.Y)
			}
			seen[s.Y] = true
		}
	}

	rng := dist.SubStream(seed, 0xDEC0DE)
	remaining := make([][]Symbol, len(lists))
	for m := range lists {
		remaining[m] = append([]Symbol(nil), lists[m]...)
	}
	var out [][]byte
	seenItems := make(map[string]bool)
	for round := 0; ; round++ {
		items := c.decodeOnce(remaining, lists, rng)
		fresh := 0
		for _, it := range items {
			if !seenItems[string(it)] {
				seenItems[string(it)] = true
				out = append(out, it)
				fresh++
				// Peel: remove this item's exact symbols from the working
				// lists so remaining clusters decouple next round.
				enc, err := c.Encode(it)
				if err != nil {
					return nil, err
				}
				for m, s := range enc {
					for i, have := range remaining[m] {
						if have == s {
							remaining[m] = append(remaining[m][:i:i], remaining[m][i+1:]...)
							break
						}
					}
				}
			}
		}
		if fresh == 0 {
			return out, nil
		}
	}
}

// decodeOnce runs one graph-cluster-decode pass over work, verifying
// candidates against the original (unpeeled) lists.
func (c *Code) decodeOnce(work, original [][]Symbol, rng *rand.Rand) [][]byte {
	lists := work

	// Vertices: one per present (m, y) pair, in compact order.
	var verts []vert
	index := make(map[[2]int]int) // (m, y) -> vertex id
	for m, list := range lists {
		for _, s := range list {
			chunk, fps := c.unpack(s.Z)
			index[[2]int{m, s.Y}] = len(verts)
			verts = append(verts, vert{m: m, sym: s, chunk: chunk, fps: fps})
		}
	}
	if len(verts) == 0 {
		return nil
	}

	// Mutual-edge construction: for each expander edge (m,k)<->(m',k'), join
	// vertices u=(m,y), v=(m',y') iff u's slot-k fingerprint matches φ(y')
	// and v's slot-k' fingerprint matches φ(y).
	g := graph.New(len(verts))
	for m := 0; m < c.p.M; m++ {
		for k, m2 := range c.exp.Neighbors(m) {
			k2 := c.slotOf[m][k]
			if m2 < m || (m2 == m && k2 <= k) {
				continue // each undirected edge once
			}
			for _, s := range lists[m] {
				u := index[[2]int{m, s.Y}]
				for _, s2 := range lists[m2] {
					v := index[[2]int{m2, s2.Y}]
					if verts[u].fps[k] == c.fingerprint(m, k, s2.Y) &&
						verts[v].fps[k2] == c.fingerprint(m2, k2, s.Y) {
						g.AddEdge(u, v)
					}
				}
			}
		}
	}

	clusters := g.FindClusters(graph.ClusterOptions{
		MaxSize: c.p.M + c.p.M/2,
		Rand:    rng,
	})

	var out [][]byte
	seenItems := make(map[string]bool)
	emit := func(item []byte) {
		if c.verify(item, original) && !seenItems[string(item)] {
			seenItems[string(item)] = true
			out = append(out, item)
		}
	}
	for _, cl := range clusters {
		cl = g.PruneLowDegree(cl, c.dEff/2, 1)
		if len(cl) < c.p.M/2 {
			continue
		}
		if item, ok := c.decodeCluster(verts, cl, g); ok {
			emit(item)
		}
	}
	// Seeded-growth fallback: global cuts can slice a dense multi-item
	// blob along coordinates rather than items (every piece then fails to
	// decode). Growing an assignment outward from each vertex along
	// mutually-verified edges anchors item identity locally and is immune
	// to that failure mode; verification keeps false candidates out.
	for s := range verts {
		if item, ok := c.seededGrow(verts, g, s); ok {
			emit(item)
		}
	}
	return out
}

// seededGrow attempts to reconstruct the item whose encoding contains the
// seed vertex: walk the expander's coordinates in BFS order from the seed's
// coordinate, greedily choosing at each coordinate the vertex with the most
// verified edges into the already-chosen set (ties and unconnected
// coordinates become erasures), then RS-decode.
func (c *Code) seededGrow(verts []vert, g *graph.Graph, seed int) ([]byte, bool) {
	chosen := make([]int, c.p.M)
	for m := range chosen {
		chosen[m] = -1
	}
	chosen[verts[seed].m] = seed
	inChosen := make(map[int]bool, c.p.M)
	inChosen[seed] = true

	// BFS order over the expander from the seed coordinate.
	order := make([]int, 0, c.p.M)
	seen := make([]bool, c.p.M)
	queue := []int{verts[seed].m}
	seen[verts[seed].m] = true
	for len(queue) > 0 {
		m := queue[0]
		queue = queue[1:]
		order = append(order, m)
		for _, m2 := range c.exp.Neighbors(m) {
			if !seen[m2] {
				seen[m2] = true
				queue = append(queue, m2)
			}
		}
	}

	// vertex ids grouped by coordinate
	byCoord := make([][]int, c.p.M)
	for u := range verts {
		byCoord[verts[u].m] = append(byCoord[verts[u].m], u)
	}

	for _, m := range order {
		if chosen[m] != -1 {
			continue
		}
		best, bestScore, tie := -1, 0, false
		for _, u := range byCoord[m] {
			score := 0
			for _, w := range g.Neighbors(u) {
				if inChosen[w] {
					score++
				}
			}
			switch {
			case score > bestScore:
				best, bestScore, tie = u, score, false
			case score == bestScore && score > 0:
				tie = true
			}
		}
		if best >= 0 && bestScore > 0 && !tie {
			chosen[m] = best
			inChosen[best] = true
		}
	}

	received := make([]byte, c.p.M*c.p.ChunkBytes)
	var erasures []int
	assigned := 0
	for m := 0; m < c.p.M; m++ {
		if chosen[m] == -1 {
			for b := 0; b < c.p.ChunkBytes; b++ {
				erasures = append(erasures, m*c.p.ChunkBytes+b)
			}
			continue
		}
		assigned++
		copy(received[m*c.p.ChunkBytes:], verts[chosen[m]].chunk)
	}
	if assigned < c.p.M/2 {
		return nil, false
	}
	item, err := c.rs.Decode(received, erasures)
	if err != nil {
		return nil, false
	}
	return item, true
}

// vert is a materialized (coordinate, hash-value) vertex of the decoding
// graph together with its unpacked payload.
type vert struct {
	m     int
	sym   Symbol
	chunk []byte
	fps   []uint64
}

// decodeCluster assembles a corrupted RS codeword from the cluster's chunks
// (one vertex per coordinate; ambiguous or missing coordinates become
// erasures) and decodes it.
func (c *Code) decodeCluster(verts []vert, cl []int, g *graph.Graph) ([]byte, bool) {
	inCl := make(map[int]bool, len(cl))
	for _, u := range cl {
		inCl[u] = true
	}
	// Pick, per coordinate, the cluster vertex with the most intra-cluster
	// edges; ties and absences become erasures.
	best := make([]int, c.p.M)
	bestDeg := make([]int, c.p.M)
	ambiguous := make([]bool, c.p.M)
	for m := range best {
		best[m] = -1
	}
	for _, u := range cl {
		m := verts[u].m
		deg := 0
		for _, w := range g.Neighbors(u) {
			if inCl[w] {
				deg++
			}
		}
		switch {
		case best[m] == -1 || deg > bestDeg[m]:
			best[m], bestDeg[m], ambiguous[m] = u, deg, false
		case deg == bestDeg[m]:
			ambiguous[m] = true
		}
	}
	received := make([]byte, c.p.M*c.p.ChunkBytes)
	var erasures []int
	for m := 0; m < c.p.M; m++ {
		if best[m] == -1 || ambiguous[m] {
			for b := 0; b < c.p.ChunkBytes; b++ {
				erasures = append(erasures, m*c.p.ChunkBytes+b)
			}
			continue
		}
		copy(received[m*c.p.ChunkBytes:], verts[best[m]].chunk)
	}
	item, err := c.rs.Decode(received, erasures)
	if err != nil {
		if errors.Is(err, ecc.ErrTooManyCorruptions) {
			return nil, false
		}
		return nil, false
	}
	return item, true
}

// verify re-encodes item and counts coordinates whose exact symbol appears
// in the corresponding list; accepts iff the agreement reaches MinAgree*M.
func (c *Code) verify(item []byte, lists [][]Symbol) bool {
	enc, err := c.Encode(item)
	if err != nil {
		return false
	}
	agree := 0
	for m, s := range enc {
		for _, have := range lists[m] {
			if have == s {
				agree++
				break
			}
		}
	}
	return float64(agree) >= c.p.MinAgree*float64(c.p.M)
}
