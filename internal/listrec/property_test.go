package listrec

import (
	"math/rand/v2"
	"testing"
)

// TestDefinition35Property is a randomized property test of the
// unique-list-recovery guarantee: across random code instances, random item
// sets and random per-item coordinate drops within the tolerance, every
// surviving item must be recovered.
func TestDefinition35Property(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized property sweep")
	}
	p := Params{ItemBytes: 8, M: 16, Y: 256, F: 4, D: 6}
	const rounds = 25
	for round := 0; round < rounds; round++ {
		seed := uint64(1000 + round)
		c, err := New(p, rand.New(rand.NewPCG(seed, seed^0xff)))
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewPCG(seed, 77))
		nItems := 1 + rng.IntN(8)
		var items [][]byte
		for i := 0; i < nItems; i++ {
			items = append(items, randItem(rng, 8))
		}
		lists := buildLists(c, items)
		// Drop up to 2 coordinates' symbols of the FIRST item (well within
		// the RS(16,8) erasure budget even after unique-Y collisions).
		drop := rng.IntN(3)
		enc, err := c.Encode(items[0])
		if err != nil {
			t.Fatal(err)
		}
		perm := rng.Perm(c.M())
		for _, m := range perm[:drop] {
			for i, s := range lists[m] {
				if s == enc[m] {
					lists[m] = append(lists[m][:i:i], lists[m][i+1:]...)
					break
				}
			}
		}
		got, err := c.Decode(lists, 1)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for _, it := range items {
			if !containsItem(got, it) {
				t.Errorf("round %d (seed %d, %d items, drop %d): item %x lost",
					round, seed, nItems, drop, it)
			}
		}
		// No unverifiable phantoms: every output must re-verify by
		// construction, so the count stays within a small factor.
		if len(got) > 2*nItems+2 {
			t.Errorf("round %d: %d outputs for %d items", round, len(got), nItems)
		}
	}
}

// TestDecodeAllCoordinatesCorrupted is the failure-injection counterpart:
// when more coordinates are corrupted than the code tolerates, Decode must
// return nothing for that item (never a wrong item that passes
// verification).
func TestDecodeAllCoordinatesCorrupted(t *testing.T) {
	p := Params{ItemBytes: 8, M: 16, Y: 256, F: 4, D: 6}
	c, err := New(p, rand.New(rand.NewPCG(5, 6)))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(7, 8))
	item := randItem(rng, 8)
	lists := buildLists(c, [][]byte{item})
	// Corrupt the payloads of 12 of 16 coordinates — far beyond tolerance.
	perm := rng.Perm(c.M())
	for _, m := range perm[:12] {
		lists[m][0].Z ^= 0x5a5a & (1<<uint(c.ZBits()) - 1)
	}
	got, err := c.Decode(lists, 1)
	if err != nil {
		t.Fatal(err)
	}
	if containsItem(got, item) {
		t.Error("item recovered despite 12/16 corrupted coordinates (miracle or bug)")
	}
	for _, g := range got {
		if !c.verify(g, lists) {
			t.Errorf("unverified phantom output %x", g)
		}
	}
}
