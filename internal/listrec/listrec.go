// Package listrec implements the (α, ℓ, L)-unique-list-recoverable code of
// the paper's Theorem 3.6 (proved in Appendix B, after Larsen, Nelson,
// Nguyen and Thorup, FOCS 2016).
//
// Encoding: the item is encoded with a constant-rate Reed-Solomon code
// (internal/ecc; DESIGN.md substitution S1) and the codeword is split into M
// per-coordinate chunks. The m-th code symbol is
//
//	Enc(x)_m = ( h_m(x),  Ẽnc(x)_m )
//	Ẽnc(x)_m = ( chunk_m(x), φ(h_{Γ(m)_1}(x)), ..., φ(h_{Γ(m)_d}(x)) )
//
// where h_1..h_M are pairwise independent hashes into [Y], Γ is a d-regular
// spectral expander on the M coordinates, and φ: [Y] -> [F] truncates hash
// values to fingerprints (setting F = Y recovers the paper's construction
// verbatim; see DESIGN.md substitution S4).
//
// Decoding builds the layered graph on [M]x[Y] whose edges are the
// *mutually* suggested expander edges, finds spectral clusters (the whp
// isolated corrupted copies of Γ — Appendix B), prunes low-degree vertices,
// reads one chunk per coordinate (erasing ambiguous coordinates), and runs
// errors-and-erasures RS decoding. Candidates are verified by re-encoding,
// which enforces the (1-α)-agreement condition of Definition 3.5.
package listrec

import (
	"fmt"
	"math/bits"
	"math/rand/v2"

	"ldphh/internal/ecc"
	"ldphh/internal/expander"
	"ldphh/internal/hashing"
)

// Symbol is one coordinate of a codeword: the hash value Y in [0, Params.Y)
// and the packed payload Z (chunk bytes in the low bits, then d fingerprints
// of log2(F) bits each).
type Symbol struct {
	Y int
	Z uint64
}

// Params configures the code.
type Params struct {
	ItemBytes  int     // length of domain items (RS data symbols)
	M          int     // number of coordinates; M*ChunkBytes = RS codeword length
	ChunkBytes int     // RS symbols carried per coordinate (>= 1)
	Y          int     // per-coordinate hash range, power of two
	F          int     // fingerprint range, power of two, F <= Y
	D          int     // expander degree (even)
	LambdaFrac float64 // spectral certificate: λ2 <= LambdaFrac*D (default 0.9)
	MinAgree   float64 // verification threshold as a fraction of M (default 0.6)
}

func (p *Params) setDefaults() {
	if p.ChunkBytes == 0 {
		p.ChunkBytes = 1
	}
	if p.LambdaFrac == 0 {
		p.LambdaFrac = 0.9
	}
	if p.MinAgree == 0 {
		p.MinAgree = 0.6
	}
}

func (p Params) validate() error {
	if p.ItemBytes <= 0 {
		return fmt.Errorf("listrec: ItemBytes must be positive, got %d", p.ItemBytes)
	}
	if p.M < 2 {
		return fmt.Errorf("listrec: need M >= 2, got %d", p.M)
	}
	n := p.M * p.ChunkBytes
	if n <= p.ItemBytes {
		return fmt.Errorf("listrec: codeword %d symbols not longer than message %d (rate >= 1)",
			n, p.ItemBytes)
	}
	if n > 255 {
		return fmt.Errorf("listrec: codeword %d symbols exceeds RS limit 255", n)
	}
	if p.Y < 2 || p.Y&(p.Y-1) != 0 {
		return fmt.Errorf("listrec: Y must be a power of two >= 2, got %d", p.Y)
	}
	if p.F < 2 || p.F&(p.F-1) != 0 || p.F > p.Y {
		return fmt.Errorf("listrec: F must be a power of two in [2, Y], got %d", p.F)
	}
	if p.D < 2 || p.D%2 != 0 {
		return fmt.Errorf("listrec: D must be even and >= 2, got %d", p.D)
	}
	zbits := 8*p.ChunkBytes + effectiveD(p.M, p.D)*log2(p.F)
	if zbits > 62 {
		return fmt.Errorf("listrec: packed symbol needs %d bits > 62; shrink ChunkBytes, D or F", zbits)
	}
	if p.MinAgree < 0 || p.MinAgree > 1 {
		return fmt.Errorf("listrec: MinAgree must be in [0,1], got %f", p.MinAgree)
	}
	return nil
}

// effectiveD is the degree the expander will actually have (complete-graph
// fallback for tiny M).
func effectiveD(m, d int) int {
	if m <= d+1 {
		return m - 1
	}
	return d
}

func log2(v int) int { return bits.Len(uint(v)) - 1 }

// Code is a constructed unique-list-recoverable code. Safe for concurrent
// encoding after construction.
type Code struct {
	p      Params
	rs     *ecc.Code
	exp    *expander.Expander
	hs     []hashing.KWise
	fold   hashing.Fingerprinter
	fpHash hashing.KWise // per-slot fingerprint hash (see fingerprint)
	fBits  int
	dEff   int
	slotOf [][]int // slotOf[m][k] = paired slot index k' at neighbor Γ(m)_k
}

// New constructs the code with fresh public randomness drawn from rng.
func New(p Params, rng *rand.Rand) (*Code, error) {
	p.setDefaults()
	if err := p.validate(); err != nil {
		return nil, err
	}
	rs, err := ecc.New(p.M*p.ChunkBytes, p.ItemBytes)
	if err != nil {
		return nil, err
	}
	exp, err := expander.New(p.M, p.D, p.LambdaFrac*float64(p.D), rng, 100)
	if err != nil {
		return nil, err
	}
	hs := make([]hashing.KWise, p.M)
	for m := range hs {
		hs[m] = hashing.NewKWise(2, rng)
	}
	c := &Code{
		p:      p,
		rs:     rs,
		exp:    exp,
		hs:     hs,
		fold:   hashing.NewFingerprinter(rng),
		fpHash: hashing.NewKWise(2, rng),
		fBits:  log2(p.F),
		dEff:   exp.D(),
	}
	c.slotOf = pairSlots(exp)
	return c, nil
}

// pairSlots builds, for each ordered slot (m, k), the reverse slot index at
// the neighbor: the j-th occurrence of m' in Γ(m) pairs with the j-th
// occurrence of m in Γ(m').
func pairSlots(exp *expander.Expander) [][]int {
	m := exp.M()
	out := make([][]int, m)
	occ := make(map[[2]int]int) // (u,v) -> occurrences consumed
	for u := 0; u < m; u++ {
		out[u] = make([]int, len(exp.Neighbors(u)))
		for k := range out[u] {
			out[u][k] = -1
		}
	}
	for u := 0; u < m; u++ {
		for k, v := range exp.Neighbors(u) {
			if out[u][k] != -1 {
				continue
			}
			j := occ[[2]int{u, v}]
			occ[[2]int{u, v}]++
			// find the j-th unpaired occurrence of u in Γ(v)
			cnt := 0
			for k2, w := range exp.Neighbors(v) {
				if w != u {
					continue
				}
				if cnt == j {
					out[u][k] = k2
					out[v][k2] = k
					break
				}
				cnt++
			}
		}
	}
	return out
}

// Params returns the (defaulted) parameters.
func (c *Code) Params() Params { return c.p }

// M returns the number of coordinates.
func (c *Code) M() int { return c.p.M }

// ZBits returns the number of bits of each packed payload Z; the
// per-coordinate report domain of PrivateExpanderSketch is [B]x[Y]x[2^ZBits].
func (c *Code) ZBits() int { return 8*c.p.ChunkBytes + c.dEff*c.fBits }

// Expander exposes the coordinate expander (read-only use).
func (c *Code) Expander() *expander.Expander { return c.exp }

// Hash returns h_m(item) in [0, Y).
func (c *Code) Hash(m int, item []byte) int {
	return c.hs[m].Range(c.fold.Fold(item), c.p.Y)
}

// fingerprint compresses the hash value y into [F], keyed by the edge slot
// (m, k). Keying by slot is essential: a fingerprint that depends on y alone
// makes two colliding items agree at a whole *coordinate*, so every expander
// edge touching that coordinate cross-links their clusters simultaneously
// and the decoder's clusters fuse along structured cuts. With per-slot
// keying, spurious edges are independent events of probability 1/F² each.
// When F = Y the fingerprint is the identity and the construction is exactly
// the paper's (DESIGN.md S4).
func (c *Code) fingerprint(m, k, y int) uint64 {
	if c.p.F == c.p.Y {
		return uint64(y)
	}
	key := uint64(m*c.dEff+k)<<32 | uint64(y)
	return c.fpHash.Eval(key) & uint64(c.p.F-1)
}

// Encode returns the M symbols of Enc(item). item must have length
// ItemBytes.
func (c *Code) Encode(item []byte) ([]Symbol, error) {
	if len(item) != c.p.ItemBytes {
		return nil, fmt.Errorf("listrec: item length %d, want %d", len(item), c.p.ItemBytes)
	}
	cw, err := c.rs.Encode(item)
	if err != nil {
		return nil, err
	}
	key := c.fold.Fold(item)
	ys := make([]int, c.p.M)
	for m := 0; m < c.p.M; m++ {
		ys[m] = c.hs[m].Range(key, c.p.Y)
	}
	out := make([]Symbol, c.p.M)
	for m := 0; m < c.p.M; m++ {
		var z uint64
		// fingerprints, highest slot first so unpacking is positional
		for k := c.dEff - 1; k >= 0; k-- {
			z = z<<uint(c.fBits) | c.fingerprint(m, k, ys[c.exp.Neighbor(m, k)])
		}
		for b := c.p.ChunkBytes - 1; b >= 0; b-- {
			z = z<<8 | uint64(cw[m*c.p.ChunkBytes+b])
		}
		out[m] = Symbol{Y: ys[m], Z: z}
	}
	return out, nil
}

// unpack splits a payload into chunk bytes and fingerprint slots.
func (c *Code) unpack(z uint64) (chunk []byte, fps []uint64) {
	chunk = make([]byte, c.p.ChunkBytes)
	for b := 0; b < c.p.ChunkBytes; b++ {
		chunk[b] = byte(z & 0xff)
		z >>= 8
	}
	fps = make([]uint64, c.dEff)
	mask := uint64(c.p.F - 1)
	for k := 0; k < c.dEff; k++ {
		fps[k] = z & mask
		z >>= uint(c.fBits)
	}
	return chunk, fps
}

// PackZ packs a chunk and fingerprint values into a payload; exported for
// tests that fabricate adversarial symbols.
func (c *Code) PackZ(chunk []byte, fps []uint64) uint64 {
	var z uint64
	for k := c.dEff - 1; k >= 0; k-- {
		z = z<<uint(c.fBits) | (fps[k] & uint64(c.p.F-1))
	}
	for b := c.p.ChunkBytes - 1; b >= 0; b-- {
		z = z<<8 | uint64(chunk[b])
	}
	return z
}
