package ldphh_test

import (
	"bytes"
	"context"
	"errors"
	"math/rand/v2"
	"strings"
	"testing"

	"ldphh"
)

// ordinalItem encodes v as a width-w big-endian item.
func ordinalItem(v uint64, w int) []byte {
	b := make([]byte, w)
	for i := w - 1; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
	return b
}

// TestNewAllKinds drives every registered protocol kind through the
// functional-options constructor and one in-process round on the unified
// surface: Report → Absorb → Identify(ctx), with the planted heavy item
// recovered. It also pins each kind's capability story (which kinds
// snapshot/merge).
func TestNewAllKinds(t *testing.T) {
	mergeableKinds := map[ldphh.Kind]bool{
		ldphh.PrivateExpanderSketch: true,
		ldphh.KindSmallDomain:       true,
		ldphh.KindHashtogram:        true,
		ldphh.KindDirectHistogram:   true,
		ldphh.KindStreamHG:          true,
		ldphh.KindPEM:               true,
		ldphh.KindFedTrie:           true,
	}
	interactiveKinds := map[ldphh.Kind]bool{
		ldphh.KindPEM:     true,
		ldphh.KindFedTrie: true,
	}
	// The population-splitting baselines carry a sqrt(n·L)-shaped recovery
	// floor, so they need a larger round for the 40% heavy item to clear it.
	sizeFor := map[ldphh.Kind]int{
		ldphh.KindBitstogram: 20000,
		ldphh.KindTreeHist:   20000,
	}
	heavy := ordinalItem(1, 2)
	for _, kind := range ldphh.Kinds() {
		t.Run(kind.String(), func(t *testing.T) {
			n := sizeFor[kind]
			if n == 0 {
				n = 6000
			}
			opts := []ldphh.Option{
				ldphh.WithEps(4), ldphh.WithN(n), ldphh.WithItemBytes(2),
				ldphh.WithSeed(99), ldphh.WithDomainSize(64),
			}
			if kind == ldphh.KindHashtogram {
				opts = append(opts, ldphh.WithCandidates([][]byte{heavy, ordinalItem(2, 2)}))
			}
			h, err := ldphh.New(kind, opts...)
			if err != nil {
				t.Fatal(err)
			}
			if got := ldphh.Kind(h.ProtocolID()); got != kind {
				t.Fatalf("ProtocolID %v, want %v", got, kind)
			}
			if _, ok := ldphh.AsMergeable(h); ok != mergeableKinds[kind] {
				t.Fatalf("Mergeable = %v, want %v", ok, mergeableKinds[kind])
			}
			it, ok := ldphh.AsInteractive(h)
			if ok != interactiveKinds[kind] {
				t.Fatalf("Interactive = %v, want %v", ok, interactiveKinds[kind])
			}
			// One unified round: the same instance serves both halves here.
			rng := rand.New(rand.NewPCG(3, 4))
			trueHeavy := 0
			itemFor := func(i int) []byte {
				switch {
				case i%10 < 4:
					return heavy
				case i%10 < 7:
					return ordinalItem(2, 2)
				default:
					return ordinalItem(uint64(3+i%32), 2)
				}
			}
			for i := 0; i < n; i++ {
				if bytes.Equal(itemFor(i), heavy) {
					trueHeavy++
				}
			}
			if it != nil {
				// Interactive kinds gate reports by round group: each user
				// reports once, in their own round, against that round's
				// candidate broadcast.
				for rs := it.RoundState(); !rs.Done; rs = it.RoundState() {
					for i := 0; i < n; i++ {
						wr, err := h.Report(itemFor(i), i, ldphh.RoundRand(99, rs.Round, i))
						if errors.Is(err, ldphh.ErrNotInRound) {
							continue
						}
						if err != nil {
							t.Fatalf("report %d round %d: %v", i, rs.Round, err)
						}
						if err := h.Absorb(wr); err != nil {
							t.Fatalf("absorb %d round %d: %v", i, rs.Round, err)
						}
					}
					if _, err := it.AdvanceRound(); err != nil {
						t.Fatal(err)
					}
				}
			} else {
				for i := 0; i < n; i++ {
					wr, err := h.Report(itemFor(i), i, rng)
					if err != nil {
						t.Fatalf("report %d: %v", i, err)
					}
					if err := h.Absorb(wr); err != nil {
						t.Fatalf("absorb %d: %v", i, err)
					}
				}
			}
			if got := h.TotalReports(); got != n {
				t.Fatalf("TotalReports = %d, want %d", got, n)
			}
			est, err := h.Identify(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			found := false
			for _, e := range est {
				if bytes.Equal(e.Item, heavy) {
					found = true
				}
			}
			if !found {
				t.Errorf("planted heavy item (%d of %d users) not identified", trueHeavy, n)
			}
		})
	}
}

// TestKindNamesRoundTrip pins the flag-facing names and their parsing.
func TestKindNamesRoundTrip(t *testing.T) {
	want := map[ldphh.Kind]string{
		ldphh.PrivateExpanderSketch: "pes",
		ldphh.KindSmallDomain:       "smalldomain",
		ldphh.KindHashtogram:        "hashtogram",
		ldphh.KindDirectHistogram:   "directhistogram",
		ldphh.KindBitstogram:        "bitstogram",
		ldphh.KindTreeHist:          "treehist",
		ldphh.KindBassilySmith:      "bassilysmith",
		ldphh.KindStreamHG:          "streamhg",
		ldphh.KindPEM:               "pem",
		ldphh.KindFedTrie:           "fedtrie",
	}
	if got := len(ldphh.Kinds()); got != len(want) {
		t.Fatalf("%d registered kinds, want %d", got, len(want))
	}
	for kind, name := range want {
		if kind.String() != name {
			t.Errorf("%v.String() = %q, want %q", kind, kind.String(), name)
		}
		parsed, err := ldphh.ParseKind(name)
		if err != nil {
			t.Errorf("ParseKind(%q): %v", name, err)
		} else if parsed != kind {
			t.Errorf("ParseKind(%q) = %v, want %v", name, parsed, kind)
		}
	}
	if _, err := ldphh.ParseKind("nope"); err == nil {
		t.Error("ParseKind accepted an unknown name")
	}
}

// TestNewValidation pins the constructor's error paths.
func TestNewValidation(t *testing.T) {
	if _, err := ldphh.New(ldphh.Kind(0x7f), ldphh.WithEps(1), ldphh.WithN(10)); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := ldphh.New(ldphh.PrivateExpanderSketch, ldphh.WithN(100)); err == nil {
		t.Error("missing eps accepted")
	}
	// Wide items with no explicit domain cannot be enumerated.
	if _, err := ldphh.New(ldphh.KindBassilySmith,
		ldphh.WithEps(1), ldphh.WithN(100), ldphh.WithItemBytes(4)); err == nil {
		t.Error("4-byte bassilysmith without WithDomainSize accepted")
	}
	// With an explicit domain it works.
	if _, err := ldphh.New(ldphh.KindBassilySmith,
		ldphh.WithEps(1), ldphh.WithN(100), ldphh.WithItemBytes(4), ldphh.WithDomainSize(512)); err != nil {
		t.Errorf("explicit domain rejected: %v", err)
	}
}

// TestCandidatesConsumption pins which kinds consume WithCandidates and
// which reject it: the candidate-based oracle kinds estimate exactly the
// supplied dictionary, the open-domain interactive kinds refuse the option
// outright (they discover candidates round by round), and everything else
// ignores it.
func TestCandidatesConsumption(t *testing.T) {
	cands := [][]byte{ordinalItem(1, 2), ordinalItem(2, 2)}
	for _, kind := range ldphh.Kinds() {
		h, err := ldphh.New(kind,
			ldphh.WithEps(2), ldphh.WithN(1000), ldphh.WithItemBytes(2),
			ldphh.WithDomainSize(32), ldphh.WithCandidates(cands))
		switch kind {
		case ldphh.KindPEM, ldphh.KindFedTrie:
			if err == nil || !strings.Contains(err.Error(), "WithCandidates") {
				t.Errorf("%v with candidates = %v, want a WithCandidates rejection", kind, err)
			}
		case ldphh.KindHashtogram:
			if err != nil {
				t.Fatalf("hashtogram with candidates: %v", err)
			}
			// The consumer: Identify's support is exactly the dictionary.
			rng := rand.New(rand.NewPCG(5, 6))
			for i := 0; i < 1000; i++ {
				wr, err := h.Report(cands[i%2], i, rng)
				if err != nil {
					t.Fatal(err)
				}
				if err := h.Absorb(wr); err != nil {
					t.Fatal(err)
				}
			}
			est, err := h.Identify(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range est {
				if !bytes.Equal(e.Item, cands[0]) && !bytes.Equal(e.Item, cands[1]) {
					t.Errorf("hashtogram estimated %x outside the candidate dictionary", e.Item)
				}
			}
		default:
			if err != nil {
				t.Errorf("%v must ignore WithCandidates, got %v", kind, err)
			}
		}
	}
}

// TestFacadeGenericServer runs one non-PES protocol end to end through the
// public facade: New → NewAggregationServer → SendWireReports →
// RequestIdentifyContext.
func TestFacadeGenericServer(t *testing.T) {
	const n = 3000
	mk := func() ldphh.Protocol {
		h, err := ldphh.New(ldphh.KindSmallDomain,
			ldphh.WithEps(4), ldphh.WithN(n), ldphh.WithItemBytes(2), ldphh.WithDomainSize(32))
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	device, agg := mk(), mk()
	srv, err := ldphh.NewAggregationServer(agg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rng := rand.New(rand.NewPCG(8, 8))
	heavy := ordinalItem(3, 2)
	reports := make([]ldphh.WireReport, n)
	for i := range reports {
		item := ordinalItem(uint64(i%8), 2)
		if i%2 == 0 {
			item = heavy
		}
		if reports[i], err = device.Report(item, i, rng); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	if err := ldphh.SendWireReports(ctx, srv.Addr(), reports); err != nil {
		t.Fatal(err)
	}
	if got := srv.Absorbed(); got != n {
		t.Fatalf("server absorbed %d of %d", got, n)
	}
	est, err := ldphh.RequestIdentifyContext(ctx, srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if len(est) == 0 || !bytes.Equal(est[0].Item, heavy) {
		t.Fatalf("top estimate %+v, want heavy item %x", est, heavy)
	}
}
