package ldphh_test

// Benchmark harness regenerating Table 1 of the paper (the only table; the
// paper has no figures — the Section 4-7 theorems are covered by the
// experiment benches at the bottom and by cmd/experiments).
//
// Table 1 columns map to benchmark families:
//
//	Server time            BenchmarkTable1ServerTime_*
//	User time              BenchmarkTable1UserTime_*
//	Server memory          BenchmarkTable1ServerMemory_*   (sketch_bytes metric)
//	User memory            BenchmarkTable1UserTime_*       (allocs/op metric)
//	Communication/user     BenchmarkTable1Communication_*  (report_bytes metric)
//	Public randomness/user BenchmarkTable1PublicRandomness_* (seed_words metric)
//	Worst-case error       BenchmarkTable1WorstCaseError_* (max_err metric)
//
// Run: go test -bench=. -benchmem .

import (
	"fmt"
	"math"
	"math/rand/v2"
	"runtime"
	"sync"
	"testing"

	"ldphh"
	"ldphh/internal/baseline"
	"ldphh/internal/composition"
	"ldphh/internal/core"
	"ldphh/internal/genprot"
	"ldphh/internal/grouposition"
	"ldphh/internal/ldp"
	"ldphh/internal/lowerbound"
	"ldphh/internal/workload"
)

const (
	benchN   = 30000
	benchEps = 4.0
)

func benchDataset(b *testing.B) *workload.Dataset {
	b.Helper()
	dom := workload.Domain{ItemBytes: 4}
	ds, err := workload.Planted(dom, benchN, []float64{0.25, 0.18}, rand.New(rand.NewPCG(1, 2)))
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

func pesParams() core.Params {
	return core.Params{Eps: benchEps, N: benchN, ItemBytes: 4, Y: 64, Seed: 42}
}

func bitsParams() baseline.BitstogramParams {
	return baseline.BitstogramParams{Eps: benchEps, N: benchN, ItemBytes: 4, Seed: 42}
}

func bsParams() baseline.BassilySmithParams {
	// Scaled-down domain: the BS server scan is O(|X|·Proj) (DESIGN.md S3).
	return baseline.BassilySmithParams{
		Eps: benchEps, N: benchN, ItemBytes: 2, DomainSize: 1 << 12, Proj: 4096, Seed: 42,
	}
}

// --- Server time (Table 1 row 1) ---

func BenchmarkTable1ServerTime_PES(b *testing.B) {
	ds := benchDataset(b)
	proto, err := core.New(pesParams())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 4))
	reports := make([]core.Report, ds.N())
	for i, x := range ds.Items {
		reports[i], err = proto.Report(x, i, rng)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p, err := core.New(pesParams())
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for _, rep := range reports {
			if err := p.Absorb(rep); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := p.Identify(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(ds.N()), "users")
}

func BenchmarkTable1ServerTime_Bitstogram(b *testing.B) {
	ds := benchDataset(b)
	bt, err := baseline.NewBitstogram(bitsParams())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 4))
	reports := make([]baseline.BitstogramReport, ds.N())
	for i, x := range ds.Items {
		reports[i], err = bt.Report(x, i, rng)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p, err := baseline.NewBitstogram(bitsParams())
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for _, rep := range reports {
			if err := p.Absorb(rep); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := p.Identify(0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(ds.N()), "users")
}

func BenchmarkTable1ServerTime_BassilySmith(b *testing.B) {
	params := bsParams()
	bs, err := baseline.NewBassilySmith(params)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 4))
	reports := make([]baseline.BassilySmithReport, benchN)
	for i := range reports {
		reports[i], err = bs.Report(uint64(i%params.DomainSize), i, rng)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p, err := baseline.NewBassilySmith(params)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for _, rep := range reports {
			if err := p.Absorb(rep); err != nil {
				b.Fatal(err)
			}
		}
		p.Identify(math.Inf(1)) // pure scan cost; no output retention
	}
	b.ReportMetric(float64(benchN), "users")
	b.ReportMetric(float64(params.DomainSize), "domain")
}

// --- Ingestion scaling (server absorption throughput) ---

// ingestParams keeps the per-coordinate report domain small (Y = 4 =>
// 16384 cells per coordinate) so shard setup and merge stay cheap relative
// to the absorb loop — the regime a high-throughput aggregator runs in.
func ingestParams() core.Params {
	return core.Params{Eps: benchEps, N: benchN, ItemBytes: 4, Y: 4, Seed: 42}
}

// ingestReports synthesizes a large report stream once per benchmark run by
// cycling the planted dataset over fresh user indices (absorption cost is
// identical for any valid report, so cycling does not skew the measurement).
func ingestReports(b *testing.B, total int) []core.Report {
	b.Helper()
	ds := benchDataset(b)
	proto, err := core.New(ingestParams())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(7, 11))
	reports := make([]core.Report, total)
	for i := range reports {
		reports[i], err = proto.Report(ds.Items[i%ds.N()], i, rng)
		if err != nil {
			b.Fatal(err)
		}
	}
	return reports
}

// BenchmarkAbsorbParallel measures batch ingestion across shard counts.
// shards=1 is the single-mutex path every report serialized through before
// this subsystem existed; higher counts absorb into per-worker accumulators
// merged once per chunk. With GOMAXPROCS >= 4 the sharded path wins because
// the absorb loop parallelizes while the merge cost is a fixed
// O(shards·state); on a single-core runner sharding can only lose (no
// parallelism to buy), which the Mreports_per_s metric makes visible either
// way.
func BenchmarkAbsorbParallel(b *testing.B) {
	const total = 1 << 18
	reports := ingestReports(b, total)
	counts := []int{1, 4, runtime.GOMAXPROCS(0)}
	seen := map[int]bool{}
	for _, shards := range counts {
		if shards < 1 || seen[shards] {
			continue
		}
		seen[shards] = true
		b.Run(fmt.Sprintf("shards_%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				p, err := core.New(ingestParams())
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if err := p.AbsorbBatch(reports, shards); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mreports_per_s")
		})
	}
}

// BenchmarkIdentify measures the server-side reconstruction (Algorithm 1
// steps 2-6) across Identify worker-pool sizes {1, 4, GOMAXPROCS}. The
// 1-worker case is exactly the serial pipeline (parRange inlines the loop,
// sortEstimates falls back to sort.Slice), so workers_1 is the regression
// guard for pool overhead; higher counts buy wall-clock on multi-core
// runners while returning bit-identical output (enforced by
// core.TestIdentifyWorkerDeterminism). Absorption is untimed: each
// iteration rebuilds and refills a fresh protocol under StopTimer so the
// measured region is Identify alone.
func BenchmarkIdentify(b *testing.B) {
	ds := benchDataset(b)
	proto, err := core.New(pesParams())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 4))
	reports := make([]core.Report, ds.N())
	for i, x := range ds.Items {
		reports[i], err = proto.Report(x, i, rng)
		if err != nil {
			b.Fatal(err)
		}
	}
	counts := []int{1, 4, runtime.GOMAXPROCS(0)}
	seen := map[int]bool{}
	for _, workers := range counts {
		if workers < 1 || seen[workers] {
			continue
		}
		seen[workers] = true
		b.Run(fmt.Sprintf("workers_%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				params := pesParams()
				params.Workers = workers
				p, err := core.New(params)
				if err != nil {
					b.Fatal(err)
				}
				if err := p.AbsorbBatch(reports, runtime.GOMAXPROCS(0)); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := p.Identify(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(ds.N()), "users")
		})
	}
}

// BenchmarkMerge measures the root side of a two-tier aggregation tree:
// absorbing k leaf snapshots (decode + validate + one locked accumulator
// fold each) that together carry the same 2^18 reports
// BenchmarkAbsorbParallel ingests directly — so Mreports_per_s here is the
// fan-in cost per report, directly comparable against the ingestion rows.
func BenchmarkMerge(b *testing.B) {
	const total = 1 << 18
	reports := ingestReports(b, total)
	for _, leafCount := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("leaves_%d", leafCount), func(b *testing.B) {
			snaps := make([][]byte, leafCount)
			for l := range snaps {
				leaf, err := core.New(ingestParams())
				if err != nil {
					b.Fatal(err)
				}
				chunk := (total + leafCount - 1) / leafCount
				lo := l * chunk
				hi := min(lo+chunk, total)
				if err := leaf.AbsorbBatch(reports[lo:hi], runtime.GOMAXPROCS(0)); err != nil {
					b.Fatal(err)
				}
				if snaps[l], err = leaf.Snapshot(); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				root, err := core.New(ingestParams())
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for _, snap := range snaps {
					if err := root.MergeSnapshot(snap); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mreports_per_s")
		})
	}
}

// BenchmarkSnapshotRoundTrip measures the leaf side: serializing the full
// accumulated protocol state and rehydrating it into a fresh instance —
// the checkpoint/restore path and the per-leaf cost of every fan-in round.
func BenchmarkSnapshotRoundTrip(b *testing.B) {
	const total = 1 << 18
	reports := ingestReports(b, total)
	p, err := core.New(ingestParams())
	if err != nil {
		b.Fatal(err)
	}
	if err := p.AbsorbBatch(reports, runtime.GOMAXPROCS(0)); err != nil {
		b.Fatal(err)
	}
	fresh, err := core.New(ingestParams())
	if err != nil {
		b.Fatal(err)
	}
	var snapBytes int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, err := p.Snapshot()
		if err != nil {
			b.Fatal(err)
		}
		snapBytes = len(snap)
		if err := fresh.Restore(snap); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(snapBytes), "snapshot_bytes")
	b.ReportMetric(float64(snapBytes)*float64(b.N)/b.Elapsed().Seconds()/1e6, "MB_per_s")
}

// BenchmarkAbsorbContended is the adversarial reference: GOMAXPROCS
// goroutines hammering Protocol.Absorb directly, all contending on the one
// protocol mutex with its cache-line ping-pong — exactly what the TCP
// server did per frame before per-connection shards. Compare against
// BenchmarkAbsorbParallel/shards_N.
func BenchmarkAbsorbContended(b *testing.B) {
	const total = 1 << 18
	reports := ingestReports(b, total)
	workers := runtime.GOMAXPROCS(0)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p, err := core.New(ingestParams())
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		var wg sync.WaitGroup
		chunk := (total + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := min(lo+chunk, total)
			wg.Add(1)
			go func(batch []core.Report) {
				defer wg.Done()
				for _, rep := range batch {
					if err := p.Absorb(rep); err != nil {
						b.Error(err)
						return
					}
				}
			}(reports[lo:hi])
		}
		wg.Wait()
	}
	b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mreports_per_s")
}

// --- User time and user memory (Table 1 rows 2 and 4) ---

func BenchmarkTable1UserTime_PES(b *testing.B) {
	proto, err := core.New(pesParams())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(5, 6))
	item := []byte{0, 0, 0, 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := proto.Report(item, i, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1UserTime_Bitstogram(b *testing.B) {
	bt, err := baseline.NewBitstogram(bitsParams())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(5, 6))
	item := []byte{0, 0, 0, 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bt.Report(item, i, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1UserTime_BassilySmith(b *testing.B) {
	bs, err := baseline.NewBassilySmith(bsParams())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(5, 6))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bs.Report(uint64(i&4095), i, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Server memory (Table 1 row 3) ---

func BenchmarkTable1ServerMemory_PES(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, err := core.New(pesParams())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(p.SketchBytes()), "sketch_bytes")
	}
}

func BenchmarkTable1ServerMemory_Bitstogram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, err := baseline.NewBitstogram(bitsParams())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(p.SketchBytes()), "sketch_bytes")
	}
}

func BenchmarkTable1ServerMemory_BassilySmith(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, err := baseline.NewBassilySmith(bsParams())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(p.SketchBytes()), "sketch_bytes")
	}
}

// --- Communication per user (Table 1 row 5) ---

func BenchmarkTable1Communication_PES(b *testing.B) {
	p, err := core.New(pesParams())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(float64(p.BytesPerReport()), "report_bytes")
	}
}

func BenchmarkTable1Communication_Bitstogram(b *testing.B) {
	p, err := baseline.NewBitstogram(bitsParams())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(float64(p.BytesPerReport()), "report_bytes")
	}
}

func BenchmarkTable1Communication_BassilySmith(b *testing.B) {
	p, err := baseline.NewBassilySmith(bsParams())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(float64(p.BytesPerReport()), "report_bytes")
	}
}

// --- Public randomness per user (Table 1 row 6) ---
//
// All three implementations here derive public randomness from O(1) seed
// words (hash families replace explicit random tables); the bench reports
// the seed words a user must hold. The original [4] protocol instead
// requires access to an n^1.5-bit random projection table — see DESIGN.md
// S3 and EXPERIMENTS.md for that theoretical column.

func BenchmarkTable1PublicRandomness_PES(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.ReportMetric(1, "seed_words")
	}
}

func BenchmarkTable1PublicRandomness_Bitstogram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.ReportMetric(1, "seed_words")
	}
}

func BenchmarkTable1PublicRandomness_BassilySmith(b *testing.B) {
	p := bsParams()
	// Theoretical requirement of the un-hashed original: Proj·|X| sign bits.
	words := float64(p.Proj) * float64(p.DomainSize) / 64
	for i := 0; i < b.N; i++ {
		b.ReportMetric(words, "matrix_words_theoretical")
		b.ReportMetric(1, "seed_words")
	}
}

// --- Worst-case error (Table 1 row 7) ---

func worstPlantedError(b *testing.B, est []core.Estimate, ds *workload.Dataset, dom workload.Domain) float64 {
	b.Helper()
	worst := 0.0
	for i := 1; i <= 2; i++ {
		item := dom.Item(uint64(i))
		got := math.Inf(1) // missing item counts as full error
		for _, e := range est {
			if string(e.Item) == string(item) {
				got = e.Count
				break
			}
		}
		err := math.Abs(got - float64(ds.Count(item)))
		if math.IsInf(got, 1) {
			err = float64(ds.Count(item))
		}
		if err > worst {
			worst = err
		}
	}
	return worst
}

func BenchmarkTable1WorstCaseError_PES(b *testing.B) {
	dom := workload.Domain{ItemBytes: 4}
	ds := benchDataset(b)
	for i := 0; i < b.N; i++ {
		params := pesParams()
		params.Seed = uint64(i) + 100
		p, err := core.New(params)
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewPCG(uint64(i), 9))
		for u, x := range ds.Items {
			rep, err := p.Report(x, u, rng)
			if err != nil {
				b.Fatal(err)
			}
			if err := p.Absorb(rep); err != nil {
				b.Fatal(err)
			}
		}
		est, err := p.Identify()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(worstPlantedError(b, est, ds, dom), "max_err")
	}
}

func BenchmarkTable1WorstCaseError_Bitstogram(b *testing.B) {
	dom := workload.Domain{ItemBytes: 4}
	ds := benchDataset(b)
	for i := 0; i < b.N; i++ {
		params := bitsParams()
		params.Seed = uint64(i) + 100
		p, err := baseline.NewBitstogram(params)
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewPCG(uint64(i), 9))
		for u, x := range ds.Items {
			rep, err := p.Report(x, u, rng)
			if err != nil {
				b.Fatal(err)
			}
			if err := p.Absorb(rep); err != nil {
				b.Fatal(err)
			}
		}
		bsEst, err := p.Identify(0)
		if err != nil {
			b.Fatal(err)
		}
		est := make([]core.Estimate, len(bsEst))
		for j, e := range bsEst {
			est[j] = core.Estimate{Item: e.Item, Count: e.Count}
		}
		b.ReportMetric(worstPlantedError(b, est, ds, dom), "max_err")
	}
}

// --- Theorem experiment benches (E8, E10, E11, E12) ---

func BenchmarkGrouposition(b *testing.B) {
	r := ldp.NewBinaryRR(0.1)
	rng := rand.New(rand.NewPCG(1, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grouposition.SimulateWorstCaseLoss(r, 1000, 1, rng)
	}
	b.ReportMetric(grouposition.AdvancedGroupEpsilon(0.1, 1000, 1e-6), "advanced_eps")
	b.ReportMetric(grouposition.CentralGroupEpsilon(0.1, 1000), "central_eps")
}

func BenchmarkRRComposition(b *testing.B) {
	m, err := composition.New(1024, 0.01, 0.05)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 1))
	x := make([]uint64, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Sample(x, rng)
	}
	b.ReportMetric(m.TildeEpsilon(), "tilde_eps")
	b.ReportMetric(m.BasicCompositionEpsilon(), "basic_eps")
}

func BenchmarkGenProt(b *testing.B) {
	r := ldp.NewLeakyRR(0.2, 1e-4)
	tr, err := genprot.New(genprot.Params{Eps: 0.2, T: 32}, r, rand.New(rand.NewPCG(1, 1)))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(2, 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Report(uint64(i&1), rng)
	}
	b.ReportMetric(float64(tr.ReportBits()), "report_bits")
}

func BenchmarkLowerBound(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	for i := 0; i < b.N; i++ {
		if _, err := lowerbound.Experiment(0.5, 10000, 1, 1, rng); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(lowerbound.ErrorLowerBound(0.5, 10000, 1<<32, 0.01), "bound")
}

// BenchmarkAblationFingerprintWidth measures the decode-robustness ablation
// called out in DESIGN.md S4: the same workload with F = 2 (default) versus
// F = Y (the paper's exact construction, larger per-coordinate domain).
func BenchmarkAblationFingerprintWidth(b *testing.B) {
	dom := workload.Domain{ItemBytes: 4}
	ds := benchDataset(b)
	// The F = Y (paper-verbatim) point must keep Y small: Z carries d full
	// hash values, so the per-coordinate domain grows as Y^(d+1) and the
	// Y = 16 variant would need 2^28 cells (rejected by the constructor).
	for _, cfg := range []struct {
		name string
		f    int
		y    int
	}{{"F2_Y64", 2, 64}, {"F4_Y4", 4, 4}} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				params := core.Params{
					Eps: benchEps, N: benchN, ItemBytes: 4,
					Y: cfg.y, F: cfg.f, Seed: uint64(i) + 7,
				}
				p, err := core.New(params)
				if err != nil {
					b.Fatal(err)
				}
				rng := rand.New(rand.NewPCG(uint64(i), 13))
				for u, x := range ds.Items {
					rep, err := p.Report(x, u, rng)
					if err != nil {
						b.Fatal(err)
					}
					if err := p.Absorb(rep); err != nil {
						b.Fatal(err)
					}
				}
				est, err := p.Identify()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(worstPlantedError(b, est, ds, dom), "max_err")
			}
		})
	}
}

// BenchmarkAblationExpanderDegree sweeps the expander degree D (DESIGN.md
// design choice): higher degree buys decode robustness at larger
// per-coordinate domains.
func BenchmarkAblationExpanderDegree(b *testing.B) {
	dom := workload.Domain{ItemBytes: 4}
	ds := benchDataset(b)
	// D = 2 (a cycle) is rejected by the spectral certificate — a cycle is
	// not an expander; the sweep starts at the smallest certifiable degree.
	// D = 8 with M = 8 coordinates exercises the complete-graph fallback.
	for _, d := range []int{4, 6, 8} {
		b.Run(fmt.Sprintf("D%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				params := core.Params{
					Eps: benchEps, N: benchN, ItemBytes: 4,
					Y: 64, D: d, Seed: uint64(i) + 21,
				}
				p, err := core.New(params)
				if err != nil {
					b.Fatal(err)
				}
				rng := rand.New(rand.NewPCG(uint64(i), 17))
				for u, x := range ds.Items {
					rep, err := p.Report(x, u, rng)
					if err != nil {
						b.Fatal(err)
					}
					if err := p.Absorb(rep); err != nil {
						b.Fatal(err)
					}
				}
				est, err := p.Identify()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(worstPlantedError(b, est, ds, dom), "max_err")
				b.ReportMetric(float64(p.SketchBytes()), "sketch_bytes")
			}
		})
	}
}

// BenchmarkAblationTauFactor sweeps the step-3b admission threshold
// constant: too low floods the decoder with junk arg-max entries, too high
// raises the recovery floor.
func BenchmarkAblationTauFactor(b *testing.B) {
	dom := workload.Domain{ItemBytes: 4}
	ds := benchDataset(b)
	for _, tau := range []float64{3, 6, 9} {
		b.Run(fmt.Sprintf("Tau%.0f", tau), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				params := core.Params{
					Eps: benchEps, N: benchN, ItemBytes: 4,
					Y: 64, TauFactor: tau, Seed: uint64(i) + 33,
				}
				p, err := core.New(params)
				if err != nil {
					b.Fatal(err)
				}
				rng := rand.New(rand.NewPCG(uint64(i), 19))
				for u, x := range ds.Items {
					rep, err := p.Report(x, u, rng)
					if err != nil {
						b.Fatal(err)
					}
					if err := p.Absorb(rep); err != nil {
						b.Fatal(err)
					}
				}
				est, err := p.Identify()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(worstPlantedError(b, est, ds, dom), "max_err")
				b.ReportMetric(float64(len(est)), "output_items")
			}
		})
	}
}

// BenchmarkTreeHist covers the second [3] baseline for the Table 1 server
// time comparison.
func BenchmarkTreeHist(b *testing.B) {
	dom := workload.Domain{ItemBytes: 2}
	ds, err := workload.Planted(dom, benchN, []float64{0.3, 0.22}, rand.New(rand.NewPCG(1, 2)))
	if err != nil {
		b.Fatal(err)
	}
	_ = dom
	th, err := baseline.NewTreeHist(baseline.TreeHistParams{Eps: benchEps, N: benchN, ItemBytes: 2, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 4))
	reports := make([]baseline.TreeHistReport, ds.N())
	for i, x := range ds.Items {
		reports[i], err = th.Report(x, i, rng)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p, err := baseline.NewTreeHist(baseline.TreeHistParams{Eps: benchEps, N: benchN, ItemBytes: 2, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for _, rep := range reports {
			if err := p.Absorb(rep); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := p.Identify(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFacadeQuickstart times the full README quickstart through the
// public API (construction + n reports + identify).
func BenchmarkFacadeQuickstart(b *testing.B) {
	dom := ldphh.Domain{ItemBytes: 4}
	ds, err := ldphh.PlantedDataset(dom, 10000, []float64{0.3}, rand.New(rand.NewPCG(1, 2)))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hh, err := ldphh.NewHeavyHitters(ldphh.Params{
			Eps: 4, N: ds.N(), ItemBytes: 4, Y: 64, Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewPCG(uint64(i), 3))
		for u, x := range ds.Items {
			rep, err := hh.Report(x, u, rng)
			if err != nil {
				b.Fatal(err)
			}
			if err := hh.Absorb(rep); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := hh.Identify(); err != nil {
			b.Fatal(err)
		}
	}
}
