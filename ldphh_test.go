package ldphh_test

import (
	"bytes"
	"math"
	"math/rand/v2"
	"testing"

	"ldphh"
)

// TestPublicAPIEndToEnd exercises the facade exactly the way the README
// quickstart does.
func TestPublicAPIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end protocol run")
	}
	const n = 60000
	dom := ldphh.Domain{ItemBytes: 4}
	ds, err := ldphh.PlantedDataset(dom, n, []float64{0.20, 0.15}, rand.New(rand.NewPCG(1, 2)))
	if err != nil {
		t.Fatal(err)
	}
	hh, err := ldphh.NewHeavyHitters(ldphh.Params{Eps: 4, N: n, ItemBytes: 4, Y: 128, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 4))
	for i, x := range ds.Items {
		rep, err := hh.Report(x, i, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := hh.Absorb(rep); err != nil {
			t.Fatal(err)
		}
	}
	est, err := hh.Identify()
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, e := range est {
		if bytes.Equal(e.Item, dom.Item(1)) || bytes.Equal(e.Item, dom.Item(2)) {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("found %d of 2 planted heavy hitters", found)
	}
}

func TestPublicAPICalculators(t *testing.T) {
	// Theorem 4.2 vs central model.
	if ldphh.AdvancedGroupEpsilon(0.1, 10000, 1e-9) >= ldphh.CentralGroupEpsilon(0.1, 10000) {
		t.Error("advanced grouposition not beating central at large k")
	}
	if ldphh.MaxInformation(0.1, 100, 0.01) <= 0 {
		t.Error("max-information bound degenerate")
	}
	// Theorem 7.2 bound shape.
	if ldphh.ErrorLowerBound(1, 40000, 1<<32, 0.05) <= ldphh.ErrorLowerBound(1, 10000, 1<<32, 0.05) {
		t.Error("lower bound not increasing in n")
	}
	// Randomized response and its exhaustive privacy verification.
	rr := ldphh.NewBinaryRR(1.0)
	if got := ldphh.MaxPrivacyRatio(rr); math.Abs(got-math.E) > 1e-9 {
		t.Errorf("RR privacy ratio %f, want e", got)
	}
	leaky := ldphh.NewLeakyRR(0.2, 0.01)
	if !math.IsInf(ldphh.MaxPrivacyRatio(leaky), 1) {
		t.Error("leaky RR should fail pure privacy")
	}
}

func TestPublicAPIMTilde(t *testing.T) {
	m, err := ldphh.NewMTilde(64, 0.05, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if m.ExactTV() > 0.01 {
		t.Error("MTilde TV above beta")
	}
	if m.TildeEpsilon() <= 0 {
		t.Error("degenerate tilde epsilon")
	}
}

func TestPublicAPIGenProt(t *testing.T) {
	r := ldphh.NewLeakyRR(0.2, 1e-4)
	tr, err := ldphh.NewGenProt(ldphh.GenProtParams{Eps: 0.2, T: 32}, r, rand.New(rand.NewPCG(5, 6)))
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.MaxReportRatio(); got > math.Exp(10*0.2) {
		t.Errorf("GenProt report ratio %f exceeds e^{10ε}", got)
	}
	if tr.ReportBits() > 8 {
		t.Errorf("GenProt report uses %d bits", tr.ReportBits())
	}
	if ldphh.GenProtDefaultT(0.2, 1<<20, 0.01) < 10 {
		t.Error("DefaultT too small")
	}
}

func TestPublicAPIOracles(t *testing.T) {
	h, err := ldphh.NewHashtogram(ldphh.HashtogramParams{Eps: 1, N: 1000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(7, 8))
	for i := 0; i < 1000; i++ {
		if err := h.Absorb(h.Report([]byte("heavy"), i, rng)); err != nil {
			t.Fatal(err)
		}
	}
	h.Finalize()
	if got := h.Estimate([]byte("heavy")); math.Abs(got-1000) > 600 {
		t.Errorf("facade hashtogram estimate %f", got)
	}

	d, err := ldphh.NewDirectHistogram(1, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		rep, err := d.Report(3, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Absorb(rep); err != nil {
			t.Fatal(err)
		}
	}
	d.Finalize()
	if got := d.Estimate(3); math.Abs(got-2000) > 800 {
		t.Errorf("facade direct histogram estimate %f", got)
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	if _, err := ldphh.NewBitstogram(ldphh.BitstogramParams{Eps: 1, N: 1000, ItemBytes: 2, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := ldphh.NewBassilySmith(ldphh.BassilySmithParams{Eps: 1, N: 1000, ItemBytes: 2, DomainSize: 256, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := ldphh.NewTreeHist(ldphh.TreeHistParams{Eps: 1, N: 1000, ItemBytes: 2, Seed: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIClientAndFilter(t *testing.T) {
	params := ldphh.Params{Eps: 2, N: 1000, ItemBytes: 4, Y: 64, Seed: 3}
	client, err := ldphh.NewClient(params)
	if err != nil {
		t.Fatal(err)
	}
	if client.MinRecoverableFrequency() <= 0 {
		t.Error("client floor degenerate")
	}
	est := []ldphh.Estimate{
		{Item: []byte("hot"), Count: 800},
		{Item: []byte("warm"), Count: 90},
	}
	out, err := ldphh.FilterHeavyHitters(est, 1000, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || string(out[0].Item) != "hot" {
		t.Fatalf("filter = %+v", out)
	}
}

func TestPublicAPISmallDomain(t *testing.T) {
	s, err := ldphh.NewSmallDomain(1.0, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 8000; i++ {
		rep, err := s.Report([]byte{byte(i % 2)}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Absorb(rep); err != nil {
			t.Fatal(err)
		}
	}
	est := s.Identify(1000)
	if len(est) != 2 {
		t.Fatalf("small-domain identify returned %d items", len(est))
	}
}

func TestPublicAPIZipf(t *testing.T) {
	dom := ldphh.Domain{ItemBytes: 8}
	ds, err := ldphh.ZipfDataset(dom, 5000, 100, 1.0, rand.New(rand.NewPCG(11, 12)))
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 5000 {
		t.Fatalf("N = %d", ds.N())
	}
	if ds.Count(dom.Item(1)) <= ds.Count(dom.Item(50)) {
		t.Error("Zipf skew missing through the facade")
	}
}

// TestPublicAPIMergeTree exercises the distributed-aggregation facade: leaf
// HeavyHitters instances snapshot their state, a root merges the bytes both
// in process (MergeSnapshot) and over TCP (RequestSnapshot/PushSnapshot
// against Server instances), and both roots identify bit-identically to a
// sequential single-aggregator run.
func TestPublicAPIMergeTree(t *testing.T) {
	const n = 8000
	const leaves = 3
	params := ldphh.Params{Eps: 4, N: n, ItemBytes: 4, Y: 16, Seed: 11}
	dom := ldphh.Domain{ItemBytes: 4}
	ds, err := ldphh.PlantedDataset(dom, n, []float64{0.35, 0.25}, rand.New(rand.NewPCG(5, 6)))
	if err != nil {
		t.Fatal(err)
	}
	client, err := ldphh.NewClient(params)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(7, 8))
	reports := make([]ldphh.Report, n)
	for i, x := range ds.Items {
		if reports[i], err = client.Report(x, i, rng); err != nil {
			t.Fatal(err)
		}
	}

	// Sequential reference.
	seq, err := ldphh.NewHeavyHitters(params)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range reports {
		if err := seq.Absorb(rep); err != nil {
			t.Fatal(err)
		}
	}
	want, err := seq.Identify()
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("reference run identified nothing")
	}

	// Library-layer tree.
	root, err := ldphh.NewHeavyHitters(params)
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < leaves; l++ {
		leaf, err := ldphh.NewHeavyHitters(params)
		if err != nil {
			t.Fatal(err)
		}
		for i := l; i < n; i += leaves {
			if err := leaf.Absorb(reports[i]); err != nil {
				t.Fatal(err)
			}
		}
		snap, err := leaf.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if err := root.MergeSnapshot(snap); err != nil {
			t.Fatal(err)
		}
	}
	got, err := root.Identify()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("merged root identified %d items, sequential %d", len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i].Item, want[i].Item) || got[i].Count != want[i].Count {
			t.Fatalf("rank %d diverged from sequential run", i)
		}
	}

	// TCP tree through the facade.
	if testing.Short() {
		return
	}
	rootSrv, err := ldphh.NewServer(params, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rootSrv.Close()
	for l := 0; l < leaves; l++ {
		leafSrv, err := ldphh.NewServer(params, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		var shard []ldphh.Report
		for i := l; i < n; i += leaves {
			shard = append(shard, reports[i])
		}
		if err := ldphh.SendReports(leafSrv.Addr(), shard); err != nil {
			t.Fatal(err)
		}
		snap, err := ldphh.RequestSnapshot(leafSrv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if err := ldphh.PushSnapshot(rootSrv.Addr(), snap); err != nil {
			t.Fatal(err)
		}
		leafSrv.Close()
	}
	netEst, err := ldphh.RequestIdentify(rootSrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if len(netEst) != len(want) {
		t.Fatalf("TCP tree identified %d items, sequential %d", len(netEst), len(want))
	}
	for i := range netEst {
		// The wire truncates counts to int64; compare at that granularity.
		if !bytes.Equal(netEst[i].Item, want[i].Item) || int64(netEst[i].Count) != int64(want[i].Count) {
			t.Fatalf("TCP rank %d diverged from sequential run", i)
		}
	}
}
