package ldphh

import (
	"fmt"

	"ldphh/internal/baseline"
	"ldphh/internal/core"
	"ldphh/internal/freqoracle"
	"ldphh/internal/interactive"
	"ldphh/internal/proto"
	"ldphh/internal/stream"
)

// Kind selects a protocol for New. The values are the wire protocol IDs of
// the codec registry, so a Kind round-trips through ParseKind/String and
// the negotiation byte on the TCP transport.
type Kind byte

// The registered protocol kinds. PrivateExpanderSketch matches the paper's
// primary contribution; the remaining constants carry a Kind prefix because
// the bare names are taken by the legacy concrete types (ldphh.SmallDomain,
// ldphh.Bitstogram, ...) that New supersedes.
const (
	PrivateExpanderSketch = Kind(proto.IDPrivateExpanderSketch)
	KindSmallDomain       = Kind(proto.IDSmallDomain)
	KindHashtogram        = Kind(proto.IDHashtogram)
	KindDirectHistogram   = Kind(proto.IDDirectHistogram)
	KindBitstogram        = Kind(proto.IDBitstogram)
	KindTreeHist          = Kind(proto.IDTreeHist)
	KindBassilySmith      = Kind(proto.IDBassilySmith)
	KindStreamHG          = Kind(proto.IDStreamHG)
	KindPEM               = Kind(proto.IDPEM)
	KindFedTrie           = Kind(proto.IDFedTrie)
)

// String returns the kind's stable registry name ("pes", "bitstogram", ...).
func (k Kind) String() string {
	if c, ok := proto.Lookup(byte(k)); ok {
		return c.Name
	}
	return fmt.Sprintf("kind(%#02x)", byte(k))
}

// ParseKind resolves a registry name to its Kind — the inverse of String,
// for command-line flags.
func ParseKind(name string) (Kind, error) {
	c, ok := proto.LookupName(name)
	if !ok {
		names := make([]string, 0, len(proto.Codecs()))
		for _, c := range proto.Codecs() {
			names = append(names, c.Name)
		}
		return 0, fmt.Errorf("ldphh: unknown protocol %q (registered: %v)", name, names)
	}
	return Kind(c.ID), nil
}

// Kinds returns every registered protocol kind in ID order.
func Kinds() []Kind {
	codecs := proto.Codecs()
	out := make([]Kind, len(codecs))
	for i, c := range codecs {
		out[i] = Kind(c.ID)
	}
	return out
}

// config carries every option New understands; each kind reads the fields
// relevant to it.
type config struct {
	eps        float64
	n          int
	itemBytes  int
	seed       uint64
	workers    int
	y          int
	domainSize int
	minCount   float64
	candidates [][]byte
	windows    int
	topK       int
	windowSize int
	streamKind stream.Kind
	rounds     int
	bitsPerRnd int
	theta      float64
}

// Option configures New.
type Option func(*config)

// WithEps sets the total privacy budget per user (required; every protocol
// rejects a non-positive ε).
func WithEps(eps float64) Option { return func(c *config) { c.eps = eps } }

// WithN sets the expected number of users (required; sizes sketches and
// recovery floors).
func WithN(n int) Option { return func(c *config) { c.n = n } }

// WithItemBytes sets the fixed item width in bytes (default 4; |X| =
// 256^ItemBytes).
func WithItemBytes(b int) Option { return func(c *config) { c.itemBytes = b } }

// WithSeed sets the public-randomness seed. A device-side and a server-side
// instance built with the same options agree on all public randomness.
func WithSeed(seed uint64) Option { return func(c *config) { c.seed = seed } }

// WithWorkers bounds the Identify worker pool (PrivateExpanderSketch; 0
// derives GOMAXPROCS). Output is bit-identical at every worker count.
func WithWorkers(w int) Option { return func(c *config) { c.workers = w } }

// WithY sets the per-coordinate hash range (PrivateExpanderSketch; 0
// derives the default 512).
func WithY(y int) Option { return func(c *config) { c.y = y } }

// WithDomainSize sets |X| for the enumerable-domain kinds (KindSmallDomain,
// KindDirectHistogram, KindBassilySmith, KindStreamHG), whose items are
// width-ItemBytes encodings of ordinals [0, size). Defaults to the full
// 256^ItemBytes domain when ItemBytes <= 2; wider items require it
// explicitly.
func WithDomainSize(size int) Option { return func(c *config) { c.domainSize = size } }

// WithMinCount drops Identify output below the floor (0 keeps everything,
// except KindBassilySmith, which defaults to its β = 0.05 error bound — an
// unfloored exhaustive scan would return a domain-sized list of noise).
func WithMinCount(m float64) Option { return func(c *config) { c.minCount = m } }

// WithCandidates sets the Identify query set for the candidate-based kinds:
// protocols that cannot enumerate an open domain and instead estimate a
// known dictionary (KindHashtogram today; any future oracle-style kind
// reads the same option). The open-domain interactive kinds (KindPEM,
// KindFedTrie) reject it — discovering the candidate set round by round is
// their whole point — and the enumerable-domain kinds ignore it.
func WithCandidates(items [][]byte) Option { return func(c *config) { c.candidates = items } }

// WithWindows sets the streaming per-user budget split w (KindStreamHG;
// default 4): each report is randomized at ε/w, so a device reporting at
// most once per window spends at most ε over the stream.
func WithWindows(w int) Option { return func(c *config) { c.windows = w } }

// WithTopK sets the streaming answer size (KindStreamHG; default 16):
// Identify and parameterless QueryTopK return the k largest debiased
// estimates.
func WithTopK(k int) Option { return func(c *config) { c.topK = k } }

// WithWindowSize sets the server-side window clock for KindStreamHG: the
// window index advances every n absorbed reports (default n/windows when
// WithN is set, else 4096). The first window is the bounded structure's
// warmup phase.
func WithWindowSize(n int) Option { return func(c *config) { c.windowSize = n } }

// WithRounds sets the interactive round count g (KindPEM, KindFedTrie; 0
// derives ceil(8·ItemBytes/bitsPerRound)). Users are partitioned into g
// groups by public randomness and each group reports in exactly one round,
// so the per-user budget stays ε across the whole discovery.
func WithRounds(g int) Option { return func(c *config) { c.rounds = g } }

// WithBitsPerRound sets the per-round prefix extension γ (KindPEM,
// KindFedTrie; default 4): round i reports against candidates of the first
// γ·(i+1) item bits.
func WithBitsPerRound(bits int) Option { return func(c *config) { c.bitsPerRnd = bits } }

// WithTheta sets the federated-trie survival threshold (KindFedTrie): a
// prefix advances to the next round only when its population-scaled vote
// reaches θ. Zero derives the round's β = 0.05 error bound.
func WithTheta(theta float64) Option { return func(c *config) { c.theta = theta } }

// WithStreamNaive selects the streaming full-histogram structure instead of
// the default bounded HeavyGuardian one (KindStreamHG): O(domain) memory,
// the accuracy baseline the bounded structure is judged against. Both
// absorb identical wire reports.
func WithStreamNaive() Option { return func(c *config) { c.streamKind = stream.Naive } }

// New constructs a protocol instance of the given kind through the unified
// proto surface: the result is both the device side (Report) and the
// server side (Absorb/Identify), and plugs directly into
// NewAggregationServer or the in-process merge trees (capability
// permitting).
//
//	hh, err := ldphh.New(ldphh.PrivateExpanderSketch,
//		ldphh.WithEps(2), ldphh.WithN(100000), ldphh.WithItemBytes(8))
//
// The legacy concrete constructors (NewHeavyHitters, NewBitstogram, ...)
// remain as thin wrappers over the same internals for callers that want
// the protocol-specific APIs.
func New(kind Kind, opts ...Option) (Protocol, error) {
	cfg := config{itemBytes: 4}
	for _, opt := range opts {
		opt(&cfg)
	}
	switch kind {
	case PrivateExpanderSketch:
		return core.NewPESWire(core.Params{
			Eps: cfg.eps, N: cfg.n, ItemBytes: cfg.itemBytes,
			Y: cfg.y, Workers: cfg.workers, Seed: cfg.seed,
		})
	case KindSmallDomain:
		size, err := cfg.domain(kind)
		if err != nil {
			return nil, err
		}
		return core.NewSmallDomainWire(cfg.eps, cfg.itemBytes, size, cfg.n, cfg.minCount)
	case KindHashtogram:
		return freqoracle.NewHashtogramWire(freqoracle.HashtogramParams{
			Eps: cfg.eps, N: cfg.n, Seed: cfg.seed,
		}, cfg.candidates, cfg.minCount)
	case KindDirectHistogram:
		size, err := cfg.domain(kind)
		if err != nil {
			return nil, err
		}
		return freqoracle.NewDirectHistogramWire(cfg.eps, cfg.itemBytes, size, cfg.n, cfg.minCount)
	case KindBitstogram:
		return baseline.NewBitstogramWire(baseline.BitstogramParams{
			Eps: cfg.eps, N: cfg.n, ItemBytes: cfg.itemBytes, Seed: cfg.seed,
		}, cfg.minCount)
	case KindTreeHist:
		return baseline.NewTreeHistWire(baseline.TreeHistParams{
			Eps: cfg.eps, N: cfg.n, ItemBytes: cfg.itemBytes, Seed: cfg.seed,
		})
	case KindBassilySmith:
		size, err := cfg.domain(kind)
		if err != nil {
			return nil, err
		}
		return baseline.NewBassilySmithWire(baseline.BassilySmithParams{
			Eps: cfg.eps, N: cfg.n, ItemBytes: cfg.itemBytes,
			DomainSize: size, Seed: cfg.seed,
		}, cfg.minCount)
	case KindStreamHG:
		size, err := cfg.domain(kind)
		if err != nil {
			return nil, err
		}
		windows, topK, windowSize := cfg.windows, cfg.topK, cfg.windowSize
		if windows == 0 {
			windows = 4
		}
		if topK == 0 {
			topK = 16
		}
		if windowSize == 0 {
			if cfg.n > 0 && cfg.n/windows > 0 {
				windowSize = cfg.n / windows
			} else {
				windowSize = 4096
			}
		}
		sk := cfg.streamKind
		if sk == 0 {
			sk = stream.BasicHG
		}
		return stream.NewWire(stream.Params{
			Kind: sk, Eps: cfg.eps, Windows: windows, K: topK,
			Domain: size, WindowSize: windowSize, WarmupWindows: 1,
			N: cfg.n, Seed: cfg.seed, Workers: cfg.workers,
		}, cfg.itemBytes)
	case KindPEM, KindFedTrie:
		if len(cfg.candidates) > 0 {
			return nil, fmt.Errorf("ldphh: %v discovers its candidate set over rounds; WithCandidates is not applicable", kind)
		}
		mode := interactive.ModePEM
		if kind == KindFedTrie {
			mode = interactive.ModeFedTrie
		}
		return interactive.NewWire(interactive.Params{
			Mode: mode, Eps: cfg.eps, N: cfg.n, ItemBytes: cfg.itemBytes,
			Rounds: cfg.rounds, BitsPerRound: cfg.bitsPerRnd, TopK: cfg.topK,
			Theta: cfg.theta, Seed: cfg.seed, Workers: cfg.workers,
		})
	default:
		return nil, fmt.Errorf("ldphh: unknown protocol kind %v", kind)
	}
}

// domain resolves the enumerable-domain size: explicit WithDomainSize, or
// the full item-width domain when that is small enough to enumerate.
func (c config) domain(kind Kind) (int, error) {
	if c.domainSize > 0 {
		return c.domainSize, nil
	}
	if c.itemBytes >= 1 && c.itemBytes <= 2 {
		return 1 << (8 * c.itemBytes), nil
	}
	return 0, fmt.Errorf("ldphh: %v over %d-byte items needs WithDomainSize (cannot enumerate 256^%d)",
		kind, c.itemBytes, c.itemBytes)
}
