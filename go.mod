module ldphh

go 1.22
