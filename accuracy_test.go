package ldphh_test

// End-to-end statistical accuracy suite: seeded heavy-hitters rounds
// through the public facade asserting the two halves of Theorem 3.13 with
// this implementation's concrete constants.
//
//  1. Recall — every planted item whose true multiplicity clears the
//     configuration's recovery floor (Params.MinRecoverableFrequency, the
//     Theorem 3.13 item-2 bound) must appear in the Identify output.
//  2. Error — the confirmation estimates of all identified items, planted
//     or not, deviate from exact ground truth by at most an envelope
//     inverted from the confirmation oracle's exact binomial tails
//     (internal/dist.BinomialTailGE), the Theorem 3.13 item-1 shape.
//
// Every round is seeded, so the suite is deterministic: it exercises the
// statistical guarantee without flaking. testing.Short() runs one small
// round so tier-1 stays quick; the full suite (CI runs it on push to main)
// sweeps more rounds at the paper-scale population.

import (
	"context"
	"errors"
	"math"
	"math/rand/v2"
	"runtime"
	"testing"

	"ldphh"
	"ldphh/internal/dist"
	"ldphh/internal/hadamard"
	"ldphh/internal/ldp"
)

// confirmErrorBound inverts the confirmation oracle's error law into a
// deviation envelope at failure probability beta, using exact binomial
// tails rather than a Gaussian approximation.
//
// Model (Theorem 3.7's count-median estimator): a sketch row holds k ≈
// n/rows users, each contributing one ±1 bit; the row's rescaled estimate
// carries noise (n/k)·CEps(ε/2)·S_k where S_k is a k-step ±1 walk, so
// Pr[row deviates by more than e] = Pr[S_k ≥ e·k/(n·CEps)], an exact
// dist.BinomialTailGE evaluation. The published estimate is the median
// over rows, which exceeds e only when half the rows do — again a binomial
// tail. The returned envelope is the smallest quarter-sd grid point whose
// modelled failure probability is below beta, inflated by a 1.5 safety
// factor for what the walk model ignores (uneven row occupancy and sketch
// collisions with other heavy items).
func confirmErrorBound(n, rows int, eps, beta float64) float64 {
	k := n / rows
	e := math.Exp(eps / 2)
	ceps := (e + 1) / (e - 1)
	sd := ceps * float64(n) / math.Sqrt(float64(k))
	for mult := 1.0; mult < 64; mult += 0.25 {
		env := mult * sd
		t := env * float64(k) / (float64(n) * ceps)
		pRow := 2 * dist.BinomialTailGE(k, int(math.Ceil((float64(k)+t)/2)), 0.5)
		if pRow > 1 {
			pRow = 1
		}
		pMedian := dist.BinomialTailGE(rows, rows/2, pRow)
		if pMedian <= beta {
			return 1.5 * env
		}
	}
	panic("confirmErrorBound: no envelope below beta within 64 sd")
}

// accuracyRound is one planted-workload collection round.
type accuracyRound struct {
	n         int
	fractions []float64
	seed      uint64
}

func runAccuracyRound(t *testing.T, r accuracyRound) {
	t.Helper()
	dom := ldphh.Domain{ItemBytes: 4}
	ds, err := ldphh.PlantedDataset(dom, r.n, r.fractions, rand.New(rand.NewPCG(r.seed, 2)))
	if err != nil {
		t.Fatal(err)
	}
	params := ldphh.Params{Eps: 4, N: r.n, ItemBytes: 4, Y: 64, Seed: r.seed}
	hh, err := ldphh.NewHeavyHitters(params)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(r.seed, 3))
	reports := make([]ldphh.Report, r.n)
	for i, x := range ds.Items {
		if reports[i], err = hh.Report(x, i, rng); err != nil {
			t.Fatal(err)
		}
	}
	if err := hh.AbsorbBatch(reports, runtime.GOMAXPROCS(0)); err != nil {
		t.Fatal(err)
	}
	est, err := hh.Identify()
	if err != nil {
		t.Fatal(err)
	}
	estOf := make(map[string]float64, len(est))
	for _, e := range est {
		estOf[string(e.Item)] = e.Count
	}

	// Theorem 3.13 item 2: full recall above the recovery floor.
	floor := hh.Params().MinRecoverableFrequency()
	promised := ds.HeavierThan(int(floor))
	if len(promised) == 0 {
		t.Fatalf("round %+v plants no item above the floor %.0f; the recall check would be vacuous", r, floor)
	}
	recalled := 0
	for _, h := range promised {
		if _, ok := estOf[string(h.Item)]; ok {
			recalled++
		} else {
			t.Errorf("round seed=%d: item %x with true count %d >= floor %.0f not identified",
				r.seed, h.Item, h.Count, floor)
		}
	}
	t.Logf("seed=%d n=%d: recalled %d/%d promised items, output size %d, floor %.0f",
		r.seed, r.n, recalled, len(promised), len(est), floor)

	// Theorem 3.13 item 1: every published estimate is close to ground
	// truth — planted heavy hitters and any extra identified items alike.
	beta := 1e-3 / float64(len(est)+1) // union over the output list
	bound := confirmErrorBound(r.n, hh.ConfOracleParams().Rows, params.Eps, beta)
	maxErr := 0.0
	for _, e := range est {
		diff := math.Abs(e.Count - float64(ds.Count(e.Item)))
		if diff > maxErr {
			maxErr = diff
		}
		if diff > bound {
			t.Errorf("round seed=%d: item %x estimated %.0f, true %d — error %.0f exceeds the binomial-tail bound %.0f",
				r.seed, e.Item, e.Count, ds.Count(e.Item), diff, bound)
		}
	}
	t.Logf("seed=%d: max |estimate-truth| = %.0f, binomial-tail bound = %.0f", r.seed, maxErr, bound)

	// The output list must stay small: candidates are verified re-encoded
	// items, so a junk-flooded decode would show up here.
	if len(est) > 8*len(r.fractions) {
		t.Errorf("round seed=%d: output list of %d items for %d planted heavy hitters", r.seed, len(est), len(r.fractions))
	}
}

// TestAccuracyPlanted is the end-to-end guarantee gate. Short mode runs one
// reduced round; full mode sweeps three seeds at the benchmark population.
func TestAccuracyPlanted(t *testing.T) {
	if testing.Short() {
		runAccuracyRound(t, accuracyRound{n: 12000, fractions: []float64{0.35, 0.25, 0.15}, seed: 101})
		return
	}
	for _, r := range []accuracyRound{
		{n: 30000, fractions: []float64{0.25, 0.18, 0.12}, seed: 101},
		{n: 30000, fractions: []float64{0.25, 0.18, 0.12}, seed: 202},
		{n: 30000, fractions: []float64{0.3, 0.2}, seed: 303},
	} {
		runAccuracyRound(t, r)
	}
}

// TestAccuracyOpenDomainPEM is the interactive acceptance gate: on an open
// domain (stationary zipf, no candidate list anywhere), KindPEM must
// recover the true top-k with recall at least the TreeHist baseline's at
// equal ε and n, and every round's randomizer must stay inside the ε
// budget. The budget argument is composition-free by construction — users
// are partitioned into round groups and each reports exactly once, so the
// worst-case likelihood ratio across the whole discovery is the worst
// single round's, verified here exhaustively with ldp.MaxPrivacyRatio.
func TestAccuracyOpenDomainPEM(t *testing.T) {
	n := 30000
	if testing.Short() {
		n = 12000
	}
	const (
		eps  = 4.0
		k    = 8
		seed = 606
	)
	ctx := context.Background()
	dom := ldphh.Domain{ItemBytes: 2}
	ds, err := ldphh.ZipfDataset(dom, n, 64, 1.4, rand.New(rand.NewPCG(seed, 2)))
	if err != nil {
		t.Fatal(err)
	}
	trueTop := ds.TopK(k)
	recallOf := func(est []ldphh.Estimate) float64 {
		have := make(map[string]bool, len(est))
		for _, e := range est {
			have[string(e.Item)] = true
		}
		hits := 0
		for _, tc := range trueTop {
			if have[string(tc.Item)] {
				hits++
			}
		}
		return float64(hits) / float64(len(trueTop))
	}

	pem, err := ldphh.New(ldphh.KindPEM,
		ldphh.WithEps(eps), ldphh.WithN(n), ldphh.WithItemBytes(2),
		ldphh.WithSeed(seed), ldphh.WithTopK(k))
	if err != nil {
		t.Fatal(err)
	}
	it, ok := ldphh.AsInteractive(pem)
	if !ok {
		t.Fatal("KindPEM is not Interactive")
	}
	maxRatio, rounds := 0.0, 0
	for rs := it.RoundState(); !rs.Done; rs = it.RoundState() {
		// Per-round budget audit: the round's report goes through the
		// Theorem 3.8 Hadamard-bit randomizer over the padded candidate
		// domain at the full ε.
		r := ldp.NewHadamardBit(eps, hadamard.NextPow2(len(rs.Candidates)+1))
		if ratio := ldp.MaxPrivacyRatio(r); ratio > maxRatio {
			maxRatio = ratio
		}
		for i, x := range ds.Items {
			wr, err := pem.Report(x, i, ldphh.RoundRand(seed, rs.Round, i))
			if errors.Is(err, ldphh.ErrNotInRound) {
				continue
			}
			if err != nil {
				t.Fatalf("report %d round %d: %v", i, rs.Round, err)
			}
			if err := pem.Absorb(wr); err != nil {
				t.Fatalf("absorb %d round %d: %v", i, rs.Round, err)
			}
		}
		if _, err := it.AdvanceRound(); err != nil {
			t.Fatal(err)
		}
		rounds++
	}
	if budget := math.Exp(eps); maxRatio > budget*(1+1e-9) {
		t.Errorf("worst per-round privacy ratio %.6f exceeds e^ε = %.6f", maxRatio, budget)
	}
	pemEst, err := pem.Identify(ctx)
	if err != nil {
		t.Fatal(err)
	}
	pemRecall := recallOf(pemEst)

	th, err := ldphh.New(ldphh.KindTreeHist,
		ldphh.WithEps(eps), ldphh.WithN(n), ldphh.WithItemBytes(2), ldphh.WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(seed, 3))
	for i, x := range ds.Items {
		wr, err := th.Report(x, i, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := th.Absorb(wr); err != nil {
			t.Fatal(err)
		}
	}
	thEst, err := th.Identify(ctx)
	if err != nil {
		t.Fatal(err)
	}
	thRecall := recallOf(thEst)

	t.Logf("n=%d rounds=%d: PEM recall@%d = %.2f, TreeHist recall@%d = %.2f, worst round ratio %.4f (e^ε = %.4f)",
		n, rounds, k, pemRecall, k, thRecall, maxRatio, math.Exp(eps))
	if pemRecall < thRecall {
		t.Errorf("PEM recall@%d %.2f below the TreeHist baseline %.2f at equal ε and n", k, pemRecall, thRecall)
	}
	if pemRecall == 0 {
		t.Error("PEM recovered none of the true top-k — the comparison is vacuous")
	}
}

// TestAccuracyFrequencyOracle checks the post-Identify ad-hoc query surface
// (Definition 3.2): frequencies of items that were never identified —
// including absent ones — estimate within the same binomial-tail envelope.
func TestAccuracyFrequencyOracle(t *testing.T) {
	const n = 12000
	dom := ldphh.Domain{ItemBytes: 4}
	ds, err := ldphh.PlantedDataset(dom, n, []float64{0.35, 0.2}, rand.New(rand.NewPCG(7, 2)))
	if err != nil {
		t.Fatal(err)
	}
	params := ldphh.Params{Eps: 4, N: n, ItemBytes: 4, Y: 64, Seed: 7}
	hh, err := ldphh.NewHeavyHitters(params)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(7, 3))
	for i, x := range ds.Items {
		rep, err := hh.Report(x, i, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := hh.Absorb(rep); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := hh.Identify(); err != nil {
		t.Fatal(err)
	}
	queries := [][]byte{
		dom.Item(1),              // planted heavy
		dom.Item(2),              // planted heavy
		{0xde, 0xad, 0xbe, 0xef}, // absent: true count 0 (or tail noise)
		{0x01, 0x02, 0x03, 0x04}, // absent
	}
	bound := confirmErrorBound(n, hh.ConfOracleParams().Rows, params.Eps, 1e-3/float64(len(queries)))
	for _, q := range queries {
		got := hh.EstimateFrequency(q)
		truth := float64(ds.Count(q))
		if diff := math.Abs(got - truth); diff > bound {
			t.Errorf("EstimateFrequency(%x) = %.0f, true %.0f — error %.0f exceeds bound %.0f",
				q, got, truth, diff, bound)
		}
	}
}
