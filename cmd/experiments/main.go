// Command experiments regenerates the paper-versus-measured record for
// every Table 1 row and every Section 4-7 theorem. Its output is the
// measured column of the reproduction record.
//
// Usage:
//
//	experiments [-quick] [-only E7]
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand/v2"
	"os"
	"strings"
	"time"

	"ldphh/internal/baseline"
	"ldphh/internal/composition"
	"ldphh/internal/core"
	"ldphh/internal/dist"
	"ldphh/internal/freqoracle"
	"ldphh/internal/genprot"
	"ldphh/internal/grouposition"
	"ldphh/internal/ldp"
	"ldphh/internal/lowerbound"
	"ldphh/internal/workload"
)

var (
	quick = flag.Bool("quick", false, "reduced trial counts")
	only  = flag.String("only", "", "run a single experiment id (e.g. E7)")
)

func main() {
	flag.Parse()
	run := func(id, title string, f func()) {
		if *only != "" && !strings.EqualFold(*only, id) {
			return
		}
		fmt.Printf("\n== %s: %s ==\n", id, title)
		start := time.Now()
		f()
		fmt.Printf("-- %s done in %v\n", id, time.Since(start).Round(time.Millisecond))
	}

	run("E1", "Table 1 server time scaling", e1ServerTime)
	run("E2", "Table 1 user time", e2UserTime)
	run("E3", "Table 1 server memory scaling", e3ServerMemory)
	run("E5", "Table 1 communication per user", e5Communication)
	run("E6", "Table 1 public randomness per user", e6PublicRandomness)
	run("E7", "Table 1 worst-case error vs beta", e7WorstCaseError)
	run("E8", "Theorem 4.2 advanced grouposition", e8Grouposition)
	run("E9", "Theorem 4.5 max-information", e9MaxInformation)
	run("E10", "Theorem 5.1 RR composition", e10Composition)
	run("E11", "Theorem 6.1 GenProt", e11GenProt)
	run("E12", "Theorem 7.2 lower-bound tightness", e12LowerBound)
	run("E13", "Theorem A.4/A.5 anti-concentration", e13AntiConcentration)
	run("E14", "Frequency-oracle comparison (industrial baselines)", e14OracleComparison)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func nSweep() []int {
	if *quick {
		return []int{10000, 20000}
	}
	return []int{10000, 20000, 40000, 80000}
}

// runPES executes one full protocol round and returns (absorb time,
// identify time, estimates).
func runPES(n int, ds *workload.Dataset, seed uint64) (time.Duration, time.Duration, []core.Estimate) {
	p, err := core.New(core.Params{Eps: 4, N: n, ItemBytes: 4, Y: 64, Seed: seed})
	check(err)
	rng := rand.New(rand.NewPCG(seed, 99))
	reports := make([]core.Report, n)
	for i, x := range ds.Items {
		reports[i], err = p.Report(x, i, rng)
		check(err)
	}
	start := time.Now()
	for _, rep := range reports {
		check(p.Absorb(rep))
	}
	absorb := time.Since(start)
	start = time.Now()
	est, err := p.Identify()
	check(err)
	return absorb, time.Since(start), est
}

func runBitstogram(n int, ds *workload.Dataset, seed uint64) (time.Duration, []baseline.Estimate) {
	p, err := baseline.NewBitstogram(baseline.BitstogramParams{Eps: 4, N: n, ItemBytes: 4, Seed: seed})
	check(err)
	rng := rand.New(rand.NewPCG(seed, 99))
	reports := make([]baseline.BitstogramReport, n)
	for i, x := range ds.Items {
		reports[i], err = p.Report(x, i, rng)
		check(err)
	}
	start := time.Now()
	for _, rep := range reports {
		check(p.Absorb(rep))
	}
	est, err := p.Identify(0)
	check(err)
	return time.Since(start), est
}

func runBS(n, domainSize int, seed uint64) time.Duration {
	p, err := baseline.NewBassilySmith(baseline.BassilySmithParams{
		Eps: 4, N: n, ItemBytes: 2, DomainSize: domainSize, Proj: domainSize, Seed: seed,
	})
	check(err)
	rng := rand.New(rand.NewPCG(seed, 99))
	reports := make([]baseline.BassilySmithReport, n)
	for i := range reports {
		reports[i], err = p.Report(uint64(i%domainSize), i, rng)
		check(err)
	}
	start := time.Now()
	for _, rep := range reports {
		check(p.Absorb(rep))
	}
	p.Identify(math.Inf(1))
	return time.Since(start)
}

func dataset(n int, seed uint64) *workload.Dataset {
	dom := workload.Domain{ItemBytes: 4}
	ds, err := workload.Planted(dom, n, []float64{0.25, 0.18}, rand.New(rand.NewPCG(seed, 2)))
	check(err)
	return ds
}

func e1ServerTime() {
	fmt.Println("paper: PES O~(n), Bitstogram O~(n), Bassily-Smith O~(n^2.5)")
	fmt.Println("PES identify is the fixed O~(sqrt(n)·polylog) reconstruction; absorb is the O(n) term")
	fmt.Printf("%8s %12s %14s %14s %18s\n", "n", "pes-absorb", "pes-identify", "bitstogram", "bassily-smith*")
	for _, n := range nSweep() {
		ds := dataset(n, uint64(n))
		ta, ti, _ := runPES(n, ds, uint64(n))
		tb, _ := runBitstogram(n, ds, uint64(n))
		// BS at a matched reduced domain so the sweep finishes; its column
		// grows superlinearly in n because Proj ~ domain ~ n here.
		tbs := runBS(n, min(n, 1<<14), uint64(n))
		fmt.Printf("%8d %12v %14v %14v %18v\n", n, ta.Round(time.Millisecond),
			ti.Round(time.Millisecond), tb.Round(time.Millisecond), tbs.Round(time.Millisecond))
	}
	fmt.Println("  (*scaled-down domain; see DESIGN.md S3)")
}

func e2UserTime() {
	n := 20000
	ds := dataset(n, 1)
	p, err := core.New(core.Params{Eps: 4, N: n, ItemBytes: 4, Y: 64, Seed: 1})
	check(err)
	bt, err := baseline.NewBitstogram(baseline.BitstogramParams{Eps: 4, N: n, ItemBytes: 4, Seed: 1})
	check(err)
	rng := rand.New(rand.NewPCG(1, 1))
	reps := 200000
	if *quick {
		reps = 20000
	}
	start := time.Now()
	for i := 0; i < reps; i++ {
		_, err := p.Report(ds.Items[i%n], i, rng)
		check(err)
	}
	perPES := time.Since(start) / time.Duration(reps)
	start = time.Now()
	for i := 0; i < reps; i++ {
		_, err := bt.Report(ds.Items[i%n], i, rng)
		check(err)
	}
	perBT := time.Since(start) / time.Duration(reps)
	fmt.Println("paper: O~(1) per user for both PES and Bitstogram")
	fmt.Printf("measured per-report: pes=%v bitstogram=%v\n", perPES, perBT)
}

func e3ServerMemory() {
	fmt.Println("paper: PES/Bitstogram O~(sqrt(n)) + per-coordinate polylog buffers; BS O(n) projection state")
	fmt.Printf("%8s %14s %14s %14s\n", "n", "pes", "bitstogram", "bassily-smith")
	for _, n := range nSweep() {
		p, err := core.New(core.Params{Eps: 4, N: n, ItemBytes: 4, Y: 64, Seed: 1})
		check(err)
		bt, err := baseline.NewBitstogram(baseline.BitstogramParams{Eps: 4, N: n, ItemBytes: 4, Seed: 1})
		check(err)
		bs, err := baseline.NewBassilySmith(baseline.BassilySmithParams{
			Eps: 4, N: n, ItemBytes: 2, DomainSize: 1 << 12, Seed: 1,
		})
		check(err)
		fmt.Printf("%8d %14d %14d %14d\n", n, p.SketchBytes(), bt.SketchBytes(), bs.SketchBytes())
	}
}

func e5Communication() {
	n := 20000
	p, err := core.New(core.Params{Eps: 4, N: n, ItemBytes: 4, Y: 64, Seed: 1})
	check(err)
	bt, err := baseline.NewBitstogram(baseline.BitstogramParams{Eps: 4, N: n, ItemBytes: 4, Seed: 1})
	check(err)
	bs, err := baseline.NewBassilySmith(baseline.BassilySmithParams{
		Eps: 4, N: n, ItemBytes: 2, DomainSize: 1 << 12, Seed: 1,
	})
	check(err)
	fmt.Println("paper: O(1) per user for all three")
	fmt.Printf("measured report bytes: pes=%d bitstogram=%d bassily-smith=%d\n",
		p.BytesPerReport(), bt.BytesPerReport(), bs.BytesPerReport())
}

func e6PublicRandomness() {
	fmt.Println("paper: PES/Bitstogram O~(1) words; Bassily-Smith O~(n^1.5) bits")
	fmt.Println("measured: every implementation here ships a 1-word seed;")
	fmt.Println("the original [4] protocol would need the explicit Proj x |X| sign table")
	for _, n := range nSweep() {
		bits := math.Pow(float64(n), 1.5)
		fmt.Printf("  n=%8d  [4]-table ~= %.2e bits vs 64 bits here\n", n, bits)
	}
}

func e7WorstCaseError() {
	n := 30000
	trials := 40
	if *quick {
		trials = 8
	}
	dom := workload.Domain{ItemBytes: 4}
	ds := dataset(n, 7)
	fmt.Println("paper: PES error ~ sqrt(n·log(|X|/beta)); Bitstogram ~ sqrt(n·log(|X|/beta)·log(1/beta))")
	fmt.Println("formula thresholds (min recoverable frequency):")
	fmt.Printf("%10s %14s %16s %10s\n", "beta", "pes", "bitstogram", "ratio")
	for _, beta := range []float64{0.25, 0.05, 0.01, 0.001, 1e-6} {
		pp := core.Params{Eps: 4, N: n, ItemBytes: 4, Y: 64}
		bp := baseline.BitstogramParams{Eps: 4, N: n, ItemBytes: 4, Beta: beta, Seed: 1}
		bt, err := baseline.NewBitstogram(bp)
		check(err)
		pes := pesMinFreq(pp)
		bit := bt.MinRecoverableFrequency()
		fmt.Printf("%10.0e %14.0f %16.0f %10.2f\n", beta, pes, bit, bit/pes)
	}
	fmt.Println("  (PES threshold is beta-free; Bitstogram grows ~sqrt(log(1/beta)))")

	// Measured: error quantiles of the confirmation estimates across trials.
	var pesErrs, bitErrs []float64
	for tr := 0; tr < trials; tr++ {
		_, _, estP := runPES(n, ds, uint64(tr)+500)
		_, estB := runBitstogram(n, ds, uint64(tr)+500)
		pesErrs = append(pesErrs, worstErr(estsToPairs(estP), ds, dom))
		bitErrs = append(bitErrs, worstErrBase(estB, ds, dom))
	}
	fmt.Printf("measured worst planted-item error over %d trials:\n", trials)
	fmt.Printf("%12s %10s %10s\n", "quantile", "pes", "bitstogram")
	for _, q := range []float64{0.5, 0.9, 1.0} {
		fmt.Printf("%12.2f %10.0f %10.0f\n", q, dist.Quantile(pesErrs, q), dist.Quantile(bitErrs, q))
	}
}

func pesMinFreq(p core.Params) float64 {
	proto, err := core.New(p)
	check(err)
	return proto.Params().MinRecoverableFrequency()
}

func estsToPairs(est []core.Estimate) []baseline.Estimate {
	out := make([]baseline.Estimate, len(est))
	for i, e := range est {
		out[i] = baseline.Estimate{Item: e.Item, Count: e.Count}
	}
	return out
}

func worstErr(est []baseline.Estimate, ds *workload.Dataset, dom workload.Domain) float64 {
	return worstErrBase(est, ds, dom)
}

func worstErrBase(est []baseline.Estimate, ds *workload.Dataset, dom workload.Domain) float64 {
	worst := 0.0
	for i := 1; i <= 2; i++ {
		item := dom.Item(uint64(i))
		truth := float64(ds.Count(item))
		errv := truth // missing = full miss
		for _, e := range est {
			if string(e.Item) == string(item) {
				errv = math.Abs(e.Count - truth)
				break
			}
		}
		if errv > worst {
			worst = errv
		}
	}
	return worst
}

func e8Grouposition() {
	trials := 40000
	if *quick {
		trials = 5000
	}
	rng := rand.New(rand.NewPCG(8, 8))
	rows, err := grouposition.Experiment(0.2, []int{10, 50, 200, 1000}, 0.05, trials, rng)
	check(err)
	fmt.Println("paper: group loss quantile <= kε²/2 + ε·sqrt(2k·ln(1/δ)) << kε")
	fmt.Printf("%6s %12s %12s %12s\n", "k", "measured", "advanced", "central")
	for _, r := range rows {
		fmt.Printf("%6d %12.3f %12.3f %12.3f\n", r.K, r.MeasuredQuant, r.AdvancedBound, r.CentralBound)
	}
}

func e9MaxInformation() {
	fmt.Println("paper: I_beta(A;n) <= nε²/2 + ε·sqrt(2n·ln(1/β)) nats (non-product inputs)")
	fmt.Printf("%8s %10s %14s %14s\n", "n", "beta", "ldp-bound", "central nε")
	for _, n := range []int{1000, 10000, 100000} {
		for _, beta := range []float64{0.05, 0.001} {
			fmt.Printf("%8d %10.0e %14.2f %14.2f\n", n, beta,
				grouposition.MaxInformation(0.1, n, beta),
				grouposition.CentralMaxInformation(0.1, n))
		}
	}
}

func e10Composition() {
	fmt.Println("paper: M̃ is 6ε·sqrt(k·ln(2/β))-LDP and β-close to k-fold RR")
	fmt.Printf("%6s %8s %8s %12s %12s %10s %12s\n",
		"k", "eps", "beta", "exact-ratio", "tilde-eps", "k*eps", "exact-TV")
	for _, cfg := range []struct {
		k    int
		eps  float64
		beta float64
	}{{64, 0.008, 0.004}, {256, 0.004, 0.002}, {1024, 0.002, 0.01}} {
		m, err := composition.New(cfg.k, cfg.eps, cfg.beta)
		check(err)
		fmt.Printf("%6d %8.3f %8.3f %12.4f %12.4f %10.3f %12.2e\n",
			cfg.k, cfg.eps, cfg.beta, m.MaxRatioExhaustive(), m.TildeEpsilon(),
			m.BasicCompositionEpsilon(), m.ExactTV())
	}
}

func e11GenProt() {
	const eps = 0.2
	const delta = 1e-4
	r := ldp.NewLeakyRR(eps, delta)
	draws := 40
	if *quick {
		draws = 10
	}
	worstRatio, worstTV := 0.0, 0.0
	var tvSum float64
	var tr *genprot.Transform
	var err error
	for seed := uint64(0); seed < uint64(draws); seed++ {
		tr, err = genprot.New(genprot.Params{Eps: eps, T: 32}, r, rand.New(rand.NewPCG(seed, 1)))
		check(err)
		if v := tr.MaxReportRatio(); v > worstRatio {
			worstRatio = v
		}
		for x := uint64(0); x < 2; x++ {
			tv := dist.TVDist(tr.InducedDist(x), tr.OriginalDist(x))
			tvSum += tv
			if tv > worstTV {
				worstTV = tv
			}
		}
	}
	fmt.Println("paper: report distribution is purely 10ε-LDP; wrapped randomizer is only (ε,δ)")
	fmt.Printf("wrapped pure ratio: +Inf (leaky); GenProt measured worst ratio %.4f vs e^{10ε}=%.4f\n",
		worstRatio, math.Exp(10*eps))
	fmt.Printf("TV(induced, original): mean %.4f worst %.4f (per-user bound %.2e + public-randomness variance)\n",
		tvSum/float64(2*draws), worstTV, tr.TVBound())
	fmt.Printf("report size: %d bits = ceil(log2 T), T=%d\n", tr.ReportBits(), 32)
}

func e12LowerBound() {
	trials := 6000
	if *quick {
		trials = 1000
	}
	rng := rand.New(rand.NewPCG(12, 12))
	const n = 10000
	const eps = 0.5
	results, err := lowerbound.Experiment(eps, n, trials, 1, rng)
	check(err)
	m := lowerbound.SourceSize(eps, n, 1)
	rows := lowerbound.Tightness(results, m, []float64{0.2, 0.05, 0.01})
	fmt.Println("paper: every LDP oracle has error >= Ω(sqrt(m·ln(1/β))) w.p. β; RR matches => tight")
	fmt.Printf("%10s %14s %14s %10s\n", "beta", "measured-q", "sqrt(m·ln1/β)", "ratio")
	for _, row := range rows {
		fmt.Printf("%10.2f %14.1f %14.1f %10.2f\n",
			row.Beta, row.MeasuredQuant, row.TheoryShape, row.MeasuredQuant/row.TheoryShape)
	}
}

func e13AntiConcentration() {
	fmt.Println("paper (Thm A.4): Pr[Bin(n,p) >= np+t] >= exp(-9t²/np) for sqrt(3np) <= t <= np/2")
	n, p := 2000, 0.3
	np := float64(n) * p
	fmt.Printf("%8s %16s %16s\n", "t", "exact tail", "lower bound")
	for _, t := range []float64{math.Sqrt(3*np) + 1, 60, 90} {
		if t > np/2 {
			continue
		}
		exact := dist.BinomialTailGE(n, int(math.Ceil(np+t)), p)
		bound := dist.BinomialAntiConcentration(n, p, t)
		fmt.Printf("%8.1f %16.3e %16.3e\n", t, exact, bound)
	}
}

func e14OracleComparison() {
	// The paper's introduction positions its sketch-based oracles against
	// the deployed industrial mechanisms (RAPPOR in Chrome). Compare
	// max-absolute-error over a planted query set at equal ε.
	const n = 40000
	const eps = 1.5
	planted := map[uint64]int{1: 8000, 2: 4000, 3: 1500}
	dom := workload.Domain{ItemBytes: 4}
	var items [][]byte
	for k, c := range planted {
		for i := 0; i < c; i++ {
			items = append(items, dom.Item(k))
		}
	}
	frng := rand.New(rand.NewPCG(14, 14))
	for len(items) < n {
		items = append(items, dom.RandomItem(frng))
	}
	frng.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })

	hash, err := freqoracle.NewHashtogramOracle(freqoracle.HashtogramParams{Eps: eps, N: n, Seed: 77})
	check(err)
	olh, err := freqoracle.NewOLHOracle(eps, 0, 78)
	check(err)
	oracles := []freqoracle.Oracle{hash, freqoracle.NewRAPPOROracle(eps, 64, 2, 79), olh}

	fmt.Printf("%-12s %12s %14s %12s\n", "oracle", "max-error", "report-bytes", "sketch-bytes")
	for _, o := range oracles {
		rng := rand.New(rand.NewPCG(15, 15))
		for i, x := range items {
			check(o.AddUser(x, i, rng))
		}
		o.Finalize()
		worst := 0.0
		for k, c := range planted {
			if d := math.Abs(o.Estimate(dom.Item(k)) - float64(c)); d > worst {
				worst = d
			}
		}
		// plus one absent item
		if d := math.Abs(o.Estimate(dom.Item(999999))); d > worst {
			worst = d
		}
		fmt.Printf("%-12s %12.0f %14d %12d\n", o.Name(), worst, o.BytesPerReport(), o.SketchBytes())
	}
	fmt.Println("  (olh estimates cost O(n) per query; rappor biases upward under bloom collisions)")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
