package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"ldphh"
)

// The crash scenario (-scenario crash) is the durability acceptance test
// run as a real process pair: a child aggregation server with ack-coupled
// checkpoints (WithCheckpointEvery == the mega-batch size) is killed with
// SIGKILL mid-ingest, restarted over the same checkpoint directory, and
// the parent replays only the batches the dead server never acknowledged.
// The restarted server must hold exactly the acknowledged prefix after
// recovery, and its final Identify must be bit-identical to an
// uninterrupted in-process run over the same report population — the
// crash cost the round nothing but the unacknowledged window.
//
// The child is this same binary re-executed with HHLOAD_SERVE=1 (works
// identically for the installed binary and the go-test binary, whose
// TestMain performs the same dispatch), so the kill is a genuine
// process-level SIGKILL, not an in-process simulation.

// serveEnv is the environment variable carrying the child's JSON config.
const (
	serveFlagEnv = "HHLOAD_SERVE"
	serveCfgEnv  = "HHLOAD_SERVE_CFG"
)

// serveConfig is what the parent ships to the re-executed child.
type serveConfig struct {
	Load     loadConfig `json:"load"`
	CkptDir  string     `json:"ckpt_dir"`
	AddrFile string     `json:"addr_file"` // child writes "ingestAddr\nmetricsAddr\n" here
}

// crashResult is the recovered-vs-uninterrupted comparison artifact the CI
// recovery job uploads.
type crashResult struct {
	Protocol          string `json:"protocol"`
	Devices           int    `json:"devices"`
	Batch             int    `json:"batch"`
	BatchesAcked      int    `json:"batches_acked_before_kill"`
	BatchesReplayed   int    `json:"batches_replayed"`
	RecoveredReports  int    `json:"recovered_reports"`
	FinalReports      int    `json:"final_reports"`
	EstimatesCompared int    `json:"estimates_compared"`
	BitIdentical      bool   `json:"bit_identical"`
}

// maybeServeChild dispatches to the child server role when the
// re-exec environment is set; it never returns in that case.
func maybeServeChild() {
	if os.Getenv(serveFlagEnv) != "1" {
		return
	}
	if err := serveChild(); err != nil {
		fmt.Fprintln(os.Stderr, "hhload child:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// serveChild is the killable aggregation server: checkpointing is
// ack-coupled at the parent's mega-batch size, so every acknowledged batch
// is on disk before the parent retires it, and SIGKILL at any instant can
// only lose unacknowledged sends. It parks until killed.
func serveChild() error {
	var cfg serveConfig
	if err := json.Unmarshal([]byte(os.Getenv(serveCfgEnv)), &cfg); err != nil {
		return fmt.Errorf("decoding %s: %w", serveCfgEnv, err)
	}
	kind, err := ldphh.ParseKind(cfg.Load.Protocol)
	if err != nil {
		return err
	}
	agg, err := newLoadProtocol(cfg.Load, kind)
	if err != nil {
		return err
	}
	srv, err := ldphh.NewAggregationServer(agg, "127.0.0.1:0",
		ldphh.WithCheckpointDir(cfg.CkptDir),
		ldphh.WithCheckpointEvery(cfg.Load.Batch),
		ldphh.WithCheckpointInterval(0), // determinism: only ack-coupled checkpoints
		ldphh.WithMetricsAddr("127.0.0.1:0"))
	if err != nil {
		return err
	}
	// Atomic publish so the parent never reads a half-written address.
	tmp := cfg.AddrFile + ".tmp"
	body := fmt.Sprintf("%s\n%s\n", srv.Addr(), srv.MetricsAddr())
	if err := os.WriteFile(tmp, []byte(body), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, cfg.AddrFile); err != nil {
		return err
	}
	select {} // park until SIGKILL (the point of the exercise)
}

// startChild re-executes this binary as a server child and returns the
// process plus its published ingest and metrics addresses.
func startChild(cfg serveConfig) (*exec.Cmd, string, string, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, "", "", err
	}
	blob, err := json.Marshal(cfg)
	if err != nil {
		return nil, "", "", err
	}
	os.Remove(cfg.AddrFile) //nolint:errcheck // stale file from a previous child
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), serveFlagEnv+"=1", serveCfgEnv+"="+string(blob))
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, "", "", err
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if body, err := os.ReadFile(cfg.AddrFile); err == nil {
			fields := bytes.Fields(body)
			if len(fields) == 2 {
				return cmd, string(fields[0]), string(fields[1]), nil
			}
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill() //nolint:errcheck // giving up on the child
			cmd.Wait()         //nolint:errcheck
			return nil, "", "", fmt.Errorf("child never published its address")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// healthSummary is the subset of the /healthz JSON the scenario checks.
type healthSummary struct {
	Status   string `json:"status"`
	Resident int    `json:"resident"`
}

func readHealth(metricsAddr string) (healthSummary, error) {
	var h healthSummary
	resp, err := http.Get("http://" + metricsAddr + "/healthz")
	if err != nil {
		return h, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return h, err
	}
	if err := json.Unmarshal(body, &h); err != nil {
		return h, fmt.Errorf("parsing /healthz %q: %w", body, err)
	}
	return h, nil
}

// runCrashScenario executes the kill -9 + restart exercise and returns the
// comparison artifact. killAfter is the number of acknowledged mega-batches
// before the SIGKILL.
func runCrashScenario(cfg loadConfig, killAfter int) (*crashResult, error) {
	kind, err := ldphh.ParseKind(cfg.Protocol)
	if err != nil {
		return nil, err
	}
	if cfg.Wire != "batch" {
		return nil, fmt.Errorf("hhload: the crash scenario uses the batch wire (ack-coupled durability), got %q", cfg.Wire)
	}
	// One lane: the scenario is about durability, not sender concurrency,
	// and a single acknowledged sequence makes "the unacked window" exact.
	cfg.Conns = 1
	lanes, err := generateLanes(cfg, kind)
	if err != nil {
		return nil, err
	}
	lane := lanes[0]
	chunkBytes := cfg.Batch * lane.frameLen
	totalBatches := (len(lane.slab) + chunkBytes - 1) / chunkBytes
	if killAfter <= 0 || killAfter >= totalBatches {
		return nil, fmt.Errorf("hhload: -kill-after %d must be in (0, %d) so the kill lands mid-ingest", killAfter, totalBatches)
	}
	chunk := func(i int) []byte {
		return lane.slab[i*chunkBytes : min((i+1)*chunkBytes, len(lane.slab))]
	}

	dir, err := os.MkdirTemp("", "hhload-ckpt-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	scfg := serveConfig{Load: cfg, CkptDir: dir, AddrFile: filepath.Join(dir, "addr")}

	// Phase 1: ingest killAfter acknowledged batches, then SIGKILL.
	ctx := context.Background()
	child, addr, _, err := startChild(scfg)
	if err != nil {
		return nil, err
	}
	conn, err := ldphh.DialIngest(ctx, addr, kind)
	if err != nil {
		child.Process.Kill() //nolint:errcheck // teardown
		child.Wait()         //nolint:errcheck
		return nil, err
	}
	for i := 0; i < killAfter; i++ {
		if err := conn.SendEncoded(ctx, chunk(i)); err != nil {
			child.Process.Kill() //nolint:errcheck // teardown
			child.Wait()         //nolint:errcheck
			return nil, fmt.Errorf("acked ingest batch %d: %w", i, err)
		}
	}
	conn.Close() //nolint:errcheck // the server is about to die anyway
	if err := child.Process.Kill(); err != nil {
		return nil, err
	}
	child.Wait() //nolint:errcheck // SIGKILL reports an unsuccessful exit by design

	// Phase 2: restart over the same directory; recovery must hold exactly
	// the acknowledged prefix — kill -9 lost nothing that was acked.
	child2, addr2, maddr2, err := startChild(scfg)
	if err != nil {
		return nil, err
	}
	defer func() {
		child2.Process.Kill() //nolint:errcheck // teardown
		child2.Wait()         //nolint:errcheck
	}()
	health, err := readHealth(maddr2)
	if err != nil {
		return nil, err
	}
	acked := killAfter * cfg.Batch
	if health.Status != "ok" || health.Resident != acked {
		return nil, fmt.Errorf("restarted server /healthz = %+v, want status ok with %d recovered reports", health, acked)
	}

	// Phase 3: replay only the unacknowledged batches and identify.
	conn2, err := ldphh.DialIngest(ctx, addr2, kind)
	if err != nil {
		return nil, err
	}
	for i := killAfter; i < totalBatches; i++ {
		if err := conn2.SendEncoded(ctx, chunk(i)); err != nil {
			return nil, fmt.Errorf("replay batch %d: %w", i, err)
		}
	}
	conn2.Close() //nolint:errcheck // all batches acked
	est, err := ldphh.RequestIdentifyContext(ctx, addr2)
	if err != nil {
		return nil, err
	}

	// Reference: one uninterrupted in-process aggregator over the same
	// population.
	ref, err := newLoadProtocol(cfg, kind)
	if err != nil {
		return nil, err
	}
	views := make([]ldphh.WireReport, cfg.Devices)
	for i := range views {
		views[i] = ldphh.WireReport(lane.slab[i*lane.frameLen : (i+1)*lane.frameLen])
	}
	if err := ref.AbsorbBatch(views); err != nil {
		return nil, err
	}
	want, err := ref.Identify(ctx)
	if err != nil {
		return nil, err
	}
	if len(est) != len(want) {
		return nil, fmt.Errorf("recovered run identified %d items, uninterrupted run %d", len(est), len(want))
	}
	for i := range est {
		if !bytes.Equal(est[i].Item, want[i].Item) ||
			math.Float64bits(est[i].Count) != math.Float64bits(want[i].Count) {
			return nil, fmt.Errorf("identification diverged at rank %d: %x/%v vs %x/%v",
				i, est[i].Item, est[i].Count, want[i].Item, want[i].Count)
		}
	}
	return &crashResult{
		Protocol:          cfg.Protocol,
		Devices:           cfg.Devices,
		Batch:             cfg.Batch,
		BatchesAcked:      killAfter,
		BatchesReplayed:   totalBatches - killAfter,
		RecoveredReports:  acked,
		FinalReports:      cfg.Devices,
		EstimatesCompared: len(est),
		BitIdentical:      true,
	}, nil
}
