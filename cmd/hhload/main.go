// Command hhload is the open-loop ingest load generator: it simulates a
// million-device report fleet against the aggregation server's TCP wire
// and measures what the ingest path sustains — reports/sec, p50/p99 ingest
// latency, allocations per report.
//
// Each simulated device contributes one ε-LDP report (items zipf-drawn
// over a configurable support). Reports are pre-generated, then -conns
// concurrent senders deliver them in -batch sized calls over the selected
// wire framing:
//
//	batch    cmdReportBatch mega-batches over a persistent IngestConn —
//	         one dial per connection for the whole run (the saturation
//	         path)
//	stream   the legacy per-frame cmdReport framing, one dial per send
//	         call (the pre-mega-batch status quo, kept as the baseline)
//
// With -rate > 0 the run is open loop: send slots fire on the global
// arrival clock whether or not earlier sends finished, so p99 shows
// queueing once the server falls behind. The default writes the
// BENCH_ingest.json artifact comparing both wires for PES and Hashtogram:
//
//	hhload -devices 1000000 -out BENCH_ingest.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"ldphh/internal/profiling"
)

var (
	protocols = flag.String("protocols", "pes,hashtogram", "comma-separated registered protocol names")
	wires     = flag.String("wires", "batch,stream", "comma-separated wire framings to run (batch | stream)")
	devices   = flag.Int("devices", 1_000_000, "simulated devices (one report each)")
	conns     = flag.Int("conns", 8, "concurrent sender connections")
	batch     = flag.Int("batch", 4096, "reports per mega-batch send (batch wire)")
	strBatch  = flag.Int("stream-batch", 16, "reports per dial on the legacy stream wire")
	rate      = flag.Float64("rate", 0, "target arrival rate in reports/sec; 0 opens the throttle")
	eps       = flag.Float64("eps", 4, "privacy budget per device")
	itemBytes = flag.Int("itembytes", 4, "item width in bytes")
	zipfS     = flag.Float64("zipf-s", 1.1, "zipf exponent of the item distribution")
	support   = flag.Int("support", 1000, "zipf support size")
	seed      = flag.Uint64("seed", 1, "seed for all randomness")
	y         = flag.Int("y", 64, "per-coordinate hash range (pes)")
	outPath   = flag.String("out", "", "write the JSON artifact to this file")
	scenario  = flag.String("scenario", "",
		"alternative exercise: \"crash\" runs the kill -9 + restart durability scenario instead of the throughput sweep")
	killAfter = flag.Int("kill-after", 3,
		"crash scenario: acknowledged mega-batches before the SIGKILL")
	cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memProf = flag.String("memprofile", "", "write a post-run heap profile to this file")
)

func main() {
	maybeServeChild() // re-exec dispatch; never returns in the child role
	flag.Parse()
	if *scenario != "" {
		runScenario()
		return
	}
	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hhload: %v\n", err)
		os.Exit(1)
	}
	var results []*loadResult
	for _, proto := range strings.Split(*protocols, ",") {
		for _, wire := range strings.Split(*wires, ",") {
			cfg := loadConfig{
				Protocol:  strings.TrimSpace(proto),
				Wire:      strings.TrimSpace(wire),
				Devices:   *devices,
				Conns:     *conns,
				Batch:     *batch,
				Rate:      *rate,
				Eps:       *eps,
				ItemBytes: *itemBytes,
				ZipfS:     *zipfS,
				Support:   *support,
				Seed:      *seed,
				Y:         *y,
			}
			if cfg.Wire == "stream" {
				cfg.Batch = *strBatch
			}
			res, err := runLoad(cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hhload: %s/%s: %v\n", cfg.Protocol, cfg.Wire, err)
				os.Exit(1)
			}
			writeTextResult(os.Stdout, res)
			results = append(results, res)
		}
	}
	if err := stopProf(); err != nil {
		fmt.Fprintf(os.Stderr, "hhload: %v\n", err)
		os.Exit(1)
	}
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hhload: %v\n", err)
			os.Exit(1)
		}
		if err := writeResults(f, results); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "hhload: %v\n", err)
			os.Exit(1)
		}
	}
}

// runScenario dispatches the non-sweep exercises. The crash scenario runs
// over the first listed protocol on the batch wire.
func runScenario() {
	if *scenario != "crash" {
		fmt.Fprintf(os.Stderr, "hhload: unknown scenario %q (crash)\n", *scenario)
		os.Exit(1)
	}
	cfg := loadConfig{
		Protocol:  strings.TrimSpace(strings.Split(*protocols, ",")[0]),
		Wire:      "batch",
		Devices:   *devices,
		Conns:     1,
		Batch:     *batch,
		Eps:       *eps,
		ItemBytes: *itemBytes,
		ZipfS:     *zipfS,
		Support:   *support,
		Seed:      *seed,
		Y:         *y,
	}
	res, err := runCrashScenario(cfg, *killAfter)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hhload: crash scenario: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("crash scenario (%s): %d devices, killed after %d acked batches of %d, "+
		"recovered %d reports from disk, replayed %d batches, identify bit-identical over %d estimates\n",
		res.Protocol, res.Devices, res.BatchesAcked, res.Batch,
		res.RecoveredReports, res.BatchesReplayed, res.EstimatesCompared)
	if *outPath != "" {
		blob, err := json.MarshalIndent(res, "", "  ")
		if err == nil {
			err = os.WriteFile(*outPath, append(blob, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "hhload: %v\n", err)
			os.Exit(1)
		}
	}
}
