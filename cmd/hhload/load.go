package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ldphh"
	"ldphh/internal/dist"
	"ldphh/internal/freqoracle"
	"ldphh/internal/protocol"
)

// loadConfig parameterizes one open-loop ingest run; it mirrors the
// command-line flags so the smoke test can drive a run without a
// subprocess.
type loadConfig struct {
	Protocol  string
	Wire      string  // "batch" (cmdReportBatch over a reused IngestConn) | "stream" (legacy cmdReport, one dial per call)
	Devices   int     // total simulated devices; one report each
	Conns     int     // concurrent sender connections
	Batch     int     // reports per send call (mega-batch size, or stream length per dial)
	Rate      float64 // target arrival rate in reports/sec; 0 opens the throttle
	Eps       float64
	ItemBytes int
	ZipfS     float64
	Support   int
	Seed      uint64
	Y         int
}

// loadResult is one measured run, JSON-shaped for the BENCH_ingest.json
// artifact. AllocsPerReport counts whole-process mallocs across the timed
// ingest window (client and server share the process), divided by devices
// — an upper bound on the server decode path's allocation rate.
type loadResult struct {
	Protocol        string  `json:"protocol"`
	Wire            string  `json:"wire"`
	Devices         int     `json:"devices"`
	Conns           int     `json:"conns"`
	Batch           int     `json:"batch"`
	RateTarget      float64 `json:"rate_target"`
	ElapsedMS       int64   `json:"elapsed_ms"`
	ReportsPerSec   float64 `json:"reports_per_sec"`
	P50IngestMS     float64 `json:"p50_ingest_ms"`
	P99IngestMS     float64 `json:"p99_ingest_ms"`
	AllocsPerReport float64 `json:"allocs_per_report"`
	BytesPerReport  int     `json:"bytes_per_report"`
	Absorbed        int     `json:"absorbed"`
}

// newLoadProtocol builds one protocol instance for the run's config. The
// device workers and the server aggregator all call it with identical
// arguments — the deployment contract that shares the public randomness.
func newLoadProtocol(cfg loadConfig, kind ldphh.Kind) (ldphh.Protocol, error) {
	opts := []ldphh.Option{
		ldphh.WithEps(cfg.Eps), ldphh.WithN(cfg.Devices),
		ldphh.WithItemBytes(cfg.ItemBytes), ldphh.WithSeed(cfg.Seed),
	}
	if cfg.Y > 0 {
		opts = append(opts, ldphh.WithY(cfg.Y))
	}
	switch kind {
	case ldphh.KindSmallDomain, ldphh.KindDirectHistogram, ldphh.KindBassilySmith:
		opts = append(opts, ldphh.WithDomainSize(cfg.Support+1))
	case ldphh.KindStreamHG:
		// The continuous-query kind spends ε/w per window; the ingest path
		// under load is otherwise identical to the batch kinds.
		opts = append(opts, ldphh.WithDomainSize(cfg.Support+1))
	case ldphh.KindHashtogram:
		// The oracle answers a known dictionary; query the zipf head.
		k := min(cfg.Support, 32)
		candidates := make([][]byte, k)
		for i := range candidates {
			candidates[i] = freqoracle.OrdinalBytes(uint64(i+1), cfg.ItemBytes)
		}
		opts = append(opts, ldphh.WithCandidates(candidates))
	}
	return ldphh.New(kind, opts...)
}

// senderLane is one connection's worth of pre-generated traffic: the
// devices' reports as a contiguous frame slab, plus per-chunk views for
// the stream wire. Generation happens before the clock starts — hhload
// measures ingest, not report synthesis.
type senderLane struct {
	slab     []byte
	frameLen int
	views    [][]ldphh.WireReport // per chunk, stream wire only
}

// generateLanes synthesizes every device's report in parallel, one lane
// per connection. Device i draws its item from the shared zipf and
// randomizes with its own rng substream, so the population is
// deterministic in the seed but independent across devices.
func generateLanes(cfg loadConfig, kind ldphh.Kind) ([]*senderLane, error) {
	lanes := make([]*senderLane, cfg.Conns)
	errs := make([]error, cfg.Conns)
	var wg sync.WaitGroup
	per := cfg.Devices / cfg.Conns
	for w := 0; w < cfg.Conns; w++ {
		lo := w * per
		hi := lo + per
		if w == cfg.Conns-1 {
			hi = cfg.Devices
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			device, err := newLoadProtocol(cfg, kind)
			if err != nil {
				errs[w] = err
				return
			}
			zipf := dist.NewZipf(cfg.Support, cfg.ZipfS)
			rng := dist.SubStream(cfg.Seed, uint64(1000+w))
			lane := &senderLane{}
			for i := lo; i < hi; i++ {
				item := freqoracle.OrdinalBytes(uint64(1+zipf.Sample(rng)), cfg.ItemBytes)
				wr, err := device.Report(item, i, rng)
				if err != nil {
					errs[w] = err
					return
				}
				if lane.slab == nil {
					lane.frameLen = len(wr)
					lane.slab = make([]byte, 0, (hi-lo)*lane.frameLen)
				}
				lane.slab = append(lane.slab, wr...)
			}
			if cfg.Wire == "stream" {
				for lo := 0; lo < len(lane.slab); lo += cfg.Batch * lane.frameLen {
					hi := min(lo+cfg.Batch*lane.frameLen, len(lane.slab))
					n := (hi - lo) / lane.frameLen
					chunk := make([]ldphh.WireReport, n)
					for i := range chunk {
						at := lo + i*lane.frameLen
						chunk[i] = ldphh.WireReport(lane.slab[at : at+lane.frameLen])
					}
					lane.views = append(lane.views, chunk)
				}
			}
			lanes[w] = lane
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return lanes, nil
}

// runLoad executes one open-loop ingest run against an in-process server
// on loopback TCP. With Rate > 0, send slots are scheduled on the global
// arrival clock regardless of completion — open loop — so the reported
// latency includes queueing delay once the server falls behind; with
// Rate = 0 the throttle is open and latency is pure send-to-ack time.
func runLoad(cfg loadConfig) (*loadResult, error) {
	kind, err := ldphh.ParseKind(cfg.Protocol)
	if err != nil {
		return nil, err
	}
	if cfg.Conns <= 0 || cfg.Batch <= 0 || cfg.Devices <= 0 {
		return nil, fmt.Errorf("hhload: devices, conns and batch must be positive")
	}
	if cfg.Wire != "batch" && cfg.Wire != "stream" {
		return nil, fmt.Errorf("hhload: unknown wire %q (batch | stream)", cfg.Wire)
	}

	agg, err := newLoadProtocol(cfg, kind)
	if err != nil {
		return nil, err
	}
	srv, err := ldphh.NewAggregationServer(agg, "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	lanes, err := generateLanes(cfg, kind)
	if err != nil {
		return nil, err
	}

	ctx := context.Background()
	var interval time.Duration
	if cfg.Rate > 0 {
		interval = time.Duration(float64(cfg.Batch) / cfg.Rate * float64(time.Second))
	}

	var slot atomic.Int64
	lats := make([][]float64, cfg.Conns)
	errs := make([]error, cfg.Conns)
	var wg sync.WaitGroup

	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()

	for w := 0; w < cfg.Conns; w++ {
		wg.Add(1)
		go func(w int, lane *senderLane) {
			defer wg.Done()
			var conn *ldphh.IngestConn
			if cfg.Wire == "batch" {
				if conn, errs[w] = ldphh.DialIngest(ctx, srv.Addr(), kind); errs[w] != nil {
					return
				}
				defer conn.Close()
			}
			chunkBytes := cfg.Batch * lane.frameLen
			chunks := (len(lane.slab) + chunkBytes - 1) / chunkBytes
			for c := 0; c < chunks; c++ {
				sent := time.Now()
				if interval > 0 {
					sched := start.Add(time.Duration(slot.Add(1)-1) * interval)
					if d := time.Until(sched); d > 0 {
						time.Sleep(d)
					}
					sent = sched // open loop: latency from the arrival slot
				}
				if cfg.Wire == "batch" {
					hi := min((c+1)*chunkBytes, len(lane.slab))
					errs[w] = conn.SendEncoded(ctx, lane.slab[c*chunkBytes:hi])
				} else {
					errs[w] = protocol.SendWire(ctx, srv.Addr(), lane.views[c])
				}
				if errs[w] != nil {
					return
				}
				lats[w] = append(lats[w], float64(time.Since(sent))/float64(time.Millisecond))
			}
		}(w, lanes[w])
	}
	wg.Wait()
	elapsed := time.Since(start)
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if got := srv.Absorbed(); got != cfg.Devices {
		return nil, fmt.Errorf("hhload: server absorbed %d of %d reports", got, cfg.Devices)
	}

	var all []float64
	for _, l := range lats {
		all = append(all, l...)
	}
	return &loadResult{
		Protocol: cfg.Protocol, Wire: cfg.Wire,
		Devices: cfg.Devices, Conns: cfg.Conns, Batch: cfg.Batch,
		RateTarget:      cfg.Rate,
		ElapsedMS:       elapsed.Milliseconds(),
		ReportsPerSec:   float64(cfg.Devices) / elapsed.Seconds(),
		P50IngestMS:     dist.Quantile(all, 0.5),
		P99IngestMS:     dist.Quantile(all, 0.99),
		AllocsPerReport: float64(m1.Mallocs-m0.Mallocs) / float64(cfg.Devices),
		BytesPerReport:  agg.BytesPerReport(),
		Absorbed:        cfg.Devices,
	}, nil
}

// writeResults emits the run list as one indented JSON array (the
// BENCH_ingest.json artifact shape).
func writeResults(w io.Writer, res []*loadResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

// writeTextResult emits one human-readable summary line.
func writeTextResult(w io.Writer, r *loadResult) {
	fmt.Fprintf(w, "%-12s wire=%-6s  %d devices / %d conns / batch %d: %8.0f reports/s  p50 %.2fms  p99 %.2fms  %.3f allocs/report\n",
		r.Protocol, r.Wire, r.Devices, r.Conns, r.Batch,
		r.ReportsPerSec, r.P50IngestMS, r.P99IngestMS, r.AllocsPerReport)
}
