package main

import (
	"os"
	"testing"
)

// TestMain dispatches the re-exec child role: when the crash scenario
// re-executes the test binary with HHLOAD_SERVE=1, this process must act
// as the killable aggregation server instead of running the test suite.
func TestMain(m *testing.M) {
	maybeServeChild() // never returns in the child role
	os.Exit(m.Run())
}

// TestCrashScenarioKillRestart is the automated kill -9 acceptance test:
// a child server process with ack-coupled checkpoints is SIGKILLed
// mid-ingest, restarted over the same checkpoint directory, holds exactly
// the acknowledged prefix, and after replaying only the unacknowledged
// batches identifies bit-identically to an uninterrupted run.
func TestCrashScenarioKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess kill/restart scenario skipped in -short mode")
	}
	cfg := loadConfig{
		Protocol: "pes", Wire: "batch",
		Devices: 20000, Conns: 1, Batch: 4000,
		Eps: 4, ItemBytes: 4, ZipfS: 1.1, Support: 1000,
		Seed: 7, Y: 16,
	}
	res, err := runCrashScenario(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.BitIdentical {
		t.Fatal("recovered identification diverged from the uninterrupted run")
	}
	if res.RecoveredReports != 3*cfg.Batch {
		t.Fatalf("recovered %d reports, want %d (exactly the acked prefix — the unacked window and nothing else is lost)",
			res.RecoveredReports, 3*cfg.Batch)
	}
	if res.FinalReports != cfg.Devices {
		t.Fatalf("final report count %d, want %d", res.FinalReports, cfg.Devices)
	}
	if res.EstimatesCompared == 0 {
		t.Fatal("no estimates compared — the equivalence check was vacuous")
	}
}
