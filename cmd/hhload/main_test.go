package main

import "testing"

// TestLoadSmoke drives a scaled-down run of every default protocol × wire
// combination through the library entry point — the same path `hhload`
// runs from the command line and CI's ingest smoke job exercises.
func TestLoadSmoke(t *testing.T) {
	for _, proto := range []string{"pes", "hashtogram", "streamhg"} {
		for _, wire := range []string{"batch", "stream"} {
			t.Run(proto+"/"+wire, func(t *testing.T) {
				cfg := loadConfig{
					Protocol: proto, Wire: wire,
					Devices: 20000, Conns: 4, Batch: 1024,
					Eps: 4, ItemBytes: 4, ZipfS: 1.1, Support: 1000,
					Seed: 7, Y: 16,
				}
				if wire == "stream" {
					cfg.Batch = 256
				}
				res, err := runLoad(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if res.Absorbed != cfg.Devices {
					t.Fatalf("absorbed %d of %d", res.Absorbed, cfg.Devices)
				}
				if res.ReportsPerSec <= 0 {
					t.Fatalf("reports/sec = %v", res.ReportsPerSec)
				}
				if res.P99IngestMS < res.P50IngestMS {
					t.Fatalf("p99 %.3fms below p50 %.3fms", res.P99IngestMS, res.P50IngestMS)
				}
			})
		}
	}
}

// TestLoadOpenLoopRate pins the pacing path: a throttled run must still
// deliver every report and take at least as long as the arrival schedule.
func TestLoadOpenLoopRate(t *testing.T) {
	cfg := loadConfig{
		Protocol: "hashtogram", Wire: "batch",
		Devices: 8000, Conns: 2, Batch: 1000,
		Rate: 100000, // 8k reports at 100k/s: the schedule spans >= 70ms
		Eps: 4, ItemBytes: 4, ZipfS: 1.1, Support: 100, Seed: 7,
	}
	res, err := runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Absorbed != cfg.Devices {
		t.Fatalf("absorbed %d of %d", res.Absorbed, cfg.Devices)
	}
	if res.ElapsedMS < 60 {
		t.Fatalf("open-loop run finished in %dms, faster than the %v-slot arrival schedule allows",
			res.ElapsedMS, cfg.Rate)
	}
}
