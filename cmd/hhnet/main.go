// Command hhnet demonstrates the distributed deployment: it starts a TCP
// aggregation server, simulates a fleet of user processes that each send one
// ε-LDP report over the wire, then triggers identification and prints the
// result.
//
// Usage:
//
//	hhnet [-n 30000] [-fleets 8] [-addr 127.0.0.1:0]
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"sync"
	"time"

	"ldphh/internal/core"
	"ldphh/internal/protocol"
	"ldphh/internal/workload"
)

var (
	n      = flag.Int("n", 30000, "number of users")
	fleets = flag.Int("fleets", 8, "concurrent sender connections")
	addr   = flag.String("addr", "127.0.0.1:0", "listen address")
	eps    = flag.Float64("eps", 4, "privacy budget")
	seed   = flag.Uint64("seed", 1, "seed")
)

func main() {
	flag.Parse()
	params := core.Params{Eps: *eps, N: *n, ItemBytes: 4, Y: 64, Seed: *seed}
	srv, err := protocol.NewServer(params, *addr)
	fatal(err)
	defer srv.Close()
	fmt.Printf("aggregation server listening on %s\n", srv.Addr())

	dom := workload.Domain{ItemBytes: 4}
	ds, err := workload.Planted(dom, *n, []float64{0.3, 0.2}, rand.New(rand.NewPCG(*seed, 2)))
	fatal(err)

	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, *fleets)
	for f := 0; f < *fleets; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			// Each fleet derives its own client purely from Params — devices
			// never see server state, only the shared seed.
			client, err := core.NewClient(params)
			if err != nil {
				errCh <- err
				return
			}
			rng := rand.New(rand.NewPCG(uint64(f), *seed))
			var batch []core.Report
			for i := f; i < *n; i += *fleets {
				rep, err := client.Report(ds.Items[i], i, rng)
				if err != nil {
					errCh <- err
					return
				}
				batch = append(batch, rep)
			}
			errCh <- protocol.SendReports(srv.Addr(), batch)
		}(f)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		fatal(err)
	}
	fmt.Printf("fleet of %d connections delivered %d reports in %v (%d bytes each)\n",
		*fleets, srv.Absorbed(), time.Since(start).Round(time.Millisecond), protocol.FrameSize)

	est, err := protocol.RequestIdentify(srv.Addr())
	fatal(err)
	fmt.Printf("identified %d heavy hitters:\n", len(est))
	for i, e := range est {
		if i >= 10 {
			break
		}
		fmt.Printf("  %x  est=%8.0f  true=%d\n", e.Item, e.Count, ds.Count(e.Item))
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "hhnet:", err)
		os.Exit(1)
	}
}
