// Command hhnet demonstrates the distributed deployment: it starts a TCP
// aggregation server, simulates a fleet of user processes that each send one
// ε-LDP report over the wire, then triggers identification and prints the
// result. The server ingests every connection through its own shard
// accumulator, so fleets never contend on the protocol mutex per report.
//
// By default (-shards = GOMAXPROCS) it additionally replays the same
// reports into a fresh in-process protocol through the single-mutex Absorb
// path and through AbsorbBatch at the requested shard count, printing both
// ingestion throughputs and verifying the sharded round identifies the
// identical heavy hitters; -shards 0 skips that comparison.
//
// With -tree it instead deploys a two-tier aggregation tree: -leaves leaf
// servers each ingest a shard of the fleet concurrently, then the root
// server absorbs every leaf's state via the snapshot/merge wire commands
// and runs Identify once. The merged identification is verified
// bit-identical against an in-process replay of the whole fleet — the
// tree changes the deployment shape, never the Algorithm 1 output.
//
// With -protocol it deploys any registered protocol through the unified
// surface instead: the same fleet round against the generic aggregation
// server (protocol ID negotiated at connection time), verified against an
// in-process replay. -tree and -shards remain PES-only demonstrations.
//
// Usage:
//
//	hhnet [-n 30000] [-fleets 8] [-addr 127.0.0.1:0] [-shards GOMAXPROCS] [-workers GOMAXPROCS]
//	hhnet -tree [-leaves 4] [-n 30000] [-fleets 8]
//	hhnet -protocol treehist [-n 30000] [-fleets 8]
//
// -workers sizes the Identify worker pool (core.Params.Workers); the
// identification result is bit-identical at every worker count.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"math/rand/v2"
	"os"
	"runtime"
	"sync"
	"time"

	"ldphh"
	"ldphh/internal/core"
	"ldphh/internal/protocol"
	"ldphh/internal/workload"
)

var (
	n      = flag.Int("n", 30000, "number of users")
	fleets = flag.Int("fleets", 8, "concurrent sender connections")
	addr   = flag.String("addr", "127.0.0.1:0", "listen address")
	eps    = flag.Float64("eps", 4, "privacy budget")
	seed   = flag.Uint64("seed", 1, "seed")
	shards = flag.Int("shards", runtime.GOMAXPROCS(0),
		"shard count for the local ingestion comparison (0 disables it)")
	workers = flag.Int("workers", 0,
		"Identify worker-pool size (0 = GOMAXPROCS); output is identical at any value")
	tree = flag.Bool("tree", false,
		"run a two-tier aggregation tree: leaves ingest, the root merges their snapshots (pes only)")
	leaves    = flag.Int("leaves", 4, "leaf aggregator count in -tree mode")
	protoName = flag.String("protocol", "pes",
		"registered protocol to deploy (pes | smalldomain | bitstogram | treehist | bassilysmith | pem | fedtrie | ...); interactive kinds run the multi-round discovery loop")
	ckptDir = flag.String("checkpoint-dir", "",
		"durable checkpoint directory for the aggregation server (tree mode: the root); restart with the same flags to recover")
	ckptEvery = flag.Int("checkpoint-every", 0,
		"checkpoint synchronously before acking once this many reports accumulated (0 = periodic only)")
	metricsAddr = flag.String("metrics-addr", "",
		"HTTP operability sidecar address serving /healthz and /metrics (empty = off)")
)

// serverOpts assembles the durability/observability options for the
// primary aggregation server (the only server in flat mode, the root in
// -tree mode — leaves are ephemeral shards whose state reaches the root
// via snapshot merge).
func serverOpts() []protocol.ServerOption {
	var opts []protocol.ServerOption
	if *ckptDir != "" {
		opts = append(opts, protocol.WithCheckpointDir(*ckptDir))
	}
	if *ckptEvery > 0 {
		opts = append(opts, protocol.WithCheckpointEvery(*ckptEvery))
	}
	if *metricsAddr != "" {
		opts = append(opts, protocol.WithMetricsAddr(*metricsAddr))
	}
	return opts
}

func main() {
	flag.Parse()
	if *protoName != "pes" {
		if *tree {
			fatal(fmt.Errorf("-tree is a pes-only demonstration (snapshot merge trees); drop -protocol or -tree"))
		}
		runGeneric(*protoName)
		return
	}
	params := core.Params{Eps: *eps, N: *n, ItemBytes: 4, Y: 64, Workers: *workers, Seed: *seed}
	if *tree {
		runTree(params)
		return
	}
	srv, err := protocol.NewServer(params, *addr, serverOpts()...)
	fatal(err)
	defer srv.Close()
	fmt.Printf("aggregation server listening on %s\n", srv.Addr())
	if recovered := srv.Metrics().RecoveredReports(); recovered > 0 {
		fmt.Printf("recovered %d reports from checkpoint directory %s\n", recovered, *ckptDir)
	}
	if *metricsAddr != "" {
		fmt.Printf("metrics sidecar on http://%s/metrics\n", srv.MetricsAddr())
	}

	ds := dataset(params)
	batches := buildBatches(params, ds)

	// Network phase: stream every batch concurrently; the server absorbs
	// each connection into its own shard.
	start := time.Now()
	deliver(batches, func(int) string { return srv.Addr() })
	fmt.Printf("fleet of %d connections delivered %d reports in %v (%d bytes each)\n",
		*fleets, srv.Absorbed(), time.Since(start).Round(time.Millisecond), protocol.FrameSize)

	est, err := protocol.RequestIdentify(srv.Addr())
	fatal(err)
	printEstimates(est, ds)

	if *shards > 0 && srv.Metrics().RecoveredReports() == 0 {
		// The replay only covers this run's batches, so it can only match a
		// server that did not also restore a previous run's checkpoint.
		localComparison(params, batches, est)
	}
}

// runTree deploys the two-tier topology: -leaves leaf servers ingest the
// fleet's shards concurrently, then the root pulls each leaf's snapshot
// over the wire (cmdSnapshot), pushes it into its own state
// (cmdMergeSnapshot) and identifies once over the union. The output is
// verified bit-identical against an in-process replay of every report.
func runTree(params core.Params) {
	if *leaves < 1 {
		fatal(fmt.Errorf("-leaves must be >= 1, got %d", *leaves))
	}
	root, err := protocol.NewServer(params, *addr, serverOpts()...)
	fatal(err)
	defer root.Close()
	leafSrvs := make([]*protocol.Server, *leaves)
	for l := range leafSrvs {
		leafSrvs[l], err = protocol.NewServer(params, "127.0.0.1:0")
		fatal(err)
		defer leafSrvs[l].Close()
	}
	fmt.Printf("aggregation tree: root %s, %d leaves\n", root.Addr(), *leaves)

	ds := dataset(params)
	batches := buildBatches(params, ds)

	// Leaf tier: fleet f reports to leaf f mod leaves, all concurrently.
	start := time.Now()
	deliver(batches, func(f int) string { return leafSrvs[f%*leaves].Addr() })
	ingested := 0
	for _, leaf := range leafSrvs {
		ingested += leaf.Absorbed()
	}
	ingestDur := time.Since(start)

	// Fan-in tier: pull every leaf's state, push it into the root.
	start = time.Now()
	snapBytes := 0
	for _, leaf := range leafSrvs {
		snap, err := protocol.RequestSnapshot(leaf.Addr())
		fatal(err)
		snapBytes += len(snap)
		fatal(protocol.PushSnapshot(root.Addr(), snap))
	}
	mergeDur := time.Since(start)
	fmt.Printf("%d leaves ingested %d reports in %v; root merged %d snapshot bytes in %v\n",
		*leaves, ingested, ingestDur.Round(time.Millisecond), snapBytes, mergeDur.Round(time.Millisecond))
	if root.Absorbed() != ingested {
		fatal(fmt.Errorf("root absorbed %d of %d leaf reports", root.Absorbed(), ingested))
	}

	est, err := protocol.RequestIdentify(root.Addr())
	fatal(err)
	printEstimates(est, ds)

	// Verification: the tree must not have changed the Algorithm 1 output.
	replay, err := core.New(params)
	fatal(err)
	var reports []core.Report
	for _, b := range batches {
		reports = append(reports, b...)
	}
	fatal(replay.AbsorbBatch(reports, runtime.GOMAXPROCS(0)))
	want, err := replay.Identify()
	fatal(err)
	assertSameEstimates(est, want)
	fmt.Printf("tree identification matches the single-aggregator replay (%d items)\n", len(est))
}

// runGeneric deploys any registered protocol through the unified surface:
// the same fleet shape as the PES round, but the server is a generic
// aggregator negotiated by protocol ID, and the reports are
// self-describing wire frames. The TCP identification is verified exactly
// against an in-process replay into a second instance built from the same
// options — the transport changes the deployment, never the output.
func runGeneric(name string) {
	kind, err := ldphh.ParseKind(name)
	fatal(err)
	const itemBytes, domain = 2, 256
	item := func(i int) []byte {
		ord := uint64(3 + i%200)
		switch {
		case i%10 < 3:
			ord = 1
		case i%10 < 5:
			ord = 2
		}
		return []byte{byte(ord >> 8), byte(ord)}
	}
	opts := []ldphh.Option{
		ldphh.WithEps(*eps), ldphh.WithN(*n), ldphh.WithItemBytes(itemBytes),
		ldphh.WithSeed(*seed), ldphh.WithDomainSize(domain),
	}
	if kind == ldphh.KindHashtogram {
		opts = append(opts, ldphh.WithCandidates([][]byte{item(0), item(3)}))
	}
	if kind == ldphh.KindSmallDomain || kind == ldphh.KindDirectHistogram {
		// Floor the full-histogram scan at its β = 0.05 error envelope so
		// the demo lists heavy hitters, not every noise-positive cell.
		ceps := (math.Exp(*eps) + 1) / (math.Exp(*eps) - 1)
		opts = append(opts, ldphh.WithMinCount(ceps*math.Sqrt(2*float64(*n)*math.Log(2/0.05))))
	}
	mk := func() ldphh.Protocol {
		h, err := ldphh.New(kind, opts...)
		fatal(err)
		return h
	}
	device, agg := mk(), mk()
	srv, err := ldphh.NewAggregationServer(agg, *addr, serverOpts()...)
	fatal(err)
	defer srv.Close()
	fmt.Printf("generic aggregation server (%s) listening on %s\n", kind, srv.Addr())
	if recovered := srv.Metrics().RecoveredReports(); recovered > 0 {
		fmt.Printf("recovered %d reports from checkpoint directory %s\n", recovered, *ckptDir)
	}
	if *metricsAddr != "" {
		fmt.Printf("metrics sidecar on http://%s/metrics\n", srv.MetricsAddr())
	}

	if _, ok := ldphh.AsInteractive(agg); ok {
		runInteractive(device, srv, item, mk)
		return
	}

	// Device phase: each fleet derives its batch concurrently (Report never
	// mutates shared state; randomness is per-goroutine).
	batches := make([][]ldphh.WireReport, *fleets)
	var wg sync.WaitGroup
	errCh := make(chan error, *fleets)
	for f := 0; f < *fleets; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(f), *seed))
			var batch []ldphh.WireReport
			for i := f; i < *n; i += *fleets {
				wr, err := device.Report(item(i), i, rng)
				if err != nil {
					errCh <- err
					return
				}
				batch = append(batch, wr)
			}
			batches[f] = batch
		}(f)
	}
	wg.Wait()
	drain(errCh)

	// Network phase.
	ctx := context.Background()
	start := time.Now()
	for f := range batches {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			errCh <- ldphh.SendWireReports(ctx, srv.Addr(), batches[f])
		}(f)
	}
	wg.Wait()
	drain(errCh)
	fmt.Printf("fleet of %d connections delivered %d reports in %v (%d payload + 2 header bytes each)\n",
		*fleets, srv.Absorbed(), time.Since(start).Round(time.Millisecond), agg.BytesPerReport())

	est, err := ldphh.RequestIdentifyContext(ctx, srv.Addr())
	fatal(err)
	fmt.Printf("identified %d heavy hitters:\n", len(est))
	for i, e := range est {
		if i >= 10 {
			break
		}
		fmt.Printf("  %x  est=%8.0f\n", e.Item, e.Count)
	}

	// Verification: replay every report into a fresh instance in process.
	// Skipped after a checkpoint recovery — the server then holds a previous
	// run's reports on top of this one's, which the replay cannot see.
	if srv.Metrics().RecoveredReports() > 0 {
		return
	}
	replay := mk()
	for _, batch := range batches {
		fatal(replay.AbsorbBatch(batch))
	}
	want, err := replay.Identify(ctx)
	fatal(err)
	assertSameEstimates(est, want)
	fmt.Printf("network identification matches the in-process replay (%d items)\n", len(est))
}

// runInteractive drives a multi-round discovery (pem, fedtrie) against the
// generic server: each round the driver fetches the candidate broadcast
// over the wire, installs it on the device fleet, the fleet's assigned user
// group reports concurrently, and AdvanceRound commits the transition
// server-side. The final identification is verified bit-identical against
// an in-process replay of the same round batches.
func runInteractive(device ldphh.Protocol, srv *ldphh.Server, item func(int) []byte, mk func() ldphh.Protocol) {
	ctx := context.Background()
	devIt, ok := ldphh.AsInteractive(device)
	if !ok {
		fatal(fmt.Errorf("device instance lost the Interactive capability"))
	}
	rs, err := ldphh.RequestRound(srv.Addr())
	fatal(err)
	start := time.Now()
	var roundBatches [][]ldphh.WireReport
	for !rs.Done {
		fatal(devIt.SetRoundState(rs))
		fmt.Printf("round %d/%d: %d candidate prefixes of %d bits\n",
			rs.Round+1, rs.Rounds, len(rs.Candidates), rs.PrefixBits)
		// Fleet phase: each fleet computes its slice of the round's group
		// concurrently; off-group users are skipped (they report in their
		// own round, which is what caps the per-user budget at ε).
		batches := make([][]ldphh.WireReport, *fleets)
		var wg sync.WaitGroup
		errCh := make(chan error, *fleets)
		for f := 0; f < *fleets; f++ {
			wg.Add(1)
			go func(f, round int) {
				defer wg.Done()
				var batch []ldphh.WireReport
				for i := f; i < *n; i += *fleets {
					wr, err := device.Report(item(i), i, ldphh.RoundRand(*seed, round, i))
					if errors.Is(err, ldphh.ErrNotInRound) {
						continue
					}
					if err != nil {
						errCh <- err
						return
					}
					batch = append(batch, wr)
				}
				batches[f] = batch
			}(f, rs.Round)
		}
		wg.Wait()
		drain(errCh)
		var all []ldphh.WireReport
		for _, b := range batches {
			all = append(all, b...)
		}
		fatal(ldphh.SendWireReports(ctx, srv.Addr(), all))
		roundBatches = append(roundBatches, all)
		rs, err = ldphh.AdvanceRound(srv.Addr())
		fatal(err)
	}
	fmt.Printf("discovery finished: %d rounds, %d reports in %v\n",
		len(roundBatches), srv.Absorbed(), time.Since(start).Round(time.Millisecond))

	est, err := ldphh.RequestIdentifyContext(ctx, srv.Addr())
	fatal(err)
	fmt.Printf("identified %d heavy hitters:\n", len(est))
	for i, e := range est {
		if i >= 10 {
			break
		}
		fmt.Printf("  %x  est=%8.0f\n", e.Item, e.Count)
	}

	if srv.Metrics().RecoveredReports() > 0 {
		return
	}
	// Replay: round transitions are deterministic, so feeding the same
	// round batches and advancing reproduces the same broadcasts — and must
	// reproduce the same estimates.
	replay := mk()
	rit, ok := ldphh.AsInteractive(replay)
	if !ok {
		fatal(fmt.Errorf("replay instance lost the Interactive capability"))
	}
	for _, batch := range roundBatches {
		fatal(replay.AbsorbBatch(batch))
		if _, err := rit.AdvanceRound(); err != nil {
			fatal(err)
		}
	}
	want, err := replay.Identify(ctx)
	fatal(err)
	assertSameEstimates(est, want)
	fmt.Printf("network discovery matches the in-process replay (%d items)\n", len(est))
}

// deliver streams every fleet batch concurrently, fleet f to addrFor(f),
// and fails fast on the first delivery error.
func deliver(batches [][]core.Report, addrFor func(f int) string) {
	var wg sync.WaitGroup
	errCh := make(chan error, len(batches))
	for f := range batches {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			errCh <- protocol.SendReports(addrFor(f), batches[f])
		}(f)
	}
	wg.Wait()
	drain(errCh)
}

func dataset(params core.Params) *workload.Dataset {
	dom := workload.Domain{ItemBytes: 4}
	ds, err := workload.Planted(dom, *n, []float64{0.3, 0.2}, rand.New(rand.NewPCG(params.Seed, 2)))
	fatal(err)
	return ds
}

// buildBatches runs the client phase: each fleet derives its own client
// purely from Params — devices never see server state, only the shared
// seed — and prepares its batch before the timed network round.
func buildBatches(params core.Params, ds *workload.Dataset) [][]core.Report {
	batches := make([][]core.Report, *fleets)
	var wg sync.WaitGroup
	errCh := make(chan error, *fleets)
	for f := 0; f < *fleets; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			client, err := core.NewClient(params)
			if err != nil {
				errCh <- err
				return
			}
			rng := rand.New(rand.NewPCG(uint64(f), params.Seed))
			var batch []core.Report
			for i := f; i < *n; i += *fleets {
				rep, err := client.Report(ds.Items[i], i, rng)
				if err != nil {
					errCh <- err
					return
				}
				batch = append(batch, rep)
			}
			batches[f] = batch
		}(f)
	}
	wg.Wait()
	drain(errCh)
	return batches
}

func printEstimates(est []core.Estimate, ds *workload.Dataset) {
	fmt.Printf("identified %d heavy hitters:\n", len(est))
	for i, e := range est {
		if i >= 10 {
			break
		}
		fmt.Printf("  %x  est=%8.0f  true=%d\n", e.Item, e.Count, ds.Count(e.Item))
	}
}

// assertSameEstimates checks the network round reproduces the in-process
// identification bit for bit (the wire truncates counts to integers;
// compare at that granularity).
func assertSameEstimates(netEst, want []core.Estimate) {
	if len(netEst) != len(want) {
		fatal(fmt.Errorf("network round identified %d items, replay %d", len(netEst), len(want)))
	}
	for i := range netEst {
		if !bytes.Equal(netEst[i].Item, want[i].Item) || int64(netEst[i].Count) != int64(want[i].Count) {
			fatal(fmt.Errorf("identification diverged at rank %d: %x/%.0f vs %x/%.0f",
				i, netEst[i].Item, netEst[i].Count, want[i].Item, want[i].Count))
		}
	}
}

// localComparison replays the collected reports into fresh in-process
// protocols: once through the serialized single-mutex Absorb path and once
// through AbsorbBatch at the configured shard count, then checks the
// sharded round reproduces the network round's identification bit for bit
// (counter merges are exact, so absorption order cannot matter).
func localComparison(params core.Params, batches [][]core.Report, netEst []core.Estimate) {
	var reports []core.Report
	for _, b := range batches {
		reports = append(reports, b...)
	}

	serial, err := core.New(params)
	fatal(err)
	t0 := time.Now()
	fatal(serial.AbsorbBatch(reports, 1))
	serialDur := time.Since(t0)

	sharded, err := core.New(params)
	fatal(err)
	t1 := time.Now()
	fatal(sharded.AbsorbBatch(reports, *shards))
	shardedDur := time.Since(t1)

	rate := func(d time.Duration) float64 {
		return float64(len(reports)) / d.Seconds() / 1e6
	}
	fmt.Printf("local ingestion of %d reports: single-mutex %v (%.1f M/s), %d shards %v (%.1f M/s)\n",
		len(reports), serialDur.Round(time.Microsecond), rate(serialDur),
		*shards, shardedDur.Round(time.Microsecond), rate(shardedDur))

	est, err := sharded.Identify()
	fatal(err)
	assertSameEstimates(netEst, est)
	fmt.Printf("sharded round identification matches the network round (%d items)\n", len(est))
}

func drain(errCh chan error) {
	for len(errCh) > 0 {
		fatal(<-errCh)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "hhnet:", err)
		os.Exit(1)
	}
}
