// Command hhnet demonstrates the distributed deployment: it starts a TCP
// aggregation server, simulates a fleet of user processes that each send one
// ε-LDP report over the wire, then triggers identification and prints the
// result. The server ingests every connection through its own shard
// accumulator, so fleets never contend on the protocol mutex per report.
//
// By default (-shards = GOMAXPROCS) it additionally replays the same
// reports into a fresh in-process protocol through the single-mutex Absorb
// path and through AbsorbBatch at the requested shard count, printing both
// ingestion throughputs and verifying the sharded round identifies the
// identical heavy hitters; -shards 0 skips that comparison.
//
// Usage:
//
//	hhnet [-n 30000] [-fleets 8] [-addr 127.0.0.1:0] [-shards GOMAXPROCS] [-workers GOMAXPROCS]
//
// -workers sizes the Identify worker pool (core.Params.Workers); the
// identification result is bit-identical at every worker count.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"runtime"
	"sync"
	"time"

	"ldphh/internal/core"
	"ldphh/internal/protocol"
	"ldphh/internal/workload"
)

var (
	n      = flag.Int("n", 30000, "number of users")
	fleets = flag.Int("fleets", 8, "concurrent sender connections")
	addr   = flag.String("addr", "127.0.0.1:0", "listen address")
	eps    = flag.Float64("eps", 4, "privacy budget")
	seed   = flag.Uint64("seed", 1, "seed")
	shards = flag.Int("shards", runtime.GOMAXPROCS(0),
		"shard count for the local ingestion comparison (0 disables it)")
	workers = flag.Int("workers", 0,
		"Identify worker-pool size (0 = GOMAXPROCS); output is identical at any value")
)

func main() {
	flag.Parse()
	params := core.Params{Eps: *eps, N: *n, ItemBytes: 4, Y: 64, Workers: *workers, Seed: *seed}
	srv, err := protocol.NewServer(params, *addr)
	fatal(err)
	defer srv.Close()
	fmt.Printf("aggregation server listening on %s\n", srv.Addr())

	dom := workload.Domain{ItemBytes: 4}
	ds, err := workload.Planted(dom, *n, []float64{0.3, 0.2}, rand.New(rand.NewPCG(*seed, 2)))
	fatal(err)

	// Client phase: each fleet derives its own client purely from Params —
	// devices never see server state, only the shared seed — and prepares
	// its batch before the timed network round.
	batches := make([][]core.Report, *fleets)
	var wg sync.WaitGroup
	errCh := make(chan error, *fleets)
	for f := 0; f < *fleets; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			client, err := core.NewClient(params)
			if err != nil {
				errCh <- err
				return
			}
			rng := rand.New(rand.NewPCG(uint64(f), *seed))
			var batch []core.Report
			for i := f; i < *n; i += *fleets {
				rep, err := client.Report(ds.Items[i], i, rng)
				if err != nil {
					errCh <- err
					return
				}
				batch = append(batch, rep)
			}
			batches[f] = batch
		}(f)
	}
	wg.Wait()
	drain(errCh)

	// Network phase: stream every batch concurrently; the server absorbs
	// each connection into its own shard.
	start := time.Now()
	for f := 0; f < *fleets; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			errCh <- protocol.SendReports(srv.Addr(), batches[f])
		}(f)
	}
	wg.Wait()
	drain(errCh)
	fmt.Printf("fleet of %d connections delivered %d reports in %v (%d bytes each)\n",
		*fleets, srv.Absorbed(), time.Since(start).Round(time.Millisecond), protocol.FrameSize)

	est, err := protocol.RequestIdentify(srv.Addr())
	fatal(err)
	fmt.Printf("identified %d heavy hitters:\n", len(est))
	for i, e := range est {
		if i >= 10 {
			break
		}
		fmt.Printf("  %x  est=%8.0f  true=%d\n", e.Item, e.Count, ds.Count(e.Item))
	}

	if *shards > 0 {
		localComparison(params, batches, est)
	}
}

// localComparison replays the collected reports into fresh in-process
// protocols: once through the serialized single-mutex Absorb path and once
// through AbsorbBatch at the configured shard count, then checks the
// sharded round reproduces the network round's identification bit for bit
// (counter merges are exact, so absorption order cannot matter).
func localComparison(params core.Params, batches [][]core.Report, netEst []core.Estimate) {
	var reports []core.Report
	for _, b := range batches {
		reports = append(reports, b...)
	}

	serial, err := core.New(params)
	fatal(err)
	t0 := time.Now()
	fatal(serial.AbsorbBatch(reports, 1))
	serialDur := time.Since(t0)

	sharded, err := core.New(params)
	fatal(err)
	t1 := time.Now()
	fatal(sharded.AbsorbBatch(reports, *shards))
	shardedDur := time.Since(t1)

	rate := func(d time.Duration) float64 {
		return float64(len(reports)) / d.Seconds() / 1e6
	}
	fmt.Printf("local ingestion of %d reports: single-mutex %v (%.1f M/s), %d shards %v (%.1f M/s)\n",
		len(reports), serialDur.Round(time.Microsecond), rate(serialDur),
		*shards, shardedDur.Round(time.Microsecond), rate(shardedDur))

	est, err := sharded.Identify()
	fatal(err)
	if len(est) != len(netEst) {
		fatal(fmt.Errorf("sharded round identified %d items, network round %d", len(est), len(netEst)))
	}
	for i := range est {
		// The wire protocol truncates counts to integers; compare at that
		// granularity.
		if !bytes.Equal(est[i].Item, netEst[i].Item) || int64(est[i].Count) != int64(netEst[i].Count) {
			fatal(fmt.Errorf("sharded round diverged at rank %d: %x/%.0f vs %x/%.0f",
				i, est[i].Item, est[i].Count, netEst[i].Item, netEst[i].Count))
		}
	}
	fmt.Printf("sharded round identification matches the network round (%d items)\n", len(est))
}

func drain(errCh chan error) {
	for len(errCh) > 0 {
		fatal(<-errCh)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "hhnet:", err)
		os.Exit(1)
	}
}
