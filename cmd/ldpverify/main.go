// Command ldpverify exhaustively audits the privacy of the library's local
// randomizers: for a chosen mechanism and ε it prints the worst-case
// probability ratio over all input pairs and outputs (Definition 1.1) and
// the hockey-stick divergence curve (the tight δ as a function of the
// claimed ε). This is the operational meaning of "privacy verified by
// enumeration" — no proofs taken on faith at deployment time.
//
// Usage:
//
//	ldpverify -mech rr -eps 1.0
//	ldpverify -mech krr -eps 0.5 -k 16
//	ldpverify -mech hadamard -eps 1.0 -t 64
//	ldpverify -mech rappor -eps 2.0
//	ldpverify -mech oue -eps 1.0 -k 8
//	ldpverify -mech leaky -eps 0.5 -delta 0.01
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"ldphh/internal/ldp"
)

var (
	mech  = flag.String("mech", "rr", "rr | krr | hadamard | rappor | oue | leaky")
	eps   = flag.Float64("eps", 1.0, "privacy parameter")
	k     = flag.Uint64("k", 8, "domain size (krr, oue)")
	tsize = flag.Int("t", 64, "bucket count (hadamard)")
	delta = flag.Float64("delta", 0.01, "approximation parameter (leaky)")
)

func main() {
	flag.Parse()
	var r ldp.Randomizer
	switch *mech {
	case "rr":
		r = ldp.NewBinaryRR(*eps)
	case "krr":
		r = ldp.NewKaryRR(*eps, *k)
	case "hadamard":
		r = ldp.NewHadamardBit(*eps, *tsize)
	case "rappor":
		r = ldp.NewRAPPOR(*eps, 12, 2, 1, 2)
	case "oue":
		r = ldp.NewOUE(*eps, int(*k))
	case "leaky":
		r = ldp.NewLeakyRR(*eps, *delta)
	default:
		fmt.Fprintf(os.Stderr, "ldpverify: unknown mechanism %q\n", *mech)
		os.Exit(2)
	}

	fmt.Printf("mechanism %s: %d inputs, %d outputs, claimed (ε=%.3f, δ=%g)\n",
		*mech, r.NumInputs(), r.NumOutputs(), r.Epsilon(), r.Delta())
	if r.NumInputs()*r.NumOutputs() > 1<<26 {
		fmt.Fprintln(os.Stderr, "ldpverify: output space too large for exhaustive audit")
		os.Exit(1)
	}

	ratio := ldp.MaxPrivacyRatio(r)
	fmt.Printf("worst-case probability ratio: %.6f", ratio)
	if math.IsInf(ratio, 1) {
		fmt.Printf("  (pure LDP VIOLATED — approximate mechanism)")
	} else {
		fmt.Printf("  = e^%.4f (claimed e^%.4f = %.6f)", math.Log(ratio), r.Epsilon(), math.Exp(r.Epsilon()))
		if ratio > math.Exp(r.Epsilon())+1e-9 {
			fmt.Printf("  ** CLAIM VIOLATED **")
		}
	}
	fmt.Println()

	fmt.Println("hockey-stick divergence (tight δ at each privacy level):")
	fmt.Printf("%10s %14s\n", "at ε", "tight δ")
	for _, frac := range []float64{0.25, 0.5, 0.75, 1.0, 1.25} {
		level := r.Epsilon() * frac
		fmt.Printf("%10.4f %14.6e\n", level, ldp.MaxHockeyStick(r, level))
	}
}
